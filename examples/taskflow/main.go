// Taskflow: the paper's §3.2.2 scenario — a flow of inference tasks drawn
// from the 12 evaluation models, processed back-to-back with idle gaps,
// under four DVFS methods (PowerLens, FPG-G, FPG-CG, BiM). This is the
// workload behind Figure 5.
//
// Run with: go run ./examples/taskflow [-tasks 30]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"powerlens/internal/core"
	"powerlens/internal/experiments"
	"powerlens/internal/governor"
	"powerlens/internal/hw"
	"powerlens/internal/sim"
)

func main() {
	numTasks := flag.Int("tasks", 30, "number of tasks in the flow (paper: 100)")
	flag.Parse()

	for _, platform := range hw.Platforms() {
		cfg := core.DefaultDeployConfig()
		cfg.NumNetworks = 200
		fmt.Printf("deploying PowerLens on %s...\n", platform.Name)
		fw, _, err := core.Deploy(platform, cfg)
		if err != nil {
			log.Fatal(err)
		}

		tasks := experiments.RandomTasks(*numTasks, 42)
		plans := map[string]*governor.FrequencyPlan{}
		for _, t := range tasks {
			if _, ok := plans[t.Graph.Name]; ok {
				continue
			}
			a, err := fw.Analyze(t.Graph)
			if err != nil {
				log.Fatal(err)
			}
			plans[t.Graph.Name] = a.Plan
		}

		fmt.Printf("%s task flow: %d tasks x %d images, %v idle gap\n",
			platform.Name, *numTasks, experiments.ImagesPerTask, experiments.TaskGap)
		fmt.Printf("%-10s %12s %14s %12s\n", "method", "energy (J)", "makespan", "EE (img/J)")
		controllers := []sim.Controller{
			governor.NewMultiPlan(plans),
			governor.NewFPGG(),
			governor.NewFPGCG(),
			governor.NewOndemand(),
		}
		var base sim.Result
		for i, ctl := range controllers {
			r := sim.NewExecutor(platform, ctl).RunTaskFlow(tasks, experiments.TaskGap)
			if i == 0 {
				base = r
			}
			fmt.Printf("%-10s %12.1f %14v %12.4f\n",
				r.Controller, r.EnergyJ, r.Time.Round(time.Millisecond), r.EE())
		}
		fmt.Printf("PowerLens processed %d images at %.2f img/J\n\n", base.Images, base.EE())
	}
}
