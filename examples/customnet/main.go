// Customnet: define your own network with the graph builder API and optimize
// it with PowerLens. The framework never saw this architecture during
// training — its prediction models generalize from the random-DNN datasets,
// which is the paper's platform/model adaptability claim in action.
//
// The demo network is a deliberately two-faced architecture: a compute-heavy
// convolutional encoder followed by a large memory-bound fully connected
// head, so the power view should separate the regimes and assign them very
// different target frequencies.
//
// Run with: go run ./examples/customnet
package main

import (
	"fmt"
	"log"
	"time"

	"powerlens/internal/core"
	"powerlens/internal/governor"
	"powerlens/internal/graph"
	"powerlens/internal/hw"
	"powerlens/internal/sim"
)

// buildTwoFaceNet constructs the demo architecture.
func buildTwoFaceNet() *graph.Graph {
	g := graph.New("twoface")
	x := g.Input(3, 224, 224)

	// Compute-heavy encoder: VGG-style conv stacks.
	for _, c := range []int{64, 128, 256, 512} {
		x = g.ReLU(g.BatchNorm(g.Conv(x, c, 3, 1, 1, 1)))
		x = g.ReLU(g.BatchNorm(g.Conv(x, c, 3, 1, 1, 1)))
		x = g.MaxPool(x, 2, 2, 0)
	}

	// Memory-bound head: a large flattened FC stack (weights stream from
	// DRAM once per inference — bandwidth-bound at any GPU frequency).
	x = g.AdaptiveAvgPool(x, 7, 7)
	x = g.Flatten(x)
	x = g.ReLU(g.Linear(x, 4096))
	x = g.Dropout(x)
	x = g.ReLU(g.Linear(x, 4096))
	g.Linear(x, 1000)
	return g
}

func main() {
	g := buildTwoFaceNet()
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom network %q: %d layers, %.2f GFLOPs, %.1fM params\n",
		g.Name, len(g.Layers), float64(g.TotalFLOPs())/1e9, float64(g.TotalParams())/1e6)

	platform := hw.TX2()
	cfg := core.DefaultDeployConfig()
	cfg.NumNetworks = 200
	fmt.Println("deploying PowerLens on", platform.Name, "...")
	fw, _, err := core.Deploy(platform, cfg)
	if err != nil {
		log.Fatal(err)
	}

	a, err := fw.Analyze(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("power view: %d blocks (eps=%.2f minPts=%d)\n",
		a.View.NumBlocks(), a.Hyper.Eps, a.Hyper.MinPts)
	for i, b := range a.View.Blocks {
		seg := g.Layers[b.StartLayer:min(b.EndLayer+1, len(g.Layers))]
		var flops, bytes int64
		for _, l := range seg {
			flops += l.FLOPs()
			bytes += l.MemBytes()
		}
		fmt.Printf("  block %d: layers %3d..%3d  AI=%6.1f FLOP/B -> %.0f MHz\n",
			i+1, b.StartLayer, b.EndLayer,
			float64(flops)/float64(bytes), platform.GPUFreqsHz[a.Levels[i]]/1e6)
	}

	images := 50
	pl := sim.NewExecutor(platform, governor.NewPowerLens(a.Plan)).RunTask(g, images)
	bim := sim.NewExecutor(platform, governor.NewOndemand()).RunTask(g, images)
	fmt.Printf("\nPowerLens: %.2f J, %v — BiM: %.2f J, %v\n",
		pl.EnergyJ, pl.Time.Round(time.Millisecond), bim.EnergyJ, bim.Time.Round(time.Millisecond))
	fmt.Printf("EE gain over the built-in governor: %+.1f%%\n", (pl.EE()/bim.EE()-1)*100)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
