// Ablation: the paper's Table 2 study on a single model — compare full
// PowerLens (power behavior similarity clustering) against P-R (random block
// partitioning) and P-N (no clustering; one decision for the whole DNN).
//
// Run with: go run ./examples/ablation [-model vgg19]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"powerlens/internal/core"
	"powerlens/internal/governor"
	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/sim"
)

func main() {
	modelName := flag.String("model", "vgg19", "model to ablate")
	flag.Parse()

	g, err := models.Build(*modelName)
	if err != nil {
		log.Fatal(err)
	}

	for _, platform := range hw.Platforms() {
		cfg := core.DefaultDeployConfig()
		cfg.NumNetworks = 200
		fmt.Printf("deploying PowerLens on %s...\n", platform.Name)
		fw, _, err := core.Deploy(platform, cfg)
		if err != nil {
			log.Fatal(err)
		}

		full, err := fw.Analyze(g)
		if err != nil {
			log.Fatal(err)
		}
		eeOf := func(plan *governor.FrequencyPlan) float64 {
			return sim.NewExecutor(platform, governor.NewPowerLens(plan)).RunTask(g, 50).EE()
		}
		eeFull := eeOf(full.Plan)

		// P-R averaged over several random partitionings.
		const seeds = 5
		prSum := 0.0
		for s := int64(0); s < seeds; s++ {
			pr := fw.AnalyzeRandomBlocks(g, rand.New(rand.NewSource(s*31+7)), 8)
			prSum += eeOf(pr.Plan)
		}
		eePR := prSum / seeds

		pn := fw.AnalyzeWholeNetwork(g)
		eePN := eeOf(pn.Plan)

		fmt.Printf("%s on %s (blocks=%d):\n", g.Name, platform.Name, full.View.NumBlocks())
		fmt.Printf("  PowerLens EE: %.4f img/J\n", eeFull)
		fmt.Printf("  P-R (random blocks):   %.4f img/J (%+.2f%%)\n", eePR, (eePR/eeFull-1)*100)
		fmt.Printf("  P-N (no clustering):   %.4f img/J (%+.2f%%)\n\n", eePN, (eePN/eeFull-1)*100)
	}
}
