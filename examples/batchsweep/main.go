// Batchsweep: the paper's §5 future-work extension — coordinating batch
// size with DVFS. Batching amortizes weight traffic across images, raising
// arithmetic intensity; the energy-optimal (batch, frequency) point trades
// per-image efficiency against batch completion latency.
//
// Run with: go run ./examples/batchsweep [-model vgg19] [-budget 500ms]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"powerlens/internal/governor"
	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/sim"
)

func main() {
	modelName := flag.String("model", "vgg19", "model to sweep")
	budget := flag.Duration("budget", 0, "batch latency budget (0 = unconstrained)")
	flag.Parse()

	g, err := models.Build(*modelName)
	if err != nil {
		log.Fatal(err)
	}

	for _, p := range hw.Platforms() {
		fmt.Printf("%s on %s — batch/frequency co-optimization", g.Name, p.Name)
		if *budget > 0 {
			fmt.Printf(" (latency budget %v)", *budget)
		}
		fmt.Println()

		best, sweep := sim.OptimalBatch(p, g, 32, *budget)
		fmt.Printf("%7s %7s %12s %14s\n", "batch", "level", "EE (img/J)", "batch latency")
		for _, bp := range sweep {
			marker := " "
			if bp == best {
				marker = "*"
			}
			fmt.Printf("%6d%s %7d %12.4f %14v\n",
				bp.Batch, marker, bp.Level, bp.EE, bp.Latency.Round(time.Microsecond))
		}
		if best.Batch == 0 {
			fmt.Println("no operating point satisfies the latency budget")
			continue
		}

		// Validate the chosen point end-to-end in the executor.
		e := sim.NewExecutor(p, governor.NewStatic(best.Level))
		e.Batch = best.Batch
		r := e.RunTask(g, 64)
		base := sim.NewExecutor(p, governor.NewStatic(best.Level)).RunTask(g, 64)
		fmt.Printf("executor check (64 images): batched EE %.4f vs unbatched %.4f (%+.1f%%)\n\n",
			r.EE(), base.EE(), (r.EE()/base.EE()-1)*100)
	}
}
