// Cloudserver: the paper's §5 outlook — PowerLens in a cloud inference
// fleet. A 4-node cluster of simulated AGX-class accelerators serves a
// Poisson stream of mixed inference jobs; we compare the fleet's energy,
// makespan, and energy efficiency under PowerLens plans, FPG-CG, and the
// nodes' built-in ondemand governor.
//
// Run with: go run ./examples/cloudserver [-jobs 60] [-nodes 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"powerlens/internal/cloud"
	"powerlens/internal/core"
	"powerlens/internal/governor"
	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/sim"
)

func main() {
	numJobs := flag.Int("jobs", 60, "jobs in the trace")
	nodes := flag.Int("nodes", 4, "cluster nodes")
	flag.Parse()

	platform := hw.AGX()
	cfg := core.DefaultDeployConfig()
	cfg.NumNetworks = 200
	fmt.Printf("deploying PowerLens on %s-class nodes...\n", platform.Name)
	fw, _, err := core.Deploy(platform, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// One frequency plan per model, shared by all nodes.
	plans := map[string]*governor.FrequencyPlan{}
	for _, name := range models.Names() {
		g := models.MustBuild(name)
		a, err := fw.Analyze(g)
		if err != nil {
			log.Fatal(err)
		}
		plans[name] = a.Plan
	}

	jobs := cloud.RandomJobs(*numJobs, 300*time.Millisecond, 42)
	fmt.Printf("trace: %d jobs over ~%v, %d nodes\n\n",
		len(jobs), jobs[len(jobs)-1].Arrival.Round(time.Second), *nodes)

	policies := []struct {
		name string
		ctl  cloud.ControllerFactory
	}{
		{"PowerLens", func() sim.Controller { return governor.NewMultiPlan(plans) }},
		{"FPG-CG", func() sim.Controller { return governor.NewFPGCG() }},
		{"BiM", func() sim.Controller { return governor.NewOndemand() }},
	}
	fmt.Printf("%-10s %12s %14s %14s %12s\n", "policy", "energy (J)", "makespan", "turnaround", "EE (img/J)")
	var base cloud.Result
	for i, pol := range policies {
		res, err := cloud.Run(cloud.Config{Nodes: *nodes, Platform: platform, NewCtl: pol.ctl}, jobs)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			base = res
		}
		fmt.Printf("%-10s %12.1f %14v %14v %12.4f\n",
			pol.name, res.TotalEnergyJ, res.Makespan.Round(time.Millisecond),
			res.MeanTurnaround.Round(time.Millisecond), res.EE())
	}
	fmt.Printf("\nPowerLens served %d images fleet-wide at %.4f img/J.\n", base.TotalImages, base.EE())
}
