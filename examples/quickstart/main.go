// Quickstart: the minimal end-to-end PowerLens flow.
//
// It deploys the framework on a simulated Jetson TX2 (dataset generation +
// model training, a few seconds), analyzes ResNet-152 into a power view with
// preset per-block target frequencies, and compares the energy efficiency of
// running under the PowerLens plan against the platform's built-in ondemand
// governor.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"powerlens/internal/core"
	"powerlens/internal/governor"
	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/sim"
)

func main() {
	// 1. Pick a platform and deploy PowerLens on it. Deployment is fully
	// automatic: random networks are generated, oracle frequency sweeps
	// label the datasets, and the two prediction models are trained.
	platform := hw.TX2()
	cfg := core.DefaultDeployConfig()
	cfg.NumNetworks = 200 // small but usable; raise for accuracy
	fmt.Println("deploying PowerLens on", platform.Name, "...")
	fw, report, err := core.Deploy(platform, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  hyperparameter model accuracy: %.1f%%\n", report.HyperAccuracy*100)
	fmt.Printf("  decision model accuracy:       %.1f%%\n", report.DecisionAccuracy*100)

	// 2. Analyze a model: features → clustering hyperparameters → power
	// view → per-block frequency plan.
	g := models.MustBuild("resnet152")
	analysis, err := fw.Analyze(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s: %d layers clustered into %d power block(s)\n",
		g.Name, len(g.Layers), analysis.View.NumBlocks())
	for i, b := range analysis.View.Blocks {
		fmt.Printf("  block %d: layers %d..%d -> %.0f MHz\n",
			i+1, b.StartLayer, b.EndLayer, platform.GPUFreqsHz[analysis.Levels[i]]/1e6)
	}

	// 3. Run 50 images under the PowerLens plan and under the built-in
	// ondemand governor (BiM) and compare energy efficiency (eq. 1).
	images := 50
	pl := sim.NewExecutor(platform, governor.NewPowerLens(analysis.Plan)).RunTask(g, images)
	bim := sim.NewExecutor(platform, governor.NewOndemand()).RunTask(g, images)

	fmt.Printf("\n%-10s %10s %14s %10s %12s\n", "method", "energy", "time", "avg power", "EE (img/J)")
	for _, r := range []sim.Result{pl, bim} {
		fmt.Printf("%-10s %9.2fJ %14v %9.2fW %12.4f\n",
			r.Controller, r.EnergyJ, r.Time.Round(time.Millisecond), r.AvgPowerW(), r.EE())
	}
	fmt.Printf("\nPowerLens improves energy efficiency by %.1f%% over the built-in governor.\n",
		(pl.EE()/bim.EE()-1)*100)
}
