// Package powerlens is a from-scratch Go reproduction of "PowerLens: An
// Adaptive DVFS Framework for Optimizing Energy Efficiency in Deep Neural
// Networks" (Geng et al., DAC 2024).
//
// The library implements the complete system: a DNN operator-graph IR with
// builders for the 12 torchvision evaluation networks (internal/graph,
// internal/models), the power-sensitive feature extractors
// (internal/features), Algorithm 1's power behavior similarity clustering
// (internal/cluster), the two learned prediction models with a from-scratch
// neural network stack (internal/nn), the dataset generator
// (internal/dataset), the analytic Jetson TX2/AGX platform simulator that
// substitutes for the paper's hardware (internal/hw), an inference executor
// with pluggable DVFS controllers (internal/sim, internal/governor), the
// framework façade (internal/core), and the harness regenerating every table
// and figure of the evaluation (internal/experiments, cmd/experiments).
//
// See README.md for a quickstart, DESIGN.md for the system inventory and
// substitution record, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate each table/figure under
// `go test -bench`.
package powerlens
