// Command datasetgen runs the §2.2 dataset generator for one platform and
// writes Datasets A and B to a JSON file consumed by cmd/trainer. The paper
// generates 8000 networks (31,242 blocks); pass -networks 8000 to match.
//
// Usage:
//
//	datasetgen -platform TX2 -networks 2000 -seed 1 -out tx2_dataset.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"powerlens/internal/dataset"
	"powerlens/internal/hw"
)

func main() {
	var (
		platform = flag.String("platform", "TX2", "platform: TX2 or AGX")
		networks = flag.Int("networks", 2000, "number of random networks")
		seed     = flag.Int64("seed", 1, "generator seed")
		out      = flag.String("out", "dataset.json", "output path")
		workers  = flag.Int("workers", 0, "generation workers (0 = all cores); any value generates identical datasets")
	)
	flag.Parse()

	var p *hw.Platform
	switch strings.ToUpper(*platform) {
	case "TX2":
		p = hw.TX2()
	case "AGX":
		p = hw.AGX()
	default:
		fmt.Fprintf(os.Stderr, "datasetgen: unknown platform %q\n", *platform)
		os.Exit(1)
	}

	fmt.Fprintf(os.Stderr, "generating %d random networks for %s (seed %d)...\n", *networks, p.Name, *seed)
	start := time.Now()
	cfg := dataset.DefaultConfig(*networks, *seed)
	cfg.Workers = *workers
	a, b := dataset.Generate(p, cfg)
	fmt.Fprintf(os.Stderr, "done in %v: %d network samples (dataset A), %d block samples (dataset B)\n",
		time.Since(start).Round(time.Millisecond), len(a.Samples), len(b.Samples))

	if err := dataset.Save(*out, p.Name, a, b); err != nil {
		fmt.Fprintln(os.Stderr, "datasetgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
