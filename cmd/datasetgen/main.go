// Command datasetgen runs the §2.2 dataset generator for one platform and
// writes Datasets A and B to a JSON file consumed by cmd/trainer. The paper
// generates 8000 networks (31,242 blocks); pass -networks 8000 to match.
//
// With -checkpoint-dir the run is crash-safe: completed networks are flushed
// to checksummed shards, SIGINT/SIGTERM drains gracefully (finish in-flight
// networks, flush, exit 0), and -resume continues an interrupted run to a
// byte-identical output. A second signal exits immediately.
//
// Usage:
//
//	datasetgen -platform TX2 -networks 2000 -seed 1 -out tx2_dataset.json
//	datasetgen ... -checkpoint-dir ck/           # interruptible
//	datasetgen ... -checkpoint-dir ck/ -resume   # continue after a crash
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"powerlens/internal/checkpoint"
	"powerlens/internal/dataset"
	"powerlens/internal/hw"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

type options struct {
	platform string
	networks int
	seed     int64
	out      string
	workers  int
	ckDir    string
	ckEvery  int
	resume   bool
}

func parseFlags(args []string, stderr io.Writer) (*options, error) {
	fs := flag.NewFlagSet("datasetgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	o := &options{}
	fs.StringVar(&o.platform, "platform", "TX2", "platform: TX2 or AGX")
	fs.IntVar(&o.networks, "networks", 2000, "number of random networks")
	fs.Int64Var(&o.seed, "seed", 1, "generator seed")
	fs.StringVar(&o.out, "out", "dataset.json", "output path")
	fs.IntVar(&o.workers, "workers", 0, "generation workers (0 = all cores); any value generates identical datasets")
	fs.StringVar(&o.ckDir, "checkpoint-dir", "", "checkpoint directory; enables crash-safe generation and graceful SIGINT/SIGTERM drain")
	fs.IntVar(&o.ckEvery, "checkpoint-every", dataset.DefaultShardSize, "networks per checkpoint shard")
	fs.BoolVar(&o.resume, "resume", false, "resume from -checkpoint-dir (requires it to be set)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}
	return o, nil
}

// validate front-loads every misconfiguration a long run could otherwise hit
// hours in: bad counts, a resume with nowhere to resume from, an unwritable
// checkpoint or output location.
func validate(o *options) error {
	if o.networks <= 0 {
		return fmt.Errorf("-networks must be positive, got %d", o.networks)
	}
	if o.workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", o.workers)
	}
	if o.ckEvery <= 0 {
		return fmt.Errorf("-checkpoint-every must be positive, got %d", o.ckEvery)
	}
	if o.resume && o.ckDir == "" {
		return errors.New("-resume requires -checkpoint-dir")
	}
	if o.out == "" {
		return errors.New("-out must not be empty")
	}
	if dir := filepath.Dir(o.out); dir != "." {
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			return fmt.Errorf("output directory %s does not exist", dir)
		}
	}
	return nil
}

func platformByName(name string) (*hw.Platform, error) {
	switch strings.ToUpper(name) {
	case "TX2":
		return hw.TX2(), nil
	case "AGX":
		return hw.AGX(), nil
	default:
		return nil, fmt.Errorf("unknown platform %q (want TX2 or AGX)", name)
	}
}

func run(args []string, stderr io.Writer) int {
	o, err := parseFlags(args, stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		fmt.Fprintln(stderr, "datasetgen:", err)
		return 2
	}
	if err := validate(o); err != nil {
		fmt.Fprintln(stderr, "datasetgen:", err)
		return 2
	}
	p, err := platformByName(o.platform)
	if err != nil {
		fmt.Fprintln(stderr, "datasetgen:", err)
		return 2
	}

	cfg := dataset.DefaultConfig(o.networks, o.seed)
	cfg.Workers = o.workers

	opt := dataset.CheckpointOptions{
		ShardSize: o.ckEvery,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(stderr, "datasetgen: "+format+"\n", a...)
		},
	}
	var stopSignals chan os.Signal
	if o.ckDir != "" {
		dir, err := checkpoint.Open(o.ckDir)
		if err != nil {
			fmt.Fprintln(stderr, "datasetgen:", err)
			return 2
		}
		if !o.resume {
			shards, err := dir.List("*.ckpt")
			if err == nil && len(shards) > 0 {
				fmt.Fprintf(stderr, "datasetgen: checkpoint dir %s already holds %d shards; pass -resume to continue that run or use a fresh directory\n",
					o.ckDir, len(shards))
				return 2
			}
		}
		opt.Dir = dir

		// First SIGINT/SIGTERM drains gracefully; a second exits immediately.
		stop := make(chan struct{})
		opt.Stop = stop
		stopSignals = make(chan os.Signal, 2)
		signal.Notify(stopSignals, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-stopSignals
			fmt.Fprintln(stderr, "datasetgen: signal received; draining (finishing in-flight networks, flushing shards) — signal again to exit immediately")
			close(stop)
			<-stopSignals
			fmt.Fprintln(stderr, "datasetgen: second signal; exiting immediately")
			os.Exit(130)
		}()
		defer signal.Stop(stopSignals)
	}

	fmt.Fprintf(stderr, "generating %d random networks for %s (seed %d)...\n", o.networks, p.Name, o.seed)
	start := time.Now()
	a, b, st, err := dataset.GenerateCheckpointed(p, cfg, opt)
	if err != nil {
		fmt.Fprintln(stderr, "datasetgen:", err)
		return 1
	}
	if st.Drained {
		fmt.Fprintf(stderr, "datasetgen: drained after %v (%d networks restored, %d shards flushed); rerun with -resume to continue\n",
			time.Since(start).Round(time.Millisecond), st.ResumedNetworks, st.ShardsWritten)
		return 0
	}
	fmt.Fprintf(stderr, "done in %v: %d network samples (dataset A), %d block samples (dataset B)\n",
		time.Since(start).Round(time.Millisecond), len(a.Samples), len(b.Samples))
	if st.ResumedNetworks > 0 || st.QuarantinedShards > 0 {
		fmt.Fprintf(stderr, "resume: %d networks restored from checkpoints, %d corrupt shards quarantined\n",
			st.ResumedNetworks, st.QuarantinedShards)
	}

	if err := dataset.Save(o.out, p.Name, a, b); err != nil {
		fmt.Fprintln(stderr, "datasetgen:", err)
		return 1
	}
	fmt.Fprintf(stderr, "wrote %s\n", o.out)
	return 0
}
