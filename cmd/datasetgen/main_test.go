package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string) {
	t.Helper()
	var buf bytes.Buffer
	code := run(args, &buf)
	return code, buf.String()
}

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero networks", []string{"-networks", "0"}, "-networks must be positive"},
		{"negative networks", []string{"-networks", "-5"}, "-networks must be positive"},
		{"negative workers", []string{"-workers", "-1"}, "-workers must be >= 0"},
		{"zero shard size", []string{"-checkpoint-every", "0"}, "-checkpoint-every must be positive"},
		{"resume without dir", []string{"-resume"}, "-resume requires -checkpoint-dir"},
		{"empty out", []string{"-out", ""}, "-out must not be empty"},
		{"missing out dir", []string{"-out", "/no/such/dir/x.json"}, "does not exist"},
		{"bad platform", []string{"-platform", "H100"}, "unknown platform"},
		{"positional junk", []string{"extra"}, "unexpected arguments"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := runCLI(t, tc.args...)
			if code != 2 {
				t.Fatalf("exit = %d, want 2 (output: %s)", code, out)
			}
			if !strings.Contains(out, tc.want) {
				t.Fatalf("output %q does not mention %q", out, tc.want)
			}
		})
	}
}

func TestUnwritableCheckpointDirRejected(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("directory permissions do not bind as root")
	}
	parent := t.TempDir()
	if err := os.Chmod(parent, 0o555); err != nil {
		t.Fatal(err)
	}
	code, out := runCLI(t, "-networks", "4", "-checkpoint-dir", filepath.Join(parent, "ck"))
	if code != 2 || !strings.Contains(out, "checkpoint") {
		t.Fatalf("exit = %d, output %q; want rejection of unwritable dir", code, out)
	}
}

func TestNonEmptyCheckpointDirNeedsResume(t *testing.T) {
	dir := t.TempDir()
	out1 := filepath.Join(dir, "a.json")
	ck := filepath.Join(dir, "ck")
	if code, out := runCLI(t, "-networks", "6", "-checkpoint-dir", ck, "-checkpoint-every", "2", "-out", out1); code != 0 {
		t.Fatalf("first run failed (%d): %s", code, out)
	}
	code, out := runCLI(t, "-networks", "6", "-checkpoint-dir", ck, "-out", filepath.Join(dir, "b.json"))
	if code != 2 || !strings.Contains(out, "-resume") {
		t.Fatalf("exit = %d, output %q; want refusal without -resume", code, out)
	}
}

// End-to-end: an uninterrupted run and a resumed checkpointed run write
// byte-identical dataset files.
func TestCheckpointedOutputByteIdentical(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.json")
	if code, out := runCLI(t, "-networks", "8", "-seed", "3", "-out", ref); code != 0 {
		t.Fatalf("reference run failed (%d): %s", code, out)
	}

	got := filepath.Join(dir, "got.json")
	ck := filepath.Join(dir, "ck")
	if code, out := runCLI(t, "-networks", "8", "-seed", "3", "-out", got,
		"-checkpoint-dir", ck, "-checkpoint-every", "3"); code != 0 {
		t.Fatalf("checkpointed run failed (%d): %s", code, out)
	}
	refData, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	gotData, err := os.ReadFile(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refData, gotData) {
		t.Fatal("checkpointed output differs from plain run")
	}

	// Resume over the completed directory: everything restores, output is
	// still identical.
	got2 := filepath.Join(dir, "got2.json")
	code, out := runCLI(t, "-networks", "8", "-seed", "3", "-out", got2,
		"-checkpoint-dir", ck, "-checkpoint-every", "3", "-resume")
	if code != 0 {
		t.Fatalf("resume run failed (%d): %s", code, out)
	}
	if !strings.Contains(out, "restored") {
		t.Fatalf("resume output does not report restored networks: %s", out)
	}
	got2Data, err := os.ReadFile(got2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refData, got2Data) {
		t.Fatal("resumed output differs from plain run")
	}
}
