// Command trainer trains the two PowerLens prediction models from a dataset
// file written by cmd/datasetgen, reports test-set accuracies (the paper's
// Fig. 3/4 footnote: 92.6% for the clustering hyperparameter prediction
// model and 94.2% for the decision model at full scale), and saves the
// trained framework for cmd/powerlens -load.
//
// Usage:
//
//	trainer -dataset tx2_dataset.json -out tx2_framework.json [-epochs 120]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"powerlens/internal/core"
	"powerlens/internal/dataset"
	"powerlens/internal/hw"
)

func main() {
	var (
		dsPath  = flag.String("dataset", "dataset.json", "dataset file from cmd/datasetgen")
		out     = flag.String("out", "framework.json", "output path for the trained framework")
		epochs  = flag.Int("epochs", 120, "training epochs for both models")
		seed    = flag.Int64("seed", 1, "training seed")
		workers = flag.Int("workers", 0, "minibatch gradient workers (0 = all cores); any value trains identically")
	)
	flag.Parse()

	platform, dsA, dsB, err := dataset.Load(*dsPath)
	if err != nil {
		fatal(err)
	}
	var p *hw.Platform
	switch platform {
	case "TX2":
		p = hw.TX2()
	case "AGX":
		p = hw.AGX()
	default:
		fatal(fmt.Errorf("dataset %s has unknown platform %q", *dsPath, platform))
	}
	fmt.Fprintf(os.Stderr, "training on %s: %d network samples, %d block samples\n",
		p.Name, len(dsA.Samples), len(dsB.Samples))

	cfg := core.DefaultDeployConfig()
	cfg.Seed = *seed
	cfg.HyperTrain.Epochs = *epochs
	cfg.DecisionTrain.Epochs = *epochs
	cfg.HyperTrain.Workers = *workers
	cfg.DecisionTrain.Workers = *workers

	report := &core.DeployReport{}
	start := time.Now()
	fw, err := core.TrainFramework(p, dsA, dsB, cfg, report)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("clustering hyperparameter prediction model: accuracy %.1f%% (paper: 92.6%%), trained in %v\n",
		report.HyperAccuracy*100, report.HyperTrainTime.Round(time.Millisecond))
	fmt.Printf("target frequency decision model:            accuracy %.1f%% (paper: 94.2%%), trained in %v\n",
		report.DecisionAccuracy*100, report.DecisionTrainTime.Round(time.Millisecond))
	fmt.Printf("decision mean level error: %.2f (paper: misses land 1-2 levels from the optimum)\n",
		report.DecisionMeanLevelError)
	if report.DecisionConfusion != nil {
		fmt.Print(report.DecisionConfusion)
	}
	fmt.Printf("total training time: %v\n", time.Since(start).Round(time.Millisecond))

	if err := fw.Save(*out); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "saved framework to %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trainer:", err)
	os.Exit(1)
}
