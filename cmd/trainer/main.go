// Command trainer trains the two PowerLens prediction models from a dataset
// file written by cmd/datasetgen, reports test-set accuracies (the paper's
// Fig. 3/4 footnote: 92.6% for the clustering hyperparameter prediction
// model and 94.2% for the decision model at full scale), and saves the
// trained framework for cmd/powerlens -load.
//
// With -checkpoint-dir both models checkpoint their full optimizer state at
// epoch boundaries: SIGINT/SIGTERM drains gracefully (finish the in-flight
// epoch, save, exit 0), and -resume continues to bit-identical weights. A
// second signal exits immediately.
//
// Usage:
//
//	trainer -dataset tx2_dataset.json -out tx2_framework.json [-epochs 120]
//	trainer ... -checkpoint-dir ck/           # interruptible
//	trainer ... -checkpoint-dir ck/ -resume   # continue after a crash
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"powerlens/internal/checkpoint"
	"powerlens/internal/core"
	"powerlens/internal/dataset"
	"powerlens/internal/hw"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type options struct {
	dsPath  string
	out     string
	epochs  int
	seed    int64
	workers int
	ckDir   string
	ckEvery int
	resume  bool
}

func parseFlags(args []string, stderr io.Writer) (*options, error) {
	fs := flag.NewFlagSet("trainer", flag.ContinueOnError)
	fs.SetOutput(stderr)
	o := &options{}
	fs.StringVar(&o.dsPath, "dataset", "dataset.json", "dataset file from cmd/datasetgen")
	fs.StringVar(&o.out, "out", "framework.json", "output path for the trained framework")
	fs.IntVar(&o.epochs, "epochs", 120, "training epochs for both models")
	fs.Int64Var(&o.seed, "seed", 1, "training seed")
	fs.IntVar(&o.workers, "workers", 0, "minibatch gradient workers (0 = all cores); any value trains identically")
	fs.StringVar(&o.ckDir, "checkpoint-dir", "", "checkpoint directory; enables crash-safe training and graceful SIGINT/SIGTERM drain")
	fs.IntVar(&o.ckEvery, "checkpoint-every", 1, "checkpoint cadence in epochs")
	fs.BoolVar(&o.resume, "resume", false, "resume from -checkpoint-dir (requires it to be set)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}
	return o, nil
}

func validate(o *options) error {
	if o.epochs <= 0 {
		return fmt.Errorf("-epochs must be positive, got %d", o.epochs)
	}
	if o.workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", o.workers)
	}
	if o.ckEvery <= 0 {
		return fmt.Errorf("-checkpoint-every must be positive, got %d", o.ckEvery)
	}
	if o.resume && o.ckDir == "" {
		return errors.New("-resume requires -checkpoint-dir")
	}
	if o.out == "" {
		return errors.New("-out must not be empty")
	}
	if dir := filepath.Dir(o.out); dir != "." {
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			return fmt.Errorf("output directory %s does not exist", dir)
		}
	}
	return nil
}

func run(args []string, stdout, stderr io.Writer) int {
	o, err := parseFlags(args, stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		fmt.Fprintln(stderr, "trainer:", err)
		return 2
	}
	if err := validate(o); err != nil {
		fmt.Fprintln(stderr, "trainer:", err)
		return 2
	}

	platform, dsA, dsB, err := dataset.Load(o.dsPath)
	if err != nil {
		fmt.Fprintln(stderr, "trainer:", err)
		return 1
	}
	var p *hw.Platform
	switch platform {
	case "TX2":
		p = hw.TX2()
	case "AGX":
		p = hw.AGX()
	default:
		fmt.Fprintf(stderr, "trainer: dataset %s has unknown platform %q\n", o.dsPath, platform)
		return 1
	}
	fmt.Fprintf(stderr, "training on %s: %d network samples, %d block samples\n",
		p.Name, len(dsA.Samples), len(dsB.Samples))

	cfg := core.DefaultDeployConfig()
	cfg.Seed = o.seed
	cfg.HyperTrain.Epochs = o.epochs
	cfg.DecisionTrain.Epochs = o.epochs
	cfg.HyperTrain.Workers = o.workers
	cfg.DecisionTrain.Workers = o.workers

	var ck *core.CheckpointOptions
	if o.ckDir != "" {
		dir, err := checkpoint.Open(o.ckDir)
		if err != nil {
			fmt.Fprintln(stderr, "trainer:", err)
			return 2
		}
		if !o.resume {
			shards, err := dir.List("*.ckpt")
			if err == nil && len(shards) > 0 {
				fmt.Fprintf(stderr, "trainer: checkpoint dir %s already holds %d checkpoints; pass -resume to continue that run or use a fresh directory\n",
					o.ckDir, len(shards))
				return 2
			}
		}

		stop := make(chan struct{})
		signals := make(chan os.Signal, 2)
		signal.Notify(signals, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-signals
			fmt.Fprintln(stderr, "trainer: signal received; draining (finishing the in-flight epoch, saving) — signal again to exit immediately")
			close(stop)
			<-signals
			fmt.Fprintln(stderr, "trainer: second signal; exiting immediately")
			os.Exit(130)
		}()
		defer signal.Stop(signals)
		ck = &core.CheckpointOptions{Dir: dir, Every: o.ckEvery, Stop: stop}
	}

	report := &core.DeployReport{}
	start := time.Now()
	fw, err := core.TrainFrameworkCheckpointed(p, dsA, dsB, cfg, report, ck)
	if err != nil {
		if errors.Is(err, core.ErrDrained) {
			fmt.Fprintf(stderr, "trainer: drained after %v; rerun with -resume to continue\n",
				time.Since(start).Round(time.Millisecond))
			return 0
		}
		fmt.Fprintln(stderr, "trainer:", err)
		return 1
	}

	fmt.Fprintf(stdout, "clustering hyperparameter prediction model: accuracy %.1f%% (paper: 92.6%%), trained in %v\n",
		report.HyperAccuracy*100, report.HyperTrainTime.Round(time.Millisecond))
	fmt.Fprintf(stdout, "target frequency decision model:            accuracy %.1f%% (paper: 94.2%%), trained in %v\n",
		report.DecisionAccuracy*100, report.DecisionTrainTime.Round(time.Millisecond))
	fmt.Fprintf(stdout, "decision mean level error: %.2f (paper: misses land 1-2 levels from the optimum)\n",
		report.DecisionMeanLevelError)
	if report.DecisionConfusion != nil {
		fmt.Fprint(stdout, report.DecisionConfusion)
	}
	fmt.Fprintf(stdout, "total training time: %v\n", time.Since(start).Round(time.Millisecond))

	if err := fw.Save(o.out); err != nil {
		fmt.Fprintln(stderr, "trainer:", err)
		return 1
	}
	fmt.Fprintf(stderr, "saved framework to %s\n", o.out)
	return 0
}
