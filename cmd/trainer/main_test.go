package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"powerlens/internal/dataset"
	"powerlens/internal/hw"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero epochs", []string{"-epochs", "0"}, "-epochs must be positive"},
		{"negative workers", []string{"-workers", "-2"}, "-workers must be >= 0"},
		{"zero cadence", []string{"-checkpoint-every", "0"}, "-checkpoint-every must be positive"},
		{"resume without dir", []string{"-resume"}, "-resume requires -checkpoint-dir"},
		{"empty out", []string{"-out", ""}, "-out must not be empty"},
		{"missing out dir", []string{"-out", "/no/such/dir/fw.json"}, "does not exist"},
		{"positional junk", []string{"x"}, "unexpected arguments"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tc.args...)
			if code != 2 {
				t.Fatalf("exit = %d, want 2 (stderr: %s)", code, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Fatalf("stderr %q does not mention %q", stderr, tc.want)
			}
		})
	}
}

func TestMissingDatasetFails(t *testing.T) {
	code, _, stderr := runCLI(t, "-dataset", filepath.Join(t.TempDir(), "none.json"))
	if code != 1 || !strings.Contains(stderr, "load") {
		t.Fatalf("exit = %d, stderr %q", code, stderr)
	}
}

// End-to-end: train a tiny framework twice — plain and checkpointed with a
// resume — and require byte-identical framework files.
func TestCheckpointedTrainingByteIdentical(t *testing.T) {
	dir := t.TempDir()
	p := hw.TX2()
	a, b := dataset.Generate(p, dataset.DefaultConfig(30, 3))
	dsPath := filepath.Join(dir, "ds.json")
	if err := dataset.Save(dsPath, p.Name, a, b); err != nil {
		t.Fatal(err)
	}
	common := []string{"-dataset", dsPath, "-epochs", "4", "-seed", "3"}

	ref := filepath.Join(dir, "ref.json")
	if code, _, stderr := runCLI(t, append(common, "-out", ref)...); code != 0 {
		t.Fatalf("reference run failed: %s", stderr)
	}

	got := filepath.Join(dir, "got.json")
	ck := filepath.Join(dir, "ck")
	if code, _, stderr := runCLI(t, append(common, "-out", got, "-checkpoint-dir", ck)...); code != 0 {
		t.Fatalf("checkpointed run failed: %s", stderr)
	}
	refData, _ := os.ReadFile(ref)
	gotData, _ := os.ReadFile(got)
	if !bytes.Equal(refData, gotData) {
		t.Fatal("checkpointed framework differs from plain run")
	}

	// Resume over the completed directory restores instantly, identically.
	got2 := filepath.Join(dir, "got2.json")
	if code, _, stderr := runCLI(t, append(common, "-out", got2, "-checkpoint-dir", ck, "-resume")...); code != 0 {
		t.Fatalf("resume run failed: %s", stderr)
	}
	got2Data, _ := os.ReadFile(got2)
	if !bytes.Equal(refData, got2Data) {
		t.Fatal("resumed framework differs from plain run")
	}

	// Without -resume, a populated checkpoint dir is refused.
	code, _, stderr := runCLI(t, append(common, "-out", got2, "-checkpoint-dir", ck)...)
	if code != 2 || !strings.Contains(stderr, "-resume") {
		t.Fatalf("exit = %d, stderr %q; want refusal without -resume", code, stderr)
	}
}
