// Command powerlens runs the offline PowerLens workflow for one model on one
// simulated platform: deploy (or load) the framework, analyze the model into
// a power view, and print the frequency plan preset at each DVFS
// instrumentation point, together with the predicted energy/EE improvement
// over running at maximum frequency.
//
// Usage:
//
//	powerlens -model resnet152 -platform TX2 [-networks 400] [-seed 1]
//	          [-load framework.json] [-save framework.json]
//	powerlens -list
//	powerlens runs <list | show ID | diff ID1 ID2 | verify [ID...]> [-dir runs]
//	powerlens promcheck [file|-] ...
//	powerlens audit <show FILE | diff A B | baseline -o FILE>
//
// The runs subcommand browses the run-provenance store written by
// `experiments observe/resilience -run-dir` (see internal/obs/runlog);
// `runs verify` re-hashes recorded artifacts against their manifests and
// exits nonzero on corruption. The promcheck subcommand validates Prometheus
// text-exposition files (exported pages or /metrics scrapes; no argument
// reads stdin) and exits nonzero on format drift. The audit subcommand
// inspects decision-audit artifacts: `show` renders PLAU recorder dumps and
// PLAB drift baselines as JSON, `diff` compares two dumps' aggregates, and
// `baseline` regenerates the training-distribution drift baseline.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"powerlens/internal/core"
	"powerlens/internal/governor"
	"powerlens/internal/graph"
	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/sim"
)

func main() {
	// Subcommands dispatch before flag parsing; everything else is the
	// classic single-model workflow driven by flags alone.
	if len(os.Args) > 1 && os.Args[1] == "runs" {
		runRuns(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "promcheck" {
		runPromcheck(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "audit" {
		runAudit(os.Args[2:])
		return
	}
	var (
		modelName = flag.String("model", "resnet152", "model to analyze (see -list)")
		platform  = flag.String("platform", "TX2", "platform: TX2 or AGX")
		networks  = flag.Int("networks", 400, "random networks for deployment training")
		seed      = flag.Int64("seed", 1, "master seed")
		loadPath  = flag.String("load", "", "load a trained framework instead of deploying")
		savePath  = flag.String("save", "", "save the trained framework to this path")
		list      = flag.Bool("list", false, "list available models and exit")
		images    = flag.Int("images", 50, "images per evaluation task")
		modelFile = flag.String("model-file", "", "load the model graph from a JSON file (see graph.WriteJSON) instead of -model")
		dotPath   = flag.String("dot", "", "write a Graphviz rendering of the power view to this path")
	)
	flag.Parse()

	if *list {
		fmt.Println("available models:", strings.Join(models.Names(), ", "))
		return
	}

	var g *graph.Graph
	var err error
	if *modelFile != "" {
		f, ferr := os.Open(*modelFile)
		if ferr != nil {
			fatal(ferr)
		}
		g, err = graph.ReadJSON(f)
		f.Close()
	} else {
		g, err = models.Build(*modelName)
	}
	if err != nil {
		fatal(err)
	}

	var p *hw.Platform
	switch strings.ToUpper(*platform) {
	case "TX2":
		p = hw.TX2()
	case "AGX":
		p = hw.AGX()
	default:
		fatal(fmt.Errorf("unknown platform %q (want TX2 or AGX)", *platform))
	}

	var fw *core.Framework
	if *loadPath != "" {
		fw, err = core.LoadFramework(*loadPath)
		if err != nil {
			fatal(err)
		}
		if fw.Platform.Name != p.Name {
			fatal(fmt.Errorf("framework %s was trained for %s, not %s", *loadPath, fw.Platform.Name, p.Name))
		}
		fmt.Fprintf(os.Stderr, "loaded framework from %s\n", *loadPath)
	} else {
		cfg := core.DefaultDeployConfig()
		cfg.NumNetworks = *networks
		cfg.Seed = *seed
		fmt.Fprintf(os.Stderr, "deploying PowerLens on %s (%d random networks)...\n", p.Name, *networks)
		var report *core.DeployReport
		fw, report, err = core.Deploy(p, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "  dataset: %v (%d blocks), hyper model: %v (acc %.1f%%), decision model: %v (acc %.1f%%)\n",
			report.DatasetTime.Round(time.Millisecond), report.NumBlocks,
			report.HyperTrainTime.Round(time.Millisecond), report.HyperAccuracy*100,
			report.DecisionTrainTime.Round(time.Millisecond), report.DecisionAccuracy*100)
	}
	if *savePath != "" {
		if err := fw.Save(*savePath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "saved framework to %s\n", *savePath)
	}

	a, err := fw.Analyze(g)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("model %s on %s — %d layers, %.2f GFLOPs, %.1fM params\n",
		g.Name, p.Name, len(g.Layers), float64(g.TotalFLOPs())/1e9, float64(g.TotalParams())/1e6)
	fmt.Printf("clustering hyperparameters: eps=%.2f minPts=%d (predicted)\n", a.Hyper.Eps, a.Hyper.MinPts)
	fmt.Print(a.View.Render(a.Levels))
	for i, b := range a.View.Blocks {
		f := p.GPUFreqsHz[a.Levels[i]]
		var flops, bytes int64
		for id := b.StartLayer; id <= b.EndLayer; id++ {
			l := g.Layers[id]
			flops += l.FLOPs()
			bytes += l.MemBytes()
		}
		bd := p.GPUOpBreakdown(flops, bytes, f)
		fmt.Printf("  block %d @ %.0f MHz (level %d): power %.2f W = idle %.2f + leak %.2f + dyn %.2f + dram %.2f\n",
			i+1, f/1e6, a.Levels[i], bd.TotalW(), bd.IdleW, bd.LeakW, bd.DynamicW, bd.DRAMW)
	}
	if *dotPath != "" {
		starts := make([]int, a.View.NumBlocks())
		ends := make([]int, a.View.NumBlocks())
		for i, b := range a.View.Blocks {
			starts[i], ends[i] = b.StartLayer, b.EndLayer
		}
		f, ferr := os.Create(*dotPath)
		if ferr != nil {
			fatal(ferr)
		}
		if err := g.WriteDOT(f, starts, ends); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote power-view DOT to %s\n", *dotPath)
	}
	fmt.Printf("workflow timings: features %v, prediction %v, clustering %v, decisions %v\n",
		a.Timings.FeatureExtraction.Round(time.Microsecond),
		a.Timings.HyperPrediction.Round(time.Microsecond),
		a.Timings.Clustering.Round(time.Microsecond),
		a.Timings.Decision.Round(time.Microsecond))

	// Evaluate against the built-in governor and the fmax baseline.
	pl := sim.NewExecutor(p, governor.NewPowerLens(a.Plan)).RunTask(g, *images)
	bim := sim.NewExecutor(p, governor.NewOndemand()).RunTask(g, *images)
	fmax := sim.NewExecutor(p, governor.NewStatic(p.NumGPULevels()-1)).RunTask(g, *images)

	fmt.Printf("\nevaluation (%d images):\n", *images)
	printRun := func(name string, r sim.Result) {
		fmt.Printf("  %-10s energy %8.3f J   time %12v   P̄ %6.2f W   EE %8.4f img/J\n",
			name, r.EnergyJ, r.Time.Round(time.Millisecond), r.AvgPowerW(), r.EE())
	}
	printRun("PowerLens", pl)
	printRun("BiM", bim)
	printRun("fmax", fmax)
	fmt.Printf("  EE gain vs BiM: %+.2f%%   vs fmax: %+.2f%%\n",
		(pl.EE()/bim.EE()-1)*100, (pl.EE()/fmax.EE()-1)*100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "powerlens:", err)
	os.Exit(1)
}
