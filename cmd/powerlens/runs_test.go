package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"powerlens/internal/obs/runlog"
)

func verifyStore(t *testing.T) (*runlog.Store, *runlog.Run) {
	t.Helper()
	s, err := runlog.Open(filepath.Join(t.TempDir(), "runs"))
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Begin(runlog.Manifest{Scenario: "observe", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WriteArtifact("trace.json", func(w io.Writer) error {
		_, werr := io.WriteString(w, `{"events":[]}`)
		return werr
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.Finish(time.Second, map[string]float64{"m": 1}); err != nil {
		t.Fatal(err)
	}
	return s, r
}

func TestRunsVerifyCleanStore(t *testing.T) {
	s, r := verifyStore(t)
	if !runsVerify(s, nil) {
		t.Fatal("clean store failed verification")
	}
	if !runsVerify(s, []string{r.ID()}) {
		t.Fatal("clean run failed targeted verification")
	}
}

func TestRunsVerifyDetectsBitRot(t *testing.T) {
	s, r := verifyStore(t)
	path := filepath.Join(r.Dir(), "trace.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if runsVerify(s, nil) {
		t.Fatal("verification passed over a rotted artifact")
	}
}

func TestRunsVerifyDetectsBrokenManifest(t *testing.T) {
	s, r := verifyStore(t)
	if err := os.WriteFile(filepath.Join(r.Dir(), runlog.ManifestName), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if runsVerify(s, nil) {
		t.Fatal("verification passed over a torn manifest")
	}
}

func TestRunsVerifyEmptyStore(t *testing.T) {
	s, err := runlog.Open(filepath.Join(t.TempDir(), "runs"))
	if err != nil {
		t.Fatal(err)
	}
	if !runsVerify(s, nil) {
		t.Fatal("empty store should verify clean")
	}
}
