package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"powerlens/internal/obs/runlog"
)

// runRuns is the `powerlens runs` subcommand family over the run-provenance
// store that `experiments observe/resilience -run-dir` writes:
//
//	powerlens runs list [-dir runs]           # index every recorded run
//	powerlens runs show [-dir runs] ID        # one run's manifest
//	powerlens runs diff [-dir runs] ID1 ID2   # headline-metric deltas
//	powerlens runs verify [-dir runs] [ID...] # re-hash artifacts vs manifests
func runRuns(args []string) {
	if len(args) == 0 {
		runsUsage()
	}
	sub := args[0]
	fs := flag.NewFlagSet("runs "+sub, flag.ExitOnError)
	dir := fs.String("dir", "runs", "run-provenance store directory")
	fs.Parse(args[1:])
	// stdlib flag parsing stops at the first positional arg; peel run ids off
	// and re-parse so `runs show ID -dir runs` works as naturally as
	// `runs show -dir runs ID`.
	var rest []string
	for leftover := fs.Args(); len(leftover) > 0; leftover = fs.Args() {
		if len(leftover[0]) > 1 && strings.HasPrefix(leftover[0], "-") {
			fs.Parse(leftover)
			continue
		}
		rest = append(rest, leftover[0])
		fs.Parse(leftover[1:])
	}

	store, err := runlog.Open(*dir)
	if err != nil {
		fatal(err)
	}
	switch sub {
	case "list":
		runsList(store)
	case "show":
		if len(rest) != 1 {
			runsUsage()
		}
		runsShow(store, rest[0])
	case "diff":
		if len(rest) != 2 {
			runsUsage()
		}
		runsDiff(store, rest[0], rest[1])
	case "verify":
		if !runsVerify(store, rest) {
			os.Exit(1)
		}
	default:
		runsUsage()
	}
}

func runsUsage() {
	fmt.Fprintln(os.Stderr, "usage: powerlens runs <list | show ID | diff ID1 ID2 | verify [ID...]> [-dir runs]")
	os.Exit(2)
}

func runsList(store *runlog.Store) {
	ms, err := store.List()
	if err != nil {
		fatal(err)
	}
	if len(ms) == 0 {
		fmt.Printf("no runs recorded under %s\n", store.Root())
		return
	}
	fmt.Printf("%d runs under %s:\n", len(ms), store.Root())
	fmt.Printf("  %-24s %-12s %-8s %6s %12s %20s  %s\n",
		"run", "scenario", "platform", "seed", "wall", "start (UTC)", "artifacts")
	for _, m := range ms {
		wall := "running"
		if m.WallMS > 0 {
			wall = (time.Duration(m.WallMS * float64(time.Millisecond))).Round(time.Millisecond).String()
		}
		arts := make([]string, 0, len(m.Artifacts))
		for a := range m.Artifacts {
			arts = append(arts, a)
		}
		sort.Strings(arts)
		fmt.Printf("  %-24s %-12s %-8s %6d %12s %20s  %s\n",
			m.RunID, m.Scenario, m.Platform, m.Seed, wall,
			m.Start.UTC().Format("2006-01-02 15:04:05"), strings.Join(arts, ","))
	}
}

func runsShow(store *runlog.Store, id string) {
	m, err := store.Get(id)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("run %s (schema %d)\n", m.RunID, m.Schema)
	fmt.Printf("  scenario  %s on %s, seed %d, config digest %s\n", m.Scenario, m.Platform, m.Seed, m.ConfigDigest)
	fmt.Printf("  built by  %s (%s/%s)\n", m.GoVersion, m.HostOS, m.HostArch)
	fmt.Printf("  started   %s, wall %.1f ms\n", m.Start.UTC().Format(time.RFC3339), m.WallMS)
	if len(m.Artifacts) > 0 {
		arts := make([]string, 0, len(m.Artifacts))
		for a := range m.Artifacts {
			arts = append(arts, a)
		}
		sort.Strings(arts)
		fmt.Printf("  artifacts %s\n", strings.Join(arts, ", "))
	}
	if len(m.Metrics) > 0 {
		names := make([]string, 0, len(m.Metrics))
		for n := range m.Metrics {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println("  metrics:")
		for _, n := range names {
			fmt.Printf("    %-28s %14.4f\n", n, m.Metrics[n])
		}
	}
}

// runsVerify re-hashes the artifacts of the named runs (all runs when ids is
// empty) against their manifests, printing one line per artifact. It returns
// false when any run is broken — a corrupt manifest or a digest mismatch —
// so the CLI can exit nonzero and scripts can gate on provenance integrity.
func runsVerify(store *runlog.Store, ids []string) bool {
	if len(ids) == 0 {
		all, err := store.IDs()
		if err != nil {
			fatal(err)
		}
		ids = all
	}
	if len(ids) == 0 {
		fmt.Printf("no runs recorded under %s\n", store.Root())
		return true
	}
	ok := true
	for _, id := range ids {
		checks, err := store.VerifyRun(id)
		if err != nil {
			fmt.Printf("%s: BROKEN: %v\n", id, err)
			ok = false
			continue
		}
		if len(checks) == 0 {
			fmt.Printf("%s: ok (no artifacts)\n", id)
			continue
		}
		for _, c := range checks {
			switch {
			case c.OK && c.Unverified:
				fmt.Printf("%s: %s: unverified (manifest predates artifact digests)\n", id, c.Name)
			case c.OK:
				fmt.Printf("%s: %s: ok\n", id, c.Name)
			default:
				fmt.Printf("%s: %s: CORRUPT: %s\n", id, c.Name, c.Problem)
				ok = false
			}
		}
	}
	return ok
}

func runsDiff(store *runlog.Store, idA, idB string) {
	a, err := store.Get(idA)
	if err != nil {
		fatal(err)
	}
	b, err := store.Get(idB)
	if err != nil {
		fatal(err)
	}
	// Refuse to diff runs whose artifacts no longer match their manifests —
	// a comparison over corrupt provenance is worse than no comparison.
	for _, id := range []string{idA, idB} {
		checks, err := store.VerifyRun(id)
		if err != nil {
			fatal(err)
		}
		for _, c := range checks {
			if !c.OK {
				fatal(fmt.Errorf("run %s artifact %s failed verification (%s); run `powerlens runs verify` for details", id, c.Name, c.Problem))
			}
		}
	}
	fmt.Printf("runs diff %s -> %s\n", a.RunID, b.RunID)
	if a.ConfigDigest != b.ConfigDigest {
		fmt.Printf("  config digests differ: %s -> %s\n", a.ConfigDigest, b.ConfigDigest)
	}
	ds := runlog.Diff(a, b)
	if len(ds) == 0 {
		fmt.Println("  no headline metrics recorded")
		return
	}
	fmt.Printf("  %-28s %14s %14s %9s\n", "metric", "a", "b", "change")
	for _, d := range ds {
		switch {
		case d.OnlyA:
			fmt.Printf("  %-28s %14.4f %14s %9s\n", d.Name, d.A, "-", "only a")
		case d.OnlyB:
			fmt.Printf("  %-28s %14s %14.4f %9s\n", d.Name, "-", d.B, "only b")
		default:
			fmt.Printf("  %-28s %14.4f %14.4f %+8.1f%%\n", d.Name, d.A, d.B, d.Pct)
		}
	}
}
