package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"powerlens/internal/obs/audit"
)

func writeRecorderDump(t *testing.T, path string, extraApplies int) {
	t.Helper()
	rec := audit.New(audit.Config{RingSize: 8})
	rec.RecordDecision(1, "alexnet", 0xbeef, 0, 3, 5, 0.4, []float64{1, 2})
	rec.RecordApply(1, "powerlens", "alexnet", 0xbeef, 0, 0, 3)
	for i := 0; i < extraApplies; i++ {
		rec.RecordApply(1, "powerlens", "alexnet", 0xbeef, 1, 4, 7)
	}
	rec.RecordGuard(2, "strike", "broken", 3, "invalid-level")
	if err := os.WriteFile(path, rec.EncodeBinary(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestAuditShowPLAUAndBaseline(t *testing.T) {
	dir := t.TempDir()
	dump := filepath.Join(dir, "audit.plau")
	writeRecorderDump(t, dump, 0)

	var stdout, stderr bytes.Buffer
	if code := auditCmd([]string{"show", dump}, &stdout, &stderr); code != 0 {
		t.Fatalf("show = %d, stderr %s", code, stderr.String())
	}
	var snap audit.Snapshot
	if err := json.Unmarshal(stdout.Bytes(), &snap); err != nil {
		t.Fatalf("show output is not a Snapshot: %v", err)
	}
	if len(snap.Applies) != 1 || len(snap.GuardEvents) != 1 {
		t.Fatalf("show snapshot wrong: %+v", snap)
	}

	base := audit.NewBaseline(3)
	for i := 0; i < 10; i++ {
		base.Observe([]float64{1, 2, float64(i)})
	}
	bpath := filepath.Join(dir, "baseline.plqs")
	if err := os.WriteFile(bpath, base.EncodeBinary(), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	if code := auditCmd([]string{"show", bpath}, &stdout, &stderr); code != 0 {
		t.Fatalf("show baseline = %d, stderr %s", code, stderr.String())
	}
	var summary struct {
		Format string `json:"format"`
		Count  uint64 `json:"count"`
		Dims   []struct {
			Dim int     `json:"dim"`
			P50 float64 `json:"p50"`
		} `json:"dims"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &summary); err != nil {
		t.Fatalf("baseline summary is not JSON: %v\n%s", err, stdout.String())
	}
	if summary.Format != "PLAB" || summary.Count != 10 || len(summary.Dims) != 3 {
		t.Fatalf("baseline summary wrong: %+v", summary)
	}

	// Garbage is rejected with exit 1.
	junk := filepath.Join(dir, "junk.bin")
	os.WriteFile(junk, []byte("\x00\x01\x02"), 0o644)
	if code := auditCmd([]string{"show", junk}, &stdout, &stderr); code != 1 {
		t.Fatalf("show junk = %d, want 1", code)
	}
}

func TestAuditDiffExitCodes(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.plau")
	b := filepath.Join(dir, "b.plau")
	c := filepath.Join(dir, "c.plau")
	writeRecorderDump(t, a, 0)
	writeRecorderDump(t, b, 0)
	writeRecorderDump(t, c, 2)

	var stdout, stderr bytes.Buffer
	if code := auditCmd([]string{"diff", a, b}, &stdout, &stderr); code != 0 {
		t.Fatalf("identical dumps diff = %d, stdout %s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "identical") {
		t.Fatalf("diff output %q lacks identical verdict", stdout.String())
	}
	stdout.Reset()
	if code := auditCmd([]string{"diff", a, c}, &stdout, &stderr); code != 1 {
		t.Fatalf("differing dumps diff = %d, want 1", code)
	}
	if !strings.Contains(stdout.String(), "+ apply") {
		t.Fatalf("diff output %q lacks the added apply cell", stdout.String())
	}
}

func TestAuditUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	for _, args := range [][]string{nil, {"bogus"}, {"show"}, {"diff", "one"}, {"baseline"}} {
		if code := auditCmd(args, &stdout, &stderr); code != 2 {
			t.Fatalf("auditCmd(%v) = %d, want 2", args, code)
		}
	}
}

func TestAuditBaselineGeneration(t *testing.T) {
	out := filepath.Join(t.TempDir(), "baseline.plqs")
	var stdout, stderr bytes.Buffer
	code := auditCmd([]string{"baseline", "-networks", "6", "-seed", "3", "-o", out}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("baseline = %d, stderr %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	base, err := audit.DecodeBaseline(data)
	if err != nil {
		t.Fatal(err)
	}
	if base.Count() == 0 || base.NumDims() == 0 {
		t.Fatalf("generated baseline empty: %d dims, %d samples", base.NumDims(), base.Count())
	}
}
