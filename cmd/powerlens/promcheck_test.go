package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const validPage = `# HELP sim_energy_joules_total Exactly-integrated rail energy.
# TYPE sim_energy_joules_total counter
sim_energy_joules_total 123.456
`

// TestPromcheckExitCodes pins the subcommand's exit-code contract across its
// input modes: files, explicit stdin ("-"), and the no-argument stdin
// default.
func TestPromcheckExitCodes(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.prom")
	if err := os.WriteFile(good, []byte(validPage), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.prom")
	if err := os.WriteFile(bad, []byte("sim_energy_joules_total 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name  string
		args  []string
		stdin string
		code  int
		out   string // substring expected on stdout (exit 0 only)
	}{
		{name: "valid file", args: []string{good}, code: 0, out: "ok (1 families)"},
		{name: "two valid files", args: []string{good, good}, code: 0, out: "ok (1 families)"},
		{name: "malformed file", args: []string{bad}, code: 1},
		{name: "missing file", args: []string{filepath.Join(dir, "nope.prom")}, code: 1},
		{name: "explicit stdin", args: []string{"-"}, stdin: validPage, code: 0, out: "stdin: ok"},
		{name: "no args reads stdin", args: nil, stdin: validPage, code: 0, out: "stdin: ok"},
		{name: "no args malformed stdin", args: nil, stdin: "not prometheus {", code: 1},
		{name: "empty stdin", args: nil, stdin: "", code: 0, out: "ok (0 families)"},
		{name: "bad after good still fails", args: []string{good, bad}, code: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := promcheck(tc.args, strings.NewReader(tc.stdin), &stdout, &stderr)
			if code != tc.code {
				t.Fatalf("exit code = %d, want %d (stderr: %s)", code, tc.code, stderr.String())
			}
			if tc.out != "" && !strings.Contains(stdout.String(), tc.out) {
				t.Fatalf("stdout %q does not contain %q", stdout.String(), tc.out)
			}
			if tc.code != 0 && stderr.Len() == 0 {
				t.Fatal("failure produced no stderr diagnostic")
			}
		})
	}
}
