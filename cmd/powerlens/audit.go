package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"powerlens/internal/core"
	"powerlens/internal/dataset"
	"powerlens/internal/hw"
	"powerlens/internal/obs/audit"
)

// runAudit inspects decision-audit artifacts:
//
//	audit show FILE        render a PLAU recorder dump or PLAB drift baseline
//	                       (or an already-JSON audit export) as JSON
//	audit diff A B         compare two PLAU dumps' aggregates; exit 1 on drift
//	audit baseline ...     regenerate a training-distribution drift baseline
func runAudit(args []string) {
	os.Exit(auditCmd(args, os.Stdout, os.Stderr))
}

const auditUsage = `usage: powerlens audit <show FILE | diff A B | baseline [-platform TX2] [-networks N] [-seed S] -o FILE>`

// auditCmd is the testable core of the audit subcommand; it returns the
// process exit code.
func auditCmd(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, auditUsage)
		return 2
	}
	switch args[0] {
	case "show":
		if len(args) != 2 {
			fmt.Fprintln(stderr, "usage: powerlens audit show FILE")
			return 2
		}
		return auditShow(args[1], stdout, stderr)
	case "diff":
		if len(args) != 3 {
			fmt.Fprintln(stderr, "usage: powerlens audit diff A B")
			return 2
		}
		return auditDiff(args[1], args[2], stdout, stderr)
	case "baseline":
		return auditBaseline(args[1:], stdout, stderr)
	default:
		fmt.Fprintln(stderr, auditUsage)
		return 2
	}
}

// auditShow renders one audit artifact as indented JSON, sniffing the format
// from the payload: PLAU recorder dumps and PLAB baselines decode, JSON
// exports pass through.
func auditShow(path string, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "powerlens:", err)
		return 1
	}
	switch {
	case audit.IsPLAU(data):
		rec, err := audit.Decode(data)
		if err != nil {
			fmt.Fprintf(stderr, "powerlens: %s: %v\n", path, err)
			return 1
		}
		if err := rec.WriteJSON(stdout); err != nil {
			fmt.Fprintln(stderr, "powerlens:", err)
			return 1
		}
	case audit.IsBaseline(data):
		base, err := audit.DecodeBaseline(data)
		if err != nil {
			fmt.Fprintf(stderr, "powerlens: %s: %v\n", path, err)
			return 1
		}
		writeBaselineSummary(stdout, base)
	case len(data) > 0 && (data[0] == '{' || data[0] == '['):
		// Already a JSON export (e.g. a saved /audit response).
		stdout.Write(data)
	default:
		fmt.Fprintf(stderr, "powerlens: %s: not a PLAU dump, PLAB baseline or JSON export\n", path)
		return 1
	}
	return 0
}

// writeBaselineSummary prints a drift baseline's per-dimension quantiles.
func writeBaselineSummary(w io.Writer, base *audit.Baseline) {
	fmt.Fprintf(w, "{\n  \"format\": \"PLAB\",\n  \"count\": %d,\n  \"dims\": [\n", base.Count())
	for i := 0; i < base.NumDims(); i++ {
		s := base.Dim(i)
		comma := ","
		if i == base.NumDims()-1 {
			comma = ""
		}
		fmt.Fprintf(w, "    {\"dim\": %d, \"p50\": %g, \"p90\": %g, \"max\": %g}%s\n",
			i, s.Quantile(0.5), s.Quantile(0.9), s.Quantile(1), comma)
	}
	fmt.Fprint(w, "  ]\n}\n")
}

// auditDiff compares the aggregate sections of two PLAU dumps (the rings are
// placement-sensitive detail and are ignored). Exit 0 means the aggregates
// match; 1 means drift, with one line per differing cell.
func auditDiff(pathA, pathB string, stdout, stderr io.Writer) int {
	load := func(path string) (audit.Snapshot, bool) {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "powerlens:", err)
			return audit.Snapshot{}, false
		}
		rec, err := audit.Decode(data)
		if err != nil {
			fmt.Fprintf(stderr, "powerlens: %s: %v\n", path, err)
			return audit.Snapshot{}, false
		}
		return rec.Snapshot(), true
	}
	a, ok := load(pathA)
	if !ok {
		return 1
	}
	b, ok := load(pathB)
	if !ok {
		return 1
	}

	diffs := 0
	report := func(format string, args ...any) {
		fmt.Fprintf(stdout, format+"\n", args...)
		diffs++
	}
	lines := func(snap audit.Snapshot) map[string]string {
		out := map[string]string{}
		for _, ap := range snap.Applies {
			out[fmt.Sprintf("apply %s %s block=%d layer=%d level=%d",
				ap.Model, ap.Digest, ap.Block, ap.Layer, ap.Level)] = fmt.Sprint(ap.Count)
		}
		for _, ge := range snap.GuardEvents {
			out[fmt.Sprintf("guard %s reason=%q", ge.Event, ge.Reason)] = fmt.Sprint(ge.Count)
		}
		for _, m := range snap.Models {
			out[fmt.Sprintf("model %s %s", m.Model, m.Digest)] = fmt.Sprintf(
				"decisions=%d probes=%d agreements=%d agreement=%.4f regretP99=%.6f",
				m.Decisions, m.Probes, m.Agreements, m.AgreementRatio, m.RegretP99)
		}
		return out
	}
	la, lb := lines(a), lines(b)
	keys := make([]string, 0, len(la)+len(lb))
	for k := range la {
		keys = append(keys, k)
	}
	for k := range lb {
		if _, dup := la[k]; !dup {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		va, inA := la[k]
		vb, inB := lb[k]
		switch {
		case !inB:
			report("- %s: %s", k, va)
		case !inA:
			report("+ %s: %s", k, vb)
		case va != vb:
			report("~ %s: %s -> %s", k, va, vb)
		}
	}
	if a.Records != b.Records {
		report("~ records: %d -> %d", a.Records, b.Records)
	}
	if diffs > 0 {
		fmt.Fprintf(stdout, "%d differing entries\n", diffs)
		return 1
	}
	fmt.Fprintln(stdout, "audit aggregates identical")
	return 0
}

// auditBaseline regenerates the training-distribution drift baseline the
// deployed framework embeds: Dataset A's raw global feature vectors folded
// into per-dimension quantile sketches, written as a PLAB artifact.
func auditBaseline(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("audit baseline", flag.ContinueOnError)
	fs.SetOutput(stderr)
	platform := fs.String("platform", "TX2", "platform: TX2 or AGX")
	networks := fs.Int("networks", 400, "random networks, matching the deployment's -networks")
	seed := fs.Int64("seed", 1, "master seed, matching the deployment's -seed")
	out := fs.String("o", "", "output path for the PLAB baseline (required)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *out == "" {
		fmt.Fprintln(stderr, "powerlens: audit baseline: -o is required")
		return 2
	}
	var p *hw.Platform
	switch strings.ToUpper(*platform) {
	case "TX2":
		p = hw.TX2()
	case "AGX":
		p = hw.AGX()
	default:
		fmt.Fprintf(stderr, "powerlens: unknown platform %q (want TX2 or AGX)\n", *platform)
		return 1
	}
	dsA, _ := dataset.Generate(p, dataset.DefaultConfig(*networks, *seed))
	base := core.DatasetBaseline(dsA)
	if err := os.WriteFile(*out, base.EncodeBinary(), 0o644); err != nil {
		fmt.Fprintln(stderr, "powerlens:", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote baseline to %s (%d dims, %d samples)\n", *out, base.NumDims(), base.Count())
	return 0
}
