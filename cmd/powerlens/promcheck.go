package main

import (
	"fmt"
	"io"
	"os"

	"powerlens/internal/obs"
)

// runPromcheck validates Prometheus text-exposition files ("-" = stdin; no
// arguments also reads stdin, so scrapes pipe straight in) with the same
// checker the exporter's golden tests use, so CI can assert that exported
// pages stay in the format scrapers accept. Exits nonzero on the first
// malformed file.
func runPromcheck(args []string) {
	os.Exit(promcheck(args, os.Stdin, os.Stdout, os.Stderr))
}

// promcheck is the testable core: it validates each named file (or stdin)
// and returns the process exit code — 0 on success, 1 on the first malformed
// or unreadable input.
func promcheck(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		args = []string{"-"}
	}
	for _, path := range args {
		var r io.Reader = stdin
		name := "stdin"
		if path != "-" {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintln(stderr, "powerlens:", err)
				return 1
			}
			r, name = f, path
			defer f.Close()
		}
		families, err := obs.CheckPrometheusText(r)
		if err != nil {
			fmt.Fprintf(stderr, "powerlens: %s: %v\n", name, err)
			return 1
		}
		fmt.Fprintf(stdout, "%s: ok (%d families)\n", name, families)
	}
	return 0
}
