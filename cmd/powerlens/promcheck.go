package main

import (
	"fmt"
	"io"
	"os"

	"powerlens/internal/obs"
)

// runPromcheck validates Prometheus text-exposition files ("-" = stdin) with
// the same checker the exporter's golden tests use, so CI can assert that
// exported pages stay in the format scrapers accept. Exits nonzero on the
// first malformed file.
func runPromcheck(args []string) {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: powerlens promcheck <file|-> ...")
		os.Exit(2)
	}
	for _, path := range args {
		var r io.Reader = os.Stdin
		name := "stdin"
		if path != "-" {
			f, err := os.Open(path)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			r, name = f, path
		}
		families, err := obs.CheckPrometheusText(r)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Printf("%s: ok (%d families)\n", name, families)
	}
}
