package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"powerlens/internal/experiments"
	"powerlens/internal/hw"
	"powerlens/internal/obs"
	"powerlens/internal/obs/runlog"
	"powerlens/internal/obs/slo"
)

// sloFlags is the parsed flag set for `experiments slo`.
type sloFlags struct {
	networks   int
	seed       int64
	tasks      int
	target     float64
	budget     float64
	sloOut     string
	ledgerOut  string
	metricsOut string
	serve      string
	serveFor   time.Duration
	runDir     string
}

func parseSLOFlags(args []string) (sloFlags, error) {
	var o sloFlags
	fs := flag.NewFlagSet("slo", flag.ContinueOnError)
	fs.IntVar(&o.networks, "networks", 400, "random networks per platform for deployment")
	fs.Int64Var(&o.seed, "seed", 1, "master seed for the task flow")
	fs.IntVar(&o.tasks, "tasks", 24, "task-flow length")
	fs.Float64Var(&o.target, "target", 0.1, "allowed QoS-violation fraction (latency error budget)")
	fs.Float64Var(&o.budget, "budget", 10, "per-model average power budget in watts (<0 disables the energy objective)")
	fs.StringVar(&o.sloOut, "slo-out", "slo_status.json", "SLO status JSON output path (empty = skip)")
	fs.StringVar(&o.ledgerOut, "ledger-out", "slo_ledger.json", "energy-attribution ledger JSON output path (empty = skip)")
	fs.StringVar(&o.metricsOut, "metrics-out", "slo_metrics.prom", "Prometheus text output path (empty = skip)")
	fs.StringVar(&o.serve, "serve", "", "serve live telemetry on this address (e.g. :8080; empty = off)")
	fs.DurationVar(&o.serveFor, "serve-for", 0, "with -serve: keep serving this long after the run (0 = until interrupted)")
	fs.StringVar(&o.runDir, "run-dir", "", "record manifest + artifacts in this run-provenance store (empty = off)")
	err := fs.Parse(args)
	return o, err
}

// runSLO executes the attributed scenario on TX2: a guarded MultiPlan task
// flow feeding the energy-attribution ledger and the SLO burn-rate tracker.
// With -serve the tracker is mounted on the live server BEFORE the run, so
// GET /slo answers with the current burn state while the flow executes; the
// ledger and SLO status land as JSON artifacts and new ledger_*/slo_* metric
// families in the Prometheus export.
func runSLO(args []string) {
	f, err := parseSLOFlags(args)
	if err != nil {
		os.Exit(2)
	}

	o := obs.New()
	store := openRunStore(f.runDir)
	srv, running := startTelemetry(f.serve, o, store)

	opt := experiments.SLOOptions{
		Tasks: f.tasks, Seed: f.seed,
		ViolationTarget: f.target, PowerBudgetW: f.budget,
		Obs: o,
	}
	tracker := slo.New(opt.TrackerConfig())
	opt.Tracker = tracker
	if srv != nil {
		srv.SetSLO(tracker)
	}

	env := buildEnv(f.networks, f.seed)

	var run *runlog.Run
	if store != nil {
		run = beginRun(store, "slo", "TX2", f.seed, struct {
			Networks, Tasks int
			Target, PowerW  float64
			Seed            int64
		}{f.networks, f.tasks, f.target, f.budget, f.seed})
		if srv != nil {
			srv.SetLiveRun(run.ID())
		}
	}

	start := time.Now()
	d, err := experiments.SLO(env, hw.TX2(), opt)
	if err != nil {
		fail(err)
	}
	wall := time.Since(start)
	fmt.Println(experiments.RenderSLO(d))
	if err := exportObs(d.Obs, nil, "", f.metricsOut); err != nil {
		fail(err)
	}
	if err := writeJSONFile(f.sloOut, d.Status); err != nil {
		fail(err)
	}
	if err := writeJSONFile(f.ledgerOut, d.Ledger); err != nil {
		fail(err)
	}

	if run != nil {
		err := run.WriteArtifact("slo.json", func(w io.Writer) error {
			return tracker.WriteJSON(w)
		})
		if err != nil {
			fail(err)
		}
		err = run.WriteArtifact("ledger.json", func(w io.Writer) error {
			return writeIndentedJSON(w, d.Ledger)
		})
		if err != nil {
			fail(err)
		}
		metrics := map[string]float64{}
		for k, v := range d.Flow.Headline() {
			metrics["flow_"+k] = v
		}
		for k, v := range tracker.HeadlineMetrics() {
			metrics[k] = v
		}
		finishRun(run, d.Obs, d.Events, wall, metrics)
	}
	lingerTelemetry(running, f.serveFor)
}

// writeJSONFile writes v as indented JSON to path ("" = skip).
func writeJSONFile(path string, v any) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := writeIndentedJSON(f, v); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

func writeIndentedJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
