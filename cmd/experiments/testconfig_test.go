package main

import "powerlens/internal/core"

// testDeployConfig is the minimal deployment used by CLI plumbing tests.
func testDeployConfig() core.DeployConfig {
	cfg := core.DefaultDeployConfig()
	cfg.NumNetworks = 40
	cfg.HyperTrain.Epochs = 20
	cfg.DecisionTrain.Epochs = 20
	return cfg
}
