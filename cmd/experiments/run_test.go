package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"powerlens/internal/experiments"
	"powerlens/internal/hw"
)

func TestExpFlags(t *testing.T) {
	n, seed, rest := expFlags([]string{"-networks", "123", "-seed", "9", "77"})
	if n != 123 || seed != 9 {
		t.Fatalf("flags = %d/%d", n, seed)
	}
	if len(rest) != 1 || rest[0] != "77" {
		t.Fatalf("rest = %v", rest)
	}
	n, seed, rest = expFlags(nil)
	if n != 400 || seed != 1 || len(rest) != 0 {
		t.Fatalf("defaults = %d/%d/%v", n, seed, rest)
	}
}

func TestWriteFig1CSVs(t *testing.T) {
	if testing.Short() {
		t.Skip("deploys a framework")
	}
	dir := t.TempDir()
	env := testEnvForCmd(t)
	writeFig1CSVs(env, dir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("csv files = %d, want 3 (FPG-G, BiM, PowerLens)", len(entries))
	}
	data, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "time_ms,power_w,freq_mhz\n") {
		t.Fatalf("csv header wrong: %q", string(data[:40]))
	}
}

// testEnvForCmd deploys a minimal env (kept tiny; this is a CLI plumbing
// test, not a shape test).
func testEnvForCmd(t *testing.T) *experiments.Env {
	t.Helper()
	env := buildTestEnv(t)
	return env
}

var cachedEnv *experiments.Env

func buildTestEnv(t *testing.T) *experiments.Env {
	t.Helper()
	if cachedEnv != nil {
		return cachedEnv
	}
	cfg := testDeployConfig()
	env, err := experiments.NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cachedEnv = env
	return env
}

func TestRunSwitchOutput(t *testing.T) {
	// runSwitch prints to stdout; just verify the underlying call.
	for _, p := range hw.Platforms() {
		if got := experiments.SwitchOverhead(p, 100); got.Milliseconds() != 50 {
			t.Fatalf("%s switch overhead = %v", p.Name, got)
		}
	}
}
