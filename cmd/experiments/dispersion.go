package main

// Dispersion diagnostic: per model, split the graph at spatial-resolution
// changes and report each segment's oracle level, energy share and
// memory-bound time share. Healthy reproduction needs segments whose oracle
// levels differ by several ladder steps with non-trivial energy shares —
// that dispersion is what per-block DVFS (and the P-N ablation gap) feeds on.

import (
	"fmt"

	"powerlens/internal/graph"
	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/sim"
)

func runDispersion() {
	for _, p := range hw.Platforms() {
		fmt.Printf("=== %s ===\n", p.Name)
		for _, name := range models.Names() {
			g := models.MustBuild(name)
			bounds := []int{0}
			prevH := g.Layers[0].OutShape.H
			for _, l := range g.Layers {
				if l.OutShape.H != prevH && l.OutShape.H >= 1 {
					bounds = append(bounds, l.ID)
					prevH = l.OutShape.H
				}
			}
			bounds = append(bounds, len(g.Layers))
			fmt.Printf("%s:\n", name)
			var totalE float64
			type seg struct {
				s, e, lvl int
				energy    float64
				memShare  float64
			}
			var segs []seg
			for i := 0; i+1 < len(bounds); i++ {
				s, e := bounds[i], bounds[i+1]-1
				if e < s {
					continue
				}
				lvl, es := sim.OptimalSegmentLevel(p, g, s, e)
				var memT, totT float64
				for id := s; id <= e; id++ {
					l := g.Layers[id]
					if l.Kind == graph.OpInput {
						continue
					}
					c := p.GPUOpCost(l.FLOPs(), l.MemBytes(), p.MaxGPUFreq())
					totT += c.Time.Seconds()
					memT += c.Time.Seconds() * (1 - c.ComputeUt)
				}
				ms := 0.0
				if totT > 0 {
					ms = memT / totT
				}
				segs = append(segs, seg{s, e, lvl, es[lvl], ms})
				totalE += es[lvl]
			}
			for _, sg := range segs {
				fmt.Printf("  [%4d-%4d] lvl=%2d Eshare=%4.1f%% memshare=%.2f\n",
					sg.s, sg.e, sg.lvl, 100*sg.energy/totalE, sg.memShare)
			}
		}
	}
}
