package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"powerlens/internal/experiments"
	"powerlens/internal/hw"
	"powerlens/internal/obs"
	"powerlens/internal/obs/audit"
	"powerlens/internal/obs/runlog"
	"powerlens/internal/obs/slo"
)

// driftFlags is the parsed flag set for `experiments drift`.
type driftFlags struct {
	networks    int
	seed        int64
	traffic     int
	audited     int
	threshold   float64
	auditOut    string
	driftOut    string
	baselineOut string
	metricsOut  string
	serve       string
	serveFor    time.Duration
	runDir      string
}

func parseDriftFlags(args []string) (driftFlags, error) {
	var o driftFlags
	fs := flag.NewFlagSet("drift", flag.ContinueOnError)
	fs.IntVar(&o.networks, "networks", 400, "random networks per platform for deployment")
	fs.Int64Var(&o.seed, "seed", 1, "master seed for the live traffic")
	fs.IntVar(&o.traffic, "traffic", 128, "live networks per phase observed by the drift monitor")
	fs.IntVar(&o.audited, "audited", 6, "networks per phase running the full audited pipeline")
	fs.Float64Var(&o.threshold, "threshold", audit.DefaultDriftThreshold, "PSI alert threshold")
	fs.StringVar(&o.auditOut, "audit-out", "drift_audit.json", "audit snapshot JSON output path (empty = skip)")
	fs.StringVar(&o.driftOut, "drift-out", "drift_status.json", "per-phase drift status JSON output path (empty = skip)")
	fs.StringVar(&o.baselineOut, "baseline-out", "", "write the training drift baseline as a PLAB artifact (empty = skip)")
	fs.StringVar(&o.metricsOut, "metrics-out", "drift_metrics.prom", "Prometheus text output path (empty = skip)")
	fs.StringVar(&o.serve, "serve", "", "serve live telemetry on this address (e.g. :8080; empty = off)")
	fs.DurationVar(&o.serveFor, "serve-for", 0, "with -serve: keep serving this long after the run (0 = until interrupted)")
	fs.StringVar(&o.runDir, "run-dir", "", "record manifest + artifacts in this run-provenance store (empty = off)")
	err := fs.Parse(args)
	return o, err
}

// runDrift executes the decision-provenance scenario on TX2: two phases of
// live traffic against the deployed framework — first in-distribution, then
// with an injected generator shift — with the audit recorder and the PSI
// drift monitor attached. With -serve the recorder is mounted on the live
// server BEFORE the run, so GET /audit and GET /drift answer while traffic
// flows; drift alerts are folded into the SLO tracker served on GET /slo.
func runDrift(args []string) {
	f, err := parseDriftFlags(args)
	if err != nil {
		os.Exit(2)
	}

	o := obs.New()
	store := openRunStore(f.runDir)
	srv, running := startTelemetry(f.serve, o, store)

	rec := audit.New(audit.Config{})
	tracker := slo.New(slo.Config{})
	if srv != nil {
		srv.SetAudit(rec)
		srv.SetSLO(tracker)
	}

	env := buildEnv(f.networks, f.seed)

	var run *runlog.Run
	if store != nil {
		run = beginRun(store, "drift", "TX2", f.seed, struct {
			Networks, Traffic, Audited int
			Threshold                  float64
			Seed                       int64
		}{f.networks, f.traffic, f.audited, f.threshold, f.seed})
		if srv != nil {
			srv.SetLiveRun(run.ID())
		}
	}

	opt := experiments.DriftOptions{
		Traffic: f.traffic, Networks: f.audited, Seed: f.seed,
		Threshold: f.threshold,
		Obs:       o, Recorder: rec, Tracker: tracker,
	}
	start := time.Now()
	d, err := experiments.Drift(env, hw.TX2(), opt)
	if err != nil {
		fail(err)
	}
	wall := time.Since(start)
	fmt.Println(experiments.RenderDrift(d))
	if err := exportObs(d.Obs, nil, "", f.metricsOut); err != nil {
		fail(err)
	}
	if err := writeJSONFile(f.auditOut, d.Audit); err != nil {
		fail(err)
	}
	phases := struct {
		InDistribution audit.DriftStatus `json:"inDistribution"`
		Shifted        audit.DriftStatus `json:"shifted"`
	}{d.InDistribution, d.Shifted}
	if err := writeJSONFile(f.driftOut, phases); err != nil {
		fail(err)
	}
	if f.baselineOut != "" {
		base := env.Frameworks[hw.TX2().Name].Baseline
		if err := os.WriteFile(f.baselineOut, base.EncodeBinary(), 0o644); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", f.baselineOut)
	}

	if run != nil {
		err := run.WriteArtifact("audit.json", func(w io.Writer) error {
			return rec.WriteJSON(w)
		})
		if err != nil {
			fail(err)
		}
		err = run.WriteArtifact("drift.json", func(w io.Writer) error {
			return writeIndentedJSON(w, phases)
		})
		if err != nil {
			fail(err)
		}
		err = run.WriteArtifact("baseline.plqs", func(w io.Writer) error {
			_, werr := w.Write(env.Frameworks[hw.TX2().Name].Baseline.EncodeBinary())
			return werr
		})
		if err != nil {
			fail(err)
		}
		metrics := map[string]float64{
			"drift_max_psi_in_distribution": d.InDistribution.MaxScore,
			"drift_max_psi_shifted":         d.Shifted.MaxScore,
			"drift_alerting_dims":           float64(d.Shifted.AlertingDims),
			"audit_records":                 float64(d.Audit.Records),
		}
		finishRun(run, d.Obs, d.Events, wall, metrics)
	}
	lingerTelemetry(running, f.serveFor)
}
