package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"powerlens/internal/core"
	"powerlens/internal/experiments"
	"powerlens/internal/hw"
	"powerlens/internal/obs"
	"powerlens/internal/report"
	"powerlens/internal/sim"
)

// buildEnv deploys PowerLens on both platforms at the requested scale.
func buildEnv(numNetworks int, seed int64) *experiments.Env {
	cfg := core.DefaultDeployConfig()
	cfg.NumNetworks = numNetworks
	cfg.Seed = seed
	fmt.Fprintf(os.Stderr, "deploying PowerLens on TX2 and AGX (%d random networks each)...\n", numNetworks)
	start := time.Now()
	env, err := experiments.NewEnv(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "deploy failed:", err)
		os.Exit(1)
	}
	for _, p := range hw.Platforms() {
		r := env.Reports[p.Name]
		fmt.Fprintf(os.Stderr, "  %s: hyper model acc %.1f%%, decision model acc %.1f%% (mean level error %.2f), %d block samples\n",
			p.Name, r.HyperAccuracy*100, r.DecisionAccuracy*100, r.DecisionMeanLevelError, r.NumBlocks)
	}
	fmt.Fprintf(os.Stderr, "deployment done in %v\n\n", time.Since(start).Round(time.Millisecond))
	return env
}

// expFlags parses the common -networks/-seed flags for experiment commands.
func expFlags(args []string) (networks int, seed int64, rest []string) {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	n := fs.Int("networks", 400, "random networks per platform for deployment")
	s := fs.Int64("seed", 1, "master seed")
	fs.Parse(args)
	return *n, *s, fs.Args()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// runAll deploys once and regenerates every table and figure.
func runAll(args []string) {
	n, seed, _ := expFlags(args)
	env := buildEnv(n, seed)
	runTable1WithEnv(env)
	runTable2WithEnv(env)
	runTable3WithEnv(env)
	runFig5WithEnv(env, 100)
	runFig1WithEnv(env, false)
	runExtWithEnv(env)
	runThermalWithEnv(env)
	runResilienceWithEnv(env, 40, 4, 40, seed)
	runSwitch()
}

func runThermal(args []string) {
	n, seed, _ := expFlags(args)
	runThermalWithEnv(buildEnv(n, seed))
}

func runThermalWithEnv(env *experiments.Env) {
	const images = 600
	for _, p := range hw.Platforms() {
		rows, err := experiments.ThermalStudy(env, p, images)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderThermal(p.Name, images, rows))
	}
}

func runExt(args []string) {
	n, seed, _ := expFlags(args)
	runExtWithEnv(buildEnv(n, seed))
}

func runExtWithEnv(env *experiments.Env) {
	for _, p := range hw.Platforms() {
		rows, err := experiments.Extensions(env, p)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderExtensions(p.Name, rows))
	}
}

func runTable1(args []string) {
	n, seed, _ := expFlags(args)
	runTable1WithEnv(buildEnv(n, seed))
}

func runTable1WithEnv(env *experiments.Env) {
	for _, p := range hw.Platforms() {
		rows, err := experiments.Table1(env, p)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderTable1(p.Name, rows))
	}
}

func runTable2(args []string) {
	n, seed, _ := expFlags(args)
	runTable2WithEnv(buildEnv(n, seed))
}

func runTable2WithEnv(env *experiments.Env) {
	for _, p := range hw.Platforms() {
		rows, err := experiments.Table2(env, p, 5)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderTable2(p.Name, rows))
	}
}

func runTable3(args []string) {
	n, seed, _ := expFlags(args)
	runTable3WithEnv(buildEnv(n, seed))
}

func runTable3WithEnv(env *experiments.Env) {
	var data []*experiments.Table3Data
	for _, p := range hw.Platforms() {
		d, err := experiments.Table3(env, p)
		if err != nil {
			fail(err)
		}
		data = append(data, d)
	}
	fmt.Println(experiments.RenderTable3(data[0], data[1]))
}

func runFig5(args []string) {
	n, seed, rest := expFlags(args)
	numTasks := 100
	if len(rest) > 0 {
		fmt.Sscanf(rest[0], "%d", &numTasks)
	}
	runFig5WithEnv(buildEnv(n, seed), numTasks)
}

func runFig5WithEnv(env *experiments.Env, numTasks int) {
	for _, p := range hw.Platforms() {
		results, err := experiments.Fig5(env, p, numTasks, 42)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderFig5(p.Name, numTasks, results))
	}
}

func runFig1(args []string) {
	fs := flag.NewFlagSet("fig1", flag.ExitOnError)
	n := fs.Int("networks", 400, "random networks per platform for deployment")
	s := fs.Int64("seed", 1, "master seed")
	csvDir := fs.String("csv", "", "write per-method tegrastats CSV traces into this directory")
	traceOut := fs.String("trace-out", "", "write per-method Chrome trace JSON (empty = off)")
	metricsOut := fs.String("metrics-out", "", "write per-method Prometheus text (empty = off)")
	fs.Parse(args)
	env := buildEnv(*n, *s)
	if *csvDir != "" {
		writeFig1CSVs(env, *csvDir)
		return
	}
	if *traceOut != "" || *metricsOut != "" {
		o := obs.New()
		traces, err := experiments.Fig1Observed(env, hw.TX2(), o)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderFig1(traces))
		if err := exportObs(o, o.Tracer.Events(), *traceOut, *metricsOut); err != nil {
			fail(err)
		}
		return
	}
	runFig1WithEnv(env, true)
}

// writeFig1CSVs exports the Figure 1 traces as CSV files for plotting.
func writeFig1CSVs(env *experiments.Env, dir string) {
	traces, err := experiments.Fig1(env, hw.TX2())
	if err != nil {
		fail(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fail(err)
	}
	for _, tr := range traces {
		path := filepath.Join(dir, "fig1_"+strings.ReplaceAll(tr.Method, "-", "_")+".csv")
		f, err := os.Create(path)
		if err != nil {
			fail(err)
		}
		if err := sim.WriteTraceCSV(f, tr.Samples); err != nil {
			fail(err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote %s (%d samples)\n", path, len(tr.Samples))
	}
}

func runFig1WithEnv(env *experiments.Env, printTraces bool) {
	p := hw.TX2()
	traces, err := experiments.Fig1(env, p)
	if err != nil {
		fail(err)
	}
	fmt.Println(experiments.RenderFig1(traces))
	if !printTraces {
		return
	}
	fmt.Println("frequency traces (time_ms freq_MHz per method):")
	for _, tr := range traces {
		fmt.Printf("# %s\n", tr.Method)
		for i, s := range tr.Samples {
			if i%10 != 0 { // thin the trace for terminal output
				continue
			}
			fmt.Printf("%8.0f %8.1f\n", float64(s.At.Milliseconds()), s.FreqHz/1e6)
		}
	}
}

func runSwitch() {
	fmt.Println("§3.3 microbenchmark: 100 DVFS level changes")
	for _, p := range hw.Platforms() {
		total := experiments.SwitchOverhead(p, 100)
		fmt.Printf("%-4s total %-8v (avg %v per change; pipeline stall %v per change)\n",
			p.Name, total, total/100, p.SwitchLatency)
	}
}

// runReport collects every experiment and writes the self-contained HTML
// report with inline SVG figures.
func runReport(args []string) {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	n := fs.Int("networks", 400, "random networks per platform for deployment")
	s := fs.Int64("seed", 1, "master seed")
	out := fs.String("o", "report.html", "output path")
	tasks := fs.Int("tasks", 50, "task-flow length for Figure 5")
	fs.Parse(args)

	env := buildEnv(*n, *s)
	data, err := report.Collect(env, *tasks)
	if err != nil {
		fail(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := report.WriteHTML(f, data); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
