package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"powerlens/internal/experiments"
)

// runBench drives the seeded benchmark harness:
//
//	experiments bench [-name N] [-seed S] [-smoke] [-repeats R] [-filter G] [-o F]
//	                  [-cpuprofile F] [-memprofile F]
//	experiments bench compare [-slack X] OLD.json NEW.json
//	experiments bench validate FILE...
//
// A plain run measures the hot paths and writes a schema-versioned
// BENCH_<name>.json; compare diffs two reports against their recorded
// per-metric tolerances and exits nonzero on regression; validate checks
// report files against the schema.
func runBench(args []string) {
	if len(args) > 0 {
		switch args[0] {
		case "compare":
			runBenchCompare(args[1:])
			return
		case "validate":
			runBenchValidate(args[1:])
			return
		}
	}
	if err := benchRun(args, os.Stdout, os.Stderr); err != nil {
		fail(err)
	}
}

// benchRun is the measuring branch of `experiments bench`, returning errors
// (a zero-match -filter, an unwritable output path) instead of exiting so
// tests can drive the CLI surface directly.
func benchRun(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	name := fs.String("name", "local", "report name (also names the default output file)")
	seed := fs.Int64("seed", 1, "workload seed")
	smoke := fs.Bool("smoke", false, "CI-smoke sizes: same metrics, seconds not minutes")
	repeats := fs.Int("repeats", 0, "timed repetitions per measurement, fastest kept (0 = default)")
	filter := fs.String("filter", "", `run only sections whose group matches the substring (e.g. "offline")`)
	out := fs.String("o", "", `output path (default BENCH_<name>.json; "-" = print only)`)
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the bench run to the given file")
	memprofile := fs.String("memprofile", "", "write a heap profile taken after the bench run to the given file")
	fs.Parse(args)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	r, err := experiments.RunBench(experiments.BenchOptions{
		Name: *name, Seed: *seed, Smoke: *smoke, Repeats: *repeats, Filter: *filter,
	})
	if err != nil {
		return err
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		runtime.GC() // settle the heap so the profile shows live state, not garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Fprint(stdout, experiments.RenderBenchReport(r))

	path := *out
	if path == "" {
		path = "BENCH_" + r.Name + ".json"
	}
	if path == "-" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := experiments.WriteBenchReport(f, r); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %s\n", path)
	return nil
}

func runBenchCompare(args []string) {
	fs := flag.NewFlagSet("bench compare", flag.ExitOnError)
	slack := fs.Float64("slack", 1, "tolerance multiplier (2 = twice as lenient, for cross-machine diffs)")
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) != 2 {
		fail(errors.New("usage: experiments bench compare [-slack X] OLD.json NEW.json"))
	}
	old, err := experiments.LoadBenchReport(rest[0])
	if err != nil {
		fail(err)
	}
	cur, err := experiments.LoadBenchReport(rest[1])
	if err != nil {
		fail(err)
	}
	ds, regressed := experiments.CompareBench(old, cur, *slack)
	fmt.Printf("bench compare %s (%q) -> %s (%q), slack %.1fx:\n", rest[0], old.Name, rest[1], cur.Name, *slack)
	fmt.Print(experiments.RenderBenchDeltas(ds))
	if regressed {
		fail(errors.New("bench: regression detected"))
	}
	fmt.Println("no regressions")
}

func runBenchValidate(args []string) {
	if len(args) == 0 {
		fail(errors.New("usage: experiments bench validate FILE..."))
	}
	for _, path := range args {
		r, err := experiments.LoadBenchReport(path)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s: ok (report %q, schema %d, %d metrics)\n", path, r.Name, r.Schema, len(r.Metrics))
	}
}
