package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"powerlens/internal/experiments"
	"powerlens/internal/hw"
	"powerlens/internal/obs"
)

// runObserve executes the fully instrumented scenario on TX2 and exports the
// observability snapshot: a Prometheus text page and a Chrome trace_event
// JSON file loadable in Perfetto / chrome://tracing.
func runObserve(args []string) {
	fs := flag.NewFlagSet("observe", flag.ExitOnError)
	n := fs.Int("networks", 400, "random networks per platform for deployment")
	s := fs.Int64("seed", 1, "master seed (also seeds the fault schedule)")
	tasks := fs.Int("tasks", 20, "single-node task-flow length")
	nodes := fs.Int("nodes", 3, "cluster size")
	jobs := fs.Int("jobs", 20, "cluster job-trace length")
	traceOut := fs.String("trace-out", "observe_trace.json", "Chrome trace_event JSON output path (empty = skip)")
	metricsOut := fs.String("metrics-out", "observe_metrics.prom", "Prometheus text output path (empty = skip)")
	fs.Parse(args)

	env := buildEnv(*n, *s)
	d, err := experiments.Observe(env, hw.TX2(), experiments.ObserveOptions{
		Tasks: *tasks, Nodes: *nodes, Jobs: *jobs, Seed: *s,
	})
	if err != nil {
		fail(err)
	}
	fmt.Println(experiments.RenderObserve(d))
	exportObs(d.Obs, d.Events, *traceOut, *metricsOut)
}

// exportObs writes the trace and metrics artifacts, skipping empty paths.
func exportObs(o *obs.Observer, events []obs.Event, traceOut, metricsOut string) {
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fail(err)
		}
		if err := obs.WriteChromeTrace(f, events); err != nil {
			fail(err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote %s (%d events)\n", traceOut, len(events))
	}
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			fail(err)
		}
		if err := o.Metrics.WritePrometheus(f); err != nil {
			fail(err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote %s\n", metricsOut)
	}
}

// withSuffix inserts a suffix before the path's extension
// ("trace.json", "_TX2" → "trace_TX2.json") for per-platform artifacts.
func withSuffix(path, suffix string) string {
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + suffix + ext
}
