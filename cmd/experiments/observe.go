package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"powerlens/internal/experiments"
	"powerlens/internal/hw"
	"powerlens/internal/obs"
	"powerlens/internal/obs/runlog"
	"powerlens/internal/obs/serve"
)

// observeFlags is the parsed flag set for `experiments observe`, split from
// runObserve so the plumbing is testable without exiting the process.
type observeFlags struct {
	networks   int
	seed       int64
	tasks      int
	nodes      int
	jobs       int
	traceOut   string
	metricsOut string
	serve      string
	serveFor   time.Duration
	runDir     string
}

func parseObserveFlags(args []string) (observeFlags, error) {
	var o observeFlags
	fs := flag.NewFlagSet("observe", flag.ContinueOnError)
	fs.IntVar(&o.networks, "networks", 400, "random networks per platform for deployment")
	fs.Int64Var(&o.seed, "seed", 1, "master seed (also seeds the fault schedule)")
	fs.IntVar(&o.tasks, "tasks", 20, "single-node task-flow length")
	fs.IntVar(&o.nodes, "nodes", 3, "cluster size")
	fs.IntVar(&o.jobs, "jobs", 20, "cluster job-trace length")
	fs.StringVar(&o.traceOut, "trace-out", "observe_trace.json", "Chrome trace_event JSON output path (empty = skip)")
	fs.StringVar(&o.metricsOut, "metrics-out", "observe_metrics.prom", "Prometheus text output path (empty = skip)")
	fs.StringVar(&o.serve, "serve", "", "serve live telemetry on this address (e.g. :8080; empty = off)")
	fs.DurationVar(&o.serveFor, "serve-for", 0, "with -serve: keep serving this long after the run (0 = until interrupted)")
	fs.StringVar(&o.runDir, "run-dir", "", "record manifest + artifacts in this run-provenance store (empty = off)")
	err := fs.Parse(args)
	return o, err
}

// runObserve executes the fully instrumented scenario on TX2 and exports the
// observability snapshot: a Prometheus text page and a Chrome trace_event
// JSON file loadable in Perfetto / chrome://tracing. With -serve the same
// sinks are mounted on a live telemetry server (started before deployment,
// so /healthz answers while the framework trains); with -run-dir the run is
// recorded in the provenance store that `powerlens runs` reads.
func runObserve(args []string) {
	f, err := parseObserveFlags(args)
	if err != nil {
		os.Exit(2)
	}

	o := obs.New()
	store := openRunStore(f.runDir)
	srv, running := startTelemetry(f.serve, o, store)

	env := buildEnv(f.networks, f.seed)

	var run *runlog.Run
	if store != nil {
		run = beginRun(store, "observe", "TX2", f.seed, struct {
			Networks, Tasks, Nodes, Jobs int
			Seed                         int64
		}{f.networks, f.tasks, f.nodes, f.jobs, f.seed})
		if srv != nil {
			srv.SetLiveRun(run.ID())
		}
	}

	start := time.Now()
	d, err := experiments.Observe(env, hw.TX2(), experiments.ObserveOptions{
		Tasks: f.tasks, Nodes: f.nodes, Jobs: f.jobs, Seed: f.seed, Obs: o,
	})
	if err != nil {
		fail(err)
	}
	wall := time.Since(start)
	fmt.Println(experiments.RenderObserve(d))
	if err := exportObs(d.Obs, d.Events, f.traceOut, f.metricsOut); err != nil {
		fail(err)
	}

	if run != nil {
		metrics := map[string]float64{}
		for k, v := range d.Flow.Headline() {
			metrics["flow_"+k] = v
		}
		for k, v := range d.Cluster.Headline() {
			metrics["cluster_"+k] = v
		}
		finishRun(run, d.Obs, d.Events, wall, metrics)
	}
	lingerTelemetry(running, f.serveFor)
}

// openRunStore opens the optional run-provenance store ("" = none).
func openRunStore(dir string) *runlog.Store {
	if dir == "" {
		return nil
	}
	store, err := runlog.Open(dir)
	if err != nil {
		fail(err)
	}
	return store
}

// startTelemetry starts the optional live telemetry server ("" = none).
func startTelemetry(addr string, o *obs.Observer, store *runlog.Store) (*serve.Server, *serve.Running) {
	if addr == "" {
		return nil, nil
	}
	srv := serve.New(o, store)
	running, err := srv.Start(addr)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "telemetry: serving %s/metrics (also /healthz, /runs, /debug/pprof)\n", running.URL())
	return srv, running
}

// beginRun opens a provenance record, digesting the scenario's option set.
func beginRun(store *runlog.Store, scenario, platform string, seed int64, config any) *runlog.Run {
	run, err := store.Begin(runlog.Manifest{
		Scenario:     scenario,
		Platform:     platform,
		Seed:         seed,
		ConfigDigest: runlog.MustDigest(config),
	})
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "telemetry: recording run %s in %s\n", run.ID(), store.Root())
	return run
}

// finishRun records the trace and metrics artifacts plus the final manifest.
func finishRun(run *runlog.Run, o *obs.Observer, events []obs.Event, wall time.Duration, metrics map[string]float64) {
	err := run.WriteArtifact("trace.json", func(w io.Writer) error {
		return obs.WriteChromeTrace(w, events)
	})
	if err == nil {
		err = run.WriteArtifact("metrics.prom", func(w io.Writer) error {
			return o.Metrics.WritePrometheus(w)
		})
	}
	if err == nil {
		err = run.Finish(wall, metrics)
	}
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "telemetry: run %s finished (wall %v)\n", run.ID(), wall.Round(time.Millisecond))
}

// lingerTelemetry keeps a started server up after the scenario so late
// scrapers can still read the final state: for d when positive, until the
// process is interrupted when d is zero. Either way the exit is graceful —
// in-flight scrapes drain (bounded by a shutdown deadline, so a hung client
// cannot wedge the exit) and SIGINT/SIGTERM end the linger early.
func lingerTelemetry(running *serve.Running, d time.Duration) {
	if running == nil {
		return
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	if d > 0 {
		fmt.Fprintf(os.Stderr, "telemetry: serving for another %v at %s (ctrl-c to stop sooner)\n", d, running.URL())
		select {
		case <-time.After(d):
		case <-sig:
			fmt.Fprintln(os.Stderr, "telemetry: interrupted; shutting down")
		}
	} else {
		fmt.Fprintf(os.Stderr, "telemetry: serving at %s until interrupted (ctrl-c to stop)\n", running.URL())
		<-sig
		fmt.Fprintln(os.Stderr, "telemetry: interrupted; shutting down")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := running.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "telemetry:", err)
	}
}

// registryTotals flattens a registry snapshot into headline metrics — one
// total per family — for scenarios without a single Result to summarize.
func registryTotals(fams []obs.FamilySnapshot) map[string]float64 {
	m := make(map[string]float64, len(fams))
	for _, f := range fams {
		m[f.Name] = f.Total()
	}
	return m
}

// exportObs writes the trace and metrics artifacts, skipping empty paths.
func exportObs(o *obs.Observer, events []obs.Event, traceOut, metricsOut string) error {
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := obs.WriteChromeTrace(f, events); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d events)\n", traceOut, len(events))
	}
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			return err
		}
		if err := o.Metrics.WritePrometheus(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", metricsOut)
	}
	return nil
}

// withSuffix inserts a suffix before the path's extension
// ("trace.json", "_TX2" → "trace_TX2.json") for per-platform artifacts.
func withSuffix(path, suffix string) string {
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + suffix + ext
}
