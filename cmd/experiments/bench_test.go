package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestBenchRunFilterNoMatch pins the CLI contract for the -filter bugfix: a
// pattern matching no bench section must surface an error naming the valid
// sections rather than silently writing an empty report.
func TestBenchRunFilterNoMatch(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := benchRun([]string{"-smoke", "-filter", "nosuchsection", "-o", "-"}, &stdout, &stderr)
	if err == nil {
		t.Fatal("zero-match -filter must fail")
	}
	if msg := err.Error(); !strings.Contains(msg, "matches no section") || !strings.Contains(msg, "online") {
		t.Fatalf("error must explain the failure and list sections: %q", msg)
	}
	if stdout.Len() != 0 {
		t.Fatalf("failed run still printed a report: %q", stdout.String())
	}
}

// TestBenchRunPrintOnly pins that -o - renders without writing a file.
func TestBenchRunPrintOnly(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := benchRun([]string{"-smoke", "-filter", "obs", "-o", "-"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "registry_counter_ops_per_sec") {
		t.Fatalf("report not rendered: %q", stdout.String())
	}
	if strings.Contains(stderr.String(), "wrote ") {
		t.Fatalf("-o - must not write a file: %q", stderr.String())
	}
}
