// Command experiments regenerates the paper's tables and figures on the
// simulated platforms. See DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured results.
//
// Usage:
//
//	experiments all    [-networks N] [-seed S]   # everything, one deployment
//	experiments table1 [-networks N] [-seed S]   # Table 1: per-model EE gains
//	experiments table2 [-networks N] [-seed S]   # Table 2: P-R / P-N ablation
//	experiments table3 [-networks N] [-seed S]   # Table 3: offline overhead
//	experiments fig1   [-networks N] [-seed S]   # Figure 1: traces + ping-pong/lag
//	experiments fig5   [-networks N] [-seed S] [tasks]  # Figure 5: task flow
//	experiments report [-networks N] [-o report.html]  # self-contained HTML report
//	experiments thermal [-networks N] [-seed S]  # sustained-load throttling study
//	experiments ext    [-networks N] [-seed S]   # §5 extensions: CPU DVFS + batching
//	experiments resilience [-networks N] [-seed S] [-tasks T] [-nodes K] [-jobs J]
//	                       [-trace-out F] [-metrics-out F] [-serve :8080] [-serve-for D] [-run-dir runs]
//	                                              # fault injection: guarded governors + cluster failover
//	experiments observe [-networks N] [-seed S] [-tasks T] [-nodes K] [-jobs J]
//	                    [-trace-out observe_trace.json] [-metrics-out observe_metrics.prom]
//	                    [-serve :8080] [-serve-for D] [-run-dir runs]
//	                                              # instrumented run: Chrome trace + Prometheus metrics,
//	                                              # live HTTP telemetry, run-provenance recording
//	experiments slo    [-networks N] [-seed S] [-tasks T] [-target F] [-budget W]
//	                   [-slo-out slo_status.json] [-ledger-out slo_ledger.json]
//	                   [-metrics-out slo_metrics.prom] [-serve :8080] [-serve-for D] [-run-dir runs]
//	                                              # energy-attribution ledger + SLO burn-rate tracking,
//	                                              # served live on GET /slo with -serve
//	experiments drift  [-networks N] [-seed S] [-traffic T] [-audited A] [-threshold F]
//	                   [-audit-out drift_audit.json] [-drift-out drift_status.json]
//	                   [-baseline-out baseline.plqs] [-metrics-out drift_metrics.prom]
//	                   [-serve :8080] [-serve-for D] [-run-dir runs]
//	                                              # decision provenance + model-drift detection: two-phase
//	                                              # live traffic (in-distribution, then injected shift),
//	                                              # served live on GET /audit and GET /drift with -serve
//	experiments bench  [-name N] [-seed S] [-smoke] [-repeats R] [-o F]  # perf baseline -> BENCH_<name>.json
//	experiments bench compare [-slack X] OLD.json NEW.json  # exit nonzero on regression
//	experiments bench validate FILE...            # schema-check bench reports
//	experiments switch                            # §3.3 switch microbenchmark
//	experiments calibrate                         # hw-model diagnostics
//	experiments dispersion                        # per-stage oracle diagnostics
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		return
	}
	args := os.Args[2:]
	switch os.Args[1] {
	case "all":
		runAll(args)
	case "table1":
		runTable1(args)
	case "table2":
		runTable2(args)
	case "table3":
		runTable3(args)
	case "fig1":
		runFig1(args)
	case "fig5":
		runFig5(args)
	case "report":
		runReport(args)
	case "thermal":
		runThermal(args)
	case "ext":
		runExt(args)
	case "resilience":
		runResilience(args)
	case "observe":
		runObserve(args)
	case "slo":
		runSLO(args)
	case "drift":
		runDrift(args)
	case "bench":
		runBench(args)
	case "switch":
		runSwitch()
	case "calibrate":
		runCalibrate()
	case "calibrate-v":
		verbose = true
		runCalibrate()
	case "dispersion":
		runDispersion()
	default:
		usage()
	}
}

func usage() {
	fmt.Println("usage: experiments <all|report|table1|table2|table3|fig1|fig5|ext|thermal|resilience|observe|slo|drift|bench|switch|calibrate|dispersion> [-networks N] [-seed S]")
}
