package main

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"powerlens/internal/obs"
)

func TestParseObserveFlags(t *testing.T) {
	f, err := parseObserveFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.networks != 400 || f.seed != 1 || f.tasks != 20 || f.nodes != 3 || f.jobs != 20 {
		t.Fatalf("defaults = %+v", f)
	}
	if f.traceOut != "observe_trace.json" || f.metricsOut != "observe_metrics.prom" {
		t.Fatalf("default outputs = %+v", f)
	}
	if f.serve != "" || f.serveFor != 0 || f.runDir != "" {
		t.Fatalf("telemetry must default off: %+v", f)
	}

	f, err = parseObserveFlags([]string{
		"-networks", "7", "-seed", "9", "-tasks", "3", "-nodes", "2", "-jobs", "4",
		"-trace-out", "t.json", "-metrics-out", "m.prom",
		"-serve", ":8080", "-serve-for", "5s", "-run-dir", "runs",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := observeFlags{networks: 7, seed: 9, tasks: 3, nodes: 2, jobs: 4,
		traceOut: "t.json", metricsOut: "m.prom",
		serve: ":8080", serveFor: 5 * time.Second, runDir: "runs"}
	if f != want {
		t.Fatalf("parsed = %+v, want %+v", f, want)
	}

	if _, err := parseObserveFlags([]string{"-no-such-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestParseResilienceFlags(t *testing.T) {
	f, err := parseResilienceFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.networks != 400 || f.tasks != 40 || f.nodes != 4 || f.jobs != 40 {
		t.Fatalf("defaults = %+v", f)
	}
	if f.observed() {
		t.Fatalf("default flags must take the plain path: %+v", f)
	}
	for _, args := range [][]string{
		{"-trace-out", "t.json"},
		{"-metrics-out", "m.prom"},
		{"-serve", ":0"},
		{"-run-dir", "runs"},
	} {
		f, err := parseResilienceFlags(args)
		if err != nil {
			t.Fatal(err)
		}
		if !f.observed() {
			t.Fatalf("%v must select the instrumented variant", args)
		}
	}
	if _, err := parseResilienceFlags([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// exportTestObserver builds a small observer with one counter and one span.
func exportTestObserver() (*obs.Observer, []obs.Event) {
	o := obs.New()
	o.Metrics.Counter("cli_test_total", "plumbing test", "who").Inc("tester")
	o.Tracer.Complete("span", "test", 1, 0, time.Millisecond, nil)
	return o, o.Tracer.Events()
}

func TestExportObs(t *testing.T) {
	dir := t.TempDir()
	o, events := exportTestObserver()
	tOut := filepath.Join(dir, "trace.json")
	mOut := filepath.Join(dir, "metrics.prom")
	if err := exportObs(o, events, tOut, mOut); err != nil {
		t.Fatal(err)
	}
	trace, err := os.ReadFile(tOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(trace), "traceEvents") {
		t.Fatalf("trace output not a Chrome trace: %q", trace)
	}
	prom, err := os.ReadFile(mOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prom), "cli_test_total") {
		t.Fatalf("metrics output missing the counter: %q", prom)
	}

	// Empty paths skip cleanly.
	if err := exportObs(o, events, "", ""); err != nil {
		t.Fatal(err)
	}

	// Unwritable destinations (a path under a regular file) surface as
	// errors instead of exiting, for both artifacts.
	blocked := filepath.Join(dir, "metrics.prom", "nested.json")
	if err := exportObs(o, events, blocked, ""); err == nil {
		t.Fatal("unwritable trace path did not error")
	}
	if err := exportObs(o, events, "", blocked); err == nil {
		t.Fatal("unwritable metrics path did not error")
	}
}

func TestWithSuffix(t *testing.T) {
	cases := map[[2]string]string{
		{"trace.json", "_TX2"}: "trace_TX2.json",
		{"m.prom", "_AGX"}:     "m_AGX.prom",
		{"noext", "_TX2"}:      "noext_TX2",
	}
	for in, want := range cases {
		if got := withSuffix(in[0], in[1]); got != want {
			t.Fatalf("withSuffix(%q, %q) = %q, want %q", in[0], in[1], got, want)
		}
	}
}

func TestRegistryTotals(t *testing.T) {
	o, _ := exportTestObserver()
	o.Metrics.Counter("cli_more_total", "second family", "who").Add(4, "tester")
	m := registryTotals(o.Metrics.Snapshot())
	if m["cli_test_total"] != 1 || m["cli_more_total"] != 4 || len(m) != 2 {
		t.Fatalf("totals = %v", m)
	}
}

// TestTelemetryPlumbing drives the CLI helpers end to end without a
// deployment: open a store, start a server on a free port, begin a run,
// finish it with artifacts, and check the server indexed all of it.
func TestTelemetryPlumbing(t *testing.T) {
	dir := t.TempDir()
	store := openRunStore(filepath.Join(dir, "runs"))
	if store == nil {
		t.Fatal("openRunStore returned nil for a real dir")
	}
	if s := openRunStore(""); s != nil {
		t.Fatal("empty run dir must disable the store")
	}

	o, events := exportTestObserver()
	srv, running := startTelemetry(":0", o, store)
	if srv == nil || running == nil {
		t.Fatal("startTelemetry did not start")
	}
	defer running.Close()
	if srv2, r2 := startTelemetry("", o, store); srv2 != nil || r2 != nil {
		t.Fatal("empty serve addr must disable the server")
	}

	run := beginRun(store, "observe", "TX2", 42, struct{ Tasks int }{3})
	srv.SetLiveRun(run.ID())
	finishRun(run, o, events, 1500*time.Millisecond, map[string]float64{"flow_images": 5})

	m, err := store.Get(run.ID())
	if err != nil {
		t.Fatal(err)
	}
	if m.Metrics["flow_images"] != 5 || m.WallMS != 1500 || m.ConfigDigest == "" {
		t.Fatalf("manifest = %+v", m)
	}
	for _, a := range []string{"trace.json", "metrics.prom"} {
		if _, ok := m.Artifacts[a]; !ok {
			t.Fatalf("artifact %s not recorded: %v", a, m.Artifacts)
		}
	}

	for _, path := range []string{"/healthz", "/metrics", "/runs", "/runs/" + run.ID(), "/runs/" + run.ID() + "/trace"} {
		resp, err := http.Get(running.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", path, resp.StatusCode, body)
		}
		if len(body) == 0 {
			t.Fatalf("GET %s returned an empty payload", path)
		}
	}
}
