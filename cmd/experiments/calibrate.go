package main

// Calibration report: prints, per platform and model, the static frequency
// sweep (energy per image), the fmax→optimum energy ratio (proxy for the
// Table 1 BiM gap), the time penalty at the optimum, and the additional gain
// from per-block frequency assignment over the best single frequency (proxy
// for the P-N ablation gap). Used to tune hw constants; kept as a
// diagnostics subcommand.

import (
	"fmt"

	"powerlens/internal/cluster"
	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/sim"
)

var verbose = false

func runCalibrate() {
	for _, p := range hw.Platforms() {
		fmt.Printf("=== %s ===\n", p.Name)
		for _, name := range models.Names() {
			g := models.MustBuild(name)
			n := len(g.Layers) - 1

			// Whole-network static sweep.
			bestLvl, energies := sim.OptimalSegmentLevel(p, g, 0, n)
			eMax := energies[p.NumGPULevels()-1]
			eOpt := energies[bestLvl]
			tOpt, _ := sim.SegmentCost(p, g, 0, n, p.GPUFreqsHz[bestLvl])
			tMax, _ := sim.SegmentCost(p, g, 0, n, p.MaxGPUFreq())

			// Per-block oracle using a default clustering.
			a, l := cluster.DefaultDistanceParams()
			hp := cluster.Hyperparams{Eps: 0.30, MinPts: 4, Alpha: a, Lambda: l}
			pv, err := cluster.BuildPowerView(g, hp)
			var eBlocks float64
			var tBlocks float64
			nBlocks := 0
			if err == nil {
				nBlocks = pv.NumBlocks()
				detail := ""
				for _, b := range pv.Blocks {
					lvl, es := sim.OptimalSegmentLevel(p, g, b.StartLayer, b.EndLayer)
					eBlocks += es[lvl]
					bt, _ := sim.SegmentCost(p, g, b.StartLayer, b.EndLayer, p.GPUFreqsHz[lvl])
					tBlocks += bt.Seconds()
					detail += fmt.Sprintf(" [%d-%d lvl=%d E=%.3f]", b.StartLayer, b.EndLayer, lvl, es[lvl])
				}
				if verbose {
					fmt.Printf("  blocks:%s\n", detail)
				}
			}
			fmt.Printf("%-15s optLvl=%2d/%d  E(fmax)/E(opt)=%.3f  t(opt)/t(fmax)=%.2f  blocks=%d  E(opt)/E(blocks)=%.3f  t(blocks)/t(fmax)=%.2f\n",
				name, bestLvl, p.NumGPULevels()-1, eMax/eOpt,
				tOpt.Seconds()/tMax.Seconds(), nBlocks, eOpt/eBlocks,
				tBlocks/tMax.Seconds())
		}
	}
}
