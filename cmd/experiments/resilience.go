package main

import (
	"flag"
	"fmt"

	"powerlens/internal/experiments"
	"powerlens/internal/hw"
)

// runResilience executes the fault-injection scenario: every governor runs
// an identical task flow (and job trace, for the cluster variant) fault-free
// and under the same seeded fault schedule, reporting per-policy fault and
// recovery counters.
func runResilience(args []string) {
	fs := flag.NewFlagSet("resilience", flag.ExitOnError)
	n := fs.Int("networks", 400, "random networks per platform for deployment")
	s := fs.Int64("seed", 1, "master seed (also seeds the fault schedule)")
	tasks := fs.Int("tasks", 40, "task-flow length for the single-node scenario")
	nodes := fs.Int("nodes", 4, "cluster size for the failover scenario")
	jobs := fs.Int("jobs", 40, "job-trace length for the failover scenario")
	fs.Parse(args)

	env := buildEnv(*n, *s)
	runResilienceWithEnv(env, *tasks, *nodes, *jobs, *s)
}

func runResilienceWithEnv(env *experiments.Env, tasks, nodes, jobs int, seed int64) {
	for _, p := range hw.Platforms() {
		rows, err := experiments.Resilience(env, p, tasks, seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderResilience(p.Name, tasks, rows))

		crows, err := experiments.ClusterResilience(env, p, nodes, jobs, seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderClusterResilience(p.Name, nodes, jobs, crows))
	}
}
