package main

import (
	"flag"
	"fmt"

	"powerlens/internal/experiments"
	"powerlens/internal/hw"
	"powerlens/internal/obs"
)

// runResilience executes the fault-injection scenario: every governor runs
// an identical task flow (and job trace, for the cluster variant) fault-free
// and under the same seeded fault schedule, reporting per-policy fault and
// recovery counters. With -trace-out / -metrics-out the faulted runs stream
// into the observability layer and the artifacts are written per platform.
func runResilience(args []string) {
	fs := flag.NewFlagSet("resilience", flag.ExitOnError)
	n := fs.Int("networks", 400, "random networks per platform for deployment")
	s := fs.Int64("seed", 1, "master seed (also seeds the fault schedule)")
	tasks := fs.Int("tasks", 40, "task-flow length for the single-node scenario")
	nodes := fs.Int("nodes", 4, "cluster size for the failover scenario")
	jobs := fs.Int("jobs", 40, "job-trace length for the failover scenario")
	traceOut := fs.String("trace-out", "", "write faulted-run Chrome trace JSON per platform (empty = off)")
	metricsOut := fs.String("metrics-out", "", "write faulted-run Prometheus text per platform (empty = off)")
	fs.Parse(args)

	env := buildEnv(*n, *s)
	if *traceOut == "" && *metricsOut == "" {
		runResilienceWithEnv(env, *tasks, *nodes, *jobs, *s)
		return
	}
	for _, p := range hw.Platforms() {
		o := obs.New()
		rows, err := experiments.ResilienceObserved(env, p, *tasks, *s, o)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderResilience(p.Name, *tasks, rows))

		crows, err := experiments.ClusterResilienceObserved(env, p, *nodes, *jobs, *s, o)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderClusterResilience(p.Name, *nodes, *jobs, crows))

		tOut, mOut := *traceOut, *metricsOut
		if tOut != "" {
			tOut = withSuffix(tOut, "_"+p.Name)
		}
		if mOut != "" {
			mOut = withSuffix(mOut, "_"+p.Name)
		}
		exportObs(o, o.Tracer.Events(), tOut, mOut)
	}
}

func runResilienceWithEnv(env *experiments.Env, tasks, nodes, jobs int, seed int64) {
	for _, p := range hw.Platforms() {
		rows, err := experiments.Resilience(env, p, tasks, seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderResilience(p.Name, tasks, rows))

		crows, err := experiments.ClusterResilience(env, p, nodes, jobs, seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderClusterResilience(p.Name, nodes, jobs, crows))
	}
}
