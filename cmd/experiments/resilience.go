package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"powerlens/internal/experiments"
	"powerlens/internal/hw"
	"powerlens/internal/obs"
	"powerlens/internal/obs/runlog"
)

// resilienceFlags is the parsed flag set for `experiments resilience`, split
// from runResilience so the plumbing is testable without exiting the process.
type resilienceFlags struct {
	networks   int
	seed       int64
	tasks      int
	nodes      int
	jobs       int
	traceOut   string
	metricsOut string
	serve      string
	serveFor   time.Duration
	runDir     string
}

func parseResilienceFlags(args []string) (resilienceFlags, error) {
	var o resilienceFlags
	fs := flag.NewFlagSet("resilience", flag.ContinueOnError)
	fs.IntVar(&o.networks, "networks", 400, "random networks per platform for deployment")
	fs.Int64Var(&o.seed, "seed", 1, "master seed (also seeds the fault schedule)")
	fs.IntVar(&o.tasks, "tasks", 40, "task-flow length for the single-node scenario")
	fs.IntVar(&o.nodes, "nodes", 4, "cluster size for the failover scenario")
	fs.IntVar(&o.jobs, "jobs", 40, "job-trace length for the failover scenario")
	fs.StringVar(&o.traceOut, "trace-out", "", "write faulted-run Chrome trace JSON per platform (empty = off)")
	fs.StringVar(&o.metricsOut, "metrics-out", "", "write faulted-run Prometheus text per platform (empty = off)")
	fs.StringVar(&o.serve, "serve", "", "serve live telemetry on this address (e.g. :8080; empty = off)")
	fs.DurationVar(&o.serveFor, "serve-for", 0, "with -serve: keep serving this long after the runs (0 = until interrupted)")
	fs.StringVar(&o.runDir, "run-dir", "", "record per-platform manifests + artifacts in this run-provenance store (empty = off)")
	err := fs.Parse(args)
	return o, err
}

// observed reports whether any flag requests the instrumented variant.
func (o resilienceFlags) observed() bool {
	return o.traceOut != "" || o.metricsOut != "" || o.serve != "" || o.runDir != ""
}

// runResilience executes the fault-injection scenario: every governor runs
// an identical task flow (and job trace, for the cluster variant) fault-free
// and under the same seeded fault schedule, reporting per-policy fault and
// recovery counters. With -trace-out / -metrics-out the faulted runs stream
// into the observability layer and the artifacts are written per platform;
// -serve mounts the currently-executing platform's observer on a live
// telemetry server, and -run-dir records one provenance run per platform.
func runResilience(args []string) {
	f, err := parseResilienceFlags(args)
	if err != nil {
		os.Exit(2)
	}

	if !f.observed() {
		runResilienceWithEnv(buildEnv(f.networks, f.seed), f.tasks, f.nodes, f.jobs, f.seed)
		return
	}

	store := openRunStore(f.runDir)
	// The observer is per-platform; the server starts with none and is
	// repointed at each platform's sinks as that platform begins.
	srv, running := startTelemetry(f.serve, nil, store)
	env := buildEnv(f.networks, f.seed)

	for _, p := range hw.Platforms() {
		o := obs.New()
		if srv != nil {
			srv.SetObserver(o)
		}
		var run *runlog.Run
		if store != nil {
			run = beginRun(store, "resilience", p.Name, f.seed, struct {
				Networks, Tasks, Nodes, Jobs int
				Seed                         int64
				Platform                     string
			}{f.networks, f.tasks, f.nodes, f.jobs, f.seed, p.Name})
			if srv != nil {
				srv.SetLiveRun(run.ID())
			}
		}

		start := time.Now()
		rows, err := experiments.ResilienceObserved(env, p, f.tasks, f.seed, o)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderResilience(p.Name, f.tasks, rows))

		crows, err := experiments.ClusterResilienceObserved(env, p, f.nodes, f.jobs, f.seed, o)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderClusterResilience(p.Name, f.nodes, f.jobs, crows))
		wall := time.Since(start)

		tOut, mOut := f.traceOut, f.metricsOut
		if tOut != "" {
			tOut = withSuffix(tOut, "_"+p.Name)
		}
		if mOut != "" {
			mOut = withSuffix(mOut, "_"+p.Name)
		}
		if err := exportObs(o, o.Tracer.Events(), tOut, mOut); err != nil {
			fail(err)
		}
		if run != nil {
			finishRun(run, o, o.Tracer.Events(), wall, registryTotals(o.Metrics.Snapshot()))
		}
	}
	lingerTelemetry(running, f.serveFor)
}

func runResilienceWithEnv(env *experiments.Env, tasks, nodes, jobs int, seed int64) {
	for _, p := range hw.Platforms() {
		rows, err := experiments.Resilience(env, p, tasks, seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderResilience(p.Name, tasks, rows))

		crows, err := experiments.ClusterResilience(env, p, nodes, jobs, seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.RenderClusterResilience(p.Name, nodes, jobs, crows))
	}
}
