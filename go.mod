module powerlens

go 1.22
