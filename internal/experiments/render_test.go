package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestRenderTable1(t *testing.T) {
	rows := []Table1Row{
		{Model: "alexnet", Blocks: 1, GainBiM: 0.386, GainFPGG: 0.0294, GainFPGCG: 0.0131},
		{Model: "vgg19", Blocks: 2, GainBiM: 0.434, GainFPGG: 0.23, GainFPGCG: 0.2076},
	}
	out := RenderTable1("TX2", rows)
	for _, want := range []string{"Table 1", "TX2", "alexnet", "38.60%", "vgg19", "23.00%", "Average"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Average of the two BiM gains = 41%.
	if !strings.Contains(out, "41.00%") {
		t.Fatalf("average row wrong:\n%s", out)
	}
}

func TestRenderTable2(t *testing.T) {
	rows := []Table2Row{
		{Model: "resnet34", PRLoss: -0.6684, PNLoss: -0.0625},
	}
	out := RenderTable2("AGX", rows)
	for _, want := range []string{"Table 2", "AGX", "resnet34", "-66.84%", "-6.25%", "Average"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTable3(t *testing.T) {
	tx2 := &Table3Data{
		Platform: "TX2", HyperTrainTime: 20 * time.Hour, DecisionTrainTime: 6 * time.Hour,
		FeatureExtraction: 10 * time.Second, HyperPrediction: 320 * time.Millisecond,
		Clustering: 60 * time.Second, DecisionPerBlock: 220 * time.Millisecond,
	}
	agx := &Table3Data{
		Platform: "AGX", HyperTrainTime: 15 * time.Hour, DecisionTrainTime: 4*time.Hour + 30*time.Minute,
		FeatureExtraction: 10 * time.Second, HyperPrediction: 150 * time.Millisecond,
		Clustering: 60 * time.Second, DecisionPerBlock: 130 * time.Millisecond,
	}
	out := RenderTable3(tx2, agx)
	for _, want := range []string{"20h0m0s", "4h30m0s", "320ms", "130ms", "clustering"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderFig5RelativeNumbers(t *testing.T) {
	results := []Fig5Result{
		{Method: "PowerLens", EnergyJ: 100, Time: 11 * time.Second, EE: 2.0},
		{Method: "BiM", EnergyJ: 200, Time: 10 * time.Second, EE: 1.0},
	}
	out := RenderFig5("TX2", 100, results)
	// Energy -50%, time +10%, EE +100%.
	for _, want := range []string{"-50.00%", "+10.00%", "+100.00%", "PowerLens", "BiM"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderFig1(t *testing.T) {
	traces := []Fig1Trace{
		{Method: "FPG-G", Switches: 58, EnergyJ: 16.2, Time: 4 * time.Second},
		{Method: "PowerLens", Switches: 0, EnergyJ: 14.9, Time: 4 * time.Second},
	}
	out := RenderFig1(traces)
	for _, want := range []string{"Figure 1", "FPG-G", "switches= 58", "PowerLens"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderFig5NoPowerLens(t *testing.T) {
	out := RenderFig5("TX2", 5, []Fig5Result{{Method: "BiM", EnergyJ: 1, Time: time.Second, EE: 1}})
	if strings.Contains(out, "vs") {
		t.Fatal("relative rows must be omitted without a PowerLens result")
	}
}
