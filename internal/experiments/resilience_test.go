package experiments

import (
	"strings"
	"testing"

	"powerlens/internal/hw"
)

func TestResilienceScenario(t *testing.T) {
	e := testEnv(t)
	p := hw.TX2()
	rows, err := Resilience(e, p, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("want 5 policies, got %d", len(rows))
	}
	var guarded *ResilienceRow
	for i := range rows {
		r := &rows[i]
		if r.CleanEE <= 0 || r.FaultEE <= 0 {
			t.Fatalf("%s: EE missing: %+v", r.Method, r)
		}
		// Every policy must have seen the nonzero fault schedule.
		if r.Faults.Total() == 0 {
			t.Fatalf("%s: no faults injected: %+v", r.Method, r.Faults)
		}
		if r.Guard != nil {
			guarded = r
		}
	}
	if guarded == nil {
		t.Fatal("lineup must include a guard-wrapped PowerLens")
	}
	if !strings.HasPrefix(guarded.Method, "guard(") {
		t.Fatalf("guarded method name = %q", guarded.Method)
	}
	// Acceptance criterion: the guarded PowerLens deployment under faults
	// stays within 10% of its fault-free energy efficiency.
	if d := guarded.DeltaEE(); d < -0.10 || d > 0.10 {
		t.Fatalf("guarded PowerLens ΔEE %.2f%% outside ±10%% (faults %+v)", d*100, guarded.Faults)
	}

	out := RenderResilience(p.Name, 10, rows)
	for _, want := range []string{"Resilience", "guard(PowerLens)", "BiM", "wdog", "fallbacks="} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestClusterResilienceScenario(t *testing.T) {
	e := testEnv(t)
	p := hw.TX2()
	rows, err := ClusterResilience(e, p, 3, 12, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("want 5 policies, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Clean.EE() <= 0 || r.Faulty.EE() <= 0 {
			t.Fatalf("%s: cluster EE missing", r.Method)
		}
		if r.Clean.NodesLost != 0 || r.Clean.Failovers != 0 {
			t.Fatalf("%s: clean run degraded: %+v", r.Method, r.Clean)
		}
		if r.Faulty.Faults.Total() == 0 {
			t.Fatalf("%s: no executor faults on degraded run", r.Method)
		}
	}
	out := RenderClusterResilience(p.Name, 3, 12, rows)
	for _, want := range []string{"Cluster resilience", "failov", "lost J", "guard(PowerLens)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestDefaultFaultScheduleSeeded(t *testing.T) {
	a, b := DefaultFaultSchedule(7), DefaultFaultSchedule(7)
	if a != b {
		t.Fatal("schedule must be deterministic in its seed")
	}
	if !a.Enabled() {
		t.Fatal("default schedule must be nonzero")
	}
	if DefaultFaultSchedule(8).Seed == a.Seed {
		t.Fatal("seed must thread through")
	}
}
