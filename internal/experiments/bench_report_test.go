package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// smokeReport runs the harness once per test binary; every subtest reads it.
var smokeReportCache *BenchReport

func smokeReport(t *testing.T) *BenchReport {
	t.Helper()
	if smokeReportCache == nil {
		r, err := RunBench(BenchOptions{Name: "test", Seed: 7, Smoke: true})
		if err != nil {
			t.Fatal(err)
		}
		smokeReportCache = r
	}
	return smokeReportCache
}

// TestRunBenchSmoke is the harness acceptance check: a smoke run validates,
// covers every hot path, and accepts a comparison against itself.
func TestRunBenchSmoke(t *testing.T) {
	r := smokeReport(t)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if !r.Smoke || r.Seed != 7 || r.Name != "test" {
		t.Fatalf("report header wrong: %+v", r)
	}
	// name -> group; orientation is pinned separately below.
	want := []struct{ name, group string }{
		{"executor_layer_steps_per_sec", "sim"},
		{"clustering_views_per_sec", "cluster"},
		{"feature_extracts_per_sec", "features"},
		{"registry_counter_ops_per_sec", "obs"},
		{"tracer_span_ops_per_sec", "obs"},
		{"metrics_scrapes_per_sec", "obs"},
		{"sketch_insert_ns", "obs"},
		{"sketch_merge_ns", "obs"},
		{"ledger_record_allocs", "obs"},
		{"dataset_gen_nets_per_s", "offline"},
		{"oracle_sweep_ns_per_block", "offline"},
		{"oracle_sweep_allocs_per_block", "offline"},
		{"cluster_sweep_allocs_per_cell", "offline"},
		{"train_epoch_ns", "offline"},
		{"analyze_ns_uncached", "online"},
		{"analyze_ns_cached", "online"},
		{"executor_step_allocs", "online"},
		{"dispatch_jobs_per_s_micro", "online"},
		{"dispatch_jobs_per_s", "online"},
	}
	if len(r.Metrics) != len(want) {
		t.Fatalf("got %d metrics, want %d: %+v", len(r.Metrics), len(want), r.Metrics)
	}
	for i, w := range want {
		m := r.Metrics[i]
		if m.Name != w.name || m.Group != w.group {
			t.Fatalf("metric %d is %q/%q, want %q/%q", i, m.Name, m.Group, w.name, w.group)
		}
		wantHigher := m.Unit == "steps/s" || m.Unit == "views/s" || m.Unit == "extracts/s" ||
			m.Unit == "ops/s" || m.Unit == "scrapes/s" || m.Unit == "nets/s" || m.Unit == "jobs/s"
		if m.HigherIsBetter != wantHigher {
			t.Fatalf("metric %q orientation %v disagrees with unit %q", m.Name, m.HigherIsBetter, m.Unit)
		}
		// The two alloc counters are the only metrics whose healthy value IS
		// zero — the fast paths' whole claim.
		zeroOK := m.Name == "executor_step_allocs" || m.Name == "ledger_record_allocs"
		if m.Value < 0 || (m.Value == 0 && !zeroOK) ||
			m.Tolerance <= 0 || m.Unit == "" {
			t.Fatalf("metric %q not measured sanely: %+v", w.name, m)
		}
	}

	// A report must accept itself: zero deltas, zero regressions.
	ds, regressed := CompareBench(r, r, 1)
	if regressed {
		t.Fatalf("self-compare regressed: %+v", ds)
	}
	for _, d := range ds {
		if d.Pct != 0 || d.Regressed || d.Missing || d.Added {
			t.Fatalf("self-compare delta not clean: %+v", d)
		}
	}
}

// TestRunBenchFilter pins the -filter contract: a filtered run measures only
// the matching section, so BENCH_offline.json stays cheap to regenerate.
func TestRunBenchFilter(t *testing.T) {
	r, err := RunBench(BenchOptions{Name: "offline", Seed: 7, Smoke: true, Filter: "offline"})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(r.Metrics) != 5 {
		t.Fatalf("offline filter produced %d metrics, want 5: %+v", len(r.Metrics), r.Metrics)
	}
	for _, m := range r.Metrics {
		if m.Group != "offline" {
			t.Fatalf("filtered run leaked metric %q from group %q", m.Name, m.Group)
		}
	}
}

// TestRunBenchFilterNoMatch pins the zero-match contract: a filter that
// selects no section must error and name the valid sections, instead of
// silently writing an empty report a CI gate would then wave through.
func TestRunBenchFilterNoMatch(t *testing.T) {
	_, err := RunBench(BenchOptions{Name: "x", Seed: 7, Smoke: true, Filter: "nosuchsection"})
	if err == nil {
		t.Fatal("zero-match filter must error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "nosuchsection") || !strings.Contains(msg, "matches no section") {
		t.Fatalf("error must name the filter and the failure: %q", msg)
	}
	for _, section := range []string{"sim", "cluster", "features", "obs", "offline", "online"} {
		if !strings.Contains(msg, section) {
			t.Fatalf("error must list section %q: %q", section, msg)
		}
	}
}

// TestRunBenchOnlineSection pins the online fast-path section in isolation:
// the serving metrics BENCH_online.json gates on.
func TestRunBenchOnlineSection(t *testing.T) {
	r, err := RunBench(BenchOptions{Name: "online", Seed: 7, Smoke: true, Filter: "online"})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	byName := map[string]BenchMetric{}
	for _, m := range r.Metrics {
		if m.Group != "online" {
			t.Fatalf("online filter leaked metric %q from group %q", m.Name, m.Group)
		}
		byName[m.Name] = m
	}
	if len(byName) != 5 {
		t.Fatalf("online section produced %d metrics, want 5: %+v", len(byName), r.Metrics)
	}
	uncached, cached := byName["analyze_ns_uncached"], byName["analyze_ns_cached"]
	if uncached.Value <= 0 || cached.Value <= 0 {
		t.Fatalf("analysis latencies not measured: %+v / %+v", uncached, cached)
	}
	// The tentpole claim, measured end to end: a plan-cache hit is >= 20x
	// cheaper than the full analysis pipeline.
	if cached.Value*20 > uncached.Value {
		t.Fatalf("cached analyze %v ns not >= 20x faster than uncached %v ns", cached.Value, uncached.Value)
	}
	if allocs := byName["executor_step_allocs"]; allocs.Value != 0 {
		t.Fatalf("steady-state executor stepping allocates: %v allocs/step", allocs.Value)
	}
	tput, micro := byName["dispatch_jobs_per_s"], byName["dispatch_jobs_per_s_micro"]
	if tput.Value <= 0 || !tput.HigherIsBetter || micro.Value <= 0 || !micro.HigherIsBetter {
		t.Fatalf("dispatch throughput not measured sanely: %+v / %+v", tput, micro)
	}
	// The macro-stepped fleet path must beat its micro-stepped oracle — the
	// whole point of the warm summary cache (typically by >10x; >1x keeps the
	// bound robust to CI noise).
	if tput.Value <= micro.Value {
		t.Fatalf("macro dispatch %v jobs/s not faster than micro %v jobs/s", tput.Value, micro.Value)
	}
}

func TestBenchReportRoundTrip(t *testing.T) {
	r := smokeReport(t)
	var buf bytes.Buffer
	if err := WriteBenchReport(&buf, r); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBenchReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != r.Name || back.Seed != r.Seed || len(back.Metrics) != len(r.Metrics) {
		t.Fatalf("round-trip changed the report: %+v vs %+v", back, r)
	}
	for i := range r.Metrics {
		if back.Metrics[i] != r.Metrics[i] {
			t.Fatalf("metric %d changed: %+v vs %+v", i, back.Metrics[i], r.Metrics[i])
		}
	}
}

func TestBenchReportValidate(t *testing.T) {
	good := func() *BenchReport {
		return &BenchReport{
			Schema: BenchSchemaVersion, Name: "x",
			Metrics: []BenchMetric{{Name: "a", Value: 1, Unit: "ops/s", Tolerance: 0.1}},
		}
	}
	if err := good().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*BenchReport){
		"future schema": func(r *BenchReport) { r.Schema = BenchSchemaVersion + 1 },
		"zero schema":   func(r *BenchReport) { r.Schema = 0 },
		"no name":       func(r *BenchReport) { r.Name = "" },
		"no metrics":    func(r *BenchReport) { r.Metrics = nil },
		"unnamed":       func(r *BenchReport) { r.Metrics[0].Name = "" },
		"no unit":       func(r *BenchReport) { r.Metrics[0].Unit = "" },
		"duplicate":     func(r *BenchReport) { r.Metrics = append(r.Metrics, r.Metrics[0]) },
		"NaN value":     func(r *BenchReport) { r.Metrics[0].Value = math.NaN() },
		"Inf value":     func(r *BenchReport) { r.Metrics[0].Value = math.Inf(1) },
		"negative":      func(r *BenchReport) { r.Metrics[0].Value = -1 },
		"bad tolerance": func(r *BenchReport) { r.Metrics[0].Tolerance = -0.1 },
	}
	for name, mutate := range cases {
		r := good()
		mutate(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, r)
		}
	}
}

func TestCompareBench(t *testing.T) {
	base := &BenchReport{
		Schema: 1, Name: "old",
		Metrics: []BenchMetric{
			{Name: "fast", Value: 100, Unit: "ops/s", HigherIsBetter: true, Tolerance: 0.10},
			{Name: "slow", Value: 10, Unit: "ms", HigherIsBetter: false, Tolerance: 0.10},
			{Name: "gone", Value: 5, Unit: "ops/s", HigherIsBetter: true, Tolerance: 0.10},
		},
	}
	cur := &BenchReport{
		Schema: 1, Name: "new",
		Metrics: []BenchMetric{
			{Name: "fast", Value: 80, Unit: "ops/s", HigherIsBetter: true, Tolerance: 0.10},
			{Name: "slow", Value: 10.5, Unit: "ms", HigherIsBetter: false, Tolerance: 0.10},
			{Name: "fresh", Value: 1, Unit: "ops/s", HigherIsBetter: true, Tolerance: 0.10},
		},
	}
	ds, regressed := CompareBench(base, cur, 1)
	if !regressed {
		t.Fatal("20% throughput drop against 10% tolerance must regress")
	}
	by := map[string]BenchDelta{}
	for _, d := range ds {
		by[d.Name] = d
	}
	if d := by["fast"]; !d.Regressed || d.Pct != -20 {
		t.Fatalf("fast: %+v", d)
	}
	// Lower-is-better: 10 -> 10.5 is a 5% worsening, within 10% tolerance,
	// and the sign convention keeps negative == worse.
	if d := by["slow"]; d.Regressed || math.Abs(d.Pct - -5) > 1e-9 {
		t.Fatalf("slow: %+v", d)
	}
	if d := by["gone"]; !d.Missing || !d.Regressed {
		t.Fatalf("missing metric must regress: %+v", d)
	}
	if d := by["fresh"]; !d.Added || d.Regressed {
		t.Fatalf("new metric must be benign: %+v", d)
	}

	// Slack widens every tolerance: 3x turns the 20% drop into a pass, but a
	// missing metric can never be slacked away.
	ds, regressed = CompareBench(base, cur, 3)
	by = map[string]BenchDelta{}
	for _, d := range ds {
		by[d.Name] = d
	}
	if by["fast"].Regressed {
		t.Fatalf("slack 3 should absorb a 20%% drop: %+v", by["fast"])
	}
	if !by["gone"].Regressed || !regressed {
		t.Fatal("slack must not forgive a missing metric")
	}

	// Zero-old-value improvements report +100% and never regress.
	zero := &BenchReport{Schema: 1, Name: "z",
		Metrics: []BenchMetric{{Name: "m", Value: 0, Unit: "u", HigherIsBetter: true, Tolerance: 0.1}}}
	some := &BenchReport{Schema: 1, Name: "z",
		Metrics: []BenchMetric{{Name: "m", Value: 4, Unit: "u", HigherIsBetter: true, Tolerance: 0.1}}}
	if ds, reg := CompareBench(zero, some, 1); reg || ds[0].Pct != 100 {
		t.Fatalf("zero-base delta: %+v", ds)
	}
}

// TestCompareBenchZeroBaseline pins the absolute-movement semantics for
// metrics whose committed baseline is exactly zero: relative deltas are
// undefined there, so any movement in the worse direction regresses
// unconditionally (no tolerance or slack applies), movement in the better
// direction passes, and the displayed Pct collapses to a ±100 sentinel.
func TestCompareBenchZeroBaseline(t *testing.T) {
	cases := []struct {
		name           string
		higherIsBetter bool
		old, new       float64
		wantPct        float64
		wantRegressed  bool
	}{
		{"higher-is-better improves", true, 0, 4, 100, false},
		{"higher-is-better goes negative", true, 0, -0.5, -100, true},
		{"lower-is-better worsens", false, 0, 0.01, -100, true},
		{"lower-is-better improves", false, 0, -2, 100, false},
		{"stays zero", true, 0, 0, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			metric := func(v float64) []BenchMetric {
				return []BenchMetric{{
					Name: "m", Value: v, Unit: "u",
					HigherIsBetter: tc.higherIsBetter, Tolerance: 0.5,
				}}
			}
			old := &BenchReport{Schema: 1, Name: "old", Metrics: metric(tc.old)}
			cur := &BenchReport{Schema: 1, Name: "new", Metrics: metric(tc.new)}
			// Slack 1000 would forgive any relative delta; off a zero
			// baseline it must be irrelevant in both directions.
			ds, regressed := CompareBench(old, cur, 1000)
			if len(ds) != 1 {
				t.Fatalf("deltas = %+v", ds)
			}
			d := ds[0]
			if d.Pct != tc.wantPct || d.Regressed != tc.wantRegressed || regressed != tc.wantRegressed {
				t.Fatalf("got Pct=%v Regressed=%v (report %v), want Pct=%v Regressed=%v",
					d.Pct, d.Regressed, regressed, tc.wantPct, tc.wantRegressed)
			}
		})
	}
}

func TestBenchOptionsDefaults(t *testing.T) {
	d := BenchOptions{}.withDefaults()
	if d.Name != "local" || d.Seed != 1 || d.Repeats != 3 || d.Smoke {
		t.Fatalf("defaults = %+v", d)
	}
	if s := (BenchOptions{Smoke: true}).withDefaults(); s.Repeats != 1 {
		t.Fatalf("smoke repeats = %d, want 1", s.Repeats)
	}
	keep := BenchOptions{Name: "ci", Seed: 9, Repeats: 5, Smoke: true}.withDefaults()
	if keep != (BenchOptions{Name: "ci", Seed: 9, Repeats: 5, Smoke: true}) {
		t.Fatalf("explicit options changed: %+v", keep)
	}
}

// TestObserveOptionsDefaults pins the sibling scenario's defaulting, including
// that an injected observer survives defaulting untouched.
func TestObserveOptionsDefaults(t *testing.T) {
	d := ObserveOptions{}.withDefaults()
	if d.Tasks != 20 || d.Nodes != 3 || d.Jobs != 20 || d.Seed != 1 {
		t.Fatalf("defaults = %+v", d)
	}
	if d.Obs != nil {
		t.Fatal("defaulting invented an observer")
	}
	neg := ObserveOptions{Tasks: -1, Nodes: -1, Jobs: -1}.withDefaults()
	if neg.Tasks != 20 || neg.Nodes != 3 || neg.Jobs != 20 {
		t.Fatalf("negative sizes not clamped: %+v", neg)
	}
	keep := ObserveOptions{Tasks: 2, Nodes: 1, Jobs: 4, Seed: -3}.withDefaults()
	if keep.Tasks != 2 || keep.Nodes != 1 || keep.Jobs != 4 || keep.Seed != -3 {
		t.Fatalf("explicit options changed: %+v", keep)
	}
}

func TestRenderBench(t *testing.T) {
	r := smokeReport(t)
	out := RenderBenchReport(r)
	for _, frag := range []string{"bench \"test\"", "metric", "executor_layer_steps_per_sec", "scrapes/s"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("RenderBenchReport missing %q:\n%s", frag, out)
		}
	}
	ds, _ := CompareBench(r, r, 1)
	ds = append(ds,
		BenchDelta{Name: "lost", Old: 1, Missing: true, Regressed: true},
		BenchDelta{Name: "worse", Old: 10, New: 5, Pct: -50, Tolerance: 10, Regressed: true},
		BenchDelta{Name: "fresh", New: 2, Added: true},
	)
	out = RenderBenchDeltas(ds)
	for _, frag := range []string{"REGRESSED (metric missing)", "REGRESSED", "new metric", "verdict", "ok"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("RenderBenchDeltas missing %q:\n%s", frag, out)
		}
	}
}
