// Package experiments regenerates every table and figure of the paper's
// evaluation (§3) on the simulated platforms: Table 1 (per-model EE gains vs
// BiM / FPG-G / FPG-CG), Figure 5 (task-flow energy/time/EE), Table 2 (P-R
// and P-N ablations), Table 3 (offline overhead), Figure 1 (reactive
// ping-pong and lag vs preset instrumentation points), and the §3.3 DVFS
// switch microbenchmark. See DESIGN.md §4 for the experiment index.
package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"powerlens/internal/core"
	"powerlens/internal/governor"
	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/sim"
)

// Env holds one trained framework per platform plus cached analyses.
type Env struct {
	Frameworks map[string]*core.Framework
	Reports    map[string]*core.DeployReport

	analyses map[string]map[string]*core.Analysis // platform → model → analysis
}

// NewEnv deploys PowerLens on both platforms with the given config.
func NewEnv(cfg core.DeployConfig) (*Env, error) {
	env := &Env{
		Frameworks: map[string]*core.Framework{},
		Reports:    map[string]*core.DeployReport{},
		analyses:   map[string]map[string]*core.Analysis{},
	}
	for _, p := range hw.Platforms() {
		fw, report, err := core.Deploy(p, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: deploy %s: %w", p.Name, err)
		}
		env.Frameworks[p.Name] = fw
		env.Reports[p.Name] = report
		env.analyses[p.Name] = map[string]*core.Analysis{}
	}
	return env, nil
}

// analysis returns (and caches) the PowerLens analysis of a model.
func (e *Env) analysis(platform, model string) (*core.Analysis, error) {
	if a, ok := e.analyses[platform][model]; ok {
		return a, nil
	}
	g := models.MustBuild(model)
	a, err := e.Frameworks[platform].Analyze(g)
	if err != nil {
		return nil, err
	}
	e.analyses[platform][model] = a
	return a, nil
}

// ImagesPerTask is the paper's task size (§3.2.2: 50 images per task; §3.1:
// each energy test runs 50 times).
const ImagesPerTask = 50

// Table1Row is one row of Table 1: the number of power blocks and the EE
// gain of PowerLens relative to each baseline, (EE_pl − EE_x)/EE_x.
type Table1Row struct {
	Model  string
	Blocks int

	GainBiM   float64
	GainFPGG  float64
	GainFPGCG float64
}

// Table1 reproduces Table 1 for one platform.
func Table1(env *Env, p *hw.Platform) ([]Table1Row, error) {
	var rows []Table1Row
	for _, name := range models.Names() {
		g := models.MustBuild(name)
		a, err := env.analysis(p.Name, name)
		if err != nil {
			return nil, err
		}
		eePL := sim.NewExecutor(p, governor.NewPowerLens(a.Plan)).RunTask(g, ImagesPerTask).EE()
		eeBiM := sim.NewExecutor(p, governor.NewOndemand()).RunTask(g, ImagesPerTask).EE()
		eeG := sim.NewExecutor(p, governor.NewFPGG()).RunTask(g, ImagesPerTask).EE()
		eeCG := sim.NewExecutor(p, governor.NewFPGCG()).RunTask(g, ImagesPerTask).EE()
		rows = append(rows, Table1Row{
			Model:     name,
			Blocks:    a.View.NumBlocks(),
			GainBiM:   eePL/eeBiM - 1,
			GainFPGG:  eePL/eeG - 1,
			GainFPGCG: eePL/eeCG - 1,
		})
	}
	return rows, nil
}

// Averages returns the mean gains of a Table 1 row set (the Average row).
func Averages(rows []Table1Row) (bim, fpgg, fpgcg float64) {
	if len(rows) == 0 {
		return 0, 0, 0
	}
	for _, r := range rows {
		bim += r.GainBiM
		fpgg += r.GainFPGG
		fpgcg += r.GainFPGCG
	}
	n := float64(len(rows))
	return bim / n, fpgg / n, fpgcg / n
}

// Table2Row is one row of Table 2: the EE loss (negative fraction) of the
// P-R (random partitioning) and P-N (no clustering) variants relative to
// PowerLens.
type Table2Row struct {
	Model  string
	PRLoss float64
	PNLoss float64
}

// Table2 reproduces the clustering ablation for one platform. P-R is
// averaged over nSeeds random partitionings.
func Table2(env *Env, p *hw.Platform, nSeeds int) ([]Table2Row, error) {
	fw := env.Frameworks[p.Name]
	var rows []Table2Row
	for _, name := range models.Names() {
		g := models.MustBuild(name)
		a, err := env.analysis(p.Name, name)
		if err != nil {
			return nil, err
		}
		eePL := sim.NewExecutor(p, governor.NewPowerLens(a.Plan)).RunTask(g, ImagesPerTask).EE()

		prSum := 0.0
		for s := 0; s < nSeeds; s++ {
			pr := fw.AnalyzeRandomBlocks(g, rand.New(rand.NewSource(int64(s)*977+41)), 8)
			prSum += sim.NewExecutor(p, governor.NewPowerLens(pr.Plan)).RunTask(g, ImagesPerTask).EE()
		}
		eePR := prSum / float64(nSeeds)

		pn := fw.AnalyzeWholeNetwork(g)
		eePN := sim.NewExecutor(p, governor.NewPowerLens(pn.Plan)).RunTask(g, ImagesPerTask).EE()

		rows = append(rows, Table2Row{
			Model:  name,
			PRLoss: eePR/eePL - 1,
			PNLoss: eePN/eePL - 1,
		})
	}
	return rows, nil
}

// Table2Averages returns the mean losses.
func Table2Averages(rows []Table2Row) (pr, pn float64) {
	if len(rows) == 0 {
		return 0, 0
	}
	for _, r := range rows {
		pr += r.PRLoss
		pn += r.PNLoss
	}
	n := float64(len(rows))
	return pr / n, pn / n
}

// Table3Data is the offline overhead breakdown of Table 3 for one platform:
// model training times plus mean per-model workflow stage times.
type Table3Data struct {
	Platform string

	HyperTrainTime    time.Duration
	DecisionTrainTime time.Duration

	FeatureExtraction time.Duration
	HyperPrediction   time.Duration
	Clustering        time.Duration
	DecisionPerBlock  time.Duration
}

// Table3 measures the workflow stages over the 12 evaluation models and
// combines them with the deployment report's training times.
func Table3(env *Env, p *hw.Platform) (*Table3Data, error) {
	fw := env.Frameworks[p.Name]
	report := env.Reports[p.Name]
	d := &Table3Data{
		Platform:          p.Name,
		HyperTrainTime:    report.HyperTrainTime,
		DecisionTrainTime: report.DecisionTrainTime,
	}
	var blocks int
	for _, name := range models.Names() {
		g := models.MustBuild(name)
		a, err := fw.Analyze(g) // fresh run: timing, not cache
		if err != nil {
			return nil, err
		}
		d.FeatureExtraction += a.Timings.FeatureExtraction
		d.HyperPrediction += a.Timings.HyperPrediction
		d.Clustering += a.Timings.Clustering
		d.DecisionPerBlock += a.Timings.Decision
		blocks += a.View.NumBlocks()
	}
	n := time.Duration(len(models.Names()))
	d.FeatureExtraction /= n
	d.HyperPrediction /= n
	d.Clustering /= n
	if blocks > 0 {
		d.DecisionPerBlock /= time.Duration(blocks)
	}
	return d, nil
}
