package experiments

import (
	"testing"

	"powerlens/internal/hw"
)

func TestEnvAnalysisCaching(t *testing.T) {
	e := testEnv(t)
	a1, err := e.analysis("TX2", "alexnet")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := e.analysis("TX2", "alexnet")
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("analysis must be cached (same pointer)")
	}
	// Different platforms cache independently.
	a3, err := e.analysis("AGX", "alexnet")
	if err != nil {
		t.Fatal(err)
	}
	if a3 == a1 {
		t.Fatal("platforms must not share cached analyses")
	}
}

func TestEnvReportsPresent(t *testing.T) {
	e := testEnv(t)
	for _, p := range hw.Platforms() {
		r, ok := e.Reports[p.Name]
		if !ok || r == nil {
			t.Fatalf("%s report missing", p.Name)
		}
		if r.DecisionAccuracy <= 0 || r.NumBlocks <= 0 {
			t.Fatalf("%s report empty: %+v", p.Name, r)
		}
	}
}
