package experiments

import (
	"strings"
	"testing"

	"powerlens/internal/hw"
)

func TestExtensionsShapes(t *testing.T) {
	e := testEnv(t)
	for _, p := range hw.Platforms() {
		rows, err := Extensions(e, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 12 {
			t.Fatalf("%s: %d rows", p.Name, len(rows))
		}
		var cgWins, batchWins int
		for _, r := range rows {
			t.Logf("%s %-15s base=%.4f cg=%.4f batch=%d batchEE=%.4f",
				p.Name, r.Model, r.BaseEE, r.CGEE, r.Batch, r.BatchEE)
			if r.BaseEE <= 0 {
				t.Fatalf("%s/%s: non-positive base EE", p.Name, r.Model)
			}
			// CPU DVFS must never hurt materially (it only trims a hidden
			// rail) and must help on at least most models.
			if r.CGEE < r.BaseEE*0.995 {
				t.Errorf("%s/%s: PowerLens-CG EE %.4f below base %.4f", p.Name, r.Model, r.CGEE, r.BaseEE)
			}
			if r.CGEE > r.BaseEE {
				cgWins++
			}
			if r.Batch > 1 && r.BatchEE > r.BaseEE {
				batchWins++
			}
		}
		if cgWins < 9 {
			t.Errorf("%s: CPU DVFS won on only %d/12 models", p.Name, cgWins)
		}
		if batchWins < 6 {
			t.Errorf("%s: batching won on only %d/12 models", p.Name, batchWins)
		}
	}
}

func TestRenderExtensions(t *testing.T) {
	rows := []ExtensionRow{
		{Model: "vgg19", BaseEE: 1.0, CGEE: 1.02, Batch: 8, BatchEE: 1.1},
	}
	out := RenderExtensions("TX2", rows)
	for _, want := range []string{"vgg19", "+2.00%", "+10.00%", "Average"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}
