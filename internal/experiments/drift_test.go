package experiments

import (
	"bytes"
	"strings"
	"testing"

	"powerlens/internal/hw"
	"powerlens/internal/obs/audit"
	"powerlens/internal/obs/slo"
)

// driftOpts keeps the scenario fast: few networks, tiny tasks.
func driftOpts() DriftOptions {
	return DriftOptions{Networks: 6, Seed: 1, Images: 2}
}

// TestDriftScenarioAlertsOnShiftOnly is the scenario's core contract: the
// in-distribution phase stays quiet and the injected shift raises a PSI
// alert.
func TestDriftScenarioAlertsOnShiftOnly(t *testing.T) {
	env := testEnv(t)
	tracker := slo.New(slo.Config{})
	opt := driftOpts()
	opt.Tracker = tracker
	d, err := Drift(env, hw.TX2(), opt)
	if err != nil {
		t.Fatal(err)
	}

	if d.InDistribution.Alerting {
		t.Fatalf("in-distribution phase alerting: %+v", d.InDistribution)
	}
	if !d.Shifted.Alerting {
		t.Fatalf("shifted phase not alerting: max PSI %.3f over %d dims",
			d.Shifted.MaxScore, len(d.Shifted.Dims))
	}
	if d.Shifted.MaxScore <= d.InDistribution.MaxScore {
		t.Fatalf("shift did not raise PSI: %.3f -> %.3f",
			d.InDistribution.MaxScore, d.Shifted.MaxScore)
	}

	// The audited run carries decisions, probes and governor applies.
	counts := map[string]uint64{}
	for _, k := range d.Audit.Kinds {
		counts[k.Kind] = k.Count
	}
	for _, kind := range []string{"decision", "probe", "apply"} {
		if counts[kind] == 0 {
			t.Fatalf("audit carries no %s records: %+v", kind, d.Audit.Kinds)
		}
	}
	if d.Audit.Drift == nil || !d.Audit.Drift.Alerting {
		t.Fatalf("audit snapshot drift status not alerting: %+v", d.Audit.Drift)
	}

	// The tracker received the alerting dimensions.
	st := tracker.Snapshot()
	if len(st.Drift) == 0 || len(st.Drift) != d.Shifted.AlertingDims {
		t.Fatalf("tracker drift alerts = %d, want %d", len(st.Drift), d.Shifted.AlertingDims)
	}

	// The run left no recorder attached to the shared framework.
	if fw := env.Frameworks[hw.TX2().Name]; fw.Audit != nil {
		t.Fatal("scenario leaked its audit recorder into the shared framework")
	}

	out := RenderDrift(d)
	for _, want := range []string{"ALERTING", "quiet", "calibration"} {
		if !strings.Contains(out, want) {
			t.Fatalf("RenderDrift output lacks %q:\n%s", want, out)
		}
	}
}

// TestDriftScenarioDeterministic pins rerun determinism: two runs with the
// same options produce byte-identical audit dumps and drift statuses.
func TestDriftScenarioDeterministic(t *testing.T) {
	env := testEnv(t)
	run := func() (*DriftData, []byte) {
		rec := audit.New(audit.Config{RingSize: 512})
		opt := driftOpts()
		opt.Recorder = rec
		d, err := Drift(env, hw.AGX(), opt)
		if err != nil {
			t.Fatal(err)
		}
		return d, rec.EncodeBinary()
	}
	d1, b1 := run()
	d2, b2 := run()
	if !bytes.Equal(b1, b2) {
		t.Fatalf("audit dumps differ across reruns: %d vs %d bytes", len(b1), len(b2))
	}
	if d1.Shifted.MaxScore != d2.Shifted.MaxScore || d1.Shifted.AlertingDims != d2.Shifted.AlertingDims {
		t.Fatalf("drift statuses differ across reruns: %+v vs %+v", d1.Shifted, d2.Shifted)
	}
}
