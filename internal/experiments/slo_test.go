package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"powerlens/internal/hw"
)

func TestSLOScenario(t *testing.T) {
	env := testEnv(t)
	d, err := SLO(env, hw.TX2(), SLOOptions{Tasks: 6})
	if err != nil {
		t.Fatal(err)
	}
	if d.Flow.Passes <= 0 || d.Flow.Images <= 0 {
		t.Fatalf("empty flow: %+v", d.Flow)
	}
	if len(d.Status.Models) == 0 {
		t.Fatal("SLO tracker saw no models")
	}
	var passes uint64
	for _, m := range d.Status.Models {
		passes += m.Passes
	}
	if int(passes) != d.Flow.Passes {
		t.Fatalf("SLO passes %d, flow passes %d", passes, d.Flow.Passes)
	}
	if len(d.Ledger.Cells) == 0 || len(d.Ledger.Models) != len(d.Status.Models) {
		t.Fatalf("ledger shape: %d cells, %d models (slo %d)",
			len(d.Ledger.Cells), len(d.Ledger.Models), len(d.Status.Models))
	}
	if len(d.Flow.LevelEnergyJ) == 0 {
		t.Fatal("level decomposition missing")
	}

	// The scenario must publish the attribution families and SLO headline
	// gauges into its metrics registry.
	want := map[string]bool{
		"ledger_block_energy_joules_total": false,
		"ledger_passes_total":              false,
		"ledger_pass_latency_seconds":      false,
		"slo_violation_rate":               false,
		"slo_models":                       false,
	}
	for _, f := range d.Metrics {
		if _, ok := want[f.Name]; ok {
			want[f.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("metric family %q not exported by scenario", name)
		}
	}

	out := RenderSLO(d)
	for _, frag := range []string{"SLO: guarded", "energy by DVFS level", "ledger:"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
}

// TestSLOScenarioDeterministic reruns the scenario and requires byte-equal
// ledger and SLO snapshots — the property the run artifacts and /slo pin on.
func TestSLOScenarioDeterministic(t *testing.T) {
	env := testEnv(t)
	enc := func() (string, string) {
		d, err := SLO(env, hw.TX2(), SLOOptions{Tasks: 5, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		lb, err := json.Marshal(d.Ledger)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := json.Marshal(d.Status)
		if err != nil {
			t.Fatal(err)
		}
		return string(lb), string(sb)
	}
	l1, s1 := enc()
	l2, s2 := enc()
	if l1 != l2 {
		t.Fatal("ledger snapshots differ across identical scenario runs")
	}
	if s1 != s2 {
		t.Fatal("SLO snapshots differ across identical scenario runs")
	}
}
