package experiments

import (
	"bytes"
	"strings"
	"testing"

	"powerlens/internal/hw"
	"powerlens/internal/obs"
)

// TestObserveScenario is the acceptance check for the observability layer:
// one instrumented pass must produce ≥10 distinct metric families spanning
// every runtime layer (sim_, governor_, hw_, cloud_), a Chrome trace that
// round-trips through the decoder, a valid Prometheus exposition, and
// profiling coverage of the offline pipeline's hot paths.
func TestObserveScenario(t *testing.T) {
	env := testEnv(t)
	d, err := Observe(env, hw.TX2(), ObserveOptions{Tasks: 6, Nodes: 3, Jobs: 6, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}

	// Metric coverage across layers.
	prefixes := map[string]bool{}
	for _, f := range d.Metrics {
		for _, p := range []string{"sim_", "governor_", "hw_", "cloud_"} {
			if strings.HasPrefix(f.Name, p) {
				prefixes[p] = true
			}
		}
	}
	if len(d.Metrics) < 10 {
		t.Fatalf("only %d metric families, want >= 10", len(d.Metrics))
	}
	for _, p := range []string{"sim_", "governor_", "hw_", "cloud_"} {
		if !prefixes[p] {
			t.Fatalf("no metric family with prefix %q", p)
		}
	}

	// Chrome trace round-trip.
	if len(d.Events) == 0 {
		t.Fatal("no trace events")
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, d.Events); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("trace does not round-trip: %v", err)
	}
	if len(back) != len(d.Events) {
		t.Fatalf("round-trip lost events: %d -> %d", len(d.Events), len(back))
	}
	for i := range back {
		a, b := d.Events[i], back[i]
		if a.Name != b.Name || a.Cat != b.Cat || a.Phase != b.Phase ||
			a.TsUS != b.TsUS || a.DurUS != b.DurUS || a.TID != b.TID {
			t.Fatalf("event %d changed in round-trip:\nwrote %+v\nread  %+v", i, a, b)
		}
	}

	// Prometheus exposition parses under the format checker.
	buf.Reset()
	if err := d.Obs.Metrics.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := obs.CheckPrometheusText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("prometheus export invalid: %v", err)
	}
	if fams != len(d.Metrics) {
		t.Fatalf("exposition has %d families, snapshot has %d", fams, len(d.Metrics))
	}

	// Profiling regions cover the offline hot paths and the executor.
	want := map[string]bool{
		"features.ScaledDepthwise": false,
		"cluster.BlendedDistance":  false,
		"core.Framework.Analyze":   false,
		"sim.Executor.RunTaskFlow": false,
	}
	for _, r := range d.Profile {
		if _, ok := want[r.Name]; ok {
			want[r.Name] = true
			if r.Count == 0 || r.Wall <= 0 {
				t.Fatalf("region %q has no samples: %+v", r.Name, r)
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("profiling region %q missing from snapshot", name)
		}
	}

	// The rendered summary carries the load-bearing lines.
	out := RenderObserve(d)
	for _, frag := range []string{"flow:", "cluster:", "trace:", "metrics (", "profile ("} {
		if !strings.Contains(out, frag) {
			t.Fatalf("RenderObserve output missing %q:\n%s", frag, out)
		}
	}
}

// TestObserveDeterministic re-runs the scenario and checks the simulated
// outcome and the trace agree event for event — the sinks never perturb the
// run, and concurrent node simulation never reorders the exported trace.
func TestObserveDeterministic(t *testing.T) {
	env := testEnv(t)
	opt := ObserveOptions{Tasks: 5, Nodes: 2, Jobs: 5, Seed: 7}
	a, err := Observe(env, hw.TX2(), opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Observe(env, hw.TX2(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Flow.EnergyJ != b.Flow.EnergyJ || a.Flow.Images != b.Flow.Images ||
		a.Cluster.TotalEnergyJ != b.Cluster.TotalEnergyJ ||
		a.Cluster.Makespan != b.Cluster.Makespan {
		t.Fatalf("scenario outcome not deterministic:\n%+v\n%+v", a.Flow, b.Flow)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		x, y := a.Events[i], b.Events[i]
		if x.Name != y.Name || x.Cat != y.Cat || x.TID != y.TID ||
			x.TsUS != y.TsUS || x.DurUS != y.DurUS {
			t.Fatalf("trace diverges at event %d:\n%+v\n%+v", i, x, y)
		}
	}
}
