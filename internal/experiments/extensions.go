package experiments

import (
	"fmt"
	"strings"
	"time"

	"powerlens/internal/governor"
	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/sim"
)

// The paper's §5 future work — "we will incorporate more configurable
// optimization options into PowerLens, such as CPU DVFS and batchsize" —
// implemented as framework extensions and evaluated here:
//
//   - PowerLens-CG: the per-block GPU plan plus a preset host CPU level
//     chosen so pre-processing stays hidden under the GPU pass.
//   - PowerLens-B: the plan executed at the EE-optimal batch size (weight
//     traffic amortizes across the batch).

// ExtensionRow compares the extensions against baseline PowerLens for one
// model.
type ExtensionRow struct {
	Model string

	BaseEE  float64 // plain PowerLens
	CGEE    float64 // + CPU DVFS
	Batch   int     // chosen batch size
	BatchEE float64 // + batching at that size
}

// Extensions evaluates both §5 extensions over the 12 models on one
// platform. Batch sizes are chosen by sim.OptimalBatch with a 1-second
// batch latency budget.
func Extensions(env *Env, p *hw.Platform) ([]ExtensionRow, error) {
	var rows []ExtensionRow
	for _, name := range models.Names() {
		g := models.MustBuild(name)
		a, err := env.analysis(p.Name, name)
		if err != nil {
			return nil, err
		}

		base := sim.NewExecutor(p, governor.NewPowerLens(a.Plan)).RunTask(g, ImagesPerTask)
		cg := sim.NewExecutor(p, governor.NewPowerLensCG(p, g, a.Plan)).RunTask(g, ImagesPerTask)

		best, _ := sim.OptimalBatch(p, g, 32, time.Second)
		row := ExtensionRow{Model: name, BaseEE: base.EE(), CGEE: cg.EE()}
		if best.Batch > 0 {
			be := sim.NewExecutor(p, governor.NewPowerLens(a.Plan))
			be.Batch = best.Batch
			row.Batch = best.Batch
			row.BatchEE = be.RunTask(g, ImagesPerTask).EE()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderExtensions formats the extension comparison.
func RenderExtensions(platform string, rows []ExtensionRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "§5 extensions on %s: CPU DVFS (PowerLens-CG) and batching (PowerLens-B)\n", platform)
	fmt.Fprintf(&sb, "%-15s %10s %10s %8s %6s %10s %8s\n",
		"model name", "base EE", "CG EE", "gain", "batch", "batch EE", "gain")
	var cgSum, bSum float64
	n := 0
	for _, r := range rows {
		cgGain := r.CGEE/r.BaseEE - 1
		bGain := 0.0
		if r.Batch > 0 {
			bGain = r.BatchEE/r.BaseEE - 1
		}
		fmt.Fprintf(&sb, "%-15s %10.4f %10.4f %+7.2f%% %6d %10.4f %+7.2f%%\n",
			r.Model, r.BaseEE, r.CGEE, cgGain*100, r.Batch, r.BatchEE, bGain*100)
		cgSum += cgGain
		bSum += bGain
		n++
	}
	if n > 0 {
		fmt.Fprintf(&sb, "%-15s %10s %10s %+7.2f%% %6s %10s %+7.2f%%\n",
			"Average", "", "", cgSum/float64(n)*100, "", "", bSum/float64(n)*100)
	}
	return sb.String()
}
