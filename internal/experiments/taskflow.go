package experiments

import (
	"math/rand"
	"time"

	"powerlens/internal/governor"
	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/obs"
	"powerlens/internal/sim"
)

// Fig5Result is one bar group of Figure 5: a method's task-flow energy,
// makespan, and energy efficiency.
type Fig5Result struct {
	Method  string
	EnergyJ float64
	Time    time.Duration
	EE      float64
}

// TaskGap is the idle gap between consecutive tasks in the task flow —
// long enough for reactive governors to scale down and then pay their
// response lag on the next task.
const TaskGap = 300 * time.Millisecond

// RandomTasks assembles the §3.2.2 workload: numTasks tasks drawn uniformly
// from the 12 evaluation models, each processing ImagesPerTask images.
func RandomTasks(numTasks int, seed int64) []sim.Task {
	rng := rand.New(rand.NewSource(seed))
	names := models.Names()
	built := map[string]*sim.Task{}
	var tasks []sim.Task
	for i := 0; i < numTasks; i++ {
		name := names[rng.Intn(len(names))]
		if _, ok := built[name]; !ok {
			g := models.MustBuild(name)
			built[name] = &sim.Task{Graph: g, Images: ImagesPerTask}
		}
		tasks = append(tasks, sim.Task{Graph: built[name].Graph, Images: ImagesPerTask})
	}
	return tasks
}

// Fig5 reproduces the task-flow comparison for one platform: the same task
// sequence under PowerLens, FPG-G, FPG-CG and BiM.
func Fig5(env *Env, p *hw.Platform, numTasks int, seed int64) ([]Fig5Result, error) {
	tasks := RandomTasks(numTasks, seed)

	// PowerLens: one plan per distinct model in the flow.
	plans := map[string]*governor.FrequencyPlan{}
	for _, t := range tasks {
		if _, ok := plans[t.Graph.Name]; ok {
			continue
		}
		a, err := env.analysis(p.Name, t.Graph.Name)
		if err != nil {
			return nil, err
		}
		plans[t.Graph.Name] = a.Plan
	}

	controllers := []sim.Controller{
		governor.NewMultiPlan(plans),
		governor.NewFPGG(),
		governor.NewFPGCG(),
		governor.NewOndemand(),
	}
	var out []Fig5Result
	for _, ctl := range controllers {
		r := sim.NewExecutor(p, ctl).RunTaskFlow(tasks, TaskGap)
		out = append(out, Fig5Result{
			Method:  ctl.Name(),
			EnergyJ: r.EnergyJ,
			Time:    r.Time,
			EE:      r.EE(),
		})
	}
	return out, nil
}

// Fig1Trace is the data behind Figure 1: frequency/power traces of a
// reactive governor versus PowerLens over a bursty two-task flow, plus the
// summary statistics that quantify ping-pong and lag.
type Fig1Trace struct {
	Method   string
	Samples  []hw.PowerSample
	Switches int
	EnergyJ  float64
	Time     time.Duration
}

// Fig1 runs a bursty workload (two tasks separated by an idle gap) under a
// reactive baseline and under PowerLens, returning both traces.
func Fig1(env *Env, p *hw.Platform) ([]Fig1Trace, error) {
	return Fig1Observed(env, p, nil)
}

// Fig1Observed is Fig1 with an optional observability sink: when o is
// non-nil each method's run streams metrics and spans into it on its own
// trace track. A nil o reproduces the bare figure bit for bit.
func Fig1Observed(env *Env, p *hw.Platform, o *obs.Observer) ([]Fig1Trace, error) {
	g := models.MustBuild("resnet152")
	tasks := []sim.Task{{Graph: g, Images: 10}, {Graph: g, Images: 10}}

	a, err := env.analysis(p.Name, g.Name)
	if err != nil {
		return nil, err
	}
	var out []Fig1Trace
	for i, ctl := range []sim.Controller{governor.NewFPGG(), governor.NewOndemand(), governor.NewPowerLens(a.Plan)} {
		e := sim.NewExecutor(p, ctl)
		e.SensorPeriod = 5 * time.Millisecond
		if o != nil {
			e.Obs = o.ForTrack(i + 1)
		}
		r := e.RunTaskFlow(tasks, 1500*time.Millisecond)
		out = append(out, Fig1Trace{
			Method:   ctl.Name(),
			Samples:  r.Samples,
			Switches: r.Switches,
			EnergyJ:  r.EnergyJ,
			Time:     r.Time,
		})
	}
	return out, nil
}

// SwitchOverhead reproduces the §3.3 microbenchmark: the end-to-end
// userspace time of n DVFS level changes (the paper measures 100 changes at
// a 50 ms average total).
func SwitchOverhead(p *hw.Platform, n int) time.Duration {
	return time.Duration(n) * p.UserspaceSwitchCost
}
