package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Renderers producing the paper-format text of each table/figure. They are
// library code (tested) so cmd/experiments stays a thin shell.

// RenderTable1 formats Table 1 for one platform.
func RenderTable1(platform string, rows []Table1Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 1: energy efficiency improvement on %s\n", platform)
	fmt.Fprintf(&sb, "%-15s %6s %9s %9s %9s\n", "model name", "Block", "BiM", "FPG-G", "FPG-CG")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-15s %6d %8.2f%% %8.2f%% %8.2f%%\n",
			r.Model, r.Blocks, r.GainBiM*100, r.GainFPGG*100, r.GainFPGCG*100)
	}
	bim, g, cg := Averages(rows)
	fmt.Fprintf(&sb, "%-15s %6s %8.2f%% %8.2f%% %8.2f%%\n", "Average", "", bim*100, g*100, cg*100)
	return sb.String()
}

// RenderTable2 formats Table 2 for one platform.
func RenderTable2(platform string, rows []Table2Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 2: EE loss for different clustering strategies on %s\n", platform)
	fmt.Fprintf(&sb, "%-15s %9s %9s\n", "DNN Models", "P-R", "P-N")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-15s %8.2f%% %8.2f%%\n", r.Model, r.PRLoss*100, r.PNLoss*100)
	}
	pr, pn := Table2Averages(rows)
	fmt.Fprintf(&sb, "%-15s %8.2f%% %8.2f%%\n", "Average", pr*100, pn*100)
	return sb.String()
}

// RenderTable3 formats Table 3 from both platforms' data (paper layout:
// one column per platform).
func RenderTable3(tx2, agx *Table3Data) string {
	var sb strings.Builder
	sb.WriteString("Table 3: offline overhead of PowerLens\n")
	fmt.Fprintf(&sb, "%-45s %12s %12s\n", "Phase", "TX2", "AGX")
	row := func(name string, a, b time.Duration) {
		fmt.Fprintf(&sb, "%-45s %12v %12v\n", name,
			a.Round(time.Microsecond), b.Round(time.Microsecond))
	}
	row("Model Training / hyperparameter model", tx2.HyperTrainTime, agx.HyperTrainTime)
	row("Model Training / decision model", tx2.DecisionTrainTime, agx.DecisionTrainTime)
	row("Workflow / feature extraction", tx2.FeatureExtraction, agx.FeatureExtraction)
	row("Workflow / hyperparameter prediction", tx2.HyperPrediction, agx.HyperPrediction)
	row("Workflow / clustering", tx2.Clustering, agx.Clustering)
	row("Workflow / decision of each block", tx2.DecisionPerBlock, agx.DecisionPerBlock)
	return sb.String()
}

// RenderFig5 formats the task-flow comparison, including the relative
// numbers the paper quotes in §3.2.2.
func RenderFig5(platform string, numTasks int, results []Fig5Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 5: task flow processing on %s (%d tasks x %d images)\n",
		platform, numTasks, ImagesPerTask)
	fmt.Fprintf(&sb, "%-10s %12s %14s %12s\n", "method", "energy (J)", "time", "EE (img/J)")
	var pl *Fig5Result
	for i := range results {
		r := results[i]
		fmt.Fprintf(&sb, "%-10s %12.1f %14v %12.4f\n",
			r.Method, r.EnergyJ, r.Time.Round(time.Millisecond), r.EE)
		if r.Method == "PowerLens" {
			pl = &results[i]
		}
	}
	if pl != nil {
		for _, r := range results {
			if r.Method == "PowerLens" {
				continue
			}
			fmt.Fprintf(&sb, "  vs %-7s energy %+6.2f%%  time %+6.2f%%  EE %+6.2f%%\n",
				r.Method, (pl.EnergyJ/r.EnergyJ-1)*100,
				(pl.Time.Seconds()/r.Time.Seconds()-1)*100, (pl.EE/r.EE-1)*100)
		}
	}
	return sb.String()
}

// RenderFig1 formats the bursty-flow summary (traces are exported
// separately via sim.WriteTraceCSV).
func RenderFig1(traces []Fig1Trace) string {
	var sb strings.Builder
	sb.WriteString("Figure 1: reactive DVFS (ping-pong, lag) vs PowerLens preset points — TX2, bursty 2-task flow\n")
	for _, tr := range traces {
		fmt.Fprintf(&sb, "%-10s switches=%3d energy=%6.1fJ time=%v\n",
			tr.Method, tr.Switches, tr.EnergyJ, tr.Time.Round(time.Millisecond))
	}
	return sb.String()
}
