package experiments

import (
	"strings"
	"testing"

	"powerlens/internal/hw"
)

func TestThermalStudyShapes(t *testing.T) {
	e := testEnv(t)
	for _, p := range hw.Platforms() {
		rows, err := ThermalStudy(e, p, 600)
		if err != nil {
			t.Fatal(err)
		}
		byName := map[string]ThermalRow{}
		for _, r := range rows {
			byName[r.Method] = r
			t.Logf("%s %-10s peak=%.1f°C throttled=%v EE=%.4f",
				p.Name, r.Method, r.PeakTempC, r.ThrottledTime, r.EE)
		}
		pl, bim := byName["PowerLens"], byName["BiM"]
		// PowerLens runs cooler and never throttles.
		if pl.PeakTempC >= bim.PeakTempC {
			t.Errorf("%s: PowerLens peak %.1f >= BiM %.1f", p.Name, pl.PeakTempC, bim.PeakTempC)
		}
		if pl.ThrottledTime != 0 {
			t.Errorf("%s: PowerLens throttled for %v", p.Name, pl.ThrottledTime)
		}
		// Sustained BiM at fmax must trip the throttle.
		if bim.ThrottledTime == 0 {
			t.Errorf("%s: BiM never throttled under sustained load", p.Name)
		}
		if pl.EE <= bim.EE {
			t.Errorf("%s: PowerLens EE %.4f <= BiM %.4f", p.Name, pl.EE, bim.EE)
		}
	}
}

func TestRenderThermal(t *testing.T) {
	rows := []ThermalRow{{Method: "PowerLens", PeakTempC: 60.2, EE: 1.8}}
	out := RenderThermal("TX2", 600, rows)
	for _, want := range []string{"Thermal study", "PowerLens", "60.2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}
