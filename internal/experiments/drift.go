package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"powerlens/internal/features"
	"powerlens/internal/governor"
	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/obs"
	"powerlens/internal/obs/audit"
	"powerlens/internal/obs/slo"
	"powerlens/internal/sim"
)

// Drift scenario: the deployed framework serves two phases of live traffic
// with the decision-audit recorder and the feature-drift monitor attached.
// Phase 1 draws networks from the same generator distribution the hyper
// model was trained on — the drift monitor must stay quiet. Phase 2 injects
// a distribution shift (much deeper, wider-segmented networks than any
// training sample) — the monitor must raise a PSI alert on the shifted
// feature dimensions. Each analyzed network also executes its plan under an
// audited executor, so the /audit surface carries decision, probe, apply
// and calibration state alongside the drift verdicts.

// DriftOptions sizes the scenario; zero fields take defaults.
type DriftOptions struct {
	// Traffic is the number of live networks per phase whose feature
	// vectors reach the drift monitor (default 128). PSI needs sample mass
	// to converge, and feature extraction is cheap, so this is much larger
	// than Networks.
	Traffic int
	// Networks is how many of those networks additionally go through the
	// full audited pipeline — Analyze (decisions, probes) plus an audited
	// plan execution (default 6).
	Networks int
	Seed     int64 // master seed (default 1)
	// Threshold is the PSI alert threshold (default
	// audit.DefaultDriftThreshold).
	Threshold float64
	// Shift bounds the phase-2 generator; the zero value takes a
	// configuration far outside the training envelope (segments 10–16,
	// depth 40).
	Shift models.GeneratorConfig
	// Images per plan execution (default 4; 0 < keeps the scenario fast).
	Images int
	// Obs, when non-nil, is the observer the scenario streams into; nil gets
	// a fresh private observer.
	Obs *obs.Observer
	// Recorder, when non-nil, is the audit recorder the scenario feeds —
	// callers that mount /audit on a live telemetry server pass theirs so
	// the endpoint sees the run as it happens. Nil gets a private recorder.
	Recorder *audit.Recorder
	// Tracker, when non-nil, receives the phase-2 drift alerts
	// (slo.Tracker.SetDrift), folding model-drift health into /slo.
	Tracker *slo.Tracker
}

func (o DriftOptions) withDefaults() DriftOptions {
	if o.Traffic <= 0 {
		o.Traffic = 128
	}
	if o.Networks <= 0 {
		o.Networks = 6
	}
	if o.Traffic < o.Networks {
		o.Traffic = o.Networks
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Threshold <= 0 {
		o.Threshold = audit.DefaultDriftThreshold
	}
	if o.Shift == (models.GeneratorConfig{}) {
		o.Shift = models.GeneratorConfig{MinSegments: 10, MaxSegments: 16, MaxDepthPer: 40}
	}
	if o.Images <= 0 {
		o.Images = 4
	}
	return o
}

// DriftData is the scenario outcome: the drift verdict of each phase plus
// the full audit snapshot.
type DriftData struct {
	Platform string
	Opt      DriftOptions

	InDistribution audit.DriftStatus // after phase 1: must not alert
	Shifted        audit.DriftStatus // after phase 2: must alert
	Audit          audit.Snapshot    // recorder state after both phases

	Obs     *obs.Observer
	Metrics []obs.FamilySnapshot
	Events  []obs.Event
}

// Drift runs the model-drift scenario for one platform.
func Drift(env *Env, p *hw.Platform, opt DriftOptions) (*DriftData, error) {
	opt = opt.withDefaults()
	o := opt.Obs
	if o == nil {
		o = obs.New()
	}
	fw := env.Frameworks[p.Name]
	if fw == nil {
		return nil, fmt.Errorf("experiments: no framework deployed for %s", p.Name)
	}
	if fw.Baseline == nil {
		return nil, fmt.Errorf("experiments: %s framework carries no drift baseline", p.Name)
	}
	rec := opt.Recorder
	if rec == nil {
		rec = audit.New(audit.Config{})
	}
	mon := audit.NewDrift(fw.Baseline, opt.Threshold)
	mon.SetDimNames(features.GlobalDimNames())
	rec.AttachDrift(mon)
	fw.Audit = rec
	fw.AuditTrack = 1
	defer func() { fw.Audit, fw.AuditTrack = nil, 0 }()

	// serve pushes one phase of generated traffic through the deployment.
	// Every network's global feature vector reaches the drift monitor; the
	// first opt.Networks of them additionally run the full audited pipeline —
	// Analyze (whose audit hook emits the decision records and calibration
	// probes, and itself observes the monitor) plus an audited plan execution
	// feeding apply records through the governor.
	serve := func(cfg models.GeneratorConfig, seed int64) error {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < opt.Traffic; i++ {
			g := models.RandomDNN(rng, cfg, i)
			if i >= opt.Networks {
				mon.Observe(features.ExtractGlobal(g).Vector())
				continue
			}
			a, err := fw.Analyze(g)
			if err != nil {
				return fmt.Errorf("experiments: drift analyze %s: %w", g.Name, err)
			}
			e := sim.NewExecutor(p, governor.NewPowerLens(a.Plan))
			e.Audit = rec
			e.AuditTrack = 1
			e.RunTask(g, opt.Images)
		}
		return nil
	}

	// Phase 1: traffic from the training distribution (fresh seed, same
	// generator bounds the deployment's Dataset A used).
	if err := serve(models.DefaultGeneratorConfig(), opt.Seed+1000); err != nil {
		return nil, err
	}
	inDist := mon.Status()

	// Phase 2: the injected shift — restart the live window so the verdict
	// reflects only shifted traffic.
	mon.ResetLive()
	if err := serve(opt.Shift, opt.Seed+2000); err != nil {
		return nil, err
	}
	shifted := mon.Status()

	if opt.Tracker != nil {
		var alerts []slo.DriftAlert
		for _, dim := range shifted.Dims {
			if dim.Alerting {
				alerts = append(alerts, slo.DriftAlert{
					Dim: dim.Dim, Name: dim.Name, Score: dim.Score, Threshold: shifted.Threshold,
				})
			}
		}
		opt.Tracker.SetDrift(alerts)
	}

	// Publish the audit aggregates as audit_*/drift metric families so
	// Prometheus exports carry them alongside the run's sim_* counters.
	rec.ExportTo(o.Metrics)

	return &DriftData{
		Platform:       p.Name,
		Opt:            opt,
		InDistribution: inDist,
		Shifted:        shifted,
		Audit:          rec.Snapshot(),
		Obs:            o,
		Metrics:        o.Metrics.Snapshot(),
		Events:         o.Tracer.Events(),
	}, nil
}

// RenderDrift formats the scenario outcome: the per-phase drift verdicts
// with the top shifted dimensions, and the calibration state of the audited
// decisions.
func RenderDrift(d *DriftData) string {
	var sb strings.Builder
	o := d.Opt
	fmt.Fprintf(&sb, "drift: 2 phases x %d live networks (%d fully audited) on %s (seed %d) — PSI threshold %.2f\n",
		o.Traffic, o.Networks, d.Platform, o.Seed, d.Shifted.Threshold)
	phase := func(name string, st audit.DriftStatus) {
		verdict := "quiet"
		if st.Alerting {
			verdict = fmt.Sprintf("ALERTING (%d dims)", st.AlertingDims)
		}
		fmt.Fprintf(&sb, "  %-16s %s — max PSI %.3f, live %d vectors\n",
			name+":", verdict, st.MaxScore, st.LiveCount)
		dims := append([]audit.DimDrift(nil), st.Dims...)
		sort.Slice(dims, func(i, j int) bool { return dims[i].Score > dims[j].Score })
		for i, dim := range dims {
			if i >= 3 || dim.Score <= 0 {
				break
			}
			fmt.Fprintf(&sb, "    %-18s PSI %.3f  alerting=%v\n", dim.Name, dim.Score, dim.Alerting)
		}
	}
	phase("in-distribution", d.InDistribution)
	phase("shifted", d.Shifted)

	fmt.Fprintf(&sb, "\n  audit: %d records (%d dropped)", d.Audit.Records, d.Audit.Dropped)
	for _, k := range d.Audit.Kinds {
		fmt.Fprintf(&sb, ", %s %d", k.Kind, k.Count)
	}
	sb.WriteString("\n")
	for _, m := range d.Audit.Models {
		if m.Probes == 0 {
			continue
		}
		fmt.Fprintf(&sb, "  calibration %-14s probes %3d  agreement %.2f  regret p50/p99 %.4f/%.4f\n",
			m.Model, m.Probes, m.AgreementRatio, m.RegretP50, m.RegretP99)
	}
	return sb.String()
}
