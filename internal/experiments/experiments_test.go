package experiments

import (
	"sync"
	"testing"
	"time"

	"powerlens/internal/core"
	"powerlens/internal/hw"
)

var (
	envOnce sync.Once
	env     *Env
	envErr  error
)

// testEnv deploys a small-but-real environment shared by all tests.
func testEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		cfg := core.DefaultDeployConfig()
		cfg.NumNetworks = 120
		cfg.HyperTrain.Epochs = 40
		cfg.DecisionTrain.Epochs = 50
		env, envErr = NewEnv(cfg)
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return env
}

func TestTable1Shapes(t *testing.T) {
	e := testEnv(t)
	gains := map[string][3]float64{}
	for _, p := range hw.Platforms() {
		rows, err := Table1(e, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 12 {
			t.Fatalf("%s: %d rows, want 12", p.Name, len(rows))
		}
		bim, fpgg, fpgcg := Averages(rows)
		t.Logf("%s averages: BiM %.1f%%  FPG-G %.1f%%  FPG-CG %.1f%%",
			p.Name, bim*100, fpgg*100, fpgcg*100)
		for _, r := range rows {
			t.Logf("  %-15s blocks=%d BiM=%+.1f%% G=%+.1f%% CG=%+.1f%%",
				r.Model, r.Blocks, r.GainBiM*100, r.GainFPGG*100, r.GainFPGCG*100)
			if r.Blocks < 1 {
				t.Errorf("%s/%s: no blocks", p.Name, r.Model)
			}
		}
		// Shape 1: PowerLens wins on average against every baseline.
		if bim <= 0 || fpgg <= 0 || fpgcg <= 0 {
			t.Errorf("%s: average gains must be positive: %.3f %.3f %.3f", p.Name, bim, fpgg, fpgcg)
		}
		// Shape 2: baseline ordering — the BiM gap is the largest, FPG-CG the
		// smallest (Table 1's averages: 57.85 > 18.39 > 13.53 on TX2).
		if !(bim > fpgg && fpgg > fpgcg) {
			t.Errorf("%s: gain ordering violated: BiM %.3f, FPG-G %.3f, FPG-CG %.3f",
				p.Name, bim, fpgg, fpgcg)
		}
		// Shape 3: per-model wins against BiM everywhere.
		for _, r := range rows {
			if r.GainBiM <= 0 {
				t.Errorf("%s/%s: PowerLens loses to BiM (%.3f)", p.Name, r.Model, r.GainBiM)
			}
		}
		gains[p.Name] = [3]float64{bim, fpgg, fpgcg}
	}
	// Shape 4: AGX gains over BiM exceed TX2 gains (119.42% vs 57.85%).
	if gains["AGX"][0] <= gains["TX2"][0] {
		t.Errorf("AGX BiM gain %.3f must exceed TX2's %.3f", gains["AGX"][0], gains["TX2"][0])
	}
}

func TestTable2Shapes(t *testing.T) {
	e := testEnv(t)
	for _, p := range hw.Platforms() {
		rows, err := Table2(e, p, 5)
		if err != nil {
			t.Fatal(err)
		}
		pr, pn := Table2Averages(rows)
		t.Logf("%s ablation averages: P-R %.1f%%  P-N %.1f%%", p.Name, pr*100, pn*100)
		for _, r := range rows {
			t.Logf("  %-15s P-R %+.1f%%  P-N %+.1f%%", r.Model, r.PRLoss*100, r.PNLoss*100)
		}
		// Reproducible shape: neither ablation materially beats the full
		// framework. The paper's magnitudes (-42.6%/-15.2% on TX2) depend on
		// real-hardware effects the analytic substrate compresses — our
		// decision model stays robust on arbitrary contiguous blocks, so the
		// ablation losses here are small; see EXPERIMENTS.md for the
		// deviation record.
		if pr > 0.01 {
			t.Errorf("%s: P-R materially beats PowerLens: %+.3f", p.Name, pr)
		}
		if pn > 0.01 {
			t.Errorf("%s: P-N materially beats PowerLens: %+.3f", p.Name, pn)
		}
	}
}

func TestTable3Shapes(t *testing.T) {
	e := testEnv(t)
	for _, p := range hw.Platforms() {
		d, err := Table3(e, p)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: train %v/%v, feat %v, hyper %v, cluster %v, decide/block %v",
			p.Name, d.HyperTrainTime, d.DecisionTrainTime,
			d.FeatureExtraction, d.HyperPrediction, d.Clustering, d.DecisionPerBlock)
		if d.HyperTrainTime <= 0 || d.DecisionTrainTime <= 0 {
			t.Error("training times missing")
		}
		if d.FeatureExtraction <= 0 || d.Clustering <= 0 {
			t.Error("workflow times missing")
		}
		// The paper's workflow bounds: feature extraction ≤ 10 s, prediction
		// ≤ 320 ms, clustering ≤ 60 s, per-block decision ≤ 220 ms. Our
		// analytic substrate must be comfortably inside them.
		if d.FeatureExtraction > 10*time.Second || d.Clustering > 60*time.Second {
			t.Errorf("%s: workflow slower than the paper's on-device bounds: %+v", p.Name, d)
		}
		if d.HyperPrediction > 320*time.Millisecond || d.DecisionPerBlock > 220*time.Millisecond {
			t.Errorf("%s: prediction stages too slow: %+v", p.Name, d)
		}
	}
}

func TestFig5Shapes(t *testing.T) {
	e := testEnv(t)
	for _, p := range hw.Platforms() {
		results, err := Fig5(e, p, 20, 42)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != 4 {
			t.Fatalf("%d methods, want 4", len(results))
		}
		byName := map[string]Fig5Result{}
		for _, r := range results {
			byName[r.Method] = r
			t.Logf("%s %-10s E=%.1fJ t=%v EE=%.4f", p.Name, r.Method, r.EnergyJ, r.Time, r.EE)
		}
		pl := byName["PowerLens"]
		// PowerLens: lowest energy and highest EE of the four methods.
		for _, r := range results {
			if r.Method == "PowerLens" {
				continue
			}
			if pl.EnergyJ >= r.EnergyJ {
				t.Errorf("%s: PowerLens energy %.1f >= %s %.1f", p.Name, pl.EnergyJ, r.Method, r.EnergyJ)
			}
			if pl.EE <= r.EE {
				t.Errorf("%s: PowerLens EE %.4f <= %s %.4f", p.Name, pl.EE, r.Method, r.EE)
			}
		}
		// Time: PowerLens trades some makespan for energy, but bounded
		// (the paper reports between −2.3% and +16.8%; allow a loose band).
		if pl.Time > byName["BiM"].Time*2 {
			t.Errorf("%s: PowerLens makespan %v more than doubles BiM's %v", p.Name, pl.Time, byName["BiM"].Time)
		}
	}
}

func TestFig1Shapes(t *testing.T) {
	e := testEnv(t)
	p := hw.TX2()
	traces, err := Fig1(e, p)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig1Trace{}
	for _, tr := range traces {
		byName[tr.Method] = tr
		t.Logf("%s: switches=%d energy=%.1fJ time=%v samples=%d",
			tr.Method, tr.Switches, tr.EnergyJ, tr.Time, len(tr.Samples))
	}
	// The reactive governor dithers during steady load (ping-pong); count
	// its busy-phase frequency direction changes.
	reversals := func(tr Fig1Trace) int {
		n, dir := 0, 0
		for i := 1; i < len(tr.Samples); i++ {
			d := 0
			if tr.Samples[i].FreqHz > tr.Samples[i-1].FreqHz {
				d = 1
			} else if tr.Samples[i].FreqHz < tr.Samples[i-1].FreqHz {
				d = -1
			}
			if d != 0 && dir != 0 && d != dir {
				n++
			}
			if d != 0 {
				dir = d
			}
		}
		return n
	}
	if rf := reversals(byName["FPG-G"]); rf < 3 {
		t.Errorf("FPG-G reversals = %d; expected ping-pong", rf)
	}
	// PowerLens must be the most energy-efficient on the bursty flow.
	pl := byName["PowerLens"]
	if pl.EnergyJ >= byName["FPG-G"].EnergyJ || pl.EnergyJ >= byName["BiM"].EnergyJ {
		t.Errorf("PowerLens energy %.1f not lowest (FPG-G %.1f, BiM %.1f)",
			pl.EnergyJ, byName["FPG-G"].EnergyJ, byName["BiM"].EnergyJ)
	}
}

func TestRandomTasksDeterministic(t *testing.T) {
	a := RandomTasks(10, 3)
	b := RandomTasks(10, 3)
	for i := range a {
		if a[i].Graph.Name != b[i].Graph.Name {
			t.Fatal("task sampling must be deterministic")
		}
		if a[i].Images != ImagesPerTask {
			t.Fatal("task size wrong")
		}
	}
}

func TestSwitchOverheadMicrobench(t *testing.T) {
	p := hw.TX2()
	total := SwitchOverhead(p, 100)
	// §3.3: 100 level changes ≈ 50 ms total on the device.
	if total != 50*time.Millisecond {
		t.Fatalf("100 switches = %v, want 50ms", total)
	}
}
