package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"powerlens/internal/cloud"
	"powerlens/internal/cluster"
	"powerlens/internal/features"
	"powerlens/internal/governor"
	"powerlens/internal/hw"
	"powerlens/internal/obs"
	"powerlens/internal/sim"
)

// Observe scenario: one fully instrumented pass through the runtime. A
// guarded MultiPlan deployment runs a faulted task flow on a single node,
// then the same fault schedule drives a small cluster with node crashes, all
// streaming into one obs.Observer — metrics registry, decision/actuation/
// block span trace, and profiling regions around the offline pipeline's hot
// paths. The collected snapshot is what `cmd/experiments observe` exports as
// a Prometheus text page and a Chrome trace_event JSON file.

// ObserveOptions sizes the scenario; zero fields take defaults.
type ObserveOptions struct {
	Tasks int   // single-node task-flow length (default 20)
	Nodes int   // cluster size (default 3)
	Jobs  int   // cluster job-trace length (default 20)
	Seed  int64 // master seed, also seeds the fault schedule (default 1)
	// Obs, when non-nil, is the observer the scenario streams into — callers
	// that mount the sinks on a live telemetry server pass theirs so scrapes
	// see the run as it happens. Nil gets a fresh private observer; either
	// way the simulated outcome is identical (sinks never perturb the run).
	Obs *obs.Observer
}

func (o ObserveOptions) withDefaults() ObserveOptions {
	if o.Tasks <= 0 {
		o.Tasks = 20
	}
	if o.Nodes <= 0 {
		o.Nodes = 3
	}
	if o.Jobs <= 0 {
		o.Jobs = 20
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// ObserveData is the scenario outcome plus the observability snapshot.
type ObserveData struct {
	Platform string
	Opt      ObserveOptions

	Flow    sim.Result          // single-node guarded flow under faults
	Guard   governor.GuardStats // the flow guard's interventions
	Cluster cloud.Result        // degraded-cluster run

	Obs     *obs.Observer // the live sinks, for callers that export directly
	Metrics []obs.FamilySnapshot
	Events  []obs.Event
	Profile []obs.RegionStats
}

// Observe runs the instrumented scenario for one platform.
func Observe(env *Env, p *hw.Platform, opt ObserveOptions) (*ObserveData, error) {
	opt = opt.withDefaults()
	o := opt.Obs
	if o == nil {
		o = obs.New()
	}
	o.Profiler.SampleAllocs = true
	cfg := DefaultFaultSchedule(opt.Seed)

	tasks := RandomTasks(opt.Tasks, opt.Seed)
	jobs := cloud.RandomJobs(opt.Jobs, TaskGap, opt.Seed)
	all := make([]sim.Task, 0, len(tasks)+len(jobs))
	all = append(all, tasks...)
	for _, j := range jobs {
		all = append(all, sim.Task{Graph: j.Graph, Images: j.Images})
	}
	plans, err := taskPlans(env, p, all)
	if err != nil {
		return nil, err
	}

	// Profile the offline pipeline's hot paths on the flow's first model:
	// feature extraction, the Mahalanobis-blended distance matrix, and a full
	// uncached analysis.
	g := tasks[0].Graph
	stop := o.Profiler.Region("features.ScaledDepthwise")
	x, _ := features.ScaledDepthwise(g)
	stop()
	alpha, lambda := cluster.DefaultDistanceParams()
	stop = o.Profiler.Region("cluster.BlendedDistance")
	_ = cluster.BlendedDistance(x, alpha, lambda)
	stop()
	stop = o.Profiler.Region("core.Framework.Analyze")
	_, err = env.Frameworks[p.Name].Analyze(g)
	stop()
	if err != nil {
		return nil, err
	}

	// Single-node guarded flow under the fault schedule (trace track 1).
	guard := governor.NewGuard(governor.NewMultiPlan(plans))
	guard.Obs = o
	e := sim.NewExecutor(p, guard)
	e.Faults = hw.NewInjector(cfg)
	e.Obs = o
	stop = o.Profiler.Region("sim.Executor.RunTaskFlow")
	flow := e.RunTaskFlow(tasks, TaskGap)
	stop()

	// Degraded cluster over the same schedule: job lifecycle spans on tracks
	// node+1, per-node executor internals on their own derived tracks.
	cres, err := cloud.Run(cloud.Config{
		Nodes:    opt.Nodes,
		Platform: p,
		NewCtl:   func() sim.Controller { return governor.NewGuard(governor.NewMultiPlan(plans)) },
		Faults:   cfg,
		Obs:      o,
	}, jobs)
	if err != nil {
		return nil, err
	}

	return &ObserveData{
		Platform: p.Name,
		Opt:      opt,
		Flow:     flow,
		Guard:    guard.Stats,
		Cluster:  cres,
		Obs:      o,
		Metrics:  o.Metrics.Snapshot(),
		Events:   o.Tracer.Events(),
		Profile:  o.Profiler.Snapshot(),
	}, nil
}

// RenderObserve formats the scenario outcome, the metric families, and the
// profiling regions as a terminal table.
func RenderObserve(d *ObserveData) string {
	var sb strings.Builder
	o := d.Opt
	fmt.Fprintf(&sb, "Observability: guarded %d-task flow + %d-node/%d-job cluster on %s under the default fault schedule (seed %d)\n",
		o.Tasks, o.Nodes, o.Jobs, d.Platform, o.Seed)
	fmt.Fprintf(&sb, "  flow:    EE %.4f img/J, energy %.1f J, time %v, faults %d, guard fallbacks %d\n",
		d.Flow.EE(), d.Flow.EnergyJ, d.Flow.Time.Round(time.Millisecond),
		d.Flow.Faults.Total(), d.Guard.FallbackActivations)
	fmt.Fprintf(&sb, "  cluster: EE %.4f img/J, makespan %v, nodes lost %d, failovers %d, dropped %d\n",
		d.Cluster.EE(), d.Cluster.Makespan.Round(time.Millisecond),
		d.Cluster.NodesLost, d.Cluster.Failovers, d.Cluster.DroppedJobs)

	spans, instants := 0, 0
	cats := map[string]int{}
	for _, ev := range d.Events {
		if ev.Phase == obs.PhaseComplete {
			spans++
		} else {
			instants++
		}
		cats[ev.Cat]++
	}
	names := make([]string, 0, len(cats))
	for c := range cats {
		names = append(names, c)
	}
	sort.Strings(names)
	fmt.Fprintf(&sb, "  trace:   %d events (%d spans, %d instants):", len(d.Events), spans, instants)
	for _, c := range names {
		fmt.Fprintf(&sb, " %s=%d", c, cats[c])
	}
	sb.WriteString("\n\n")

	fmt.Fprintf(&sb, "metrics (%d families):\n", len(d.Metrics))
	fmt.Fprintf(&sb, "  %-34s %-9s %6s %14s\n", "name", "kind", "series", "total")
	for _, f := range d.Metrics {
		fmt.Fprintf(&sb, "  %-34s %-9s %6d %14.2f\n", f.Name, f.Kind, len(f.Series), f.Total())
	}

	sb.WriteString("\nprofile (wall time is host time, not simulated time):\n")
	fmt.Fprintf(&sb, "  %-28s %6s %12s %12s %12s\n", "region", "calls", "total", "mean", "alloc")
	for _, r := range d.Profile {
		fmt.Fprintf(&sb, "  %-28s %6d %12v %12v %9.1f KB\n",
			r.Name, r.Count, r.Wall.Round(time.Microsecond), r.Mean().Round(time.Microsecond),
			float64(r.AllocBytes)/1024)
	}
	return sb.String()
}
