package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"powerlens/internal/cluster"
	"powerlens/internal/dataset"
	"powerlens/internal/features"
	"powerlens/internal/governor"
	"powerlens/internal/graph"
	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/nn"
	"powerlens/internal/obs"
	"powerlens/internal/obs/ledger"
	"powerlens/internal/obs/sketch"
	"powerlens/internal/sim"
)

// The bench harness is the repo's machine-checkable performance baseline:
// `cmd/experiments bench` measures the hot paths (simulated-executor layer
// stepping, power-view clustering, feature extraction, metrics/span emission
// and the scrape path) and emits a schema-versioned BENCH_<name>.json;
// `bench compare` diffs two such files with per-metric tolerance thresholds
// and exits nonzero on regression, so CI and developers can pin the perf
// trajectory between commits the same way golden files pin output formats.

// BenchSchemaVersion is bumped whenever the bench-report layout changes
// incompatibly; Compare and Validate reject reports from a future schema.
const BenchSchemaVersion = 1

// BenchMetric is one measured quantity.
type BenchMetric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	// Group names the harness section the metric belongs to ("sim",
	// "cluster", "features", "obs", "offline", "online");
	// BenchOptions.Filter selects sections by substring.
	Group string `json:"group,omitempty"`
	// HigherIsBetter orients regression detection (throughputs: true).
	HigherIsBetter bool `json:"higherIsBetter"`
	// Tolerance is the relative worsening allowed before Compare flags a
	// regression (0.25 = 25% worse). Wall-clock throughputs need generous
	// tolerances: CI machines are noisy neighbors.
	Tolerance float64 `json:"tolerance"`
}

// BenchReport is the emitted BENCH_<name>.json document.
type BenchReport struct {
	Schema    int           `json:"schema"`
	Name      string        `json:"name"`
	Seed      int64         `json:"seed"`
	Smoke     bool          `json:"smoke,omitempty"`
	GoVersion string        `json:"goVersion"`
	HostOS    string        `json:"hostOs"`
	HostArch  string        `json:"hostArch"`
	Metrics   []BenchMetric `json:"metrics"`
}

// Validate checks the invariants Compare and CI rely on.
func (r *BenchReport) Validate() error {
	if r.Schema <= 0 || r.Schema > BenchSchemaVersion {
		return fmt.Errorf("bench: report %q has schema %d, this build reads <= %d",
			r.Name, r.Schema, BenchSchemaVersion)
	}
	if r.Name == "" {
		return errors.New("bench: report has no name")
	}
	if len(r.Metrics) == 0 {
		return fmt.Errorf("bench: report %q has no metrics", r.Name)
	}
	seen := map[string]bool{}
	for i, m := range r.Metrics {
		if m.Name == "" || m.Unit == "" {
			return fmt.Errorf("bench: metric %d of %q lacks name or unit", i, r.Name)
		}
		if seen[m.Name] {
			return fmt.Errorf("bench: metric %q duplicated in %q", m.Name, r.Name)
		}
		seen[m.Name] = true
		if math.IsNaN(m.Value) || math.IsInf(m.Value, 0) || m.Value < 0 {
			return fmt.Errorf("bench: metric %q has bad value %v", m.Name, m.Value)
		}
		if m.Tolerance < 0 || math.IsNaN(m.Tolerance) {
			return fmt.Errorf("bench: metric %q has bad tolerance %v", m.Name, m.Tolerance)
		}
	}
	return nil
}

// WriteBenchReport encodes the report as indented JSON.
func WriteBenchReport(w io.Writer, r *BenchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadBenchReport decodes and validates a report.
func ReadBenchReport(rd io.Reader) (*BenchReport, error) {
	var r BenchReport
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("bench: decode report: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// LoadBenchReport reads a report from disk.
func LoadBenchReport(path string) (*BenchReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	defer f.Close()
	return ReadBenchReport(f)
}

// BenchOptions sizes the harness; zero fields take defaults.
type BenchOptions struct {
	Name string // report name (default "local")
	Seed int64  // seeds the simulated workloads (default 1)
	// Smoke shrinks every workload to CI-smoke size: same metrics, seconds
	// not minutes, numbers only meaningful against other smoke runs.
	Smoke bool
	// Repeats is the number of timed repetitions per measurement; the
	// fastest is kept, standard wall-clock-bench practice (default 3, 1 for
	// smoke).
	Repeats int
	// Filter, when non-empty, runs only the sections whose group name
	// contains it (e.g. "offline" measures just the offline pipeline).
	Filter string
}

func (o BenchOptions) withDefaults() BenchOptions {
	if o.Name == "" {
		o.Name = "local"
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Repeats <= 0 {
		o.Repeats = 3
		if o.Smoke {
			o.Repeats = 1
		}
	}
	return o
}

// timeBest runs fn repeats times and returns the fastest wall time, floored
// at 1µs so rates never divide by zero.
func timeBest(repeats int, fn func()) time.Duration {
	best := time.Duration(math.MaxInt64)
	for i := 0; i < repeats; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	if best < time.Microsecond {
		best = time.Microsecond
	}
	return best
}

// RunBench measures the hot paths and assembles the report. Everything is
// seeded and deployment-free (no Env needed), so `experiments bench` starts
// measuring immediately.
func RunBench(opt BenchOptions) (*BenchReport, error) {
	opt = opt.withDefaults()
	r := &BenchReport{
		Schema:    BenchSchemaVersion,
		Name:      opt.Name,
		Seed:      opt.Seed,
		Smoke:     opt.Smoke,
		GoVersion: runtime.Version(),
		HostOS:    runtime.GOOS,
		HostArch:  runtime.GOARCH,
	}
	add := func(group, name string, value float64, unit string, tol float64, higherIsBetter bool) {
		r.Metrics = append(r.Metrics, BenchMetric{
			Name: name, Value: value, Unit: unit, Group: group,
			HigherIsBetter: higherIsBetter, Tolerance: tol,
		})
	}
	matched := false
	match := func(group string) bool {
		ok := opt.Filter == "" || strings.Contains(group, opt.Filter)
		if ok {
			matched = true
		}
		return ok
	}

	model := "resnet152"
	if opt.Smoke {
		model = "resnet18"
	}
	g := models.MustBuild(model)
	p := hw.TX2()

	if match("sim") {
		// Executor stepping: simulated layers advanced per second of host
		// time, over a seeded random task flow (the runtime hot path).
		images, flowTasks := 8, 6
		if opt.Smoke {
			images, flowTasks = 2, 2
		}
		rng := rand.New(rand.NewSource(opt.Seed))
		names := models.Names()
		tasks := make([]sim.Task, flowTasks)
		layers := 0
		for i := range tasks {
			tg := models.MustBuild(names[rng.Intn(len(names))])
			tasks[i] = sim.Task{Graph: tg, Images: images}
			layers += len(tg.Layers) * images
		}
		d := timeBest(opt.Repeats, func() {
			e := sim.NewExecutor(p, governor.NewOndemand())
			e.RunTaskFlow(tasks, TaskGap)
		})
		add("sim", "executor_layer_steps_per_sec", float64(layers)/d.Seconds(), "steps/s", 0.40, true)
	}

	if match("cluster") {
		// Clustering: Algorithm-1 power views built per second.
		alpha, lambda := cluster.DefaultDistanceParams()
		hp := cluster.Hyperparams{Eps: 0.3, MinPts: 4, Alpha: alpha, Lambda: lambda}
		clusterIters := 4
		if opt.Smoke {
			clusterIters = 1
		}
		d := timeBest(opt.Repeats, func() {
			for i := 0; i < clusterIters; i++ {
				if _, err := cluster.BuildPowerView(g, hp); err != nil {
					panic(err) // deterministic input; cannot fail once it ever passed
				}
			}
		})
		add("cluster", "clustering_views_per_sec", float64(clusterIters)/d.Seconds(), "views/s", 0.40, true)
	}

	if match("features") {
		// Feature extraction: depthwise + global extractor passes per second.
		featIters := 20
		if opt.Smoke {
			featIters = 4
		}
		d := timeBest(opt.Repeats, func() {
			for i := 0; i < featIters; i++ {
				features.ScaledDepthwise(g)
				features.ExtractGlobal(g)
			}
		})
		add("features", "feature_extracts_per_sec", float64(featIters)/d.Seconds(), "extracts/s", 0.40, true)
	}

	if match("obs") {
		// Registry overhead: labelled counter increments per second — the
		// cost every instrumented window/switch/image pays.
		incs := 2_000_000
		if opt.Smoke {
			incs = 200_000
		}
		reg := obs.NewRegistry()
		ctr := reg.Counter("bench_ops_total", "bench", "controller")
		d := timeBest(opt.Repeats, func() {
			for i := 0; i < incs; i++ {
				ctr.Inc("PowerLens")
			}
		})
		add("obs", "registry_counter_ops_per_sec", float64(incs)/d.Seconds(), "ops/s", 0.50, true)

		// Span overhead: trace emissions per second (lock + args copy + append).
		spans := 500_000
		if opt.Smoke {
			spans = 50_000
		}
		d = timeBest(opt.Repeats, func() {
			tr := obs.NewTracer()
			for i := 0; i < spans; i++ {
				tr.Complete("block", "bench", 1, time.Duration(i), 1, nil)
			}
		})
		add("obs", "tracer_span_ops_per_sec", float64(spans)/d.Seconds(), "ops/s", 0.50, true)

		// Scrape path: pooled SnapshotInto + Prometheus render per second
		// over a populated registry — what /metrics does per scrape.
		popReg := obs.NewRegistry()
		for i := 0; i < 12; i++ {
			c := popReg.Counter(fmt.Sprintf("bench_family_%02d_total", i), "bench", "controller")
			for _, v := range []string{"PowerLens", "BiM", "Ondemand"} {
				c.Add(float64(i), v)
			}
		}
		hist := popReg.Histogram("bench_power_watts", "bench", []float64{1, 2, 4, 8, 16}, "controller")
		for i := 0; i < 64; i++ {
			hist.Observe(float64(i%20), "PowerLens")
		}
		scrapes := 5_000
		if opt.Smoke {
			scrapes = 500
		}
		var buf []obs.FamilySnapshot
		d = timeBest(opt.Repeats, func() {
			for i := 0; i < scrapes; i++ {
				buf = popReg.SnapshotInto(buf)
				if err := obs.WriteSnapshotPrometheus(io.Discard, buf); err != nil {
					panic(err)
				}
			}
		})
		add("obs", "metrics_scrapes_per_sec", float64(scrapes)/d.Seconds(), "scrapes/s", 0.50, true)

		// Sketch hot paths: Observe is on every recorded pass (ledger + SLO
		// tracker), Merge is on every cross-shard ledger/registry merge.
		skInserts := 2_000_000
		if opt.Smoke {
			skInserts = 200_000
		}
		d = timeBest(opt.Repeats, func() {
			sk := sketch.New()
			for i := 0; i < skInserts; i++ {
				sk.Observe(float64(i%977)/100 + 1e-3)
			}
		})
		add("obs", "sketch_insert_ns", d.Seconds()*1e9/float64(skInserts), "ns/op", 0.50, false)

		merges := 50_000
		if opt.Smoke {
			merges = 5_000
		}
		src := sketch.New()
		for i := 0; i < 4096; i++ {
			src.Observe(float64(i%257)/10 + 1e-3)
		}
		dst := sketch.New()
		d = timeBest(opt.Repeats, func() {
			for i := 0; i < merges; i++ {
				dst.Merge(src)
			}
		})
		add("obs", "sketch_merge_ns", d.Seconds()*1e9/float64(merges), "ns/op", 0.50, false)

		// Ledger record path: steady-state allocations per attribution event.
		// Like executor_step_allocs, the healthy value is exactly zero — once
		// the (model, block, level) cells exist, recording only touches them.
		l := ledger.New()
		records := 500_000
		if opt.Smoke {
			records = 50_000
		}
		record := func(n int) {
			for i := 0; i < n; i++ {
				k := ledger.Key{Model: 42, Block: int32(i % 4), Level: int32(i % 8)}
				l.RecordSegment(k, "bench", time.Microsecond, 1e-6)
				if i%16 == 0 {
					l.RecordPass(42, "bench", time.Millisecond, 1e-3, i%32 == 0)
				}
			}
		}
		record(1024) // warm: create every cell, the model entry, sketch buckets
		runtime.GC()
		var ms1, ms2 runtime.MemStats
		runtime.ReadMemStats(&ms1)
		record(records)
		runtime.ReadMemStats(&ms2)
		add("obs", "ledger_record_allocs",
			float64(ms2.Mallocs-ms1.Mallocs)/float64(records), "allocs/op", 0.50, false)
	}

	if match("offline") {
		offlineBench(opt, r, g, add)
	}

	if match("online") {
		onlineBench(opt, add)
	}

	// A filter that selects nothing would silently emit an empty (and
	// invalid) report; name the sections instead so typos fail loudly.
	if !matched {
		return nil, fmt.Errorf("bench: filter %q matches no section (sections: %s)",
			opt.Filter, strings.Join(benchSections, ", "))
	}

	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// benchSections lists every harness section a BenchOptions.Filter can match.
var benchSections = []string{"sim", "cluster", "features", "obs", "offline", "online"}

// offlineBench measures the §2.2 offline pipeline: dataset generation
// throughput end to end (multi-core), the oracle sweep's per-block cost over
// the production segment-cost-cache path, the grid clustering sweep's
// allocation behaviour, and prediction-model training. These are the loops
// the cost table, cluster scratch and data-parallel trainer optimize;
// BENCH_offline.json pins them against regression.
func offlineBench(opt BenchOptions, r *BenchReport, g *graph.Graph, add func(group, name string, value float64, unit string, tol float64, higherIsBetter bool)) {
	p := hw.TX2()

	// End-to-end generation: random DNNs through grid sweep, oracle labeling
	// and sample assembly, all cores.
	nets := 16
	if opt.Smoke {
		nets = 4
	}
	dcfg := dataset.DefaultConfig(nets, opt.Seed)
	d := timeBest(opt.Repeats, func() {
		dataset.Generate(p, dcfg)
	})
	add("offline", "dataset_gen_nets_per_s", float64(nets)/d.Seconds(), "nets/s", 0.50, true)

	// Oracle sweep: the per-block full-ladder sweep exactly as the generator
	// runs it — one cost table per network, every grid cell's power view
	// swept block by block (repeated blocks across cells hit the memo).
	grid := dataset.DefaultGrid()
	views := make([]*cluster.PowerView, 0, len(grid))
	blocks := 0
	for _, hp := range grid {
		pv, err := cluster.BuildPowerView(g, hp)
		if err != nil {
			panic(err) // deterministic input; cannot fail once it ever passed
		}
		views = append(views, pv)
		blocks += pv.NumBlocks()
	}
	sweep := func() {
		ct := sim.NewCostTable(p, g)
		for _, pv := range views {
			for _, b := range pv.Blocks {
				ct.OptimalSegmentLevel(b.StartLayer, b.EndLayer)
			}
		}
	}
	d = timeBest(opt.Repeats, sweep)
	add("offline", "oracle_sweep_ns_per_block", float64(d.Nanoseconds())/float64(blocks), "ns/block", 0.50, false)

	var ms1, ms2 runtime.MemStats
	runtime.ReadMemStats(&ms1)
	sweep()
	runtime.ReadMemStats(&ms2)
	add("offline", "oracle_sweep_allocs_per_block",
		float64(ms2.Mallocs-ms1.Mallocs)/float64(blocks), "allocs/block", 0.50, false)

	// Grid clustering sweep allocations: DBSCAN + post-processing over a
	// shared distance matrix with reused scratch, as the generator runs it.
	alpha, lambda := cluster.DefaultDistanceParams()
	x, _ := features.ScaledDepthwise(g)
	dist := cluster.BlendedDistance(x, alpha, lambda)
	runtime.ReadMemStats(&ms1)
	var sc cluster.Scratch
	for _, hp := range grid {
		cluster.ClusterPrecomputedScratch(dist, hp, &sc)
	}
	runtime.ReadMemStats(&ms2)
	add("offline", "cluster_sweep_allocs_per_cell",
		float64(ms2.Mallocs-ms1.Mallocs)/float64(len(grid)), "allocs/cell", 0.50, false)

	// Trainer: data-parallel minibatch epochs over a decision-model-shaped
	// network and synthetic samples (results are worker-count invariant).
	trainN, epochs := 768, 4
	if opt.Smoke {
		trainN, epochs = 192, 2
	}
	samples := synthTrainSamples(trainN, 12, 6, p.NumGPULevels(), opt.Seed)
	tcfg := nn.TrainConfig{Epochs: epochs, BatchSize: 32, LR: 1e-3, Seed: opt.Seed}
	d = timeBest(opt.Repeats, func() {
		net := nn.NewTwoStageNet(12, 6, []int{64, 48}, []int{32}, p.NumGPULevels(), opt.Seed)
		nn.Train(net, samples, samples[:64], tcfg)
	})
	add("offline", "train_epoch_ns", float64(d.Nanoseconds())/float64(epochs), "ns/epoch", 0.50, false)
}

// synthTrainSamples builds seeded synthetic two-facet samples for the
// trainer benchmark.
func synthTrainSamples(n, structDim, statsDim, classes int, seed int64) []nn.Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]nn.Sample, n)
	for i := range out {
		s := nn.Sample{
			Structural: make([]float64, structDim),
			Stats:      make([]float64, statsDim),
			Label:      rng.Intn(classes),
		}
		for j := range s.Structural {
			s.Structural[j] = rng.NormFloat64()
		}
		for j := range s.Stats {
			s.Stats[j] = rng.NormFloat64() + float64(s.Label)
		}
		out[i] = s
	}
	return out
}

// BenchDelta is one metric's comparison outcome.
type BenchDelta struct {
	Name     string
	Old, New float64
	// Pct is the relative change in percent, signed so negative always
	// means "worse" regardless of metric orientation.
	Pct       float64
	Tolerance float64 // allowed worsening in percent (slack applied)
	Regressed bool
	Missing   bool // present in old, absent in new
	Added     bool // absent in old, present in new
}

// CompareBench diffs two reports metric by metric. slack scales every
// tolerance (1 = as recorded; 2 = twice as lenient — useful across machine
// generations). A metric that is in old but missing from new counts as a
// regression (silent metric loss is exactly what schema pinning is for);
// new metrics are reported but benign. The second result is true when any
// regression was found.
func CompareBench(old, cur *BenchReport, slack float64) ([]BenchDelta, bool) {
	if slack <= 0 {
		slack = 1
	}
	curBy := map[string]BenchMetric{}
	for _, m := range cur.Metrics {
		curBy[m.Name] = m
	}
	oldSeen := map[string]bool{}

	var out []BenchDelta
	regressed := false
	for _, om := range old.Metrics {
		oldSeen[om.Name] = true
		d := BenchDelta{Name: om.Name, Old: om.Value, Tolerance: om.Tolerance * slack * 100}
		nm, ok := curBy[om.Name]
		if !ok {
			d.Missing, d.Regressed, regressed = true, true, true
			out = append(out, d)
			continue
		}
		d.New = nm.Value
		switch {
		case om.Value == nm.Value:
			d.Pct = 0
		case om.Value == 0:
			// Zero baseline: no relative scale exists, so the verdict rides on
			// the absolute movement. ±100 is a display sentinel (negative
			// means worse, matching the signed convention below), and any
			// worse-direction movement off zero regresses regardless of
			// tolerance or slack — a percentage of a zero base excuses
			// nothing.
			d.Pct = 100
			if (nm.Value < 0) == om.HigherIsBetter {
				d.Pct = -100
				d.Regressed, regressed = true, true
			}
			out = append(out, d)
			continue
		default:
			d.Pct = (nm.Value - om.Value) / om.Value * 100
		}
		if !om.HigherIsBetter {
			d.Pct = -d.Pct
		}
		if d.Pct < -d.Tolerance {
			d.Regressed, regressed = true, true
		}
		out = append(out, d)
	}
	for _, nm := range cur.Metrics {
		if !oldSeen[nm.Name] {
			out = append(out, BenchDelta{Name: nm.Name, New: nm.Value, Added: true})
		}
	}
	return out, regressed
}

// RenderBenchReport formats a report as a terminal table.
func RenderBenchReport(r *BenchReport) string {
	s := fmt.Sprintf("bench %q (seed %d, smoke %v, %s %s/%s):\n",
		r.Name, r.Seed, r.Smoke, r.GoVersion, r.HostOS, r.HostArch)
	s += fmt.Sprintf("  %-32s %16s %-12s %9s\n", "metric", "value", "unit", "tolerance")
	for _, m := range r.Metrics {
		s += fmt.Sprintf("  %-32s %16.1f %-12s %8.0f%%\n", m.Name, m.Value, m.Unit, m.Tolerance*100)
	}
	return s
}

// RenderBenchDeltas formats a comparison as a terminal table.
func RenderBenchDeltas(ds []BenchDelta) string {
	s := fmt.Sprintf("  %-32s %14s %14s %9s %10s  %s\n", "metric", "old", "new", "change", "tolerance", "verdict")
	for _, d := range ds {
		verdict := "ok"
		switch {
		case d.Missing:
			verdict = "REGRESSED (metric missing)"
		case d.Regressed:
			verdict = "REGRESSED"
		case d.Added:
			verdict = "new metric"
		}
		s += fmt.Sprintf("  %-32s %14.1f %14.1f %+8.1f%% %9.0f%%  %s\n",
			d.Name, d.Old, d.New, d.Pct, d.Tolerance, verdict)
	}
	return s
}
