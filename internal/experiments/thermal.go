package experiments

import (
	"fmt"
	"strings"
	"time"

	"powerlens/internal/governor"
	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/sim"
)

// ThermalRow is one method's sustained-load thermal outcome.
type ThermalRow struct {
	Method        string
	PeakTempC     float64
	ThrottledTime time.Duration
	Time          time.Duration
	EnergyJ       float64
	EE            float64
}

// ThermalStudy runs a long sustained task (ResNet-152 × images) under BiM
// and PowerLens with the opt-in thermal model enabled. On real Jetson
// boards MAXN throttles under sustained load (the effect zTT [6] manages);
// PowerLens's lower operating power stays below the trip point — an
// emergent benefit on top of its energy savings.
func ThermalStudy(env *Env, p *hw.Platform, images int) ([]ThermalRow, error) {
	g := models.MustBuild("resnet152")
	a, err := env.analysis(p.Name, g.Name)
	if err != nil {
		return nil, err
	}
	controllers := []sim.Controller{
		governor.NewPowerLens(a.Plan),
		governor.NewOndemand(),
	}
	var rows []ThermalRow
	for _, ctl := range controllers {
		e := sim.NewExecutor(p, ctl)
		e.Thermal = hw.DefaultThermal(p)
		r := e.RunTask(g, images)
		rows = append(rows, ThermalRow{
			Method:        ctl.Name(),
			PeakTempC:     r.PeakTempC,
			ThrottledTime: r.ThrottledTime,
			Time:          r.Time,
			EnergyJ:       r.EnergyJ,
			EE:            r.EE(),
		})
	}
	return rows, nil
}

// RenderThermal formats the thermal study.
func RenderThermal(platform string, images int, rows []ThermalRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Thermal study on %s: sustained resnet152 x %d images (opt-in RC model)\n", platform, images)
	fmt.Fprintf(&sb, "%-10s %10s %14s %14s %12s %10s\n",
		"method", "peak °C", "throttled", "time", "energy (J)", "EE")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %10.1f %14v %14v %12.1f %10.4f\n",
			r.Method, r.PeakTempC, r.ThrottledTime.Round(time.Millisecond),
			r.Time.Round(time.Millisecond), r.EnergyJ, r.EE)
	}
	return sb.String()
}
