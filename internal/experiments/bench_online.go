package experiments

import (
	"runtime"
	"time"

	"powerlens/internal/cloud"
	"powerlens/internal/core"
	"powerlens/internal/dataset"
	"powerlens/internal/features"
	"powerlens/internal/governor"
	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/nn"
	"powerlens/internal/sim"
)

// onlineBench measures the online serving fast path: the plan cache
// (analyze_ns_cached vs analyze_ns_uncached), steady-state executor stepping
// allocations with tracing off (executor_step_allocs — the fast path's
// headline is that this is zero), and sharded cloud dispatch throughput
// (dispatch_jobs_per_s). BENCH_online.json pins these against regression.
func onlineBench(opt BenchOptions, add func(group, name string, value float64, unit string, tol float64, higherIsBetter bool)) {
	p := hw.TX2()
	fw := benchFramework(p, opt.Seed)
	model := "resnet34"
	if opt.Smoke {
		model = "alexnet"
	}
	g := models.MustBuild(model)

	// Uncached analysis: the full per-request pipeline (feature extraction →
	// hyperparameter NN → clustering → decision NN → guard).
	uncachedIters := 8
	if opt.Smoke {
		uncachedIters = 2
	}
	d := timeBest(opt.Repeats, func() {
		for i := 0; i < uncachedIters; i++ {
			if _, err := fw.Analyze(g); err != nil {
				panic(err) // deterministic input; cannot fail once it ever passed
			}
		}
	})
	add("online", "analyze_ns_uncached", float64(d.Nanoseconds())/float64(uncachedIters), "ns/op", 0.50, false)

	// Cached analysis: the same call against a warm plan cache — one graph
	// digest and a map hit.
	fw.EnablePlanCache(0, nil)
	if _, err := fw.Analyze(g); err != nil {
		panic(err)
	}
	cachedIters := 20_000
	if opt.Smoke {
		cachedIters = 4_000
	}
	d = timeBest(opt.Repeats, func() {
		for i := 0; i < cachedIters; i++ {
			if _, err := fw.Analyze(g); err != nil {
				panic(err)
			}
		}
	})
	add("online", "analyze_ns_cached", float64(d.Nanoseconds())/float64(cachedIters), "ns/op", 0.50, false)

	// Steady-state executor stepping allocations with tracing off. The first
	// run warms the per-run scratch (sensor, op cost buffer, compiled plan
	// schedule); after that the serving loop must not touch the heap.
	a, err := fw.Analyze(g)
	if err != nil {
		panic(err)
	}
	fw.DisablePlanCache()
	e := sim.NewExecutor(p, governor.NewPowerLens(a.Plan))
	e.SensorPeriod = 0
	images := 4
	runs := 8
	if opt.Smoke {
		runs = 3
	}
	e.RunTask(g, images) // warm-up run
	var ms1, ms2 runtime.MemStats
	runtime.ReadMemStats(&ms1)
	for i := 0; i < runs; i++ {
		e.RunTask(g, images)
	}
	runtime.ReadMemStats(&ms2)
	steps := runs * images * len(g.Layers)
	add("online", "executor_step_allocs",
		float64(ms2.Mallocs-ms1.Mallocs)/float64(steps), "allocs/step", 0.50, false)

	// Sharded dispatch throughput: a seeded job trace through the
	// work-stealing dispatcher, end to end (dispatch + node simulation).
	// The fleet runs plan controllers (the deployed shape), so node passes are
	// macro-steppable: dispatch_jobs_per_s is the headline macro path against a
	// warm shared summary cache, dispatch_jobs_per_s_micro the micro-stepped
	// reference the macro layer is bit-identical to.
	nodes, shards, jobsN := 8, 4, 48
	if opt.Smoke {
		nodes, shards, jobsN = 4, 2, 12
	}
	jobs := cloud.RandomJobs(jobsN, 200*time.Millisecond, opt.Seed)
	plans := map[string]*governor.FrequencyPlan{}
	for _, name := range models.Names() {
		mid := len(models.MustBuild(name).Layers) / 2
		plans[name] = &governor.FrequencyPlan{
			Model:  name,
			Points: map[int]int{0: 5, mid: p.NumGPULevels() - 1},
		}
	}
	newCtl := func() sim.Controller { return governor.NewMultiPlan(plans) }
	cfg := cloud.Config{
		Nodes:    nodes,
		Platform: p,
		NewCtl:   newCtl,
		Shards:   shards,
	}

	micro := cfg
	micro.TraceOff = true
	d = timeBest(opt.Repeats, func() {
		if _, err := cloud.Run(micro, jobs); err != nil {
			panic(err)
		}
	})
	add("online", "dispatch_jobs_per_s_micro", float64(jobsN)/d.Seconds(), "jobs/s", 0.50, true)

	macro := cfg
	macro.Macro = sim.NewSummaryCache()
	if _, err := cloud.Run(macro, jobs); err != nil {
		panic(err) // warm the shared summary cache before timing
	}
	d = timeBest(opt.Repeats, func() {
		if _, err := cloud.Run(macro, jobs); err != nil {
			panic(err)
		}
	})
	add("online", "dispatch_jobs_per_s", float64(jobsN)/d.Seconds(), "jobs/s", 0.50, true)
}

// benchFramework assembles a deployment-free Framework: seeded, untrained
// models of the production shapes with scalers fit on synthetic samples.
// Analysis outputs are arbitrary but deterministic — exactly what latency
// and allocation measurements need, without minutes of offline training.
func benchFramework(p *hw.Platform, seed int64) *core.Framework {
	grid := dataset.DefaultGrid()
	hyperSamples := synthTrainSamples(64, features.StructuralDim, features.StatsDim, len(grid), seed)
	decisionSamples := synthTrainSamples(64, features.StructuralDim, features.StatsDim, p.NumGPULevels(), seed+1)
	return &core.Framework{
		Platform: p,
		Grid:     grid,
		HyperModel: nn.NewTwoStageNet(features.StructuralDim, features.StatsDim,
			[]int{48, 32}, []int{48, 24}, len(grid), seed+2),
		HyperScaler: nn.FitFacetScaler(hyperSamples),
		DecisionModel: nn.NewTwoStageNet(features.StructuralDim, features.StatsDim,
			[]int{64, 32}, []int{32}, p.NumGPULevels(), seed+3),
		DecisionScaler: nn.FitFacetScaler(decisionSamples),
	}
}
