package experiments

import (
	"fmt"
	"strings"
	"time"

	"powerlens/internal/cloud"
	"powerlens/internal/governor"
	"powerlens/internal/hw"
	"powerlens/internal/obs"
	"powerlens/internal/sim"
)

// Resilience scenario: every governor runs the same task flow twice — once
// fault-free and once under an identical seeded fault schedule (tegrastats
// dropouts and noise, stuck/clamped/late DVFS transitions) — and the cluster
// variant adds scheduled node crashes with job failover. The comparison
// answers the question the paper's clean-board evaluation cannot: which
// policy keeps its energy efficiency when the platform misbehaves, and what
// does recovery cost?

// DefaultFaultSchedule is the standard nonzero schedule used by the
// resilience experiment: Jetson-class nuisance rates, deterministic per
// seed.
func DefaultFaultSchedule(seed int64) hw.FaultConfig {
	return hw.FaultConfig{
		Seed:              seed,
		SensorDropoutProb: 0.05,
		SensorNoiseFrac:   0.10,
		StuckProb:         0.10,
		ClampProb:         0.03,
		DelayProb:         0.20,
		DelayLatency:      2 * time.Millisecond,
		NodeCrashProb:     0.5,
		NodeCrashMTBF:     60 * time.Second,
	}
}

// ResilienceRow compares one policy's fault-free and faulted runs of the
// same task flow, with its fault/recovery counters.
type ResilienceRow struct {
	Method    string
	CleanEE   float64
	FaultEE   float64
	CleanTime time.Duration
	FaultTime time.Duration

	Faults hw.FaultStats
	Guard  *governor.GuardStats // non-nil for guard-wrapped policies
}

// DeltaEE returns the relative EE change under faults (negative = loss).
func (r ResilienceRow) DeltaEE() float64 {
	if r.CleanEE == 0 {
		return 0
	}
	return r.FaultEE/r.CleanEE - 1
}

// taskPlans analyzes every distinct model in a task flow and returns the
// per-model frequency plans a MultiPlan governor needs.
func taskPlans(env *Env, p *hw.Platform, tasks []sim.Task) (map[string]*governor.FrequencyPlan, error) {
	plans := map[string]*governor.FrequencyPlan{}
	for _, t := range tasks {
		if _, ok := plans[t.Graph.Name]; ok {
			continue
		}
		a, err := env.analysis(p.Name, t.Graph.Name)
		if err != nil {
			return nil, err
		}
		plans[t.Graph.Name] = a.Plan
	}
	return plans, nil
}

// resilienceControllers builds the policy lineup: the guarded PowerLens
// deployment (the resilient runtime under test), raw PowerLens, and the
// reactive baselines.
func resilienceControllers(env *Env, p *hw.Platform, tasks []sim.Task) ([]func() sim.Controller, error) {
	plans, err := taskPlans(env, p, tasks)
	if err != nil {
		return nil, err
	}
	return []func() sim.Controller{
		func() sim.Controller { return governor.NewGuard(governor.NewMultiPlan(plans)) },
		func() sim.Controller { return governor.NewMultiPlan(plans) },
		func() sim.Controller { return governor.NewFPGG() },
		func() sim.Controller { return governor.NewFPGCG() },
		func() sim.Controller { return governor.NewOndemand() },
	}, nil
}

// Resilience runs the single-node scenario for one platform: an identical
// task flow per policy, fault-free versus the given fault schedule.
func Resilience(env *Env, p *hw.Platform, numTasks int, seed int64) ([]ResilienceRow, error) {
	return ResilienceObserved(env, p, numTasks, seed, nil)
}

// ResilienceObserved is Resilience with an optional observability sink: when
// o is non-nil, every policy's faulted run streams its metrics and spans into
// it, each policy on its own trace track (tid = lineup index + 1). A nil o
// reproduces the bare scenario bit for bit.
func ResilienceObserved(env *Env, p *hw.Platform, numTasks int, seed int64, o *obs.Observer) ([]ResilienceRow, error) {
	tasks := RandomTasks(numTasks, seed)
	factories, err := resilienceControllers(env, p, tasks)
	if err != nil {
		return nil, err
	}
	cfg := DefaultFaultSchedule(seed)

	var rows []ResilienceRow
	for i, mk := range factories {
		clean := sim.NewExecutor(p, mk()).RunTaskFlow(tasks, TaskGap)

		ctl := mk()
		e := sim.NewExecutor(p, ctl)
		e.Faults = hw.NewInjector(cfg)
		if o != nil {
			eo := o.ForTrack(i + 1)
			e.Obs = eo
			if g, ok := ctl.(*governor.Guard); ok {
				g.Obs = eo
			}
		}
		faulty := e.RunTaskFlow(tasks, TaskGap)

		row := ResilienceRow{
			Method:    ctl.Name(),
			CleanEE:   clean.EE(),
			FaultEE:   faulty.EE(),
			CleanTime: clean.Time,
			FaultTime: faulty.Time,
			Faults:    faulty.Faults,
		}
		if g, ok := ctl.(*governor.Guard); ok {
			stats := g.Stats
			row.Guard = &stats
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ClusterResilienceRow compares one policy's fault-free and degraded
// cluster runs over the same job trace.
type ClusterResilienceRow struct {
	Method string
	Clean  cloud.Result
	Faulty cloud.Result
}

// DeltaEE returns the relative cluster EE change under faults.
func (r ClusterResilienceRow) DeltaEE() float64 {
	if ee := r.Clean.EE(); ee > 0 {
		return r.Faulty.EE()/ee - 1
	}
	return 0
}

// ClusterResilience runs the fleet scenario: the same Poisson job trace on
// the same rack, fault-free versus a schedule that additionally crashes
// nodes mid-trace and forces failover.
func ClusterResilience(env *Env, p *hw.Platform, nodes, numJobs int, seed int64) ([]ClusterResilienceRow, error) {
	return ClusterResilienceObserved(env, p, nodes, numJobs, seed, nil)
}

// ClusterResilienceObserved is ClusterResilience with an optional
// observability sink. Only the guarded deployment (the resilient runtime
// under test, lineup index 0) streams into it — cluster traces use per-node
// track IDs, which would collide if every policy's fleet shared the sink.
func ClusterResilienceObserved(env *Env, p *hw.Platform, nodes, numJobs int, seed int64, o *obs.Observer) ([]ClusterResilienceRow, error) {
	jobs := cloud.RandomJobs(numJobs, 300*time.Millisecond, seed)
	tasks := make([]sim.Task, len(jobs))
	for i, j := range jobs {
		tasks[i] = sim.Task{Graph: j.Graph, Images: j.Images}
	}
	factories, err := resilienceControllers(env, p, tasks)
	if err != nil {
		return nil, err
	}
	cfg := DefaultFaultSchedule(seed)

	var rows []ClusterResilienceRow
	for i, mk := range factories {
		clean, err := cloud.Run(cloud.Config{Nodes: nodes, Platform: p, NewCtl: mk}, jobs)
		if err != nil {
			return nil, err
		}
		fcfg := cloud.Config{Nodes: nodes, Platform: p, NewCtl: mk, Faults: cfg}
		if i == 0 {
			fcfg.Obs = o
		}
		faulty, err := cloud.Run(fcfg, jobs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ClusterResilienceRow{Method: mk().Name(), Clean: clean, Faulty: faulty})
	}
	return rows, nil
}

// RenderResilience formats the single-node comparison with per-policy
// fault and recovery counters.
func RenderResilience(platform string, numTasks int, rows []ResilienceRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Resilience: %d-task flow on %s, fault-free vs injected faults (identical schedule per policy)\n",
		numTasks, platform)
	fmt.Fprintf(&sb, "%-18s %10s %10s %8s %6s %6s %6s %6s %6s %6s\n",
		"method", "clean EE", "fault EE", "ΔEE", "stuck", "clamp", "late", "retry", "wdog", "drop")
	for _, r := range rows {
		f := r.Faults
		fmt.Fprintf(&sb, "%-18s %10.4f %10.4f %+7.2f%% %6d %6d %6d %6d %6d %6d\n",
			r.Method, r.CleanEE, r.FaultEE, r.DeltaEE()*100,
			f.StuckTransitions, f.ClampedTransitions, f.DelayedTransitions,
			f.ActuationRetries, f.WatchdogReasserts, f.SensorDropouts)
	}
	for _, r := range rows {
		if r.Guard == nil {
			continue
		}
		g := r.Guard
		fmt.Fprintf(&sb, "  %s guard: invalid=%d nan=%d osc=%d fallbacks=%d fallback-windows=%d recoveries=%d\n",
			r.Method, g.InvalidLevels, g.NaNWindows, g.Oscillations,
			g.FallbackActivations, g.FallbackWindows, g.Recoveries)
	}
	return sb.String()
}

// RenderClusterResilience formats the fleet comparison with failover
// accounting.
func RenderClusterResilience(platform string, nodes, numJobs int, rows []ClusterResilienceRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Cluster resilience: %d jobs on %d %s nodes, fault-free vs node-crash schedule\n",
		numJobs, nodes, platform)
	fmt.Fprintf(&sb, "%-18s %10s %10s %8s %6s %6s %6s %8s %10s %12s\n",
		"method", "clean EE", "fault EE", "ΔEE", "lost", "failov", "drop", "lost im", "lost J", "makespan")
	for _, r := range rows {
		f := r.Faulty
		fmt.Fprintf(&sb, "%-18s %10.4f %10.4f %+7.2f%% %6d %6d %6d %8d %10.1f %12v\n",
			r.Method, r.Clean.EE(), f.EE(), r.DeltaEE()*100,
			f.NodesLost, f.Failovers, f.DroppedJobs, f.LostImages, f.LostEnergyJ,
			f.Makespan.Round(time.Millisecond))
	}
	return sb.String()
}
