package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"powerlens/internal/governor"
	"powerlens/internal/hw"
	"powerlens/internal/obs"
	"powerlens/internal/obs/ledger"
	"powerlens/internal/obs/slo"
	"powerlens/internal/sim"
)

// SLO scenario: a guarded MultiPlan deployment runs a task flow with the
// energy-attribution ledger and the SLO burn-rate tracker attached, answering
// the two operations questions the paper's evaluation leaves open — "where
// did the joules go" at (model, power block, DVFS level) granularity, and
// "is the deployment inside its latency/energy objectives" with multi-window
// burn-rate alerting. The collected snapshot is what `cmd/experiments slo`
// exports and what /slo serves live.

// SLOOptions sizes the scenario; zero fields take defaults.
type SLOOptions struct {
	Tasks int   // task-flow length (default 24)
	Seed  int64 // master seed (default 1)
	// ViolationTarget is the allowed QoS-violation fraction (default 0.1).
	ViolationTarget float64
	// PowerBudgetW is the energy objective's power budget (default 10 W,
	// board-scale for the simulated Jetsons; negative disables the energy
	// objective).
	PowerBudgetW float64
	// Obs, when non-nil, is the observer the scenario streams into (see
	// ObserveOptions.Obs). Nil gets a fresh private observer.
	Obs *obs.Observer
	// Tracker, when non-nil, is the SLO tracker the scenario feeds — callers
	// that mount /slo on a live telemetry server pass theirs so the endpoint
	// sees the run as it happens. Nil gets a private tracker built from
	// ViolationTarget/PowerBudgetW.
	Tracker *slo.Tracker
}

func (o SLOOptions) withDefaults() SLOOptions {
	if o.Tasks <= 0 {
		o.Tasks = 24
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ViolationTarget <= 0 {
		o.ViolationTarget = 0.1
	}
	if o.PowerBudgetW == 0 {
		o.PowerBudgetW = 10
	} else if o.PowerBudgetW < 0 {
		o.PowerBudgetW = 0
	}
	return o
}

// TrackerConfig is the slo.Config the scenario's options describe; exported
// so callers that pre-build the tracker (to mount on a server) configure it
// identically.
func (o SLOOptions) TrackerConfig() slo.Config {
	o = o.withDefaults()
	return slo.Config{ViolationTarget: o.ViolationTarget, PowerBudgetW: o.PowerBudgetW}
}

// SLOData is the scenario outcome: the flow result plus the attribution and
// SLO snapshots.
type SLOData struct {
	Platform string
	Opt      SLOOptions

	Flow   sim.Result          // the guarded flow, with per-level decomposition
	Guard  governor.GuardStats // the guard's interventions
	Ledger ledger.Snapshot     // attribution cells + per-model latency sketches
	Status slo.Status          // objectives, burn rates, alert state

	Obs     *obs.Observer // the live sinks, for callers that export directly
	Metrics []obs.FamilySnapshot
	Events  []obs.Event
}

// SLO runs the attributed scenario for one platform.
func SLO(env *Env, p *hw.Platform, opt SLOOptions) (*SLOData, error) {
	opt = opt.withDefaults()
	o := opt.Obs
	if o == nil {
		o = obs.New()
	}
	tracker := opt.Tracker
	if tracker == nil {
		tracker = slo.New(opt.TrackerConfig())
	}

	tasks := RandomTasks(opt.Tasks, opt.Seed)
	plans, err := taskPlans(env, p, tasks)
	if err != nil {
		return nil, err
	}

	guard := governor.NewGuard(governor.NewMultiPlan(plans))
	guard.Obs = o
	led := ledger.New()
	e := sim.NewExecutor(p, guard)
	e.Obs = o
	e.Ledger = led
	e.SLO = tracker
	e.TrackLevels = true
	flow := e.RunTaskFlow(tasks, TaskGap)

	// Publish the attribution into the metrics registry (new families:
	// ledger_* counters plus the per-model latency summary sketch) and the
	// SLO headline as gauges, so Prometheus exports and /metrics carry them.
	led.ExportTo(o.Metrics)
	head := tracker.HeadlineMetrics()
	names := make([]string, 0, len(head))
	for k := range head {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		o.Metrics.Gauge(k, "SLO tracker headline: "+k+".").Set(head[k])
	}

	return &SLOData{
		Platform: p.Name,
		Opt:      opt,
		Flow:     flow,
		Guard:    guard.Stats,
		Ledger:   led.Snapshot(),
		Status:   tracker.Snapshot(),
		Obs:      o,
		Metrics:  o.Metrics.Snapshot(),
		Events:   o.Tracer.Events(),
	}, nil
}

// RenderSLO formats the scenario outcome: flow summary, per-model SLO table
// with burn rates, the per-level energy breakdown, and the ledger's shape.
func RenderSLO(d *SLOData) string {
	var sb strings.Builder
	o := d.Opt
	budget := "off"
	if o.PowerBudgetW > 0 {
		budget = fmt.Sprintf("%.0f W", o.PowerBudgetW)
	}
	fmt.Fprintf(&sb, "SLO: guarded %d-task flow on %s (seed %d) — violation target %.0f%%, power budget %s\n",
		o.Tasks, d.Platform, o.Seed, o.ViolationTarget*100, budget)
	fmt.Fprintf(&sb, "  flow: EE %.4f img/J, energy %.1f J, time %v, passes %d, QoS violations %d (%.1f%%)\n",
		d.Flow.EE(), d.Flow.EnergyJ, d.Flow.Time.Round(time.Millisecond),
		d.Flow.Passes, d.Flow.QoSViolations, d.Flow.QoSViolationRate()*100)
	alert := "within objectives"
	if d.Status.Alerting {
		alert = "ALERTING"
	}
	fmt.Fprintf(&sb, "  slo:  %d models tracked, %s\n\n", len(d.Status.Models), alert)

	fmt.Fprintf(&sb, "  %-15s %7s %7s %9s %9s %12s %7s\n",
		"model", "passes", "viol%", "p50 ms", "p99 ms", "max burn L/S", "alert")
	for _, m := range d.Status.Models {
		var maxLong, maxShort float64
		alerting := false
		for _, ob := range m.Objectives {
			for _, w := range ob.Windows {
				if w.LongBurn > maxLong {
					maxLong = w.LongBurn
				}
				if w.ShortBurn > maxShort {
					maxShort = w.ShortBurn
				}
				alerting = alerting || w.Alerting
			}
		}
		fmt.Fprintf(&sb, "  %-15s %7d %6.1f%% %9.2f %9.2f %6.2f/%-5.2f %7v\n",
			m.Model, m.Passes, m.ViolationRate*100,
			m.LatencyP50S*1e3, m.LatencyP99S*1e3, maxLong, maxShort, alerting)
	}

	sb.WriteString("\n  energy by DVFS level:\n")
	for lvl, ej := range d.Flow.LevelEnergyJ {
		if ej <= 0 {
			continue
		}
		share := 0.0
		if d.Flow.EnergyJ > 0 {
			share = ej / d.Flow.EnergyJ
		}
		fmt.Fprintf(&sb, "    L%02d: %7.1f J  (%5.1f%%)  busy %v\n",
			lvl, ej, share*100, d.Flow.LevelTime[lvl].Round(time.Millisecond))
	}
	fmt.Fprintf(&sb, "\n  ledger: %d cells across %d models\n", len(d.Ledger.Cells), len(d.Ledger.Models))
	return sb.String()
}
