package governor

import (
	"math/rand"

	"powerlens/internal/graph"
	"powerlens/internal/hw"
	"powerlens/internal/sim"
)

// ZTT is a zTT-style learning-based DVFS governor (Kim et al. [6] in the
// paper's related work): an online Q-learning agent whose state is the
// current (frequency level, utilization bucket) pair and whose actions move
// one ladder step. The reward prefers meeting a throughput target at
// minimal power — "quality of service" in zTT's terms. Like the other
// reactive baselines it learns from historical windows, so it shares their
// lag; unlike the fixed heuristics it eventually adapts its policy to the
// workload.
//
// It is an *extra* baseline beyond the paper's three (the paper cites zTT
// as related work but does not benchmark it); BenchmarkZTT and the governor
// tests characterize it against the others.
type ZTT struct {
	// Epsilon is the exploration rate; Alpha the learning rate; Gamma the
	// discount factor.
	Epsilon, Alpha, Gamma float64
	// TargetPerf is the fraction of the platform's peak windowed throughput
	// the agent treats as QoS-satisfying (default 0.6).
	TargetPerf float64
	// PowerWeight scales the power penalty in the reward (default 0.1/W).
	PowerWeight float64
	// Seed drives exploration.
	Seed int64

	platform *hw.Platform
	rng      *rand.Rand
	level    int

	// Q[state][action]: state = level*utilBuckets + utilBucket,
	// action ∈ {down, stay, up}.
	q          [][]float64
	prevState  int
	prevAction int
	havePrev   bool
}

const zttUtilBuckets = 4

// NewZTT returns a zTT-style governor with default hyperparameters.
func NewZTT(seed int64) *ZTT {
	return &ZTT{
		Epsilon: 0.10, Alpha: 0.30, Gamma: 0.60,
		TargetPerf: 0.6, PowerWeight: 0.1, Seed: seed,
	}
}

func (z *ZTT) Name() string { return "zTT" }

// Reset implements sim.Controller.
func (z *ZTT) Reset(p *hw.Platform) {
	z.platform = p
	z.rng = rand.New(rand.NewSource(z.Seed))
	z.level = p.NumGPULevels() / 2
	states := p.NumGPULevels() * zttUtilBuckets
	z.q = make([][]float64, states)
	for i := range z.q {
		z.q[i] = make([]float64, 3)
	}
	z.havePrev = false
}

// GPULevel implements sim.Controller.
func (z *ZTT) GPULevel() int { return z.level }

// CPULevel implements sim.Controller.
func (z *ZTT) CPULevel() int { return len(z.platform.CPUFreqsHz) - 1 }

// BeforeLayer implements sim.Controller.
func (z *ZTT) BeforeLayer(*graph.Graph, int) {}

// OnWindow implements sim.Controller: one Q-learning step per window.
func (z *ZTT) OnWindow(s sim.WindowStats) {
	p := z.platform
	state := z.stateOf(s)

	// Reward of the PREVIOUS action, observed in this window: QoS bonus for
	// meeting the throughput target minus a power penalty.
	if z.havePrev {
		perf := s.GPUBusy * p.GPUFreqsHz[z.level] / p.MaxGPUFreq()
		reward := -z.PowerWeight * s.AvgPowerW
		if perf >= z.TargetPerf {
			reward += 1
		}
		bestNext := maxOf(z.q[state])
		old := z.q[z.prevState][z.prevAction]
		z.q[z.prevState][z.prevAction] = old + z.Alpha*(reward+z.Gamma*bestNext-old)
	}

	// ε-greedy action selection for the next window.
	action := z.bestAction(state)
	if z.rng.Float64() < z.Epsilon {
		action = z.rng.Intn(3)
	}
	z.prevState, z.prevAction, z.havePrev = state, action, true
	z.level = p.ClampGPULevel(z.level + action - 1) // {0,1,2} → {-1,0,+1}
}

func (z *ZTT) stateOf(s sim.WindowStats) int {
	b := int(s.GPUBusy * zttUtilBuckets)
	if b >= zttUtilBuckets {
		b = zttUtilBuckets - 1
	}
	if b < 0 {
		b = 0
	}
	return z.level*zttUtilBuckets + b
}

func (z *ZTT) bestAction(state int) int {
	best := 0
	row := z.q[state]
	for a := 1; a < len(row); a++ {
		if row[a] > row[best] {
			best = a
		}
	}
	return best
}

func maxOf(v []float64) float64 {
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

var _ sim.Controller = (*ZTT)(nil)
