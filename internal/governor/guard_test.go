package governor

import (
	"math"
	"testing"

	"powerlens/internal/graph"
	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/sim"
)

// brokenCtl misbehaves in configurable ways: out-of-range levels, wide
// ping-pong, or healing after a number of windows.
type brokenCtl struct {
	platform *hw.Platform
	windows  int

	outOfRange bool
	pingPong   bool
	healAfter  int // windows after which it starts behaving (0 = never)
}

func (b *brokenCtl) Name() string { return "broken" }
func (b *brokenCtl) Reset(p *hw.Platform) {
	b.platform = p
	b.windows = 0
}
func (b *brokenCtl) healed() bool { return b.healAfter > 0 && b.windows >= b.healAfter }
func (b *brokenCtl) GPULevel() int {
	if b.healed() {
		return b.platform.NumGPULevels() / 2
	}
	if b.outOfRange {
		return b.platform.NumGPULevels() + 50
	}
	if b.pingPong {
		if b.windows%2 == 0 {
			return 0
		}
		return b.platform.NumGPULevels() - 1
	}
	return b.platform.NumGPULevels() / 2
}
func (b *brokenCtl) CPULevel() int                 { return len(b.platform.CPUFreqsHz) - 1 }
func (b *brokenCtl) BeforeLayer(*graph.Graph, int) {}
func (b *brokenCtl) OnWindow(sim.WindowStats)      { b.windows++ }

func TestGuardPassesThroughHealthyPolicy(t *testing.T) {
	p := hw.TX2()
	g := models.AlexNet()
	inner := NewStatic(7)
	guard := NewGuard(inner)
	r := sim.NewExecutor(p, guard).RunTask(g, 30)
	base := sim.NewExecutor(p, NewStatic(7)).RunTask(g, 30)
	if r.EnergyJ != base.EnergyJ || r.Time != base.Time {
		t.Fatalf("guard changed a healthy policy's run: %+v vs %+v", r, base)
	}
	if guard.Stats.FallbackActivations != 0 || guard.Stats.InvalidLevels != 0 {
		t.Fatalf("guard intervened on a healthy policy: %+v", guard.Stats)
	}
	if guard.Name() != "guard(static)" {
		t.Fatalf("name = %q", guard.Name())
	}
}

func TestGuardFallsBackOnInvalidLevels(t *testing.T) {
	p := hw.TX2()
	g := models.AlexNet()
	guard := NewGuard(&brokenCtl{outOfRange: true})
	r := sim.NewExecutor(p, guard).RunTask(g, 30)
	if r.EnergyJ <= 0 {
		t.Fatalf("run did not complete: %+v", r)
	}
	if guard.Stats.InvalidLevels == 0 {
		t.Fatal("invalid levels not counted")
	}
	if guard.Stats.FallbackActivations == 0 {
		t.Fatalf("guard never failed over: %+v", guard.Stats)
	}
	if !guard.OnFallback() {
		t.Fatal("permanently broken policy must leave the guard on fallback")
	}
	if guard.Stats.FallbackWindows == 0 {
		t.Fatal("no fallback windows counted")
	}
}

func TestGuardDetectsOscillation(t *testing.T) {
	p := hw.TX2()
	g := models.AlexNet()
	guard := NewGuard(&brokenCtl{pingPong: true})
	sim.NewExecutor(p, guard).RunTask(g, 60)
	if guard.Stats.Oscillations == 0 {
		t.Fatalf("ping-pong not detected: %+v", guard.Stats)
	}
	if guard.Stats.FallbackActivations == 0 {
		t.Fatalf("oscillating policy never tripped failover: %+v", guard.Stats)
	}
}

func TestGuardRecoversWhenPolicyHeals(t *testing.T) {
	p := hw.TX2()
	g := models.AlexNet()
	inner := &brokenCtl{outOfRange: true, healAfter: 12}
	guard := NewGuard(inner)
	guard.RecoveryWindows = 4
	sim.NewExecutor(p, guard).RunTask(g, 200)
	if guard.Stats.FallbackActivations == 0 {
		t.Fatalf("never failed over: %+v", guard.Stats)
	}
	if guard.Stats.Recoveries == 0 {
		t.Fatalf("never recovered the healed policy: %+v", guard.Stats)
	}
	if guard.OnFallback() {
		t.Fatal("guard should end the run back on the healed policy")
	}
}

func TestGuardSanitizesNaNWindows(t *testing.T) {
	p := hw.TX2()
	guard := NewGuard(NewOndemand())
	guard.Reset(p)
	clean := sim.WindowStats{GPUBusy: 0.5, AvgPowerW: 4}
	guard.OnWindow(clean)
	guard.OnWindow(sim.WindowStats{GPUBusy: math.NaN(), AvgPowerW: math.Inf(1)})
	if guard.Stats.NaNWindows != 1 {
		t.Fatalf("NaN window not sanitized: %+v", guard.Stats)
	}
	if lvl := guard.GPULevel(); lvl < 0 || lvl >= p.NumGPULevels() {
		t.Fatalf("guard emitted invalid level %d after NaN window", lvl)
	}
	// NaN input is the sensor's fault, not the policy's: no failover.
	if guard.OnFallback() {
		t.Fatal("NaN inputs alone must not trip the failover")
	}
}

func TestGuardUnderFaultScheduleTracksCleanRun(t *testing.T) {
	// The acceptance bound: a guard-wrapped PowerLens-style preset policy
	// under a nonzero fault schedule stays within 10% of its fault-free EE.
	p := hw.TX2()
	g := models.AlexNet()
	lvl, _ := sim.OptimalSegmentLevel(p, g, 0, len(g.Layers)-1)
	plan := &FrequencyPlan{Model: g.Name, Points: map[int]int{0: lvl}}
	clean := sim.NewExecutor(p, NewGuard(NewPowerLens(plan))).RunTask(g, 50)

	e := sim.NewExecutor(p, NewGuard(NewPowerLens(plan)))
	e.Faults = hw.NewInjector(hw.FaultConfig{
		Seed:              17,
		SensorDropoutProb: 0.10, SensorNoiseFrac: 0.15,
		StuckProb: 0.15, ClampProb: 0.05,
		DelayProb: 0.25, DelayLatency: 2e6,
	})
	faulty := e.RunTask(g, 50)
	ratio := faulty.EE() / clean.EE()
	if ratio < 0.90 || ratio > 1.10 {
		t.Fatalf("guarded EE ratio %.3f outside ±10%% (clean %.4f faulty %.4f, faults %+v)",
			ratio, clean.EE(), faulty.EE(), faulty.Faults)
	}
}

func TestGuardStatsAdd(t *testing.T) {
	a := GuardStats{InvalidLevels: 1, Oscillations: 2, FallbackWindows: 3}
	a.Add(GuardStats{NaNWindows: 4, FallbackActivations: 5, Recoveries: 6, InvalidLevels: 7})
	want := GuardStats{InvalidLevels: 8, NaNWindows: 4, Oscillations: 2,
		FallbackActivations: 5, FallbackWindows: 3, Recoveries: 6}
	if a != want {
		t.Fatalf("Add = %+v, want %+v", a, want)
	}
}
