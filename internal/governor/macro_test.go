package governor

import (
	"reflect"
	"testing"
	"time"

	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/sim"
)

// TestMacroPlanDigestStability pins the plan-digest contract: equal compiled
// schedules digest equal (across controller kinds and rebuilt plan objects),
// different schedules digest different, and uncovered graphs share the
// no-plan sentinel.
func TestMacroPlanDigestStability(t *testing.T) {
	p := hw.TX2()
	g := models.AlexNet()
	mid := len(g.Layers) / 2
	planA := &FrequencyPlan{Model: g.Name, Points: map[int]int{0: 2, mid: 6}}
	planA2 := &FrequencyPlan{Model: g.Name, Points: map[int]int{0: 2, mid: 6}}
	planB := &FrequencyPlan{Model: g.Name, Points: map[int]int{0: 3, mid: 6}}

	digest := func(ctl sim.MacroSteppable) uint64 {
		d, ok := ctl.MacroPlanDigest(g)
		if !ok {
			t.Fatal("nominal plan controller demoted")
		}
		return d
	}

	pa := NewPowerLens(planA)
	pa.Reset(p)
	pa2 := NewPowerLens(planA2)
	pa2.Reset(p)
	pb := NewPowerLens(planB)
	pb.Reset(p)
	mp := NewMultiPlan(map[string]*FrequencyPlan{g.Name: planA})
	mp.Reset(p)

	da := digest(pa)
	if d := digest(pa2); d != da {
		t.Fatalf("rebuilt identical plan digests differ: %016x vs %016x", da, d)
	}
	if d := digest(mp); d != da {
		t.Fatalf("MultiPlan digest differs from PowerLens for the same plan: %016x vs %016x", da, d)
	}
	if d := digest(pb); d == da {
		t.Fatalf("different schedules share digest %016x", d)
	}

	// A graph the plan does not cover applies no level changes: every plan
	// controller reports the shared no-plan sentinel for it.
	other := models.MustBuild("mobilenet_v3")
	dOther, ok := pa.MacroPlanDigest(other)
	if !ok {
		t.Fatal("uncovered graph demoted")
	}
	dOther2, _ := pb.MacroPlanDigest(other)
	if dOther != dOther2 || dOther == da {
		t.Fatalf("no-plan sentinel broken: %016x / %016x (plan %016x)", dOther, dOther2, da)
	}
}

// TestGuardMacroDemotions pins the guard's demotion rules: fallback episodes,
// non-macro-steppable inner policies, and stateful (plan) fallbacks must all
// force micro-stepping; the nominal case delegates to the inner digest.
func TestGuardMacroDemotions(t *testing.T) {
	p := hw.TX2()
	g := models.AlexNet()
	plan := &FrequencyPlan{Model: g.Name, Points: map[int]int{0: 4}}

	gd := NewGuard(NewPowerLens(plan))
	gd.Reset(p)
	want, ok := gd.Inner.(sim.MacroSteppable).MacroPlanDigest(g)
	if !ok {
		t.Fatal("inner demoted")
	}
	if d, ok := gd.MacroPlanDigest(g); !ok || d != want {
		t.Fatalf("nominal guard: got (%016x, %v), want (%016x, true)", d, ok, want)
	}

	gd.fallback = true
	if _, ok := gd.MacroPlanDigest(g); ok {
		t.Fatal("guard on fallback did not demote")
	}
	gd.fallback = false

	reactive := NewGuard(NewOndemand())
	reactive.Reset(p)
	if _, ok := reactive.MacroPlanDigest(g); ok {
		t.Fatal("guard over a reactive policy did not demote")
	}

	statefulFB := NewGuard(NewPowerLens(plan))
	statefulFB.Fallback = NewPowerLens(plan)
	statefulFB.Reset(p)
	if _, ok := statefulFB.MacroPlanDigest(g); ok {
		t.Fatal("guard with a plan-controller fallback did not demote")
	}
}

// TestGuardMacroRunMatchesMicro runs a guarded MultiPlan flow under
// macro-stepping (windowed mode: passes fast-forward only when they fit
// inside the current window) and requires bit-identity with the micro oracle.
func TestGuardMacroRunMatchesMicro(t *testing.T) {
	p := hw.TX2()
	ga, gb := models.AlexNet(), models.MustBuild("mobilenet_v3")
	midA, midB := len(ga.Layers)/2, len(gb.Layers)/2
	newCtl := func() sim.Controller {
		return NewGuard(NewMultiPlan(map[string]*FrequencyPlan{
			ga.Name: {Model: ga.Name, Points: map[int]int{0: 2, midA: 6}},
			gb.Name: {Model: gb.Name, Points: map[int]int{0: 5, midB: 3}},
		}))
	}
	tasks := []sim.Task{
		{Graph: ga, Images: 6},
		{Graph: gb, Images: 5},
		{Graph: ga, Images: 4},
	}
	gaps := []time.Duration{35 * time.Millisecond, 90 * time.Millisecond}

	micro := sim.NewExecutor(p, newCtl())
	micro.SensorPeriod = 0
	micro.WindowPeriod = 300 * time.Millisecond
	want := micro.RunTaskFlowArrivals(tasks, gaps)

	macro := sim.NewExecutor(p, newCtl())
	macro.SensorPeriod = 0
	macro.WindowPeriod = 300 * time.Millisecond
	cache := sim.NewSummaryCache()
	macro.Summaries = cache
	got := macro.RunTaskFlowArrivals(tasks, gaps)

	if !reflect.DeepEqual(want, got) {
		t.Fatalf("guarded macro flow differs:\nmicro %+v\nmacro %+v", want, got)
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Fatalf("guarded flow never fast-forwarded: %+v", st)
	}
}

// TestPowerLensMacroRunTaskZeroAlloc extends the serving fast-path guarantee
// to macro-stepping: a warm executor fast-forwarding whole PowerLens tasks
// must stay allocation-free.
func TestPowerLensMacroRunTaskZeroAlloc(t *testing.T) {
	p := hw.TX2()
	g := models.AlexNet()
	mid := len(g.Layers) / 2
	plan := &FrequencyPlan{Model: g.Name, Points: map[int]int{0: 2, mid: 6}}
	e := sim.NewExecutor(p, NewPowerLens(plan))
	e.SensorPeriod = 0
	e.Summaries = sim.NewSummaryCache()
	e.RunTask(g, 4)

	allocs := testing.AllocsPerRun(10, func() { e.RunTask(g, 4) })
	if allocs != 0 {
		t.Fatalf("warm macro PowerLens RunTask allocated %.0f times per run, want 0", allocs)
	}
}
