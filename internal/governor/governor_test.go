package governor

import (
	"testing"
	"time"

	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/sim"
)

func TestStaticStaysPut(t *testing.T) {
	p := hw.TX2()
	s := NewStatic(4)
	r := sim.NewExecutor(p, s).RunTask(models.AlexNet(), 5)
	if r.Switches != 0 {
		t.Fatalf("static switched %d times", r.Switches)
	}
	for _, smp := range r.Samples {
		if smp.FreqHz != p.GPUFreqsHz[4] {
			t.Fatalf("freq drifted to %g", smp.FreqHz)
		}
	}
	if s.CPULevel() != len(p.CPUFreqsHz)-1 {
		t.Fatal("static CPU level must be top")
	}
}

func TestOndemandPegsMaxUnderLoad(t *testing.T) {
	p := hw.TX2()
	e := sim.NewExecutor(p, NewOndemand())
	r := e.RunTask(models.ResNet152(), 10)
	// After the first window, a busy GPU must sit at fmax.
	var atMax, total int
	for i, s := range r.Samples {
		if i < 10 { // skip boot windows
			continue
		}
		total++
		if s.FreqHz == p.MaxGPUFreq() {
			atMax++
		}
	}
	if total == 0 || float64(atMax)/float64(total) < 0.8 {
		t.Fatalf("ondemand at fmax only %d/%d samples under load", atMax, total)
	}
}

func TestOndemandScalesDownWhenIdle(t *testing.T) {
	p := hw.TX2()
	e := sim.NewExecutor(p, NewOndemand())
	g := models.AlexNet()
	// Long idle gap between two tasks: the governor must fall down the
	// ladder during the gap.
	r := e.RunTaskFlow([]sim.Task{{Graph: g, Images: 3}, {Graph: g, Images: 3}}, 2*time.Second)
	sawLow := false
	for _, s := range r.Samples {
		if s.FreqHz <= p.GPUFreqsHz[1] {
			sawLow = true
			break
		}
	}
	if !sawLow {
		t.Fatal("ondemand never scaled down during a 2s idle gap")
	}
}

// Fig. 1A lag: a reactive governor starts a task at whatever frequency its
// history left it and only responds after a sampling window has elapsed, so
// a cold start runs its first window below fmax even though the workload is
// compute-hungry from the first kernel.
func TestOndemandLagAfterIdle(t *testing.T) {
	p := hw.TX2()
	e := sim.NewExecutor(p, NewOndemand())
	e.SensorPeriod = time.Millisecond
	r := e.RunTask(models.ResNet152(), 5)
	if len(r.Samples) < 100 {
		t.Fatalf("trace too short: %d samples", len(r.Samples))
	}
	// Samples inside the first governor window (50 ms): still at the boot
	// level, strictly below fmax — the response lag.
	for _, s := range r.Samples[:20] {
		if s.FreqHz >= p.MaxGPUFreq() {
			t.Fatalf("no lag: governor at fmax %v after start", s.At)
		}
	}
	// Later the governor must have reacted and reached fmax.
	reached := false
	for _, s := range r.Samples[60:] {
		if s.FreqHz == p.MaxGPUFreq() {
			reached = true
			break
		}
	}
	if !reached {
		t.Fatal("governor never ramped to fmax under sustained load")
	}
}

func TestFPGGSettlesBelowMax(t *testing.T) {
	p := hw.AGX()
	e := sim.NewExecutor(p, NewFPGG())
	r := e.RunTask(models.ResNet152(), 30)
	// FPG-G hill-climbs toward the EDP-optimal region: over the steady
	// state it must spend most samples strictly below fmax.
	below, total := 0, 0
	for i, s := range r.Samples {
		if i < len(r.Samples)/3 {
			continue // settling phase
		}
		total++
		if s.FreqHz < p.MaxGPUFreq() {
			below++
		}
	}
	if total == 0 || float64(below)/float64(total) < 0.6 {
		t.Fatalf("FPG-G below fmax only %d/%d steady-state samples", below, total)
	}
}

func TestFPGGDithers(t *testing.T) {
	// The ping-pong critique: a hill-climbing reactive governor keeps
	// switching in steady state.
	p := hw.TX2()
	e := sim.NewExecutor(p, NewFPGG())
	r := e.RunTask(models.ResNet152(), 30)
	if r.Switches < 5 {
		t.Fatalf("FPG-G switched only %d times; expected steady dithering", r.Switches)
	}
}

func TestFPGCGAdjustsCPU(t *testing.T) {
	p := hw.TX2()
	ctl := NewFPGCG()
	e := sim.NewExecutor(p, ctl)
	e.RunTask(models.ResNet152(), 20)
	// Host busy fraction is low during GPU-heavy inference, so FPG-C+G must
	// have lowered the CPU from the top level.
	if ctl.CPULevel() >= len(p.CPUFreqsHz)-1 {
		t.Fatalf("FPG-C+G CPU level = %d, expected scaled down", ctl.CPULevel())
	}
}

func TestFPGCGBeatsFPGGOnEnergy(t *testing.T) {
	p := hw.TX2()
	g := models.ResNet152()
	rg := sim.NewExecutor(p, NewFPGG()).RunTask(g, 20)
	rcg := sim.NewExecutor(p, NewFPGCG()).RunTask(g, 20)
	if rcg.EnergyJ >= rg.EnergyJ {
		t.Fatalf("FPG-C+G energy %.1f J must beat FPG-G %.1f J (CPU scaling)", rcg.EnergyJ, rg.EnergyJ)
	}
}

func TestPowerLensAppliesPlan(t *testing.T) {
	p := hw.TX2()
	g := models.ResNet34()
	plan := &FrequencyPlan{Model: g.Name, Points: map[int]int{0: 3, len(g.Layers) / 2: 10}}
	ctl := NewPowerLens(plan)
	r := sim.NewExecutor(p, ctl).RunTask(g, 2)
	if r.Switches < 2 {
		t.Fatalf("plan with 2 points over 2 images switched %d times", r.Switches)
	}
	saw3, saw10 := false, false
	for _, s := range r.Samples {
		if s.FreqHz == p.GPUFreqsHz[3] {
			saw3 = true
		}
		if s.FreqHz == p.GPUFreqsHz[10] {
			saw10 = true
		}
	}
	if !saw3 || !saw10 {
		t.Fatalf("plan levels not observed in trace: l3=%v l10=%v", saw3, saw10)
	}
	if plan.NumPoints() != 2 {
		t.Fatal("NumPoints wrong")
	}
}

func TestPowerLensIgnoresOtherModels(t *testing.T) {
	p := hw.TX2()
	g := models.AlexNet()
	plan := &FrequencyPlan{Model: "someothermodel", Points: map[int]int{0: 0}}
	ctl := NewPowerLens(plan)
	r := sim.NewExecutor(p, ctl).RunTask(g, 2)
	if r.Switches != 0 {
		t.Fatal("plan for another model must not trigger switches")
	}
}

func TestPowerLensNoPingPong(t *testing.T) {
	// With a 2-block plan, per-image switches are exactly 2 (block entry
	// points), independent of workload dynamics — no ping-pong.
	p := hw.TX2()
	g := models.ResNet34()
	plan := &FrequencyPlan{Model: g.Name, Points: map[int]int{0: 5, len(g.Layers) / 2: 9}}
	images := 10
	r := sim.NewExecutor(p, NewPowerLens(plan)).RunTask(g, images)
	if r.Switches > 2*images {
		t.Fatalf("switches = %d, want <= %d", r.Switches, 2*images)
	}
}

func TestMultiPlanDispatch(t *testing.T) {
	p := hw.TX2()
	a, b := models.AlexNet(), models.GoogLeNet()
	plans := map[string]*FrequencyPlan{
		a.Name: {Model: a.Name, Points: map[int]int{0: 2}},
		b.Name: {Model: b.Name, Points: map[int]int{0: 11}},
	}
	ctl := NewMultiPlan(plans)
	r := sim.NewExecutor(p, ctl).RunTaskFlow(
		[]sim.Task{{Graph: a, Images: 2}, {Graph: b, Images: 2}}, 0)
	saw2, saw11 := false, false
	for _, s := range r.Samples {
		if s.FreqHz == p.GPUFreqsHz[2] {
			saw2 = true
		}
		if s.FreqHz == p.GPUFreqsHz[11] {
			saw11 = true
		}
	}
	if !saw2 || !saw11 {
		t.Fatalf("multi-plan levels not applied: a=%v b=%v", saw2, saw11)
	}
}

func TestControllerNames(t *testing.T) {
	if NewOndemand().Name() != "BiM" {
		t.Fatal("ondemand must report BiM")
	}
	if NewFPGG().Name() != "FPG-G" || NewFPGCG().Name() != "FPG-CG" {
		t.Fatal("FPG names wrong")
	}
	if NewPowerLens(nil).Name() != "PowerLens" || NewMultiPlan(nil).Name() != "PowerLens" {
		t.Fatal("PowerLens names wrong")
	}
}
