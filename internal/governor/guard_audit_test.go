package governor

import (
	"testing"

	"powerlens/internal/graph"
	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/obs/audit"
	"powerlens/internal/sim"
)

// guardEventCounts folds a snapshot's guard aggregates into a
// (event, reason) → count map for direct assertions.
func guardEventCounts(snap audit.Snapshot) map[[2]string]uint64 {
	out := map[[2]string]uint64{}
	for _, ge := range snap.GuardEvents {
		out[[2]string{ge.Event, ge.Reason}] += ge.Count
	}
	return out
}

// runGuardedWithAudit executes one task under a guard wired to a fresh
// recorder and returns the guard plus the recorder snapshot.
func runGuardedWithAudit(t *testing.T, inner sim.Controller, images int, tune func(*Guard)) (*Guard, audit.Snapshot) {
	t.Helper()
	p := hw.TX2()
	g := models.AlexNet()
	guard := NewGuard(inner)
	if tune != nil {
		tune(guard)
	}
	rec := audit.New(audit.Config{RingSize: 4096})
	e := sim.NewExecutor(p, guard)
	e.Audit = rec
	if r := e.RunTask(g, images); r.EnergyJ <= 0 {
		t.Fatalf("run did not complete: %+v", r)
	}
	return guard, rec.Snapshot()
}

// Satellite: every guard fallback path must stamp its exact reason string
// into the audit trail — "invalid-level" from the level validator here.
func TestGuardAuditInvalidLevelReason(t *testing.T) {
	guard, snap := runGuardedWithAudit(t, &brokenCtl{outOfRange: true}, 30, nil)
	ev := guardEventCounts(snap)

	strikes := ev[[2]string{"strike", "invalid-level"}]
	if int(strikes) != guard.Stats.InvalidLevels {
		t.Fatalf("strike/invalid-level count = %d, Stats.InvalidLevels = %d (events %v)",
			strikes, guard.Stats.InvalidLevels, ev)
	}
	failovers := ev[[2]string{"failover", "invalid-level"}]
	if int(failovers) != guard.Stats.FallbackActivations {
		t.Fatalf("failover/invalid-level count = %d, Stats.FallbackActivations = %d",
			failovers, guard.Stats.FallbackActivations)
	}
	for key := range ev {
		if key[0] == "strike" && key[1] != "invalid-level" {
			t.Fatalf("out-of-range policy produced unexpected strike reason %q", key[1])
		}
	}
}

// Satellite: the oscillation detector's fallback path stamps "oscillation".
func TestGuardAuditOscillationReason(t *testing.T) {
	guard, snap := runGuardedWithAudit(t, &brokenCtl{pingPong: true}, 60, nil)
	ev := guardEventCounts(snap)

	strikes := ev[[2]string{"strike", "oscillation"}]
	if int(strikes) != guard.Stats.Oscillations {
		t.Fatalf("strike/oscillation count = %d, Stats.Oscillations = %d (events %v)",
			strikes, guard.Stats.Oscillations, ev)
	}
	if guard.Stats.FallbackActivations == 0 {
		t.Fatalf("oscillating policy never failed over: %+v", guard.Stats)
	}
	if got := ev[[2]string{"failover", "oscillation"}]; int(got) != guard.Stats.FallbackActivations {
		t.Fatalf("failover/oscillation count = %d, Stats.FallbackActivations = %d",
			got, guard.Stats.FallbackActivations)
	}
}

// Recovery events carry no reason (nothing went wrong) and must match the
// guard's recovery counter; ring records for guard events must carry the
// same exact reasons as the aggregates.
func TestGuardAuditRecoveryAndRingReasons(t *testing.T) {
	guard, snap := runGuardedWithAudit(t, &brokenCtl{outOfRange: true, healAfter: 12}, 200,
		func(g *Guard) { g.RecoveryWindows = 4 })
	ev := guardEventCounts(snap)

	if guard.Stats.Recoveries == 0 {
		t.Fatalf("policy never recovered: %+v", guard.Stats)
	}
	if got := ev[[2]string{"recovery", ""}]; int(got) != guard.Stats.Recoveries {
		t.Fatalf("recovery count = %d, Stats.Recoveries = %d (events %v)",
			got, guard.Stats.Recoveries, ev)
	}

	// Every ringed guard record must use a known event/reason pair and name
	// the wrapped controller.
	valid := map[string]map[string]bool{
		"strike":   {"invalid-level": true, "oscillation": true},
		"failover": {"invalid-level": true, "oscillation": true},
		"recovery": {"": true},
	}
	ringed := 0
	for _, tr := range snap.Tracks {
		for _, r := range tr.Records {
			if r.Kind != "guard" {
				continue
			}
			ringed++
			reasons := valid[r.Source]
			if reasons == nil || !reasons[r.Reason] {
				t.Fatalf("guard record with unexpected event/reason %q/%q", r.Source, r.Reason)
			}
			if r.Model != "broken" {
				t.Fatalf("guard record names inner %q, want %q", r.Model, "broken")
			}
		}
	}
	if ringed == 0 {
		t.Fatal("no guard records reached the ring")
	}
}

// The guard forwards SetAudit to the wrapped policy: a guarded PowerLens
// still records its plan applications, and the apply cells carry the plan's
// digest, block, layer and clamped level.
func TestGuardForwardsAuditToInnerPlan(t *testing.T) {
	p := hw.TX2()
	g := models.AlexNet()
	lvl, _ := sim.OptimalSegmentLevel(p, g, 0, len(g.Layers)-1)
	mid := len(g.Layers) / 2
	plan := &FrequencyPlan{Model: g.Name, Points: map[int]int{0: lvl, mid: lvl}}

	rec := audit.New(audit.Config{})
	e := sim.NewExecutor(p, NewGuard(NewPowerLens(plan)))
	e.Audit = rec
	const images = 25
	e.RunTask(g, images)

	snap := rec.Snapshot()
	if len(snap.Applies) != len(plan.Points) {
		t.Fatalf("apply cells = %d, want one per instrumentation point (%d): %+v",
			len(snap.Applies), len(plan.Points), snap.Applies)
	}
	wantDigest := graph.DigestString(graph.Digest(g))
	for _, a := range snap.Applies {
		if a.Model != g.Name || a.Digest != wantDigest {
			t.Fatalf("apply cell model/digest = %q/%q, want %q/%q", a.Model, a.Digest, g.Name, wantDigest)
		}
		if _, ok := plan.Points[a.Layer]; !ok {
			t.Fatalf("apply cell at layer %d, not an instrumentation point %v", a.Layer, plan.Points)
		}
		if a.Level != p.ClampGPULevel(lvl) {
			t.Fatalf("apply cell level = %d, want %d", a.Level, p.ClampGPULevel(lvl))
		}
		if a.Count != images {
			t.Fatalf("apply cell count = %d, want one per pass (%d)", a.Count, images)
		}
	}
}
