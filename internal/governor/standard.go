package governor

import (
	"powerlens/internal/graph"
	"powerlens/internal/hw"
	"powerlens/internal/sim"
)

// The two remaining standard Linux cpufreq/devfreq policies, for baseline
// completeness: performance pins fmax, powersave pins fmin. Together with
// Ondemand they are the stock governor set the paper's BiM column samples
// from ([7] surveys them).

// Performance pins the GPU at the maximum frequency.
type Performance struct{ platform *hw.Platform }

// NewPerformance returns the performance governor.
func NewPerformance() *Performance { return &Performance{} }

func (p *Performance) Name() string { return "performance" }

// Reset implements sim.Controller.
func (p *Performance) Reset(pl *hw.Platform) { p.platform = pl }

// GPULevel implements sim.Controller.
func (p *Performance) GPULevel() int { return p.platform.NumGPULevels() - 1 }

// CPULevel implements sim.Controller.
func (p *Performance) CPULevel() int { return len(p.platform.CPUFreqsHz) - 1 }

// BeforeLayer implements sim.Controller.
func (p *Performance) BeforeLayer(*graph.Graph, int) {}

// OnWindow implements sim.Controller.
func (p *Performance) OnWindow(sim.WindowStats) {}

// Powersave pins the GPU at the minimum frequency.
type Powersave struct{ platform *hw.Platform }

// NewPowersave returns the powersave governor.
func NewPowersave() *Powersave { return &Powersave{} }

func (p *Powersave) Name() string { return "powersave" }

// Reset implements sim.Controller.
func (p *Powersave) Reset(pl *hw.Platform) { p.platform = pl }

// GPULevel implements sim.Controller.
func (p *Powersave) GPULevel() int { return 0 }

// CPULevel implements sim.Controller.
func (p *Powersave) CPULevel() int { return len(p.platform.CPUFreqsHz) - 1 }

// BeforeLayer implements sim.Controller.
func (p *Powersave) BeforeLayer(*graph.Graph, int) {}

// OnWindow implements sim.Controller.
func (p *Powersave) OnWindow(sim.WindowStats) {}

var (
	_ sim.Controller = (*Performance)(nil)
	_ sim.Controller = (*Powersave)(nil)
)
