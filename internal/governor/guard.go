package governor

import (
	"fmt"
	"math"

	"powerlens/internal/graph"
	"powerlens/internal/hw"
	"powerlens/internal/obs"
	"powerlens/internal/obs/audit"
	"powerlens/internal/sim"
)

// Guard wraps any sim.Controller with a runtime sanity layer. It validates
// the wrapped policy's decisions every time the executor consults them —
// out-of-range ladder levels, NaN/Inf window features fed to the policy, and
// sustained level oscillation (ping-pong) all count as strikes — and after
// MaxStrikes consecutive invalid outputs it fails over to a known-good
// fallback governor (Ondemand by default, the platform's standard governor).
// While in fallback it keeps probing the wrapped policy and restores it once
// it behaves again, so transient misbehaviour (a corrupted plan, a policy
// confused by faulty sensor windows) degrades a run instead of ruining it.
type Guard struct {
	Inner    sim.Controller
	Fallback sim.Controller // defaults to NewOndemand()

	// MaxStrikes is the number of consecutive invalid decisions before
	// failing over (default 3).
	MaxStrikes int
	// RecoveryWindows is how many windows the guard stays on the fallback
	// before probing the wrapped policy again (default 8).
	RecoveryWindows int
	// OscillationLen is how many consecutive window decisions must strictly
	// alternate between two levels to count as ping-pong (default 6).
	OscillationLen int
	// OscillationSpan is the minimum ladder distance between the two
	// alternating levels for the pattern to count (default 3 — small
	// dithering is normal reactive behaviour, wide ping-pong is not).
	OscillationSpan int

	// Stats counts guard interventions; read it after a run.
	Stats GuardStats

	// Obs, when non-nil, emits the guard lifecycle onto the span trace
	// (cat "guard": decision → violation → fallback → recovery instants,
	// timestamped by the executor-installed simulated clock) and counts
	// decisions, strikes, failovers and recoveries in the metrics registry.
	Obs *obs.Observer

	platform  *hw.Platform
	strikes   int
	fallback  bool
	recoverIn int
	lastGood  int
	lastWin   sim.WindowStats
	haveWin   bool
	history   []int

	// Observability handles (inert unless Obs is set at Reset time).
	mDecisions  obs.Counter
	mStrikes    obs.Counter
	mFallbacks  obs.Counter
	mRecoveries obs.Counter
	innerName   string

	// Decision-audit sink (installed by the executor via SetAudit; nil keeps
	// every emission site a single nil-safe method call).
	audit      *audit.Recorder
	auditTrack int
}

// GuardStats counts the guard's observations and interventions.
type GuardStats struct {
	InvalidLevels       int // out-of-range GPU levels returned by the policy
	NaNWindows          int // window observations sanitized before delivery
	Oscillations        int // ping-pong patterns detected
	FallbackActivations int // times the guard failed over
	FallbackWindows     int // windows spent on the fallback governor
	Recoveries          int // times the wrapped policy was restored
}

// Add accumulates another stats block.
func (s *GuardStats) Add(o GuardStats) {
	s.InvalidLevels += o.InvalidLevels
	s.NaNWindows += o.NaNWindows
	s.Oscillations += o.Oscillations
	s.FallbackActivations += o.FallbackActivations
	s.FallbackWindows += o.FallbackWindows
	s.Recoveries += o.Recoveries
}

// NewGuard wraps a controller with the default fallback (Ondemand) and
// default thresholds.
func NewGuard(inner sim.Controller) *Guard {
	return &Guard{Inner: inner, Fallback: NewOndemand()}
}

// Name implements sim.Controller.
func (g *Guard) Name() string { return fmt.Sprintf("guard(%s)", g.Inner.Name()) }

// Reset implements sim.Controller.
func (g *Guard) Reset(p *hw.Platform) {
	if g.Fallback == nil {
		g.Fallback = NewOndemand()
	}
	g.platform = p
	g.Inner.Reset(p)
	g.Fallback.Reset(p)
	g.Stats = GuardStats{}
	g.strikes, g.recoverIn = 0, 0
	g.fallback = false
	g.lastGood = p.NumGPULevels() / 2
	g.lastWin, g.haveWin = sim.WindowStats{}, false
	g.history = g.history[:0]
	if g.Obs != nil {
		m := g.Obs.Metrics
		g.innerName = g.Inner.Name()
		g.mDecisions = m.Counter("governor_decisions_total",
			"Window decisions served, by wrapped controller and source.", "controller", "source")
		g.mStrikes = m.Counter("governor_guard_strikes_total",
			"Invalid decisions observed by the guard, by reason.", "controller", "reason")
		g.mFallbacks = m.Counter("governor_guard_fallbacks_total",
			"Guard failovers to the fallback governor.", "controller")
		g.mRecoveries = m.Counter("governor_guard_recoveries_total",
			"Wrapped policies restored after a fallback episode.", "controller")
	}
}

// OnFallback reports whether the guard is currently serving decisions from
// the fallback governor.
func (g *Guard) OnFallback() bool { return g.fallback }

// SetAudit implements sim.AuditSink: guard interventions (strikes, failovers,
// recoveries) land in the decision-audit trail. The recorder is forwarded to
// the wrapped policy and the fallback so plan applications stay audited
// through a fallback episode; a nil recorder disables emission everywhere.
func (g *Guard) SetAudit(rec *audit.Recorder, track int) {
	g.audit = rec
	g.auditTrack = track
	if s, ok := g.Inner.(sim.AuditSink); ok {
		s.SetAudit(rec, track)
	}
	if s, ok := g.Fallback.(sim.AuditSink); ok {
		s.SetAudit(rec, track)
	}
}

func (g *Guard) maxStrikes() int {
	if g.MaxStrikes > 0 {
		return g.MaxStrikes
	}
	return 3
}

func (g *Guard) recoveryWindows() int {
	if g.RecoveryWindows > 0 {
		return g.RecoveryWindows
	}
	return 8
}

func (g *Guard) oscLen() int {
	if g.OscillationLen > 1 {
		return g.OscillationLen
	}
	return 6
}

func (g *Guard) oscSpan() int {
	if g.OscillationSpan > 0 {
		return g.OscillationSpan
	}
	return 3
}

// GPULevel implements sim.Controller: the wrapped policy's level when it is
// trusted and in range, the fallback's otherwise.
func (g *Guard) GPULevel() int {
	if g.fallback {
		return g.Fallback.GPULevel()
	}
	lvl, ok := g.innerLevel()
	if !ok {
		return g.lastGood
	}
	return lvl
}

// innerLevel validates the wrapped policy's current GPU decision, striking
// on out-of-range levels.
func (g *Guard) innerLevel() (int, bool) {
	lvl := g.Inner.GPULevel()
	if lvl < 0 || lvl >= g.platform.NumGPULevels() {
		g.Stats.InvalidLevels++
		g.strike("invalid-level")
		return g.lastGood, false
	}
	g.lastGood = lvl
	return lvl, true
}

// CPULevel implements sim.Controller. CPU levels are clamped by the
// executor, so the guard only needs to pick the trusted source.
func (g *Guard) CPULevel() int {
	if g.fallback {
		return g.Fallback.CPULevel()
	}
	return g.Inner.CPULevel()
}

// BeforeLayer implements sim.Controller. The wrapped policy always sees its
// instrumentation points so its plan position stays warm across a fallback
// episode.
func (g *Guard) BeforeLayer(gr *graph.Graph, layerID int) {
	g.Inner.BeforeLayer(gr, layerID)
	g.Fallback.BeforeLayer(gr, layerID)
}

// BlockIndex implements sim.BlockResolver by delegating to the wrapped policy
// when it carries a block structure: attribution follows the plan even while
// the guard is serving levels from the fallback.
func (g *Guard) BlockIndex(gr *graph.Graph, layerID int) int {
	if br, ok := g.Inner.(sim.BlockResolver); ok {
		return br.BlockIndex(gr, layerID)
	}
	return 0
}

// MacroPlanDigest implements sim.MacroSteppable by delegating to the wrapped
// policy. ok is false — demoting the executor to micro-stepping — while the
// guard serves fallback decisions, when the wrapped policy is not itself
// macro-steppable, or when the fallback is a plan controller whose
// BeforeLayer state a replay would have to advance (the reactive defaults
// are stateless per layer, which is what the fast path assumes).
func (g *Guard) MacroPlanDigest(gr *graph.Graph) (uint64, bool) {
	if g.fallback {
		return 0, false
	}
	ms, ok := g.Inner.(sim.MacroSteppable)
	if !ok {
		return 0, false
	}
	if _, stateful := g.Fallback.(sim.MacroSteppable); stateful {
		return 0, false
	}
	return ms.MacroPlanDigest(gr)
}

// MacroWindowInert implements sim.MacroSteppable: the guard acts at window
// ticks (strike/fallback/recovery bookkeeping), so guarded runs keep full
// window segmentation — passes fast-forward only when they fit strictly
// inside the current window.
func (g *Guard) MacroWindowInert() bool { return false }

// MacroAdvancePass implements sim.MacroSteppable: a replayed pass leaves the
// wrapped policy at its exit level, and — since every micro-stepped level
// consultation of a nominal, in-range policy refreshes lastGood — the
// guard's known-good level tracks the same exit.
func (g *Guard) MacroAdvancePass(gr *graph.Graph, exitGPULevel int) {
	if ms, ok := g.Inner.(sim.MacroSteppable); ok {
		ms.MacroAdvancePass(gr, exitGPULevel)
	}
	g.lastGood = exitGPULevel
}

// OnWindow implements sim.Controller: sanitize the observation, feed both
// policies (the fallback stays warm for takeover), then judge the wrapped
// policy's decision.
func (g *Guard) OnWindow(s sim.WindowStats) {
	s = g.sanitize(s)
	g.Inner.OnWindow(s)
	g.Fallback.OnWindow(s)

	if g.Obs != nil {
		source := "inner"
		if g.fallback {
			source = "fallback"
		}
		g.mDecisions.Inc(g.innerName, source)
		g.Obs.MarkNow("guard", "decision", map[string]any{
			"level": g.Inner.GPULevel(), "source": source})
	}

	lvl, ok := g.innerLevel()
	if ok {
		g.pushHistory(lvl)
		if g.oscillating() {
			g.Stats.Oscillations++
			g.strike("oscillation")
			ok = false
		}
	}
	if ok && !g.fallback {
		g.strikes = 0
	}

	if g.fallback {
		g.Stats.FallbackWindows++
		g.recoverIn--
		if g.recoverIn <= 0 {
			if ok {
				// The wrapped policy behaves again: restore it.
				g.fallback = false
				g.strikes = 0
				g.Stats.Recoveries++
				if g.Obs != nil {
					g.mRecoveries.Inc(g.innerName)
					g.Obs.MarkNow("guard", "recovery", map[string]any{"level": lvl})
				}
				g.audit.RecordGuard(g.auditTrack, "recovery", g.Inner.Name(), lvl, "")
			} else {
				g.recoverIn = g.recoveryWindows()
			}
		}
	}
}

// sanitize replaces NaN/Inf window features with the last clean observation
// (or zeros) so the wrapped policy never ingests garbage.
func (g *Guard) sanitize(s sim.WindowStats) sim.WindowStats {
	if finiteStats(s) {
		g.lastWin, g.haveWin = s, true
		return s
	}
	g.Stats.NaNWindows++
	if g.haveWin {
		return g.lastWin
	}
	return sim.WindowStats{Period: s.Period, GPULevel: s.GPULevel, CPULevel: s.CPULevel}
}

func finiteStats(s sim.WindowStats) bool {
	for _, v := range []float64{s.GPUBusy, s.CPUBusy, s.AvgComputeUt, s.AvgPowerW} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// strike records one invalid decision; enough consecutive strikes trip the
// failover.
func (g *Guard) strike(reason string) {
	g.strikes++
	if g.Obs != nil {
		g.mStrikes.Inc(g.innerName, reason)
		g.Obs.MarkNow("guard", "violation", map[string]any{
			"reason": reason, "strikes": g.strikes})
	}
	g.audit.RecordGuard(g.auditTrack, "strike", g.Inner.Name(), g.lastGood, reason)
	if !g.fallback && g.strikes >= g.maxStrikes() {
		g.fallback = true
		g.recoverIn = g.recoveryWindows()
		g.Stats.FallbackActivations++
		if g.Obs != nil {
			g.mFallbacks.Inc(g.innerName)
			g.Obs.MarkNow("guard", "fallback", map[string]any{
				"strikes": g.strikes, "fallback": g.Fallback.Name()})
		}
		g.audit.RecordGuard(g.auditTrack, "failover", g.Inner.Name(), g.lastGood, reason)
	}
}

// pushHistory records a window decision for oscillation detection.
func (g *Guard) pushHistory(lvl int) {
	g.history = append(g.history, lvl)
	if max := g.oscLen(); len(g.history) > max {
		g.history = g.history[len(g.history)-max:]
	}
}

// oscillating reports whether the recent window decisions strictly alternate
// between two levels at least oscSpan apart — the ping-pong pathology of
// Fig. 1B taken to a policy-breaking extreme.
func (g *Guard) oscillating() bool {
	n := g.oscLen()
	if len(g.history) < n {
		return false
	}
	h := g.history[len(g.history)-n:]
	a, b := h[0], h[1]
	if a == b || abs(a-b) < g.oscSpan() {
		return false
	}
	for i, lvl := range h {
		want := a
		if i%2 == 1 {
			want = b
		}
		if lvl != want {
			return false
		}
	}
	return true
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

var (
	_ sim.Controller     = (*Guard)(nil)
	_ sim.AuditSink      = (*Guard)(nil)
	_ sim.MacroSteppable = (*Guard)(nil)
)
