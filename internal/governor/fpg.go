package governor

import (
	"math"

	"powerlens/internal/graph"
	"powerlens/internal/hw"
	"powerlens/internal/sim"
)

// FPGG is the FPG-G baseline: a reactive heuristic that adjusts the GPU
// frequency one ladder step per window, hill-climbing on an energy/EDP-style
// score estimated from the previous windows' power and utilization —
// exactly the "historical information" strategy the paper contrasts with.
//
// The score is P/perf^β, a blend between energy-per-work (β=1) and EDP
// (β=2); the default β=1.25 reproduces the cited method's performance bias,
// settling one or two ladder steps above the pure energy optimum. Being
// reactive, it dithers around its target (frequency ping-pong), responds one
// window late (lag), and applies one network-wide compromise frequency
// instead of per-block targets.
type FPGG struct {
	LowUtil  float64 // below this, step down to save energy (default 0.30)
	PerfBias float64 // β exponent of the P/perf^β score (default 1.25)

	platform  *hw.Platform
	level     int
	direction int // +1 or -1: current hill-climbing direction
	prevScore float64
	havePrev  bool
}

// NewFPGG returns an FPG-G governor with default bands.
func NewFPGG() *FPGG {
	return &FPGG{LowUtil: 0.30, PerfBias: 1.25, direction: -1}
}

func (f *FPGG) Name() string { return "FPG-G" }

// Reset implements sim.Controller.
func (f *FPGG) Reset(p *hw.Platform) {
	f.platform = p
	f.level = p.NumGPULevels() - 1 // starts from the ondemand-style busy state
	f.direction = -1
	f.prevScore = 0
	f.havePrev = false
}

// GPULevel implements sim.Controller.
func (f *FPGG) GPULevel() int { return f.level }

// CPULevel implements sim.Controller: FPG-G leaves the CPU on ondemand.
func (f *FPGG) CPULevel() int { return len(f.platform.CPUFreqsHz) - 1 }

// BeforeLayer implements sim.Controller.
func (f *FPGG) BeforeLayer(*graph.Graph, int) {}

// OnWindow implements sim.Controller.
func (f *FPGG) OnWindow(s sim.WindowStats) {
	p := f.platform
	if s.GPUBusy <= 0.01 {
		// Idle: fall toward the bottom to save static power.
		f.level = p.ClampGPULevel(f.level - 2)
		f.havePrev = false
		return
	}
	if s.GPUBusy < f.LowUtil {
		f.level = p.ClampGPULevel(f.level - 1)
		f.havePrev = false
		return
	}
	// Hill-climb on the windowed score P/perf^β. Throughput is approximated
	// from busy time × frequency (work ∝ cycles) — the same proxy the real
	// governor builds from hardware counters.
	perf := s.GPUBusy * p.GPUFreqsHz[f.level] / 1e9 // normalized to GHz
	if perf <= 0 || s.AvgPowerW <= 0 {
		return
	}
	score := s.AvgPowerW / math.Pow(perf, f.PerfBias)
	if f.havePrev && score > f.prevScore {
		f.direction = -f.direction // got worse: reverse
	}
	f.prevScore = score
	f.havePrev = true
	f.level = p.ClampGPULevel(f.level + f.direction)
}

var _ sim.Controller = (*FPGG)(nil)

// FPGCG is FPG-C+G: FPGG for the GPU plus a CPU-side band controller that
// lowers the CPU frequency when the host is mostly idle and raises it when
// host work queues up.
type FPGCG struct {
	FPGG
	CPUHighBusy float64 // raise CPU level above this host busy fraction
	CPULowBusy  float64 // lower CPU level below it
	cpuLevel    int
}

// NewFPGCG returns an FPG-C+G governor with default bands.
func NewFPGCG() *FPGCG {
	return &FPGCG{FPGG: *NewFPGG(), CPUHighBusy: 0.35, CPULowBusy: 0.15}
}

func (f *FPGCG) Name() string { return "FPG-CG" }

// Reset implements sim.Controller.
func (f *FPGCG) Reset(p *hw.Platform) {
	f.FPGG.Reset(p)
	f.cpuLevel = len(p.CPUFreqsHz) - 1
}

// CPULevel implements sim.Controller.
func (f *FPGCG) CPULevel() int { return f.cpuLevel }

// OnWindow implements sim.Controller.
func (f *FPGCG) OnWindow(s sim.WindowStats) {
	f.FPGG.OnWindow(s)
	switch {
	case s.CPUBusy > f.CPUHighBusy && f.cpuLevel < len(f.platform.CPUFreqsHz)-1:
		f.cpuLevel++
	case s.CPUBusy < f.CPULowBusy && f.cpuLevel > 0:
		f.cpuLevel--
	}
}

var _ sim.Controller = (*FPGCG)(nil)
