package governor

import (
	"testing"

	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/sim"
)

func TestOptimalCPULevelRespectsBudget(t *testing.T) {
	p := hw.TX2()
	// Generous GPU time: the cheapest feasible level should be well below top.
	lvl := OptimalCPULevel(p, 0.1, 0.9)
	if lvl >= len(p.CPUFreqsHz)-1 {
		t.Fatalf("generous budget should allow a low CPU level, got %d", lvl)
	}
	// Feasibility: chosen level's host time must fit the budget.
	if tHost := p.CPUWorkPerImage / p.CPUFreqsHz[lvl]; tHost > 0.09 {
		t.Fatalf("host time %.3fs exceeds budget", tHost)
	}
	// Tiny GPU time: nothing fits, must fall back to the top level.
	if lvl := OptimalCPULevel(p, 1e-9, 0.9); lvl != len(p.CPUFreqsHz)-1 {
		t.Fatalf("impossible budget must return the top level, got %d", lvl)
	}
}

func TestOptimalCPULevelMinimizesEnergy(t *testing.T) {
	p := hw.TX2()
	budget := 0.05 * 0.9
	best := OptimalCPULevel(p, 0.05, 0.9)
	bestE := p.CPUBusyPower(p.CPUFreqsHz[best]) * (p.CPUWorkPerImage / p.CPUFreqsHz[best])
	for lvl, f := range p.CPUFreqsHz {
		tHost := p.CPUWorkPerImage / f
		if tHost > budget {
			continue
		}
		if e := p.CPUBusyPower(f) * tHost; e < bestE-1e-12 {
			t.Fatalf("level %d energy %.6f beats chosen %d (%.6f)", lvl, e, best, bestE)
		}
	}
}

func TestPowerLensCGBeatsPlainPowerLens(t *testing.T) {
	p := hw.TX2()
	g := models.MustBuild("resnet152")
	plan := &FrequencyPlan{Model: g.Name, Points: map[int]int{0: 6}}

	plain := sim.NewExecutor(p, NewPowerLens(plan)).RunTask(g, 20)
	cg := sim.NewExecutor(p, NewPowerLensCG(p, g, plan)).RunTask(g, 20)

	// Coordinated CPU DVFS saves host energy without stalling the pipeline:
	// equal or lower energy at (nearly) unchanged makespan.
	if cg.EnergyJ >= plain.EnergyJ {
		t.Fatalf("PowerLens-CG energy %.3f >= plain %.3f", cg.EnergyJ, plain.EnergyJ)
	}
	if cg.Time.Seconds() > plain.Time.Seconds()*1.02 {
		t.Fatalf("PowerLens-CG stalled the pipeline: %v vs %v", cg.Time, plain.Time)
	}
	if cg.EE() <= plain.EE() {
		t.Fatalf("PowerLens-CG EE %.4f <= plain %.4f", cg.EE(), plain.EE())
	}
}

func TestPowerLensCGName(t *testing.T) {
	p := hw.TX2()
	g := models.MustBuild("alexnet")
	plan := &FrequencyPlan{Model: g.Name, Points: map[int]int{0: 5}}
	ctl := NewPowerLensCG(p, g, plan)
	if ctl.Name() != "PowerLens-CG" {
		t.Fatalf("name = %q", ctl.Name())
	}
	ctl.Reset(p)
	if ctl.CPULevel() < 0 || ctl.CPULevel() >= len(p.CPUFreqsHz) {
		t.Fatalf("CPU level %d out of range", ctl.CPULevel())
	}
}

func TestPlanCPULevelScalesWithModel(t *testing.T) {
	p := hw.TX2()
	big := models.MustBuild("resnet152")
	small := models.MustBuild("alexnet")
	planBig := &FrequencyPlan{Model: big.Name, Points: map[int]int{0: 6}}
	planSmall := &FrequencyPlan{Model: small.Name, Points: map[int]int{0: 6}}
	// A long GPU pass tolerates a slower (cheaper) CPU than a short one.
	if PlanCPULevel(p, big, planBig) > PlanCPULevel(p, small, planSmall) {
		t.Fatal("bigger model must allow an equal or lower CPU level")
	}
}
