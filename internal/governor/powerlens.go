package governor

import (
	"sort"

	"powerlens/internal/graph"
	"powerlens/internal/hw"
	"powerlens/internal/obs/audit"
	"powerlens/internal/sim"
)

// FrequencyPlan maps instrumentation points — the first layer ID of each
// power block — to preset GPU levels. It is the artifact the offline
// PowerLens pipeline produces for one model on one platform.
type FrequencyPlan struct {
	Model  string
	Points map[int]int // layer ID at block start → GPU ladder level
}

// NumPoints returns the number of instrumentation points.
func (fp *FrequencyPlan) NumPoints() int { return len(fp.Points) }

// compileSchedule flattens a plan onto a graph: sched[layerID] holds the
// pre-clamped target level at that instrumentation point, or -1 where the
// plan sets nothing. The per-layer hook then costs one slice index instead of
// a map probe — the executor calls it for every op of every image, so this
// is the single hottest lookup of the online path. buf is reused when it has
// capacity. Points outside [0, len(layers)) are unreachable through the
// executor (it only passes real layer IDs) and are dropped.
func compileSchedule(plan *FrequencyPlan, g *graph.Graph, p *hw.Platform, buf []int) []int {
	n := len(g.Layers)
	sched := buf[:0]
	for i := 0; i < n; i++ {
		sched = append(sched, -1)
	}
	for id, lvl := range plan.Points {
		if id >= 0 && id < n {
			sched[id] = p.ClampGPULevel(lvl)
		}
	}
	return sched
}

// compileBlocks flattens a plan's instrumentation points into a per-layer
// power-block index: block b covers the layers from its start point (points
// in sorted layer order) up to the next one. Layers before the first point
// belong to block 0, matching the offline pipeline's convention that the
// first block starts at the graph's first layer. buf is reused when it has
// capacity. This is what keys the attribution ledger's cells, so it must be a
// pure function of (plan, graph).
func compileBlocks(plan *FrequencyPlan, g *graph.Graph, buf []int) []int {
	n := len(g.Layers)
	starts := make([]int, 0, len(plan.Points))
	for id := range plan.Points {
		if id >= 0 && id < n {
			starts = append(starts, id)
		}
	}
	sort.Ints(starts)
	blocks := buf[:0]
	b := 0
	for i := 0; i < n; i++ {
		for b < len(starts) && starts[b] <= i {
			b++
		}
		blk := b - 1
		if blk < 0 {
			blk = 0
		}
		blocks = append(blocks, blk)
	}
	return blocks
}

// macroNoPlanDigest keys passes during which a plan controller applies no
// level changes at all (it holds no plan for the running graph). Any two
// such passes are behaviourally identical regardless of which plan the
// controller carries, so they deliberately share one digest.
const macroNoPlanDigest = 1

// hashSchedule digests a compiled flat schedule and block index (FNV-1a over
// the slice values and lengths). Equal digests mean identical per-layer
// level sequences and block attribution — exactly what the executor's
// flow-summary cache keys on (sim.MacroSteppable.MacroPlanDigest).
func hashSchedule(sched, blocks []int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(len(sched)))
	for _, v := range sched {
		mix(uint64(int64(v)))
	}
	mix(uint64(len(blocks)))
	for _, v := range blocks {
		mix(uint64(int64(v)))
	}
	if h == macroNoPlanDigest {
		h++ // keep the no-plan sentinel unambiguous
	}
	return h
}

// PowerLens applies a FrequencyPlan at its preset instrumentation points.
// It needs no runtime feedback: frequencies are decided offline per power
// block, which is what eliminates the reactive baselines' ping-pong and lag.
type PowerLens struct {
	Plan *FrequencyPlan

	platform *hw.Platform
	level    int

	// Compiled block→level schedule and layer→block index for
	// (Plan, graph, platform); rebuilt lazily whenever any of the three
	// changes. The graph digest is cached alongside so audited plan
	// applications pay zero per-layer digest cost.
	schedPlan     *FrequencyPlan
	schedGraph    *graph.Graph
	schedPlatform *hw.Platform
	sched         []int
	blocks        []int
	schedDigest   uint64
	planDigest    uint64 // hashSchedule of (sched, blocks), for macro keys

	// Decision-audit sink (installed by the executor via SetAudit; nil — the
	// default — keeps BeforeLayer on the exact unaudited path).
	audit      *audit.Recorder
	auditTrack int
}

// NewPowerLens returns a controller executing the given plan.
func NewPowerLens(plan *FrequencyPlan) *PowerLens {
	return &PowerLens{Plan: plan}
}

func (pl *PowerLens) Name() string { return "PowerLens" }

// SetAudit implements sim.AuditSink: with a recorder attached, every plan
// application (an instrumentation point presetting a block's frequency) is
// recorded with the graph's digest, the power block, and the applied level.
func (pl *PowerLens) SetAudit(rec *audit.Recorder, track int) {
	pl.audit = rec
	pl.auditTrack = track
}

// Reset implements sim.Controller.
func (pl *PowerLens) Reset(p *hw.Platform) {
	pl.platform = p
	pl.level = p.NumGPULevels() / 2
}

// GPULevel implements sim.Controller.
func (pl *PowerLens) GPULevel() int { return pl.level }

// CPULevel implements sim.Controller: PowerLens only configures the GPU
// (§3.2.1); the host CPU stays on its ondemand governor (busy → top level).
func (pl *PowerLens) CPULevel() int { return len(pl.platform.CPUFreqsHz) - 1 }

// BeforeLayer implements sim.Controller: at an instrumentation point, preset
// the block's target frequency. Plans for other models are ignored, so one
// controller instance can serve a mixed task flow given per-model plans. The
// steady-state cost is one slice index per layer (the plan is compiled to a
// flat schedule on first use per graph).
func (pl *PowerLens) BeforeLayer(g *graph.Graph, layerID int) {
	if pl.Plan == nil || pl.Plan.Model != g.Name {
		return
	}
	pl.ensureSched(g)
	if layerID >= 0 && layerID < len(pl.sched) {
		if lvl := pl.sched[layerID]; lvl >= 0 {
			pl.level = lvl
			if pl.audit != nil {
				pl.audit.RecordApply(pl.auditTrack, "powerlens", pl.Plan.Model,
					pl.schedDigest, pl.blocks[layerID], layerID, lvl)
			}
		}
	}
}

// ensureSched rebuilds the compiled schedules when (Plan, graph, platform)
// changed since the last compile.
func (pl *PowerLens) ensureSched(g *graph.Graph) {
	if pl.schedPlan != pl.Plan || pl.schedGraph != g || pl.schedPlatform != pl.platform {
		pl.sched = compileSchedule(pl.Plan, g, pl.platform, pl.sched)
		pl.blocks = compileBlocks(pl.Plan, g, pl.blocks)
		pl.schedDigest = graph.Digest(g)
		pl.planDigest = hashSchedule(pl.sched, pl.blocks)
		pl.schedPlan, pl.schedGraph, pl.schedPlatform = pl.Plan, g, pl.platform
	}
}

// MacroPlanDigest implements sim.MacroSteppable: the digest of the compiled
// schedule the controller applies to g (a pure function of plan, graph and
// platform, reusing the flat schedules BeforeLayer compiles). Graphs the
// plan does not cover share the no-plan sentinel — such passes apply no
// level changes whatever the plan.
func (pl *PowerLens) MacroPlanDigest(g *graph.Graph) (uint64, bool) {
	if pl.Plan == nil || pl.Plan.Model != g.Name {
		return macroNoPlanDigest, true
	}
	pl.ensureSched(g)
	return pl.planDigest, true
}

// MacroWindowInert implements sim.MacroSteppable: OnWindow is a pure no-op
// and levels change only at instrumentation points.
func (pl *PowerLens) MacroWindowInert() bool { return true }

// MacroAdvancePass implements sim.MacroSteppable: after a replayed pass the
// plan position is warm and the level sits at the pass's exit level —
// exactly where micro-stepping the pass would have left it.
func (pl *PowerLens) MacroAdvancePass(g *graph.Graph, exitGPULevel int) {
	if pl.Plan == nil || pl.Plan.Model != g.Name {
		return // no instrumentation point fired; nothing changed
	}
	pl.ensureSched(g)
	pl.level = exitGPULevel
}

// BlockIndex implements sim.BlockResolver: the power block the layer belongs
// to under the active plan, or 0 when the plan does not apply to this graph.
// Steady-state cost is one slice index, same as BeforeLayer.
func (pl *PowerLens) BlockIndex(g *graph.Graph, layerID int) int {
	if pl.Plan == nil || pl.Plan.Model != g.Name || pl.platform == nil {
		return 0
	}
	pl.ensureSched(g)
	if layerID >= 0 && layerID < len(pl.blocks) {
		return pl.blocks[layerID]
	}
	return 0
}

// OnWindow implements sim.Controller (no reactive behaviour).
func (pl *PowerLens) OnWindow(sim.WindowStats) {}

var (
	_ sim.Controller     = (*PowerLens)(nil)
	_ sim.BlockResolver  = (*PowerLens)(nil)
	_ sim.AuditSink      = (*PowerLens)(nil)
	_ sim.MacroSteppable = (*PowerLens)(nil)
)

// MultiPlan serves a task flow of different models: it dispatches
// BeforeLayer to the plan matching the running graph.
type MultiPlan struct {
	Plans map[string]*FrequencyPlan // model name → plan

	platform *hw.Platform
	level    int

	// Compiled schedules, one per graph served (bounded; see BeforeLayer),
	// with a last-graph memo so the per-layer hook skips the map on the
	// common same-graph-as-last-layer case.
	compiled  map[*graph.Graph]*mpSchedule
	lastGraph *graph.Graph
	lastSched *mpSchedule

	// Decision-audit sink (installed by the executor via SetAudit).
	audit      *audit.Recorder
	auditTrack int
}

// mpSchedule is one graph's compiled schedule and block index plus the
// inputs they were compiled from (for staleness checks). The graph digest is
// computed once per entry so audited applications stay digest-free per layer.
type mpSchedule struct {
	plan       *FrequencyPlan
	platform   *hw.Platform
	sched      []int
	blocks     []int
	digest     uint64
	planDigest uint64 // hashSchedule of (sched, blocks), for macro keys
}

// maxCompiledSchedules bounds MultiPlan's schedule cache; serving loops that
// rebuild graph objects per request cannot grow it without bound.
const maxCompiledSchedules = 64

// NewMultiPlan returns a PowerLens controller holding one plan per model.
func NewMultiPlan(plans map[string]*FrequencyPlan) *MultiPlan {
	return &MultiPlan{Plans: plans}
}

func (m *MultiPlan) Name() string { return "PowerLens" }

// SetAudit implements sim.AuditSink.
func (m *MultiPlan) SetAudit(rec *audit.Recorder, track int) {
	m.audit = rec
	m.auditTrack = track
}

// Reset implements sim.Controller.
func (m *MultiPlan) Reset(p *hw.Platform) {
	m.platform = p
	m.level = p.NumGPULevels() / 2
}

// GPULevel implements sim.Controller.
func (m *MultiPlan) GPULevel() int { return m.level }

// CPULevel implements sim.Controller.
func (m *MultiPlan) CPULevel() int { return len(m.platform.CPUFreqsHz) - 1 }

// BeforeLayer implements sim.Controller.
func (m *MultiPlan) BeforeLayer(g *graph.Graph, layerID int) {
	plan, ok := m.Plans[g.Name]
	if !ok {
		return
	}
	e := m.scheduleFor(g, plan)
	if layerID >= 0 && layerID < len(e.sched) {
		if lvl := e.sched[layerID]; lvl >= 0 {
			m.level = lvl
			if m.audit != nil {
				m.audit.RecordApply(m.auditTrack, "powerlens", plan.Model,
					e.digest, e.blocks[layerID], layerID, lvl)
			}
		}
	}
}

// scheduleFor returns g's compiled schedule, building or refreshing it if the
// cache entry is missing or stale.
func (m *MultiPlan) scheduleFor(g *graph.Graph, plan *FrequencyPlan) *mpSchedule {
	e := m.lastSched
	if m.lastGraph != g {
		if m.compiled == nil {
			m.compiled = make(map[*graph.Graph]*mpSchedule)
		}
		e = m.compiled[g]
		if e == nil {
			if len(m.compiled) >= maxCompiledSchedules {
				m.compiled = make(map[*graph.Graph]*mpSchedule)
			}
			e = &mpSchedule{digest: graph.Digest(g)}
			m.compiled[g] = e
		}
		m.lastGraph, m.lastSched = g, e
	}
	if e.plan != plan || e.platform != m.platform {
		e.sched = compileSchedule(plan, g, m.platform, e.sched)
		e.blocks = compileBlocks(plan, g, e.blocks)
		e.planDigest = hashSchedule(e.sched, e.blocks)
		e.plan, e.platform = plan, m.platform
	}
	return e
}

// MacroPlanDigest implements sim.MacroSteppable (see PowerLens).
func (m *MultiPlan) MacroPlanDigest(g *graph.Graph) (uint64, bool) {
	plan, ok := m.Plans[g.Name]
	if !ok {
		return macroNoPlanDigest, true
	}
	return m.scheduleFor(g, plan).planDigest, true
}

// MacroWindowInert implements sim.MacroSteppable.
func (m *MultiPlan) MacroWindowInert() bool { return true }

// MacroAdvancePass implements sim.MacroSteppable.
func (m *MultiPlan) MacroAdvancePass(g *graph.Graph, exitGPULevel int) {
	plan, ok := m.Plans[g.Name]
	if !ok {
		return
	}
	m.scheduleFor(g, plan)
	m.level = exitGPULevel
}

// BlockIndex implements sim.BlockResolver: the power block under the plan
// matching the running graph, or 0 when no plan applies.
func (m *MultiPlan) BlockIndex(g *graph.Graph, layerID int) int {
	plan, ok := m.Plans[g.Name]
	if !ok || m.platform == nil {
		return 0
	}
	e := m.scheduleFor(g, plan)
	if layerID >= 0 && layerID < len(e.blocks) {
		return e.blocks[layerID]
	}
	return 0
}

// OnWindow implements sim.Controller.
func (m *MultiPlan) OnWindow(sim.WindowStats) {}

var (
	_ sim.Controller     = (*MultiPlan)(nil)
	_ sim.BlockResolver  = (*MultiPlan)(nil)
	_ sim.AuditSink      = (*MultiPlan)(nil)
	_ sim.MacroSteppable = (*MultiPlan)(nil)
)
