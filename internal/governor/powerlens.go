package governor

import (
	"powerlens/internal/graph"
	"powerlens/internal/hw"
	"powerlens/internal/sim"
)

// FrequencyPlan maps instrumentation points — the first layer ID of each
// power block — to preset GPU levels. It is the artifact the offline
// PowerLens pipeline produces for one model on one platform.
type FrequencyPlan struct {
	Model  string
	Points map[int]int // layer ID at block start → GPU ladder level
}

// NumPoints returns the number of instrumentation points.
func (fp *FrequencyPlan) NumPoints() int { return len(fp.Points) }

// compileSchedule flattens a plan onto a graph: sched[layerID] holds the
// pre-clamped target level at that instrumentation point, or -1 where the
// plan sets nothing. The per-layer hook then costs one slice index instead of
// a map probe — the executor calls it for every op of every image, so this
// is the single hottest lookup of the online path. buf is reused when it has
// capacity. Points outside [0, len(layers)) are unreachable through the
// executor (it only passes real layer IDs) and are dropped.
func compileSchedule(plan *FrequencyPlan, g *graph.Graph, p *hw.Platform, buf []int) []int {
	n := len(g.Layers)
	sched := buf[:0]
	for i := 0; i < n; i++ {
		sched = append(sched, -1)
	}
	for id, lvl := range plan.Points {
		if id >= 0 && id < n {
			sched[id] = p.ClampGPULevel(lvl)
		}
	}
	return sched
}

// PowerLens applies a FrequencyPlan at its preset instrumentation points.
// It needs no runtime feedback: frequencies are decided offline per power
// block, which is what eliminates the reactive baselines' ping-pong and lag.
type PowerLens struct {
	Plan *FrequencyPlan

	platform *hw.Platform
	level    int

	// Compiled block→level schedule for (Plan, graph, platform); rebuilt
	// lazily whenever any of the three changes.
	schedPlan     *FrequencyPlan
	schedGraph    *graph.Graph
	schedPlatform *hw.Platform
	sched         []int
}

// NewPowerLens returns a controller executing the given plan.
func NewPowerLens(plan *FrequencyPlan) *PowerLens {
	return &PowerLens{Plan: plan}
}

func (pl *PowerLens) Name() string { return "PowerLens" }

// Reset implements sim.Controller.
func (pl *PowerLens) Reset(p *hw.Platform) {
	pl.platform = p
	pl.level = p.NumGPULevels() / 2
}

// GPULevel implements sim.Controller.
func (pl *PowerLens) GPULevel() int { return pl.level }

// CPULevel implements sim.Controller: PowerLens only configures the GPU
// (§3.2.1); the host CPU stays on its ondemand governor (busy → top level).
func (pl *PowerLens) CPULevel() int { return len(pl.platform.CPUFreqsHz) - 1 }

// BeforeLayer implements sim.Controller: at an instrumentation point, preset
// the block's target frequency. Plans for other models are ignored, so one
// controller instance can serve a mixed task flow given per-model plans. The
// steady-state cost is one slice index per layer (the plan is compiled to a
// flat schedule on first use per graph).
func (pl *PowerLens) BeforeLayer(g *graph.Graph, layerID int) {
	if pl.Plan == nil || pl.Plan.Model != g.Name {
		return
	}
	if pl.schedPlan != pl.Plan || pl.schedGraph != g || pl.schedPlatform != pl.platform {
		pl.sched = compileSchedule(pl.Plan, g, pl.platform, pl.sched)
		pl.schedPlan, pl.schedGraph, pl.schedPlatform = pl.Plan, g, pl.platform
	}
	if layerID >= 0 && layerID < len(pl.sched) {
		if lvl := pl.sched[layerID]; lvl >= 0 {
			pl.level = lvl
		}
	}
}

// OnWindow implements sim.Controller (no reactive behaviour).
func (pl *PowerLens) OnWindow(sim.WindowStats) {}

var _ sim.Controller = (*PowerLens)(nil)

// MultiPlan serves a task flow of different models: it dispatches
// BeforeLayer to the plan matching the running graph.
type MultiPlan struct {
	Plans map[string]*FrequencyPlan // model name → plan

	platform *hw.Platform
	level    int

	// Compiled schedules, one per graph served (bounded; see BeforeLayer),
	// with a last-graph memo so the per-layer hook skips the map on the
	// common same-graph-as-last-layer case.
	compiled  map[*graph.Graph]*mpSchedule
	lastGraph *graph.Graph
	lastSched *mpSchedule
}

// mpSchedule is one graph's compiled schedule plus the inputs it was
// compiled from (for staleness checks).
type mpSchedule struct {
	plan     *FrequencyPlan
	platform *hw.Platform
	sched    []int
}

// maxCompiledSchedules bounds MultiPlan's schedule cache; serving loops that
// rebuild graph objects per request cannot grow it without bound.
const maxCompiledSchedules = 64

// NewMultiPlan returns a PowerLens controller holding one plan per model.
func NewMultiPlan(plans map[string]*FrequencyPlan) *MultiPlan {
	return &MultiPlan{Plans: plans}
}

func (m *MultiPlan) Name() string { return "PowerLens" }

// Reset implements sim.Controller.
func (m *MultiPlan) Reset(p *hw.Platform) {
	m.platform = p
	m.level = p.NumGPULevels() / 2
}

// GPULevel implements sim.Controller.
func (m *MultiPlan) GPULevel() int { return m.level }

// CPULevel implements sim.Controller.
func (m *MultiPlan) CPULevel() int { return len(m.platform.CPUFreqsHz) - 1 }

// BeforeLayer implements sim.Controller.
func (m *MultiPlan) BeforeLayer(g *graph.Graph, layerID int) {
	plan, ok := m.Plans[g.Name]
	if !ok {
		return
	}
	e := m.lastSched
	if m.lastGraph != g {
		if m.compiled == nil {
			m.compiled = make(map[*graph.Graph]*mpSchedule)
		}
		e = m.compiled[g]
		if e == nil {
			if len(m.compiled) >= maxCompiledSchedules {
				m.compiled = make(map[*graph.Graph]*mpSchedule)
			}
			e = &mpSchedule{}
			m.compiled[g] = e
		}
		m.lastGraph, m.lastSched = g, e
	}
	if e.plan != plan || e.platform != m.platform {
		e.sched = compileSchedule(plan, g, m.platform, e.sched)
		e.plan, e.platform = plan, m.platform
	}
	if layerID >= 0 && layerID < len(e.sched) {
		if lvl := e.sched[layerID]; lvl >= 0 {
			m.level = lvl
		}
	}
}

// OnWindow implements sim.Controller.
func (m *MultiPlan) OnWindow(sim.WindowStats) {}

var _ sim.Controller = (*MultiPlan)(nil)
