package governor

import (
	"powerlens/internal/graph"
	"powerlens/internal/hw"
	"powerlens/internal/sim"
)

// FrequencyPlan maps instrumentation points — the first layer ID of each
// power block — to preset GPU levels. It is the artifact the offline
// PowerLens pipeline produces for one model on one platform.
type FrequencyPlan struct {
	Model  string
	Points map[int]int // layer ID at block start → GPU ladder level
}

// NumPoints returns the number of instrumentation points.
func (fp *FrequencyPlan) NumPoints() int { return len(fp.Points) }

// PowerLens applies a FrequencyPlan at its preset instrumentation points.
// It needs no runtime feedback: frequencies are decided offline per power
// block, which is what eliminates the reactive baselines' ping-pong and lag.
type PowerLens struct {
	Plan *FrequencyPlan

	platform *hw.Platform
	level    int
}

// NewPowerLens returns a controller executing the given plan.
func NewPowerLens(plan *FrequencyPlan) *PowerLens {
	return &PowerLens{Plan: plan}
}

func (pl *PowerLens) Name() string { return "PowerLens" }

// Reset implements sim.Controller.
func (pl *PowerLens) Reset(p *hw.Platform) {
	pl.platform = p
	pl.level = p.NumGPULevels() / 2
}

// GPULevel implements sim.Controller.
func (pl *PowerLens) GPULevel() int { return pl.level }

// CPULevel implements sim.Controller: PowerLens only configures the GPU
// (§3.2.1); the host CPU stays on its ondemand governor (busy → top level).
func (pl *PowerLens) CPULevel() int { return len(pl.platform.CPUFreqsHz) - 1 }

// BeforeLayer implements sim.Controller: at an instrumentation point, preset
// the block's target frequency. Plans for other models are ignored, so one
// controller instance can serve a mixed task flow given per-model plans via
// SetPlan.
func (pl *PowerLens) BeforeLayer(g *graph.Graph, layerID int) {
	if pl.Plan == nil || pl.Plan.Model != g.Name {
		return
	}
	if lvl, ok := pl.Plan.Points[layerID]; ok {
		pl.level = pl.platform.ClampGPULevel(lvl)
	}
}

// OnWindow implements sim.Controller (no reactive behaviour).
func (pl *PowerLens) OnWindow(sim.WindowStats) {}

var _ sim.Controller = (*PowerLens)(nil)

// MultiPlan serves a task flow of different models: it dispatches
// BeforeLayer to the plan matching the running graph.
type MultiPlan struct {
	Plans map[string]*FrequencyPlan // model name → plan

	platform *hw.Platform
	level    int
}

// NewMultiPlan returns a PowerLens controller holding one plan per model.
func NewMultiPlan(plans map[string]*FrequencyPlan) *MultiPlan {
	return &MultiPlan{Plans: plans}
}

func (m *MultiPlan) Name() string { return "PowerLens" }

// Reset implements sim.Controller.
func (m *MultiPlan) Reset(p *hw.Platform) {
	m.platform = p
	m.level = p.NumGPULevels() / 2
}

// GPULevel implements sim.Controller.
func (m *MultiPlan) GPULevel() int { return m.level }

// CPULevel implements sim.Controller.
func (m *MultiPlan) CPULevel() int { return len(m.platform.CPUFreqsHz) - 1 }

// BeforeLayer implements sim.Controller.
func (m *MultiPlan) BeforeLayer(g *graph.Graph, layerID int) {
	plan, ok := m.Plans[g.Name]
	if !ok {
		return
	}
	if lvl, ok := plan.Points[layerID]; ok {
		m.level = m.platform.ClampGPULevel(lvl)
	}
}

// OnWindow implements sim.Controller.
func (m *MultiPlan) OnWindow(sim.WindowStats) {}

var _ sim.Controller = (*MultiPlan)(nil)
