package governor

import (
	"powerlens/internal/graph"
	"powerlens/internal/hw"
	"powerlens/internal/sim"
)

// This file implements the paper's §5 future-work extension "we will
// incorporate more configurable optimization options into PowerLens, such as
// CPU DVFS": PowerLensCG presets the host CPU frequency alongside the
// per-block GPU plan, instead of leaving the CPU on its ondemand governor.

// OptimalCPULevel returns the lowest CPU level whose per-image host
// processing still hides under the GPU pass (pipelined execution), i.e. the
// level that minimizes CPU energy without making the host the bottleneck.
// gpuImageTime is the GPU time of one inference pass at the planned
// frequencies; slack (0..1] is the fraction of it the host may consume.
func OptimalCPULevel(p *hw.Platform, gpuImageTime float64, slack float64) int {
	if slack <= 0 || slack > 1 {
		slack = 0.9
	}
	budget := gpuImageTime * slack
	best := len(p.CPUFreqsHz) - 1
	bestE := -1.0
	for lvl, f := range p.CPUFreqsHz {
		t := p.CPUWorkPerImage / f
		if t > budget {
			continue // would stall the GPU pipeline
		}
		e := p.CPUBusyPower(f) * t
		if bestE < 0 || e < bestE {
			best, bestE = lvl, e
		}
	}
	return best
}

// PlanCPULevel computes the preset CPU level for a frequency plan by
// estimating the plan's per-image GPU time from the block levels.
func PlanCPULevel(p *hw.Platform, g *graph.Graph, plan *FrequencyPlan) int {
	total := 0.0
	level := p.NumGPULevels() / 2
	for _, l := range g.Layers {
		if lvl, ok := plan.Points[l.ID]; ok {
			level = p.ClampGPULevel(lvl)
		}
		if l.Kind == graph.OpInput {
			continue
		}
		c := p.GPUOpCost(l.FLOPs(), l.MemBytes(), p.GPUFreqsHz[level])
		total += c.Time.Seconds()
	}
	return OptimalCPULevel(p, total, 0.9)
}

// PowerLensCG is PowerLens with coordinated CPU DVFS: the GPU follows the
// per-block plan and the CPU is preset to the most efficient level that
// keeps host pre-processing hidden under the GPU pass.
type PowerLensCG struct {
	PowerLens
	CPU int // preset CPU ladder level
}

// NewPowerLensCG builds the coordinated controller for one model.
func NewPowerLensCG(p *hw.Platform, g *graph.Graph, plan *FrequencyPlan) *PowerLensCG {
	return &PowerLensCG{
		PowerLens: PowerLens{Plan: plan},
		CPU:       PlanCPULevel(p, g, plan),
	}
}

func (pl *PowerLensCG) Name() string { return "PowerLens-CG" }

// CPULevel implements sim.Controller.
func (pl *PowerLensCG) CPULevel() int { return pl.CPU }

var _ sim.Controller = (*PowerLensCG)(nil)
