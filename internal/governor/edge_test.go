package governor

import (
	"testing"

	"powerlens/internal/graph"
	"powerlens/internal/hw"
	"powerlens/internal/sim"
)

func TestOndemandProportionalScaling(t *testing.T) {
	p := hw.TX2()
	o := NewOndemand()
	o.Reset(p)
	// Pin at a known level and feed a mid-utilization window: the next
	// level must target cur·busy/0.7.
	o.level = 10
	o.OnWindow(sim.WindowStats{GPUBusy: 0.35})
	want := p.NearestGPULevel(p.GPUFreqsHz[10] * 0.35 / 0.70)
	if o.GPULevel() != want {
		t.Fatalf("level = %d, want %d", o.GPULevel(), want)
	}
	// Above the up-threshold: jump to max.
	o.OnWindow(sim.WindowStats{GPUBusy: 0.85})
	if o.GPULevel() != p.NumGPULevels()-1 {
		t.Fatal("must jump to fmax above the threshold")
	}
	// Idle window: fall to the bottom.
	o.OnWindow(sim.WindowStats{GPUBusy: 0})
	if o.GPULevel() != 0 {
		t.Fatalf("idle level = %d, want 0", o.GPULevel())
	}
}

func TestFPGGLowUtilStepsDown(t *testing.T) {
	p := hw.TX2()
	f := NewFPGG()
	f.Reset(p)
	start := f.GPULevel()
	f.OnWindow(sim.WindowStats{GPUBusy: 0.2, AvgPowerW: 5})
	if f.GPULevel() != start-1 {
		t.Fatalf("low-util step: %d -> %d", start, f.GPULevel())
	}
	// Near-idle: falls two steps per window.
	lvl := f.GPULevel()
	f.OnWindow(sim.WindowStats{GPUBusy: 0.001, AvgPowerW: 3})
	if f.GPULevel() != lvl-2 {
		t.Fatalf("idle fall: %d -> %d", lvl, f.GPULevel())
	}
}

func TestFPGGIgnoresDegenerateWindow(t *testing.T) {
	p := hw.TX2()
	f := NewFPGG()
	f.Reset(p)
	lvl := f.GPULevel()
	f.OnWindow(sim.WindowStats{GPUBusy: 0.8, AvgPowerW: 0}) // zero power: no score
	if f.GPULevel() != lvl {
		t.Fatal("degenerate window must not move the level")
	}
}

func TestFPGCGCPUBounds(t *testing.T) {
	p := hw.TX2()
	f := NewFPGCG()
	f.Reset(p)
	// Hammer the down path: must clamp at 0.
	for i := 0; i < 100; i++ {
		f.OnWindow(sim.WindowStats{GPUBusy: 0.8, AvgPowerW: 5, CPUBusy: 0})
	}
	if f.CPULevel() < 0 {
		t.Fatal("CPU level below 0")
	}
	// Hammer the up path: must clamp at top.
	for i := 0; i < 100; i++ {
		f.OnWindow(sim.WindowStats{GPUBusy: 0.8, AvgPowerW: 5, CPUBusy: 1})
	}
	if f.CPULevel() != len(p.CPUFreqsHz)-1 {
		t.Fatalf("CPU level = %d, want top", f.CPULevel())
	}
}

func TestPowerLensClampsPlanLevels(t *testing.T) {
	p := hw.TX2()
	g := simpleGraphForTest()
	plan := &FrequencyPlan{Model: g.Name, Points: map[int]int{0: 99}}
	ctl := NewPowerLens(plan)
	ctl.Reset(p)
	ctl.BeforeLayer(g, 0)
	if ctl.GPULevel() != p.NumGPULevels()-1 {
		t.Fatalf("off-ladder plan level not clamped: %d", ctl.GPULevel())
	}
}

// simpleGraphForTest builds a minimal graph without importing models.
func simpleGraphForTest() *graph.Graph {
	g := graph.New("edge")
	in := g.Input(3, 8, 8)
	g.Linear(g.Flatten(in), 10)
	return g
}
