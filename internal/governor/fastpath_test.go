package governor

import (
	"reflect"
	"testing"

	"powerlens/internal/graph"
	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/sim"
)

// planForEveryThirdLayer builds a plan touching a spread of layer IDs,
// including deliberately out-of-ladder levels the controller must clamp.
func planForEveryThirdLayer(g *graph.Graph, p *hw.Platform) *FrequencyPlan {
	points := map[int]int{}
	for i := 0; i < len(g.Layers); i += 3 {
		points[i] = (i / 3) % (p.NumGPULevels() + 2) // some past the top
	}
	return &FrequencyPlan{Model: g.Name, Points: points}
}

// mapLookupLevels replays the pre-compilation BeforeLayer semantics (map
// probe + clamp) as the oracle for the flat-schedule path.
func mapLookupLevels(pl *FrequencyPlan, g *graph.Graph, p *hw.Platform, start int) []int {
	level := start
	out := make([]int, len(g.Layers))
	for i := range g.Layers {
		if pl != nil && pl.Model == g.Name {
			if lvl, ok := pl.Points[i]; ok {
				level = p.ClampGPULevel(lvl)
			}
		}
		out[i] = level
	}
	return out
}

func TestCompiledScheduleMatchesMapLookup(t *testing.T) {
	p := hw.TX2()
	for _, name := range []string{"alexnet", "resnet34", "vit_base_32"} {
		g := models.MustBuild(name)
		plan := planForEveryThirdLayer(g, p)
		ctl := NewPowerLens(plan)
		ctl.Reset(p)
		want := mapLookupLevels(plan, g, p, ctl.GPULevel())
		got := make([]int, len(g.Layers))
		for i := range g.Layers {
			ctl.BeforeLayer(g, i)
			got[i] = ctl.GPULevel()
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: compiled schedule diverges from map lookup:\ngot  %v\nwant %v", name, got, want)
		}
	}
}

func TestCompiledScheduleRecompilesOnPlanSwap(t *testing.T) {
	p := hw.TX2()
	g := models.AlexNet()
	low := &FrequencyPlan{Model: g.Name, Points: map[int]int{0: 0}}
	high := &FrequencyPlan{Model: g.Name, Points: map[int]int{0: p.NumGPULevels() - 1}}

	ctl := NewPowerLens(low)
	ctl.Reset(p)
	ctl.BeforeLayer(g, 0)
	if ctl.GPULevel() != 0 {
		t.Fatalf("low plan applied level %d", ctl.GPULevel())
	}
	ctl.Plan = high
	ctl.BeforeLayer(g, 0)
	if ctl.GPULevel() != p.NumGPULevels()-1 {
		t.Fatalf("swapped plan not recompiled: level %d", ctl.GPULevel())
	}
}

func TestCompiledScheduleRecompilesOnPlatformChange(t *testing.T) {
	tx2, agx := hw.TX2(), hw.AGX()
	g := models.AlexNet()
	plan := &FrequencyPlan{Model: g.Name, Points: map[int]int{0: 99}} // clamps to top
	ctl := NewPowerLens(plan)

	ctl.Reset(tx2)
	ctl.BeforeLayer(g, 0)
	if ctl.GPULevel() != tx2.NumGPULevels()-1 {
		t.Fatalf("tx2 clamp: level %d", ctl.GPULevel())
	}
	ctl.Reset(agx)
	ctl.BeforeLayer(g, 0)
	if ctl.GPULevel() != agx.NumGPULevels()-1 {
		t.Fatalf("agx clamp not recompiled: level %d, want %d", ctl.GPULevel(), agx.NumGPULevels()-1)
	}
}

func TestMultiPlanCompiledMatchesMapLookup(t *testing.T) {
	p := hw.TX2()
	g1, g2 := models.AlexNet(), models.MustBuild("mobilenet_v3")
	plans := map[string]*FrequencyPlan{
		g1.Name: planForEveryThirdLayer(g1, p),
		g2.Name: planForEveryThirdLayer(g2, p),
	}
	ctl := NewMultiPlan(plans)
	ctl.Reset(p)

	// Interleave the two graphs so the last-graph memo is exercised both on
	// hits and on switches.
	level := ctl.GPULevel()
	for round := 0; round < 2; round++ {
		for _, g := range []*graph.Graph{g1, g2, g1} {
			for i := range g.Layers {
				ctl.BeforeLayer(g, i)
				if lvl, ok := plans[g.Name].Points[i]; ok {
					level = p.ClampGPULevel(lvl)
				}
				if ctl.GPULevel() != level {
					t.Fatalf("%s layer %d: level %d, want %d", g.Name, i, ctl.GPULevel(), level)
				}
			}
		}
	}
}

// TestPowerLensRunTaskZeroAlloc pins the end-to-end serving fast path with
// the real plan-applying controller: warm RunTask with tracing off is
// allocation-free.
func TestPowerLensRunTaskZeroAlloc(t *testing.T) {
	p := hw.TX2()
	g := models.AlexNet()
	ctl := NewPowerLens(planForEveryThirdLayer(g, p))
	e := sim.NewExecutor(p, ctl)
	e.SensorPeriod = 0
	e.RunTask(g, 2) // warm: compiled schedule, sensor, op cost buffer

	allocs := testing.AllocsPerRun(10, func() {
		e.RunTask(g, 2)
	})
	if allocs != 0 {
		t.Fatalf("warm PowerLens RunTask allocated %.0f times per run, want 0", allocs)
	}
}
