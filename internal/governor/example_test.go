package governor_test

import (
	"fmt"

	"powerlens/internal/governor"
	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/sim"
)

// Run a model under a preset PowerLens plan and under the built-in
// ondemand governor (BiM), comparing energy.
func ExamplePowerLens() {
	p := hw.TX2()
	g := models.MustBuild("resnet34")

	// A plan normally comes from core.Framework.Analyze; here we preset a
	// single mid-ladder level for the whole network.
	lvl, _ := sim.OptimalSegmentLevel(p, g, 0, len(g.Layers)-1)
	plan := &governor.FrequencyPlan{Model: g.Name, Points: map[int]int{0: lvl}}

	pl := sim.NewExecutor(p, governor.NewPowerLens(plan)).RunTask(g, 10)
	bim := sim.NewExecutor(p, governor.NewOndemand()).RunTask(g, 10)

	fmt.Println("PowerLens saves energy:", pl.EnergyJ < bim.EnergyJ)
	fmt.Println("BiM is faster:", bim.Time < pl.Time)
	// Output:
	// PowerLens saves energy: true
	// BiM is faster: true
}

// The coordinated extension also presets the host CPU level.
func ExamplePowerLensCG() {
	p := hw.TX2()
	g := models.MustBuild("resnet34")
	plan := &governor.FrequencyPlan{Model: g.Name, Points: map[int]int{0: 6}}
	ctl := governor.NewPowerLensCG(p, g, plan)
	ctl.Reset(p)

	fmt.Println("CPU level preset below top:", ctl.CPULevel() < len(p.CPUFreqsHz)-1)
	// Output:
	// CPU level preset below top: true
}
