package governor

import (
	"testing"

	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/sim"
)

func TestZTTRuns(t *testing.T) {
	p := hw.TX2()
	z := NewZTT(1)
	r := sim.NewExecutor(p, z).RunTask(models.MustBuild("resnet34"), 30)
	if r.Images != 30 || r.EnergyJ <= 0 {
		t.Fatalf("bad run: %+v", r)
	}
	if z.Name() != "zTT" {
		t.Fatal("name wrong")
	}
}

func TestZTTLearnsBelowFmax(t *testing.T) {
	// With a power-penalized reward, the agent must not settle at fmax —
	// after the learning phase most residency sits strictly below the top.
	p := hw.TX2()
	e := sim.NewExecutor(p, NewZTT(7))
	r := e.RunTask(models.MustBuild("resnet152"), 80)
	below, total := 0, 0
	for i, s := range r.Samples {
		if i < len(r.Samples)/2 { // learning phase
			continue
		}
		total++
		if s.FreqHz < p.MaxGPUFreq() {
			below++
		}
	}
	if total == 0 || float64(below)/float64(total) < 0.5 {
		t.Fatalf("zTT at fmax too often: %d/%d below", below, total)
	}
}

func TestZTTBeatsOndemandOnEnergy(t *testing.T) {
	p := hw.TX2()
	g := models.MustBuild("resnet152")
	ztt := sim.NewExecutor(p, NewZTT(3)).RunTask(g, 60)
	bim := sim.NewExecutor(p, NewOndemand()).RunTask(g, 60)
	if ztt.EnergyJ >= bim.EnergyJ {
		t.Fatalf("zTT energy %.1f >= ondemand %.1f", ztt.EnergyJ, bim.EnergyJ)
	}
}

func TestZTTLosesToPowerLens(t *testing.T) {
	// The paper's positioning: learning-based reactive DVFS still lags
	// offline preset per-block frequencies.
	p := hw.TX2()
	g := models.MustBuild("resnet152")
	n := len(g.Layers) - 1
	lvl, _ := sim.OptimalSegmentLevel(p, g, 0, n)
	plan := &FrequencyPlan{Model: g.Name, Points: map[int]int{0: lvl}}
	pl := sim.NewExecutor(p, NewPowerLens(plan)).RunTask(g, 60)
	ztt := sim.NewExecutor(p, NewZTT(3)).RunTask(g, 60)
	if pl.EE() <= ztt.EE() {
		t.Fatalf("PowerLens EE %.4f <= zTT %.4f", pl.EE(), ztt.EE())
	}
}

func TestZTTDeterministicPerSeed(t *testing.T) {
	p := hw.TX2()
	g := models.MustBuild("googlenet")
	a := sim.NewExecutor(p, NewZTT(5)).RunTask(g, 20)
	b := sim.NewExecutor(p, NewZTT(5)).RunTask(g, 20)
	if a.EnergyJ != b.EnergyJ || a.Switches != b.Switches {
		t.Fatal("same seed must reproduce the same trajectory")
	}
}

func TestZTTStateBounds(t *testing.T) {
	p := hw.TX2()
	z := NewZTT(1)
	z.Reset(p)
	for _, busy := range []float64{-0.1, 0, 0.5, 0.999, 1.0, 1.5} {
		s := z.stateOf(sim.WindowStats{GPUBusy: busy})
		if s < 0 || s >= len(z.q) {
			t.Fatalf("state %d out of bounds for busy=%v", s, busy)
		}
	}
}
