package governor

import (
	"testing"

	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/sim"
)

func TestPerformanceAndPowersavePins(t *testing.T) {
	p := hw.TX2()
	g := models.MustBuild("alexnet")

	perf := sim.NewExecutor(p, NewPerformance()).RunTask(g, 3)
	save := sim.NewExecutor(p, NewPowersave()).RunTask(g, 3)

	if perf.Switches != 0 || save.Switches != 0 {
		t.Fatal("pinned governors must not switch")
	}
	for _, s := range perf.Samples {
		if s.FreqHz != p.MaxGPUFreq() {
			t.Fatal("performance must pin fmax")
		}
	}
	for _, s := range save.Samples {
		if s.FreqHz != p.MinGPUFreq() {
			t.Fatal("powersave must pin fmin")
		}
	}
	// Sanity ordering: performance is fastest; neither is EE-optimal for a
	// compute workload (interior optimum).
	if perf.Time >= save.Time {
		t.Fatal("performance must be faster than powersave")
	}
	mid := sim.NewExecutor(p, NewStatic(6)).RunTask(g, 3)
	if mid.EE() <= perf.EE() || mid.EE() <= save.EE() {
		t.Fatalf("interior level must beat both extremes: mid %.4f perf %.4f save %.4f",
			mid.EE(), perf.EE(), save.EE())
	}
}

func TestStandardGovernorNames(t *testing.T) {
	if NewPerformance().Name() != "performance" || NewPowersave().Name() != "powersave" {
		t.Fatal("names wrong")
	}
}
