package governor

import (
	"powerlens/internal/graph"
	"powerlens/internal/hw"
	"powerlens/internal/sim"
)

// Ondemand is the built-in method (BiM): the classic utilization-threshold
// governor. When windowed GPU utilization crosses UpThreshold it jumps to
// the maximum frequency; otherwise it scales the frequency proportionally to
// utilization (targeting TargetUtil). This reproduces the behaviours the
// paper criticizes: it pegs fmax whenever the GPU is busy — wasting energy
// on memory-bound phases — and after idle gaps it responds one window late
// (the lag of Fig. 1A).
type Ondemand struct {
	UpThreshold float64 // jump-to-max utilization threshold (default 0.80)
	TargetUtil  float64 // proportional-scaling target (default 0.70)

	platform *hw.Platform
	level    int
}

// NewOndemand returns a BiM governor with the standard thresholds.
func NewOndemand() *Ondemand {
	return &Ondemand{UpThreshold: 0.80, TargetUtil: 0.70}
}

func (o *Ondemand) Name() string { return "BiM" }

// Reset implements sim.Controller. The governor boots at a mid ladder level,
// as devfreq does before its first sample.
func (o *Ondemand) Reset(p *hw.Platform) {
	o.platform = p
	o.level = p.NumGPULevels() / 2
}

// GPULevel implements sim.Controller.
func (o *Ondemand) GPULevel() int { return o.level }

// CPULevel implements sim.Controller: the CPU runs its own ondemand, which
// under load sits at the top level.
func (o *Ondemand) CPULevel() int { return len(o.platform.CPUFreqsHz) - 1 }

// BeforeLayer implements sim.Controller (reactive: no preset points).
func (o *Ondemand) BeforeLayer(*graph.Graph, int) {}

// OnWindow implements sim.Controller.
func (o *Ondemand) OnWindow(s sim.WindowStats) {
	p := o.platform
	if s.GPUBusy >= o.UpThreshold {
		o.level = p.NumGPULevels() - 1
		return
	}
	// Scale current frequency toward the target utilization.
	cur := p.GPUFreqsHz[o.level]
	want := cur * s.GPUBusy / o.TargetUtil
	o.level = p.NearestGPULevel(want)
}

var _ sim.Controller = (*Ondemand)(nil)
