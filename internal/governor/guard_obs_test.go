package governor

import (
	"strings"
	"testing"
	"time"

	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/obs"
	"powerlens/internal/sim"
)

// guardSeq extracts the names of cat="guard" events in trace order,
// optionally dropping the per-window "decision" marks.
func guardSeq(o *obs.Observer, withDecisions bool) []string {
	var names []string
	for _, ev := range o.Tracer.Events() {
		if ev.Cat != "guard" {
			continue
		}
		if !withDecisions && ev.Name == "decision" {
			continue
		}
		names = append(names, ev.Name)
	}
	return names
}

// TestGuardTraceExactSequence drives the guard window-by-window with a
// deterministic clock and asserts the exact decision → violation → fallback
// → recovery span sequence of one failover episode.
func TestGuardTraceExactSequence(t *testing.T) {
	p := hw.TX2()
	o := obs.New()
	var now time.Duration
	o.SetClock(func() time.Duration { now += time.Millisecond; return now })

	// Invalid levels for 5 windows, healthy from window 6 on. With
	// MaxStrikes=3 the guard trips on window 3 (whose own fallback pass
	// already counts toward recovery); with RecoveryWindows=2 it probes on
	// window 4 (fails — still invalid) and window 6 (succeeds — healed).
	inner := &brokenCtl{outOfRange: true, healAfter: 6}
	guard := NewGuard(inner)
	guard.MaxStrikes = 3
	guard.RecoveryWindows = 2
	guard.Obs = o
	guard.Reset(p)
	for i := 0; i < 7; i++ {
		guard.OnWindow(sim.WindowStats{GPUBusy: 0.5, AvgPowerW: 4})
	}

	want := []string{
		"decision", "violation", // window 1: strike 1
		"decision", "violation", // window 2: strike 2
		"decision", "violation", "fallback", // window 3: strike 3 trips failover
		"decision", "violation", // window 4: probe fails (still invalid), re-arm
		"decision", "violation", // window 5: still invalid, waiting out recovery
		"decision", "recovery", // window 6: probe succeeds, policy restored
		"decision", // window 7: healthy, back on the wrapped policy
	}
	got := guardSeq(o, true)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("guard trace sequence:\n got %v\nwant %v", got, want)
	}
	if guard.Stats.FallbackActivations != 1 || guard.Stats.Recoveries != 1 {
		t.Fatalf("stats = %+v", guard.Stats)
	}
}

// TestGuardTraceOrderingUnderFaults runs a full executor task under a seeded
// fault schedule and checks the trace invariants: the first violation
// precedes the first fallback, which precedes the first recovery; event
// counts match GuardStats; timestamps never decrease; and the guard's
// decision metric agrees with the executor's window metric.
func TestGuardTraceOrderingUnderFaults(t *testing.T) {
	p := hw.TX2()
	g := models.AlexNet()
	o := obs.New()
	inner := &brokenCtl{outOfRange: true, healAfter: 12}
	guard := NewGuard(inner)
	guard.RecoveryWindows = 4
	guard.Obs = o

	e := sim.NewExecutor(p, guard)
	e.Faults = hw.NewInjector(hw.FaultConfig{
		Seed:              17,
		SensorDropoutProb: 0.10, SensorNoiseFrac: 0.15,
		StuckProb: 0.15, ClampProb: 0.05,
		DelayProb: 0.25, DelayLatency: 2 * time.Millisecond,
	})
	e.Obs = o
	e.RunTask(g, 200)

	if guard.Stats.FallbackActivations == 0 || guard.Stats.Recoveries == 0 {
		t.Fatalf("scenario did not exercise a failover episode: %+v", guard.Stats)
	}

	seq := guardSeq(o, false)
	first := func(name string) int {
		for i, n := range seq {
			if n == name {
				return i
			}
		}
		return -1
	}
	v, f, r := first("violation"), first("fallback"), first("recovery")
	if v < 0 || f < 0 || r < 0 {
		t.Fatalf("missing lifecycle events in %v", seq)
	}
	if !(v < f && f < r) {
		t.Fatalf("lifecycle order violated: violation@%d fallback@%d recovery@%d", v, f, r)
	}
	count := func(name string) int {
		n := 0
		for _, s := range seq {
			if s == name {
				n++
			}
		}
		return n
	}
	if count("fallback") != guard.Stats.FallbackActivations {
		t.Fatalf("fallback events %d != stats %d", count("fallback"), guard.Stats.FallbackActivations)
	}
	if count("recovery") != guard.Stats.Recoveries {
		t.Fatalf("recovery events %d != stats %d", count("recovery"), guard.Stats.Recoveries)
	}
	if count("violation") != guard.Stats.InvalidLevels+guard.Stats.Oscillations {
		t.Fatalf("violation events %d != stats %d+%d",
			count("violation"), guard.Stats.InvalidLevels, guard.Stats.Oscillations)
	}

	// Timestamps on the guard track never decrease (simulated time).
	last := -1.0
	for _, ev := range o.Tracer.Events() {
		if ev.Cat != "guard" {
			continue
		}
		if ev.TsUS < last {
			t.Fatalf("guard timestamps regress: %v after %v", ev.TsUS, last)
		}
		last = ev.TsUS
	}

	// Cross-layer agreement: one guard decision per delivered window.
	var decisions, windows float64
	for _, fam := range o.Metrics.Snapshot() {
		switch fam.Name {
		case "governor_decisions_total":
			decisions = fam.Total()
		case "sim_windows_total":
			windows = fam.Total()
		}
	}
	if decisions == 0 || decisions != windows {
		t.Fatalf("governor_decisions_total %.0f != sim_windows_total %.0f", decisions, windows)
	}
}
