// Package governor implements the DVFS controllers compared in the paper:
//
//   - Static: a fixed frequency level (building block and sanity baseline).
//   - Ondemand: the built-in method (BiM) — the utilization-driven governor
//     shipped on both Jetson platforms.
//   - FPGG: the FPG-G baseline [Karzhaubayeva et al.] — a reactive heuristic
//     that hill-climbs GPU frequency on utilization/EDP history.
//   - FPGCG: FPG-C+G — FPGG plus CPU frequency scaling.
//   - PowerLens: the paper's controller — preset target frequencies applied
//     at per-block instrumentation points, no runtime feedback needed.
package governor

import (
	"powerlens/internal/graph"
	"powerlens/internal/hw"
	"powerlens/internal/sim"
)

// Static pins the GPU to one level and the CPU to its top level.
type Static struct {
	Level    int
	platform *hw.Platform
}

// NewStatic returns a controller pinned at the given GPU level.
func NewStatic(level int) *Static { return &Static{Level: level} }

func (s *Static) Name() string { return "static" }

// Reset implements sim.Controller.
func (s *Static) Reset(p *hw.Platform) { s.platform = p }

// GPULevel implements sim.Controller.
func (s *Static) GPULevel() int { return s.Level }

// CPULevel implements sim.Controller.
func (s *Static) CPULevel() int {
	if s.platform == nil {
		return 0
	}
	return len(s.platform.CPUFreqsHz) - 1
}

// BeforeLayer implements sim.Controller.
func (s *Static) BeforeLayer(*graph.Graph, int) {}

// OnWindow implements sim.Controller.
func (s *Static) OnWindow(sim.WindowStats) {}

var _ sim.Controller = (*Static)(nil)
