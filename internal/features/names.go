package features

import "powerlens/internal/graph"

// GlobalDimNames returns human-readable names for the GlobalDim dimensions of
// the concatenated [structural | stats] feature vector, in Vector() order.
// The drift monitor labels its per-dimension divergence scores with these.
func GlobalDimNames() []string {
	names := make([]string, 0, GlobalDim)
	names = append(names, "layers", "depth", "residual", "branches")
	for k := 0; k < graph.NumOpKinds; k++ {
		names = append(names, "opmix_"+graph.OpKind(k).String())
	}
	names = append(names,
		"flops", "params", "mem_bytes", "mean_ai", "weighted_ai",
		"frac_conv_flops", "frac_linear_flops", "frac_attn_flops",
		"frac_mem_heavy", "max_layer_share", "mean_layer_flops",
		"std_layer_flops", "tail_mem_frac", "tail_ai")
	return names
}
