package features

import "testing"

func TestGlobalDimNames(t *testing.T) {
	names := GlobalDimNames()
	if len(names) != GlobalDim {
		t.Fatalf("GlobalDimNames has %d entries, GlobalDim is %d", len(names), GlobalDim)
	}
	seen := map[string]bool{}
	for i, n := range names {
		if n == "" {
			t.Fatalf("dimension %d has empty name", i)
		}
		if seen[n] {
			t.Fatalf("duplicate dimension name %q", n)
		}
		seen[n] = true
	}
}
