package features

import (
	"math"

	"powerlens/internal/graph"
)

// Global is the coarse-grained feature set of §2.1.2's Global Feature
// Extractor, split into the two facets the clustering-hyperparameter model
// consumes at different stages (Fig. 3): macro structural features and
// aggregated statistics.
type Global struct {
	Structural []float64 // macro topology: scale, depth, residual/branching, type mix
	Stats      []float64 // aggregated arithmetic: FLOPs, params, traffic, proportions
}

// Dimensions of the two facets.
const (
	gsLayers   = iota // log1p layer count
	gsDepth           // log1p longest-path depth
	gsResidual        // log1p residual joins
	gsBranches        // log1p branching points
	gsStructScalar
)

// StructuralDim is the length of the structural facet (scalars + normalized
// operator-kind histogram).
const StructuralDim = gsStructScalar + graph.NumOpKinds

const (
	stFLOPs = iota // log1p total FLOPs
	stParams
	stMemBytes
	stMeanAI       // mean arithmetic intensity over layers
	stWeightAI     // FLOPs-weighted arithmetic intensity
	stFracConvF    // fraction of FLOPs in conv ops
	stFracLinF     // fraction of FLOPs in linear ops
	stFracAttnF    // fraction of FLOPs in attention ops
	stFracMemHeavy // fraction of layers that are memory-bound (AI below 10)
	stMaxShare     // largest single-layer FLOP share
	stMeanLayerF   // log1p mean FLOPs per layer
	stStdLayerF    // log1p stddev of FLOPs per layer
	stTailMemFrac  // fraction of memory traffic in the last 15% of layers
	stTailAI       // arithmetic intensity of that tail relative to the whole
	// StatsDim is the length of the statistics facet.
	StatsDim
)

// GlobalDim is the length of the concatenated global feature vector.
const GlobalDim = StructuralDim + StatsDim

// ExtractGlobal computes the global features of an entire graph.
func ExtractGlobal(g *graph.Graph) Global {
	return extractGlobal(g.Layers, g.Depth())
}

// ExtractBlockGlobal computes the global features of a block: the contiguous
// slice of layers [startID, endID] of g (inclusive, in layer-ID order). The
// decision model consumes these per-block vectors (Fig. 4).
func ExtractBlockGlobal(g *graph.Graph, startID, endID int) Global {
	layers := g.Layers[startID : endID+1]
	// Depth within a contiguous slice is approximated by its length; block
	// boundaries cut branch context, and what the decision model needs is
	// the block's scale, not its exact internal critical path.
	return extractGlobal(layers, len(layers))
}

func extractGlobal(layers []*graph.Layer, depth int) Global {
	s := make([]float64, StructuralDim)
	st := make([]float64, StatsDim)

	nRes, nBranch := 0, 0
	consumerCount := map[int]int{}
	for _, l := range layers {
		if l.Kind == graph.OpAdd {
			nRes++
		}
		for _, in := range l.Inputs {
			consumerCount[in]++
		}
	}
	for _, c := range consumerCount {
		if c > 1 {
			nBranch++
		}
	}
	s[gsLayers] = math.Log1p(float64(len(layers)))
	s[gsDepth] = math.Log1p(float64(depth))
	s[gsResidual] = math.Log1p(float64(nRes))
	s[gsBranches] = math.Log1p(float64(nBranch))
	if len(layers) > 0 {
		inv := 1 / float64(len(layers))
		for _, l := range layers {
			s[gsStructScalar+int(l.Kind)] += inv
		}
	}

	var totF, totP, totM float64
	var convF, linF, attnF float64
	var maxF float64
	var sumAI, sumWAI float64
	memHeavy := 0
	perLayerF := make([]float64, 0, len(layers))
	for _, l := range layers {
		f := float64(l.FLOPs())
		totF += f
		totP += float64(l.Params())
		totM += float64(l.MemBytes())
		ai := l.ArithmeticIntensity()
		sumAI += ai
		sumWAI += ai * f
		if ai < 10 {
			memHeavy++
		}
		switch l.Kind {
		case graph.OpConv2D, graph.OpPatchEmbed:
			convF += f
		case graph.OpLinear:
			linF += f
		case graph.OpAttention:
			attnF += f
		}
		if f > maxF {
			maxF = f
		}
		perLayerF = append(perLayerF, f)
	}
	st[stFLOPs] = math.Log1p(totF)
	st[stParams] = math.Log1p(totP)
	st[stMemBytes] = math.Log1p(totM)
	if n := float64(len(layers)); n > 0 {
		st[stMeanAI] = sumAI / n
		st[stFracMemHeavy] = float64(memHeavy) / n
	}
	if totF > 0 {
		st[stWeightAI] = sumWAI / totF
		st[stFracConvF] = convF / totF
		st[stFracLinF] = linF / totF
		st[stFracAttnF] = attnF / totF
		st[stMaxShare] = maxF / totF
	}
	st[stMeanLayerF] = math.Log1p(mean(perLayerF))
	st[stStdLayerF] = math.Log1p(std(perLayerF))

	// Positional aggregate: how much of the network's memory traffic (and
	// how little of its compute) sits in the trailing layers. This is the
	// signature of the heavy fully-connected tails (AlexNet, VGG) whose
	// power behaviour diverges from the body — a key signal for choosing a
	// clustering that splits them into their own power block.
	tailStart := len(layers) - len(layers)*15/100
	if tailStart >= len(layers) {
		tailStart = len(layers) - 1
	}
	var tailM, tailF float64
	for _, l := range layers[tailStart:] {
		tailM += float64(l.MemBytes())
		tailF += float64(l.FLOPs())
	}
	if totM > 0 {
		st[stTailMemFrac] = tailM / totM
	}
	if tailM > 0 && totM > 0 && totF > 0 {
		// Tail AI normalized by whole-network AI; < 1 means the tail is
		// disproportionately memory-bound.
		st[stTailAI] = (tailF / tailM) / (totF / totM)
	}
	return Global{Structural: s, Stats: st}
}

// Vector returns the concatenated [structural | stats] feature vector.
func (g Global) Vector() []float64 {
	v := make([]float64, 0, GlobalDim)
	v = append(v, g.Structural...)
	v = append(v, g.Stats...)
	return v
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func std(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	mu := mean(v)
	s := 0.0
	for _, x := range v {
		d := x - mu
		s += d * d
	}
	return math.Sqrt(s / float64(len(v)))
}
