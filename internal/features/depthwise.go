// Package features implements the paper's §2.1.2 power-sensitive feature
// extraction: the Depthwise Feature Extractor (fine-grained per-layer
// features) and the Global Feature Extractor (macro structural features plus
// aggregated statistics). The resulting vectors are the intermediate
// representation consumed by the clustering stage and the two prediction
// models.
package features

import (
	"math"

	"powerlens/internal/graph"
	"powerlens/internal/tensor"
)

// Per-layer (depthwise) feature layout. Scalar block first, then a one-hot
// operator-kind block — "operator type" is itself a power-sensitive feature.
const (
	dwFLOPs      = iota // log1p FLOPs — computational load
	dwParams            // log1p parameter count
	dwMemBytes          // log1p memory access volume
	dwIntensity         // arithmetic intensity (FLOPs/byte)
	dwInC               // log1p input channels
	dwOutC              // log1p output channels
	dwSpatial           // log1p output H·W (feature-map dimensions)
	dwKernel            // kernel size (conv/pool)
	dwStride            // stride
	dwGroupRatio        // groups/inC (1 = depthwise, 0 = dense)
	dwHeads             // attention heads
	dwEmbed             // log1p attention embedding dim
	dwIsCompute         // 1 if the op performs substantial arithmetic
	dwScalarCount
)

// DepthwiseDim is the length of one per-layer feature vector.
const DepthwiseDim = dwScalarCount + graph.NumOpKinds

// LayerVector extracts the depthwise feature vector of a single layer.
func LayerVector(l *graph.Layer) []float64 {
	v := make([]float64, DepthwiseDim)
	v[dwFLOPs] = math.Log1p(float64(l.FLOPs()))
	v[dwParams] = math.Log1p(float64(l.Params()))
	v[dwMemBytes] = math.Log1p(float64(l.MemBytes()))
	v[dwIntensity] = l.ArithmeticIntensity()
	v[dwInC] = math.Log1p(float64(l.InShape.C))
	v[dwOutC] = math.Log1p(float64(l.OutShape.C))
	v[dwSpatial] = math.Log1p(float64(l.OutShape.H * l.OutShape.W))
	v[dwKernel] = float64(l.Attrs.KernelH)
	v[dwStride] = float64(l.Attrs.StrideH)
	if l.InShape.C > 0 && l.Attrs.Groups > 0 {
		v[dwGroupRatio] = float64(l.Attrs.Groups) / float64(l.InShape.C)
	}
	v[dwHeads] = float64(l.Attrs.Heads)
	v[dwEmbed] = math.Log1p(float64(l.Attrs.EmbedDim))
	if l.Kind.IsCompute() {
		v[dwIsCompute] = 1
	}
	v[dwScalarCount+int(l.Kind)] = 1
	return v
}

// Depthwise extracts the per-layer feature matrix for all non-input layers
// of g, in layer order. The returned IDs map matrix rows back to layer IDs.
func Depthwise(g *graph.Graph) (x *tensor.Matrix, ids []int) {
	rows := make([][]float64, 0, len(g.Layers))
	for _, l := range g.Layers {
		if l.Kind == graph.OpInput {
			continue
		}
		rows = append(rows, LayerVector(l))
		ids = append(ids, l.ID)
	}
	return tensor.FromRows(rows), ids
}

// ScaledDepthwise extracts the depthwise matrix and standardizes each column
// (Algorithm 1 requires scaled features so no raw magnitude dominates before
// the covariance-aware Mahalanobis distance is applied).
func ScaledDepthwise(g *graph.Graph) (x *tensor.Matrix, ids []int) {
	raw, ids := Depthwise(g)
	scaler := tensor.FitZScore(raw)
	return scaler.Transform(raw), ids
}
