package features

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"powerlens/internal/graph"
	"powerlens/internal/models"
)

func TestLayerVectorDim(t *testing.T) {
	g := graph.New("t")
	in := g.Input(3, 224, 224)
	c := g.Conv(in, 64, 7, 2, 3, 1)
	v := LayerVector(c)
	if len(v) != DepthwiseDim {
		t.Fatalf("dim = %d, want %d", len(v), DepthwiseDim)
	}
}

func TestLayerVectorEncodesConvAttrs(t *testing.T) {
	g := graph.New("t")
	in := g.Input(3, 224, 224)
	c := g.Conv(in, 64, 7, 2, 3, 1)
	v := LayerVector(c)
	if v[dwKernel] != 7 || v[dwStride] != 2 {
		t.Fatalf("kernel/stride = %v/%v", v[dwKernel], v[dwStride])
	}
	if v[dwIsCompute] != 1 {
		t.Fatal("conv must be marked compute")
	}
	if v[dwScalarCount+int(graph.OpConv2D)] != 1 {
		t.Fatal("one-hot kind missing")
	}
	// Exactly one one-hot position set.
	hot := 0
	for i := dwScalarCount; i < DepthwiseDim; i++ {
		if v[i] != 0 {
			hot++
		}
	}
	if hot != 1 {
		t.Fatalf("one-hot count = %d", hot)
	}
}

func TestLayerVectorEncodesAttention(t *testing.T) {
	g := graph.New("t")
	in := g.Input(768, 197, 1)
	a := g.Attention(in, 12)
	v := LayerVector(a)
	if v[dwHeads] != 12 {
		t.Fatalf("heads = %v", v[dwHeads])
	}
	if math.Abs(v[dwEmbed]-math.Log1p(768)) > 1e-12 {
		t.Fatalf("embed = %v", v[dwEmbed])
	}
}

func TestDepthwiseSkipsInput(t *testing.T) {
	g := models.AlexNet()
	x, ids := Depthwise(g)
	if x.Rows != len(g.Layers)-1 {
		t.Fatalf("rows = %d, want %d", x.Rows, len(g.Layers)-1)
	}
	for _, id := range ids {
		if g.Layer(id).Kind == graph.OpInput {
			t.Fatal("input layer included")
		}
	}
	if len(ids) != x.Rows {
		t.Fatal("ids/rows mismatch")
	}
}

func TestScaledDepthwiseIsStandardized(t *testing.T) {
	g := models.ResNet34()
	x, _ := ScaledDepthwise(g)
	// Every non-constant column should have ~zero mean.
	for j := 0; j < x.Cols; j++ {
		sum := 0.0
		for i := 0; i < x.Rows; i++ {
			sum += x.At(i, j)
		}
		if m := sum / float64(x.Rows); math.Abs(m) > 1e-9 {
			t.Fatalf("col %d mean = %g", j, m)
		}
	}
	for _, v := range x.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("scaled features contain NaN/Inf")
		}
	}
}

func TestGlobalDims(t *testing.T) {
	g := models.GoogLeNet()
	gl := ExtractGlobal(g)
	if len(gl.Structural) != StructuralDim {
		t.Fatalf("structural dim = %d, want %d", len(gl.Structural), StructuralDim)
	}
	if len(gl.Stats) != StatsDim {
		t.Fatalf("stats dim = %d, want %d", len(gl.Stats), StatsDim)
	}
	if len(gl.Vector()) != GlobalDim {
		t.Fatalf("vector dim = %d, want %d", len(gl.Vector()), GlobalDim)
	}
}

func TestGlobalStructuralSignals(t *testing.T) {
	r34 := ExtractGlobal(models.ResNet34())
	vit := ExtractGlobal(models.ViTBase16())
	// ResNet has residuals; both do (ViT uses Add too), but ViT must show
	// attention mass and ResNet none.
	if vit.Stats[stFracAttnF] <= 0 {
		t.Fatal("ViT attention FLOP fraction must be positive")
	}
	if r34.Stats[stFracAttnF] != 0 {
		t.Fatal("ResNet attention FLOP fraction must be zero")
	}
	if r34.Stats[stFracConvF] < 0.8 {
		t.Fatalf("ResNet conv FLOP fraction = %v, want > 0.8", r34.Stats[stFracConvF])
	}
	if r34.Structural[gsResidual] <= 0 {
		t.Fatal("ResNet must report residual joins")
	}
}

func TestGlobalHistogramNormalized(t *testing.T) {
	gl := ExtractGlobal(models.VGG19())
	sum := 0.0
	for i := gsStructScalar; i < StructuralDim; i++ {
		sum += gl.Structural[i]
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("kind histogram sums to %v, want 1", sum)
	}
}

func TestBlockGlobalSubsetsWhole(t *testing.T) {
	g := models.ResNet34()
	whole := ExtractGlobal(g)
	half := ExtractBlockGlobal(g, 0, len(g.Layers)/2)
	// A block's total FLOPs (log scale) must not exceed the whole network's.
	if half.Stats[stFLOPs] > whole.Stats[stFLOPs] {
		t.Fatal("block FLOPs exceed whole-network FLOPs")
	}
	if half.Structural[gsLayers] >= whole.Structural[gsLayers] {
		t.Fatal("block layer count must be below whole-network count")
	}
}

func TestFractionsSumBelowOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := models.RandomDNN(rng, models.DefaultGeneratorConfig(), 0)
		gl := ExtractGlobal(g)
		fr := gl.Stats[stFracConvF] + gl.Stats[stFracLinF] + gl.Stats[stFracAttnF]
		if fr < 0 || fr > 1+1e-9 {
			return false
		}
		if gl.Stats[stMaxShare] < 0 || gl.Stats[stMaxShare] > 1+1e-9 {
			return false
		}
		for _, v := range gl.Vector() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryHeavyVsComputeHeavyDiffer(t *testing.T) {
	// Feature vectors must separate a compute-intense conv from a
	// memory-bound elementwise op — the signal clustering relies on.
	g := graph.New("t")
	in := g.Input(256, 56, 56)
	conv := g.Conv(in, 256, 3, 1, 1, 1)
	add := g.Add(conv, in)
	vc, va := LayerVector(conv), LayerVector(add)
	if vc[dwIntensity] <= va[dwIntensity] {
		t.Fatal("conv must have higher arithmetic intensity than add")
	}
	if vc[dwIsCompute] != 1 || va[dwIsCompute] != 0 {
		t.Fatal("compute flags wrong")
	}
}
