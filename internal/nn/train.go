package nn

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"powerlens/internal/tensor"
)

// Sample is one labeled training example with the two input facets.
type Sample struct {
	Structural []float64
	Stats      []float64
	Label      int
}

// Optimizer selects the update rule.
type Optimizer int

const (
	// OptAdam is Adam with decoupled weight decay (AdamW); the default.
	OptAdam Optimizer = iota
	// OptSGD is SGD with momentum and classic L2 decay.
	OptSGD
)

// Schedule selects the learning-rate schedule.
type Schedule int

const (
	// SchedConst keeps LR fixed; the default.
	SchedConst Schedule = iota
	// SchedCosine anneals LR to zero over Epochs with a half cosine.
	SchedCosine
	// SchedStep divides LR by 10 at 60% and 85% of Epochs.
	SchedStep
)

// TrainConfig controls the optimizer loop.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Seed      int64
	Patience  int // early-stop after this many epochs without val improvement (0 = off)

	Optimizer   Optimizer
	Momentum    float64 // SGD momentum (default 0.9 when 0 and OptSGD)
	WeightDecay float64
	Schedule    Schedule

	// Workers caps the minibatch gradient workers (0 = GOMAXPROCS). The
	// update sequence is bit-identical for any worker count (see
	// parallel.go), so this is purely a throughput knob.
	Workers int
}

// DefaultTrainConfig matches the scale of the paper's models.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 60, BatchSize: 32, LR: 1e-3, Seed: 1, Patience: 10}
}

// lrAt returns the scheduled learning rate for a 0-based epoch.
func (cfg TrainConfig) lrAt(epoch int) float64 {
	switch cfg.Schedule {
	case SchedCosine:
		if cfg.Epochs <= 1 {
			return cfg.LR
		}
		return cfg.LR * 0.5 * (1 + math.Cos(math.Pi*float64(epoch)/float64(cfg.Epochs-1)))
	case SchedStep:
		lr := cfg.LR
		if epoch >= cfg.Epochs*60/100 {
			lr /= 10
		}
		if epoch >= cfg.Epochs*85/100 {
			lr /= 10
		}
		return lr
	default:
		return cfg.LR
	}
}

// History records per-epoch training progress.
type History struct {
	TrainLoss []float64
	ValAcc    []float64
	BestEpoch int
}

// Train runs minibatch Adam over train, tracking accuracy on val. It returns
// the history; the network is left with its final weights.
//
// Gradient computation is data-parallel across cfg.Workers (default
// GOMAXPROCS) with a fixed-order reduction, so the weight trajectory and
// history are bit-identical to the single-threaded loop for a given seed —
// see parallel.go for the determinism argument.
func Train(n *TwoStageNet, train, val []Sample, cfg TrainConfig) History {
	h, _, err := TrainResumable(n, train, val, cfg, nil)
	if err != nil {
		// Unreachable: without a checkpoint there are no I/O paths.
		panic(err)
	}
	return h
}

// TrainResumable is Train with optional crash safety: with a non-nil ck the
// full optimizer state (weights, Adam/SGD moments, RNG cursor, history,
// early-stop counters) is checkpointed at epoch boundaries and restored on
// the next call, so a resumed run reproduces the uninterrupted loss history
// and final weights bit for bit. The RNG "cursor" is the completed-epoch
// count: the epoch permutation stream is replayed from the seed, which is
// exact because each epoch consumes exactly one Shuffle.
func TrainResumable(n *TwoStageNet, train, val []Sample, cfg TrainConfig, ck *TrainCheckpoint) (History, TrainStatus, error) {
	status := TrainStatus{}
	if cfg.Optimizer == OptSGD && cfg.Momentum == 0 {
		cfg.Momentum = 0.9
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.BatchSize {
		workers = cfg.BatchSize
	}
	if workers < 1 {
		workers = 1
	}

	layers := n.layers()
	h := History{BestEpoch: -1}
	bestVal := -1.0
	stepNum := 0
	sinceBest := 0
	startEpoch := 0
	var digest string
	if ck != nil {
		if err := ck.validate(); err != nil {
			return h, status, err
		}
		digest = trainDigest(n, train, val, cfg)
		st, err := ck.load(digest, &status)
		if err != nil {
			return h, status, err
		}
		if st != nil {
			if err := restoreTrainState(n, layers, st, &h, &bestVal, &stepNum, &sinceBest); err != nil {
				return h, status, err
			}
			status.ResumedEpochs = st.Epoch
			if st.Done {
				return h, status, nil
			}
			startEpoch = st.Epoch
		}
	}

	slotCount := cfg.BatchSize
	if slotCount > len(train) {
		slotCount = len(train)
	}
	slots := make([]*gradSlot, slotCount)
	for i := range slots {
		slots[i] = newGradSlot(layers)
	}
	scratches := make([]*passScratch, workers)
	for i := range scratches {
		scratches[i] = newPassScratch(n, layers)
	}
	chunks := buildReduceChunks(layers)

	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := make([]int, len(train))
	for i := range idx {
		idx[i] = i
	}
	// Fast-forward the permutation stream over the completed epochs.
	for e := 0; e < startEpoch; e++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	}

	save := func(epochsDone int, done bool) error {
		if ck == nil {
			return nil
		}
		return ck.save(captureTrainState(layers, digest, epochsDone, stepNum, bestVal, sinceBest, done, h))
	}

	for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
		if ck != nil && drainRequested(ck.Stop) {
			if err := save(epoch, false); err != nil {
				return h, status, err
			}
			status.Drained = true
			return h, status, nil
		}
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		totalLoss := 0.0
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			batch := idx[start:end]
			live := slots[:len(batch)]

			// Gradient phase: shard the batch across workers; each sample's
			// gradients land in its own slot.
			if workers == 1 {
				for si, ti := range batch {
					n.sampleGrad(layers, train[ti], scratches[0], live[si])
				}
			} else {
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					lo, hi := w*len(batch)/workers, (w+1)*len(batch)/workers
					if lo == hi {
						continue
					}
					wg.Add(1)
					go func(w, lo, hi int) {
						defer wg.Done()
						for si := lo; si < hi; si++ {
							n.sampleGrad(layers, train[batch[si]], scratches[w], live[si])
						}
					}(w, lo, hi)
				}
				wg.Wait()
			}

			// Reduction phase: fold slots into the layer accumulators in
			// sample order, parallel across parameter chunks.
			if workers == 1 {
				for _, c := range chunks {
					applyChunk(layers, live, c)
				}
			} else {
				var next atomic.Int64
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for {
							c := int(next.Add(1)) - 1
							if c >= len(chunks) {
								return
							}
							applyChunk(layers, live, chunks[c])
						}
					}()
				}
				wg.Wait()
			}

			for _, s := range live {
				totalLoss += s.loss
			}
			stepNum++
			n.step(cfg, cfg.lrAt(epoch), len(batch), stepNum)
		}
		h.TrainLoss = append(h.TrainLoss, totalLoss/float64(len(train)))

		va := Accuracy(n, val)
		h.ValAcc = append(h.ValAcc, va)
		if va > bestVal {
			bestVal = va
			h.BestEpoch = epoch
			sinceBest = 0
		} else {
			sinceBest++
			if cfg.Patience > 0 && sinceBest >= cfg.Patience {
				break
			}
		}
		if ck != nil && (epoch+1)%ck.every() == 0 && epoch+1 < cfg.Epochs {
			if err := save(epoch+1, false); err != nil {
				return h, status, err
			}
		}
	}
	// Completed (or early-stopped): persist the final state with Done set so
	// a later resume restores weights and history instantly.
	if err := save(len(h.TrainLoss), true); err != nil {
		return h, status, err
	}
	return h, status, nil
}

// Accuracy returns the top-1 accuracy of n on samples (0 for empty input).
func Accuracy(n *TwoStageNet, samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		if n.Predict(s.Structural, s.Stats) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

// MeanLevelError returns the mean absolute class distance between
// predictions and labels — the paper's observation that decision-model
// misses land "only one or two levels away" from the optimum.
func MeanLevelError(n *TwoStageNet, samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	total := 0.0
	for _, s := range samples {
		d := n.Predict(s.Structural, s.Stats) - s.Label
		if d < 0 {
			d = -d
		}
		total += float64(d)
	}
	return total / float64(len(samples))
}

// Split shuffles samples (seeded) and splits them into train/val/test with
// the paper's 80/10/10 ratio.
func Split(samples []Sample, seed int64) (train, val, test []Sample) {
	rng := rand.New(rand.NewSource(seed))
	shuffled := make([]Sample, len(samples))
	copy(shuffled, samples)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	n := len(shuffled)
	nTrain := n * 8 / 10
	nVal := n / 10
	return shuffled[:nTrain], shuffled[nTrain : nTrain+nVal], shuffled[nTrain+nVal:]
}

// FacetScaler standardizes both facets of a sample set; it is fitted on
// training data and applied at deployment (stored alongside the model).
type FacetScaler struct {
	Structural *tensor.ZScoreScaler
	Stats      *tensor.ZScoreScaler
}

// FitFacetScaler learns per-facet standardization from samples.
func FitFacetScaler(samples []Sample) *FacetScaler {
	sRows := make([][]float64, len(samples))
	tRows := make([][]float64, len(samples))
	for i, s := range samples {
		sRows[i] = s.Structural
		tRows[i] = s.Stats
	}
	return &FacetScaler{
		Structural: tensor.FitZScore(tensor.FromRows(sRows)),
		Stats:      tensor.FitZScore(tensor.FromRows(tRows)),
	}
}

// Apply returns a standardized copy of the samples.
func (fs *FacetScaler) Apply(samples []Sample) []Sample {
	out := make([]Sample, len(samples))
	for i, s := range samples {
		out[i] = Sample{
			Structural: fs.ApplyStructural(s.Structural),
			Stats:      fs.ApplyStats(s.Stats),
			Label:      s.Label,
		}
	}
	return out
}

// ApplyStructural standardizes one structural vector (copy).
func (fs *FacetScaler) ApplyStructural(v []float64) []float64 {
	c := append([]float64(nil), v...)
	fs.Structural.TransformRow(c)
	return c
}

// ApplyStats standardizes one stats vector (copy).
func (fs *FacetScaler) ApplyStats(v []float64) []float64 {
	c := append([]float64(nil), v...)
	fs.Stats.TransformRow(c)
	return c
}
