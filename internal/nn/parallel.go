package nn

import "math"

// This file implements the data-parallel minibatch engine behind Train.
//
// Parallelizing SGD usually changes results: summing shard-level partial
// gradients reassociates floating-point addition, so the parallel run drifts
// from the serial one. Here determinism is a hard requirement — dataset
// goldens and trainer histories must not move — so the engine keeps every
// sample's gradient in its own slot and reduces slots in sample order:
//
//  1. Gradient phase: the minibatch is sharded across workers; each worker
//     runs forward+backward per sample with private activation scratch,
//     writing the sample's gradients into its slot. Weights are read-only.
//  2. Reduction phase: the flat parameter space is cut into chunks; workers
//     claim chunks and, per element, add the per-sample gradients in sample
//     index order — the exact addition sequence the serial loop performs.
//
// Every float operation therefore matches the single-threaded loop bit for
// bit, for any worker count; only the scheduling differs.

// gradSlot holds one sample's gradients (flat per layer) and its loss.
type gradSlot struct {
	dW   [][]float64
	dB   [][]float64
	loss float64
}

func newGradSlot(layers []*DenseLayer) *gradSlot {
	s := &gradSlot{
		dW: make([][]float64, len(layers)),
		dB: make([][]float64, len(layers)),
	}
	for li, l := range layers {
		s.dW[li] = make([]float64, len(l.W.Data))
		s.dB[li] = make([]float64, len(l.B))
	}
	return s
}

// passScratch holds one worker's forward/backward buffers, sized once per
// Train call and reused for every sample the worker processes.
type passScratch struct {
	preacts [][]float64 // per layer, length = out dim
	outs    [][]float64 // per layer, length = out dim
	gradIns [][]float64 // per layer, length = in dim
	ins     [][]float64 // per-layer input alias, recorded during forward
	concat  []float64   // mid-network [hidden | stats] injection buffer
	probs   []float64
	logitsG []float64
}

func newPassScratch(n *TwoStageNet, layers []*DenseLayer) *passScratch {
	ps := &passScratch{
		preacts: make([][]float64, len(layers)),
		outs:    make([][]float64, len(layers)),
		gradIns: make([][]float64, len(layers)),
		ins:     make([][]float64, len(layers)),
		probs:   make([]float64, n.NumClasses),
		logitsG: make([]float64, n.NumClasses),
	}
	for li, l := range layers {
		ps.preacts[li] = make([]float64, l.W.Rows)
		ps.outs[li] = make([]float64, l.W.Rows)
		ps.gradIns[li] = make([]float64, l.W.Cols)
	}
	ps.concat = make([]float64, layers[len(n.Front)].W.Cols)
	return ps
}

// forwardScratch mirrors DenseLayer.Forward without touching layer state:
// same matvec order, same bias adds, same ReLU, into caller buffers.
func forwardScratch(l *DenseLayer, x, preact, out []float64) {
	l.W.MulVecInto(x, preact)
	for i := range preact {
		preact[i] += l.B[i]
	}
	if !l.ReLU {
		copy(out, preact)
		return
	}
	for i, v := range preact {
		if v > 0 {
			out[i] = v
		} else {
			out[i] = 0
		}
	}
}

// softmaxInto mirrors Softmax into a caller buffer.
func softmaxInto(logits, out []float64) {
	maxV := math.Inf(-1)
	for _, v := range logits {
		if v > maxV {
			maxV = v
		}
	}
	sum := 0.0
	for i, v := range logits {
		out[i] = math.Exp(v - maxV)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
}

// backwardScratch mirrors DenseLayer.Backward writing the sample's
// gradients into dW/dB (set semantics — the slot's previous contents are
// fully overwritten) and the input gradient into gradIn. g is mutated in
// place (ReLU masking), as its buffer is dead after this layer.
func backwardScratch(l *DenseLayer, g, in, preact, dW, dB, gradIn []float64) []float64 {
	if l.ReLU {
		for i := range g {
			if preact[i] <= 0 {
				g[i] = 0
			}
		}
	}
	cols := l.W.Cols
	for o, gv := range g {
		dB[o] = gv
		row := dW[o*cols : (o+1)*cols]
		if gv == 0 {
			for i := range row {
				row[i] = 0
			}
			continue
		}
		for i, xv := range in {
			row[i] = gv * xv
		}
	}
	for i := range gradIn {
		gradIn[i] = 0
	}
	for o, gv := range g {
		if gv == 0 {
			continue
		}
		row := l.W.Row(o)
		for i, wv := range row {
			gradIn[i] += gv * wv
		}
	}
	return gradIn
}

// sampleGrad computes one sample's loss and gradients into slot, using only
// read access to the network weights. The arithmetic replays
// TwoStageNet.backward operation for operation.
func (n *TwoStageNet) sampleGrad(layers []*DenseLayer, s Sample, ps *passScratch, slot *gradSlot) {
	frontLen := len(n.Front)

	x := s.Structural
	for li := 0; li < frontLen; li++ {
		ps.ins[li] = x
		forwardScratch(layers[li], x, ps.preacts[li], ps.outs[li])
		x = ps.outs[li]
	}
	k := copy(ps.concat, x)
	copy(ps.concat[k:], s.Stats)
	x = ps.concat
	for li := frontLen; li < len(layers); li++ {
		ps.ins[li] = x
		forwardScratch(layers[li], x, ps.preacts[li], ps.outs[li])
		x = ps.outs[li]
	}
	logits := x

	softmaxInto(logits, ps.probs)
	slot.loss = CrossEntropy(ps.probs, s.Label)

	g := ps.logitsG
	copy(g, ps.probs)
	g[s.Label] -= 1

	frontWidth := len(ps.concat) - n.StatsDim
	for li := len(layers) - 1; li >= 0; li-- {
		g = backwardScratch(layers[li], g, ps.ins[li], ps.preacts[li], slot.dW[li], slot.dB[li], ps.gradIns[li])
		if li == frontLen {
			// The stats facet's gradient terminates at the injection point.
			g = g[:frontWidth]
		}
	}
}

// reduceChunk is one contiguous range of a layer's flat parameters claimed
// by a reduction worker.
type reduceChunk struct {
	layer  int
	lo, hi int
	bias   bool
}

// buildReduceChunks cuts the parameter space into ~fixed-size ranges so the
// reduction parallelizes even when one layer dominates the parameter count.
func buildReduceChunks(layers []*DenseLayer) []reduceChunk {
	const chunkElems = 4096
	var chunks []reduceChunk
	for li, l := range layers {
		for lo := 0; lo < len(l.W.Data); lo += chunkElems {
			hi := lo + chunkElems
			if hi > len(l.W.Data) {
				hi = len(l.W.Data)
			}
			chunks = append(chunks, reduceChunk{layer: li, lo: lo, hi: hi})
		}
		chunks = append(chunks, reduceChunk{layer: li, lo: 0, hi: len(l.B), bias: true})
	}
	return chunks
}

// applyChunk folds the per-sample gradients of one parameter range into the
// layer accumulators. Per element the additions run in sample index order —
// the serial loop's exact addition sequence.
func applyChunk(layers []*DenseLayer, slots []*gradSlot, c reduceChunk) {
	l := layers[c.layer]
	if c.bias {
		dst := l.dB[c.lo:c.hi]
		for _, s := range slots {
			src := s.dB[c.layer][c.lo:c.hi]
			for k, v := range src {
				dst[k] += v
			}
		}
		return
	}
	dst := l.dW.Data[c.lo:c.hi]
	for _, s := range slots {
		src := s.dW[c.layer][c.lo:c.hi]
		for k, v := range src {
			dst[k] += v
		}
	}
}
