// Package nn implements the from-scratch neural networks behind PowerLens's
// two prediction models: the clustering hyperparameter prediction model
// (Fig. 3) and the target frequency decision model (Fig. 4). Both are
// two-stage MLP classifiers — macro structural features enter at the first
// stage, aggregated statistics are injected mid-network — trained with Adam
// on softmax cross-entropy. Everything is deterministic given a seed.
package nn

import (
	"math"
	"math/rand"

	"powerlens/internal/tensor"
)

// DenseLayer is a fully connected layer with optional ReLU, holding its
// Adam optimizer state. Weights use He initialization.
type DenseLayer struct {
	W    *tensor.Matrix // out×in
	B    []float64
	ReLU bool

	// Gradient accumulators.
	dW *tensor.Matrix
	dB []float64

	// Adam moments.
	mW, vW *tensor.Matrix
	mB, vB []float64

	// Forward caches (single-sample training loop).
	in     []float64
	preact []float64
}

// NewDenseLayer returns an initialized in→out layer.
func NewDenseLayer(in, out int, relu bool, rng *rand.Rand) *DenseLayer {
	l := &DenseLayer{
		W: tensor.NewMatrix(out, in), B: make([]float64, out), ReLU: relu,
		dW: tensor.NewMatrix(out, in), dB: make([]float64, out),
		mW: tensor.NewMatrix(out, in), vW: tensor.NewMatrix(out, in),
		mB: make([]float64, out), vB: make([]float64, out),
	}
	scale := math.Sqrt(2.0 / float64(in))
	for i := range l.W.Data {
		l.W.Data[i] = rng.NormFloat64() * scale
	}
	return l
}

// Forward computes the layer output, caching activations for Backward.
func (l *DenseLayer) Forward(x []float64) []float64 {
	l.in = x
	z := l.W.MulVec(x)
	for i := range z {
		z[i] += l.B[i]
	}
	l.preact = z
	if !l.ReLU {
		out := make([]float64, len(z))
		copy(out, z)
		return out
	}
	out := make([]float64, len(z))
	for i, v := range z {
		if v > 0 {
			out[i] = v
		}
	}
	return out
}

// Backward accumulates parameter gradients for the cached forward pass and
// returns the gradient w.r.t. the layer input.
func (l *DenseLayer) Backward(gradOut []float64) []float64 {
	g := make([]float64, len(gradOut))
	copy(g, gradOut)
	if l.ReLU {
		for i := range g {
			if l.preact[i] <= 0 {
				g[i] = 0
			}
		}
	}
	for o, gv := range g {
		if gv == 0 {
			continue
		}
		l.dB[o] += gv
		row := l.dW.Row(o)
		for i, xv := range l.in {
			row[i] += gv * xv
		}
	}
	gradIn := make([]float64, l.W.Cols)
	for o, gv := range g {
		if gv == 0 {
			continue
		}
		row := l.W.Row(o)
		for i, wv := range row {
			gradIn[i] += gv * wv
		}
	}
	return gradIn
}

// adamStep applies one Adam update with the accumulated gradients (divided
// by batchSize) and zeroes the accumulators. step is the 1-based update
// count used for bias correction. weightDecay applies decoupled L2 (AdamW).
func (l *DenseLayer) adamStep(lr float64, batchSize, step int, weightDecay float64) {
	const (
		beta1 = 0.9
		beta2 = 0.999
		eps   = 1e-8
	)
	inv := 1 / float64(batchSize)
	bc1 := 1 - math.Pow(beta1, float64(step))
	bc2 := 1 - math.Pow(beta2, float64(step))
	for i := range l.W.Data {
		g := l.dW.Data[i] * inv
		l.mW.Data[i] = beta1*l.mW.Data[i] + (1-beta1)*g
		l.vW.Data[i] = beta2*l.vW.Data[i] + (1-beta2)*g*g
		l.W.Data[i] -= lr * ((l.mW.Data[i]/bc1)/(math.Sqrt(l.vW.Data[i]/bc2)+eps) + weightDecay*l.W.Data[i])
		l.dW.Data[i] = 0
	}
	for i := range l.B {
		g := l.dB[i] * inv
		l.mB[i] = beta1*l.mB[i] + (1-beta1)*g
		l.vB[i] = beta2*l.vB[i] + (1-beta2)*g*g
		l.B[i] -= lr * (l.mB[i] / bc1) / (math.Sqrt(l.vB[i]/bc2) + eps)
		l.dB[i] = 0
	}
}

// sgdStep applies one SGD-with-momentum update, reusing mW/mB as velocity
// buffers. weightDecay applies classic L2 regularization.
func (l *DenseLayer) sgdStep(lr, momentum float64, batchSize int, weightDecay float64) {
	inv := 1 / float64(batchSize)
	for i := range l.W.Data {
		g := l.dW.Data[i]*inv + weightDecay*l.W.Data[i]
		l.mW.Data[i] = momentum*l.mW.Data[i] + g
		l.W.Data[i] -= lr * l.mW.Data[i]
		l.dW.Data[i] = 0
	}
	for i := range l.B {
		g := l.dB[i] * inv
		l.mB[i] = momentum*l.mB[i] + g
		l.B[i] -= lr * l.mB[i]
		l.dB[i] = 0
	}
}

// WeightNorm returns the L2 norm of the layer's weight matrix (used by
// regularization tests and model summaries).
func (l *DenseLayer) WeightNorm() float64 {
	s := 0.0
	for _, w := range l.W.Data {
		s += w * w
	}
	return math.Sqrt(s)
}

// Softmax returns the softmax of logits (numerically stable).
func Softmax(logits []float64) []float64 {
	maxV := math.Inf(-1)
	for _, v := range logits {
		if v > maxV {
			maxV = v
		}
	}
	out := make([]float64, len(logits))
	sum := 0.0
	for i, v := range logits {
		out[i] = math.Exp(v - maxV)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// CrossEntropy returns -log p[label], clamped away from Inf.
func CrossEntropy(probs []float64, label int) float64 {
	p := probs[label]
	if p < 1e-12 {
		p = 1e-12
	}
	return -math.Log(p)
}
