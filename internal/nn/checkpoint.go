package nn

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"

	"powerlens/internal/checkpoint"
)

// trainStateSchema versions the training-checkpoint payload inside the
// generic shard container (which has its own schema for the framing).
const trainStateSchema = 1

// ErrCheckpointMismatch marks a structurally valid checkpoint written by a
// different training run (other config, network shape, or data). Resuming it
// would splice two unrelated trajectories, so it is a hard error rather than
// a silent restart.
var ErrCheckpointMismatch = errors.New("nn: checkpoint belongs to a different training run")

// TrainCheckpoint configures crash safety for TrainResumable.
type TrainCheckpoint struct {
	// Dir receives the state shard; required.
	Dir *checkpoint.Dir
	// Name distinguishes multiple models sharing one directory (the state
	// file is <Name>.ckpt); required, no path separators.
	Name string
	// Every is the checkpoint cadence in epochs (default 1).
	Every int
	// Stop, when closed, requests a graceful drain: the in-flight epoch
	// finishes, state is saved, and TrainResumable returns with
	// TrainStatus.Drained set.
	Stop <-chan struct{}
}

// TrainStatus reports how a TrainResumable call interacted with its
// checkpoint.
type TrainStatus struct {
	// ResumedEpochs is how many completed epochs were restored from the
	// checkpoint (0 on a fresh start).
	ResumedEpochs int
	// Drained is true when training stopped early on Stop; the returned
	// history covers only the completed epochs and the checkpoint allows an
	// exact resume.
	Drained bool
	// Quarantined is true when an existing checkpoint failed verification
	// and was quarantined; training restarted from scratch.
	Quarantined bool
}

func (ck *TrainCheckpoint) validate() error {
	if ck.Dir == nil {
		return errors.New("nn: TrainCheckpoint.Dir is nil")
	}
	if ck.Name == "" {
		return errors.New("nn: TrainCheckpoint.Name is empty")
	}
	return nil
}

func (ck *TrainCheckpoint) file() string { return ck.Name + ".ckpt" }

func (ck *TrainCheckpoint) every() int {
	if ck.Every <= 0 {
		return 1
	}
	return ck.Every
}

// trainState is the serialized optimizer state. All float64 slices are
// packed as raw IEEE-754 bits (packFloats) so the round trip is bit-exact
// regardless of JSON float formatting; scalar floats survive Go's JSON
// shortest-representation encoding exactly as well.
type trainState struct {
	Schema    int          `json:"schema"`
	Digest    string       `json:"digest"`
	Epoch     int          `json:"epoch"` // completed epochs
	StepNum   int          `json:"stepNum"`
	BestVal   float64      `json:"bestVal"`
	SinceBest int          `json:"sinceBest"`
	BestEpoch int          `json:"bestEpoch"`
	Done      bool         `json:"done"`
	TrainLoss []byte       `json:"trainLoss,omitempty"`
	ValAcc    []byte       `json:"valAcc,omitempty"`
	Layers    []layerState `json:"layers"`
}

// layerState holds one layer's weights and optimizer moments. Gradient
// accumulators are always zero at epoch boundaries (every step zeroes them),
// so they are not saved.
type layerState struct {
	W  []byte `json:"w"`
	B  []byte `json:"b"`
	MW []byte `json:"mw"`
	VW []byte `json:"vw"`
	MB []byte `json:"mb"`
	VB []byte `json:"vb"`
}

// packFloats encodes floats as little-endian IEEE-754 bits, bit-exact for
// every value including NaNs and signed zeros.
func packFloats(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(f))
	}
	return out
}

func unpackFloats(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("nn: packed float block of %d bytes", len(b))
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

// trainDigest fingerprints everything that determines the training
// trajectory: the config (minus Workers, which is a pure throughput knob),
// the network architecture, and the exact bits of both sample sets. A resume
// whose digest differs is rejected with ErrCheckpointMismatch.
func trainDigest(n *TwoStageNet, train, val []Sample, cfg TrainConfig) string {
	h := fnv.New64a()
	var buf [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wf := func(f float64) { wu(math.Float64bits(f)) }
	wu(uint64(cfg.Epochs))
	wu(uint64(cfg.BatchSize))
	wf(cfg.LR)
	wu(uint64(cfg.Seed))
	wu(uint64(cfg.Patience))
	wu(uint64(cfg.Optimizer))
	wf(cfg.Momentum)
	wf(cfg.WeightDecay)
	wu(uint64(cfg.Schedule))
	wu(uint64(n.StructDim))
	wu(uint64(n.StatsDim))
	wu(uint64(n.NumClasses))
	for _, l := range n.layers() {
		wu(uint64(l.W.Rows))
		wu(uint64(l.W.Cols))
		if l.ReLU {
			wu(1)
		} else {
			wu(0)
		}
	}
	for _, set := range [][]Sample{train, val} {
		wu(uint64(len(set)))
		for _, s := range set {
			wu(uint64(s.Label))
			wu(uint64(len(s.Structural)))
			for _, v := range s.Structural {
				wf(v)
			}
			wu(uint64(len(s.Stats)))
			for _, v := range s.Stats {
				wf(v)
			}
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// load reads and verifies the state shard. A missing shard returns (nil,
// nil); a corrupt one is quarantined (by Dir.Read or explicitly for semantic
// failures) and reported as a fresh start via status.Quarantined; a valid
// shard from a different run is ErrCheckpointMismatch.
func (ck *TrainCheckpoint) load(digest string, status *TrainStatus) (*trainState, error) {
	data, err := ck.Dir.Read(ck.file())
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		if errors.Is(err, checkpoint.ErrCorrupt) || errors.Is(err, checkpoint.ErrTruncated) ||
			errors.Is(err, checkpoint.ErrSchema) {
			status.Quarantined = true
			return nil, nil
		}
		return nil, err
	}
	var st trainState
	if uerr := json.Unmarshal(data, &st); uerr != nil || st.Schema != trainStateSchema {
		ck.Dir.Quarantine(ck.file(), "semantic")
		status.Quarantined = true
		return nil, nil
	}
	if st.Digest != digest {
		return nil, fmt.Errorf("%w: checkpoint %s records digest %s, this run is %s; use a fresh directory or name",
			ErrCheckpointMismatch, ck.file(), st.Digest, digest)
	}
	return &st, nil
}

func (ck *TrainCheckpoint) save(st *trainState) error {
	data, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("nn: encode checkpoint: %w", err)
	}
	return ck.Dir.Write(ck.file(), data)
}

// captureTrainState snapshots the live training state for serialization.
func captureTrainState(layers []*DenseLayer, digest string, epochsDone, stepNum int, bestVal float64, sinceBest int, done bool, h History) *trainState {
	st := &trainState{
		Schema:    trainStateSchema,
		Digest:    digest,
		Epoch:     epochsDone,
		StepNum:   stepNum,
		BestVal:   bestVal,
		SinceBest: sinceBest,
		BestEpoch: h.BestEpoch,
		Done:      done,
		TrainLoss: packFloats(h.TrainLoss),
		ValAcc:    packFloats(h.ValAcc),
	}
	for _, l := range layers {
		st.Layers = append(st.Layers, layerState{
			W:  packFloats(l.W.Data),
			B:  packFloats(l.B),
			MW: packFloats(l.mW.Data),
			VW: packFloats(l.vW.Data),
			MB: packFloats(l.mB),
			VB: packFloats(l.vB),
		})
	}
	return st
}

// restoreTrainState writes a verified state back into the network and loop
// variables. Shape mismatches cannot happen for a digest-matched state short
// of a CRC collision, but are still rejected explicitly.
func restoreTrainState(n *TwoStageNet, layers []*DenseLayer, st *trainState, h *History, bestVal *float64, stepNum, sinceBest *int) error {
	if len(st.Layers) != len(layers) {
		return fmt.Errorf("%w: %d layers in checkpoint, network has %d",
			ErrCheckpointMismatch, len(st.Layers), len(layers))
	}
	fill := func(dst []float64, src []byte, what string, li int) error {
		v, err := unpackFloats(src)
		if err != nil {
			return fmt.Errorf("nn: layer %d %s: %w", li, what, err)
		}
		if len(v) != len(dst) {
			return fmt.Errorf("%w: layer %d %s has %d values, want %d",
				ErrCheckpointMismatch, li, what, len(v), len(dst))
		}
		copy(dst, v)
		return nil
	}
	for li, l := range layers {
		ls := st.Layers[li]
		if err := fill(l.W.Data, ls.W, "weights", li); err != nil {
			return err
		}
		if err := fill(l.B, ls.B, "bias", li); err != nil {
			return err
		}
		if err := fill(l.mW.Data, ls.MW, "mW", li); err != nil {
			return err
		}
		if err := fill(l.vW.Data, ls.VW, "vW", li); err != nil {
			return err
		}
		if err := fill(l.mB, ls.MB, "mB", li); err != nil {
			return err
		}
		if err := fill(l.vB, ls.VB, "vB", li); err != nil {
			return err
		}
	}
	tl, err := unpackFloats(st.TrainLoss)
	if err != nil {
		return fmt.Errorf("nn: history trainLoss: %w", err)
	}
	va, err := unpackFloats(st.ValAcc)
	if err != nil {
		return fmt.Errorf("nn: history valAcc: %w", err)
	}
	if len(tl) != st.Epoch || len(va) != st.Epoch {
		return fmt.Errorf("%w: history lengths %d/%d, %d epochs recorded",
			ErrCheckpointMismatch, len(tl), len(va), st.Epoch)
	}
	h.TrainLoss, h.ValAcc, h.BestEpoch = tl, va, st.BestEpoch
	*bestVal = st.BestVal
	*stepNum = st.StepNum
	*sinceBest = st.SinceBest
	return nil
}

// drainRequested reports whether the stop channel is closed (non-blocking).
func drainRequested(stop <-chan struct{}) bool {
	if stop == nil {
		return false
	}
	select {
	case <-stop:
		return true
	default:
		return false
	}
}
