package nn

import (
	"strings"
	"testing"
)

func TestConfusionMatrix(t *testing.T) {
	samples := synthSamples(400, 17)
	train, val, test := Split(samples, 2)
	net := NewTwoStageNet(4, 3, []int{16}, []int{16}, 3, 5)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 40
	Train(net, train, val, cfg)

	c := ConfusionMatrix(net, test, 3)
	if got, want := c.Accuracy(), Accuracy(net, test); got != want {
		t.Fatalf("confusion accuracy %.4f != Accuracy %.4f", got, want)
	}
	// Totals must equal the sample count.
	total := 0
	for i := range c.Counts {
		for _, v := range c.Counts[i] {
			total += v
		}
	}
	if total != len(test) {
		t.Fatalf("matrix total %d != %d samples", total, len(test))
	}
	// Separable task: every populated class should have high recall.
	for cls := 0; cls < 3; cls++ {
		if r := c.Recall(cls); r < 0.7 {
			t.Fatalf("class %d recall = %.2f", cls, r)
		}
	}
	s := c.String()
	if !strings.Contains(s, "recall") || !strings.Contains(s, "class") {
		t.Fatalf("String() = %q", s)
	}
}

func TestConfusionEmptyClass(t *testing.T) {
	net := NewTwoStageNet(2, 0, []int{4}, nil, 3, 1)
	c := ConfusionMatrix(net, nil, 3)
	if c.Accuracy() != 0 {
		t.Fatal("empty matrix accuracy must be 0")
	}
	if c.Recall(1) != 0 {
		t.Fatal("empty class recall must be 0")
	}
	if strings.Contains(c.String(), "class  1") {
		t.Fatal("empty classes must be omitted from String()")
	}
}
