package nn

import (
	"fmt"
	"strings"
)

// Confusion is a numClasses×numClasses confusion matrix: rows are true
// labels, columns predictions.
type Confusion struct {
	N      int
	Counts [][]int
}

// ConfusionMatrix evaluates n over samples and tallies the matrix.
func ConfusionMatrix(n *TwoStageNet, samples []Sample, numClasses int) *Confusion {
	c := &Confusion{N: numClasses, Counts: make([][]int, numClasses)}
	for i := range c.Counts {
		c.Counts[i] = make([]int, numClasses)
	}
	for _, s := range samples {
		pred := n.Predict(s.Structural, s.Stats)
		if s.Label >= 0 && s.Label < numClasses && pred >= 0 && pred < numClasses {
			c.Counts[s.Label][pred]++
		}
	}
	return c
}

// Accuracy returns the trace fraction.
func (c *Confusion) Accuracy() float64 {
	total, correct := 0, 0
	for i := range c.Counts {
		for j, v := range c.Counts[i] {
			total += v
			if i == j {
				correct += v
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// Recall returns the per-class recall (NaN-free: classes with no samples
// report 0).
func (c *Confusion) Recall(class int) float64 {
	row := c.Counts[class]
	total := 0
	for _, v := range row {
		total += v
	}
	if total == 0 {
		return 0
	}
	return float64(row[class]) / float64(total)
}

// String renders the matrix with per-class recall, for trainer reports.
func (c *Confusion) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "confusion matrix (%d classes, rows=true, cols=pred):\n", c.N)
	for i, row := range c.Counts {
		total := 0
		for _, v := range row {
			total += v
		}
		if total == 0 {
			continue // omit empty classes to keep reports compact
		}
		fmt.Fprintf(&sb, "  class %2d:", i)
		for _, v := range row {
			fmt.Fprintf(&sb, " %4d", v)
		}
		fmt.Fprintf(&sb, "   recall %.2f\n", c.Recall(i))
	}
	return sb.String()
}
