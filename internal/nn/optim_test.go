package nn

import (
	"math"
	"testing"
)

func TestSGDTrainsSeparable(t *testing.T) {
	samples := synthSamples(600, 13)
	train, val, test := Split(samples, 1)
	net := NewTwoStageNet(4, 3, []int{16}, []int{16}, 3, 5)
	cfg := DefaultTrainConfig()
	cfg.Optimizer = OptSGD
	cfg.LR = 0.05
	cfg.Epochs = 40
	Train(net, train, val, cfg)
	if acc := Accuracy(net, test); acc < 0.9 {
		t.Fatalf("SGD accuracy = %.3f", acc)
	}
}

func TestSGDDefaultMomentum(t *testing.T) {
	// A zero Momentum with OptSGD must default to 0.9 (the config is passed
	// by value, so the caller's struct stays untouched — verify behaviour by
	// convergence, not state).
	samples := synthSamples(300, 23)
	train, val, _ := Split(samples, 1)
	net := NewTwoStageNet(4, 3, []int{8}, nil, 3, 5)
	cfg := TrainConfig{Epochs: 20, BatchSize: 32, LR: 0.05, Seed: 1, Optimizer: OptSGD}
	h := Train(net, train, val, cfg)
	if h.TrainLoss[len(h.TrainLoss)-1] >= h.TrainLoss[0] {
		t.Fatal("SGD with default momentum failed to reduce loss")
	}
}

func TestWeightDecayShrinksNorms(t *testing.T) {
	samples := synthSamples(300, 33)
	train, val, _ := Split(samples, 1)

	runWith := func(wd float64) float64 {
		net := NewTwoStageNet(4, 3, []int{16}, []int{16}, 3, 5)
		cfg := DefaultTrainConfig()
		cfg.Epochs = 30
		cfg.WeightDecay = wd
		cfg.Patience = 0
		Train(net, train, val, cfg)
		total := 0.0
		for _, l := range net.layers() {
			total += l.WeightNorm()
		}
		return total
	}
	plain := runWith(0)
	decayed := runWith(0.05)
	if decayed >= plain {
		t.Fatalf("weight decay did not shrink norms: %.3f vs %.3f", decayed, plain)
	}
}

func TestLRSchedules(t *testing.T) {
	cfg := TrainConfig{Epochs: 100, LR: 1.0}

	cfg.Schedule = SchedConst
	if cfg.lrAt(0) != 1 || cfg.lrAt(99) != 1 {
		t.Fatal("const schedule must hold LR")
	}

	cfg.Schedule = SchedCosine
	if cfg.lrAt(0) != 1 {
		t.Fatalf("cosine start = %v", cfg.lrAt(0))
	}
	if last := cfg.lrAt(99); last > 1e-9 {
		t.Fatalf("cosine end = %v, want ~0", last)
	}
	if mid := cfg.lrAt(49); math.Abs(mid-0.5) > 0.05 {
		t.Fatalf("cosine midpoint = %v, want ~0.5", mid)
	}
	// Monotone decreasing.
	for e := 1; e < 100; e++ {
		if cfg.lrAt(e) > cfg.lrAt(e-1)+1e-12 {
			t.Fatal("cosine schedule must decrease")
		}
	}

	cfg.Schedule = SchedStep
	if cfg.lrAt(0) != 1 || cfg.lrAt(59) != 1 {
		t.Fatal("step schedule early phase wrong")
	}
	if cfg.lrAt(60) != 0.1 {
		t.Fatalf("step at 60%% = %v, want 0.1", cfg.lrAt(60))
	}
	if math.Abs(cfg.lrAt(85)-0.01) > 1e-12 {
		t.Fatalf("step at 85%% = %v, want 0.01", cfg.lrAt(85))
	}
}

func TestCosineScheduleTrains(t *testing.T) {
	samples := synthSamples(400, 43)
	train, val, test := Split(samples, 1)
	net := NewTwoStageNet(4, 3, []int{16}, []int{16}, 3, 5)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 60
	cfg.Patience = 0
	cfg.LR = 3e-3
	cfg.Schedule = SchedCosine
	Train(net, train, val, cfg)
	if acc := Accuracy(net, test); acc < 0.85 {
		t.Fatalf("cosine-scheduled accuracy = %.3f", acc)
	}
}

func TestSingleEpochCosineNoNaN(t *testing.T) {
	cfg := TrainConfig{Epochs: 1, LR: 1, Schedule: SchedCosine}
	if lr := cfg.lrAt(0); math.IsNaN(lr) || lr != 1 {
		t.Fatalf("single-epoch cosine = %v", lr)
	}
}
