package nn

import (
	"fmt"
	"math/rand"
)

// TwoStageNet is the architecture of Figs. 3 and 4: a front stack consumes
// the structural facet, its hidden representation is concatenated with the
// statistics facet mid-network, and a back stack classifies. Setting
// StatsDim to 0 degrades gracefully to a plain MLP.
type TwoStageNet struct {
	StructDim, StatsDim, NumClasses int

	Front []*DenseLayer // structural → hidden
	Back  []*DenseLayer // [hidden | stats] → logits
}

// NewTwoStageNet builds a network. frontHidden and backHidden list hidden
// widths; the final Back layer (logits) is appended automatically.
func NewTwoStageNet(structDim, statsDim int, frontHidden, backHidden []int, numClasses int, seed int64) *TwoStageNet {
	if structDim <= 0 || numClasses < 2 || len(frontHidden) == 0 {
		panic(fmt.Sprintf("nn: bad TwoStageNet dims struct=%d stats=%d classes=%d front=%v",
			structDim, statsDim, numClasses, frontHidden))
	}
	rng := rand.New(rand.NewSource(seed))
	n := &TwoStageNet{StructDim: structDim, StatsDim: statsDim, NumClasses: numClasses}

	in := structDim
	for _, h := range frontHidden {
		n.Front = append(n.Front, NewDenseLayer(in, h, true, rng))
		in = h
	}
	in += statsDim // mid-network injection
	for _, h := range backHidden {
		n.Back = append(n.Back, NewDenseLayer(in, h, true, rng))
		in = h
	}
	n.Back = append(n.Back, NewDenseLayer(in, numClasses, false, rng))
	return n
}

// Forward returns class probabilities for one sample.
func (n *TwoStageNet) Forward(structF, statsF []float64) []float64 {
	return Softmax(n.logits(structF, statsF))
}

func (n *TwoStageNet) logits(structF, statsF []float64) []float64 {
	if len(structF) != n.StructDim || len(statsF) != n.StatsDim {
		panic(fmt.Sprintf("nn: input dims %d/%d, want %d/%d",
			len(structF), len(statsF), n.StructDim, n.StatsDim))
	}
	h := structF
	for _, l := range n.Front {
		h = l.Forward(h)
	}
	z := make([]float64, 0, len(h)+len(statsF))
	z = append(z, h...)
	z = append(z, statsF...)
	for _, l := range n.Back {
		z = l.Forward(z)
	}
	return z
}

// Predict returns the argmax class for one sample.
func (n *TwoStageNet) Predict(structF, statsF []float64) int {
	probs := n.Forward(structF, statsF)
	best := 0
	for i, p := range probs {
		if p > probs[best] {
			best = i
		}
	}
	_ = probs
	return best
}

// PredictTop2 returns the argmax class, the runner-up class, and the softmax
// probability margin between them. The argmax tie-break (first max wins) is
// identical to Predict's, so PredictTop2(...) and Predict(...) always agree
// on the chosen class; the margin is the decision audit's confidence signal.
func (n *TwoStageNet) PredictTop2(structF, statsF []float64) (best, runner int, margin float64) {
	probs := n.Forward(structF, statsF)
	best = 0
	for i, p := range probs {
		if p > probs[best] {
			best = i
		}
	}
	runner = -1
	for i, p := range probs {
		if i == best {
			continue
		}
		if runner < 0 || p > probs[runner] {
			runner = i
		}
	}
	if runner < 0 { // single-class net; NewTwoStageNet forbids this, but stay safe
		return best, best, 0
	}
	return best, runner, probs[best] - probs[runner]
}

// backward accumulates gradients for one sample given its label, returning
// the sample loss. Must follow a Forward-equivalent pass (it redoes the
// forward internally to populate caches).
func (n *TwoStageNet) backward(structF, statsF []float64, label int) float64 {
	logits := n.logits(structF, statsF)
	probs := Softmax(logits)
	loss := CrossEntropy(probs, label)

	// dL/dlogits for softmax + cross-entropy.
	g := make([]float64, len(probs))
	copy(g, probs)
	g[label] -= 1

	for i := len(n.Back) - 1; i >= 0; i-- {
		g = n.Back[i].Backward(g)
	}
	// Split the concatenated gradient: the stats part terminates here.
	frontWidth := len(g) - n.StatsDim
	g = g[:frontWidth]
	for i := len(n.Front) - 1; i >= 0; i-- {
		g = n.Front[i].Backward(g)
	}
	return loss
}

// step applies one optimizer update over the accumulated batch gradients.
func (n *TwoStageNet) step(cfg TrainConfig, lr float64, batchSize, stepNum int) {
	for _, l := range n.layers() {
		switch cfg.Optimizer {
		case OptSGD:
			l.sgdStep(lr, cfg.Momentum, batchSize, cfg.WeightDecay)
		default:
			l.adamStep(lr, batchSize, stepNum, cfg.WeightDecay)
		}
	}
}

// layers returns all layers, front stack first.
func (n *TwoStageNet) layers() []*DenseLayer {
	out := make([]*DenseLayer, 0, len(n.Front)+len(n.Back))
	out = append(out, n.Front...)
	return append(out, n.Back...)
}

// NumParams returns the total learnable parameter count.
func (n *TwoStageNet) NumParams() int {
	total := 0
	for _, l := range n.layers() {
		total += len(l.W.Data) + len(l.B)
	}
	return total
}
