package nn

import (
	"math/rand"
	"testing"
)

// trainReference is the pre-parallelization training loop, kept verbatim as
// the determinism oracle: Train must reproduce its histories and weight
// trajectories bit for bit at any worker count.
func trainReference(n *TwoStageNet, train, val []Sample, cfg TrainConfig) History {
	if cfg.Optimizer == OptSGD && cfg.Momentum == 0 {
		cfg.Momentum = 0.9
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := make([]int, len(train))
	for i := range idx {
		idx[i] = i
	}
	h := History{BestEpoch: -1}
	bestVal := -1.0
	stepNum := 0
	sinceBest := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		totalLoss := 0.0
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			for _, i := range idx[start:end] {
				s := train[i]
				totalLoss += n.backward(s.Structural, s.Stats, s.Label)
			}
			stepNum++
			n.step(cfg, cfg.lrAt(epoch), end-start, stepNum)
		}
		h.TrainLoss = append(h.TrainLoss, totalLoss/float64(len(train)))

		va := Accuracy(n, val)
		h.ValAcc = append(h.ValAcc, va)
		if va > bestVal {
			bestVal = va
			h.BestEpoch = epoch
			sinceBest = 0
		} else {
			sinceBest++
			if cfg.Patience > 0 && sinceBest >= cfg.Patience {
				break
			}
		}
	}
	return h
}

func synthFacetSamples(n, structDim, statsDim, classes int, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Sample, n)
	for i := range out {
		s := Sample{
			Structural: make([]float64, structDim),
			Stats:      make([]float64, statsDim),
			Label:      rng.Intn(classes),
		}
		for j := range s.Structural {
			s.Structural[j] = rng.NormFloat64()
		}
		for j := range s.Stats {
			s.Stats[j] = rng.NormFloat64() + float64(s.Label)
		}
		out[i] = s
	}
	return out
}

func historiesEqual(t *testing.T, name string, a, b History) {
	t.Helper()
	if len(a.TrainLoss) != len(b.TrainLoss) || len(a.ValAcc) != len(b.ValAcc) || a.BestEpoch != b.BestEpoch {
		t.Fatalf("%s: history shape diverged: %d/%d/%d vs %d/%d/%d",
			name, len(a.TrainLoss), len(a.ValAcc), a.BestEpoch, len(b.TrainLoss), len(b.ValAcc), b.BestEpoch)
	}
	for i := range a.TrainLoss {
		if a.TrainLoss[i] != b.TrainLoss[i] {
			t.Fatalf("%s: epoch %d train loss %v != %v", name, i, a.TrainLoss[i], b.TrainLoss[i])
		}
	}
	for i := range a.ValAcc {
		if a.ValAcc[i] != b.ValAcc[i] {
			t.Fatalf("%s: epoch %d val acc %v != %v", name, i, a.ValAcc[i], b.ValAcc[i])
		}
	}
}

func weightsEqual(t *testing.T, name string, a, b *TwoStageNet) {
	t.Helper()
	la, lb := a.layers(), b.layers()
	for li := range la {
		for k := range la[li].W.Data {
			if la[li].W.Data[k] != lb[li].W.Data[k] {
				t.Fatalf("%s: layer %d weight %d: %v != %v", name, li, k, la[li].W.Data[k], lb[li].W.Data[k])
			}
		}
		for k := range la[li].B {
			if la[li].B[k] != lb[li].B[k] {
				t.Fatalf("%s: layer %d bias %d: %v != %v", name, li, k, la[li].B[k], lb[li].B[k])
			}
		}
	}
}

func trainCase(t *testing.T, cfg TrainConfig) {
	t.Helper()
	const (
		structDim = 9
		statsDim  = 4
		classes   = 5
	)
	samples := synthFacetSamples(240, structDim, statsDim, classes, 42)
	train, val, _ := Split(samples, 7)

	ref := NewTwoStageNet(structDim, statsDim, []int{16, 12}, []int{14}, classes, 3)
	refH := trainReference(ref, train, val, cfg)

	for _, workers := range []int{0, 1, 2, 3, 8} {
		c := cfg
		c.Workers = workers
		got := NewTwoStageNet(structDim, statsDim, []int{16, 12}, []int{14}, classes, 3)
		gotH := Train(got, train, val, c)
		name := trainCaseName(cfg, workers)
		historiesEqual(t, name, gotH, refH)
		weightsEqual(t, name, got, ref)
	}
}

func trainCaseName(cfg TrainConfig, workers int) string {
	opt := "adam"
	if cfg.Optimizer == OptSGD {
		opt = "sgd"
	}
	return opt + "/workers=" + string(rune('0'+workers))
}

// The parallel trainer must reproduce the serial reference exactly — same
// losses, same accuracies, same final weights — for every worker count,
// under both optimizers. Running under -race (CI) also exercises the
// gradient/reduction phases for data races.
func TestTrainParallelMatchesSerialReference(t *testing.T) {
	base := TrainConfig{Epochs: 8, BatchSize: 16, LR: 1e-3, Seed: 5, Patience: 4}
	trainCase(t, base)

	sgd := base
	sgd.Optimizer = OptSGD
	sgd.WeightDecay = 1e-4
	sgd.Schedule = SchedCosine
	trainCase(t, sgd)
}

// Odd-shaped inputs: batch larger than the training set, batch that does not
// divide the set, more workers than samples per batch.
func TestTrainParallelEdgeShapes(t *testing.T) {
	cfg := TrainConfig{Epochs: 3, BatchSize: 50, LR: 1e-3, Seed: 9}
	trainCase(t, cfg)
	cfg.BatchSize = 7
	trainCase(t, cfg)
}
