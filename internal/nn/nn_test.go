package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSoftmaxProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		logits := make([]float64, 2+rng.Intn(10))
		for i := range logits {
			logits[i] = rng.NormFloat64() * 10
		}
		p := Softmax(logits)
		sum := 0.0
		for _, v := range p {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxStableWithHugeLogits(t *testing.T) {
	p := Softmax([]float64{1000, 1001, 999})
	for _, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("softmax overflowed")
		}
	}
	if p[1] < p[0] || p[0] < p[2] {
		t.Fatal("ordering wrong")
	}
}

func TestCrossEntropyClamps(t *testing.T) {
	if ce := CrossEntropy([]float64{0, 1}, 0); math.IsInf(ce, 1) {
		t.Fatal("cross entropy must clamp zero probability")
	}
	if ce := CrossEntropy([]float64{1, 0}, 0); ce != -math.Log(1) {
		t.Fatalf("CE of certain prediction = %v", ce)
	}
}

// Numeric gradient check: backward() must match finite differences.
func TestGradientCheck(t *testing.T) {
	net := NewTwoStageNet(3, 2, []int{4}, []int{4}, 3, 7)
	structF := []float64{0.5, -1.2, 0.3}
	statsF := []float64{0.8, -0.4}
	label := 1

	// Analytic gradients.
	net.backward(structF, statsF, label)
	layer := net.Front[0]
	analytic := make([]float64, len(layer.dW.Data))
	copy(analytic, layer.dW.Data)

	const eps = 1e-6
	for i := 0; i < len(layer.W.Data); i += 3 { // spot-check every 3rd weight
		orig := layer.W.Data[i]
		layer.W.Data[i] = orig + eps
		lossPlus := CrossEntropy(net.Forward(structF, statsF), label)
		layer.W.Data[i] = orig - eps
		lossMinus := CrossEntropy(net.Forward(structF, statsF), label)
		layer.W.Data[i] = orig
		numeric := (lossPlus - lossMinus) / (2 * eps)
		if math.Abs(numeric-analytic[i]) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("grad mismatch at %d: analytic %g vs numeric %g", i, analytic[i], numeric)
		}
	}
}

func TestGradientCheckBackStack(t *testing.T) {
	net := NewTwoStageNet(3, 2, []int{4}, []int{5}, 4, 3)
	structF := []float64{1, 0, -1}
	statsF := []float64{0.2, 0.9}
	label := 2
	net.backward(structF, statsF, label)
	layer := net.Back[0]
	analytic := append([]float64(nil), layer.dW.Data...)
	const eps = 1e-6
	for i := 0; i < len(layer.W.Data); i += 4 {
		orig := layer.W.Data[i]
		layer.W.Data[i] = orig + eps
		lp := CrossEntropy(net.Forward(structF, statsF), label)
		layer.W.Data[i] = orig - eps
		lm := CrossEntropy(net.Forward(structF, statsF), label)
		layer.W.Data[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-analytic[i]) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("back grad mismatch at %d: %g vs %g", i, analytic[i], numeric)
		}
	}
}

// A separable synthetic task must train to high accuracy.
func synthSamples(n int, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Sample, n)
	for i := range out {
		label := rng.Intn(3)
		structF := make([]float64, 4)
		statsF := make([]float64, 3)
		for j := range structF {
			structF[j] = rng.NormFloat64()*0.3 + float64(label)
		}
		for j := range statsF {
			statsF[j] = rng.NormFloat64()*0.3 - float64(label)
		}
		out[i] = Sample{Structural: structF, Stats: statsF, Label: label}
	}
	return out
}

func TestTrainSeparable(t *testing.T) {
	samples := synthSamples(600, 11)
	train, val, test := Split(samples, 1)
	net := NewTwoStageNet(4, 3, []int{16}, []int{16}, 3, 5)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 30
	h := Train(net, train, val, cfg)
	if len(h.TrainLoss) == 0 {
		t.Fatal("no training happened")
	}
	if acc := Accuracy(net, test); acc < 0.95 {
		t.Fatalf("test accuracy = %.3f, want >= 0.95 on separable data", acc)
	}
	// Loss must have decreased substantially.
	if h.TrainLoss[len(h.TrainLoss)-1] > h.TrainLoss[0]*0.5 {
		t.Fatalf("loss barely moved: %v -> %v", h.TrainLoss[0], h.TrainLoss[len(h.TrainLoss)-1])
	}
}

// The mid-network stats input must actually matter: a task whose label only
// depends on stats cannot be solved without them.
func TestStatsInputUsed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	samples := make([]Sample, 400)
	for i := range samples {
		label := rng.Intn(2)
		structF := []float64{rng.NormFloat64()} // pure noise
		statsF := []float64{float64(label)*2 - 1 + rng.NormFloat64()*0.2}
		samples[i] = Sample{Structural: structF, Stats: statsF, Label: label}
	}
	train, val, test := Split(samples, 2)
	net := NewTwoStageNet(1, 1, []int{8}, []int{8}, 2, 9)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 40
	Train(net, train, val, cfg)
	if acc := Accuracy(net, test); acc < 0.9 {
		t.Fatalf("accuracy %.3f: stats facet apparently unused", acc)
	}
}

func TestTrainDeterministic(t *testing.T) {
	samples := synthSamples(200, 21)
	train, val, _ := Split(samples, 1)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 5
	a := NewTwoStageNet(4, 3, []int{8}, []int{8}, 3, 5)
	b := NewTwoStageNet(4, 3, []int{8}, []int{8}, 3, 5)
	ha := Train(a, train, val, cfg)
	hb := Train(b, train, val, cfg)
	for i := range ha.TrainLoss {
		if ha.TrainLoss[i] != hb.TrainLoss[i] {
			t.Fatal("same seed must reproduce identical training")
		}
	}
	for i := range a.Front[0].W.Data {
		if a.Front[0].W.Data[i] != b.Front[0].W.Data[i] {
			t.Fatal("weights diverged despite same seed")
		}
	}
}

func TestSplitRatios(t *testing.T) {
	samples := synthSamples(1000, 1)
	train, val, test := Split(samples, 4)
	if len(train) != 800 || len(val) != 100 || len(test) != 100 {
		t.Fatalf("split = %d/%d/%d, want 800/100/100", len(train), len(val), len(test))
	}
	// Split must not lose or duplicate samples (check by total count and a
	// checksum of labels).
	sum := 0
	for _, s := range samples {
		sum += s.Label
	}
	sum2 := 0
	for _, s := range append(append(append([]Sample{}, train...), val...), test...) {
		sum2 += s.Label
	}
	if sum != sum2 {
		t.Fatal("split lost samples")
	}
}

func TestMeanLevelError(t *testing.T) {
	samples := synthSamples(300, 31)
	train, val, test := Split(samples, 1)
	net := NewTwoStageNet(4, 3, []int{16}, []int{16}, 3, 5)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 20
	Train(net, train, val, cfg)
	if mle := MeanLevelError(net, test); mle > 0.5 {
		t.Fatalf("mean level error = %.2f, want small on separable data", mle)
	}
	if MeanLevelError(net, nil) != 0 {
		t.Fatal("empty MLE must be 0")
	}
}

func TestFacetScaler(t *testing.T) {
	samples := synthSamples(100, 41)
	fs := FitFacetScaler(samples)
	scaled := fs.Apply(samples)
	if len(scaled) != len(samples) {
		t.Fatal("Apply changed sample count")
	}
	// Mean of each structural column must be ~0.
	for j := 0; j < len(scaled[0].Structural); j++ {
		sum := 0.0
		for _, s := range scaled {
			sum += s.Structural[j]
		}
		if m := sum / float64(len(scaled)); math.Abs(m) > 1e-9 {
			t.Fatalf("structural col %d mean = %g", j, m)
		}
	}
	// Original samples untouched.
	if samples[0].Structural[0] == scaled[0].Structural[0] &&
		samples[1].Structural[0] == scaled[1].Structural[0] {
		t.Fatal("scaling appears to be a no-op (or mutated input)")
	}
}

func TestNewTwoStageNetValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad dims")
		}
	}()
	NewTwoStageNet(0, 2, []int{4}, nil, 3, 1)
}

func TestForwardDimMismatchPanics(t *testing.T) {
	net := NewTwoStageNet(3, 2, []int{4}, nil, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	net.Forward([]float64{1}, []float64{1, 2})
}

func TestNumParams(t *testing.T) {
	net := NewTwoStageNet(3, 2, []int{4}, []int{5}, 2, 1)
	// front: 3*4+4 = 16; back: (4+2)*5+5 = 35; head: 5*2+2 = 12.
	if got := net.NumParams(); got != 16+35+12 {
		t.Fatalf("NumParams = %d, want 63", got)
	}
}

func TestAccuracyEmpty(t *testing.T) {
	net := NewTwoStageNet(2, 0, []int{3}, nil, 2, 1)
	if Accuracy(net, nil) != 0 {
		t.Fatal("empty accuracy must be 0")
	}
	// Zero-dim stats facet must work (plain MLP degradation).
	if p := net.Forward([]float64{1, 2}, nil); len(p) != 2 {
		t.Fatal("zero-stats forward broken")
	}
}

func TestPredictTop2AgreesWithPredict(t *testing.T) {
	n := NewTwoStageNet(4, 3, []int{8}, []int{8}, 5, 42)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		structF := make([]float64, 4)
		statsF := make([]float64, 3)
		for j := range structF {
			structF[j] = rng.NormFloat64()
		}
		for j := range statsF {
			statsF[j] = rng.NormFloat64()
		}
		best, runner, margin := n.PredictTop2(structF, statsF)
		if best != n.Predict(structF, statsF) {
			t.Fatalf("sample %d: PredictTop2 best %d disagrees with Predict", i, best)
		}
		if runner == best {
			t.Fatalf("sample %d: runner-up equals best", i)
		}
		if margin < 0 || margin > 1 {
			t.Fatalf("sample %d: margin %v outside [0,1]", i, margin)
		}
		probs := n.Forward(structF, statsF)
		for c, p := range probs {
			if c != best && p > probs[runner] {
				t.Fatalf("sample %d: class %d beats reported runner-up %d", i, c, runner)
			}
		}
	}
}
