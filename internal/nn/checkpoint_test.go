package nn

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"powerlens/internal/checkpoint"
)

const (
	ckStructDim = 9
	ckStatsDim  = 4
	ckClasses   = 5
)

func ckSamples(t *testing.T) (train, val []Sample) {
	t.Helper()
	samples := synthFacetSamples(240, ckStructDim, ckStatsDim, ckClasses, 42)
	train, val, _ = Split(samples, 7)
	return train, val
}

func ckNet() *TwoStageNet {
	return NewTwoStageNet(ckStructDim, ckStatsDim, []int{16, 12}, []int{14}, ckClasses, 3)
}

func ckConfig() TrainConfig {
	return TrainConfig{Epochs: 8, BatchSize: 16, LR: 1e-3, Seed: 5, Patience: 4, Workers: 2}
}

func openCkDir(t *testing.T) *checkpoint.Dir {
	t.Helper()
	dir, err := checkpoint.Open(filepath.Join(t.TempDir(), "ck"))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return dir
}

func TestTrainResumableFreshMatchesTrain(t *testing.T) {
	train, val := ckSamples(t)
	cfg := ckConfig()

	ref := ckNet()
	refH := Train(ref, train, val, cfg)

	dir := openCkDir(t)
	got := ckNet()
	ck := &TrainCheckpoint{Dir: dir, Name: "model", Every: 2}
	gotH, st, err := TrainResumable(got, train, val, cfg, ck)
	if err != nil {
		t.Fatalf("TrainResumable: %v", err)
	}
	if st.ResumedEpochs != 0 || st.Drained || st.Quarantined {
		t.Fatalf("fresh run status = %+v", st)
	}
	historiesEqual(t, "fresh", gotH, refH)
	weightsEqual(t, "fresh", got, ref)

	// Resume of a completed run restores instantly and identically.
	again := ckNet()
	againH, st2, err := TrainResumable(again, train, val, cfg, ck)
	if err != nil {
		t.Fatalf("resume of done: %v", err)
	}
	if st2.ResumedEpochs != len(refH.TrainLoss) {
		t.Fatalf("resume of done restored %d epochs, want %d", st2.ResumedEpochs, len(refH.TrainLoss))
	}
	historiesEqual(t, "resume-done", againH, refH)
	weightsEqual(t, "resume-done", again, ref)
}

func TestTrainKillResumeByteIdentical(t *testing.T) {
	train, val := ckSamples(t)
	cfg := ckConfig()
	ref := ckNet()
	refH := Train(ref, train, val, cfg)

	modes := []checkpoint.KillMode{checkpoint.KillBeforeWrite, checkpoint.KillTornWrite, checkpoint.KillElideRename}
	for _, mode := range modes {
		for failAfter := 0; failAfter <= 2; failAfter++ {
			t.Run(mode.String(), func(t *testing.T) {
				dir := openCkDir(t)
				var final *TwoStageNet
				var finalH History
				done := false
				for attempt := 0; attempt < 60 && !done; attempt++ {
					if attempt == 0 {
						dir.SetHooks(checkpoint.NewHooks(failAfter, mode))
					} else {
						dir.SetHooks(nil)
					}
					n := ckNet()
					ck := &TrainCheckpoint{Dir: dir, Name: "model", Every: 1}
					h, _, err := TrainResumable(n, train, val, cfg, ck)
					if err != nil {
						if errors.Is(err, checkpoint.ErrKilled) {
							continue // process "died"; next attempt resumes
						}
						t.Fatalf("attempt %d: %v", attempt, err)
					}
					final, finalH, done = n, h, true
				}
				if !done {
					t.Fatal("never completed")
				}
				historiesEqual(t, mode.String(), finalH, refH)
				weightsEqual(t, mode.String(), final, ref)
			})
		}
	}
}

func TestTrainDrainAndResume(t *testing.T) {
	train, val := ckSamples(t)
	cfg := ckConfig()
	ref := ckNet()
	refH := Train(ref, train, val, cfg)

	dir := openCkDir(t)

	// Partial run: kill after two successful epoch checkpoints.
	dir.SetHooks(checkpoint.NewHooks(2, checkpoint.KillBeforeWrite))
	n := ckNet()
	ck := &TrainCheckpoint{Dir: dir, Name: "model", Every: 1}
	if _, _, err := TrainResumable(n, train, val, cfg, ck); !errors.Is(err, checkpoint.ErrKilled) {
		t.Fatalf("partial run: err = %v, want ErrKilled", err)
	}
	dir.SetHooks(nil)

	// Drain: a pre-closed Stop channel must save and return immediately.
	stop := make(chan struct{})
	close(stop)
	n2 := ckNet()
	h2, st2, err := TrainResumable(n2, train, val, cfg, &TrainCheckpoint{Dir: dir, Name: "model", Every: 1, Stop: stop})
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !st2.Drained {
		t.Fatalf("drain status = %+v, want Drained", st2)
	}
	if st2.ResumedEpochs != 2 || len(h2.TrainLoss) != 2 {
		t.Fatalf("drain resumed %d epochs, history %d, want 2", st2.ResumedEpochs, len(h2.TrainLoss))
	}

	// Full resume reproduces the uninterrupted run bit for bit.
	n3 := ckNet()
	h3, st3, err := TrainResumable(n3, train, val, cfg, &TrainCheckpoint{Dir: dir, Name: "model", Every: 1})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if st3.ResumedEpochs != 2 {
		t.Fatalf("resume restored %d epochs, want 2", st3.ResumedEpochs)
	}
	historiesEqual(t, "drain-resume", h3, refH)
	weightsEqual(t, "drain-resume", n3, ref)
}

func TestTrainEarlyStopResume(t *testing.T) {
	train, val := ckSamples(t)
	cfg := ckConfig()
	cfg.Epochs = 30
	cfg.Patience = 2
	ref := ckNet()
	refH := Train(ref, train, val, cfg)
	if len(refH.TrainLoss) >= cfg.Epochs {
		t.Skip("reference did not early-stop; config needs retuning")
	}

	dir := openCkDir(t)
	dir.SetHooks(checkpoint.NewHooks(3, checkpoint.KillElideRename))
	n := ckNet()
	ck := &TrainCheckpoint{Dir: dir, Name: "model", Every: 1}
	if _, _, err := TrainResumable(n, train, val, cfg, ck); !errors.Is(err, checkpoint.ErrKilled) {
		t.Fatalf("partial run: err = %v, want ErrKilled", err)
	}
	dir.SetHooks(nil)
	n2 := ckNet()
	h2, _, err := TrainResumable(n2, train, val, cfg, ck)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	historiesEqual(t, "early-stop", h2, refH)
	weightsEqual(t, "early-stop", n2, ref)
}

func TestTrainCheckpointMismatchRejected(t *testing.T) {
	train, val := ckSamples(t)
	cfg := ckConfig()
	dir := openCkDir(t)
	ck := &TrainCheckpoint{Dir: dir, Name: "model"}
	if _, _, err := TrainResumable(ckNet(), train, val, cfg, ck); err != nil {
		t.Fatalf("first run: %v", err)
	}

	other := cfg
	other.Seed = 99
	_, _, err := TrainResumable(ckNet(), train, val, other, ck)
	if !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("mismatched resume: err = %v, want ErrCheckpointMismatch", err)
	}
}

func TestTrainCorruptCheckpointQuarantined(t *testing.T) {
	train, val := ckSamples(t)
	cfg := ckConfig()
	ref := ckNet()
	refH := Train(ref, train, val, cfg)

	dir := openCkDir(t)
	ck := &TrainCheckpoint{Dir: dir, Name: "model"}
	if _, _, err := TrainResumable(ckNet(), train, val, cfg, ck); err != nil {
		t.Fatalf("first run: %v", err)
	}

	// Flip a byte mid-file: the next run must quarantine, restart from
	// scratch, and still land on the reference trajectory.
	path := filepath.Join(dir.Root(), "model.ckpt")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	n := ckNet()
	h, st, err := TrainResumable(n, train, val, cfg, ck)
	if err != nil {
		t.Fatalf("post-corruption run: %v", err)
	}
	if !st.Quarantined || st.ResumedEpochs != 0 {
		t.Fatalf("post-corruption status = %+v, want Quarantined fresh start", st)
	}
	if dir.QuarantinedCount() != 1 {
		t.Fatalf("quarantined files = %d, want 1", dir.QuarantinedCount())
	}
	historiesEqual(t, "bit-rot", h, refH)
	weightsEqual(t, "bit-rot", n, ref)
}
