// Package report renders the experiment results as a self-contained HTML
// report with inline SVG figures — the repository's equivalent of the
// paper's Figure 1 (frequency traces) and Figure 5 (task-flow bars),
// regenerated from simulation. Everything is stdlib string assembly; tests
// validate the SVG with encoding/xml.
package report

import (
	"fmt"
	"strings"
)

// svgCanvas accumulates SVG elements with a fixed viewport.
type svgCanvas struct {
	w, h int
	b    strings.Builder
}

func newCanvas(w, h int) *svgCanvas {
	c := &svgCanvas{w: w, h: h}
	fmt.Fprintf(&c.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`, w, h, w, h)
	c.b.WriteByte('\n')
	return c
}

func (c *svgCanvas) rect(x, y, w, h float64, fill string) {
	fmt.Fprintf(&c.b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`, x, y, w, h, fill)
	c.b.WriteByte('\n')
}

func (c *svgCanvas) line(x1, y1, x2, y2 float64, stroke string, width float64) {
	fmt.Fprintf(&c.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`, x1, y1, x2, y2, stroke, width)
	c.b.WriteByte('\n')
}

func (c *svgCanvas) polyline(points [](struct{ X, Y float64 }), stroke string, width float64) {
	var pts strings.Builder
	for i, p := range points {
		if i > 0 {
			pts.WriteByte(' ')
		}
		fmt.Fprintf(&pts, "%.1f,%.1f", p.X, p.Y)
	}
	fmt.Fprintf(&c.b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="%.1f"/>`, pts.String(), stroke, width)
	c.b.WriteByte('\n')
}

func (c *svgCanvas) text(x, y float64, size int, anchor, s string) {
	fmt.Fprintf(&c.b, `<text x="%.1f" y="%.1f" font-size="%d" text-anchor="%s">%s</text>`, x, y, size, anchor, escape(s))
	c.b.WriteByte('\n')
}

func (c *svgCanvas) String() string {
	return c.b.String() + "</svg>\n"
}

// escape sanitizes text nodes.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// palette provides consistent per-method colors.
var palette = map[string]string{
	"PowerLens":    "#2166ac",
	"PowerLens-CG": "#4393c3",
	"FPG-G":        "#d6604d",
	"FPG-CG":       "#f4a582",
	"BiM":          "#b2182b",
	"zTT":          "#5aae61",
}

func colorOf(method string) string {
	if c, ok := palette[method]; ok {
		return c
	}
	return "#888888"
}
