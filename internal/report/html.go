package report

import (
	"fmt"
	"io"
	"strings"

	"powerlens/internal/experiments"
	"powerlens/internal/hw"
)

// Data collects everything the report renders. Fields may be nil/empty —
// sections are omitted.
type Data struct {
	Networks int               // deployment scale
	Reports  map[string]string // platform → deployment summary line

	Table1 map[string][]experiments.Table1Row
	Table2 map[string][]experiments.Table2Row
	Table3 []*experiments.Table3Data
	Fig5   map[string][]experiments.Fig5Result
	Fig1   []experiments.Fig1Trace
	Therm  map[string][]experiments.ThermalRow
	Ext    map[string][]experiments.ExtensionRow
	Resil  map[string][]experiments.ResilienceRow

	// Observe is the instrumented-run snapshot behind the report's
	// observability section (metrics summary + span timeline).
	Observe *experiments.ObserveData

	// SLO is the attributed-run snapshot behind the energy-breakdown and
	// burn-rate section.
	SLO *experiments.SLOData

	// Drift is the decision-provenance snapshot behind the audit/drift
	// section: two-phase live traffic with the audit recorder and the PSI
	// drift monitor attached.
	Drift *experiments.DriftData
}

// ResilienceTasks is the task-flow length of the report's resilience
// section.
const ResilienceTasks = 30

// Collect runs every experiment against env and fills a Data.
func Collect(env *experiments.Env, numTasks int) (*Data, error) {
	d := &Data{
		Reports: map[string]string{},
		Table1:  map[string][]experiments.Table1Row{},
		Table2:  map[string][]experiments.Table2Row{},
		Fig5:    map[string][]experiments.Fig5Result{},
		Therm:   map[string][]experiments.ThermalRow{},
		Ext:     map[string][]experiments.ExtensionRow{},
		Resil:   map[string][]experiments.ResilienceRow{},
	}
	for _, p := range hw.Platforms() {
		r := env.Reports[p.Name]
		d.Networks = r.NumNetworks
		d.Reports[p.Name] = fmt.Sprintf(
			"hyper model %.1f%%, decision model %.1f%% (mean level error %.2f), %d block samples",
			r.HyperAccuracy*100, r.DecisionAccuracy*100, r.DecisionMeanLevelError, r.NumBlocks)

		t1, err := experiments.Table1(env, p)
		if err != nil {
			return nil, err
		}
		d.Table1[p.Name] = t1
		t2, err := experiments.Table2(env, p, 3)
		if err != nil {
			return nil, err
		}
		d.Table2[p.Name] = t2
		t3, err := experiments.Table3(env, p)
		if err != nil {
			return nil, err
		}
		d.Table3 = append(d.Table3, t3)
		f5, err := experiments.Fig5(env, p, numTasks, 42)
		if err != nil {
			return nil, err
		}
		d.Fig5[p.Name] = f5
		th, err := experiments.ThermalStudy(env, p, 600)
		if err != nil {
			return nil, err
		}
		d.Therm[p.Name] = th
		ext, err := experiments.Extensions(env, p)
		if err != nil {
			return nil, err
		}
		d.Ext[p.Name] = ext
		res, err := experiments.Resilience(env, p, ResilienceTasks, 42)
		if err != nil {
			return nil, err
		}
		d.Resil[p.Name] = res
	}
	f1, err := experiments.Fig1(env, hw.TX2())
	if err != nil {
		return nil, err
	}
	d.Fig1 = f1
	ob, err := experiments.Observe(env, hw.TX2(), experiments.ObserveOptions{
		Tasks: ObserveTasks, Nodes: ObserveNodes, Jobs: ObserveJobs, Seed: 42,
	})
	if err != nil {
		return nil, err
	}
	d.Observe = ob
	sd, err := experiments.SLO(env, hw.TX2(), experiments.SLOOptions{Seed: 42})
	if err != nil {
		return nil, err
	}
	d.SLO = sd
	dr, err := experiments.Drift(env, hw.TX2(), experiments.DriftOptions{Seed: 42})
	if err != nil {
		return nil, err
	}
	d.Drift = dr
	return d, nil
}

// WriteHTML renders the full report.
func WriteHTML(w io.Writer, d *Data) error {
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>PowerLens reproduction report</title>
<style>
 body { font-family: sans-serif; max-width: 900px; margin: 2em auto; color: #222; }
 pre { background: #f6f6f6; padding: 1em; overflow-x: auto; font-size: 13px; }
 h1 { border-bottom: 2px solid #2166ac; padding-bottom: 6px; }
 h2 { margin-top: 2em; color: #2166ac; }
 .meta { color: #666; font-size: 14px; }
 table.metrics { border-collapse: collapse; font-size: 13px; margin: 1em 0; }
 table.metrics th, table.metrics td { border: 1px solid #ccc; padding: 3px 8px; text-align: left; }
</style></head><body>
`)
	fmt.Fprintf(&b, "<h1>PowerLens reproduction report</h1>\n")
	fmt.Fprintf(&b, `<p class="meta">Deployment: %d random networks per platform. `, d.Networks)
	for _, p := range []string{"TX2", "AGX"} {
		if s, ok := d.Reports[p]; ok {
			fmt.Fprintf(&b, "%s: %s. ", p, escape(s))
		}
	}
	b.WriteString("</p>\n")

	for _, p := range []string{"TX2", "AGX"} {
		if rows, ok := d.Table1[p]; ok {
			fmt.Fprintf(&b, "<h2>Table 1 — %s</h2>\n<pre>%s</pre>\n", p,
				escape(experiments.RenderTable1(p, rows)))
		}
	}
	for _, p := range []string{"TX2", "AGX"} {
		if rows, ok := d.Table2[p]; ok {
			fmt.Fprintf(&b, "<h2>Table 2 — %s</h2>\n<pre>%s</pre>\n", p,
				escape(experiments.RenderTable2(p, rows)))
		}
	}
	if len(d.Table3) == 2 {
		fmt.Fprintf(&b, "<h2>Table 3</h2>\n<pre>%s</pre>\n",
			escape(experiments.RenderTable3(d.Table3[0], d.Table3[1])))
	}
	if len(d.Fig1) > 0 {
		b.WriteString("<h2>Figure 1 — reactive ping-pong and lag vs preset points</h2>\n")
		b.WriteString(Fig1SVG(d.Fig1))
		fmt.Fprintf(&b, "<pre>%s</pre>\n", escape(experiments.RenderFig1(d.Fig1)))
	}
	for _, p := range []string{"TX2", "AGX"} {
		if rs, ok := d.Fig5[p]; ok {
			fmt.Fprintf(&b, "<h2>Figure 5 — %s</h2>\n", p)
			b.WriteString(Fig5SVG(p, rs))
		}
	}
	for _, p := range []string{"TX2", "AGX"} {
		if rs, ok := d.Therm[p]; ok {
			fmt.Fprintf(&b, "<h2>Thermal (extension) — %s</h2>\n", p)
			b.WriteString(ThermalSVG(p, rs, 85))
		}
	}
	for _, p := range []string{"TX2", "AGX"} {
		if rs, ok := d.Ext[p]; ok {
			fmt.Fprintf(&b, "<h2>§5 extensions — %s</h2>\n<pre>%s</pre>\n", p,
				escape(experiments.RenderExtensions(p, rs)))
		}
	}
	for _, p := range []string{"TX2", "AGX"} {
		if rs, ok := d.Resil[p]; ok && len(rs) > 0 {
			fmt.Fprintf(&b, "<h2>Resilience — %s</h2>\n<pre>%s</pre>\n", p,
				escape(experiments.RenderResilience(p, ResilienceTasks, rs)))
		}
	}
	if ob := d.Observe; ob != nil {
		fmt.Fprintf(&b, "<h2>Observability — %s</h2>\n", ob.Platform)
		fmt.Fprintf(&b, "<p class=\"meta\">Instrumented run: guarded %d-task flow plus %d-node/%d-job cluster under the default fault schedule (seed %d). Regenerate with <code>experiments observe</code>.</p>\n",
			ob.Opt.Tasks, ob.Opt.Nodes, ob.Opt.Jobs, ob.Opt.Seed)
		b.WriteString(TimelineSVG(ob.Events))
		b.WriteString(ObsMetricsTable(ob.Metrics))
		fmt.Fprintf(&b, "<pre>%s</pre>\n", escape(experiments.RenderObserve(ob)))
	}
	if s := d.SLO; s != nil {
		fmt.Fprintf(&b, "<h2>Energy attribution &amp; SLO burn rates — %s</h2>\n", s.Platform)
		fmt.Fprintf(&b, "<p class=\"meta\">Guarded %d-task flow (seed %d) with the energy-attribution ledger and the multi-window burn-rate tracker attached: per-model latency objectives, per-DVFS-level energy breakdown, and (model, block, level) attribution cells. Regenerate with <code>experiments slo</code>; serve live with <code>experiments slo -serve :8080</code> and <code>GET /slo</code>.</p>\n",
			s.Opt.Tasks, s.Opt.Seed)
		fmt.Fprintf(&b, "<pre>%s</pre>\n", escape(experiments.RenderSLO(s)))
	}
	if dr := d.Drift; dr != nil {
		fmt.Fprintf(&b, "<h2>Decision provenance &amp; model drift — %s</h2>\n", dr.Platform)
		fmt.Fprintf(&b, "<p class=\"meta\">Two-phase live traffic (%d networks per phase, %d fully audited, seed %d) against the deployed framework with the decision-audit recorder and the PSI drift monitor attached. Phase one draws from the training distribution and must stay quiet; phase two injects a generator shift and must alert. Calibration probes re-run the oracle sweep on sampled decisions. Regenerate with <code>experiments drift</code>; serve live with <code>experiments drift -serve :8080</code> and <code>GET /audit</code>, <code>GET /drift</code>.</p>\n",
			dr.Opt.Traffic, dr.Opt.Networks, dr.Opt.Seed)
		fmt.Fprintf(&b, "<pre>%s</pre>\n", escape(experiments.RenderDrift(dr)))
	}
	fmt.Fprintf(&b, "<p class=\"meta\">Generated by cmd/experiments report. Runtime substrate: analytic Jetson simulator (DESIGN.md §3).</p>\n")
	b.WriteString("</body></html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
