package report

import (
	"encoding/xml"
	"strings"
	"testing"
	"time"

	"powerlens/internal/experiments"
	"powerlens/internal/hw"
)

// wellFormed checks a fragment parses as XML (SVG is XML).
func wellFormed(t *testing.T, s string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(s))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed: %v\n%s", err, s)
		}
	}
}

func sampleTraces() []experiments.Fig1Trace {
	traces := []experiments.Fig1Trace{}
	for _, m := range []string{"FPG-G", "BiM", "PowerLens"} {
		tr := experiments.Fig1Trace{Method: m}
		for i := 0; i < 20; i++ {
			tr.Samples = append(tr.Samples, hw.PowerSample{
				At:     time.Duration(i) * 100 * time.Millisecond,
				PowerW: 5,
				FreqHz: float64(500+i*10) * 1e6,
			})
		}
		traces = append(traces, tr)
	}
	return traces
}

func TestFig1SVG(t *testing.T) {
	svg := Fig1SVG(sampleTraces())
	wellFormed(t, svg)
	for _, want := range []string{"polyline", "PowerLens", "FPG-G", "MHz"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
}

func TestFig1SVGEmpty(t *testing.T) {
	wellFormed(t, Fig1SVG(nil))
}

func TestFig5SVG(t *testing.T) {
	results := []experiments.Fig5Result{
		{Method: "PowerLens", EnergyJ: 100, Time: 10 * time.Second, EE: 2},
		{Method: "BiM", EnergyJ: 200, Time: 8 * time.Second, EE: 1},
	}
	svg := Fig5SVG("TX2", results)
	wellFormed(t, svg)
	for _, want := range []string{"rect", "energy", "EE", "PowerLens", "BiM"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	wellFormed(t, Fig5SVG("TX2", nil))
}

func TestThermalSVG(t *testing.T) {
	rows := []experiments.ThermalRow{
		{Method: "PowerLens", PeakTempC: 55},
		{Method: "BiM", PeakTempC: 85},
	}
	svg := ThermalSVG("TX2", rows, 85)
	wellFormed(t, svg)
	if !strings.Contains(svg, "throttle 85") {
		t.Fatal("trip line missing")
	}
	wellFormed(t, ThermalSVG("TX2", nil, 85))
}

func TestWriteHTML(t *testing.T) {
	d := &Data{
		Networks: 42,
		Reports:  map[string]string{"TX2": "hyper 95%"},
		Table1: map[string][]experiments.Table1Row{
			"TX2": {{Model: "resnet152", Blocks: 1, GainBiM: 0.8}},
		},
		Fig1: sampleTraces(),
		Fig5: map[string][]experiments.Fig5Result{
			"TX2": {{Method: "PowerLens", EnergyJ: 1, Time: time.Second, EE: 1}},
		},
		SLO: &experiments.SLOData{Platform: "TX2", Opt: experiments.SLOOptions{Tasks: 5, Seed: 42}},
		Drift: &experiments.DriftData{Platform: "TX2",
			Opt: experiments.DriftOptions{Traffic: 16, Networks: 2, Seed: 42}},
	}
	var sb strings.Builder
	if err := WriteHTML(&sb, d); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"<!DOCTYPE html>", "PowerLens reproduction report",
		"Table 1 — TX2", "resnet152", "Figure 1", "svg", "42 random networks",
		"Energy attribution &amp; SLO burn rates — TX2", "experiments slo",
		"Decision provenance &amp; model drift — TX2", "experiments drift"} {
		if !strings.Contains(out, want) {
			t.Fatalf("HTML missing %q", want)
		}
	}
	// Sections with no data must be omitted.
	if strings.Contains(out, "Table 3") {
		t.Fatal("empty Table 3 section rendered")
	}
}

func TestEscape(t *testing.T) {
	if escape(`a<b>&"c"`) != "a&lt;b&gt;&amp;&quot;c&quot;" {
		t.Fatalf("escape = %q", escape(`a<b>&"c"`))
	}
}

func TestColorOf(t *testing.T) {
	if colorOf("PowerLens") == colorOf("BiM") {
		t.Fatal("methods must have distinct colors")
	}
	if colorOf("unknown-governor") == "" {
		t.Fatal("unknown methods need a fallback color")
	}
}
