package report

import (
	"strings"
	"testing"
	"time"

	"powerlens/internal/obs"
)

func sampleEvents() []obs.Event {
	o := obs.New()
	clock := time.Duration(0)
	o.SetClock(func() time.Duration { clock += 10 * time.Millisecond; return clock })
	for i := 0; i < 5; i++ {
		o.Span("block", "727 MHz", time.Duration(i)*100*time.Millisecond,
			90*time.Millisecond, nil)
		o.Mark("decision", "d", time.Duration(i)*100*time.Millisecond, nil)
	}
	o.Span("actuation", "dvfs-switch", 95*time.Millisecond, 5*time.Millisecond, nil)
	n := o.ForTrack(102)
	n.Span("block", "1300 MHz", 0, 50*time.Millisecond, nil)
	j := o.ForTrack(12)
	j.Span("job", "resnet152", 0, 400*time.Millisecond, nil)
	j.Mark("node", "crash", 410*time.Millisecond, nil)
	o.Tracer.Instant("job", "dropped", 0, 420*time.Millisecond, nil)
	return o.Tracer.Events()
}

func TestTimelineSVG(t *testing.T) {
	svg := TimelineSVG(sampleEvents())
	wellFormed(t, svg)
	for _, want := range []string{"flow", "node 2 exec", "node 2 jobs", "dropped",
		"block", "actuation", "rect"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("timeline missing %q:\n%s", want, svg)
		}
	}
	// Dense decision instants are deliberately excluded from the timeline.
	if strings.Contains(svg, "decision") {
		t.Fatal("decision instants must not clutter the timeline")
	}
	wellFormed(t, TimelineSVG(nil))
}

func TestTimelineThinning(t *testing.T) {
	// Far more events than the element budget: the SVG must stay bounded.
	var evs []obs.Event
	o := obs.New()
	for i := 0; i < 20000; i++ {
		o.Span("block", "x", time.Duration(i)*time.Millisecond, time.Millisecond, nil)
	}
	evs = o.Tracer.Events()
	svg := TimelineSVG(evs)
	wellFormed(t, svg)
	if n := strings.Count(svg, "<rect"); n > timelineMaxElems+10 {
		t.Fatalf("thinning failed: %d rects for %d events", n, len(evs))
	}
}

func TestObsMetricsTable(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("sim_images_total", "Images.", "controller").Add(100, "PowerLens")
	r.Gauge("hw_gpu_level", "Level.").Set(7)
	html := ObsMetricsTable(r.Snapshot())
	wellFormed(t, html)
	for _, want := range []string{"sim_images_total", "hw_gpu_level", "counter",
		"gauge", "controller", "100"} {
		if !strings.Contains(html, want) {
			t.Fatalf("metrics table missing %q:\n%s", want, html)
		}
	}
}
