package report

import (
	"fmt"

	"powerlens/internal/experiments"
)

// Fig1SVG renders the Figure 1 frequency traces: GPU frequency (MHz) over
// time per method, one colored line each — the reactive governors' ramps,
// dithering and idle dips against PowerLens's preset steps.
func Fig1SVG(traces []experiments.Fig1Trace) string {
	const w, h = 720, 300
	const mL, mR, mT, mB = 60, 120, 20, 40
	c := newCanvas(w, h)
	c.rect(0, 0, w, h, "#ffffff")

	// Bounds.
	var maxT, maxF float64
	for _, tr := range traces {
		for _, s := range tr.Samples {
			if t := s.At.Seconds(); t > maxT {
				maxT = t
			}
			if f := s.FreqHz / 1e6; f > maxF {
				maxF = f
			}
		}
	}
	if maxT == 0 || maxF == 0 {
		return c.String()
	}
	plotW, plotH := float64(w-mL-mR), float64(h-mT-mB)
	xOf := func(t float64) float64 { return mL + t/maxT*plotW }
	yOf := func(f float64) float64 { return mT + (1-f/maxF)*plotH }

	// Axes.
	c.line(mL, mT, mL, float64(h-mB), "#333333", 1)
	c.line(mL, float64(h-mB), float64(w-mR), float64(h-mB), "#333333", 1)
	c.text(mL-8, mT+8, 10, "end", fmt.Sprintf("%.0f MHz", maxF))
	c.text(mL-8, float64(h-mB), 10, "end", "0")
	c.text(float64(w-mR), float64(h-mB+16), 10, "end", fmt.Sprintf("%.1f s", maxT))
	c.text(mL, float64(h-mB+16), 10, "start", "0")

	// Traces.
	for ti, tr := range traces {
		pts := make([]struct{ X, Y float64 }, 0, len(tr.Samples))
		for _, s := range tr.Samples {
			pts = append(pts, struct{ X, Y float64 }{xOf(s.At.Seconds()), yOf(s.FreqHz / 1e6)})
		}
		c.polyline(pts, colorOf(tr.Method), 1.5)
		// Legend.
		ly := float64(mT + 14 + 16*ti)
		c.line(float64(w-mR+8), ly-4, float64(w-mR+28), ly-4, colorOf(tr.Method), 3)
		c.text(float64(w-mR+34), ly, 11, "start", tr.Method)
	}
	return c.String()
}

// Fig5SVG renders the Figure 5 bar groups: per-method energy, time and EE
// normalized to the worst method in each metric (so all bars share a scale).
func Fig5SVG(platform string, results []experiments.Fig5Result) string {
	const w, h = 720, 280
	const mL, mB, mT = 60, 50, 30
	c := newCanvas(w, h)
	c.rect(0, 0, w, h, "#ffffff")
	c.text(w/2, 18, 13, "middle", "Task flow on "+platform+" (normalized, lower energy/time and higher EE are better)")
	if len(results) == 0 {
		return c.String()
	}

	metrics := []struct {
		name string
		of   func(experiments.Fig5Result) float64
	}{
		{"energy", func(r experiments.Fig5Result) float64 { return r.EnergyJ }},
		{"time", func(r experiments.Fig5Result) float64 { return r.Time.Seconds() }},
		{"EE", func(r experiments.Fig5Result) float64 { return r.EE }},
	}
	groupW := float64(w-mL-40) / float64(len(metrics))
	barW := (groupW - 30) / float64(len(results))
	plotH := float64(h - mB - mT)

	for mi, m := range metrics {
		maxV := 0.0
		for _, r := range results {
			if v := m.of(r); v > maxV {
				maxV = v
			}
		}
		if maxV == 0 {
			continue
		}
		gx := float64(mL) + groupW*float64(mi)
		for ri, r := range results {
			v := m.of(r) / maxV
			bh := v * plotH
			x := gx + barW*float64(ri)
			y := float64(mT) + plotH - bh
			c.rect(x, y, barW-3, bh, colorOf(r.Method))
		}
		c.text(gx+groupW/2-15, float64(h-mB+18), 12, "middle", m.name)
	}
	// Legend.
	lx := float64(mL)
	for _, r := range results {
		c.rect(lx, float64(h-22), 10, 10, colorOf(r.Method))
		c.text(lx+14, float64(h-13), 11, "start", r.Method)
		lx += 14 + 8*float64(len(r.Method)) + 18
	}
	return c.String()
}

// ThermalSVG renders the thermal study: peak temperatures against the trip
// point.
func ThermalSVG(platform string, rows []experiments.ThermalRow, trip float64) string {
	const w, h = 480, 220
	const mL, mB, mT = 60, 40, 30
	c := newCanvas(w, h)
	c.rect(0, 0, w, h, "#ffffff")
	c.text(w/2, 18, 13, "middle", "Sustained-load peak temperature on "+platform)
	if len(rows) == 0 {
		return c.String()
	}
	maxV := trip * 1.15
	plotH := float64(h - mB - mT)
	barW := float64(w-mL-40) / float64(len(rows))
	yOf := func(v float64) float64 { return float64(mT) + (1-v/maxV)*plotH }
	for i, r := range rows {
		x := float64(mL) + barW*float64(i)
		c.rect(x, yOf(r.PeakTempC), barW-12, float64(h-mB)-yOf(r.PeakTempC), colorOf(r.Method))
		c.text(x+barW/2-6, float64(h-mB+16), 11, "middle", r.Method)
		c.text(x+barW/2-6, yOf(r.PeakTempC)-4, 10, "middle", fmt.Sprintf("%.0f°C", r.PeakTempC))
	}
	// Trip line.
	c.line(mL, yOf(trip), float64(w-20), yOf(trip), "#b2182b", 1)
	c.text(float64(w-20), yOf(trip)-4, 10, "end", fmt.Sprintf("throttle %.0f°C", trip))
	return c.String()
}
