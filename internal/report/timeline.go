package report

import (
	"fmt"
	"sort"
	"strings"

	"powerlens/internal/obs"
)

// Observability section of the HTML report: a metrics summary table built
// from the registry snapshot and a span-timeline SVG built from the Chrome
// trace events of the instrumented observe scenario.

// catPalette colors the span timeline by event category.
var catPalette = map[string]string{
	"block":     "#4393c3",
	"actuation": "#d6604d",
	"job":       "#5aae61",
	"guard":     "#b2182b",
	"fault":     "#f4a582",
	"node":      "#762a83",
}

func catColor(cat string) string {
	if c, ok := catPalette[cat]; ok {
		return c
	}
	return "#888888"
}

// timelineMaxElems caps the number of drawn elements: very long traces are
// thinned deterministically (every k-th event per kind) so the report stays
// loadable.
const timelineMaxElems = 3000

// trackLabel names the observe scenario's trace tracks (see cloud.Config.Obs
// and experiments.Observe for the track-ID scheme: 1 = single-node flow,
// 10+n = node n job lifecycle, 100+n = node n executor internals).
func trackLabel(tid int) string {
	switch {
	case tid == 0:
		return "dropped"
	case tid == 1:
		return "flow"
	case tid >= 100:
		return fmt.Sprintf("node %d exec", tid-100)
	case tid >= 10:
		return fmt.Sprintf("node %d jobs", tid-10)
	default:
		return fmt.Sprintf("track %d", tid)
	}
}

// TimelineSVG renders the decision-span timeline: one row per trace track,
// complete spans as bars and guard/fault/node instants as ticks, colored by
// category. Dense "decision" instants are omitted — they mirror the window
// metrics and would swamp the drawing.
func TimelineSVG(events []obs.Event) string {
	var spans, marks []obs.Event
	for _, ev := range events {
		switch ev.Phase {
		case obs.PhaseComplete:
			spans = append(spans, ev)
		case obs.PhaseInstant:
			if ev.Cat != "decision" {
				marks = append(marks, ev)
			}
		}
	}
	spans = thinEvents(spans, timelineMaxElems*2/3)
	marks = thinEvents(marks, timelineMaxElems/3)

	// Tracks and time bounds.
	tidSet := map[int]bool{}
	var maxT float64
	for _, ev := range append(append([]obs.Event{}, spans...), marks...) {
		tidSet[ev.TID] = true
		if end := ev.TsUS + ev.DurUS; end > maxT {
			maxT = end
		}
	}
	tids := make([]int, 0, len(tidSet))
	for tid := range tidSet {
		tids = append(tids, tid)
	}
	sort.Ints(tids)

	const w = 860
	const mL, mR, mT, mB, rowH = 110, 20, 28, 34, 20
	h := mT + mB + rowH*len(tids)
	if len(tids) == 0 {
		h = mT + mB + rowH
	}
	c := newCanvas(w, h)
	c.rect(0, 0, w, float64(h), "#ffffff")
	c.text(w/2, 18, 13, "middle", "Decision-span timeline (simulated time)")
	if len(tids) == 0 || maxT <= 0 {
		return c.String()
	}
	plotW := float64(w - mL - mR)
	xOf := func(us float64) float64 { return mL + us/maxT*plotW }
	rowOf := map[int]float64{}
	for i, tid := range tids {
		y := float64(mT + rowH*i)
		rowOf[tid] = y
		c.text(mL-6, y+rowH-7, 10, "end", trackLabel(tid))
		c.line(mL, y+rowH-1.5, float64(w-mR), y+rowH-1.5, "#dddddd", 0.5)
	}

	for _, ev := range spans {
		y := rowOf[ev.TID]
		bw := ev.DurUS / maxT * plotW
		if bw < 0.5 {
			bw = 0.5
		}
		c.rect(xOf(ev.TsUS), y+3, bw, rowH-8, catColor(ev.Cat))
	}
	for _, ev := range marks {
		y := rowOf[ev.TID]
		x := xOf(ev.TsUS)
		c.line(x, y+1, x, y+rowH-3, catColor(ev.Cat), 1.2)
	}

	// Time axis and category legend.
	c.line(mL, float64(h-mB+2), float64(w-mR), float64(h-mB+2), "#333333", 1)
	c.text(mL, float64(h-mB+16), 10, "start", "0")
	c.text(float64(w-mR), float64(h-mB+16), 10, "end", fmt.Sprintf("%.2f s", maxT/1e6))
	cats := make([]string, 0, len(catPalette))
	for cat := range catPalette {
		cats = append(cats, cat)
	}
	sort.Strings(cats)
	lx := float64(mL)
	for _, cat := range cats {
		c.rect(lx, float64(h-14), 9, 9, catColor(cat))
		c.text(lx+12, float64(h-6), 10, "start", cat)
		lx += 12 + 7*float64(len(cat)) + 14
	}
	return c.String()
}

// thinEvents deterministically drops events to at most max, keeping every
// k-th in timeline order.
func thinEvents(evs []obs.Event, max int) []obs.Event {
	if len(evs) <= max || max <= 0 {
		return evs
	}
	k := (len(evs) + max - 1) / max
	out := evs[:0:0]
	for i := 0; i < len(evs); i += k {
		out = append(out, evs[i])
	}
	return out
}

// ObsMetricsTable renders the registry snapshot as an HTML summary table.
func ObsMetricsTable(fams []obs.FamilySnapshot) string {
	var b strings.Builder
	b.WriteString("<table class=\"metrics\"><tr><th>metric</th><th>kind</th><th>labels</th><th>series</th><th>total</th></tr>\n")
	for _, f := range fams {
		fmt.Fprintf(&b, "<tr><td><code>%s</code></td><td>%s</td><td>%s</td><td>%d</td><td>%.2f</td></tr>\n",
			escape(f.Name), escape(f.Kind), escape(strings.Join(f.LabelNames, ", ")),
			len(f.Series), f.Total())
	}
	b.WriteString("</table>\n")
	return b.String()
}

// ObserveTasks/ObserveJobs/ObserveNodes size the report's observe section
// (kept small — the full scenario is `experiments observe`).
const (
	ObserveTasks = 10
	ObserveJobs  = 10
	ObserveNodes = 3
)
