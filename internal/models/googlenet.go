package models

import "powerlens/internal/graph"

// basicConv is torchvision's BasicConv2d: conv + batchnorm + relu.
func basicConv(g *graph.Graph, in *graph.Layer, outC, kernel, stride, pad int) *graph.Layer {
	return g.ReLU(g.BatchNorm(g.Conv(in, outC, kernel, stride, pad, 1)))
}

// inception builds one torchvision Inception module. torchvision replaces the
// original 5x5 branch with a 3x3 convolution.
func inception(g *graph.Graph, in *graph.Layer, ch1, ch3red, ch3, ch5red, ch5, poolProj int) *graph.Layer {
	b1 := basicConv(g, in, ch1, 1, 1, 0)
	b2 := basicConv(g, basicConv(g, in, ch3red, 1, 1, 0), ch3, 3, 1, 1)
	b3 := basicConv(g, basicConv(g, in, ch5red, 1, 1, 0), ch5, 3, 1, 1)
	b4 := basicConv(g, g.MaxPool(in, 3, 1, 1), poolProj, 1, 1, 0)
	return g.Concat(b1, b2, b3, b4)
}

// GoogLeNet builds torchvision's googlenet (with batch normalization, no
// auxiliary classifiers at inference).
func GoogLeNet() *graph.Graph {
	g := graph.New("googlenet")
	x := g.Input(3, 224, 224)

	x = basicConv(g, x, 64, 7, 2, 3)
	x = g.MaxPool(x, 3, 2, 1)
	x = basicConv(g, x, 64, 1, 1, 0)
	x = basicConv(g, x, 192, 3, 1, 1)
	x = g.MaxPool(x, 3, 2, 1)

	x = inception(g, x, 64, 96, 128, 16, 32, 32)   // 3a
	x = inception(g, x, 128, 128, 192, 32, 96, 64) // 3b
	x = g.MaxPool(x, 3, 2, 1)

	x = inception(g, x, 192, 96, 208, 16, 48, 64)    // 4a
	x = inception(g, x, 160, 112, 224, 24, 64, 64)   // 4b
	x = inception(g, x, 128, 128, 256, 24, 64, 64)   // 4c
	x = inception(g, x, 112, 144, 288, 32, 64, 64)   // 4d
	x = inception(g, x, 256, 160, 320, 32, 128, 128) // 4e
	x = g.MaxPool(x, 2, 2, 0)

	x = inception(g, x, 256, 160, 320, 32, 128, 128) // 5a
	x = inception(g, x, 384, 192, 384, 48, 128, 128) // 5b

	x = g.AdaptiveAvgPool(x, 1, 1)
	x = g.Flatten(x)
	x = g.Dropout(x)
	g.Linear(x, 1000)
	return g
}
