package models

import "powerlens/internal/graph"

// denseLayer is one torchvision _DenseLayer: BN-ReLU-conv1x1(4k) ->
// BN-ReLU-conv3x3(k), whose output is concatenated onto the running feature
// map.
func denseLayer(g *graph.Graph, in *graph.Layer, growth int) *graph.Layer {
	x := g.ReLU(g.BatchNorm(in))
	x = g.Conv(x, 4*growth, 1, 1, 0, 1)
	x = g.ReLU(g.BatchNorm(x))
	x = g.Conv(x, growth, 3, 1, 1, 1)
	return g.Concat(in, x)
}

// transition halves channels with a 1x1 conv and downsamples 2x.
func transition(g *graph.Graph, in *graph.Layer) *graph.Layer {
	x := g.ReLU(g.BatchNorm(in))
	x = g.Conv(x, in.OutShape.C/2, 1, 1, 0, 1)
	return g.AvgPool(x, 2, 2, 0)
}

// DenseNet201 builds torchvision's densenet201: growth rate 32, block
// configuration [6, 12, 48, 32].
func DenseNet201() *graph.Graph {
	g := graph.New("densenet201")
	const growth = 32
	x := g.Input(3, 224, 224)
	x = g.ReLU(g.BatchNorm(g.Conv(x, 64, 7, 2, 3, 1)))
	x = g.MaxPool(x, 3, 2, 1)

	blocks := []int{6, 12, 48, 32}
	for bi, n := range blocks {
		for i := 0; i < n; i++ {
			x = denseLayer(g, x, growth)
		}
		if bi != len(blocks)-1 {
			x = transition(g, x)
		}
	}
	x = g.ReLU(g.BatchNorm(x))
	x = g.AdaptiveAvgPool(x, 1, 1)
	x = g.Flatten(x)
	g.Linear(x, 1000)
	return g
}
