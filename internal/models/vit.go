package models

import "powerlens/internal/graph"

// encoderBlock is one ViT transformer encoder layer: pre-norm attention and
// MLP sublayers, each with a residual connection.
func encoderBlock(g *graph.Graph, in *graph.Layer, heads, mlpDim int) *graph.Layer {
	x := g.LayerNorm(in)
	x = g.Attention(x, heads)
	x = g.Add(x, in)

	y := g.LayerNorm(x)
	y = g.Activation(g.Linear(y, mlpDim), graph.OpGELU)
	y = g.Linear(y, x.OutShape.C)
	return g.Add(y, x)
}

// vit assembles a Vision Transformer.
func vit(name string, patch, dim, depth, heads, mlpDim int) *graph.Graph {
	g := graph.New(name)
	x := g.Input(3, 224, 224)
	x = g.PatchEmbed(x, dim, patch)
	x = g.ClassToken(x)
	for i := 0; i < depth; i++ {
		x = encoderBlock(g, x, heads, mlpDim)
	}
	x = g.LayerNorm(x)
	x = g.SelectToken(x)
	g.Linear(x, 1000)
	return g
}

// ViTBase16 builds torchvision's vit_b_16: 16x16 patches, 12 layers,
// 12 heads, hidden 768, MLP 3072 (197 tokens).
func ViTBase16() *graph.Graph { return vit("vit_base_16", 16, 768, 12, 12, 3072) }

// ViTBase32 builds torchvision's vit_b_32: 32x32 patches (50 tokens).
func ViTBase32() *graph.Graph { return vit("vit_base_32", 32, 768, 12, 12, 3072) }

// ViTLarge16 builds torchvision's vit_l_16: 16x16 patches, 24 layers,
// 16 heads, hidden 1024, MLP 4096.
func ViTLarge16() *graph.Graph { return vit("vit_large_16", 16, 1024, 24, 16, 4096) }
