package models

import "powerlens/internal/graph"

// basicBlock is the two-conv ResNet block used by ResNet-18/34.
func basicBlock(g *graph.Graph, in *graph.Layer, planes, stride int) *graph.Layer {
	identity := in
	x := g.ReLU(g.BatchNorm(g.Conv(in, planes, 3, stride, 1, 1)))
	x = g.BatchNorm(g.Conv(x, planes, 3, 1, 1, 1))
	if stride != 1 || in.OutShape.C != planes {
		identity = g.BatchNorm(g.Conv(in, planes, 1, stride, 0, 1))
	}
	return g.ReLU(g.Add(x, identity))
}

// bottleneck is the three-conv block used by ResNet-50/101/152 and ResNeXt.
// width is the middle conv channel count; expansion is 4.
func bottleneck(g *graph.Graph, in *graph.Layer, planes, stride, groups, baseWidth int) *graph.Layer {
	width := planes * baseWidth / 64 * groups
	outC := planes * 4
	identity := in
	x := g.ReLU(g.BatchNorm(g.Conv(in, width, 1, 1, 0, 1)))
	x = g.ReLU(g.BatchNorm(g.Conv(x, width, 3, stride, 1, groups)))
	x = g.BatchNorm(g.Conv(x, outC, 1, 1, 0, 1))
	if stride != 1 || in.OutShape.C != outC {
		identity = g.BatchNorm(g.Conv(in, outC, 1, stride, 0, 1))
	}
	return g.ReLU(g.Add(x, identity))
}

// resnetStem builds the shared conv7x7 + maxpool stem.
func resnetStem(g *graph.Graph) *graph.Layer {
	x := g.Input(3, 224, 224)
	x = g.ReLU(g.BatchNorm(g.Conv(x, 64, 7, 2, 3, 1)))
	return g.MaxPool(x, 3, 2, 1)
}

// resnetHead builds the shared global-pool + classifier head.
func resnetHead(g *graph.Graph, x *graph.Layer) {
	x = g.AdaptiveAvgPool(x, 1, 1)
	x = g.Flatten(x)
	g.Linear(x, 1000)
}

// basicResNet assembles a BasicBlock ResNet from per-stage depths.
func basicResNet(name string, depths []int) *graph.Graph {
	g := graph.New(name)
	x := resnetStem(g)
	planes := []int{64, 128, 256, 512}
	for s, d := range depths {
		for b := 0; b < d; b++ {
			stride := 1
			if b == 0 && s > 0 {
				stride = 2
			}
			x = basicBlock(g, x, planes[s], stride)
		}
	}
	resnetHead(g, x)
	return g
}

// bottleneckResNet assembles a Bottleneck ResNet from per-stage depths.
func bottleneckResNet(name string, depths []int) *graph.Graph {
	g := graph.New(name)
	x := resnetStem(g)
	planes := []int{64, 128, 256, 512}
	for s, d := range depths {
		for b := 0; b < d; b++ {
			stride := 1
			if b == 0 && s > 0 {
				stride = 2
			}
			x = bottleneck(g, x, planes[s], stride, 1, 64)
		}
	}
	resnetHead(g, x)
	return g
}

// ResNet18 builds torchvision's resnet18: BasicBlock stages [2,2,2,2].
func ResNet18() *graph.Graph { return basicResNet("resnet18", []int{2, 2, 2, 2}) }

// ResNet34 builds torchvision's resnet34: BasicBlock stages [3,4,6,3].
func ResNet34() *graph.Graph { return basicResNet("resnet34", []int{3, 4, 6, 3}) }

// ResNet50 builds torchvision's resnet50: Bottleneck stages [3,4,6,3].
func ResNet50() *graph.Graph { return bottleneckResNet("resnet50", []int{3, 4, 6, 3}) }

// ResNet101 builds torchvision's resnet101: Bottleneck stages [3,4,23,3].
func ResNet101() *graph.Graph { return bottleneckResNet("resnet101", []int{3, 4, 23, 3}) }

// ResNet152 builds torchvision's resnet152: Bottleneck stages [3,8,36,3].
func ResNet152() *graph.Graph { return bottleneckResNet("resnet152", []int{3, 8, 36, 3}) }

// ResNeXt101 builds torchvision's resnext101_32x8d: grouped bottlenecks
// (32 groups, base width 8), stages [3,4,23,3].
func ResNeXt101() *graph.Graph {
	g := graph.New("resnext101")
	x := resnetStem(g)
	planes := []int{64, 128, 256, 512}
	depths := []int{3, 4, 23, 3}
	for s, d := range depths {
		for b := 0; b < d; b++ {
			stride := 1
			if b == 0 && s > 0 {
				stride = 2
			}
			x = bottleneck(g, x, planes[s], stride, 32, 8)
		}
	}
	resnetHead(g, x)
	return g
}
