package models

import (
	"testing"

	"powerlens/internal/graph"
)

// Published reference values for the extra zoo members.
var zooReference = map[string]struct {
	gflops float64
	mparam float64
}{
	"resnet18":     {3.6, 11.7},
	"resnet50":     {8.2, 25.6},
	"resnet101":    {15.7, 44.5},
	"vgg11":        {15.2, 132.9},
	"vgg16":        {31.0, 138.4},
	"vit_large_16": {123.7, 304.3},
}

func TestZooModelsBuildAndValidate(t *testing.T) {
	for name := range zooReference {
		g := MustBuild(name)
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if g.Name != name {
			t.Errorf("%s: graph name %q", name, g.Name)
		}
		out := g.Output()
		if out.Kind != graph.OpLinear || out.OutShape.C != 1000 {
			t.Errorf("%s: classifier head wrong", name)
		}
	}
}

func TestZooCostsMatchPublished(t *testing.T) {
	for name, ref := range zooReference {
		g := MustBuild(name)
		gflops := float64(g.TotalFLOPs()) / 1e9
		if gflops < ref.gflops*0.75 || gflops > ref.gflops*1.35 {
			t.Errorf("%s: %.2f GFLOPs, published %.2f", name, gflops, ref.gflops)
		}
		mp := float64(g.TotalParams()) / 1e6
		if mp < ref.mparam*0.85 || mp > ref.mparam*1.2 {
			t.Errorf("%s: %.1fM params, published %.1fM", name, mp, ref.mparam)
		}
	}
}

func TestFamilyOrderings(t *testing.T) {
	// FLOPs must be monotone within each family.
	resnets := []string{"resnet18", "resnet34", "resnet50", "resnet101", "resnet152"}
	var prev int64
	for _, name := range resnets {
		f := MustBuild(name).TotalFLOPs()
		if f <= prev {
			t.Fatalf("%s FLOPs %d not above predecessor %d", name, f, prev)
		}
		prev = f
	}
	vggs := []string{"vgg11", "vgg16", "vgg19"}
	prev = 0
	for _, name := range vggs {
		f := MustBuild(name).TotalFLOPs()
		if f <= prev {
			t.Fatalf("%s FLOPs not monotone", name)
		}
		prev = f
	}
	if MustBuild("vit_large_16").TotalFLOPs() <= MustBuild("vit_base_16").TotalFLOPs() {
		t.Fatal("vit_l must exceed vit_b")
	}
}

func TestAllNamesSupersetOfNames(t *testing.T) {
	all := map[string]bool{}
	for _, n := range AllNames() {
		all[n] = true
	}
	for _, n := range Names() {
		if !all[n] {
			t.Fatalf("AllNames missing Table-1 model %s", n)
		}
	}
	if len(AllNames()) <= len(Names()) {
		t.Fatal("AllNames must include the extra zoo members")
	}
	// AllNames must be sorted and duplicate-free.
	prev := ""
	for _, n := range AllNames() {
		if n <= prev {
			t.Fatalf("AllNames not sorted/unique at %q", n)
		}
		prev = n
	}
}
