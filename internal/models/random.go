package models

import (
	"fmt"
	"math/rand"

	"powerlens/internal/graph"
)

// GeneratorConfig bounds the random DNN generator (§2.2: "a DNN generator to
// produce a large variety of neural networks by randomly combining features
// mentioned in section 2.1.2").
type GeneratorConfig struct {
	MinSegments int // minimum number of architectural segments
	MaxSegments int
	MaxDepthPer int // maximum repeated components per segment
}

// DefaultGeneratorConfig matches the scale of the evaluation networks.
func DefaultGeneratorConfig() GeneratorConfig {
	return GeneratorConfig{MinSegments: 2, MaxSegments: 6, MaxDepthPer: 12}
}

// segment styles the generator composes.
const (
	segPlainConv = iota
	segBasicRes
	segBottleneck
	segInvertedRes
	segDenseConcat
	segTransformer
	numSegStyles
)

// RandomDNN generates a random network by composing random segments of the
// component styles found in the evaluation networks (plain conv stacks,
// residual blocks, bottlenecks, depthwise inverted residuals with optional
// squeeze-excitation, dense concat blocks, transformer encoders). About one
// net in seven is a "classic" CNN (plain conv stages + a heavy FC head, the
// AlexNet/VGG family). All randomness comes from rng, so generation is
// reproducible.
func RandomDNN(rng *rand.Rand, cfg GeneratorConfig, id int) *graph.Graph {
	if rng.Intn(7) == 0 {
		return RandomClassicCNN(rng, id)
	}
	g := graph.New(fmt.Sprintf("random_%d", id))
	x := g.Input(3, 224, 224)

	// Stem: downsample 2-4x so segment feature maps stay tractable.
	stemC := 16 << rng.Intn(3) // 16, 32, 64
	x = g.ReLU(g.BatchNorm(g.Conv(x, stemC, 3+2*rng.Intn(3), 2, 1, 1)))
	if rng.Intn(2) == 0 {
		x = g.MaxPool(x, 3, 2, 1)
	}

	nSeg := cfg.MinSegments + rng.Intn(cfg.MaxSegments-cfg.MinSegments+1)
	inTokenMode := false
	for s := 0; s < nSeg; s++ {
		style := rng.Intn(numSegStyles)
		if inTokenMode {
			style = segTransformer // once tokenized, stay tokenized
		}
		depth := 1 + rng.Intn(cfg.MaxDepthPer)
		switch style {
		case segPlainConv:
			c := pickChannels(rng, x.OutShape.C)
			for i := 0; i < depth; i++ {
				x = g.ReLU(g.BatchNorm(g.Conv(x, c, 3, 1, 1, 1)))
			}
			x = maybeDownsample(g, rng, x)
		case segBasicRes:
			c := pickChannels(rng, x.OutShape.C)
			stride := 1 + rng.Intn(2)
			for i := 0; i < depth; i++ {
				st := 1
				if i == 0 {
					st = stride
				}
				x = basicBlock(g, x, c, st)
			}
		case segBottleneck:
			planes := pickChannels(rng, x.OutShape.C/2+1)
			groups := 1
			if rng.Intn(3) == 0 {
				groups = 32
				planes = (planes/32 + 1) * 32 / 4 * 4
				if planes < 64 {
					planes = 64
				}
			}
			stride := 1 + rng.Intn(2)
			for i := 0; i < depth; i++ {
				st := 1
				if i == 0 {
					st = stride
				}
				x = bottleneck(g, x, planes, st, groups, 64/max(1, groups/8))
			}
		case segInvertedRes:
			outC := makeDivisible(pickChannels(rng, x.OutShape.C), 8)
			exp := outC * (2 + rng.Intn(5))
			k := 3 + 2*rng.Intn(2)
			se := rng.Intn(2) == 0
			act := graph.OpReLU
			if rng.Intn(2) == 0 {
				act = graph.OpHardSwish
			}
			stride := 1 + rng.Intn(2)
			for i := 0; i < depth; i++ {
				st := 1
				if i == 0 {
					st = stride
				}
				x = invertedResidual(g, x, k, exp, outC, se, act, st)
			}
		case segDenseConcat:
			growth := 8 << rng.Intn(3) // 8, 16, 32
			for i := 0; i < depth && x.OutShape.C < 2048; i++ {
				x = denseLayer(g, x, growth)
			}
			if x.OutShape.C >= 64 && rng.Intn(2) == 0 {
				x = transition(g, x)
			}
		case segTransformer:
			if !inTokenMode {
				dim := 64 << rng.Intn(4) // 64..512
				patch := x.OutShape.H / (4 + rng.Intn(4))
				if patch < 1 {
					patch = 1
				}
				x = g.PatchEmbed(x, dim, patch)
				if rng.Intn(2) == 0 {
					x = g.ClassToken(x)
				}
				inTokenMode = true
			}
			mlp := x.OutShape.C * (2 + rng.Intn(3))
			heads := max(1, x.OutShape.C/64)
			for i := 0; i < depth; i++ {
				x = encoderBlock(g, x, heads, mlp)
			}
		}
	}

	// Head. Conv networks occasionally get a VGG/AlexNet-style heavy FC head
	// (flattened spatial map into wide dense layers) — a strongly
	// memory-bound tail whose power behaviour differs sharply from the conv
	// body, mirroring the classical architectures in the evaluation set.
	if inTokenMode {
		x = g.LayerNorm(x)
		x = g.SelectToken(x)
	} else if rng.Intn(4) == 0 {
		target := 3 + rng.Intn(5) // 3..7 spatial
		if x.OutShape.H > target {
			x = g.AdaptiveAvgPool(x, target, target)
		}
		x = g.Flatten(x)
		width := 1024 << rng.Intn(3) // 1024..4096
		x = g.ReLU(g.Linear(x, width))
		x = g.Dropout(x)
		x = g.ReLU(g.Linear(x, width))
	} else {
		x = g.AdaptiveAvgPool(x, 1, 1)
		x = g.Flatten(x)
	}
	if rng.Intn(2) == 0 {
		x = g.ReLU(g.Linear(x, 256<<rng.Intn(3)))
		if rng.Intn(2) == 0 {
			x = g.Dropout(x)
		}
	}
	g.Linear(x, 10+rng.Intn(1990))
	return g
}

// RandomClassicCNN generates an AlexNet/VGG-style network: a few plain conv
// stages with pooling, then a flattened spatial map into wide fully
// connected layers. The FC tail is strongly memory-bound, giving these nets
// a sharply two-regime power profile.
func RandomClassicCNN(rng *rand.Rand, id int) *graph.Graph {
	g := graph.New(fmt.Sprintf("random_classic_%d", id))
	x := g.Input(3, 224, 224)

	useBN := rng.Intn(2) == 0
	convBlock := func(x *graph.Layer, c int) *graph.Layer {
		x = g.Conv(x, c, 3, 1, 1, 1)
		if useBN {
			x = g.BatchNorm(x)
		}
		return g.ReLU(x)
	}

	c := 32 << rng.Intn(2) // 32 or 64
	if rng.Intn(2) == 0 {
		// AlexNet-style large-kernel stem.
		x = g.ReLU(g.Conv(x, c, 7+2*rng.Intn(3), 2+rng.Intn(3), 2, 1))
	} else {
		// VGG-style 3x3 stem.
		x = convBlock(x, c)
		x = convBlock(x, c)
	}
	x = g.MaxPool(x, 3, 2, 0)

	stages := 2 + rng.Intn(4)
	for s := 0; s < stages && x.OutShape.H > 6; s++ {
		if c < 512 {
			c *= 2
		}
		convs := 1 + rng.Intn(4)
		for i := 0; i < convs; i++ {
			x = convBlock(x, c)
		}
		x = g.MaxPool(x, 2, 2, 0)
	}

	// Heavy FC head: flatten a 5-7² spatial map straight into wide dense
	// layers, as AlexNet (6²×256→4096) and VGG (7²×512→4096) do. The first
	// FC's weight matrix alone is tens to hundreds of MB — a decisively
	// memory-bound power block.
	target := 5 + rng.Intn(3)
	if x.OutShape.H > target {
		x = g.AdaptiveAvgPool(x, target, target)
	}
	x = g.Flatten(x)
	width := 2048 << rng.Intn(2)
	for i := 0; i < 2; i++ {
		x = g.Dropout(x)
		x = g.ReLU(g.Linear(x, width))
	}
	g.Linear(x, 10+rng.Intn(1990))
	return g
}

// pickChannels picks a plausible channel count near (or wider than) cur.
func pickChannels(rng *rand.Rand, cur int) int {
	factors := []int{1, 1, 2, 2, 4}
	c := cur * factors[rng.Intn(len(factors))]
	if c < 8 {
		c = 8
	}
	if c > 4096 {
		c = 4096
	}
	return c
}

// maybeDownsample randomly appends a pooling layer if the map is still big.
func maybeDownsample(g *graph.Graph, rng *rand.Rand, x *graph.Layer) *graph.Layer {
	if x.OutShape.H > 7 && rng.Intn(2) == 0 {
		return g.MaxPool(x, 2, 2, 0)
	}
	return x
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
