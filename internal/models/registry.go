package models

import (
	"fmt"
	"sort"
	"strings"

	"powerlens/internal/graph"
)

// builders maps paper model names (Table 1 spelling) to constructors.
var builders = map[string]func() *graph.Graph{
	"alexnet":        AlexNet,
	"googlenet":      GoogLeNet,
	"vgg19":          VGG19,
	"mobilenet_v3":   MobileNetV3,
	"densenet201":    DenseNet201,
	"resnext101":     ResNeXt101,
	"resnet34":       ResNet34,
	"resnet152":      ResNet152,
	"regnet_x_32gf":  RegNetX32GF,
	"regnet_y_128gf": RegNetY128GF,
	"vit_base_16":    ViTBase16,
	"vit_base_32":    ViTBase32,

	// Additional zoo members beyond the paper's Table 1 set.
	"resnet18":     ResNet18,
	"resnet50":     ResNet50,
	"resnet101":    ResNet101,
	"vgg11":        VGG11,
	"vgg16":        VGG16,
	"vit_large_16": ViTLarge16,
}

// AllNames returns every model in the registry (the Table 1 set plus the
// extra zoo members), sorted.
func AllNames() []string {
	names := make([]string, 0, len(builders))
	for n := range builders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Names returns the 12 evaluation model names in the paper's Table 1 order.
func Names() []string {
	return []string{
		"alexnet", "googlenet", "vgg19", "mobilenet_v3", "densenet201",
		"resnext101", "resnet34", "resnet152", "regnet_x_32gf",
		"regnet_y_128gf", "vit_base_16", "vit_base_32",
	}
}

// Build constructs the named model graph, validating the builder's output
// so a malformed model spec surfaces as an error instead of a downstream
// panic.
func Build(name string) (*graph.Graph, error) {
	b, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("models: unknown model %q (known models: %s)",
			name, strings.Join(AllNames(), ", "))
	}
	g := b()
	if g == nil || len(g.Layers) == 0 {
		return nil, fmt.Errorf("models: builder for %q produced an empty graph", name)
	}
	return g, nil
}

// MustBuild is Build for known-good names. Instead of re-panicking a bare
// error it fails with a message that names the offending model and the
// valid registry, so a typo in an experiment config is immediately
// diagnosable; callers that can return errors should prefer Build.
func MustBuild(name string) *graph.Graph {
	g, err := Build(name)
	if err != nil {
		panic(fmt.Sprintf("models.MustBuild(%q): %v", name, err))
	}
	return g
}
