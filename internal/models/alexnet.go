// Package models builds the operator graphs of the 12 torchvision networks
// evaluated in the PowerLens paper (Table 1), plus the random DNN generator
// used to synthesize the training datasets (§2.2). Layer dimensions follow
// the published torchvision architectures, so FLOP/parameter/traffic
// accounting matches the networks the paper profiled.
package models

import "powerlens/internal/graph"

// AlexNet builds torchvision's alexnet (input 3x224x224, 1000 classes).
func AlexNet() *graph.Graph {
	g := graph.New("alexnet")
	x := g.Input(3, 224, 224)

	x = g.ReLU(g.Conv(x, 64, 11, 4, 2, 1))
	x = g.MaxPool(x, 3, 2, 0)
	x = g.ReLU(g.Conv(x, 192, 5, 1, 2, 1))
	x = g.MaxPool(x, 3, 2, 0)
	x = g.ReLU(g.Conv(x, 384, 3, 1, 1, 1))
	x = g.ReLU(g.Conv(x, 256, 3, 1, 1, 1))
	x = g.ReLU(g.Conv(x, 256, 3, 1, 1, 1))
	x = g.MaxPool(x, 3, 2, 0)

	x = g.AdaptiveAvgPool(x, 6, 6)
	x = g.Flatten(x)
	x = g.Dropout(x)
	x = g.ReLU(g.Linear(x, 4096))
	x = g.Dropout(x)
	x = g.ReLU(g.Linear(x, 4096))
	g.Linear(x, 1000)
	return g
}
