package models

import "powerlens/internal/graph"

// seBlock builds a squeeze-excitation module gating x channel-wise.
// squeezeC is the bottleneck width of the excitation MLP.
func seBlock(g *graph.Graph, x *graph.Layer, squeezeC int) *graph.Layer {
	s := g.AdaptiveAvgPool(x, 1, 1)
	s = g.Flatten(s)
	s = g.ReLU(g.Linear(s, squeezeC))
	s = g.Activation(g.Linear(s, x.OutShape.C), graph.OpHardSigmoid)
	return g.Mul(x, s)
}

// invertedResidual is one MobileNetV3 bneck block.
func invertedResidual(g *graph.Graph, in *graph.Layer, kernel, expand, outC int, se bool, act graph.OpKind, stride int) *graph.Layer {
	useRes := stride == 1 && in.OutShape.C == outC
	x := in
	if expand != in.OutShape.C {
		x = g.Activation(g.BatchNorm(g.Conv(x, expand, 1, 1, 0, 1)), act)
	}
	// Depthwise.
	x = g.Activation(g.BatchNorm(g.Conv(x, expand, kernel, stride, kernel/2, expand)), act)
	if se {
		// torchvision squeezes to ceil(expand/4) rounded to a multiple of 8.
		sq := makeDivisible(expand/4, 8)
		x = seBlock(g, x, sq)
	}
	// Project (linear bottleneck: no activation).
	x = g.BatchNorm(g.Conv(x, outC, 1, 1, 0, 1))
	if useRes {
		x = g.Add(x, in)
	}
	return x
}

// makeDivisible mirrors torchvision's _make_divisible channel rounding.
func makeDivisible(v, divisor int) int {
	n := (v + divisor/2) / divisor * divisor
	if n < divisor {
		n = divisor
	}
	if float64(n) < 0.9*float64(v) {
		n += divisor
	}
	return n
}

// MobileNetV3 builds torchvision's mobilenet_v3_large.
func MobileNetV3() *graph.Graph {
	g := graph.New("mobilenet_v3")
	x := g.Input(3, 224, 224)
	x = g.Activation(g.BatchNorm(g.Conv(x, 16, 3, 2, 1, 1)), graph.OpHardSwish)

	type cfg struct {
		k, exp, out int
		se          bool
		act         graph.OpKind
		stride      int
	}
	cfgs := []cfg{
		{3, 16, 16, false, graph.OpReLU, 1},
		{3, 64, 24, false, graph.OpReLU, 2},
		{3, 72, 24, false, graph.OpReLU, 1},
		{5, 72, 40, true, graph.OpReLU, 2},
		{5, 120, 40, true, graph.OpReLU, 1},
		{5, 120, 40, true, graph.OpReLU, 1},
		{3, 240, 80, false, graph.OpHardSwish, 2},
		{3, 200, 80, false, graph.OpHardSwish, 1},
		{3, 184, 80, false, graph.OpHardSwish, 1},
		{3, 184, 80, false, graph.OpHardSwish, 1},
		{3, 480, 112, true, graph.OpHardSwish, 1},
		{3, 672, 112, true, graph.OpHardSwish, 1},
		{5, 672, 160, true, graph.OpHardSwish, 2},
		{5, 960, 160, true, graph.OpHardSwish, 1},
		{5, 960, 160, true, graph.OpHardSwish, 1},
	}
	for _, c := range cfgs {
		x = invertedResidual(g, x, c.k, c.exp, c.out, c.se, c.act, c.stride)
	}
	x = g.Activation(g.BatchNorm(g.Conv(x, 960, 1, 1, 0, 1)), graph.OpHardSwish)
	x = g.AdaptiveAvgPool(x, 1, 1)
	x = g.Flatten(x)
	x = g.Activation(g.Linear(x, 1280), graph.OpHardSwish)
	x = g.Dropout(x)
	g.Linear(x, 1000)
	return g
}
