package models

import "powerlens/internal/graph"

// vgg assembles a VGG from per-stage conv counts (config A=1,1,2,2,2;
// D=2,2,3,3,3; E=2,2,4,4,4).
func vgg(name string, convs [5]int) *graph.Graph {
	g := graph.New(name)
	x := g.Input(3, 224, 224)

	stage := func(x *graph.Layer, outC, n int) *graph.Layer {
		for i := 0; i < n; i++ {
			x = g.ReLU(g.Conv(x, outC, 3, 1, 1, 1))
		}
		return g.MaxPool(x, 2, 2, 0)
	}
	widths := [5]int{64, 128, 256, 512, 512}
	for s := range widths {
		x = stage(x, widths[s], convs[s])
	}

	x = g.AdaptiveAvgPool(x, 7, 7)
	x = g.Flatten(x)
	x = g.ReLU(g.Linear(x, 4096))
	x = g.Dropout(x)
	x = g.ReLU(g.Linear(x, 4096))
	x = g.Dropout(x)
	g.Linear(x, 1000)
	return g
}

// VGG11 builds torchvision's vgg11 (configuration A).
func VGG11() *graph.Graph { return vgg("vgg11", [5]int{1, 1, 2, 2, 2}) }

// VGG16 builds torchvision's vgg16 (configuration D).
func VGG16() *graph.Graph { return vgg("vgg16", [5]int{2, 2, 3, 3, 3}) }

// VGG19 builds torchvision's vgg19 (configuration E, 16 convolutional
// layers in five stages plus three fully connected layers).
func VGG19() *graph.Graph { return vgg("vgg19", [5]int{2, 2, 4, 4, 4}) }
