package models

import "powerlens/internal/graph"

// regnetBlock is the RegNet X/Y bottleneck block (bottleneck ratio 1):
// conv1x1(w) -> grouped conv3x3(w, stride) -> [SE] -> conv1x1(w), residual.
func regnetBlock(g *graph.Graph, in *graph.Layer, width, stride, groupWidth int, se bool) *graph.Layer {
	groups := width / groupWidth
	identity := in
	x := g.ReLU(g.BatchNorm(g.Conv(in, width, 1, 1, 0, 1)))
	x = g.ReLU(g.BatchNorm(g.Conv(x, width, 3, stride, 1, groups)))
	if se {
		// RegNetY squeezes to width/4 of the block INPUT width.
		sq := in.OutShape.C / 4
		if sq < 8 {
			sq = 8
		}
		x = seYBlock(g, x, sq)
	}
	x = g.BatchNorm(g.Conv(x, width, 1, 1, 0, 1))
	if stride != 1 || in.OutShape.C != width {
		identity = g.BatchNorm(g.Conv(in, width, 1, stride, 0, 1))
	}
	return g.ReLU(g.Add(x, identity))
}

// seYBlock is the RegNetY squeeze-excitation (sigmoid gate).
func seYBlock(g *graph.Graph, x *graph.Layer, squeezeC int) *graph.Layer {
	s := g.AdaptiveAvgPool(x, 1, 1)
	s = g.Flatten(s)
	s = g.ReLU(g.Linear(s, squeezeC))
	s = g.Activation(g.Linear(s, x.OutShape.C), graph.OpSigmoid)
	return g.Mul(x, s)
}

// regnet assembles a RegNet from per-stage depths/widths.
func regnet(name string, depths, widths []int, groupWidth int, se bool) *graph.Graph {
	g := graph.New(name)
	x := g.Input(3, 224, 224)
	x = g.ReLU(g.BatchNorm(g.Conv(x, 32, 3, 2, 1, 1))) // stem

	for s := range depths {
		for b := 0; b < depths[s]; b++ {
			stride := 1
			if b == 0 {
				stride = 2
			}
			x = regnetBlock(g, x, widths[s], stride, groupWidth, se)
		}
	}
	x = g.AdaptiveAvgPool(x, 1, 1)
	x = g.Flatten(x)
	g.Linear(x, 1000)
	return g
}

// RegNetX32GF builds torchvision's regnet_x_32gf: depths [2,7,13,1],
// widths [336,672,1344,2520], group width 168.
func RegNetX32GF() *graph.Graph {
	return regnet("regnet_x_32gf", []int{2, 7, 13, 1}, []int{336, 672, 1344, 2520}, 168, false)
}

// RegNetY128GF builds torchvision's regnet_y_128gf: depths [2,7,17,1],
// widths [528,1056,2904,7392], group width 264, with squeeze-excitation.
func RegNetY128GF() *graph.Graph {
	return regnet("regnet_y_128gf", []int{2, 7, 17, 1}, []int{528, 1056, 2904, 7392}, 264, true)
}
