package models

import (
	"math/rand"
	"testing"
	"testing/quick"

	"powerlens/internal/graph"
)

// Published reference values (torchvision docs): GFLOPs are
// multiply-accumulate×2, params in millions. Our IR counts biases and tiny
// ops slightly differently than ptflops, so we allow a tolerance band.
var reference = map[string]struct {
	gflops float64
	mparam float64
}{
	"alexnet":        {1.43, 61.1},
	"googlenet":      {3.0, 6.6},
	"vgg19":          {39.3, 143.7},
	"mobilenet_v3":   {0.43, 5.5},
	"densenet201":    {8.7, 20.0},
	"resnext101":     {32.8, 88.8},
	"resnet34":       {7.3, 21.8},
	"resnet152":      {23.1, 60.2},
	"regnet_x_32gf":  {63.5, 107.8},
	"regnet_y_128gf": {254.7, 644.8},
	"vit_base_16":    {35.2, 86.6},
	"vit_base_32":    {8.8, 88.2},
}

func TestAllModelsBuildAndValidate(t *testing.T) {
	for _, name := range Names() {
		g := MustBuild(name)
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if g.Name != name {
			t.Errorf("%s: graph name = %q", name, g.Name)
		}
	}
}

func TestModelFLOPsMatchPublished(t *testing.T) {
	for name, ref := range reference {
		g := MustBuild(name)
		gflops := float64(g.TotalFLOPs()) / 1e9
		lo, hi := ref.gflops*0.75, ref.gflops*1.35
		if gflops < lo || gflops > hi {
			t.Errorf("%s: %.2f GFLOPs, published %.2f (allowed [%.2f, %.2f])",
				name, gflops, ref.gflops, lo, hi)
		}
	}
}

func TestModelParamsMatchPublished(t *testing.T) {
	for name, ref := range reference {
		g := MustBuild(name)
		mp := float64(g.TotalParams()) / 1e6
		lo, hi := ref.mparam*0.85, ref.mparam*1.2
		if mp < lo || mp > hi {
			t.Errorf("%s: %.1fM params, published %.1fM (allowed [%.1f, %.1f])",
				name, mp, ref.mparam, lo, hi)
		}
	}
}

func TestModelOutputIsClassifier(t *testing.T) {
	for _, name := range Names() {
		g := MustBuild(name)
		out := g.Output()
		if out.Kind != graph.OpLinear {
			t.Errorf("%s: output kind = %v, want linear", name, out.Kind)
		}
		if out.OutShape != (graph.Shape{C: 1000, H: 1, W: 1}) {
			t.Errorf("%s: output shape = %v", name, out.OutShape)
		}
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := Build("nope"); err == nil {
		t.Fatal("Build must reject unknown names")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild must panic on unknown names")
		}
	}()
	MustBuild("nope")
}

func TestResNetFamilyOrdering(t *testing.T) {
	r34 := ResNet34()
	r152 := ResNet152()
	if r152.TotalFLOPs() <= r34.TotalFLOPs() {
		t.Fatal("resnet152 must cost more FLOPs than resnet34")
	}
	if len(r152.Layers) <= len(r34.Layers) {
		t.Fatal("resnet152 must have more layers than resnet34")
	}
}

func TestViTStructure(t *testing.T) {
	v16 := ViTBase16()
	if n := v16.CountKind(graph.OpAttention); n != 12 {
		t.Fatalf("vit_b_16 attention layers = %d, want 12", n)
	}
	v32 := ViTBase32()
	// Same parameter count family, ~4x fewer FLOPs (49 vs 196 patches).
	ratio := float64(v16.TotalFLOPs()) / float64(v32.TotalFLOPs())
	if ratio < 3 || ratio > 5 {
		t.Fatalf("vit16/vit32 FLOP ratio = %.2f, want ~4", ratio)
	}
}

func TestRegNetYHasSE(t *testing.T) {
	y := RegNetY128GF()
	if y.CountKind(graph.OpSigmoid) == 0 || y.CountKind(graph.OpMul) == 0 {
		t.Fatal("regnet_y must contain squeeze-excitation gates")
	}
	x := RegNetX32GF()
	if x.CountKind(graph.OpSigmoid) != 0 {
		t.Fatal("regnet_x must not contain SE gates")
	}
}

func TestDenseNetConcatStructure(t *testing.T) {
	d := DenseNet201()
	// 6+12+48+32 dense layers, each ending in a concat.
	if n := d.CountKind(graph.OpConcat); n != 98 {
		t.Fatalf("densenet201 concat count = %d, want 98", n)
	}
}

func TestMobileNetDepthwise(t *testing.T) {
	m := MobileNetV3()
	found := false
	for _, l := range m.Layers {
		if l.Kind == graph.OpConv2D && l.Attrs.Groups > 1 && l.Attrs.Groups == l.InShape.C {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("mobilenet_v3 must contain depthwise convolutions")
	}
}

func TestMakeDivisible(t *testing.T) {
	cases := []struct{ v, div, want int }{
		{16, 8, 16}, {17, 8, 16}, {20, 8, 24}, {3, 8, 8}, {60, 8, 64},
	}
	for _, c := range cases {
		if got := makeDivisible(c.v, c.div); got != c.want {
			t.Errorf("makeDivisible(%d,%d) = %d, want %d", c.v, c.div, got, c.want)
		}
	}
}

// Property: every random DNN validates and has plausible costs.
func TestRandomDNNAlwaysValid(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomDNN(rng, cfg, 0)
		if err := g.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return g.TotalFLOPs() > 0 && g.TotalParams() > 0 && len(g.Layers) >= 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomDNNDeterministic(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	a := RandomDNN(rand.New(rand.NewSource(42)), cfg, 1)
	b := RandomDNN(rand.New(rand.NewSource(42)), cfg, 1)
	if len(a.Layers) != len(b.Layers) || a.TotalFLOPs() != b.TotalFLOPs() {
		t.Fatal("same seed must generate the same network")
	}
	c := RandomDNN(rand.New(rand.NewSource(43)), cfg, 2)
	if len(a.Layers) == len(c.Layers) && a.TotalFLOPs() == c.TotalFLOPs() {
		t.Fatal("different seeds should generate different networks")
	}
}

func TestRandomDNNDiversity(t *testing.T) {
	// Across many seeds the generator must produce a wide size range and at
	// least occasionally each major component style.
	cfg := DefaultGeneratorConfig()
	minL, maxL := 1<<30, 0
	sawAttention, sawSE, sawConcat, sawDepthwise := false, false, false, false
	for seed := int64(0); seed < 100; seed++ {
		g := RandomDNN(rand.New(rand.NewSource(seed)), cfg, int(seed))
		if n := len(g.Layers); n < minL {
			minL = n
		} else if n > maxL {
			maxL = n
		}
		if g.CountKind(graph.OpAttention) > 0 {
			sawAttention = true
		}
		if g.CountKind(graph.OpMul) > 0 {
			sawSE = true
		}
		if g.CountKind(graph.OpConcat) > 0 {
			sawConcat = true
		}
		for _, l := range g.Layers {
			if l.Kind == graph.OpConv2D && l.Attrs.Groups == l.InShape.C && l.InShape.C > 1 {
				sawDepthwise = true
			}
		}
	}
	if maxL-minL < 30 {
		t.Fatalf("size diversity too low: [%d, %d]", minL, maxL)
	}
	if !sawAttention || !sawSE || !sawConcat || !sawDepthwise {
		t.Fatalf("style coverage: attn=%v se=%v concat=%v dw=%v",
			sawAttention, sawSE, sawConcat, sawDepthwise)
	}
}
