package hw

import (
	"math"
	"time"
)

// GPUVoltage returns the rail voltage at GPU frequency f, interpolating the
// V–f curve: V = VMin + (VMax-VMin)·((f-fmin)/(fmax-fmin))^VGamma.
func (p *Platform) GPUVoltage(f float64) float64 {
	return kneeVoltage(f, p.MinGPUFreq(), p.MaxGPUFreq(), p.VMin, p.VMax, p.VGamma, p.VKnee)
}

// kneeVoltage implements the floor-then-overdrive V-f curve: the rail stays
// at vmin up to the knee (normalized frequency), then rises to vmax with
// exponent gamma.
func kneeVoltage(f, fmin, fmax, vmin, vmax, gamma, knee float64) float64 {
	if f <= fmin {
		return vmin
	}
	if f >= fmax {
		return vmax
	}
	x := (f - fmin) / (fmax - fmin)
	if x <= knee {
		return vmin
	}
	u := (x - knee) / (1 - knee)
	return vmin + (vmax-vmin)*math.Pow(u, gamma)
}

// CPUVoltage returns the CPU rail voltage at CPU frequency f.
func (p *Platform) CPUVoltage(f float64) float64 {
	lo := p.CPUFreqsHz[0]
	hi := p.CPUFreqsHz[len(p.CPUFreqsHz)-1]
	return voltage(f, lo, hi, p.CPUVMin, p.CPUVMax, p.CPUVGamma)
}

func voltage(f, fmin, fmax, vmin, vmax, gamma float64) float64 {
	if f <= fmin {
		return vmin
	}
	if f >= fmax {
		return vmax
	}
	x := (f - fmin) / (fmax - fmin)
	return vmin + (vmax-vmin)*math.Pow(x, gamma)
}

// OpCost is the simulated execution cost of one operator (or any chunk of
// work) on the GPU at a fixed frequency.
type OpCost struct {
	Time      time.Duration
	EnergyJ   float64
	PowerW    float64 // average power over Time
	ComputeUt float64 // fraction of time the ALUs were the bottleneck
}

// OverlapBeta is the fraction of the shorter roofline phase that fails to
// hide under the longer one: t = max(tc, tm) + β·min(tc, tm). Real kernels
// overlap compute and memory imperfectly, so an operator's frequency
// sensitivity d log t / d log f varies continuously with its arithmetic
// intensity instead of snapping between 0 and 1 — which is what spreads
// per-block optimal frequencies across the ladder.
const OverlapBeta = 0.35

// GPUOpCost returns the roofline latency and energy of executing `flops`
// floating-point operations touching `bytes` of DRAM at GPU frequency f.
//
// Latency: partial-overlap roofline (see OverlapBeta) + kernel launch
// overhead. Memory bandwidth is modeled as frequency-independent (the DRAM
// clock is a separate domain on Jetson), which is exactly why memory-bound
// operators tolerate low GPU frequency — the effect PowerLens exploits.
//
// Power: board idle + GPU leakage (∝V²) + dynamic C·V²·f scaled by compute
// utilization (with a clocking floor while busy) + DRAM energy per byte.
func (p *Platform) GPUOpCost(flops, bytes int64, f float64) OpCost {
	tc := float64(flops) / (p.ComputeEff * p.GPUFlopsPerCycle * f)
	tm := float64(bytes) / (p.MemEff * p.MemBandwidth)
	t := tc + OverlapBeta*tm
	if tm > tc {
		t = tm + OverlapBeta*tc
	}
	t += p.LaunchOverhead.Seconds()
	if t <= 0 {
		t = 1e-9
	}
	uComp := 0.0
	if t > 0 {
		uComp = tc / t
	}

	v := p.GPUVoltage(f)
	leak := p.GPULeakW * (v / p.VMin) * (v / p.VMin)
	dyn := p.GPUCdyn * v * v * f * (p.GPUClockFrac + (1-p.GPUClockFrac)*uComp)
	dramW := 0.0
	if t > 0 {
		dramW = p.DRAMEnergyPB * float64(bytes) / t
	}
	power := p.IdleW + leak + dyn + dramW
	return OpCost{
		Time:      time.Duration(t * float64(time.Second)),
		EnergyJ:   power * t,
		PowerW:    power,
		ComputeUt: uComp,
	}
}

// GPUIdlePower returns the power drawn while the GPU sits idle at frequency
// f (board idle + leakage + clock-tree dynamic power). Reactive governors
// pay this during the lag between load arrival and their response.
func (p *Platform) GPUIdlePower(f float64) float64 {
	v := p.GPUVoltage(f)
	leak := p.GPULeakW * (v / p.VMin) * (v / p.VMin)
	dyn := p.GPUCdyn * v * v * f * p.GPUClockFrac * 0.5 // gated clocks while idle
	return p.IdleW + leak + dyn
}

// CPUBusyPower returns CPU rail power while running at frequency f.
func (p *Platform) CPUBusyPower(f float64) float64 {
	v := p.CPUVoltage(f)
	leak := p.CPULeakW * (v / p.CPUVMin) * (v / p.CPUVMin)
	return leak + p.CPUCdyn*v*v*f
}

// CPUImageCost returns the host-side time and energy to pre/post-process one
// image at CPU frequency f.
func (p *Platform) CPUImageCost(f float64) (time.Duration, float64) {
	t := p.CPUWorkPerImage / f
	e := p.CPUBusyPower(f) * t
	return time.Duration(t * float64(time.Second)), e
}

// SwitchCost returns the time and energy cost of one userspace DVFS level
// change (the pipeline stalls for SwitchLatency at roughly idle power).
func (p *Platform) SwitchCost(f float64) (time.Duration, float64) {
	t := p.SwitchLatency.Seconds()
	return p.SwitchLatency, p.GPUIdlePower(f) * t
}
