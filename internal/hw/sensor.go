package hw

import "time"

// PowerSample is one reading of the simulated power rail, tegrastats-style.
type PowerSample struct {
	At     time.Duration // simulation time of the sample
	PowerW float64
	FreqHz float64 // GPU frequency at the sample instant
}

// PowerSensor integrates power over simulated time and records periodic
// samples, mirroring how the paper monitors real-time power with tegrastats.
// Energy accounting is exact (power × interval per event); the sample trace
// exists for governor inputs and figure generation.
type PowerSensor struct {
	Period  time.Duration
	now     time.Duration
	energyJ float64
	samples []PowerSample

	// carry holds the currently-applied power level between events so
	// sampling interpolates the piecewise-constant power signal.
	lastPower float64
	lastFreq  float64
	nextTick  time.Duration
}

// NewPowerSensor returns a sensor sampling at the given period (tegrastats
// defaults to 1 s; the experiments use a finer 10 ms period for traces).
func NewPowerSensor(period time.Duration) *PowerSensor {
	return &PowerSensor{Period: period, nextTick: period}
}

// Advance accounts for an interval of length d during which the rail drew
// powerW at GPU frequency freqHz.
func (s *PowerSensor) Advance(d time.Duration, powerW, freqHz float64) {
	if d < 0 {
		panic("hw: PowerSensor.Advance with negative duration")
	}
	end := s.now + d
	s.energyJ += powerW * d.Seconds()
	for s.nextTick <= end {
		s.samples = append(s.samples, PowerSample{At: s.nextTick, PowerW: powerW, FreqHz: freqHz})
		s.nextTick += s.Period
	}
	s.now = end
	s.lastPower = powerW
	s.lastFreq = freqHz
}

// Now returns the current simulation time.
func (s *PowerSensor) Now() time.Duration { return s.now }

// EnergyJ returns the exactly-integrated energy so far.
func (s *PowerSensor) EnergyJ() float64 { return s.energyJ }

// AveragePowerW returns energy/time, the P̄ of the paper's EE metric.
func (s *PowerSensor) AveragePowerW() float64 {
	t := s.now.Seconds()
	if t == 0 {
		return 0
	}
	return s.energyJ / t
}

// Samples returns the recorded trace.
func (s *PowerSensor) Samples() []PowerSample { return s.samples }
