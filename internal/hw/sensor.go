package hw

import "time"

// PowerSample is one reading of the simulated power rail, tegrastats-style.
type PowerSample struct {
	At     time.Duration // simulation time of the sample
	PowerW float64
	FreqHz float64 // GPU frequency at the sample instant
}

// PowerSensor integrates power over simulated time and records periodic
// samples, mirroring how the paper monitors real-time power with tegrastats.
// Energy accounting is exact (power × interval per event); the sample trace
// exists for governor inputs and figure generation.
type PowerSensor struct {
	Period  time.Duration
	now     time.Duration
	energyJ float64
	samples []PowerSample

	// carry holds the currently-applied power level between events so
	// sampling interpolates the piecewise-constant power signal.
	lastPower float64
	lastFreq  float64
	nextTick  time.Duration
}

// NewPowerSensor returns a sensor sampling at the given period (tegrastats
// defaults to 1 s; the experiments use a finer 10 ms period for traces).
// A non-positive period disables the sample trace; energy integration is
// unaffected.
func NewPowerSensor(period time.Duration) *PowerSensor {
	return &PowerSensor{Period: period, nextTick: period}
}

// Reset returns the sensor to its initial state at a (possibly new) sampling
// period, retaining the sample buffer's capacity. The serving fast path
// resets one sensor per run instead of allocating; callers that hand out
// Samples() must not Reset while those slices are still referenced.
func (s *PowerSensor) Reset(period time.Duration) {
	s.Period = period
	s.now = 0
	s.energyJ = 0
	s.samples = s.samples[:0]
	s.lastPower = 0
	s.lastFreq = 0
	s.nextTick = period
}

// Advance accounts for an interval of length d during which the rail drew
// powerW at GPU frequency freqHz.
func (s *PowerSensor) Advance(d time.Duration, powerW, freqHz float64) {
	if d < 0 {
		panic("hw: PowerSensor.Advance with negative duration")
	}
	end := s.now + d
	s.energyJ += powerW * d.Seconds()
	if s.Period > 0 {
		for s.nextTick <= end {
			s.samples = append(s.samples, PowerSample{At: s.nextTick, PowerW: powerW, FreqHz: freqHz})
			s.nextTick += s.Period
		}
	}
	s.now = end
	s.lastPower = powerW
	s.lastFreq = freqHz
}

// FastForward advances the sensor across a precomputed span: the clock moves
// by d and the integrated energy is set to energyJ — the caller replays the
// span's per-event accumulation itself so the value is bit-identical to
// stepping through the span. lastPowerW/lastFreqHz restore the
// piecewise-constant carry at the span's end. Only valid with the sample
// trace off (Period <= 0): fast-forwarded spans emit no samples.
func (s *PowerSensor) FastForward(d time.Duration, energyJ, lastPowerW, lastFreqHz float64) {
	if d < 0 {
		panic("hw: PowerSensor.FastForward with negative duration")
	}
	s.now += d
	s.energyJ = energyJ
	s.lastPower = lastPowerW
	s.lastFreq = lastFreqHz
}

// Now returns the current simulation time.
func (s *PowerSensor) Now() time.Duration { return s.now }

// EnergyJ returns the exactly-integrated energy so far.
func (s *PowerSensor) EnergyJ() float64 { return s.energyJ }

// AveragePowerW returns energy/time, the P̄ of the paper's EE metric.
func (s *PowerSensor) AveragePowerW() float64 {
	t := s.now.Seconds()
	if t == 0 {
		return 0
	}
	return s.energyJ / t
}

// Samples returns the recorded trace.
func (s *PowerSensor) Samples() []PowerSample { return s.samples }
