package hw

import (
	"math"
	"testing"
	"time"
)

func TestThermalSteadyState(t *testing.T) {
	p := TX2()
	m := DefaultThermal(p)
	s := NewThermalState(m)
	if s.TempC != m.AmbientC {
		t.Fatalf("initial temp = %g, want ambient %g", s.TempC, m.AmbientC)
	}
	// Integrate long at constant power: temperature converges to
	// ambient + R·P.
	const power = 10.0
	for i := 0; i < 1000; i++ {
		s.Advance(time.Second, power)
	}
	want := m.AmbientC + m.ResistanceC*power
	if math.Abs(s.TempC-want) > 0.1 {
		t.Fatalf("steady temp = %.2f, want %.2f", s.TempC, want)
	}
	if s.PeakC < s.TempC-1e-9 {
		t.Fatal("peak must track temperature")
	}
}

func TestThermalTimeConstant(t *testing.T) {
	p := TX2()
	m := DefaultThermal(p)
	s := NewThermalState(m)
	const power = 10.0
	// After exactly one time constant the step response covers ~63.2%.
	s.Advance(m.TimeConst, power)
	steady := m.AmbientC + m.ResistanceC*power
	frac := (s.TempC - m.AmbientC) / (steady - m.AmbientC)
	if math.Abs(frac-0.632) > 0.01 {
		t.Fatalf("step response after tau = %.3f, want ~0.632", frac)
	}
}

func TestThermalThrottleHysteresis(t *testing.T) {
	p := TX2()
	m := DefaultThermal(p)
	s := NewThermalState(m)

	// Heat past the trip point.
	for i := 0; i < 500 && !s.Throttled; i++ {
		s.Advance(time.Second, 14) // steady = 35 + 77 = 112 > 85
	}
	if !s.Throttled {
		t.Fatal("never throttled at 14 W sustained")
	}
	top := p.NumGPULevels() - 1
	if s.CapLevel(top) != m.MaxLevelHot {
		t.Fatalf("cap = %d, want %d", s.CapLevel(top), m.MaxLevelHot)
	}
	if s.CapLevel(1) != 1 {
		t.Fatal("levels below the cap must pass through")
	}

	// Cool between release and trip: must stay latched until ReleaseC.
	for s.TempC > m.ReleaseC+1 {
		s.Advance(time.Second, 2)
		if s.TempC > m.ReleaseC+1 && !s.Throttled {
			t.Fatal("throttle released above the hysteresis point")
		}
	}
	for i := 0; i < 200 && s.Throttled; i++ {
		s.Advance(time.Second, 2)
	}
	if s.Throttled {
		t.Fatal("throttle never released after cooling")
	}
	if s.ThrottledTime <= 0 {
		t.Fatal("throttled time not accumulated")
	}
}

func TestThermalLowPowerNeverThrottles(t *testing.T) {
	p := TX2()
	m := DefaultThermal(p)
	s := NewThermalState(m)
	for i := 0; i < 1000; i++ {
		s.Advance(time.Second, 5) // steady = 57.5 °C < 85
	}
	if s.Throttled || s.ThrottledTime > 0 {
		t.Fatal("5 W sustained must not throttle")
	}
}
