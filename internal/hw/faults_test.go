package hw

import (
	"testing"
	"time"
)

func TestZeroConfigDisablesInjection(t *testing.T) {
	var cfg FaultConfig
	if cfg.Enabled() {
		t.Fatal("zero config must be disabled")
	}
	if in := NewInjector(cfg); in != nil {
		t.Fatal("zero config must yield a nil injector (legacy code path)")
	}
	// Node-crash-only configs are cluster-level: still no executor injector.
	cfg.NodeCrashProb, cfg.NodeCrashMTBF = 1, time.Second
	if in := NewInjector(cfg); in != nil {
		t.Fatal("crash-only config must yield a nil executor injector")
	}
	for _, at := range (FaultConfig{}).CrashTimes(4) {
		if at != NeverCrash {
			t.Fatal("zero config must never crash nodes")
		}
	}
}

func TestInjectorDeterministic(t *testing.T) {
	cfg := FaultConfig{
		Seed:              7,
		SensorDropoutProb: 0.2, SensorNoiseFrac: 0.1,
		StuckProb: 0.3, ClampProb: 0.2, DelayProb: 0.5,
		DelayLatency: 3 * time.Millisecond,
	}
	a, b := NewInjector(cfg), NewInjector(cfg)
	for i := 0; i < 500; i++ {
		ta, tb := a.Transition(2, 9), b.Transition(2, 9)
		if ta != tb {
			t.Fatalf("transition %d diverged: %+v vs %+v", i, ta, tb)
		}
		ra, rb := a.SensorWindow(), b.SensorWindow()
		if ra != rb {
			t.Fatalf("sensor window %d diverged: %+v vs %+v", i, ra, rb)
		}
	}
}

func TestTransitionOutcomes(t *testing.T) {
	in := NewInjector(FaultConfig{
		Seed: 1, StuckProb: 0.3, ClampProb: 0.3,
		DelayProb: 0.5, DelayLatency: 2 * time.Millisecond,
	})
	var stuck, clamped, delayed, clean int
	for i := 0; i < 2000; i++ {
		tr := in.Transition(0, 10)
		switch {
		case tr.Stuck:
			stuck++
			if tr.Applied != 0 {
				t.Fatalf("stuck transition moved level to %d", tr.Applied)
			}
		case tr.Clamped:
			clamped++
			if tr.Applied <= 0 || tr.Applied >= 10 {
				t.Fatalf("clamped 0→10 applied %d, want interior", tr.Applied)
			}
		default:
			clean++
			if tr.Applied != 10 {
				t.Fatalf("clean transition applied %d, want 10", tr.Applied)
			}
		}
		if tr.ExtraLatency > 0 {
			delayed++
			if tr.ExtraLatency > 2*time.Millisecond {
				t.Fatalf("extra latency %v exceeds configured max", tr.ExtraLatency)
			}
		}
	}
	for name, n := range map[string]int{"stuck": stuck, "clamped": clamped, "delayed": delayed, "clean": clean} {
		if n == 0 {
			t.Fatalf("no %s outcomes in 2000 draws", name)
		}
	}
}

func TestSensorWindowOutcomes(t *testing.T) {
	in := NewInjector(FaultConfig{Seed: 2, SensorDropoutProb: 0.3, SensorNoiseFrac: 0.2})
	var dropped, noisy int
	for i := 0; i < 1000; i++ {
		r := in.SensorWindow()
		if r.Dropped {
			dropped++
			continue
		}
		if !r.Noisy {
			t.Fatal("non-dropped window with NoiseFrac>0 must be noisy")
		}
		noisy++
		if r.PowerScale < 0 || r.PowerScale > 3 || r.BusyScale < 0 || r.BusyScale > 3 {
			t.Fatalf("scale out of physical bounds: %+v", r)
		}
	}
	if dropped == 0 || noisy == 0 {
		t.Fatalf("dropped=%d noisy=%d, want both > 0", dropped, noisy)
	}
}

func TestCrashTimesDeterministicAndSeedSensitive(t *testing.T) {
	cfg := FaultConfig{Seed: 9, NodeCrashProb: 0.5, NodeCrashMTBF: 10 * time.Second}
	a, b := cfg.CrashTimes(8), cfg.CrashTimes(8)
	crashes := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("crash schedule must be deterministic per seed")
		}
		if a[i] != NeverCrash {
			crashes++
			if a[i] <= 0 {
				t.Fatalf("non-positive crash time %v", a[i])
			}
		}
	}
	if crashes == 0 {
		t.Fatal("expected at least one crash at p=0.5 over 8 nodes")
	}
	cfg2 := cfg
	cfg2.Seed = 10
	c := cfg2.CrashTimes(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should give different schedules")
	}
}

func TestForNodeDerivesDistinctStreams(t *testing.T) {
	cfg := FaultConfig{Seed: 3, StuckProb: 0.5}
	a := NewInjector(cfg.ForNode(0))
	b := NewInjector(cfg.ForNode(1))
	same := true
	for i := 0; i < 64; i++ {
		if a.Transition(0, 5) != b.Transition(0, 5) {
			same = false
		}
	}
	if same {
		t.Fatal("per-node streams must differ")
	}
}

func TestFaultStatsAddTotal(t *testing.T) {
	a := FaultStats{SensorDropouts: 1, StuckTransitions: 2, ActuationRetries: 4}
	b := FaultStats{SensorNoisy: 3, ClampedTransitions: 5, DelayedTransitions: 6, WatchdogReasserts: 7}
	a.Add(b)
	want := FaultStats{
		SensorDropouts: 1, SensorNoisy: 3, StuckTransitions: 2,
		ClampedTransitions: 5, DelayedTransitions: 6,
		ActuationRetries: 4, WatchdogReasserts: 7,
	}
	if a != want {
		t.Fatalf("Add = %+v, want %+v", a, want)
	}
	if got := a.Total(); got != 1+3+2+5+6 {
		t.Fatalf("Total = %d", got)
	}
}
