package hw

import (
	"math"
	"testing"
	"time"
)

func TestLadderSizesMatchPaper(t *testing.T) {
	tx2, agx := TX2(), AGX()
	if n := tx2.NumGPULevels(); n != 13 {
		t.Fatalf("TX2 GPU levels = %d, want 13 (paper §3.1)", n)
	}
	if n := agx.NumGPULevels(); n != 14 {
		t.Fatalf("AGX GPU levels = %d, want 14 (paper §3.1)", n)
	}
	if tx2.MinGPUFreq() > 115e6 || tx2.MaxGPUFreq() < 1.29e9 {
		t.Fatalf("TX2 range [%g, %g] outside paper's 114–1300 MHz", tx2.MinGPUFreq(), tx2.MaxGPUFreq())
	}
	if agx.MinGPUFreq() > 115e6 || agx.MaxGPUFreq() < 1.36e9 {
		t.Fatalf("AGX range [%g, %g] outside paper's 114–1370 MHz", agx.MinGPUFreq(), agx.MaxGPUFreq())
	}
}

func TestLaddersAscending(t *testing.T) {
	for _, p := range Platforms() {
		for i := 1; i < len(p.GPUFreqsHz); i++ {
			if p.GPUFreqsHz[i] <= p.GPUFreqsHz[i-1] {
				t.Fatalf("%s GPU ladder not ascending at %d", p.Name, i)
			}
		}
		for i := 1; i < len(p.CPUFreqsHz); i++ {
			if p.CPUFreqsHz[i] <= p.CPUFreqsHz[i-1] {
				t.Fatalf("%s CPU ladder not ascending at %d", p.Name, i)
			}
		}
	}
}

func TestVoltageMonotone(t *testing.T) {
	for _, p := range Platforms() {
		prev := 0.0
		for _, f := range p.GPUFreqsHz {
			v := p.GPUVoltage(f)
			if v < prev {
				t.Fatalf("%s voltage not monotone at %g Hz", p.Name, f)
			}
			if v < p.VMin-1e-9 || v > p.VMax+1e-9 {
				t.Fatalf("%s voltage %g outside [%g, %g]", p.Name, v, p.VMin, p.VMax)
			}
			prev = v
		}
		if p.GPUVoltage(p.MinGPUFreq()) != p.VMin {
			t.Fatalf("%s V(fmin) != VMin", p.Name)
		}
		if math.Abs(p.GPUVoltage(p.MaxGPUFreq())-p.VMax) > 1e-12 {
			t.Fatalf("%s V(fmax) != VMax", p.Name)
		}
	}
}

func TestComputeBoundScalesWithFrequency(t *testing.T) {
	p := TX2()
	// Huge FLOPs, tiny bytes: compute-bound.
	lo := p.GPUOpCost(1e10, 1e4, p.MinGPUFreq())
	hi := p.GPUOpCost(1e10, 1e4, p.MaxGPUFreq())
	ratio := lo.Time.Seconds() / hi.Time.Seconds()
	fRatio := p.MaxGPUFreq() / p.MinGPUFreq()
	if math.Abs(ratio-fRatio)/fRatio > 0.05 {
		t.Fatalf("compute-bound time ratio %.2f, want ~frequency ratio %.2f", ratio, fRatio)
	}
	if hi.ComputeUt < 0.95 {
		t.Fatalf("compute-bound utilization = %.2f", hi.ComputeUt)
	}
}

func TestMemoryBoundInsensitiveToFrequency(t *testing.T) {
	p := TX2()
	// Tiny FLOPs, huge bytes: memory-bound.
	lo := p.GPUOpCost(1e5, 1e9, p.MinGPUFreq())
	hi := p.GPUOpCost(1e5, 1e9, p.MaxGPUFreq())
	if math.Abs(lo.Time.Seconds()-hi.Time.Seconds())/hi.Time.Seconds() > 0.02 {
		t.Fatalf("memory-bound time must not depend on GPU frequency: %v vs %v", lo.Time, hi.Time)
	}
	// ...but high frequency must cost more energy for the same memory-bound work.
	if hi.EnergyJ <= lo.EnergyJ {
		t.Fatalf("memory-bound energy at fmax (%g J) must exceed fmin (%g J)", hi.EnergyJ, lo.EnergyJ)
	}
}

// The central mechanism: a compute-bound op has an interior energy-optimal
// frequency — neither fmin (static power × long runtime) nor fmax (V²f).
func TestOptimalFrequencyInterior(t *testing.T) {
	for _, p := range Platforms() {
		best, bestE := -1, math.Inf(1)
		for i, f := range p.GPUFreqsHz {
			c := p.GPUOpCost(5e9, 5e7, f)
			if c.EnergyJ < bestE {
				best, bestE = i, c.EnergyJ
			}
		}
		if best == 0 || best == p.NumGPULevels()-1 {
			t.Fatalf("%s: optimal level %d is at the ladder edge — no interior optimum", p.Name, best)
		}
	}
}

// AGX must be proportionally more wasteful at fmax than TX2 (the paper's BiM
// gains are ~2x larger on AGX).
func TestAGXMaxFreqPenaltyExceedsTX2(t *testing.T) {
	penalty := func(p *Platform) float64 {
		eMax := p.GPUOpCost(5e9, 5e7, p.MaxGPUFreq()).EnergyJ
		best := math.Inf(1)
		for _, f := range p.GPUFreqsHz {
			if e := p.GPUOpCost(5e9, 5e7, f).EnergyJ; e < best {
				best = e
			}
		}
		return eMax / best
	}
	pTX2, pAGX := penalty(TX2()), penalty(AGX())
	if pAGX <= pTX2 {
		t.Fatalf("AGX fmax penalty %.2f must exceed TX2's %.2f", pAGX, pTX2)
	}
}

func TestIdlePowerBelowBusyPower(t *testing.T) {
	for _, p := range Platforms() {
		f := p.MaxGPUFreq()
		busy := p.GPUOpCost(1e9, 1e6, f).PowerW
		idle := p.GPUIdlePower(f)
		if idle >= busy {
			t.Fatalf("%s idle %g W >= busy %g W", p.Name, idle, busy)
		}
		if idle <= 0 {
			t.Fatalf("%s idle power must be positive", p.Name)
		}
	}
}

func TestCPUCost(t *testing.T) {
	p := TX2()
	fLo, fHi := p.CPUFreqsHz[0], p.CPUFreqsHz[len(p.CPUFreqsHz)-1]
	tLo, _ := p.CPUImageCost(fLo)
	tHi, eHi := p.CPUImageCost(fHi)
	if tLo <= tHi {
		t.Fatal("CPU work must be slower at low frequency")
	}
	if eHi <= 0 {
		t.Fatal("CPU energy must be positive")
	}
	if p.CPUBusyPower(fHi) <= p.CPUBusyPower(fLo) {
		t.Fatal("CPU power must grow with frequency")
	}
}

func TestNearestAndClampLevel(t *testing.T) {
	p := TX2()
	if lvl := p.NearestGPULevel(p.GPUFreqsHz[3] + 1e6); lvl != 3 {
		t.Fatalf("NearestGPULevel = %d, want 3", lvl)
	}
	if p.NearestGPULevel(0) != 0 {
		t.Fatal("NearestGPULevel(0) must be 0")
	}
	if p.NearestGPULevel(1e12) != p.NumGPULevels()-1 {
		t.Fatal("NearestGPULevel(huge) must be top level")
	}
	if p.ClampGPULevel(-3) != 0 || p.ClampGPULevel(99) != p.NumGPULevels()-1 {
		t.Fatal("ClampGPULevel wrong")
	}
	if p.ClampGPULevel(5) != 5 {
		t.Fatal("ClampGPULevel must pass through valid levels")
	}
}

func TestSwitchCost(t *testing.T) {
	p := TX2()
	d, e := p.SwitchCost(p.MaxGPUFreq())
	if d != p.SwitchLatency {
		t.Fatalf("switch latency = %v", d)
	}
	if e <= 0 {
		t.Fatal("switch energy must be positive")
	}
	// Paper §3.3: 100 level changes average to 50 ms total userspace
	// overhead; only the shorter pipeline stall blocks the GPU.
	total := time.Duration(100) * p.UserspaceSwitchCost
	if total != 50*time.Millisecond {
		t.Fatalf("100 switches = %v, want 50ms", total)
	}
	if p.SwitchLatency >= p.UserspaceSwitchCost {
		t.Fatal("pipeline stall must be shorter than the userspace cost")
	}
}

func TestPowerSensorIntegration(t *testing.T) {
	s := NewPowerSensor(10 * time.Millisecond)
	s.Advance(25*time.Millisecond, 4.0, 1e9) // 0.1 J
	s.Advance(25*time.Millisecond, 8.0, 2e9) // 0.2 J
	if math.Abs(s.EnergyJ()-0.3) > 1e-12 {
		t.Fatalf("energy = %g, want 0.3", s.EnergyJ())
	}
	if math.Abs(s.AveragePowerW()-6.0) > 1e-9 {
		t.Fatalf("avg power = %g, want 6", s.AveragePowerW())
	}
	samples := s.Samples()
	if len(samples) != 5 { // ticks at 10,20,30,40,50 ms
		t.Fatalf("samples = %d, want 5", len(samples))
	}
	if samples[0].PowerW != 4.0 || samples[3].PowerW != 8.0 {
		t.Fatalf("sample powers wrong: %+v", samples)
	}
	if samples[4].FreqHz != 2e9 {
		t.Fatalf("sample freq wrong: %+v", samples[4])
	}
}

func TestPowerSensorNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPowerSensor(time.Millisecond).Advance(-1, 1, 1)
}

func TestOpCostPositive(t *testing.T) {
	p := AGX()
	c := p.GPUOpCost(0, 0, p.MinGPUFreq())
	if c.Time <= 0 {
		t.Fatal("zero-work op still costs launch overhead")
	}
	if c.EnergyJ <= 0 {
		t.Fatal("energy must be positive")
	}
}
