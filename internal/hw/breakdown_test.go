package hw

import (
	"math"
	"testing"
)

func TestBreakdownSumsToPower(t *testing.T) {
	for _, p := range Platforms() {
		for _, f := range p.GPUFreqsHz {
			for _, work := range [][2]int64{{5e9, 5e7}, {1e5, 1e9}, {1e8, 1e8}} {
				b := p.GPUOpBreakdown(work[0], work[1], f)
				c := p.GPUOpCost(work[0], work[1], f)
				if math.Abs(b.TotalW()-c.PowerW) > 1e-6*c.PowerW {
					t.Fatalf("%s f=%g: breakdown %.4f != power %.4f", p.Name, f, b.TotalW(), c.PowerW)
				}
				if b.IdleW <= 0 || b.LeakW <= 0 || b.DynamicW <= 0 {
					t.Fatalf("%s: non-positive component: %+v", p.Name, b)
				}
			}
		}
	}
}

func TestBreakdownShapes(t *testing.T) {
	p := TX2()
	// Compute-bound at fmax: dynamic power dominates leakage and DRAM.
	compute := p.GPUOpBreakdown(5e9, 5e6, p.MaxGPUFreq())
	if compute.DynamicW <= compute.LeakW || compute.DynamicW <= compute.DRAMW {
		t.Fatalf("compute-bound fmax must be dynamic-dominated: %+v", compute)
	}
	// Memory-bound: DRAM power significant, dynamic reduced by the clock
	// fraction.
	mem := p.GPUOpBreakdown(1e5, 1e9, p.MaxGPUFreq())
	if mem.DynamicW >= compute.DynamicW {
		t.Fatalf("memory-bound dynamic power must be below compute-bound: %+v vs %+v", mem, compute)
	}
	if mem.DRAMW <= compute.DRAMW {
		t.Fatal("memory-bound DRAM power must exceed compute-bound")
	}
	// At fmin the voltage floor makes leakage minimal.
	lo := p.GPUOpBreakdown(5e9, 5e6, p.MinGPUFreq())
	if lo.LeakW >= compute.LeakW {
		t.Fatal("leakage at fmin must be below fmax")
	}
}
