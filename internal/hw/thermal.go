package hw

import (
	"math"
	"time"
)

// Thermal model (opt-in). Sustained high power heats the SoC through a
// first-order thermal RC; crossing the throttle temperature forces the GPU
// down the ladder, which is how MAXN behaves on real Jetson boards (and the
// effect zTT [6] manages explicitly). The executor integrates temperature
// alongside energy when a ThermalModel is attached, so energy-hungry
// governors (BiM at fmax) additionally lose sustained throughput — an
// emergent penalty PowerLens avoids by running cooler.

// ThermalModel is a first-order (single RC) package model.
type ThermalModel struct {
	AmbientC    float64       // ambient temperature, °C
	ResistanceC float64       // junction-to-ambient thermal resistance, °C/W
	TimeConst   time.Duration // RC time constant
	ThrottleC   float64       // throttling trip point, °C
	ReleaseC    float64       // hysteresis release point, °C
	MaxLevelHot int           // GPU level cap while throttled
}

// DefaultThermal returns a Jetson-class passive-heatsink model: steady-state
// ΔT of R·P over ambient with a ~20 s time constant, sized per platform so
// that sustained fmax operation (the BiM/MAXN regime, ~10 W on TX2 and
// ~20 W on AGX) crosses the 85 °C trip point while mid-ladder operation
// stays comfortably below it.
func DefaultThermal(p *Platform) *ThermalModel {
	resistance := 5.5 // °C/W — TX2-class heatsink
	if p.Name == "AGX" {
		resistance = 2.9 // larger AGX heatsink/fan-off budget
	}
	return &ThermalModel{
		AmbientC:    35,
		ResistanceC: resistance,
		TimeConst:   20 * time.Second,
		ThrottleC:   85,
		ReleaseC:    78,
		MaxLevelHot: p.NumGPULevels() / 2,
	}
}

// ThermalState tracks the integrated junction temperature and throttle
// latch.
type ThermalState struct {
	Model     *ThermalModel
	TempC     float64
	Throttled bool

	ThrottledTime time.Duration // cumulative time spent throttled
	PeakC         float64
}

// NewThermalState starts at ambient.
func NewThermalState(m *ThermalModel) *ThermalState {
	return &ThermalState{Model: m, TempC: m.AmbientC, PeakC: m.AmbientC}
}

// Advance integrates the RC model over an interval at the given power and
// updates the throttle latch (with hysteresis).
func (s *ThermalState) Advance(d time.Duration, powerW float64) {
	m := s.Model
	steady := m.AmbientC + m.ResistanceC*powerW
	// First-order step response toward the steady-state temperature.
	alpha := 1 - math.Exp(-d.Seconds()/m.TimeConst.Seconds())
	s.TempC += (steady - s.TempC) * alpha
	if s.TempC > s.PeakC {
		s.PeakC = s.TempC
	}
	switch {
	case !s.Throttled && s.TempC >= m.ThrottleC:
		s.Throttled = true
	case s.Throttled && s.TempC <= m.ReleaseC:
		s.Throttled = false
	}
	if s.Throttled {
		s.ThrottledTime += d
	}
}

// CapLevel applies the throttle cap to a desired GPU level.
func (s *ThermalState) CapLevel(level int) int {
	if s.Throttled && level > s.Model.MaxLevelHot {
		return s.Model.MaxLevelHot
	}
	return level
}
