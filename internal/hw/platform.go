// Package hw models the two NVIDIA Jetson platforms of the paper's
// evaluation (TX2 and AGX Xavier) analytically. The paper's mechanism —
// memory-bound blocks waste energy at high GPU frequency, compute-bound
// blocks need it, and static power creates an interior energy-optimal
// frequency — is a property of the latency/power model *shape*; this package
// reproduces that shape with published Jetson frequency ladders and
// first-order CMOS power physics (leakage + C·V²·f dynamic power + DRAM
// energy per byte).
//
// Substitution record (DESIGN.md §3): this package stands in for the real
// boards and tegrastats.
package hw

import "time"

// Platform describes one simulated Jetson board.
type Platform struct {
	Name string

	// GPU frequency ladder in Hz, ascending (TX2: 13 levels 114–1300 MHz,
	// AGX: 14 levels 114–1377 MHz, the counts the paper reports).
	GPUFreqsHz []float64
	// CPU frequency ladder in Hz, ascending (used by the FPG-C+G baseline).
	CPUFreqsHz []float64

	// Roofline parameters.
	GPUFlopsPerCycle float64       // FLOPs per GPU clock at full occupancy (2·cores)
	ComputeEff       float64       // achievable fraction of peak compute
	MemBandwidth     float64       // peak DRAM bandwidth, bytes/s
	MemEff           float64       // achievable fraction of peak bandwidth
	LaunchOverhead   time.Duration // fixed per-kernel launch cost

	// GPU voltage/frequency curve. Real Jetson rails hold a voltage floor
	// (VMin) up to a knee frequency and then rise steeply into overdrive:
	// V(x) = VMin + (VMax-VMin)·((x-VKnee)/(1-VKnee))^VGamma for normalized
	// frequency x above VKnee, VMin below. The steep overdrive region is
	// what makes the top ladder levels disproportionately expensive.
	VMin, VMax, VGamma, VKnee float64

	// Power model.
	IdleW        float64 // board static power (SoC, regulators, idle DRAM)
	GPULeakW     float64 // GPU leakage at VMin; scales with (V/VMin)²
	GPUCdyn      float64 // effective switched capacitance: W/(V²·Hz) at u=1
	GPUClockFrac float64 // fraction of dynamic power burned by clocking even when stalled on memory
	DRAMEnergyPB float64 // DRAM energy per byte transferred (J/B)

	// CPU power model (host-side preprocessing; FPG-C+G scales this rail).
	CPUVMin, CPUVMax, CPUVGamma float64
	CPULeakW                    float64
	CPUCdyn                     float64
	CPUWorkPerImage             float64 // host cycles per image (pre/post-processing)

	// DVFS switching. The paper's §3.3 microbenchmark (100 level changes,
	// 50 ms average total) measures the end-to-end userspace cost of a
	// frequency write — UserspaceSwitchCost ≈ 0.5 ms per change. Only part
	// of it stalls the GPU pipeline (PLL relock + clock handover), which is
	// SwitchLatency; the syscall itself overlaps GPU execution.
	SwitchLatency       time.Duration
	UserspaceSwitchCost time.Duration
}

// TX2 returns the simulated Jetson TX2 (Pascal, 256 CUDA cores, LPDDR4).
func TX2() *Platform {
	return &Platform{
		Name: "TX2",
		GPUFreqsHz: []float64{ // 13 levels, 114.75–1300.5 MHz (L4T table)
			114.75e6, 216.75e6, 318.75e6, 420.75e6, 522.75e6, 624.75e6,
			726.75e6, 854.25e6, 930.75e6, 1032.75e6, 1122.0e6, 1236.0e6,
			1300.5e6,
		},
		CPUFreqsHz: []float64{ // A57 cluster ladder (subset)
			345.6e6, 499.2e6, 652.8e6, 806.4e6, 960.0e6, 1113.6e6,
			1267.2e6, 1420.8e6, 1574.4e6, 1728.0e6, 1881.6e6, 2035.2e6,
		},
		GPUFlopsPerCycle: 512, // 256 cores × 2 (FMA)
		ComputeEff:       0.55,
		MemBandwidth:     59.7e9,
		MemEff:           0.38,
		LaunchOverhead:   8 * time.Microsecond,

		VMin: 0.58, VMax: 1.18, VGamma: 1.55, VKnee: 0.40,
		IdleW:        1.7,
		GPULeakW:     0.55,
		GPUCdyn:      4.2e-9,
		GPUClockFrac: 0.45,
		DRAMEnergyPB: 45e-12,

		CPUVMin: 0.70, CPUVMax: 1.10, CPUVGamma: 1.3,
		CPULeakW:        0.25,
		CPUCdyn:         1.3e-9,
		CPUWorkPerImage: 6e6, // ~3 ms at 2 GHz: JPEG decode + resize + tensor copy

		SwitchLatency:       60 * time.Microsecond,
		UserspaceSwitchCost: 500 * time.Microsecond,
	}
}

// AGX returns the simulated Jetson AGX Xavier (Volta, 512 CUDA cores).
// Its wider ladder and steeper top-end voltage make running at fmax
// proportionally more wasteful than on TX2 — the reason the paper's BiM
// gains are about twice as large on AGX.
func AGX() *Platform {
	return &Platform{
		Name: "AGX",
		GPUFreqsHz: []float64{ // 14 levels, 114.75–1377 MHz (L4T table)
			114.75e6, 216.75e6, 318.75e6, 420.75e6, 522.75e6, 624.75e6,
			675.75e6, 828.75e6, 905.25e6, 1032.75e6, 1198.5e6, 1236.75e6,
			1338.75e6, 1377.0e6,
		},
		CPUFreqsHz: []float64{ // Carmel ladder (subset)
			115.2e6, 422.4e6, 729.6e6, 1036.8e6, 1190.4e6, 1344.0e6,
			1497.6e6, 1651.2e6, 1804.8e6, 1958.4e6, 2112.0e6, 2265.6e6,
		},
		GPUFlopsPerCycle: 1024, // 512 cores × 2
		ComputeEff:       0.55,
		MemBandwidth:     137e9,
		MemEff:           0.42,
		LaunchOverhead:   6 * time.Microsecond,

		VMin: 0.52, VMax: 1.28, VGamma: 1.65, VKnee: 0.40,
		IdleW:        2.6,
		GPULeakW:     0.90,
		GPUCdyn:      8.0e-9,
		GPUClockFrac: 0.45,
		DRAMEnergyPB: 32e-12,

		CPUVMin: 0.65, CPUVMax: 1.12, CPUVGamma: 1.4,
		CPULeakW:        0.45,
		CPUCdyn:         2.1e-9,
		CPUWorkPerImage: 6e6,

		SwitchLatency:       60 * time.Microsecond,
		UserspaceSwitchCost: 500 * time.Microsecond,
	}
}

// Platforms returns both evaluation platforms in paper order (TX2, AGX).
func Platforms() []*Platform { return []*Platform{TX2(), AGX()} }

// NumGPULevels returns the number of GPU DVFS levels.
func (p *Platform) NumGPULevels() int { return len(p.GPUFreqsHz) }

// MaxGPUFreq returns the top of the GPU ladder.
func (p *Platform) MaxGPUFreq() float64 { return p.GPUFreqsHz[len(p.GPUFreqsHz)-1] }

// MinGPUFreq returns the bottom of the GPU ladder.
func (p *Platform) MinGPUFreq() float64 { return p.GPUFreqsHz[0] }

// ClampGPULevel clamps a level index into the valid ladder range.
func (p *Platform) ClampGPULevel(level int) int {
	if level < 0 {
		return 0
	}
	if level >= len(p.GPUFreqsHz) {
		return len(p.GPUFreqsHz) - 1
	}
	return level
}

// NearestGPULevel returns the ladder index whose frequency is closest to f.
func (p *Platform) NearestGPULevel(f float64) int {
	best, bestD := 0, -1.0
	for i, lf := range p.GPUFreqsHz {
		d := lf - f
		if d < 0 {
			d = -d
		}
		if bestD < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best
}
