package hw

// PowerBreakdown decomposes the simulated rail power of one operator into
// its physical components — useful for understanding why a block prefers a
// given frequency (which component dominates) and for the documentation
// figures.
type PowerBreakdown struct {
	IdleW    float64 // board static power
	LeakW    float64 // GPU leakage (∝ V²)
	DynamicW float64 // switching power C·V²·f scaled by activity
	DRAMW    float64 // DRAM transfer power
}

// TotalW returns the summed rail power.
func (b PowerBreakdown) TotalW() float64 {
	return b.IdleW + b.LeakW + b.DynamicW + b.DRAMW
}

// GPUOpBreakdown returns the per-component power draw of executing the given
// work at frequency f. The components sum to GPUOpCost's PowerW.
func (p *Platform) GPUOpBreakdown(flops, bytes int64, f float64) PowerBreakdown {
	c := p.GPUOpCost(flops, bytes, f)
	v := p.GPUVoltage(f)
	leak := p.GPULeakW * (v / p.VMin) * (v / p.VMin)
	dyn := p.GPUCdyn * v * v * f * (p.GPUClockFrac + (1-p.GPUClockFrac)*c.ComputeUt)
	dram := 0.0
	if t := c.Time.Seconds(); t > 0 {
		dram = p.DRAMEnergyPB * float64(bytes) / t
	}
	return PowerBreakdown{IdleW: p.IdleW, LeakW: leak, DynamicW: dyn, DRAMW: dram}
}
