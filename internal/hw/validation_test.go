package hw

import "testing"

// Validation against published Jetson measurements. The simulator is
// analytic, so the bands are deliberately generous (roughly ±2x); the tests
// exist to catch calibration drift that would silently change the regime
// the experiments run in. Reference points:
//
//   - TX2 FP32 CNN inference throughput/power at MAXN: ResNet-50-class nets
//     run at tens of FPS and draw roughly 9-15 W board power (Yao et al.
//     [20], NVIDIA developer benchmarks).
//   - AGX Xavier is roughly 2-4x TX2 on the same networks.
//   - Idle board power: a few watts on both.
//
// Models live in internal/models, which imports hw — so the checks use raw
// work quantities (FLOPs/bytes of ResNet-50-class and VGG-19-class
// networks) instead of the builders.

const (
	resnet50FLOPs = 8.2e9
	resnet50Bytes = 0.30e9 // ~par with our IR's accounting
	vgg19FLOPs    = 39.3e9
	vgg19Bytes    = 0.85e9
)

func TestTX2ThroughputBand(t *testing.T) {
	p := TX2()
	c := p.GPUOpCost(resnet50FLOPs, resnet50Bytes, p.MaxGPUFreq())
	fps := 1 / c.Time.Seconds()
	if fps < 15 || fps > 90 {
		t.Fatalf("TX2 resnet50-class FPS = %.1f, published band ~25-50 (allowing 15-90)", fps)
	}
	cv := p.GPUOpCost(vgg19FLOPs, vgg19Bytes, p.MaxGPUFreq())
	vfps := 1 / cv.Time.Seconds()
	if vfps < 3 || vfps > 20 {
		t.Fatalf("TX2 vgg19-class FPS = %.1f, published band ~5-10 (allowing 3-20)", vfps)
	}
}

func TestTX2PowerBand(t *testing.T) {
	p := TX2()
	c := p.GPUOpCost(resnet50FLOPs, resnet50Bytes, p.MaxGPUFreq())
	if c.PowerW < 6 || c.PowerW > 16 {
		t.Fatalf("TX2 busy power = %.1f W, published band ~9-15", c.PowerW)
	}
	idle := p.GPUIdlePower(p.MinGPUFreq())
	if idle < 1 || idle > 5 {
		t.Fatalf("TX2 idle power = %.1f W, published band ~2-3", idle)
	}
}

func TestAGXSpeedupOverTX2(t *testing.T) {
	tx2, agx := TX2(), AGX()
	tTX2 := tx2.GPUOpCost(resnet50FLOPs, resnet50Bytes, tx2.MaxGPUFreq()).Time.Seconds()
	tAGX := agx.GPUOpCost(resnet50FLOPs, resnet50Bytes, agx.MaxGPUFreq()).Time.Seconds()
	speedup := tTX2 / tAGX
	if speedup < 1.5 || speedup > 5 {
		t.Fatalf("AGX speedup over TX2 = %.2fx, published band ~2-4x", speedup)
	}
}

func TestAGXPowerBand(t *testing.T) {
	p := AGX()
	c := p.GPUOpCost(resnet50FLOPs, resnet50Bytes, p.MaxGPUFreq())
	if c.PowerW < 12 || c.PowerW > 35 {
		t.Fatalf("AGX busy power = %.1f W, MAXN band ~15-30", c.PowerW)
	}
}

// The EE-vs-frequency curve must peak at mid frequencies with fmax 30-60%
// less efficient — the published TX2 CNN shape ([20]) that underpins every
// Table 1 gain.
func TestEECurveShapeMatchesPublished(t *testing.T) {
	p := TX2()
	bestEE, fmaxEE := 0.0, 0.0
	bestLvl := 0
	for lvl, f := range p.GPUFreqsHz {
		c := p.GPUOpCost(resnet50FLOPs, resnet50Bytes, f)
		ee := 1 / c.EnergyJ
		if ee > bestEE {
			bestEE, bestLvl = ee, lvl
		}
		if lvl == p.NumGPULevels()-1 {
			fmaxEE = ee
		}
	}
	if bestLvl < 3 || bestLvl > 10 {
		t.Fatalf("EE peak at level %d, expected mid-ladder", bestLvl)
	}
	drop := 1 - fmaxEE/bestEE
	if drop < 0.25 || drop > 0.70 {
		t.Fatalf("EE drop at fmax = %.0f%%, published shape ~30-60%%", drop*100)
	}
}
