package hw

import (
	"testing"
	"time"
)

// Edge-case coverage for the thermal throttle cap and the power sensor,
// exercising the boundaries the resilience runtime leans on: level 0, the
// top of the ladder, temperatures exactly at the trip/release points, and
// zero-duration accounting windows.

func edgeModel() *ThermalModel {
	return &ThermalModel{
		AmbientC:    35,
		ResistanceC: 5,
		TimeConst:   20 * time.Second,
		ThrottleC:   85,
		ReleaseC:    78,
		MaxLevelHot: 3,
	}
}

func TestCapLevelEdges(t *testing.T) {
	m := edgeModel()
	s := NewThermalState(m)

	// Cool: every level passes through untouched, including the extremes.
	for _, lvl := range []int{0, 1, m.MaxLevelHot, m.MaxLevelHot + 1, 99} {
		if got := s.CapLevel(lvl); got != lvl {
			t.Fatalf("cool CapLevel(%d) = %d, want passthrough", lvl, got)
		}
	}

	s.Throttled = true
	// Level 0 must never be raised by the cap.
	if got := s.CapLevel(0); got != 0 {
		t.Fatalf("hot CapLevel(0) = %d, want 0", got)
	}
	// Exactly at the cap: allowed.
	if got := s.CapLevel(m.MaxLevelHot); got != m.MaxLevelHot {
		t.Fatalf("hot CapLevel(cap) = %d, want %d", got, m.MaxLevelHot)
	}
	// One past the cap and the ladder top: clamped to the cap.
	for _, lvl := range []int{m.MaxLevelHot + 1, 1 << 20} {
		if got := s.CapLevel(lvl); got != m.MaxLevelHot {
			t.Fatalf("hot CapLevel(%d) = %d, want %d", lvl, got, m.MaxLevelHot)
		}
	}
}

func TestThrottleLatchExactThresholds(t *testing.T) {
	m := edgeModel()

	// Temperature exactly at the trip point must engage the throttle
	// (the latch condition is >=, not >).
	s := NewThermalState(m)
	s.TempC = m.ThrottleC
	s.Advance(0, 0) // zero-duration step: latch update only, no integration
	if !s.Throttled {
		t.Fatal("temp == ThrottleC must throttle")
	}
	if s.ThrottledTime != 0 {
		t.Fatalf("zero-duration step accumulated %v throttled time", s.ThrottledTime)
	}

	// Just below the trip point: stays free.
	s = NewThermalState(m)
	s.TempC = m.ThrottleC - 1e-9
	s.Advance(0, 0)
	if s.Throttled {
		t.Fatal("temp just below ThrottleC must not throttle")
	}

	// Hysteresis: a throttled part at exactly the release point unlatches...
	s = NewThermalState(m)
	s.Throttled = true
	s.TempC = m.ReleaseC
	s.Advance(0, 0)
	if s.Throttled {
		t.Fatal("temp == ReleaseC must release the throttle")
	}
	// ...but anywhere inside the hysteresis band it stays latched.
	s = NewThermalState(m)
	s.Throttled = true
	s.TempC = (m.ReleaseC + m.ThrottleC) / 2
	s.Advance(time.Millisecond, 0)
	if !s.Throttled {
		t.Fatal("temp inside hysteresis band must stay throttled")
	}
	if s.ThrottledTime != time.Millisecond {
		t.Fatalf("throttled time = %v, want 1ms", s.ThrottledTime)
	}
}

func TestThermalZeroDurationIsIdentity(t *testing.T) {
	s := NewThermalState(edgeModel())
	s.TempC = 60
	s.PeakC = 60
	before := *s
	s.Advance(0, 50) // even at huge power, dt=0 integrates nothing
	if s.TempC != before.TempC || s.PeakC != before.PeakC {
		t.Fatalf("zero-duration Advance changed temp: %+v -> %+v", before, *s)
	}
}

func TestPowerSensorZeroDurationWindows(t *testing.T) {
	s := NewPowerSensor(10 * time.Millisecond)

	// A zero-duration window adds no energy, no time, and no samples.
	s.Advance(0, 123, 456e6)
	if s.EnergyJ() != 0 || s.Now() != 0 || len(s.Samples()) != 0 {
		t.Fatalf("zero window: E=%v t=%v samples=%d", s.EnergyJ(), s.Now(), len(s.Samples()))
	}
	if s.AveragePowerW() != 0 {
		t.Fatalf("average power at t=0 = %v, want 0 (no divide-by-zero)", s.AveragePowerW())
	}

	// Zero-duration windows interleaved with real ones must not disturb
	// the exact integral or the sample clock.
	s.Advance(15*time.Millisecond, 2, 100e6)
	mid := s.EnergyJ()
	for i := 0; i < 5; i++ {
		s.Advance(0, 999, 999e6)
	}
	if s.EnergyJ() != mid {
		t.Fatalf("zero windows changed energy: %v -> %v", mid, s.EnergyJ())
	}
	if n := len(s.Samples()); n != 1 {
		t.Fatalf("samples = %d, want 1 (tick at 10ms only)", n)
	}
	s.Advance(15*time.Millisecond, 4, 200e6)
	wantE := 2*0.015 + 4*0.015
	if diff := s.EnergyJ() - wantE; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("energy = %v, want %v", s.EnergyJ(), wantE)
	}
	// Ticks at 10, 20, 30 ms → 3 samples; the second window's power is
	// attributed to the 20 ms and 30 ms ticks.
	samples := s.Samples()
	if len(samples) != 3 {
		t.Fatalf("samples = %d, want 3", len(samples))
	}
	if samples[1].PowerW != 4 || samples[2].PowerW != 4 {
		t.Fatalf("later ticks must carry the active window's power: %+v", samples[1:])
	}

	// A sample tick landing exactly on a window boundary belongs to the
	// window that ends there (nextTick <= end is inclusive).
	s2 := NewPowerSensor(10 * time.Millisecond)
	s2.Advance(10*time.Millisecond, 7, 1e6)
	got := s2.Samples()
	if len(got) != 1 || got[0].At != 10*time.Millisecond || got[0].PowerW != 7 {
		t.Fatalf("boundary tick: %+v", got)
	}
}
