package hw

import (
	"math/rand"
	"time"

	"powerlens/internal/obs"
)

// Fault-injection layer. Real Jetson-class boards break the clean-sensor /
// clean-actuation assumptions the simulator otherwise makes: tegrastats
// drops samples and reads noisy rails, nvpmodel and thermal management clamp
// requested frequency transitions, transitions land late (PLL relock,
// devfreq queueing) or not at all, and in a §5-style cloud deployment whole
// nodes disappear. This file models all of that as a seeded, deterministic
// process so resilience experiments are reproducible: the same FaultConfig
// seed yields the same fault schedule on every run.
//
// The zero FaultConfig is fault-free and NewInjector returns nil for it, so
// fault-free runs take exactly the pre-fault code paths (bit-identical
// results).

// FaultConfig describes one deterministic fault schedule. The zero value
// disables all faults.
type FaultConfig struct {
	// Seed drives every random draw in the schedule.
	Seed int64

	// Sensor faults, applied per governor sampling window.
	SensorDropoutProb float64 // probability a window's reading is lost (stale stats delivered)
	SensorNoiseFrac   float64 // stddev of multiplicative gaussian noise on readings

	// DVFS actuation faults, applied per requested level transition.
	StuckProb    float64       // transition silently fails; frequency stays put
	ClampProb    float64       // transition is clamped partway (nvpmodel/thermal limit)
	DelayProb    float64       // transition pays extra latency on top of SwitchLatency
	DelayLatency time.Duration // magnitude of the extra transition latency

	// Node crashes (cloud deployments). Each node crashes at most once:
	// with probability NodeCrashProb, at a time drawn from an exponential
	// distribution with mean NodeCrashMTBF.
	NodeCrashProb float64
	NodeCrashMTBF time.Duration
}

// Enabled reports whether any executor-level fault can fire. Node-crash
// settings are cluster-level and do not by themselves enable an injector.
func (c FaultConfig) Enabled() bool {
	return c.SensorDropoutProb > 0 || c.SensorNoiseFrac > 0 ||
		c.StuckProb > 0 || c.ClampProb > 0 || c.DelayProb > 0
}

// ForNode derives a per-node config with an independent seed, so nodes
// simulated concurrently draw from disjoint deterministic streams regardless
// of goroutine scheduling.
func (c FaultConfig) ForNode(node int) FaultConfig {
	c.Seed = c.Seed + int64(node+1)*7919 // distinct odd stride per node
	return c
}

// NeverCrash marks a node that stays up for the whole run.
const NeverCrash = time.Duration(1<<63 - 1)

// CrashTimes returns the deterministic per-node crash schedule for n nodes:
// NeverCrash for surviving nodes, otherwise the crash instant. The schedule
// uses its own rng stream so it is independent of executor-level draws.
func (c FaultConfig) CrashTimes(n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = NeverCrash
	}
	if c.NodeCrashProb <= 0 || c.NodeCrashMTBF <= 0 {
		return out
	}
	rng := rand.New(rand.NewSource(c.Seed ^ 0x5DEECE66D))
	for i := range out {
		crash := rng.Float64() < c.NodeCrashProb
		at := time.Duration(rng.ExpFloat64() * float64(c.NodeCrashMTBF))
		if crash && at > 0 {
			out[i] = at
		}
	}
	return out
}

// FaultStats counts injected faults and the runtime's recovery actions. It
// appears in sim.Result and, aggregated, in cloud.Result.
type FaultStats struct {
	SensorDropouts     int // governor windows whose reading was lost
	SensorNoisy        int // governor windows with perturbed readings
	StuckTransitions   int // requested transitions that silently failed
	ClampedTransitions int // transitions clamped partway to the target
	DelayedTransitions int // transitions that paid extra latency
	ActuationRetries   int // immediate bounded-backoff retries of stuck transitions
	WatchdogReasserts  int // stuck frequencies detected and re-asserted later
}

// Add accumulates another stats block (cluster aggregation).
func (s *FaultStats) Add(o FaultStats) {
	s.SensorDropouts += o.SensorDropouts
	s.SensorNoisy += o.SensorNoisy
	s.StuckTransitions += o.StuckTransitions
	s.ClampedTransitions += o.ClampedTransitions
	s.DelayedTransitions += o.DelayedTransitions
	s.ActuationRetries += o.ActuationRetries
	s.WatchdogReasserts += o.WatchdogReasserts
}

// Total returns the number of injected fault events (not recovery actions).
func (s FaultStats) Total() int {
	return s.SensorDropouts + s.SensorNoisy + s.StuckTransitions +
		s.ClampedTransitions + s.DelayedTransitions
}

// Injector draws fault outcomes from a seeded stream. A nil *Injector is
// valid and injects nothing; NewInjector returns nil for a fault-free
// config, which keeps fault-free call sites on the exact legacy code path.
type Injector struct {
	cfg FaultConfig
	rng *rand.Rand

	// Observability handles (zero-valued and inert until SetObserver).
	mWindows obs.Counter // hw_sensor_windows_total{outcome}
	mFaults  obs.Counter // hw_dvfs_faults_total{kind}
}

// NewInjector builds an injector for the config, or nil if the config
// cannot produce executor-level faults.
func NewInjector(cfg FaultConfig) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Config returns the schedule this injector draws from.
func (in *Injector) Config() FaultConfig { return in.cfg }

// SetObserver points the injector's fault counters at an observer's metrics
// registry. Observation never alters the draw stream, so instrumented and
// bare runs stay bit-identical.
func (in *Injector) SetObserver(o *obs.Observer) {
	if in == nil || o == nil || o.Metrics == nil {
		return
	}
	in.mWindows = o.Metrics.Counter("hw_sensor_windows_total",
		"Governor sampling windows observed through the fault layer, by outcome.", "outcome")
	in.mFaults = o.Metrics.Counter("hw_dvfs_faults_total",
		"DVFS actuation fault outcomes drawn by the injector, by kind.", "kind")
}

// SensorReading is the fault outcome for one governor window observation.
type SensorReading struct {
	Dropped    bool    // reading lost entirely
	Noisy      bool    // reading perturbed
	PowerScale float64 // multiplicative factor on observed power
	BusyScale  float64 // multiplicative factor on observed busy fractions
}

// SensorWindow draws the fault outcome for the next governor window.
func (in *Injector) SensorWindow() SensorReading {
	r := SensorReading{PowerScale: 1, BusyScale: 1}
	if in.cfg.SensorDropoutProb > 0 && in.rng.Float64() < in.cfg.SensorDropoutProb {
		r.Dropped = true
		in.mWindows.Inc("dropped")
		return r
	}
	if in.cfg.SensorNoiseFrac > 0 {
		r.Noisy = true
		r.PowerScale = clampScale(1 + in.rng.NormFloat64()*in.cfg.SensorNoiseFrac)
		r.BusyScale = clampScale(1 + in.rng.NormFloat64()*in.cfg.SensorNoiseFrac)
		in.mWindows.Inc("noisy")
		return r
	}
	in.mWindows.Inc("clean")
	return r
}

// clampScale keeps multiplicative noise physical (no negative readings,
// bounded blow-up).
func clampScale(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 3 {
		return 3
	}
	return s
}

// Transition is the fault outcome of one requested DVFS level change.
type Transition struct {
	Applied      int           // level actually in effect afterwards
	ExtraLatency time.Duration // additional pipeline stall beyond SwitchLatency
	Stuck        bool          // request silently ignored (Applied == from)
	Clamped      bool          // request limited partway toward the target
}

// Transition draws the outcome of a from→to level change. Exactly one of
// stuck/clamped can fire per request; extra latency can accompany either.
func (in *Injector) Transition(from, to int) Transition {
	tr := Transition{Applied: to}
	roll := in.rng.Float64()
	switch {
	case roll < in.cfg.StuckProb:
		tr.Stuck = true
		tr.Applied = from
		in.mFaults.Inc("stuck")
	case roll < in.cfg.StuckProb+in.cfg.ClampProb:
		tr.Clamped = true
		tr.Applied = (from + to) / 2
		if tr.Applied == from && to != from {
			// Single-step transitions cannot be halved; a clamp there is a
			// full block, still reported as clamped.
			tr.Applied = from
		}
		in.mFaults.Inc("clamped")
	default:
		in.mFaults.Inc("clean")
	}
	if in.cfg.DelayProb > 0 && in.rng.Float64() < in.cfg.DelayProb {
		tr.ExtraLatency = time.Duration(in.rng.Float64() * float64(in.cfg.DelayLatency))
		in.mFaults.Inc("delayed")
	}
	return tr
}
