package graph_test

import (
	"fmt"

	"powerlens/internal/graph"
)

// Build a small convolutional network with the builder API and inspect its
// cost accounting.
func Example() {
	g := graph.New("tiny")
	in := g.Input(3, 32, 32)
	x := g.ReLU(g.BatchNorm(g.Conv(in, 16, 3, 1, 1, 1)))
	x = g.MaxPool(x, 2, 2, 0)
	x = g.Flatten(g.AdaptiveAvgPool(x, 1, 1))
	g.Linear(x, 10)

	fmt.Println("layers:", len(g.Layers))
	fmt.Println("output:", g.Output().OutShape)
	fmt.Printf("MFLOPs: %.1f\n", float64(g.TotalFLOPs())/1e6)
	// Output:
	// layers: 8
	// output: 10x1x1
	// MFLOPs: 1.0
}

// Residual connections are expressed with Add; branch/residual structure is
// visible in the macro features.
func ExampleGraph_Add() {
	g := graph.New("res")
	in := g.Input(8, 8, 8)
	c := g.ReLU(g.Conv(in, 8, 3, 1, 1, 1))
	g.Add(c, in)

	fmt.Println("residual joins:", g.NumResidual())
	fmt.Println("branch points:", g.NumBranches())
	// Output:
	// residual joins: 1
	// branch points: 1
}

// FuseElementwise folds BN/activation chains into their producing compute
// op, conserving arithmetic while shedding intermediate traffic.
func ExampleGraph_FuseElementwise() {
	g := graph.New("eager")
	in := g.Input(16, 16, 16)
	c := g.Conv(in, 16, 3, 1, 1, 1)
	g.ReLU(g.BatchNorm(c))

	f := g.FuseElementwise()
	fmt.Println("layers:", len(g.Layers), "->", len(f.Layers))
	fmt.Println("flops conserved:", f.TotalFLOPs() == g.TotalFLOPs())
	fmt.Println("traffic reduced:", f.TotalMemBytes() < g.TotalMemBytes())
	// Output:
	// layers: 4 -> 2
	// flops conserved: true
	// traffic reduced: true
}
