package graph

import (
	"testing"
)

func simpleCNN() *Graph {
	g := New("simple")
	in := g.Input(3, 224, 224)
	c1 := g.Conv(in, 64, 7, 2, 3, 1)
	b1 := g.BatchNorm(c1)
	r1 := g.ReLU(b1)
	p1 := g.MaxPool(r1, 3, 2, 1)
	c2 := g.Conv(p1, 128, 3, 1, 1, 1)
	gp := g.AdaptiveAvgPool(c2, 1, 1)
	fl := g.Flatten(gp)
	g.Linear(fl, 1000)
	return g
}

func TestBuilderShapes(t *testing.T) {
	g := simpleCNN()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// conv7x7 s2 p3 on 224 -> 112
	if got := g.Layer(1).OutShape; got != (Shape{64, 112, 112}) {
		t.Fatalf("conv1 out = %v", got)
	}
	// maxpool 3 s2 p1 on 112 -> 56
	if got := g.Layer(4).OutShape; got != (Shape{64, 56, 56}) {
		t.Fatalf("pool out = %v", got)
	}
	if got := g.Output().OutShape; got != (Shape{1000, 1, 1}) {
		t.Fatalf("final out = %v", got)
	}
}

func TestConvCosts(t *testing.T) {
	g := New("t")
	in := g.Input(3, 224, 224)
	c := g.Conv(in, 64, 7, 2, 3, 1)
	// FLOPs = 2 * 64*112*112 * 3*7*7
	want := int64(2) * 64 * 112 * 112 * 3 * 7 * 7
	if c.FLOPs() != want {
		t.Fatalf("conv FLOPs = %d, want %d", c.FLOPs(), want)
	}
	wantP := int64(64*3*7*7 + 64)
	if c.Params() != wantP {
		t.Fatalf("conv params = %d, want %d", c.Params(), wantP)
	}
	if c.MemBytes() <= 0 {
		t.Fatal("conv mem bytes must be positive")
	}
}

func TestDepthwiseConvCosts(t *testing.T) {
	g := New("t")
	in := g.Input(32, 56, 56)
	dw := g.Conv(in, 32, 3, 1, 1, 32) // depthwise
	// per-output-element MACs = (32/32)*3*3 = 9
	want := int64(2) * 9 * dw.OutShape.Elems()
	if dw.FLOPs() != want {
		t.Fatalf("depthwise FLOPs = %d, want %d", dw.FLOPs(), want)
	}
	// Depthwise conv must be far less arithmetically intense than dense conv.
	dense := g.Conv(in, 32, 3, 1, 1, 1)
	if dw.ArithmeticIntensity() >= dense.ArithmeticIntensity() {
		t.Fatalf("depthwise AI %.2f >= dense AI %.2f", dw.ArithmeticIntensity(), dense.ArithmeticIntensity())
	}
}

func TestConvGroupMismatchPanics(t *testing.T) {
	g := New("t")
	in := g.Input(3, 8, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: groups does not divide channels")
		}
	}()
	g.Conv(in, 4, 3, 1, 1, 2)
}

func TestLinearCosts(t *testing.T) {
	g := New("t")
	in := g.Input(512, 1, 1)
	l := g.Linear(in, 1000)
	if l.FLOPs() != 2*512*1000 {
		t.Fatalf("linear FLOPs = %d", l.FLOPs())
	}
	if l.Params() != 512*1000+1000 {
		t.Fatalf("linear params = %d", l.Params())
	}
}

func TestLinearPerToken(t *testing.T) {
	g := New("t")
	in := g.Input(768, 197, 1) // ViT token sequence
	l := g.Linear(in, 3072)
	if l.OutShape != (Shape{3072, 197, 1}) {
		t.Fatalf("token linear out = %v", l.OutShape)
	}
	if l.FLOPs() != 2*197*768*3072 {
		t.Fatalf("token linear FLOPs = %d", l.FLOPs())
	}
}

func TestAttentionCosts(t *testing.T) {
	g := New("t")
	in := g.Input(768, 197, 1)
	a := g.Attention(in, 12)
	n, d := int64(197), int64(768)
	want := 8*n*d*d + 4*n*n*d
	if a.FLOPs() != want {
		t.Fatalf("attention FLOPs = %d, want %d", a.FLOPs(), want)
	}
	if a.Params() != 4*d*d+4*d {
		t.Fatalf("attention params = %d", a.Params())
	}
	if a.OutShape != in.OutShape {
		t.Fatal("attention must preserve shape")
	}
}

func TestResidualAddAndBranches(t *testing.T) {
	g := New("t")
	in := g.Input(64, 56, 56)
	c1 := g.Conv(in, 64, 3, 1, 1, 1)
	sum := g.Add(c1, in)
	if sum.OutShape != in.OutShape {
		t.Fatalf("add out = %v", sum.OutShape)
	}
	if g.NumResidual() != 1 {
		t.Fatalf("NumResidual = %d", g.NumResidual())
	}
	// `in` feeds both c1 and sum -> one branching layer.
	if g.NumBranches() != 1 {
		t.Fatalf("NumBranches = %d", g.NumBranches())
	}
}

func TestAddShapeMismatchPanics(t *testing.T) {
	g := New("t")
	a := g.Input(3, 8, 8)
	b := g.Conv(a, 6, 3, 1, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Add(a, b)
}

func TestConcat(t *testing.T) {
	g := New("t")
	in := g.Input(16, 28, 28)
	b1 := g.Conv(in, 32, 1, 1, 0, 1)
	b2 := g.Conv(in, 48, 3, 1, 1, 1)
	cat := g.Concat(b1, b2)
	if cat.OutShape != (Shape{80, 28, 28}) {
		t.Fatalf("concat out = %v", cat.OutShape)
	}
	if cat.FLOPs() != 0 {
		t.Fatal("concat is data movement, not compute")
	}
}

func TestDepthVsLayerCount(t *testing.T) {
	g := New("t")
	in := g.Input(8, 8, 8)
	b1 := g.Conv(in, 8, 3, 1, 1, 1) // parallel branch 1
	b2 := g.Conv(in, 8, 3, 1, 1, 1) // parallel branch 2
	g.Add(b1, b2)
	// 4 layers but depth 3 (input -> conv -> add).
	if len(g.Layers) != 4 {
		t.Fatalf("layer count = %d", len(g.Layers))
	}
	if g.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3", g.Depth())
	}
}

func TestPatchEmbedAndClassToken(t *testing.T) {
	g := New("t")
	in := g.Input(3, 224, 224)
	pe := g.PatchEmbed(in, 768, 16)
	if pe.OutShape != (Shape{768, 196, 1}) {
		t.Fatalf("patchembed out = %v", pe.OutShape)
	}
	ct := g.ClassToken(pe)
	if ct.OutShape != (Shape{768, 197, 1}) {
		t.Fatalf("classtoken out = %v", ct.OutShape)
	}
}

func TestValidateCatchesBadGraph(t *testing.T) {
	g := New("bad")
	in := g.Input(3, 4, 4)
	c := g.Conv(in, 8, 3, 1, 1, 1)
	c.Inputs = []int{5} // forward reference
	if err := g.Validate(); err == nil {
		t.Fatal("Validate must reject forward references")
	}
	if err := New("empty").Validate(); err == nil {
		t.Fatal("Validate must reject empty graphs")
	}
}

func TestTotalsConsistency(t *testing.T) {
	g := simpleCNN()
	var f, p, m int64
	for _, l := range g.Layers {
		f += l.FLOPs()
		p += l.Params()
		m += l.MemBytes()
	}
	if g.TotalFLOPs() != f || g.TotalParams() != p || g.TotalMemBytes() != m {
		t.Fatal("totals must equal the sum over layers")
	}
	if f <= 0 || p <= 0 || m <= 0 {
		t.Fatal("totals must be positive for a real CNN")
	}
}

func TestKindHistogram(t *testing.T) {
	g := simpleCNN()
	h := g.KindHistogram()
	if h[OpConv2D] != 2 || h[OpLinear] != 1 || h[OpInput] != 1 {
		t.Fatalf("histogram = %v", h)
	}
	if g.CountKind(OpConv2D) != 2 {
		t.Fatalf("CountKind(conv) = %d", g.CountKind(OpConv2D))
	}
}

func TestOpKindString(t *testing.T) {
	if OpConv2D.String() != "conv2d" || OpAttention.String() != "attention" {
		t.Fatal("OpKind names wrong")
	}
	if OpKind(-1).String() != "unknown" || OpKind(999).String() != "unknown" {
		t.Fatal("out-of-range OpKind must stringify as unknown")
	}
}

func TestActivationRejectsNonActivation(t *testing.T) {
	g := New("t")
	in := g.Input(3, 4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Activation(in, OpConv2D)
}

func TestShapeHelpers(t *testing.T) {
	s := Shape{3, 224, 224}
	if s.Elems() != 3*224*224 {
		t.Fatal("Elems wrong")
	}
	if s.Bytes() != 4*3*224*224 {
		t.Fatal("Bytes wrong")
	}
	if s.String() != "3x224x224" {
		t.Fatalf("String = %q", s.String())
	}
	if convOut(224, 7, 2, 3) != 112 {
		t.Fatal("convOut wrong")
	}
	if convOut(1, 3, 1, 0) != 1 {
		t.Fatal("convOut must clamp to 1")
	}
}

func TestMulBroadcast(t *testing.T) {
	g := New("t")
	x := g.Input(64, 14, 14)
	se := g.AdaptiveAvgPool(x, 1, 1)
	gate := g.Activation(g.Linear(g.Flatten(se), 64), OpSigmoid)
	out := g.Mul(x, gate)
	if out.OutShape != x.OutShape {
		t.Fatalf("mul out = %v", out.OutShape)
	}
}
