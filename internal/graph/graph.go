package graph

import (
	"fmt"
	"sync/atomic"
)

// Graph is a DAG of layers in topological order (builder methods only ever
// reference already-added layers, so construction order is a valid
// topological order).
type Graph struct {
	Name   string
	Layers []*Layer

	// digestMemo caches Digest's value (0 = not computed yet); builder
	// appends clear it. Atomic because fleet node goroutines digest shared
	// graphs concurrently.
	digestMemo atomic.Uint64
}

// New returns an empty graph with the given name.
func New(name string) *Graph { return &Graph{Name: name} }

// add appends a layer, assigning its ID, and returns it.
func (g *Graph) add(l *Layer) *Layer {
	l.ID = len(g.Layers)
	g.Layers = append(g.Layers, l)
	g.digestMemo.Store(0)
	return l
}

// Layer returns the layer with the given ID.
func (g *Graph) Layer(id int) *Layer { return g.Layers[id] }

// Input adds the network input layer (e.g. 3x224x224 for the ImageNet nets).
func (g *Graph) Input(c, h, w int) *Layer {
	return g.add(&Layer{Name: "input", Kind: OpInput, OutShape: Shape{c, h, w}})
}

// Conv adds a 2-D convolution. groups==0 means 1; groups==inC is depthwise.
func (g *Graph) Conv(in *Layer, outC, kernel, stride, pad, groups int) *Layer {
	is := in.OutShape
	if groups <= 0 {
		groups = 1
	}
	if is.C%groups != 0 || outC%groups != 0 {
		panic(fmt.Sprintf("graph %q: conv groups %d does not divide channels %d->%d", g.Name, groups, is.C, outC))
	}
	out := Shape{outC, convOut(is.H, kernel, stride, pad), convOut(is.W, kernel, stride, pad)}
	return g.add(&Layer{
		Name: fmt.Sprintf("conv%dx%d", kernel, kernel), Kind: OpConv2D,
		Inputs: []int{in.ID}, InShape: is, OutShape: out,
		Attrs: Attrs{KernelH: kernel, KernelW: kernel, StrideH: stride, StrideW: stride,
			PadH: pad, PadW: pad, Groups: groups, OutChannels: outC},
	})
}

// MaxPool adds a max-pooling layer.
func (g *Graph) MaxPool(in *Layer, kernel, stride, pad int) *Layer {
	is := in.OutShape
	out := Shape{is.C, convOut(is.H, kernel, stride, pad), convOut(is.W, kernel, stride, pad)}
	return g.add(&Layer{Name: "maxpool", Kind: OpMaxPool2D, Inputs: []int{in.ID},
		InShape: is, OutShape: out,
		Attrs: Attrs{KernelH: kernel, KernelW: kernel, StrideH: stride, StrideW: stride, PadH: pad, PadW: pad}})
}

// AvgPool adds an average-pooling layer.
func (g *Graph) AvgPool(in *Layer, kernel, stride, pad int) *Layer {
	is := in.OutShape
	out := Shape{is.C, convOut(is.H, kernel, stride, pad), convOut(is.W, kernel, stride, pad)}
	return g.add(&Layer{Name: "avgpool", Kind: OpAvgPool2D, Inputs: []int{in.ID},
		InShape: is, OutShape: out,
		Attrs: Attrs{KernelH: kernel, KernelW: kernel, StrideH: stride, StrideW: stride, PadH: pad, PadW: pad}})
}

// AdaptiveAvgPool adds a pooling layer with a fixed output spatial size.
func (g *Graph) AdaptiveAvgPool(in *Layer, outH, outW int) *Layer {
	is := in.OutShape
	return g.add(&Layer{Name: "adaptiveavgpool", Kind: OpAdaptiveAvgPool2D, Inputs: []int{in.ID},
		InShape: is, OutShape: Shape{is.C, outH, outW},
		Attrs: Attrs{TargetH: outH, TargetW: outW}})
}

// BatchNorm adds an inference-mode batch normalization.
func (g *Graph) BatchNorm(in *Layer) *Layer {
	is := in.OutShape
	return g.add(&Layer{Name: "bn", Kind: OpBatchNorm, Inputs: []int{in.ID},
		InShape: is, OutShape: is, Attrs: Attrs{NormDim: is.C}})
}

// LayerNorm adds a layer normalization over the channel dimension.
func (g *Graph) LayerNorm(in *Layer) *Layer {
	is := in.OutShape
	return g.add(&Layer{Name: "ln", Kind: OpLayerNorm, Inputs: []int{in.ID},
		InShape: is, OutShape: is, Attrs: Attrs{NormDim: is.C}})
}

// LRN adds a local response normalization (AlexNet, GoogLeNet).
func (g *Graph) LRN(in *Layer) *Layer {
	is := in.OutShape
	return g.add(&Layer{Name: "lrn", Kind: OpLocalResponseNorm, Inputs: []int{in.ID},
		InShape: is, OutShape: is, Attrs: Attrs{NormDim: is.C}})
}

// Activation adds an element-wise activation of the given kind.
func (g *Graph) Activation(in *Layer, kind OpKind) *Layer {
	switch kind {
	case OpReLU, OpGELU, OpHardSwish, OpHardSigmoid, OpSiLU, OpSigmoid, OpSoftmax:
	default:
		panic(fmt.Sprintf("graph %q: %v is not an activation", g.Name, kind))
	}
	is := in.OutShape
	return g.add(&Layer{Name: kind.String(), Kind: kind, Inputs: []int{in.ID},
		InShape: is, OutShape: is})
}

// ReLU is shorthand for Activation(in, OpReLU).
func (g *Graph) ReLU(in *Layer) *Layer { return g.Activation(in, OpReLU) }

// Add joins two branches with an element-wise residual add.
func (g *Graph) Add(a, b *Layer) *Layer {
	if a.OutShape != b.OutShape {
		panic(fmt.Sprintf("graph %q: add shape mismatch %v vs %v", g.Name, a.OutShape, b.OutShape))
	}
	return g.add(&Layer{Name: "add", Kind: OpAdd, Inputs: []int{a.ID, b.ID},
		InShape: a.OutShape, OutShape: a.OutShape})
}

// Mul joins two branches with an element-wise multiply (SE gating). The
// second operand may be a per-channel vector (H=W=1) broadcast over space.
func (g *Graph) Mul(a, b *Layer) *Layer {
	if a.OutShape.C != b.OutShape.C {
		panic(fmt.Sprintf("graph %q: mul channel mismatch %v vs %v", g.Name, a.OutShape, b.OutShape))
	}
	return g.add(&Layer{Name: "mul", Kind: OpMul, Inputs: []int{a.ID, b.ID},
		InShape: a.OutShape, OutShape: a.OutShape})
}

// Concat concatenates branches along the channel dimension.
func (g *Graph) Concat(ins ...*Layer) *Layer {
	if len(ins) == 0 {
		panic("graph: concat of nothing")
	}
	first := ins[0].OutShape
	c := 0
	ids := make([]int, len(ins))
	for i, in := range ins {
		if in.OutShape.H != first.H || in.OutShape.W != first.W {
			panic(fmt.Sprintf("graph %q: concat spatial mismatch %v vs %v", g.Name, in.OutShape, first))
		}
		c += in.OutShape.C
		ids[i] = in.ID
	}
	return g.add(&Layer{Name: "concat", Kind: OpConcat, Inputs: ids,
		InShape: first, OutShape: Shape{c, first.H, first.W}})
}

// Flatten collapses spatial dimensions into the channel dimension.
func (g *Graph) Flatten(in *Layer) *Layer {
	is := in.OutShape
	return g.add(&Layer{Name: "flatten", Kind: OpFlatten, Inputs: []int{in.ID},
		InShape: is, OutShape: Shape{int(is.Elems()), 1, 1}})
}

// Dropout adds an inference-time no-op dropout (kept for structural
// fidelity with the torchvision graphs).
func (g *Graph) Dropout(in *Layer) *Layer {
	is := in.OutShape
	return g.add(&Layer{Name: "dropout", Kind: OpDropout, Inputs: []int{in.ID},
		InShape: is, OutShape: is})
}

// Linear adds a fully connected layer. For token inputs (H>1) it applies per
// token, preserving the sequence length.
func (g *Graph) Linear(in *Layer, outFeatures int) *Layer {
	is := in.OutShape
	out := Shape{outFeatures, is.H, is.W}
	return g.add(&Layer{Name: "linear", Kind: OpLinear, Inputs: []int{in.ID},
		InShape: is, OutShape: out,
		Attrs: Attrs{InFeatures: is.C, OutFeatures: outFeatures}})
}

// PatchEmbed adds the ViT patchify convolution: non-overlapping patchSize
// convolution projecting to embedDim, then flattening to a token sequence of
// shape {embedDim, numPatches, 1}.
func (g *Graph) PatchEmbed(in *Layer, embedDim, patchSize int) *Layer {
	is := in.OutShape
	nH := is.H / patchSize
	nW := is.W / patchSize
	out := Shape{embedDim, nH * nW, 1}
	return g.add(&Layer{Name: "patchembed", Kind: OpPatchEmbed, Inputs: []int{in.ID},
		InShape: is, OutShape: out,
		Attrs: Attrs{KernelH: patchSize, KernelW: patchSize, StrideH: patchSize, StrideW: patchSize,
			Groups: 1, OutChannels: embedDim, EmbedDim: embedDim}})
}

// ClassToken prepends the class token and adds positional embeddings.
func (g *Graph) ClassToken(in *Layer) *Layer {
	is := in.OutShape
	out := Shape{is.C, is.H + 1, 1}
	return g.add(&Layer{Name: "clstoken", Kind: OpClassToken, Inputs: []int{in.ID},
		InShape: is, OutShape: out, Attrs: Attrs{EmbedDim: is.C}})
}

// Attention adds a multi-head self-attention layer over a token sequence.
func (g *Graph) Attention(in *Layer, heads int) *Layer {
	is := in.OutShape
	return g.add(&Layer{Name: "attention", Kind: OpAttention, Inputs: []int{in.ID},
		InShape: is, OutShape: is,
		Attrs: Attrs{Heads: heads, EmbedDim: is.C}})
}

// SelectToken keeps a single token (the class token) from a sequence,
// modeled as a flatten-style cheap reshape.
func (g *Graph) SelectToken(in *Layer) *Layer {
	is := in.OutShape
	return g.add(&Layer{Name: "selecttoken", Kind: OpFlatten, Inputs: []int{in.ID},
		InShape: is, OutShape: Shape{is.C, 1, 1}})
}
