package graph

// Layer is a single operator node in the graph. Layers are created through
// the Graph builder methods, which perform shape inference and assign IDs in
// topological order.
type Layer struct {
	ID     int
	Name   string
	Kind   OpKind
	Inputs []int // IDs of producer layers
	Attrs  Attrs

	InShape  Shape // shape of the (first) input
	OutShape Shape

	// Fusion residue (FuseElementwise): arithmetic and parameters of
	// elementwise followers folded into this layer. Their intermediate
	// activation traffic is gone; the math remains.
	fusedFLOPs  int64
	fusedParams int64
}

// FLOPs returns the floating-point operation count of the layer for one
// inference (a multiply-accumulate counts as 2 FLOPs, the usual convention).
func (l *Layer) FLOPs() int64 {
	return l.baseFLOPs() + l.fusedFLOPs
}

func (l *Layer) baseFLOPs() int64 {
	out := l.OutShape
	switch l.Kind {
	case OpConv2D, OpPatchEmbed:
		groups := l.Attrs.Groups
		if groups <= 0 {
			groups = 1
		}
		cinPerGroup := int64(l.InShape.C) / int64(groups)
		perOut := 2 * cinPerGroup * int64(l.Attrs.KernelH) * int64(l.Attrs.KernelW)
		return perOut * out.Elems()
	case OpLinear:
		// Applied per token (H spatial positions when H>1, e.g. ViT MLPs).
		tokens := int64(l.InShape.H) * int64(l.InShape.W)
		if tokens < 1 {
			tokens = 1
		}
		return 2 * tokens * int64(l.Attrs.InFeatures) * int64(l.Attrs.OutFeatures)
	case OpAttention:
		n := int64(l.InShape.H) // sequence length
		d := int64(l.Attrs.EmbedDim)
		// QKV projections (3·2nd²) + scores (2n²d) + context (2n²d) + output
		// projection (2nd²).
		return 8*n*d*d + 4*n*n*d
	case OpMaxPool2D, OpAvgPool2D:
		return out.Elems() * int64(l.Attrs.KernelH) * int64(l.Attrs.KernelW)
	case OpAdaptiveAvgPool2D:
		return l.InShape.Elems()
	case OpBatchNorm:
		return 2 * out.Elems() // fused scale+shift at inference
	case OpLayerNorm:
		return 8 * out.Elems() // mean, var, normalize, affine
	case OpLocalResponseNorm:
		return 10 * out.Elems()
	case OpReLU, OpSigmoid, OpHardSigmoid, OpMul, OpAdd:
		return out.Elems()
	case OpGELU, OpSiLU, OpHardSwish:
		return 4 * out.Elems()
	case OpSoftmax:
		return 5 * out.Elems()
	case OpClassToken:
		return out.Elems() // positional-embedding add
	case OpInput, OpConcat, OpFlatten, OpDropout:
		return 0
	}
	return 0
}

// Params returns the number of learned parameters held by the layer.
func (l *Layer) Params() int64 {
	return l.baseParams() + l.fusedParams
}

func (l *Layer) baseParams() int64 {
	switch l.Kind {
	case OpConv2D, OpPatchEmbed:
		groups := l.Attrs.Groups
		if groups <= 0 {
			groups = 1
		}
		cinPerGroup := int64(l.InShape.C) / int64(groups)
		w := int64(l.Attrs.OutChannels) * cinPerGroup * int64(l.Attrs.KernelH) * int64(l.Attrs.KernelW)
		return w + int64(l.Attrs.OutChannels) // + bias
	case OpLinear:
		return int64(l.Attrs.InFeatures)*int64(l.Attrs.OutFeatures) + int64(l.Attrs.OutFeatures)
	case OpAttention:
		d := int64(l.Attrs.EmbedDim)
		return 4*d*d + 4*d // QKV + out projections with biases
	case OpBatchNorm:
		return 4 * int64(l.Attrs.NormDim) // gamma, beta, running mean/var
	case OpLayerNorm:
		return 2 * int64(l.Attrs.NormDim)
	case OpClassToken:
		// Class token + positional embeddings.
		return int64(l.OutShape.C) * int64(l.OutShape.H)
	}
	return 0
}

// ActBytes returns the per-inference activation traffic of the layer in
// bytes: activations read, intermediates, activations written. Activation
// traffic scales with batch size; weight traffic (WeightBytes) does not —
// the distinction drives the batch-size co-optimization extension.
func (l *Layer) ActBytes() int64 {
	read := l.InShape.Bytes()
	if l.Kind == OpAdd || l.Kind == OpMul {
		read *= 2 // two operands
	}
	if l.Kind == OpConcat {
		read = l.OutShape.Bytes() // all branch inputs stream through
	}
	if l.Kind == OpAttention {
		// Q·K^T and attn·V intermediates traffic n²·heads scores.
		n := int64(l.InShape.H)
		read += 4 * n * n * int64(l.Attrs.Heads)
	}
	write := l.OutShape.Bytes()
	return read + write
}

// WeightBytes returns the parameter traffic in bytes (each weight streams
// from DRAM once per forward pass, regardless of batch size).
func (l *Layer) WeightBytes() int64 { return 4 * l.Params() }

// MemBytes returns the total DRAM traffic of the layer in bytes for a
// single-image inference. This drives the roofline memory term and the
// memory-access depthwise feature.
func (l *Layer) MemBytes() int64 { return l.ActBytes() + l.WeightBytes() }

// BatchCost returns the FLOPs and DRAM bytes of executing the layer at the
// given batch size: arithmetic and activation traffic scale linearly, while
// weight traffic amortizes across the batch. This is the effect the
// coordinated batching + DVFS extension exploits (§5 / [15]).
func (l *Layer) BatchCost(batch int) (flops, bytes int64) {
	if batch < 1 {
		batch = 1
	}
	b := int64(batch)
	return b * l.FLOPs(), b*l.ActBytes() + l.WeightBytes()
}

// ArithmeticIntensity returns FLOPs per byte of memory traffic, the quantity
// that separates compute-bound from memory-bound operators in the roofline
// model (and hence high-frequency from low-frequency power blocks).
func (l *Layer) ArithmeticIntensity() float64 {
	mb := l.MemBytes()
	if mb == 0 {
		return 0
	}
	return float64(l.FLOPs()) / float64(mb)
}
