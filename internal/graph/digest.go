package graph

import "fmt"

// Canonical graph digests. The online serving fast path memoizes per-model
// Analyze results (internal/core's plan cache), so it needs a stable identity
// for "the same network": a digest covering everything the offline workflow
// consumes — operator kinds, structural attributes, inferred shapes, the
// input topology, fusion residue, and the model name (frequency plans are
// dispatched by name at runtime, so two structurally identical graphs with
// different names must not share a plan). Cosmetic state (Layer.Name display
// strings) is deliberately excluded.
//
// The digest is FNV-1a/64 over a fixed little-endian byte serialization. Its
// value for a given graph is pinned by golden tests: any change to the
// serialization (or to what it covers) must bump digestVersion so cache keys
// shift loudly, never silently.

// digestVersion tags the digest serialization; bump on any layout change.
const digestVersion = "powerlens-graph-digest-v1"

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// digest64 is an incremental FNV-1a/64 hasher (allocation-free; hashing a
// graph must stay cheap enough that a plan-cache hit is effectively free).
type digest64 uint64

func (h *digest64) byte(b byte) {
	*h = (*h ^ digest64(b)) * fnvPrime64
}

// u64 hashes v as 8 little-endian bytes.
func (h *digest64) u64(v uint64) {
	for i := 0; i < 8; i++ {
		h.byte(byte(v))
		v >>= 8
	}
}

func (h *digest64) int(v int) { h.u64(uint64(int64(v))) }

func (h *digest64) i64(v int64) { h.u64(uint64(v)) }

// str hashes the bytes of s followed by its length (length-suffixing keeps
// adjacent fields from sliding into each other).
func (h *digest64) str(s string) {
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
	h.int(len(s))
}

func (h *digest64) shape(s Shape) {
	h.int(s.C)
	h.int(s.H)
	h.int(s.W)
}

// Digest returns the canonical FNV-1a/64 digest of g. Two graphs digest
// equal iff they have the same name and layer-for-layer identical operator
// kinds, input wiring, shapes, structural attributes and fusion residue —
// exactly the inputs the PowerLens analysis workflow reads. Rebuilding a
// model from its builder yields the same digest; changing any op, shape,
// attribute or edge changes it.
//
// The value is memoized on the graph (builder appends invalidate it), so
// repeated digests of a finished graph — every task the fleet fast-forwards
// keys its flow summary by digest — cost one atomic load.
func Digest(g *Graph) uint64 {
	if d := g.digestMemo.Load(); d != 0 {
		return d
	}
	h := digest64(fnvOffset64)
	h.str(digestVersion)
	h.str(g.Name)
	h.int(len(g.Layers))
	for _, l := range g.Layers {
		h.int(int(l.Kind))
		h.int(len(l.Inputs))
		for _, in := range l.Inputs {
			h.int(in)
		}
		h.shape(l.InShape)
		h.shape(l.OutShape)
		a := l.Attrs
		h.int(a.KernelH)
		h.int(a.KernelW)
		h.int(a.StrideH)
		h.int(a.StrideW)
		h.int(a.PadH)
		h.int(a.PadW)
		h.int(a.Groups)
		h.int(a.OutChannels)
		h.int(a.InFeatures)
		h.int(a.OutFeatures)
		h.int(a.Heads)
		h.int(a.EmbedDim)
		h.int(a.NormDim)
		h.int(a.TargetH)
		h.int(a.TargetW)
		h.i64(l.fusedFLOPs)
		h.i64(l.fusedParams)
	}
	// A true digest of 0 (1-in-2^64) is indistinguishable from "not cached"
	// and simply recomputes every call — correct either way.
	g.digestMemo.Store(uint64(h))
	return uint64(h)
}

// DigestString renders a digest as fixed-width hex (cache-key and log form).
func DigestString(d uint64) string { return fmt.Sprintf("%016x", d) }
