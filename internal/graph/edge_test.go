package graph

import "testing"

func TestLRNCosts(t *testing.T) {
	g := New("t")
	in := g.Input(64, 28, 28)
	l := g.LRN(in)
	if l.OutShape != in.OutShape {
		t.Fatal("LRN must preserve shape")
	}
	if l.FLOPs() != 10*l.OutShape.Elems() {
		t.Fatalf("LRN FLOPs = %d", l.FLOPs())
	}
	if l.Params() != 0 {
		t.Fatal("LRN has no learned parameters")
	}
}

func TestAvgPoolAndAdaptive(t *testing.T) {
	g := New("t")
	in := g.Input(16, 8, 8)
	ap := g.AvgPool(in, 2, 2, 0)
	if ap.OutShape != (Shape{16, 4, 4}) {
		t.Fatalf("avgpool out = %v", ap.OutShape)
	}
	ad := g.AdaptiveAvgPool(in, 3, 3)
	if ad.OutShape != (Shape{16, 3, 3}) {
		t.Fatalf("adaptive out = %v", ad.OutShape)
	}
	if ad.FLOPs() != in.OutShape.Elems() {
		t.Fatalf("adaptive FLOPs = %d", ad.FLOPs())
	}
}

func TestAllActivationKinds(t *testing.T) {
	g := New("t")
	in := g.Input(4, 4, 4)
	for _, k := range []OpKind{OpReLU, OpGELU, OpHardSwish, OpHardSigmoid, OpSiLU, OpSigmoid, OpSoftmax} {
		a := g.Activation(in, k)
		if a.Kind != k || a.OutShape != in.OutShape {
			t.Fatalf("%v activation wrong", k)
		}
		if a.FLOPs() <= 0 {
			t.Fatalf("%v has zero cost", k)
		}
	}
}

func TestIsCompute(t *testing.T) {
	for _, k := range []OpKind{OpConv2D, OpLinear, OpAttention, OpPatchEmbed} {
		if !k.IsCompute() {
			t.Fatalf("%v must be compute", k)
		}
	}
	for _, k := range []OpKind{OpReLU, OpAdd, OpConcat, OpBatchNorm, OpInput, OpMaxPool2D} {
		if k.IsCompute() {
			t.Fatalf("%v must not be compute", k)
		}
	}
}

func TestConcatSingleInput(t *testing.T) {
	g := New("t")
	in := g.Input(8, 4, 4)
	c := g.Concat(in)
	if c.OutShape != in.OutShape {
		t.Fatal("single-input concat must be identity-shaped")
	}
}

func TestConcatEmptyPanics(t *testing.T) {
	g := New("t")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Concat()
}

func TestSelectTokenShape(t *testing.T) {
	g := New("t")
	in := g.Input(768, 197, 1)
	s := g.SelectToken(in)
	if s.OutShape != (Shape{768, 1, 1}) {
		t.Fatalf("select token out = %v", s.OutShape)
	}
	if s.FLOPs() != 0 {
		t.Fatal("token select is data movement")
	}
}

func TestBatchCostClampsBatch(t *testing.T) {
	g := New("t")
	in := g.Input(3, 8, 8)
	c := g.Conv(in, 4, 3, 1, 1, 1)
	f0, b0 := c.BatchCost(0)
	f1, b1 := c.BatchCost(1)
	if f0 != f1 || b0 != b1 {
		t.Fatal("batch 0 must clamp to 1")
	}
}
