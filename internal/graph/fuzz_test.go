package graph

import (
	"strings"
	"testing"
)

// FuzzReadJSON guards the external-model parser: arbitrary input must
// produce an error or a validated graph, never a panic, and accepted graphs
// must have finite, non-negative cost accounting.
func FuzzReadJSON(f *testing.F) {
	var seed strings.Builder
	g := New("seed")
	in := g.Input(3, 8, 8)
	g.Linear(g.Flatten(g.Conv(in, 4, 3, 1, 1, 1)), 10)
	if err := g.WriteJSON(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add(`{"name":"x","layers":[]}`)
	f.Add(`{"name":"x","layers":[{"id":0,"kind":"input","out_shape":{"C":1,"H":1,"W":1}}]}`)
	f.Add(`{`)
	f.Add(`{"name":"x","layers":[{"id":0,"kind":"conv2d","inputs":[0],"out_shape":{"C":-1,"H":0,"W":0}}]}`)

	f.Fuzz(func(t *testing.T, data string) {
		g, err := ReadJSON(strings.NewReader(data))
		if err != nil {
			return
		}
		// Accepted graphs must behave.
		if g.TotalFLOPs() < 0 || g.TotalMemBytes() < 0 || g.TotalParams() < 0 {
			t.Fatalf("negative accounting on accepted graph")
		}
		g.Depth()
		g.NumBranches()
		g.KindHistogram()
		for _, l := range g.Layers {
			l.ArithmeticIntensity()
			l.BatchCost(4)
		}
	})
}
