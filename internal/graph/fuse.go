package graph

// Operator fusion pass. Deployment runtimes (TensorRT, torch.compile) fuse
// elementwise/normalization operators into their producing convolution or
// linear layer, eliminating the intermediate DRAM round-trips. Fusion
// changes the power profile the paper instruments — fused networks have
// fewer, more compute-intense operators — so the pass doubles as an
// ablation axis: PowerLens's clustering must keep working on both eager and
// fused graphs (BenchmarkAblationFusion).

// fusable reports whether kind can fold into a preceding compute op.
func fusable(kind OpKind) bool {
	switch kind {
	case OpBatchNorm, OpReLU, OpGELU, OpHardSwish, OpHardSigmoid, OpSiLU,
		OpSigmoid, OpDropout:
		return true
	}
	return false
}

// FuseElementwise returns a new graph in which chains of fusable operators
// (BN, activations, dropout) are folded into their producing compute layer:
// the producer keeps its arithmetic, absorbs the follower's FLOPs, and the
// intermediate activation traffic disappears. Only single-consumer chains
// fuse (a branch point needs its tensor materialized). The original graph
// is not modified.
func (g *Graph) FuseElementwise() *Graph {
	consumers := g.consumers()

	// absorbed[id] = true when layer id has been folded into a predecessor.
	absorbed := make([]bool, len(g.Layers))
	// target[id] = the surviving layer that produces id's output.
	target := make([]int, len(g.Layers))
	for i := range target {
		target[i] = i
	}
	// extraFLOPs accumulated onto a surviving layer by its absorbed chain.
	extraFLOPs := make([]int64, len(g.Layers))
	extraParams := make([]int64, len(g.Layers))

	for _, l := range g.Layers {
		if !fusable(l.Kind) || len(l.Inputs) != 1 {
			continue
		}
		producer := target[l.Inputs[0]]
		p := g.Layers[producer]
		// Fuse onto compute layers only (target resolves transitively, so
		// chains always root at the compute op). The producer must have l as
		// its only consumer, and shapes must match (elementwise).
		if !p.Kind.IsCompute() {
			continue
		}
		if len(consumers[l.Inputs[0]]) != 1 {
			continue
		}
		if l.OutShape != g.Layers[l.Inputs[0]].OutShape {
			continue
		}
		absorbed[l.ID] = true
		target[l.ID] = producer
		extraFLOPs[producer] += l.FLOPs()
		extraParams[producer] += l.Params()
	}

	// Rebuild the graph without absorbed layers, remapping inputs.
	out := New(g.Name + "_fused")
	newID := make([]int, len(g.Layers))
	for _, l := range g.Layers {
		if absorbed[l.ID] {
			newID[l.ID] = newID[target[l.ID]]
			continue
		}
		nl := &Layer{
			ID:          len(out.Layers),
			Name:        l.Name,
			Kind:        l.Kind,
			Attrs:       l.Attrs,
			InShape:     l.InShape,
			OutShape:    l.OutShape,
			fusedFLOPs:  l.fusedFLOPs + extraFLOPs[l.ID],
			fusedParams: l.fusedParams + extraParams[l.ID],
		}
		for _, in := range l.Inputs {
			nl.Inputs = append(nl.Inputs, newID[target[in]])
		}
		newID[l.ID] = nl.ID
		out.Layers = append(out.Layers, nl)
	}
	return out
}
