package graph

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON serialization of operator graphs, so models can be defined outside Go
// (cmd/powerlens -model-file) and power views can be archived alongside
// their networks.

// jsonLayer is the on-disk form of a Layer. Shapes are re-inferable but
// stored anyway so files are self-describing and loadable without replaying
// builder logic.
type jsonLayer struct {
	ID       int    `json:"id"`
	Name     string `json:"name,omitempty"`
	Kind     string `json:"kind"`
	Inputs   []int  `json:"inputs,omitempty"`
	Attrs    Attrs  `json:"attrs,omitempty"`
	InShape  Shape  `json:"in_shape"`
	OutShape Shape  `json:"out_shape"`
}

type jsonGraph struct {
	Name   string      `json:"name"`
	Layers []jsonLayer `json:"layers"`
}

// kindByName maps lowercase op names back to kinds.
var kindByName = func() map[string]OpKind {
	m := make(map[string]OpKind, NumOpKinds)
	for k := 0; k < NumOpKinds; k++ {
		m[OpKind(k).String()] = OpKind(k)
	}
	return m
}()

// WriteJSON serializes the graph.
func (g *Graph) WriteJSON(w io.Writer) error {
	jg := jsonGraph{Name: g.Name, Layers: make([]jsonLayer, len(g.Layers))}
	for i, l := range g.Layers {
		jg.Layers[i] = jsonLayer{
			ID: l.ID, Name: l.Name, Kind: l.Kind.String(), Inputs: l.Inputs,
			Attrs: l.Attrs, InShape: l.InShape, OutShape: l.OutShape,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(jg); err != nil {
		return fmt.Errorf("graph: encode %s: %w", g.Name, err)
	}
	return nil
}

// ReadJSON deserializes a graph written by WriteJSON (or hand-authored in
// the same format) and validates it.
func ReadJSON(r io.Reader) (*Graph, error) {
	var jg jsonGraph
	if err := json.NewDecoder(r).Decode(&jg); err != nil {
		return nil, fmt.Errorf("graph: decode: %w", err)
	}
	g := New(jg.Name)
	for _, jl := range jg.Layers {
		kind, ok := kindByName[jl.Kind]
		if !ok {
			return nil, fmt.Errorf("graph: unknown op kind %q in layer %d", jl.Kind, jl.ID)
		}
		g.Layers = append(g.Layers, &Layer{
			ID: jl.ID, Name: jl.Name, Kind: kind, Inputs: jl.Inputs,
			Attrs: jl.Attrs, InShape: jl.InShape, OutShape: jl.OutShape,
		})
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
