package graph

import "fmt"

// Shape describes an activation tensor. Convolutional activations use
// {C, H, W}. Token sequences (transformers) map the embedding dimension to C
// and the sequence length to H with W == 1, so the same arithmetic applies.
// Flattened vectors use {C, 1, 1}.
type Shape struct {
	C, H, W int
}

// Elems returns the number of scalar elements in the tensor.
func (s Shape) Elems() int64 { return int64(s.C) * int64(s.H) * int64(s.W) }

// Bytes returns the size in bytes at 4 bytes per element (FP32, matching the
// paper's torchvision FP32 deployment).
func (s Shape) Bytes() int64 { return 4 * s.Elems() }

// String renders the shape as CxHxW.
func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.C, s.H, s.W) }

// convOut computes a convolution/pooling output spatial size.
func convOut(in, kernel, stride, pad int) int {
	if stride <= 0 {
		stride = 1
	}
	out := (in+2*pad-kernel)/stride + 1
	if out < 1 {
		out = 1
	}
	return out
}
