package graph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestJSONRoundtrip(t *testing.T) {
	g := simpleCNN()
	var sb strings.Builder
	if err := g.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.Name != g.Name || len(g2.Layers) != len(g.Layers) {
		t.Fatalf("roundtrip shape: %q/%d vs %q/%d", g2.Name, len(g2.Layers), g.Name, len(g.Layers))
	}
	if g2.TotalFLOPs() != g.TotalFLOPs() || g2.TotalParams() != g.TotalParams() {
		t.Fatal("roundtrip changed cost accounting")
	}
	if g2.TotalMemBytes() != g.TotalMemBytes() {
		t.Fatal("roundtrip changed memory accounting")
	}
	for i := range g.Layers {
		if g.Layers[i].Kind != g2.Layers[i].Kind || g.Layers[i].OutShape != g2.Layers[i].OutShape {
			t.Fatalf("layer %d mismatch", i)
		}
	}
}

func TestJSONRoundtripProperty(t *testing.T) {
	// Any random builder-made graph must roundtrip with identical costs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New("prop")
		x := g.Input(3, 32, 32)
		for i := 0; i < 2+rng.Intn(5); i++ {
			c := 8 << rng.Intn(3)
			x = g.ReLU(g.BatchNorm(g.Conv(x, c, 3, 1, 1, 1)))
		}
		g.Linear(g.Flatten(g.AdaptiveAvgPool(x, 1, 1)), 10)

		var sb strings.Builder
		if g.WriteJSON(&sb) != nil {
			return false
		}
		g2, err := ReadJSON(strings.NewReader(sb.String()))
		if err != nil {
			return false
		}
		return g2.TotalFLOPs() == g.TotalFLOPs() &&
			g2.TotalMemBytes() == g.TotalMemBytes() &&
			g2.Depth() == g.Depth()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReadJSONRejectsBadInput(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("expected decode error")
	}
	if _, err := ReadJSON(strings.NewReader(`{"name":"x","layers":[{"id":0,"kind":"warpdrive","out_shape":{"C":1,"H":1,"W":1}}]}`)); err == nil {
		t.Fatal("expected unknown-kind error")
	}
	// Non-topological reference must fail validation.
	bad := `{"name":"x","layers":[
	  {"id":0,"kind":"input","out_shape":{"C":3,"H":4,"W":4}},
	  {"id":1,"kind":"relu","inputs":[2],"in_shape":{"C":3,"H":4,"W":4},"out_shape":{"C":3,"H":4,"W":4}},
	  {"id":2,"kind":"relu","inputs":[0],"in_shape":{"C":3,"H":4,"W":4},"out_shape":{"C":3,"H":4,"W":4}}]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestWriteDOT(t *testing.T) {
	g := New("dot")
	in := g.Input(3, 8, 8)
	c := g.Conv(in, 8, 3, 1, 1, 1)
	r := g.ReLU(c)
	g.Add(r, r)

	var sb strings.Builder
	if err := g.WriteDOT(&sb, nil, nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", "n0", "n1 [label=\"1: conv2d", "n0 -> n1", "n2 -> n3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTWithBlocks(t *testing.T) {
	g := simpleCNN()
	var sb strings.Builder
	mid := len(g.Layers) / 2
	if err := g.WriteDOT(&sb, []int{1, mid + 1}, []int{mid, len(g.Layers) - 1}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "cluster_0") || !strings.Contains(out, "cluster_1") {
		t.Fatalf("missing block clusters:\n%s", out)
	}
	if !strings.Contains(out, "power block 1") {
		t.Fatal("missing block label")
	}
	// The input layer (0) sits outside both blocks but must still be drawn.
	if !strings.Contains(out, "n0 [label=\"0: input") {
		t.Fatal("input layer missing")
	}
}
