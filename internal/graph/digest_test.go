package graph_test

import (
	"testing"

	"powerlens/internal/graph"
	"powerlens/internal/models"
)

// goldenDigests pins the canonical digest of every evaluation model. These
// are cache keys: if a digest here changes, plan caches keyed on the old
// value silently miss (or worse, a serialization bug makes distinct graphs
// collide). Any intentional change to the digest serialization must bump
// digestVersion and update these values in the same commit.
var goldenDigests = map[string]string{
	"alexnet":        "6d6b907a22f2949c",
	"googlenet":      "8fd971b3542352f7",
	"vgg19":          "b884362254aa0ebb",
	"mobilenet_v3":   "e6f864fd7895129a",
	"densenet201":    "0fb803894abc0d4a",
	"resnext101":     "86fecfa4e69b8c4c",
	"resnet34":       "45728b2f7733d3da",
	"resnet152":      "42fcd540e2b30dbc",
	"regnet_x_32gf":  "271434b6d98ad732",
	"regnet_y_128gf": "702434fd0d972b96",
	"vit_base_16":    "e93d65cd4c7b72ed",
	"vit_base_32":    "cd10a19d8ad23e97",
}

func TestDigestGoldenValues(t *testing.T) {
	names := models.Names()
	if len(names) != len(goldenDigests) {
		t.Fatalf("golden table has %d models, Names() has %d", len(goldenDigests), len(names))
	}
	for _, name := range names {
		got := graph.DigestString(graph.Digest(models.MustBuild(name)))
		if want := goldenDigests[name]; got != want {
			t.Errorf("%s: digest %s, golden %s (serialization changed? bump digestVersion and repin)",
				name, got, want)
		}
	}
}

func TestDigestStableAcrossRebuild(t *testing.T) {
	for _, name := range models.Names() {
		a := graph.Digest(models.MustBuild(name))
		b := graph.Digest(models.MustBuild(name))
		if a != b {
			t.Errorf("%s: rebuild changed digest: %016x vs %016x", name, a, b)
		}
	}
}

func TestDigestDistinctAcrossModels(t *testing.T) {
	seen := map[uint64]string{}
	for _, name := range models.Names() {
		d := graph.Digest(models.MustBuild(name))
		if prev, ok := seen[d]; ok {
			t.Errorf("digest collision: %s and %s both hash to %016x", prev, name, d)
		}
		seen[d] = name
	}
}

func TestDigestSensitivity(t *testing.T) {
	build := func(name string, hidden int) *graph.Graph {
		g := graph.New(name)
		in := g.Input(3, 8, 8)
		g.Linear(g.Flatten(in), hidden)
		return g
	}
	base := graph.Digest(build("net", 10))
	if graph.Digest(build("net", 10)) != base {
		t.Fatal("identical builds must digest equal")
	}
	if graph.Digest(build("net", 11)) == base {
		t.Fatal("changing a layer attribute must change the digest")
	}
	// Same structure under a different model name: plans dispatch by name at
	// runtime, so these must not share a cache entry.
	if graph.Digest(build("net2", 10)) == base {
		t.Fatal("changing the model name must change the digest")
	}
}

func TestDigestStringWidth(t *testing.T) {
	if s := graph.DigestString(0xab); s != "00000000000000ab" {
		t.Fatalf("DigestString(0xab) = %q", s)
	}
}
