package graph

import "testing"

func TestFuseElementwiseBasics(t *testing.T) {
	g := New("t")
	in := g.Input(3, 32, 32)
	c := g.Conv(in, 16, 3, 1, 1, 1)
	b := g.BatchNorm(c)
	r := g.ReLU(b)
	g.Conv(r, 16, 3, 1, 1, 1)

	f := g.FuseElementwise()
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// input + fused conv + second conv = 3 layers.
	if len(f.Layers) != 3 {
		t.Fatalf("fused layers = %d, want 3", len(f.Layers))
	}
	if f.Name != "t_fused" {
		t.Fatalf("name = %q", f.Name)
	}
	// FLOPs and params conserved exactly.
	if f.TotalFLOPs() != g.TotalFLOPs() {
		t.Fatalf("FLOPs %d != %d", f.TotalFLOPs(), g.TotalFLOPs())
	}
	if f.TotalParams() != g.TotalParams() {
		t.Fatalf("params %d != %d", f.TotalParams(), g.TotalParams())
	}
	// Memory traffic strictly reduced (intermediates eliminated).
	if f.TotalMemBytes() >= g.TotalMemBytes() {
		t.Fatalf("fused traffic %d >= eager %d", f.TotalMemBytes(), g.TotalMemBytes())
	}
}

func TestFuseDoesNotCrossBranches(t *testing.T) {
	g := New("t")
	in := g.Input(8, 16, 16)
	c := g.Conv(in, 8, 3, 1, 1, 1)
	b := g.BatchNorm(c) // b feeds TWO consumers -> the BN below must not fuse r
	r := g.ReLU(b)
	g.Add(r, b)

	f := g.FuseElementwise()
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// BN fuses into conv (single consumer chain conv->bn), but ReLU's input
	// (bn) has two consumers, so ReLU must survive.
	relu := 0
	for _, l := range f.Layers {
		if l.Kind == OpReLU {
			relu++
		}
	}
	if relu != 1 {
		t.Fatalf("relu count = %d, want 1 (branch point must materialize)", relu)
	}
}

func TestFuseRealNetworks(t *testing.T) {
	// Use the builder helpers to replicate a ResNet-style block here to
	// avoid an import cycle with internal/models.
	g := New("resblock")
	in := g.Input(64, 56, 56)
	x := in
	for i := 0; i < 4; i++ {
		c := g.Conv(x, 64, 3, 1, 1, 1)
		b := g.BatchNorm(c)
		r := g.ReLU(b)
		x = r
	}
	g.AdaptiveAvgPool(x, 1, 1)

	f := g.FuseElementwise()
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(f.Layers) >= len(g.Layers)-4 {
		t.Fatalf("fusion removed too few layers: %d -> %d", len(g.Layers), len(f.Layers))
	}
	if f.TotalFLOPs() != g.TotalFLOPs() {
		t.Fatal("fusion must conserve arithmetic")
	}
	saving := 1 - float64(f.TotalMemBytes())/float64(g.TotalMemBytes())
	if saving < 0.15 {
		t.Fatalf("traffic saving only %.1f%%", saving*100)
	}
}

func TestFuseLeavesOriginalIntact(t *testing.T) {
	g := New("t")
	in := g.Input(3, 8, 8)
	c := g.Conv(in, 4, 3, 1, 1, 1)
	g.ReLU(c)
	before := g.TotalMemBytes()
	layers := len(g.Layers)
	_ = g.FuseElementwise()
	if g.TotalMemBytes() != before || len(g.Layers) != layers {
		t.Fatal("FuseElementwise mutated its input")
	}
}

func TestFuseIdempotent(t *testing.T) {
	g := New("t")
	in := g.Input(3, 16, 16)
	x := g.ReLU(g.BatchNorm(g.Conv(in, 8, 3, 1, 1, 1)))
	g.Conv(x, 8, 1, 1, 0, 1)
	f1 := g.FuseElementwise()
	f2 := f1.FuseElementwise()
	if len(f2.Layers) != len(f1.Layers) {
		t.Fatalf("second fusion changed the graph: %d -> %d", len(f1.Layers), len(f2.Layers))
	}
	if f2.TotalMemBytes() != f1.TotalMemBytes() {
		t.Fatal("second fusion changed traffic")
	}
}

func TestFusedIntensityRises(t *testing.T) {
	g := New("t")
	in := g.Input(64, 28, 28)
	c := g.Conv(in, 64, 3, 1, 1, 1)
	b := g.BatchNorm(c)
	g.ReLU(b)
	f := g.FuseElementwise()
	var eager, fused float64
	for _, l := range g.Layers {
		if l.Kind == OpConv2D {
			eager = l.ArithmeticIntensity()
		}
	}
	for _, l := range f.Layers {
		if l.Kind == OpConv2D {
			fused = l.ArithmeticIntensity()
		}
	}
	// Fused conv carries the same bytes but also the followers' FLOPs; and
	// the graph sheds the followers' traffic, so the *graph-level* intensity
	// must rise.
	gi := float64(g.TotalFLOPs()) / float64(g.TotalMemBytes())
	fi := float64(f.TotalFLOPs()) / float64(f.TotalMemBytes())
	if fi <= gi {
		t.Fatalf("graph intensity did not rise: %.2f -> %.2f", gi, fi)
	}
	if fused < eager {
		t.Fatalf("fused conv intensity %.2f below eager %.2f", fused, eager)
	}
}
