package graph

import "fmt"

// TotalFLOPs returns the inference FLOPs of the whole network.
func (g *Graph) TotalFLOPs() int64 {
	var s int64
	for _, l := range g.Layers {
		s += l.FLOPs()
	}
	return s
}

// TotalParams returns the total parameter count.
func (g *Graph) TotalParams() int64 {
	var s int64
	for _, l := range g.Layers {
		s += l.Params()
	}
	return s
}

// TotalMemBytes returns the total per-inference DRAM traffic.
func (g *Graph) TotalMemBytes() int64 {
	var s int64
	for _, l := range g.Layers {
		s += l.MemBytes()
	}
	return s
}

// CountKind returns how many layers of the given kind the graph contains.
func (g *Graph) CountKind(k OpKind) int {
	n := 0
	for _, l := range g.Layers {
		if l.Kind == k {
			n++
		}
	}
	return n
}

// KindHistogram returns the per-kind layer counts indexed by OpKind.
func (g *Graph) KindHistogram() []int {
	h := make([]int, NumOpKinds)
	for _, l := range g.Layers {
		h[l.Kind]++
	}
	return h
}

// consumers returns, for each layer ID, the IDs of layers consuming it.
func (g *Graph) consumers() [][]int {
	out := make([][]int, len(g.Layers))
	for _, l := range g.Layers {
		for _, in := range l.Inputs {
			out[in] = append(out[in], l.ID)
		}
	}
	return out
}

// NumBranches returns the number of layers whose output feeds more than one
// consumer — the branching-structure macro feature of §2.1.2.
func (g *Graph) NumBranches() int {
	n := 0
	for _, c := range g.consumers() {
		if len(c) > 1 {
			n++
		}
	}
	return n
}

// NumResidual returns the number of residual (element-wise add) joins.
func (g *Graph) NumResidual() int { return g.CountKind(OpAdd) }

// Depth returns the longest input→output path length in layers, the "depth"
// macro feature (distinct from len(Layers) on branchy networks).
func (g *Graph) Depth() int {
	depth := make([]int, len(g.Layers))
	maxDepth := 0
	for _, l := range g.Layers { // construction order is topological
		d := 0
		for _, in := range l.Inputs {
			if depth[in] > d {
				d = depth[in]
			}
		}
		depth[l.ID] = d + 1
		if depth[l.ID] > maxDepth {
			maxDepth = depth[l.ID]
		}
	}
	return maxDepth
}

// Validate checks structural invariants: IDs are positional, inputs reference
// earlier layers only (topological order), non-input layers have inputs, and
// shapes are positive. Model builders are trusted code, but the random DNN
// generator runs under property tests against exactly these invariants.
func (g *Graph) Validate() error {
	if len(g.Layers) == 0 {
		return fmt.Errorf("graph %q: empty", g.Name)
	}
	for i, l := range g.Layers {
		if l.ID != i {
			return fmt.Errorf("graph %q: layer %d has ID %d", g.Name, i, l.ID)
		}
		if l.Kind == OpInput {
			if len(l.Inputs) != 0 {
				return fmt.Errorf("graph %q: input layer %d has inputs", g.Name, i)
			}
		} else if len(l.Inputs) == 0 {
			return fmt.Errorf("graph %q: layer %d (%v) has no inputs", g.Name, i, l.Kind)
		}
		for _, in := range l.Inputs {
			if in < 0 || in >= i {
				return fmt.Errorf("graph %q: layer %d references layer %d (not topological)", g.Name, i, in)
			}
		}
		if l.OutShape.C <= 0 || l.OutShape.H <= 0 || l.OutShape.W <= 0 {
			return fmt.Errorf("graph %q: layer %d has non-positive shape %v", g.Name, i, l.OutShape)
		}
	}
	return nil
}

// Output returns the final layer of the graph.
func (g *Graph) Output() *Layer { return g.Layers[len(g.Layers)-1] }
