// Package graph defines the operator-graph intermediate representation of a
// DNN that PowerLens analyzes. A Graph is a DAG of Layers; each Layer knows
// its operator kind, structural attributes (channels, kernels, strides,
// attention heads, ...), inferred output shape, and its arithmetic cost
// (FLOPs, parameters, memory traffic). This is the Go equivalent of the
// torchvision module graphs the paper instruments: feature extraction and
// clustering consume only these structural attributes.
package graph

// OpKind enumerates the operator types the IR supports. The set covers every
// layer appearing in the 12 evaluation networks (CNNs, RegNets, ViTs) plus
// the pieces the random DNN generator composes.
type OpKind int

const (
	OpInput OpKind = iota
	OpConv2D
	OpLinear
	OpMaxPool2D
	OpAvgPool2D
	OpAdaptiveAvgPool2D
	OpBatchNorm
	OpLayerNorm
	OpLocalResponseNorm
	OpReLU
	OpGELU
	OpHardSwish
	OpHardSigmoid
	OpSiLU
	OpSigmoid
	OpSoftmax
	OpAdd     // element-wise residual add
	OpMul     // element-wise scale (squeeze-excitation gating)
	OpConcat  // channel concatenation (GoogLeNet/DenseNet)
	OpFlatten // NCHW -> vector
	OpDropout // no-op at inference; kept for structural fidelity
	OpAttention
	OpPatchEmbed // ViT patchify convolution (kept distinct for feature typing)
	OpClassToken // ViT class-token prepend + positional embedding
	numOpKinds
)

var opKindNames = [...]string{
	OpInput:             "input",
	OpConv2D:            "conv2d",
	OpLinear:            "linear",
	OpMaxPool2D:         "maxpool2d",
	OpAvgPool2D:         "avgpool2d",
	OpAdaptiveAvgPool2D: "adaptiveavgpool2d",
	OpBatchNorm:         "batchnorm",
	OpLayerNorm:         "layernorm",
	OpLocalResponseNorm: "lrn",
	OpReLU:              "relu",
	OpGELU:              "gelu",
	OpHardSwish:         "hardswish",
	OpHardSigmoid:       "hardsigmoid",
	OpSiLU:              "silu",
	OpSigmoid:           "sigmoid",
	OpSoftmax:           "softmax",
	OpAdd:               "add",
	OpMul:               "mul",
	OpConcat:            "concat",
	OpFlatten:           "flatten",
	OpDropout:           "dropout",
	OpAttention:         "attention",
	OpPatchEmbed:        "patchembed",
	OpClassToken:        "classtoken",
}

// String returns the lowercase name of the operator kind.
func (k OpKind) String() string {
	if k < 0 || int(k) >= len(opKindNames) {
		return "unknown"
	}
	return opKindNames[k]
}

// NumOpKinds is the number of distinct operator kinds, used to size one-hot
// feature encodings.
const NumOpKinds = int(numOpKinds)

// IsCompute reports whether the operator performs substantial arithmetic
// (as opposed to data movement, reshaping, or trivially cheap activation).
func (k OpKind) IsCompute() bool {
	switch k {
	case OpConv2D, OpLinear, OpAttention, OpPatchEmbed:
		return true
	}
	return false
}

// Attrs carries the structural attributes of a layer. Only the fields
// relevant to the layer's kind are meaningful; the rest stay zero. A single
// flat struct keeps the IR simple and makes feature extraction uniform.
type Attrs struct {
	// Convolution / pooling.
	KernelH, KernelW int
	StrideH, StrideW int
	PadH, PadW       int
	Groups           int // conv groups; Groups==InC means depthwise
	OutChannels      int

	// Linear.
	InFeatures, OutFeatures int

	// Attention / transformer.
	Heads    int
	EmbedDim int

	// Normalization.
	NormDim int

	// Adaptive pooling target.
	TargetH, TargetW int
}
