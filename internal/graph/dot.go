package graph

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT emits a Graphviz rendering of the graph. When blocks is non-nil
// (parallel slices of [start, end] layer-ID ranges), layers are grouped into
// per-power-block clusters — the visual form of the paper's power view.
func (g *Graph) WriteDOT(w io.Writer, blockStarts, blockEnds []int) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n", g.Name)

	inBlock := func(id int) int {
		for i := range blockStarts {
			if id >= blockStarts[i] && id <= blockEnds[i] {
				return i
			}
		}
		return -1
	}

	if len(blockStarts) > 0 {
		for b := range blockStarts {
			fmt.Fprintf(&sb, "  subgraph cluster_%d {\n    label=\"power block %d\";\n    style=filled; color=lightgrey;\n", b, b+1)
			for _, l := range g.Layers {
				if inBlock(l.ID) == b {
					fmt.Fprintf(&sb, "    n%d [label=\"%d: %s\\n%s\"];\n", l.ID, l.ID, l.Kind, l.OutShape)
				}
			}
			sb.WriteString("  }\n")
		}
		// Layers outside any block (e.g. the input).
		for _, l := range g.Layers {
			if inBlock(l.ID) == -1 {
				fmt.Fprintf(&sb, "  n%d [label=\"%d: %s\\n%s\"];\n", l.ID, l.ID, l.Kind, l.OutShape)
			}
		}
	} else {
		for _, l := range g.Layers {
			fmt.Fprintf(&sb, "  n%d [label=\"%d: %s\\n%s\"];\n", l.ID, l.ID, l.Kind, l.OutShape)
		}
	}
	for _, l := range g.Layers {
		for _, in := range l.Inputs {
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", in, l.ID)
		}
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
