package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"powerlens/internal/models"
	"powerlens/internal/tensor"
)

func defaultHP(eps float64, minPts int) Hyperparams {
	a, l := DefaultDistanceParams()
	return Hyperparams{Eps: eps, MinPts: minPts, Alpha: a, Lambda: l}
}

func TestHyperparamsValidate(t *testing.T) {
	if err := defaultHP(0.3, 3).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Hyperparams{
		{Eps: 0, MinPts: 3, Alpha: 0.5, Lambda: 0.1},
		{Eps: 0.3, MinPts: 0, Alpha: 0.5, Lambda: 0.1},
		{Eps: 0.3, MinPts: 3, Alpha: 1.5, Lambda: 0.1},
		{Eps: 0.3, MinPts: 3, Alpha: 0.5, Lambda: -1},
	}
	for i, hp := range bad {
		if err := hp.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

// twoRegimeFeatures builds a feature matrix with two obviously different
// populations: rows 0..9 near (0,0), rows 10..19 near (10,10).
func twoRegimeFeatures() *tensor.Matrix {
	rng := rand.New(rand.NewSource(5))
	rows := make([][]float64, 20)
	for i := range rows {
		base := 0.0
		if i >= 10 {
			base = 10
		}
		rows[i] = []float64{base + rng.NormFloat64()*0.1, base + rng.NormFloat64()*0.1}
	}
	return tensor.FromRows(rows)
}

func TestDBSCANSeparatesRegimes(t *testing.T) {
	x := twoRegimeFeatures()
	d := BlendedDistance(x, 1.0, 0) // pure Mahalanobis, no spacing term
	labels := dbscan(d, 0.15, 3, &Scratch{})
	if labels[0] == labels[19] {
		t.Fatal("distinct regimes must get distinct labels")
	}
	for i := 1; i < 10; i++ {
		if labels[i] != labels[0] {
			t.Fatalf("regime 1 split: labels=%v", labels)
		}
	}
	for i := 11; i < 20; i++ {
		if labels[i] != labels[10] {
			t.Fatalf("regime 2 split: labels=%v", labels)
		}
	}
}

func TestDBSCANAllNoiseWithTinyEps(t *testing.T) {
	x := twoRegimeFeatures()
	d := BlendedDistance(x, 1.0, 0)
	labels := dbscan(d, 1e-9, 3, &Scratch{})
	for _, l := range labels {
		if l != -1 {
			t.Fatalf("expected all noise, got %v", labels)
		}
	}
}

func TestClusterBlocksContiguousAndCovering(t *testing.T) {
	x := twoRegimeFeatures()
	blocks, err := Cluster(x, defaultHP(0.25, 3))
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, blocks, x.Rows)
	if len(blocks) != 2 {
		t.Fatalf("blocks = %d, want 2 (two regimes)", len(blocks))
	}
	if blocks[0].End != 9 {
		t.Fatalf("boundary = %d, want 9", blocks[0].End)
	}
}

func checkPartition(t *testing.T, blocks []Block, n int) {
	t.Helper()
	if len(blocks) == 0 {
		t.Fatal("no blocks")
	}
	if blocks[0].Start != 0 {
		t.Fatalf("first block starts at %d", blocks[0].Start)
	}
	for i := 1; i < len(blocks); i++ {
		if blocks[i].Start != blocks[i-1].End+1 {
			t.Fatalf("gap/overlap between block %d and %d: %+v", i-1, i, blocks)
		}
	}
	if blocks[len(blocks)-1].End != n-1 {
		t.Fatalf("last block ends at %d, want %d", blocks[len(blocks)-1].End, n-1)
	}
}

// The spacing regularization must prevent non-adjacent lookalike operators
// from clustering together (DESIGN.md key design choice 2).
func TestSpacingRegularizationSeparatesDistantTwins(t *testing.T) {
	// Rows 0-4 and rows 15-19 are identical populations; rows 5-14 differ.
	rng := rand.New(rand.NewSource(9))
	rows := make([][]float64, 20)
	for i := range rows {
		base := 0.0
		if i >= 5 && i < 15 {
			base = 8
		}
		rows[i] = []float64{base + rng.NormFloat64()*0.05, base + rng.NormFloat64()*0.05}
	}
	x := tensor.FromRows(rows)

	// Without spacing term, DBSCAN happily merges rows 0-4 with 15-19.
	dNo := BlendedDistance(x, 1.0, 0)
	labelsNo := dbscan(dNo, 0.15, 3, &Scratch{})
	if labelsNo[0] != labelsNo[19] {
		t.Fatal("sanity: without spacing, twins should share a label")
	}

	// With spacing, twins 15 indices apart must not be eps-neighbors, so
	// post-processed blocks stay contiguous and the view has 3 blocks.
	blocks, err := Cluster(x, defaultHP(0.25, 3))
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, blocks, 20)
	if len(blocks) != 3 {
		t.Fatalf("blocks = %v, want 3 contiguous segments", blocks)
	}
}

func TestProcessClustersMergesNoise(t *testing.T) {
	// labels: cluster 0 (rows 0-3), noise row 4, cluster 1 (rows 5-9).
	labels := []int{0, 0, 0, 0, -1, 1, 1, 1, 1, 1}
	d := tensor.NewMatrix(10, 10)
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if i != j {
				d.Set(i, j, 1)
			}
		}
	}
	// Make row 4 closer to cluster 1.
	for j := 5; j < 10; j++ {
		d.Set(4, j, 0.1)
		d.Set(j, 4, 0.1)
	}
	blocks := processClusters(labels, d, 3, 0.05, &Scratch{})
	checkPartition(t, blocks, 10)
	if len(blocks) != 2 {
		t.Fatalf("blocks = %v, want noise merged into 2 blocks", blocks)
	}
	if blocks[0].End != 3 || blocks[1].Start != 4 {
		t.Fatalf("noise row merged the wrong way: %v", blocks)
	}
}

func TestProcessClustersSplitsNonContiguous(t *testing.T) {
	// Same label on both sides of a different middle — raw DBSCAN output on
	// a residual network. Post-processing must keep blocks contiguous.
	labels := []int{0, 0, 0, 1, 1, 1, 0, 0, 0}
	d := tensor.NewMatrix(9, 9)
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			if i != j {
				d.Set(i, j, 1)
			}
		}
	}
	blocks := processClusters(labels, d, 3, 0.05, &Scratch{})
	checkPartition(t, blocks, 9)
	if len(blocks) != 3 {
		t.Fatalf("blocks = %v, want 3 contiguous runs", blocks)
	}
}

func TestClusterSingleRow(t *testing.T) {
	x := tensor.FromRows([][]float64{{1, 2}})
	blocks, err := Cluster(x, defaultHP(0.3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 || blocks[0] != (Block{0, 0}) {
		t.Fatalf("blocks = %v", blocks)
	}
}

func TestClusterEmptyErrors(t *testing.T) {
	if _, err := Cluster(tensor.NewMatrix(0, 3), defaultHP(0.3, 3)); err == nil {
		t.Fatal("expected error for empty matrix")
	}
}

// Property: for any random DNN and sane hyperparameters, the power view is a
// contiguous partition of the graph's non-input layers.
func TestPowerViewPartitionProperty(t *testing.T) {
	cfg := models.DefaultGeneratorConfig()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := models.RandomDNN(rng, cfg, 0)
		eps := 0.1 + rng.Float64()*0.5
		minPts := 2 + rng.Intn(6)
		pv, err := BuildPowerView(g, defaultHP(eps, minPts))
		if err != nil {
			return false
		}
		if pv.NumBlocks() == 0 || pv.Model != g.Name {
			return false
		}
		if pv.Blocks[0].StartLayer != 0 {
			return false
		}
		for i := 1; i < len(pv.Blocks); i++ {
			if pv.Blocks[i].StartLayer != pv.Blocks[i-1].EndLayer+1 {
				return false
			}
		}
		return pv.Blocks[len(pv.Blocks)-1].EndLayer == len(g.Layers)-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomPowerViewPartition(t *testing.T) {
	g := models.ResNet34()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		pv := RandomPowerView(g, rng, 8)
		if pv.Blocks[0].StartLayer != 0 {
			t.Fatal("first block must start at 0")
		}
		for i := 1; i < len(pv.Blocks); i++ {
			if pv.Blocks[i].StartLayer != pv.Blocks[i-1].EndLayer+1 {
				t.Fatalf("random view not a partition: %+v", pv.Blocks)
			}
		}
		if pv.Blocks[len(pv.Blocks)-1].EndLayer != len(g.Layers)-1 {
			t.Fatal("random view must cover the graph")
		}
		if pv.NumBlocks() > 8 {
			t.Fatalf("blocks = %d > max 8", pv.NumBlocks())
		}
	}
}

func TestWholeNetworkView(t *testing.T) {
	g := models.AlexNet()
	pv := WholeNetworkView(g)
	if pv.NumBlocks() != 1 {
		t.Fatalf("P-N view blocks = %d, want 1", pv.NumBlocks())
	}
	if pv.Blocks[0].StartLayer != 0 || pv.Blocks[0].EndLayer != len(g.Layers)-1 {
		t.Fatalf("P-N view must span the whole graph: %+v", pv.Blocks[0])
	}
}

func TestRepeatedComponentsFormOneBlock(t *testing.T) {
	// Paper observation ③: continuous repeated components (ViT encoder
	// stack) should be treated as one large power block.
	g := models.ViTBase16()
	pv, err := BuildPowerView(g, defaultHP(0.35, 4))
	if err != nil {
		t.Fatal(err)
	}
	if pv.NumBlocks() > 3 {
		t.Fatalf("ViT blocks = %d; repeated encoders should merge into few blocks", pv.NumBlocks())
	}
}

func TestBlendedDistanceSymmetric(t *testing.T) {
	x := twoRegimeFeatures()
	d := BlendedDistance(x, 0.7, 0.15)
	for i := 0; i < d.Rows; i++ {
		if d.At(i, i) != 0 {
			t.Fatal("diagonal must be zero")
		}
		for j := 0; j < d.Cols; j++ {
			if d.At(i, j) != d.At(j, i) {
				t.Fatal("blended distance must be symmetric")
			}
			if d.At(i, j) < 0 || d.At(i, j) > 1+1e-9 {
				t.Fatalf("blended distance out of [0,1]: %v", d.At(i, j))
			}
		}
	}
}

func TestBlockLen(t *testing.T) {
	if (Block{3, 7}).Len() != 5 {
		t.Fatal("Block.Len wrong")
	}
}
