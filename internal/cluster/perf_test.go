package cluster

import (
	"math"
	"math/rand"
	"testing"

	"powerlens/internal/features"
	"powerlens/internal/models"
	"powerlens/internal/tensor"
)

// blendedDistanceReference is the pre-optimization implementation: full-matrix
// max scan (diagonal included), in-place Scale, and one exp per (i, j) pair.
// The production BlendedDistance must reproduce it bit for bit.
func blendedDistanceReference(x *tensor.Matrix, alpha, lambda float64) *tensor.Matrix {
	const shrink = 0.05
	cov := tensor.ShrunkCovariance(x, shrink)
	prec := tensor.PseudoInverse(cov)
	d := tensor.MahalanobisAll(x, prec)

	maxD := 0.0
	for _, v := range d.Data {
		if v > maxD {
			maxD = v
		}
	}
	if maxD > 0 {
		d.Scale(1 / maxD)
	}

	n := x.Rows
	out := tensor.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			spacing := 1 - math.Exp(-lambda*math.Abs(float64(i-j)))
			out.Set(i, j, alpha*d.At(i, j)+(1-alpha)*spacing)
		}
	}
	return out
}

func TestBlendedDistanceMatchesReference(t *testing.T) {
	alpha, lambda := DefaultDistanceParams()
	check := func(name string, x *tensor.Matrix) {
		t.Helper()
		got := BlendedDistance(x, alpha, lambda)
		want := blendedDistanceReference(x, alpha, lambda)
		if got.Rows != want.Rows || got.Cols != want.Cols {
			t.Fatalf("%s: shape (%d,%d) != (%d,%d)", name, got.Rows, got.Cols, want.Rows, want.Cols)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("%s: element %d: %v != reference %v", name, i, got.Data[i], want.Data[i])
			}
		}
	}

	for _, name := range []string{"resnet18", "vgg16", "densenet201", "vit_base_16"} {
		x, _ := features.ScaledDepthwise(models.MustBuild(name))
		check(name, x)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		rows := 1 + rng.Intn(40)
		x := tensor.NewMatrix(rows, 6)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		check("random", x)
	}
}

// A reused Scratch must not change clustering results: sweep the default
// grid over several models with one Scratch and compare every cell against
// the allocation-per-call path.
func TestClusterPrecomputedScratchEquivalence(t *testing.T) {
	alpha, lambda := DefaultDistanceParams()
	var sc Scratch
	for _, name := range []string{"resnet50", "densenet201", "googlenet"} {
		x, _ := features.ScaledDepthwise(models.MustBuild(name))
		d := BlendedDistance(x, alpha, lambda)
		for _, eps := range []float64{0.15, 0.22, 0.30, 0.40} {
			for _, minPts := range []int{2, 8} {
				hp := Hyperparams{Eps: eps, MinPts: minPts, Alpha: alpha, Lambda: lambda}
				want := ClusterPrecomputed(d, hp)
				got := ClusterPrecomputedScratch(d, hp, &sc)
				if len(got) != len(want) {
					t.Fatalf("%s %+v: %d blocks != %d", name, hp, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s %+v: block %d %+v != %+v", name, hp, i, got[i], want[i])
					}
				}
			}
		}
	}
}
