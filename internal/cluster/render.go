package cluster

import (
	"fmt"
	"strings"
)

// Render draws the power view as an ASCII block diagram with one bar per
// power block, scaled by operator count — the "logical intermediate
// representation that intuitively presents the main paths and areas where
// power usage is concentrated" (§2.1.3). Levels (one per block, optional)
// annotate the preset target frequencies.
func (pv *PowerView) Render(levels []int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "power view of %s (%d blocks)\n", pv.Model, pv.NumBlocks())
	totalOps := 0
	for _, b := range pv.Blocks {
		totalOps += b.NumOps
	}
	if totalOps == 0 {
		return sb.String()
	}
	const width = 50
	for i, b := range pv.Blocks {
		bar := b.NumOps * width / totalOps
		if bar < 1 {
			bar = 1
		}
		lvl := ""
		if levels != nil && i < len(levels) {
			lvl = fmt.Sprintf(" -> L%d", levels[i])
		}
		fmt.Fprintf(&sb, "  [%3d..%3d] %-*s %3d ops%s\n",
			b.StartLayer, b.EndLayer, width, strings.Repeat("█", bar), b.NumOps, lvl)
	}
	return sb.String()
}
