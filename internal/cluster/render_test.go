package cluster

import (
	"strings"
	"testing"
)

func TestRenderPowerView(t *testing.T) {
	pv := &PowerView{Model: "demo", Blocks: []PowerBlock{
		{StartLayer: 0, EndLayer: 9, NumOps: 10},
		{StartLayer: 10, EndLayer: 12, NumOps: 3},
	}}
	out := pv.Render([]int{6, 1})
	for _, want := range []string{"demo", "2 blocks", "[  0..  9]", "10 ops", "-> L6", "-> L1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Bars scale with op count.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Count(lines[1], "█") <= strings.Count(lines[2], "█") {
		t.Fatal("bigger block must render a longer bar")
	}
}

func TestRenderWithoutLevels(t *testing.T) {
	pv := &PowerView{Model: "x", Blocks: []PowerBlock{{0, 4, 5}}}
	out := pv.Render(nil)
	if strings.Contains(out, "-> L") {
		t.Fatal("no level annotations expected")
	}
	if !strings.Contains(out, "1 blocks") {
		t.Fatalf("got %q", out)
	}
}

func TestRenderEmptyView(t *testing.T) {
	pv := &PowerView{Model: "empty"}
	if out := pv.Render(nil); !strings.Contains(out, "0 blocks") {
		t.Fatalf("got %q", out)
	}
}
