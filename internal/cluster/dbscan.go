package cluster

import "powerlens/internal/tensor"

// Scratch holds the reusable working buffers of one clustering sweep. The
// dataset generator runs DBSCAN + post-processing once per (network, grid
// cell); without scratch every cell pays fresh label, neighbor-list, queue
// and run allocations. A zero Scratch is ready to use; buffers grow to the
// largest network seen and are reused afterwards. The Block slice returned
// by ClusterPrecomputedScratch aliases the scratch and is only valid until
// the next call with the same Scratch. Not safe for concurrent use.
type Scratch struct {
	labels []int
	nb     []int // seed-point neighbor buffer
	qnb    []int // expansion neighbor buffer
	queue  []int
	runs   []run
	blocks []Block
}

func (sc *Scratch) intBuf(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	return (*buf)[:n]
}

// dbscan runs DBSCAN over a precomputed distance matrix. It returns one
// label per row; -1 marks noise. A point is a core point when at least
// minPts points (itself included) lie within eps. The labels slice aliases
// sc and is valid until the next use of sc.
func dbscan(d *tensor.Matrix, eps float64, minPts int, sc *Scratch) []int {
	n := d.Rows
	const (
		unvisited = -2
		noise     = -1
	)
	labels := sc.intBuf(&sc.labels, n)
	for i := range labels {
		labels[i] = unvisited
	}

	neighbors := func(dst []int, p int) []int {
		dst = dst[:0]
		row := d.Row(p)
		for q := 0; q < n; q++ {
			if row[q] <= eps {
				dst = append(dst, q) // includes p itself (distance 0)
			}
		}
		return dst
	}

	cluster := 0
	for p := 0; p < n; p++ {
		if labels[p] != unvisited {
			continue
		}
		sc.nb = neighbors(sc.nb, p)
		if len(sc.nb) < minPts {
			labels[p] = noise
			continue
		}
		labels[p] = cluster
		// Expand cluster with a work queue (seed set). The queue copies
		// neighbor values, so both neighbor buffers stay reusable.
		sc.queue = append(sc.queue[:0], sc.nb...)
		for head := 0; head < len(sc.queue); head++ {
			q := sc.queue[head]
			if labels[q] == noise {
				labels[q] = cluster // border point
			}
			if labels[q] != unvisited {
				continue
			}
			labels[q] = cluster
			sc.qnb = neighbors(sc.qnb, q)
			if len(sc.qnb) >= minPts {
				sc.queue = append(sc.queue, sc.qnb...)
			}
		}
		cluster++
	}
	return labels
}

// run is a contiguous stretch of equal DBSCAN labels.
type run struct {
	start, end int
	label      int
}

// processClusters is Algorithm 1's post-processing: it converts raw DBSCAN
// labels into contiguous, non-overlapping blocks covering every operator.
// Non-contiguous runs of one label are split; noise points and runs shorter
// than minPts are merged into the adjacent run with the smaller mean
// inter-run distance, so every block is "continuous and practically
// feasible within the network's hierarchical structure" (§2.1.3). A final
// pass merges adjacent runs whose mean inter-run distance is within eps —
// DBSCAN separates periodic patterns (e.g. DenseNet's concat cadence) into
// many echo clusters that are power-equivalent, and the paper's
// post-processing explicitly "adjusts size, shape, or membership of
// clusters" to repair exactly that fragmentation.
func processClusters(labels []int, d *tensor.Matrix, minPts int, eps float64, sc *Scratch) []Block {
	n := len(labels)
	if n == 0 {
		return nil
	}

	// 1. Split into contiguous runs of equal labels.
	runs := sc.runs[:0]
	start := 0
	for i := 1; i <= n; i++ {
		if i == n || labels[i] != labels[start] {
			runs = append(runs, run{start, i - 1, labels[start]})
			start = i
		}
	}

	// Mean distance between all cross pairs of two runs.
	meanDist := func(a, b run) float64 {
		sum, cnt := 0.0, 0
		for i := a.start; i <= a.end; i++ {
			for j := b.start; j <= b.end; j++ {
				sum += d.At(i, j)
				cnt++
			}
		}
		if cnt == 0 {
			return 0
		}
		return sum / float64(cnt)
	}

	// 2. Repeatedly merge the smallest offending run (noise or undersized)
	// into its nearer neighbor until every run is a feasible block.
	for len(runs) > 1 {
		worst := -1
		for i, r := range runs {
			if r.label == -1 || r.end-r.start+1 < minPts {
				if worst == -1 || (r.end-r.start) < (runs[worst].end-runs[worst].start) {
					worst = i
				}
			}
		}
		if worst == -1 {
			break
		}
		target := worst - 1
		if worst == 0 {
			target = 1
		} else if worst < len(runs)-1 {
			if meanDist(runs[worst], runs[worst+1]) < meanDist(runs[worst], runs[worst-1]) {
				target = worst + 1
			}
		}
		// Merge worst into target (always adjacent) by splicing in place.
		lo, hi := worst, target
		if lo > hi {
			lo, hi = hi, lo
		}
		runs[lo] = run{runs[lo].start, runs[hi].end, runs[target].label}
		runs = append(runs[:lo+1], runs[hi+1:]...)
	}

	// 3. Merge adjacent power-equivalent runs (mean distance within eps),
	// nearest pair first.
	for len(runs) > 1 {
		best, bestD := -1, 0.0
		for i := 0; i+1 < len(runs); i++ {
			md := meanDist(runs[i], runs[i+1])
			if md <= eps && (best == -1 || md < bestD) {
				best, bestD = i, md
			}
		}
		if best == -1 {
			break
		}
		runs[best] = run{runs[best].start, runs[best+1].end, runs[best].label}
		runs = append(runs[:best+1], runs[best+2:]...)
	}
	sc.runs = runs

	blocks := sc.blocks[:0]
	for _, r := range runs {
		blocks = append(blocks, Block{r.start, r.end})
	}
	sc.blocks = blocks
	return blocks
}
