package cluster

import "powerlens/internal/tensor"

// dbscan runs DBSCAN over a precomputed distance matrix. It returns one
// label per row; -1 marks noise. A point is a core point when at least
// minPts points (itself included) lie within eps.
func dbscan(d *tensor.Matrix, eps float64, minPts int) []int {
	n := d.Rows
	const (
		unvisited = -2
		noise     = -1
	)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = unvisited
	}

	neighbors := func(p int) []int {
		var out []int
		for q := 0; q < n; q++ {
			if d.At(p, q) <= eps {
				out = append(out, q) // includes p itself (distance 0)
			}
		}
		return out
	}

	cluster := 0
	for p := 0; p < n; p++ {
		if labels[p] != unvisited {
			continue
		}
		nb := neighbors(p)
		if len(nb) < minPts {
			labels[p] = noise
			continue
		}
		labels[p] = cluster
		// Expand cluster with a work queue (seed set).
		queue := append([]int(nil), nb...)
		for len(queue) > 0 {
			q := queue[0]
			queue = queue[1:]
			if labels[q] == noise {
				labels[q] = cluster // border point
			}
			if labels[q] != unvisited {
				continue
			}
			labels[q] = cluster
			qnb := neighbors(q)
			if len(qnb) >= minPts {
				queue = append(queue, qnb...)
			}
		}
		cluster++
	}
	return labels
}

// processClusters is Algorithm 1's post-processing: it converts raw DBSCAN
// labels into contiguous, non-overlapping blocks covering every operator.
// Non-contiguous runs of one label are split; noise points and runs shorter
// than minPts are merged into the adjacent run with the smaller mean
// inter-run distance, so every block is "continuous and practically
// feasible within the network's hierarchical structure" (§2.1.3). A final
// pass merges adjacent runs whose mean inter-run distance is within eps —
// DBSCAN separates periodic patterns (e.g. DenseNet's concat cadence) into
// many echo clusters that are power-equivalent, and the paper's
// post-processing explicitly "adjusts size, shape, or membership of
// clusters" to repair exactly that fragmentation.
func processClusters(labels []int, d *tensor.Matrix, minPts int, eps float64) []Block {
	n := len(labels)
	if n == 0 {
		return nil
	}

	// 1. Split into contiguous runs of equal labels.
	type run struct {
		start, end int
		label      int
	}
	var runs []run
	start := 0
	for i := 1; i <= n; i++ {
		if i == n || labels[i] != labels[start] {
			runs = append(runs, run{start, i - 1, labels[start]})
			start = i
		}
	}

	// Mean distance between all cross pairs of two runs.
	meanDist := func(a, b run) float64 {
		sum, cnt := 0.0, 0
		for i := a.start; i <= a.end; i++ {
			for j := b.start; j <= b.end; j++ {
				sum += d.At(i, j)
				cnt++
			}
		}
		if cnt == 0 {
			return 0
		}
		return sum / float64(cnt)
	}

	// 2. Repeatedly merge the smallest offending run (noise or undersized)
	// into its nearer neighbor until every run is a feasible block.
	for len(runs) > 1 {
		worst := -1
		for i, r := range runs {
			if r.label == -1 || r.end-r.start+1 < minPts {
				if worst == -1 || (r.end-r.start) < (runs[worst].end-runs[worst].start) {
					worst = i
				}
			}
		}
		if worst == -1 {
			break
		}
		target := worst - 1
		if worst == 0 {
			target = 1
		} else if worst < len(runs)-1 {
			if meanDist(runs[worst], runs[worst+1]) < meanDist(runs[worst], runs[worst-1]) {
				target = worst + 1
			}
		}
		// Merge worst into target.
		lo, hi := worst, target
		if lo > hi {
			lo, hi = hi, lo
		}
		merged := run{runs[lo].start, runs[hi].end, runs[target].label}
		runs = append(runs[:lo], append([]run{merged}, runs[hi+1:]...)...)
	}

	// 3. Merge adjacent power-equivalent runs (mean distance within eps),
	// nearest pair first.
	for len(runs) > 1 {
		best, bestD := -1, 0.0
		for i := 0; i+1 < len(runs); i++ {
			md := meanDist(runs[i], runs[i+1])
			if md <= eps && (best == -1 || md < bestD) {
				best, bestD = i, md
			}
		}
		if best == -1 {
			break
		}
		merged := run{runs[best].start, runs[best+1].end, runs[best].label}
		runs = append(runs[:best], append([]run{merged}, runs[best+2:]...)...)
	}

	blocks := make([]Block, 0, len(runs))
	for _, r := range runs {
		blocks = append(blocks, Block{r.start, r.end})
	}
	return blocks
}
