package cluster

import (
	"math/rand"
	"testing"

	"powerlens/internal/graph"
	"powerlens/internal/tensor"
)

func TestClusterPrecomputedSingleRow(t *testing.T) {
	d := tensor.NewMatrix(1, 1)
	blocks := ClusterPrecomputed(d, defaultHP(0.3, 3))
	if len(blocks) != 1 || blocks[0] != (Block{0, 0}) {
		t.Fatalf("blocks = %v", blocks)
	}
}

func TestRandomPowerViewMinBlocks(t *testing.T) {
	g := twoLayerGraph()
	rng := rand.New(rand.NewSource(1))
	// maxBlocks below 2 clamps to 2 (P-R must differ from P-N).
	pv := RandomPowerView(g, rng, 0)
	if pv.NumBlocks() < 1 {
		t.Fatal("empty view")
	}
}

func TestRandomPowerViewTinyGraph(t *testing.T) {
	// A graph with a single non-input op cannot be cut; the view must still
	// be a valid partition.
	g := oneOpGraph()
	rng := rand.New(rand.NewSource(2))
	pv := RandomPowerView(g, rng, 8)
	if pv.NumBlocks() != 1 {
		t.Fatalf("blocks = %d", pv.NumBlocks())
	}
	if pv.Blocks[0].StartLayer != 0 || pv.Blocks[0].EndLayer != len(g.Layers)-1 {
		t.Fatalf("coverage wrong: %+v", pv.Blocks[0])
	}
}

func TestDBSCANBorderPointAdoption(t *testing.T) {
	// A point within eps of a core point but itself not core must join the
	// cluster (classic DBSCAN border semantics).
	rows := [][]float64{{0}, {0.1}, {0.2}, {0.9}}
	x := tensor.FromRows(rows)
	d := BlendedDistance(x, 1.0, 0)
	labels := dbscan(d, 0.35, 3, &Scratch{})
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatalf("core cluster split: %v", labels)
	}
	if labels[3] == labels[0] && labels[3] != -1 {
		// row 3 is far in normalized distance; either noise or own cluster,
		// never the same cluster.
		t.Fatalf("far point adopted: %v", labels)
	}
}

// twoLayerGraph builds a minimal multi-op graph.
func twoLayerGraph() *graph.Graph {
	g := graph.New("two")
	in := g.Input(3, 8, 8)
	c := g.Conv(in, 4, 3, 1, 1, 1)
	g.ReLU(c)
	return g
}

// oneOpGraph builds a graph with a single non-input operator.
func oneOpGraph() *graph.Graph {
	g := graph.New("one")
	in := g.Input(3, 8, 8)
	g.Conv(in, 4, 3, 1, 1, 1)
	return g
}
