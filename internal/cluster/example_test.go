package cluster_test

import (
	"fmt"

	"powerlens/internal/cluster"
	"powerlens/internal/models"
)

// Cluster a network into power blocks with explicit hyperparameters
// (deployments normally let the prediction model choose ε and minPts).
func ExampleBuildPowerView() {
	g := models.MustBuild("vgg19")
	alpha, lambda := cluster.DefaultDistanceParams()
	hp := cluster.Hyperparams{Eps: 0.30, MinPts: 2, Alpha: alpha, Lambda: lambda}

	pv, err := cluster.BuildPowerView(g, hp)
	if err != nil {
		panic(err)
	}
	fmt.Println("model:", pv.Model)
	fmt.Println("blocks:", pv.NumBlocks())
	fmt.Println("covers whole graph:",
		pv.Blocks[0].StartLayer == 0 && pv.Blocks[pv.NumBlocks()-1].EndLayer == len(g.Layers)-1)
	// Output:
	// model: vgg19
	// blocks: 3
	// covers whole graph: true
}

// The P-N ablation view treats the whole network as one power block.
func ExampleWholeNetworkView() {
	g := models.MustBuild("alexnet")
	pv := cluster.WholeNetworkView(g)
	fmt.Println(pv.NumBlocks(), "block spanning", pv.Blocks[0].EndLayer+1, "layers")
	// Output:
	// 1 block spanning 23 layers
}
