// Package cluster implements the paper's Algorithm 1 — power behavior
// similarity clustering. Scaled depthwise features are compared with the
// Mahalanobis distance (covariance pseudo-inverse), blended with an
// operator-spacing regularization term so only physically adjacent operators
// cluster together, partitioned with DBSCAN, and post-processed into
// contiguous, non-overlapping power blocks that form the power view.
package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"powerlens/internal/features"
	"powerlens/internal/graph"
	"powerlens/internal/tensor"
)

// Hyperparams are the clustering hyperparameters of Algorithm 1. Eps and
// MinPts are the DBSCAN knobs predicted per-network by the hyperparameter
// model; Alpha and Lambda control the distance blend.
type Hyperparams struct {
	Eps    float64 // DBSCAN neighborhood radius over the blended distance
	MinPts int     // least number of operators per cluster
	Alpha  float64 // weight of the Mahalanobis term in the blend
	Lambda float64 // spacing decay rate of the regularization term
}

// DefaultDistanceParams returns the fixed α, λ used throughout (the paper
// treats them as algorithm constants; only ε and minPts are predicted).
func DefaultDistanceParams() (alpha, lambda float64) { return 0.7, 0.15 }

// Validate checks hyperparameter sanity.
func (h Hyperparams) Validate() error {
	if h.Eps <= 0 || math.IsNaN(h.Eps) {
		return fmt.Errorf("cluster: eps must be positive, got %v", h.Eps)
	}
	if h.MinPts < 1 {
		return fmt.Errorf("cluster: minPts must be >= 1, got %d", h.MinPts)
	}
	if h.Alpha < 0 || h.Alpha > 1 {
		return fmt.Errorf("cluster: alpha must be in [0,1], got %v", h.Alpha)
	}
	if h.Lambda < 0 {
		return fmt.Errorf("cluster: lambda must be >= 0, got %v", h.Lambda)
	}
	return nil
}

// Block is a contiguous run of operator rows [Start, End] (inclusive) in the
// depthwise feature matrix.
type Block struct {
	Start, End int
}

// Len returns the number of operators in the block.
func (b Block) Len() int { return b.End - b.Start + 1 }

// PowerBlock is a power block mapped back onto graph layer IDs.
type PowerBlock struct {
	StartLayer, EndLayer int // inclusive layer-ID range in the graph
	NumOps               int
}

// PowerView is the logical intermediate representation of §2.1.3: the
// network partitioned into power blocks.
type PowerView struct {
	Model  string
	Blocks []PowerBlock
}

// NumBlocks returns the number of power blocks (the Block column of Table 1).
func (pv *PowerView) NumBlocks() int { return len(pv.Blocks) }

// BlendedDistance computes Distance_final of Algorithm 1 over the scaled
// feature rows of x: α·D̂[i,j] + (1-α)·R[i,j], where D̂ is the Mahalanobis
// distance normalized to [0,1] and R penalizes operator spacing.
//
// Note on R: the paper's pseudocode writes R[i,j] = exp(-λ|i-j|), which
// *decreases* with spacing; taken literally the blend would make far-apart
// operators look closer, contradicting the stated goal ("ensure that only
// physically adjacent operators are considered"). We implement the stated
// semantics, R[i,j] = 1 - exp(-λ|i-j|), which differs from the literal
// formula only by the affine map R' = 1 - R (equivalently, a shift of ε).
func BlendedDistance(x *tensor.Matrix, alpha, lambda float64) *tensor.Matrix {
	// Shrinkage regularization: near-duplicate operators make the covariance
	// nearly singular, and a raw pseudo-inverse would amplify measurement
	// noise along the near-zero-variance directions into spurious distance.
	// Shrinking toward a scaled identity bounds that amplification — this is
	// the "regularization" Algorithm 1 applies alongside the pseudo-inverse.
	const shrink = 0.05
	cov := tensor.ShrunkCovariance(x, shrink)
	prec := tensor.PseudoInverse(cov)
	d := tensor.MahalanobisAll(x, prec)

	// Normalize the Mahalanobis term so ε is comparable across networks.
	// MahalanobisAll is exactly symmetric with a zero diagonal, so scanning
	// the strict upper triangle finds the same maximum at a third of the
	// reads, and the blend below only needs each (i<j) pair once.
	n := x.Rows
	maxD := 0.0
	for i := 0; i < n; i++ {
		row := d.Row(i)
		for j := i + 1; j < n; j++ {
			if v := row[j]; v > maxD {
				maxD = v
			}
		}
	}
	invD := 1.0
	if maxD > 0 {
		invD = 1 / maxD
	}

	// The spacing term depends only on |i-j|: one exp per offset, not per pair.
	spacing := make([]float64, n)
	for k := 1; k < n; k++ {
		spacing[k] = 1 - math.Exp(-lambda*float64(k))
	}

	out := tensor.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := alpha*(d.At(i, j)*invD) + (1-alpha)*spacing[j-i]
			out.Set(i, j, v)
			out.Set(j, i, v)
		}
	}
	return out
}

// Cluster runs Algorithm 1 over a scaled depthwise feature matrix and
// returns contiguous, non-overlapping blocks covering every row.
func Cluster(x *tensor.Matrix, hp Hyperparams) ([]Block, error) {
	if err := hp.Validate(); err != nil {
		return nil, err
	}
	if x.Rows == 0 {
		return nil, fmt.Errorf("cluster: empty feature matrix")
	}
	if x.Rows == 1 {
		return []Block{{0, 0}}, nil
	}
	d := BlendedDistance(x, hp.Alpha, hp.Lambda)
	return ClusterPrecomputed(d, hp), nil
}

// ClusterPrecomputed runs the DBSCAN + post-processing stages over an
// already-blended distance matrix. The dataset generator sweeps many
// (ε, minPts) cells per network; since α and λ are fixed constants, the
// distance matrix is shared across the sweep. The returned slice is owned
// by the caller; hot loops that sweep many cells should use
// ClusterPrecomputedScratch instead.
func ClusterPrecomputed(d *tensor.Matrix, hp Hyperparams) []Block {
	var sc Scratch
	return append([]Block(nil), ClusterPrecomputedScratch(d, hp, &sc)...)
}

// ClusterPrecomputedScratch is ClusterPrecomputed with caller-provided
// working buffers: repeated calls with the same Scratch reuse the label,
// neighbor, queue and run storage instead of reallocating per cell. The
// returned slice aliases sc and is only valid until sc's next use.
func ClusterPrecomputedScratch(d *tensor.Matrix, hp Hyperparams, sc *Scratch) []Block {
	if d.Rows == 1 {
		sc.blocks = append(sc.blocks[:0], Block{0, 0})
		return sc.blocks
	}
	labels := dbscan(d, hp.Eps, hp.MinPts, sc)
	return processClusters(labels, d, hp.MinPts, hp.Eps, sc)
}

// BuildPowerView extracts scaled depthwise features from g, clusters them,
// and maps the blocks back to layer-ID ranges.
func BuildPowerView(g *graph.Graph, hp Hyperparams) (*PowerView, error) {
	var sc Scratch
	return BuildPowerViewScratch(g, hp, &sc)
}

// BuildPowerViewScratch is BuildPowerView with caller-provided clustering
// scratch: repeated calls with the same Scratch reuse the DBSCAN label,
// neighbor, queue and run buffers instead of reallocating per call — the
// online analysis hot path (core.Framework.Analyze) clusters one network per
// call and was paying those allocations on every request. The returned view
// is owned by the caller (nothing in it aliases sc); results are identical
// to BuildPowerView.
func BuildPowerViewScratch(g *graph.Graph, hp Hyperparams, sc *Scratch) (*PowerView, error) {
	x, ids := features.ScaledDepthwise(g)
	if err := hp.Validate(); err != nil {
		return nil, err
	}
	if x.Rows == 0 {
		return nil, fmt.Errorf("cluster: empty feature matrix")
	}
	var blocks []Block
	if x.Rows == 1 {
		sc.blocks = append(sc.blocks[:0], Block{0, 0})
		blocks = sc.blocks
	} else {
		d := BlendedDistance(x, hp.Alpha, hp.Lambda)
		blocks = ClusterPrecomputedScratch(d, hp, sc)
	}
	return viewFromBlocks(g.Name, blocks, ids), nil
}

func viewFromBlocks(name string, blocks []Block, ids []int) *PowerView {
	pv := &PowerView{Model: name}
	for _, b := range blocks {
		pv.Blocks = append(pv.Blocks, PowerBlock{
			StartLayer: ids[b.Start],
			EndLayer:   ids[b.End],
			NumOps:     b.Len(),
		})
	}
	// The first block starts at layer 0 (the input) so the view covers the
	// whole graph when executed.
	if len(pv.Blocks) > 0 && pv.Blocks[0].StartLayer > 0 {
		pv.Blocks[0].StartLayer = 0
	}
	return pv
}

// RandomPowerView builds the P-R ablation view: the operator sequence is cut
// into a random number of contiguous blocks (at least 2, so the variant is
// distinct from P-N) at random boundaries, ignoring power behavior entirely.
func RandomPowerView(g *graph.Graph, rng *rand.Rand, maxBlocks int) *PowerView {
	_, ids := features.Depthwise(g)
	n := len(ids)
	if maxBlocks < 2 {
		maxBlocks = 2
	}
	k := 2 + rng.Intn(maxBlocks-1)
	if k > n {
		k = n
	}
	// Choose k-1 distinct cut points.
	cuts := map[int]bool{}
	for len(cuts) < k-1 {
		cuts[1+rng.Intn(n-1)] = true
	}
	blocks := []Block{}
	start := 0
	for i := 1; i < n; i++ {
		if cuts[i] {
			blocks = append(blocks, Block{start, i - 1})
			start = i
		}
	}
	blocks = append(blocks, Block{start, n - 1})
	return viewFromBlocks(g.Name, blocks, ids)
}

// WholeNetworkView builds the P-N ablation view: a single block spanning the
// whole network (no clustering; one frequency decision for the entire DNN).
func WholeNetworkView(g *graph.Graph) *PowerView {
	_, ids := features.Depthwise(g)
	return viewFromBlocks(g.Name, []Block{{0, len(ids) - 1}}, ids)
}
