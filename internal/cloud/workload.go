package cloud

import (
	"math/rand"
	"time"

	"powerlens/internal/models"
	"powerlens/internal/sim"
)

// RandomJobs synthesizes a cloud inference trace: n jobs drawn uniformly
// from the evaluation models, with Poisson arrivals at the given mean
// inter-arrival time and image counts between 25 and 100 (the "more complex
// and diverse tasks" of §5). Deterministic per seed.
func RandomJobs(n int, meanGap time.Duration, seed int64) []Job {
	rng := rand.New(rand.NewSource(seed))
	names := models.Names()
	built := map[string]*Job{}
	gaps := sim.PoissonArrivals(n, meanGap, seed+1)

	jobs := make([]Job, n)
	at := time.Duration(0)
	for i := range jobs {
		name := names[rng.Intn(len(names))]
		if _, ok := built[name]; !ok {
			built[name] = &Job{Graph: models.MustBuild(name)}
		}
		jobs[i] = Job{
			Graph:   built[name].Graph,
			Images:  25 + rng.Intn(76),
			Arrival: at,
		}
		at += gaps[i]
	}
	return jobs
}
