package cloud

import (
	"bytes"
	"testing"
	"time"

	"powerlens/internal/governor"
	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/obs/ledger"
	"powerlens/internal/sim"
)

// planFactory builds a guarded MultiPlan controller per node, with a simple
// two-block plan for every evaluation model (block 0 from layer 0, block 1
// from layer 4).
func planFactory() ControllerFactory {
	return func() sim.Controller {
		plans := map[string]*governor.FrequencyPlan{}
		for _, name := range models.Names() {
			plans[name] = &governor.FrequencyPlan{
				Model:  name,
				Points: map[int]int{0: 5, 4: 9},
			}
		}
		return governor.NewGuard(governor.NewMultiPlan(plans))
	}
}

func ledgerBytes(t *testing.T, l *ledger.Ledger) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestShardedLedgerByteIdentical pins the fleet attribution contract: a
// fault-free trace under a level-invariant policy completes the same multiset
// of passes at every shard count, and the ledger's integral, order-independent
// cells turn that into byte-identical exports for Shards = 1, 2, 4 and 8 —
// regardless of which nodes the work-stealing dispatcher landed each job on.
func TestShardedLedgerByteIdentical(t *testing.T) {
	p := hw.TX2()
	jobs := RandomJobs(32, 200*time.Millisecond, 13)
	run := func(shards int) ([]byte, Result) {
		l := ledger.New()
		cfg := Config{
			Nodes: 8, Platform: p, NewCtl: staticFactory(7),
			Ledger: l, Shards: shards, AdmitBatch: 4, StealSeed: 3,
		}
		res := runCfg(t, cfg, jobs)
		return ledgerBytes(t, l), res
	}
	want, res1 := run(1)
	if len(want) == 0 || res1.Passes == 0 {
		t.Fatalf("baseline ledger empty (passes=%d)", res1.Passes)
	}
	snap := func() ledger.Snapshot {
		l := ledger.New()
		cfg := Config{Nodes: 8, Platform: p, NewCtl: staticFactory(7), Ledger: l}
		runCfg(t, cfg, jobs)
		return l.Snapshot()
	}()
	var passes uint64
	for _, m := range snap.Models {
		passes += m.Passes
	}
	if int(passes) != res1.Passes {
		t.Fatalf("ledger passes %d, cluster result %d", passes, res1.Passes)
	}
	for _, shards := range []int{2, 4, 8} {
		got, res := run(shards)
		if !bytes.Equal(got, want) {
			t.Fatalf("shards=%d: ledger export differs from single-queue baseline", shards)
		}
		if res.Passes != res1.Passes || res.QoSViolations != res1.QoSViolations {
			t.Fatalf("shards=%d: QoS accounting differs: %d/%d vs %d/%d", shards,
				res.Passes, res.QoSViolations, res1.Passes, res1.QoSViolations)
		}
	}
}

// TestShardedLedgerDeterministicWithPlans reruns a plan-driven (MultiPlan
// under Guard), crashy, sharded fleet twice per shard count: identical
// configs must produce byte-identical ledger exports despite nodes simulating
// concurrently and the dispatcher stealing work between shards.
func TestShardedLedgerDeterministicWithPlans(t *testing.T) {
	p := hw.TX2()
	jobs := RandomJobs(24, 300*time.Millisecond, 17)
	for _, shards := range []int{1, 2, 4} {
		run := func() []byte {
			l := ledger.New()
			cfg := Config{
				Nodes: 6, Platform: p, NewCtl: planFactory(),
				Faults: crashyFaults(5), Ledger: l,
				Shards: shards, AdmitBatch: 4, StealSeed: 3,
			}
			runCfg(t, cfg, jobs)
			return ledgerBytes(t, l)
		}
		a, b := run(), run()
		if len(a) == 0 {
			t.Fatalf("shards=%d: empty ledger", shards)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("shards=%d: ledger exports differ across identical runs", shards)
		}
		// Plan-driven runs must attribute to both plan blocks.
		l := ledger.New()
		cfg := Config{Nodes: 6, Platform: p, NewCtl: planFactory(), Ledger: l, Shards: shards}
		runCfg(t, cfg, jobs)
		blocks := map[int]bool{}
		for _, c := range l.Snapshot().Cells {
			blocks[c.Block] = true
		}
		if !blocks[0] || !blocks[1] {
			t.Fatalf("shards=%d: plan blocks missing from cells: %v", shards, blocks)
		}
	}
}

// TestClusterLedgerOffIsInert pins the nil-sink contract at fleet scale: a
// run without a ledger is bit-identical to one that never knew about ledgers
// (guarding against accidental coupling), and attaching one does not change
// the simulated outcome.
func TestClusterLedgerOffIsInert(t *testing.T) {
	p := hw.TX2()
	jobs := testJobs(10)
	base := runCfg(t, Config{Nodes: 3, Platform: p, NewCtl: staticFactory(7)}, jobs)
	l := ledger.New()
	with := runCfg(t, Config{Nodes: 3, Platform: p, NewCtl: staticFactory(7), Ledger: l}, jobs)
	if base.TotalEnergyJ != with.TotalEnergyJ || base.Makespan != with.Makespan ||
		base.TotalImages != with.TotalImages || base.MeanTurnaround != with.MeanTurnaround {
		t.Fatalf("ledger perturbed the cluster run:\nbase %+v\nwith %+v", base, with)
	}
	if len(l.Snapshot().Cells) == 0 {
		t.Fatal("attached ledger stayed empty")
	}
}
