package cloud

import (
	"testing"
	"time"

	"powerlens/internal/governor"
	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/sim"
)

func testJobs(n int) []Job {
	return RandomJobs(n, 500*time.Millisecond, 11)
}

func staticFactory(level int) ControllerFactory {
	return func() sim.Controller { return governor.NewStatic(level) }
}

func TestRunBasics(t *testing.T) {
	p := hw.TX2()
	jobs := testJobs(12)
	res, err := Run(Config{Nodes: 3, Platform: p, NewCtl: staticFactory(7)}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	wantImages := 0
	for _, j := range jobs {
		wantImages += j.Images
	}
	if res.TotalImages != wantImages {
		t.Fatalf("images = %d, want %d", res.TotalImages, wantImages)
	}
	if res.TotalEnergyJ <= 0 || res.Makespan <= 0 || res.EE() <= 0 {
		t.Fatalf("bad aggregates: %+v", res)
	}
	totalJobs := 0
	for _, nr := range res.Nodes {
		totalJobs += nr.Jobs
		if nr.BusyEnd > res.Makespan {
			t.Fatal("node finished after makespan")
		}
	}
	if totalJobs != len(jobs) {
		t.Fatalf("dispatched %d jobs, want %d", totalJobs, len(jobs))
	}
	if res.MeanTurnaround <= 0 {
		t.Fatal("turnaround missing")
	}
}

func TestRunValidation(t *testing.T) {
	p := hw.TX2()
	if _, err := Run(Config{Nodes: 0, Platform: p, NewCtl: staticFactory(5)}, nil); err == nil {
		t.Fatal("expected error for zero nodes")
	}
	if _, err := Run(Config{Nodes: 1}, nil); err == nil {
		t.Fatal("expected error for missing platform/factory")
	}
}

func TestMoreNodesShortenMakespan(t *testing.T) {
	p := hw.TX2()
	jobs := testJobs(16)
	one, err := Run(Config{Nodes: 1, Platform: p, NewCtl: staticFactory(7)}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run(Config{Nodes: 4, Platform: p, NewCtl: staticFactory(7)}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if four.Makespan >= one.Makespan {
		t.Fatalf("4-node makespan %v >= 1-node %v", four.Makespan, one.Makespan)
	}
	if four.MeanTurnaround >= one.MeanTurnaround {
		t.Fatal("more nodes must cut turnaround under load")
	}
	if four.TotalImages != one.TotalImages {
		t.Fatal("image totals must match")
	}
}

func TestClusterPowerLensBeatsOndemand(t *testing.T) {
	// The §5 claim at fleet scale: PowerLens plans cut cluster energy vs
	// the nodes' built-in governor.
	p := hw.TX2()
	jobs := testJobs(10)

	// Oracle single-level plans per model (cheap stand-in for a full
	// deployment in this unit test).
	plans := map[string]*governor.FrequencyPlan{}
	for _, name := range models.Names() {
		g := models.MustBuild(name)
		lvl, _ := sim.OptimalSegmentLevel(p, g, 0, len(g.Layers)-1)
		plans[g.Name] = &governor.FrequencyPlan{Model: g.Name, Points: map[int]int{0: lvl}}
	}
	pl, err := Run(Config{Nodes: 2, Platform: p, NewCtl: func() sim.Controller {
		return governor.NewMultiPlan(plans)
	}}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	bim, err := Run(Config{Nodes: 2, Platform: p, NewCtl: func() sim.Controller {
		return governor.NewOndemand()
	}}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if pl.TotalEnergyJ >= bim.TotalEnergyJ {
		t.Fatalf("cluster PowerLens energy %.1f >= BiM %.1f", pl.TotalEnergyJ, bim.TotalEnergyJ)
	}
	if pl.EE() <= bim.EE() {
		t.Fatalf("cluster PowerLens EE %.4f <= BiM %.4f", pl.EE(), bim.EE())
	}
}

func TestRandomJobsDeterministic(t *testing.T) {
	a := RandomJobs(8, time.Second, 3)
	b := RandomJobs(8, time.Second, 3)
	for i := range a {
		if a[i].Graph.Name != b[i].Graph.Name || a[i].Images != b[i].Images || a[i].Arrival != b[i].Arrival {
			t.Fatal("same seed must reproduce the same trace")
		}
	}
	// Arrivals must be non-decreasing.
	for i := 1; i < len(a); i++ {
		if a[i].Arrival < a[i-1].Arrival {
			t.Fatal("arrivals must be sorted")
		}
	}
	// Image counts in [25, 100].
	for _, j := range a {
		if j.Images < 25 || j.Images > 100 {
			t.Fatalf("images = %d", j.Images)
		}
	}
}

func TestClusterBatchExtension(t *testing.T) {
	p := hw.TX2()
	jobs := testJobs(6)
	plain, err := Run(Config{Nodes: 2, Platform: p, NewCtl: staticFactory(7)}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := Run(Config{Nodes: 2, Platform: p, NewCtl: staticFactory(7), Batch: 8}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Batching rounds image counts up, so compare EE, which must improve.
	if batched.EE() <= plain.EE() {
		t.Fatalf("batched cluster EE %.4f <= plain %.4f", batched.EE(), plain.EE())
	}
}
