package cloud_test

import (
	"fmt"
	"time"

	"powerlens/internal/cloud"
	"powerlens/internal/governor"
	"powerlens/internal/hw"
	"powerlens/internal/sim"
)

// Dispatch a small Poisson job trace over a two-node fleet.
func ExampleRun() {
	p := hw.TX2()
	jobs := cloud.RandomJobs(6, 400*time.Millisecond, 7)

	res, err := cloud.Run(cloud.Config{
		Nodes:    2,
		Platform: p,
		NewCtl:   func() sim.Controller { return governor.NewStatic(6) },
	}, jobs)
	if err != nil {
		panic(err)
	}
	fmt.Println("jobs dispatched:", len(jobs))
	fmt.Println("fleet EE positive:", res.EE() > 0)
	fmt.Println("makespan covers all nodes:", res.Makespan > 0)
	// Output:
	// jobs dispatched: 6
	// fleet EE positive: true
	// makespan covers all nodes: true
}
