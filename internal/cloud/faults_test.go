package cloud

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"powerlens/internal/governor"
	"powerlens/internal/hw"
	"powerlens/internal/sim"
)

// crashyFaults is a schedule aggressive enough to lose nodes during the
// short test traces.
func crashyFaults(seed int64) hw.FaultConfig {
	return hw.FaultConfig{
		Seed:              seed,
		SensorDropoutProb: 0.05,
		SensorNoiseFrac:   0.10,
		StuckProb:         0.10,
		DelayProb:         0.20,
		DelayLatency:      2 * time.Millisecond,
		NodeCrashProb:     0.9,
		NodeCrashMTBF:     10 * time.Second,
	}
}

func TestFailoverRequeuesToSurvivors(t *testing.T) {
	p := hw.TX2()
	jobs := testJobs(20)
	cfg := Config{Nodes: 4, Platform: p, NewCtl: staticFactory(7), Faults: crashyFaults(5)}
	res, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodesLost == 0 {
		t.Fatalf("schedule p=0.9 mtbf=10s lost no nodes: %+v", res)
	}
	if res.Failovers == 0 {
		t.Fatalf("no failovers despite %d lost nodes", res.NodesLost)
	}
	if res.LostEnergyJ <= 0 {
		t.Fatal("failovers must attribute lost-work energy")
	}
	// Every non-dropped job still completes somewhere.
	totalJobs := 0
	for _, nr := range res.Nodes {
		totalJobs += nr.Jobs
	}
	if totalJobs+res.DroppedJobs != len(jobs) {
		t.Fatalf("completed %d + dropped %d != %d jobs", totalJobs, res.DroppedJobs, len(jobs))
	}
	if res.Faults.Total() == 0 {
		t.Fatal("per-node executor faults not aggregated")
	}
	// Degraded EE still well-defined.
	if res.EE() <= 0 {
		t.Fatalf("bad degraded EE: %+v", res)
	}
}

func TestAllNodesLostDropsJobsWithoutPanic(t *testing.T) {
	p := hw.TX2()
	jobs := testJobs(10)
	cfg := Config{Nodes: 2, Platform: p, NewCtl: staticFactory(7), Faults: hw.FaultConfig{
		Seed: 3, NodeCrashProb: 1, NodeCrashMTBF: time.Millisecond,
	}}
	res, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedJobs == 0 {
		t.Fatalf("instant crashes should drop jobs: %+v", res)
	}
	completed := 0
	for _, nr := range res.Nodes {
		completed += nr.Jobs
	}
	if completed+res.DroppedJobs != len(jobs) {
		t.Fatalf("job conservation violated: %d + %d != %d", completed, res.DroppedJobs, len(jobs))
	}
}

func TestZeroScheduleKeepsLegacyBehaviour(t *testing.T) {
	p := hw.TX2()
	jobs := testJobs(12)
	clean, err := Run(Config{Nodes: 3, Platform: p, NewCtl: staticFactory(7)}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if clean.NodesLost != 0 || clean.Failovers != 0 || clean.DroppedJobs != 0 ||
		clean.LostEnergyJ != 0 || clean.LostImages != 0 || clean.Faults != (hw.FaultStats{}) {
		t.Fatalf("fault-free run reported degradation: %+v", clean)
	}
	for _, nr := range clean.Nodes {
		if nr.Crashed || nr.Result.Faults != (hw.FaultStats{}) {
			t.Fatalf("fault-free node reported faults: %+v", nr)
		}
	}
}

// TestClusterRunSeedDeterminism guards against math/rand ordering
// regressions (e.g. in workload generation or the concurrent per-node
// simulation): two runs with the same fault-schedule seed must produce
// byte-identical results.
func TestClusterRunSeedDeterminism(t *testing.T) {
	p := hw.TX2()
	run := func() []byte {
		jobs := RandomJobs(15, 300*time.Millisecond, 77)
		res, err := Run(Config{
			Nodes:    3,
			Platform: p,
			NewCtl:   func() sim.Controller { return governor.NewOndemand() },
			Faults:   crashyFaults(13),
		}, jobs)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed must produce byte-identical cluster results\nlen %d vs %d", len(a), len(b))
	}
}
