// The sharded work-stealing dispatcher: the single-queue FCFS loop in
// cluster.go walks every node per job, which serializes dispatch for large
// fleets. Here the nodes are partitioned round-robin into shards, jobs are
// admitted in arrival-ordered batches, and each round runs four phases:
//
//  1. fill — service times for the batch's uncached model/images keys are
//     dry-run in parallel, then written to the shared cache in admission
//     order (a service time depends only on its key, so which worker
//     computes it cannot change the value);
//  2. steal — a sequential, seeded rebalance: the least-loaded shard steals
//     the tail job from the first profitable victim in its seeded victim
//     order, repeating until no steal is profitable (or a bound is hit);
//  3. dispatch — shards place their queues onto their own nodes
//     concurrently (earliest-available FCFS within the shard, with the same
//     mid-job crash failover as the single-queue path);
//  4. orphans — jobs no surviving node of their shard could take are
//     reassigned sequentially across the whole fleet, or dropped.
//
// Determinism at any shard count: every cross-shard decision (admission,
// home assignment, stealing, orphan reassignment, counter flushes) happens
// in a sequential phase over deterministic state; the concurrent phases
// (fill, dispatch, node simulation) only touch disjoint state — a shard
// owns its nodes and its obs tracks — so goroutine scheduling cannot leak
// into the result or the exported telemetry.

package cloud

import (
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"time"

	"powerlens/internal/obs"
	"powerlens/internal/sim"
)

// shardTrackBase hosts per-shard dispatcher events (steals, drops) on trace
// track shardTrackBase+shard, clear of the job (10+) and node (100+) ranges.
const shardTrackBase = 1000

// defaultAdmitBatch is the per-round admission batch when Config.AdmitBatch
// is unset.
const defaultAdmitBatch = 32

// shardState is one dispatcher shard: its owned nodes, its current-round
// queue, and run-total accumulators flushed to shared obs counters in shard
// order (float adds in goroutine order would be nondeterministic).
type shardState struct {
	id      int
	nodes   []int       // owned node indices
	victims []int       // seeded steal order over the other shards
	queue   []queuedJob // current round, sorted by arrival

	completed   int
	failovers   int
	steals      int
	lostEnergyJ float64
	lostImages  int
	turnaround  time.Duration
	orphans     []queuedJob // this round's infeasible jobs
}

// survivors counts the shard's nodes that are still alive given their
// accumulated load (a node whose scheduled crash precedes its free time can
// never take another job).
func (sh *shardState) survivors(nodes []nodeState, crashAt []time.Duration) int {
	alive := 0
	for _, n := range sh.nodes {
		if nodes[n].free < crashAt[n] {
			alive++
		}
	}
	return alive
}

// load estimates when the shard would drain its current queue: earliest free
// time among surviving nodes plus queued service time spread across them.
// Infinite when no owned node survives — such a shard never steals and is
// always worth stealing from.
func (sh *shardState) load(nodes []nodeState, crashAt []time.Duration, svc func(Job) sim.Result) float64 {
	alive := sh.survivors(nodes, crashAt)
	if alive == 0 {
		return inf
	}
	base := time.Duration(1<<63 - 1)
	for _, n := range sh.nodes {
		if nodes[n].free < crashAt[n] && nodes[n].free < base {
			base = nodes[n].free
		}
	}
	queued := 0.0
	for _, j := range sh.queue {
		queued += svc(j.Job).Time.Seconds()
	}
	return base.Seconds() + queued/float64(alive)
}

const inf = 1e308

// runSharded is the Shards > 1 dispatch path; see the package comment above
// for the phase structure and the determinism argument.
func runSharded(cfg Config, numShards int, jobs []Job) (Result, error) {
	pending := make([]queuedJob, len(jobs))
	for i, j := range jobs {
		pending[i] = queuedJob{Job: j, orig: j.Arrival}
	}
	sort.SliceStable(pending, func(i, j int) bool { return pending[i].Arrival < pending[j].Arrival })

	admit := cfg.AdmitBatch
	if admit <= 0 {
		admit = defaultAdmitBatch
	}
	stealSeed := cfg.StealSeed
	if stealSeed == 0 {
		stealSeed = 1
	}

	shards := make([]*shardState, numShards)
	for s := range shards {
		shards[s] = &shardState{id: s}
		rng := rand.New(rand.NewSource(stealSeed + int64(s)))
		for _, v := range rng.Perm(numShards) {
			if v != s {
				shards[s].victims = append(shards[s].victims, v)
			}
		}
	}
	nodes := make([]nodeState, cfg.Nodes)
	for n := 0; n < cfg.Nodes; n++ {
		sh := shards[n%numShards]
		sh.nodes = append(sh.nodes, n)
	}
	crashAt := cfg.Faults.CrashTimes(cfg.Nodes)

	// Shared service cache. Written only during the sequential part of the
	// fill phase (which also memoizes every batch job's graph digest); the
	// concurrent dispatch phase reads it for keys the fill phase guaranteed
	// are present (failovers and steals reuse a batch job's own key).
	serviceCache := map[svcKey]sim.Result{}
	keys := newSvcKeys()
	svc := func(j Job) sim.Result { return serviceCache[keys.key(j)] }

	var mJobs, mNodesLost, mLostEnergy, mShardJobs, mSteals obs.Counter
	if cfg.Obs != nil {
		m := cfg.Obs.Metrics
		mJobs = m.Counter("cloud_jobs_total",
			"Dispatched jobs by outcome (completed, failover, dropped).", "outcome")
		mNodesLost = m.Counter("cloud_nodes_lost_total",
			"Nodes whose scheduled crash fell inside the trace.")
		mLostEnergy = m.Counter("cloud_lost_energy_joules_total",
			"Energy burned on work destroyed by node crashes.")
		mShardJobs = m.Counter("cloud_shard_jobs_total",
			"Jobs completed per dispatcher shard.", "shard")
		mSteals = m.Counter("cloud_steals_total",
			"Jobs moved between shard queues by work stealing.", "shard")
	}

	res := Result{}
	var turnaround time.Duration
	completed := 0
	admitted := 0

	for len(pending) > 0 {
		n := admit
		if n > len(pending) {
			n = len(pending)
		}
		batch := pending[:n]
		pending = pending[n:]

		fillServiceCache(cfg, serviceCache, keys, batch)

		// Home assignment: global admission counter round-robin, so the
		// partition depends only on arrival order. Each shard's queue stays
		// arrival-sorted (a round-robin subsequence of a sorted batch).
		for i := range batch {
			shards[admitted%numShards].queue = append(shards[admitted%numShards].queue, batch[i])
			admitted++
		}

		stealPhase(cfg, shards, nodes, crashAt, svc, n)

		// Concurrent per-shard dispatch: disjoint nodes, disjoint trace
		// tracks, per-shard accumulators — nothing shared is written.
		var wg sync.WaitGroup
		for _, sh := range shards {
			wg.Add(1)
			go func(sh *shardState) {
				defer wg.Done()
				dispatchShard(cfg, sh, nodes, crashAt, svc)
			}(sh)
		}
		wg.Wait()

		// Orphan reassignment (sequential, shard order): jobs whose home
		// shard had no surviving feasible node get the whole fleet.
		var orphans []queuedJob
		for _, sh := range shards {
			orphans = append(orphans, sh.orphans...)
			sh.orphans = sh.orphans[:0]
		}
		sort.SliceStable(orphans, func(i, j int) bool { return orphans[i].Arrival < orphans[j].Arrival })
		placeOrphans(cfg, &res, nodes, crashAt, orphans, svc, &turnaround, &completed, mJobs, mLostEnergy)
	}

	// Flush per-shard accumulators in shard order so counter values (the
	// float ones especially) never depend on dispatch goroutine timing.
	for _, sh := range shards {
		res.Failovers += sh.failovers
		res.LostEnergyJ += sh.lostEnergyJ
		res.LostImages += sh.lostImages
		turnaround += sh.turnaround
		completed += sh.completed
		if cfg.Obs != nil {
			label := strconv.Itoa(sh.id)
			mShardJobs.Add(float64(sh.completed), label)
			mSteals.Add(float64(sh.steals), label)
			mJobs.Add(float64(sh.completed), "completed")
			mJobs.Add(float64(sh.failovers), "failover")
			mLostEnergy.Add(sh.lostEnergyJ)
		}
	}

	return finishRun(cfg, nodes, crashAt, res, turnaround, completed, mNodesLost)
}

// fillServiceCache dry-runs the batch's uncached model/images keys in
// parallel and commits the results in admission order. A dry run uses a
// fresh executor and controller, so its result is a pure function of the
// key — worker assignment cannot change what gets cached.
func fillServiceCache(cfg Config, cache map[svcKey]sim.Result, keys *svcKeys, batch []queuedJob) {
	var missing []Job
	seen := map[svcKey]bool{}
	for _, j := range batch {
		k := keys.key(j.Job)
		if _, ok := cache[k]; !ok && !seen[k] {
			seen[k] = true
			missing = append(missing, j.Job)
		}
	}
	results := make([]sim.Result, len(missing))
	var wg sync.WaitGroup
	for i := range missing {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e := newDryRunExecutor(cfg)
			results[i] = e.RunTask(missing[i].Graph, missing[i].Images)
		}(i)
	}
	wg.Wait()
	for i, j := range missing {
		cache[keys.key(j)] = results[i]
	}
}

// stealPhase rebalances the round's queues: the least-loaded shard steals
// the tail job from the first victim in its seeded order for which the move
// is profitable (victim stays at least as loaded as the thief afterwards, so
// a steal is never immediately reversed). Sequential and bounded, hence
// deterministic.
func stealPhase(cfg Config, shards []*shardState, nodes []nodeState, crashAt []time.Duration, svc func(Job) sim.Result, batchSize int) {
	est := make([]float64, len(shards))
	alive := make([]int, len(shards))
	for s, sh := range shards {
		est[s] = sh.load(nodes, crashAt, svc)
		alive[s] = sh.survivors(nodes, crashAt)
	}
	for budget := 2 * batchSize; budget > 0; budget-- {
		thief := -1
		for s := range shards {
			if alive[s] == 0 {
				continue
			}
			if thief < 0 || est[s] < est[thief] {
				thief = s
			}
		}
		if thief < 0 {
			return
		}
		stole := false
		for _, v := range shards[thief].victims {
			vq := shards[v].queue
			if len(vq) == 0 {
				continue
			}
			j := vq[len(vq)-1]
			jt := svc(j.Job).Time.Seconds()
			newThief := est[thief] + jt/float64(alive[thief])
			newVictim := est[v]
			if alive[v] > 0 {
				newVictim = est[v] - jt/float64(alive[v])
			}
			if newVictim < newThief {
				continue // not profitable: would just flip the imbalance
			}
			shards[v].queue = vq[:len(vq)-1]
			requeue(&shards[thief].queue, j)
			est[thief], est[v] = newThief, newVictim
			shards[thief].steals++
			if cfg.Obs != nil {
				cfg.Obs.Tracer.Instant("steal", "steal", shardTrackBase+thief, j.Arrival,
					map[string]any{"from_shard": v, "to_shard": thief, "model": j.Graph.Name})
			}
			stole = true
			break
		}
		if !stole {
			return
		}
	}
}

// dispatchShard drains one shard's round queue onto its own nodes with the
// single-queue dispatcher's FCFS rule, including mid-job crash failover
// (requeued within the shard at the crash instant). Jobs no surviving owned
// node can take become orphans for the sequential reassignment phase. Runs
// concurrently with the other shards; everything it writes — its nodes, its
// accumulators, trace tracks jobTrackBase+{owned nodes} and
// shardTrackBase+id — is shard-private.
func dispatchShard(cfg Config, sh *shardState, nodes []nodeState, crashAt []time.Duration, svc func(Job) sim.Result) {
	for len(sh.queue) > 0 {
		j := sh.queue[0]
		sh.queue = sh.queue[1:]

		best, bestStart := -1, time.Duration(0)
		for _, n := range sh.nodes {
			s := maxDur(j.Arrival, nodes[n].free)
			if s >= crashAt[n] {
				continue
			}
			if best < 0 || s < bestStart {
				best, bestStart = n, s
			}
		}
		if best < 0 {
			sh.orphans = append(sh.orphans, j)
			continue
		}
		ns := &nodes[best]
		dry := svc(j.Job)
		end := bestStart + dry.Time
		if end > crashAt[best] {
			ran := crashAt[best] - bestStart
			frac := ran.Seconds() / dry.Time.Seconds()
			sh.lostEnergyJ += dry.EnergyJ * frac
			sh.lostImages += int(float64(j.Images)*frac + 0.5)
			sh.failovers++
			if cfg.Obs != nil {
				cfg.Obs.Tracer.Complete("job", j.Graph.Name+" (lost)", jobTrackBase+best,
					bestStart, ran, map[string]any{"node": best, "aborted": true})
				cfg.Obs.Tracer.Instant("job", "failover", jobTrackBase+best, crashAt[best],
					map[string]any{"model": j.Graph.Name, "node": best})
			}
			ns.free = crashAt[best]
			j.Arrival = crashAt[best]
			requeue(&sh.queue, j)
			continue
		}
		if len(ns.tasks) > 0 {
			ns.gaps = append(ns.gaps, bestStart-ns.free)
		}
		ns.tasks = append(ns.tasks, sim.Task{Graph: j.Graph, Images: j.Images})
		ns.free = end
		ns.jobs++
		sh.completed++
		sh.turnaround += end - j.orig
		if cfg.Obs != nil {
			cfg.Obs.Tracer.Complete("job", j.Graph.Name, jobTrackBase+best, bestStart, dry.Time,
				map[string]any{"node": best, "images": j.Images,
					"queued_ms": float64((bestStart - j.orig).Milliseconds())})
		}
	}
}

// placeOrphans reassigns jobs whose home shard could not take them across
// the whole fleet (earliest-available surviving node, crash failover,
// dropped when nobody can ever run them). Sequential — free to touch shared
// accounting and obs directly.
func placeOrphans(cfg Config, res *Result, nodes []nodeState, crashAt []time.Duration, orphans []queuedJob, svc func(Job) sim.Result, turnaround *time.Duration, completed *int, mJobs, mLostEnergy obs.Counter) {
	for len(orphans) > 0 {
		j := orphans[0]
		orphans = orphans[1:]

		best, bestStart := -1, time.Duration(0)
		for n := range nodes {
			s := maxDur(j.Arrival, nodes[n].free)
			if s >= crashAt[n] {
				continue
			}
			if best < 0 || s < bestStart {
				best, bestStart = n, s
			}
		}
		if best < 0 {
			res.DroppedJobs++
			if cfg.Obs != nil {
				mJobs.Inc("dropped")
				cfg.Obs.Tracer.Instant("job", "dropped", 0, j.Arrival,
					map[string]any{"model": j.Graph.Name, "images": j.Images})
			}
			continue
		}
		ns := &nodes[best]
		dry := svc(j.Job)
		end := bestStart + dry.Time
		if end > crashAt[best] {
			ran := crashAt[best] - bestStart
			frac := ran.Seconds() / dry.Time.Seconds()
			res.LostEnergyJ += dry.EnergyJ * frac
			res.LostImages += int(float64(j.Images)*frac + 0.5)
			res.Failovers++
			if cfg.Obs != nil {
				mJobs.Inc("failover")
				mLostEnergy.Add(dry.EnergyJ * frac)
				cfg.Obs.Tracer.Complete("job", j.Graph.Name+" (lost)", jobTrackBase+best,
					bestStart, ran, map[string]any{"node": best, "aborted": true})
				cfg.Obs.Tracer.Instant("job", "failover", jobTrackBase+best, crashAt[best],
					map[string]any{"model": j.Graph.Name, "node": best})
			}
			ns.free = crashAt[best]
			j.Arrival = crashAt[best]
			requeue(&orphans, j)
			continue
		}
		if len(ns.tasks) > 0 {
			ns.gaps = append(ns.gaps, bestStart-ns.free)
		}
		ns.tasks = append(ns.tasks, sim.Task{Graph: j.Graph, Images: j.Images})
		ns.free = end
		ns.jobs++
		*completed++
		*turnaround += end - j.orig
		if cfg.Obs != nil {
			mJobs.Inc("completed")
			cfg.Obs.Tracer.Complete("job", j.Graph.Name, jobTrackBase+best, bestStart, dry.Time,
				map[string]any{"node": best, "images": j.Images,
					"queued_ms": float64((bestStart - j.orig).Milliseconds())})
		}
	}
}
