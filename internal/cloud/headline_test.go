package cloud

import (
	"testing"
	"time"
)

// TestClusterHeadline checks the manifest snapshot mirrors the degraded-mode
// accounting fields.
func TestClusterHeadline(t *testing.T) {
	r := Result{
		Nodes:          make([]NodeResult, 3),
		TotalEnergyJ:   20,
		TotalImages:    40,
		Makespan:       4 * time.Second,
		MeanTurnaround: 500 * time.Millisecond,
		NodesLost:      1,
		Failovers:      2,
		DroppedJobs:    1,
		LostEnergyJ:    1.5,
		Passes:         8,
		QoSViolations:  2,
	}
	h := r.Headline()
	want := map[string]float64{
		"nodes": 3, "images": 40, "energy_j": 20, "ee_img_per_j": 2,
		"makespan_s": 4, "turnaround_s": 0.5,
		"nodes_lost": 1, "failovers": 2, "dropped_jobs": 1, "lost_energy_j": 1.5,
		"passes": 8, "qos_violations": 2, "qos_violation_rate": 0.25,
	}
	for name, v := range want {
		if h[name] != v {
			t.Fatalf("headline[%s] = %v, want %v (full: %v)", name, h[name], v, h)
		}
	}
	if len(h) != len(want) {
		t.Fatalf("headline has %d fields, want %d: %v", len(h), len(want), h)
	}

	if z := (Result{}).Headline(); z["ee_img_per_j"] != 0 {
		t.Fatalf("zero result EE = %v", z["ee_img_per_j"])
	}
}
