package cloud

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"powerlens/internal/governor"
	"powerlens/internal/graph"
	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/obs/ledger"
	"powerlens/internal/sim"
)

// multiPlanFactory builds an unguarded MultiPlan controller per node (the
// window-inert plan shape whose whole tasks the macro layer fast-forwards).
func multiPlanFactory() ControllerFactory {
	return func() sim.Controller {
		plans := map[string]*governor.FrequencyPlan{}
		for _, name := range models.Names() {
			plans[name] = &governor.FrequencyPlan{
				Model:  name,
				Points: map[int]int{0: 5, 4: 9},
			}
		}
		return governor.NewMultiPlan(plans)
	}
}

// TestClusterMacroMatchesMicro pins the fleet-level bit-identity contract:
// a cluster run with a shared summary cache must DeepEqual the micro-stepped
// reference (TraceOff) and export byte-identical ledgers, on both the
// single-queue and the sharded work-stealing dispatcher.
func TestClusterMacroMatchesMicro(t *testing.T) {
	p := hw.TX2()
	jobs := RandomJobs(24, 200*time.Millisecond, 13)
	for _, tc := range []struct {
		name   string
		shards int
	}{{"single-queue", 0}, {"sharded", 4}} {
		t.Run(tc.name, func(t *testing.T) {
			base := Config{
				Nodes: 4, Platform: p, NewCtl: multiPlanFactory(),
				Shards: tc.shards, AdmitBatch: 4, StealSeed: 3,
			}

			micro := base
			micro.TraceOff = true
			micro.Ledger = ledger.New()
			want := runCfg(t, micro, jobs)

			macro := base
			cache := sim.NewSummaryCache()
			macro.Macro = cache
			macro.Ledger = ledger.New()
			got := runCfg(t, macro, jobs)

			if !reflect.DeepEqual(want, got) {
				t.Fatalf("macro cluster run differs from micro:\nmicro %+v\nmacro %+v", want, got)
			}
			if !bytes.Equal(ledgerBytes(t, micro.Ledger), ledgerBytes(t, macro.Ledger)) {
				t.Fatal("macro ledger export differs from micro")
			}
			st := cache.Stats()
			if st.Hits == 0 || st.Fills == 0 {
				t.Fatalf("cluster run never used the macro cache: %+v", st)
			}
		})
	}
}

// TestClusterMacroFaultDemotion pins demotion under fault injection: node
// executors carry live injectors and must micro-step (the dry-run probes stay
// fault-free and may fast-forward), keeping the run bit-identical to the
// micro reference.
func TestClusterMacroFaultDemotion(t *testing.T) {
	p := hw.TX2()
	jobs := RandomJobs(18, 250*time.Millisecond, 17)
	base := Config{
		Nodes: 3, Platform: p, NewCtl: multiPlanFactory(),
		// Executor-level faults only: every node keeps a live injector (the
		// demotion trigger) without the crash schedule emptying the fleet.
		Faults: hw.FaultConfig{
			Seed:              5,
			SensorDropoutProb: 0.05, SensorNoiseFrac: 0.10,
			StuckProb: 0.10, DelayProb: 0.20, DelayLatency: 2 * time.Millisecond,
		},
	}

	micro := base
	micro.TraceOff = true
	want := runCfg(t, micro, jobs)

	macro := base
	cache := sim.NewSummaryCache()
	macro.Macro = cache
	got := runCfg(t, macro, jobs)

	if !reflect.DeepEqual(want, got) {
		t.Fatalf("faulted macro run differs from micro:\nmicro %+v\nmacro %+v", want, got)
	}
	if got.Faults == (hw.FaultStats{}) {
		t.Fatal("fault schedule injected nothing; demotion untested")
	}
}

// twoGraphsOneName builds two structurally different models sharing a model
// name — the shape that used to alias in the per-model service cache.
func twoGraphsOneName() (small, big *graph.Graph) {
	small = graph.New("shared")
	in := small.Input(3, 8, 8)
	small.Linear(small.Flatten(in), 10)

	big = graph.New("shared")
	in = big.Input(3, 64, 64)
	c := big.Conv(in, 64, 3, 1, 1, 1)
	c = big.Conv(big.ReLU(c), 128, 3, 1, 1, 1)
	big.Linear(big.Flatten(big.ReLU(c)), 100)
	return small, big
}

// TestServiceCacheKeyedOnGraphDigest is the regression test for the service
// cache aliasing bug: two jobs whose graphs share a name but differ in
// structure must be timed independently. On one node their makespan is the
// sum of their true service times; keying on the name alone would bill both
// at the first graph's latency.
func TestServiceCacheKeyedOnGraphDigest(t *testing.T) {
	p := hw.TX2()
	small, big := twoGraphsOneName()
	if graph.Digest(small) == graph.Digest(big) {
		t.Fatal("test graphs digest equal")
	}

	wall := func(g *graph.Graph) time.Duration {
		e := sim.NewExecutor(p, governor.NewStatic(7))
		return e.RunTask(g, 30).Time
	}
	tSmall, tBig := wall(small), wall(big)
	if tBig <= tSmall {
		t.Fatalf("want big graph slower: small %v, big %v", tSmall, tBig)
	}

	jobs := []Job{
		{Graph: small, Images: 30, Arrival: 0},
		{Graph: big, Images: 30, Arrival: 0},
	}
	res := runCfg(t, Config{Nodes: 1, Platform: p, NewCtl: staticFactory(7)}, jobs)
	if want := tSmall + tBig; res.Makespan != want {
		t.Fatalf("single-queue makespan %v, want %v (service cache aliased same-name graphs?)", res.Makespan, want)
	}

	// Sharded: one job per shard/node; the makespan is the slower job's true
	// service time, not the first-cached one's.
	res = runCfg(t, Config{
		Nodes: 2, Platform: p, NewCtl: staticFactory(7),
		Shards: 2, AdmitBatch: 4, StealSeed: 3,
	}, jobs)
	if res.Makespan != tBig {
		t.Fatalf("sharded makespan %v, want %v (fill phase aliased same-name graphs?)", res.Makespan, tBig)
	}
}
