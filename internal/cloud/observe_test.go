package cloud

import (
	"reflect"
	"testing"
	"time"

	"powerlens/internal/hw"
	"powerlens/internal/obs"
)

// obsTestFaults is a nonzero schedule with node crashes, deterministic per
// run, matching the resilience experiment's nuisance rates.
func obsTestFaults() hw.FaultConfig {
	return hw.FaultConfig{
		Seed:              23,
		SensorDropoutProb: 0.05, SensorNoiseFrac: 0.10,
		StuckProb: 0.10, ClampProb: 0.03,
		DelayProb: 0.20, DelayLatency: 2 * time.Millisecond,
		NodeCrashProb: 0.5, NodeCrashMTBF: 60 * time.Second,
	}
}

// TestObservedClusterRunIsIdentical is the cluster-level determinism check:
// attaching an observer to a faulty seeded run must not change any result
// field, even though nodes simulate on concurrent goroutines.
func TestObservedClusterRunIsIdentical(t *testing.T) {
	p := hw.TX2()
	jobs := testJobs(16)
	run := func(o *obs.Observer) Result {
		res, err := Run(Config{
			Nodes:    3,
			Platform: p,
			NewCtl:   staticFactory(7),
			Faults:   obsTestFaults(),
			Obs:      o,
		}, jobs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	bare, observed := run(nil), run(obs.New())
	if !reflect.DeepEqual(bare, observed) {
		t.Fatalf("observation changed the cluster result:\nbare     %+v\nobserved %+v",
			bare, observed)
	}
}

// TestClusterTrace checks the dispatcher's emission: fleet counters agree
// with the result, job spans land on per-node job tracks, executor events on
// per-node executor tracks, and every trace is deterministic across runs.
func TestClusterTrace(t *testing.T) {
	p := hw.TX2()
	jobs := testJobs(16)
	run := func() (Result, []obs.Event, []obs.FamilySnapshot) {
		o := obs.New()
		res, err := Run(Config{
			Nodes:    3,
			Platform: p,
			NewCtl:   staticFactory(7),
			Faults:   obsTestFaults(),
			Obs:      o,
		}, jobs)
		if err != nil {
			t.Fatal(err)
		}
		return res, o.Tracer.Events(), o.Metrics.Snapshot()
	}
	res, evs, snap := run()
	vals := map[string]float64{}
	for _, f := range snap {
		vals[f.Name] = f.Total()
	}

	completed := 0
	for _, n := range res.Nodes {
		completed += n.Jobs
	}
	if vals["cloud_jobs_total"] != float64(completed+res.Failovers+res.DroppedJobs) {
		t.Fatalf("cloud_jobs_total = %g, want %d completed + %d failover + %d dropped",
			vals["cloud_jobs_total"], completed, res.Failovers, res.DroppedJobs)
	}
	if vals["cloud_nodes_lost_total"] != float64(res.NodesLost) {
		t.Fatalf("cloud_nodes_lost_total = %g, want %d", vals["cloud_nodes_lost_total"], res.NodesLost)
	}
	if vals["cloud_lost_energy_joules_total"] != res.LostEnergyJ {
		t.Fatalf("cloud_lost_energy_joules_total = %g, want %g",
			vals["cloud_lost_energy_joules_total"], res.LostEnergyJ)
	}

	jobSpans, crashMarks := 0, 0
	for _, ev := range evs {
		switch ev.Cat {
		case "job":
			if ev.Phase == obs.PhaseComplete {
				jobSpans++
				n := int(ev.TID) - jobTrackBase
				if n < 0 || n >= 3 {
					t.Fatalf("job span on unexpected track %d: %+v", ev.TID, ev)
				}
			}
		case "node":
			crashMarks++
		case "block", "actuation", "decision":
			if int(ev.TID) < nodeTrackBase || int(ev.TID) >= nodeTrackBase+3 {
				t.Fatalf("executor event on unexpected track %d: %+v", ev.TID, ev)
			}
		}
	}
	if jobSpans != completed+res.Failovers {
		t.Fatalf("job spans = %d, want %d completed + %d lost-to-failover",
			jobSpans, completed, res.Failovers)
	}
	if crashMarks != res.NodesLost {
		t.Fatalf("crash marks = %d, want %d", crashMarks, res.NodesLost)
	}

	// The event stream (order, timestamps, args) and the full metric state —
	// including float histogram sums, which node registries accumulate
	// privately and merge in node order — must be reproducible bit for bit
	// even though node executors run concurrently.
	_, evs2, snap2 := run()
	if len(evs) != len(evs2) {
		t.Fatalf("trace lengths differ across runs: %d vs %d", len(evs), len(evs2))
	}
	for i := range evs {
		a, b := evs[i], evs2[i]
		if a.Name != b.Name || a.Cat != b.Cat || a.TID != b.TID ||
			a.TsUS != b.TsUS || a.DurUS != b.DurUS {
			t.Fatalf("trace diverges at event %d:\n%+v\n%+v", i, a, b)
		}
	}
	if !reflect.DeepEqual(snap, snap2) {
		t.Fatalf("metric snapshots diverge across runs:\n%+v\n%+v", snap, snap2)
	}
}
