// Package cloud implements the paper's §5 future-work deployment scenario:
// "we plan to apply PowerLens in cloud servers, where more complex and
// diverse tasks can yield greater benefits". A Cluster models a rack of
// identical accelerator nodes fed by a stream of inference jobs; a
// dispatcher assigns each job to the earliest-available node, and every node
// is simulated with the same executor/governor machinery as the
// single-board experiments. Cluster-level energy, makespan, and turnaround
// compare DVFS policies at fleet scale.
//
// With a nonzero fault schedule (Config.Faults) the cluster additionally
// models node loss: nodes crash at seeded, deterministic times, jobs caught
// mid-flight fail over to surviving nodes (their partial work's energy is
// attributed to the run as lost work), and per-node executors inject the
// sensor/actuation faults of internal/hw. Zero-schedule runs are
// bit-identical to the fault-free dispatcher.
package cloud

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"powerlens/internal/graph"
	"powerlens/internal/hw"
	"powerlens/internal/obs"
	"powerlens/internal/obs/audit"
	"powerlens/internal/obs/ledger"
	"powerlens/internal/sim"
)

// Job is one inference request: a model, an image count, and an arrival
// time relative to the start of the trace.
type Job struct {
	Graph   *graph.Graph
	Images  int
	Arrival time.Duration
}

// ControllerFactory builds a fresh controller per node (controllers are
// stateful, so nodes cannot share one).
type ControllerFactory func() sim.Controller

// Config describes the cluster.
type Config struct {
	Nodes    int
	Platform *hw.Platform
	NewCtl   ControllerFactory
	// Batch applies the §5 batching extension on every node (0/1 = off).
	Batch int
	// Faults is the deterministic fault schedule: per-node executor faults
	// (sensor noise/dropout, actuation faults) plus scheduled node crashes.
	// The zero value reproduces the fault-free dispatcher bit-for-bit.
	Faults hw.FaultConfig
	// Obs, when non-nil, streams the job lifecycle (dispatch spans, crash /
	// failover / drop instants on per-node tracks) and fleet counters into
	// the observability layer. Each node's executor emits on its own derived
	// track, so the trace is deterministic for a fixed seed despite nodes
	// simulating concurrently.
	Obs *obs.Observer
	// Ledger, when non-nil, receives the fleet's merged energy/latency
	// attribution: each node's executor records into a private per-node
	// ledger, and the pieces are merged here in node order after the
	// simulation. The ledger's integral cell state makes the merged result
	// byte-identical at any shard count.
	Ledger *ledger.Ledger
	// Audit, when non-nil, receives the fleet's merged decision-audit trail:
	// each node's executor records into a private recorder (same Config, one
	// track per node at nodeTrackBase+n), merged here in node order after the
	// simulation. Aggregate families (applies, guard events, calibration) are
	// integral and node-agnostic, so they are byte-identical at any shard
	// count; per-track rings follow job placement, which the sharded
	// dispatcher varies with Shards — run the recorder in aggregate-only mode
	// (Config.RingSize < 0) when comparing exports across shard counts.
	Audit *audit.Recorder

	// Macro, when non-nil, is the shared flow-summary cache threaded through
	// every executor the run creates — the dry-run service probes and the
	// per-node task-flow simulations, on both dispatchers — enabling the
	// analytic fast-forward of sim (macro.go) with single-flight fill across
	// nodes. Macro runs force SensorPeriod=0 on those executors (the
	// per-node power-sample trace is incompatible with fast-forward), so set
	// TraceOff on a reference run when byte-comparing macro against micro.
	// Executors that demote (fault injection, obs, audit) micro-step
	// automatically; results are bit-identical either way.
	Macro *sim.SummaryCache
	// TraceOff disables the per-node power-sample trace without enabling
	// macro-stepping: the micro-stepped reference configuration for
	// macro-vs-micro identity checks.
	TraceOff bool

	// Shards > 1 enables the sharded work-stealing dispatcher (dispatch.go):
	// nodes are partitioned round-robin into shards, jobs are admitted in
	// arrival-ordered batches, each shard dispatches to its own nodes
	// concurrently, and a seeded, deterministic steal phase rebalances queues
	// between rounds. 0 or 1 keeps the single-queue dispatcher bit-for-bit.
	// Shards above Nodes is clamped to Nodes.
	Shards int
	// AdmitBatch is the number of jobs admitted per sharded dispatch round
	// (default 32; ignored by the single-queue dispatcher).
	AdmitBatch int
	// StealSeed seeds each shard's victim order for work stealing
	// (default 1; ignored by the single-queue dispatcher).
	StealSeed int64
}

// Trace track-ID scheme: job lifecycle events for node n go on track
// jobTrackBase+n, the node's executor internals on nodeTrackBase+n, and
// dropped jobs on track 0 — all clear of track 1, which single-node
// experiments use, so a shared observer never interleaves tracks.
const (
	jobTrackBase  = 10
	nodeTrackBase = 100
)

// NodeResult is one node's simulated outcome.
type NodeResult struct {
	Node    int
	Jobs    int
	Result  sim.Result
	BusyEnd time.Duration // when the node finished its last job

	// Crash accounting (zero unless the fault schedule lost this node).
	Crashed bool
	CrashAt time.Duration
}

// Result aggregates a cluster run.
type Result struct {
	Nodes []NodeResult

	TotalEnergyJ   float64
	TotalImages    int
	Makespan       time.Duration // latest node completion
	MeanTurnaround time.Duration // mean (completion - arrival) over completed jobs

	// Degraded-mode accounting (all zero on a fault-free run).
	NodesLost   int           // nodes that crashed during the trace
	Failovers   int           // jobs requeued to surviving nodes after a crash
	DroppedJobs int           // jobs lost because no node could take them
	LostEnergyJ float64       // energy burned on work destroyed by crashes
	LostImages  int           // images whose processing was destroyed by crashes
	Faults      hw.FaultStats // executor-level fault counters, summed over nodes

	// QoS accounting, summed over nodes (see sim.Result).
	Passes        int
	QoSViolations int
}

// EE returns cluster-level images per joule. Energy spent on lost work
// counts toward the denominator — degraded runs pay for what they burned.
func (r Result) EE() float64 {
	if r.TotalEnergyJ <= 0 {
		return 0
	}
	return float64(r.TotalImages) / r.TotalEnergyJ
}

// Headline returns the cluster run's headline metrics as a flat name→value
// map, the snapshot a run manifest (obs/runlog) records alongside the
// single-node flow's sim.Result.Headline.
func (r Result) Headline() map[string]float64 {
	h := map[string]float64{
		"nodes":          float64(len(r.Nodes)),
		"images":         float64(r.TotalImages),
		"energy_j":       r.TotalEnergyJ,
		"ee_img_per_j":   r.EE(),
		"makespan_s":     r.Makespan.Seconds(),
		"turnaround_s":   r.MeanTurnaround.Seconds(),
		"nodes_lost":     float64(r.NodesLost),
		"failovers":      float64(r.Failovers),
		"dropped_jobs":   float64(r.DroppedJobs),
		"lost_energy_j":  r.LostEnergyJ,
		"passes":         float64(r.Passes),
		"qos_violations": float64(r.QoSViolations),
	}
	if r.Passes > 0 {
		h["qos_violation_rate"] = float64(r.QoSViolations) / float64(r.Passes)
	} else {
		h["qos_violation_rate"] = 0
	}
	return h
}

// svcKey identifies a dry-run service time: the graph's canonical digest plus
// the image count. The digest — not the model name — is the identity: two
// registered configurations can share a name while differing in structure, and
// keying on the name alone would serve one config's latency and energy to the
// other's dispatch decisions.
type svcKey struct {
	digest uint64
	images int
}

// svcKeys memoizes graph digests by pointer for one run. Writes happen only in
// sequential phases (runSingle's dispatch loop; runSharded's fill-phase scan,
// which keys every batch job before the concurrent phases start), so the
// concurrent dispatch phase only ever reads the memo.
type svcKeys struct {
	digests map[*graph.Graph]uint64
}

func newSvcKeys() *svcKeys { return &svcKeys{digests: map[*graph.Graph]uint64{}} }

func (s *svcKeys) key(j Job) svcKey {
	d, ok := s.digests[j.Graph]
	if !ok {
		d = graph.Digest(j.Graph)
		s.digests[j.Graph] = d
	}
	return svcKey{digest: d, images: j.Images}
}

// newDryRunExecutor builds the executor for a dispatch-plan service probe: a
// fresh fault-free controller at the cluster's batch setting, sharing the
// run's macro cache when one is configured (probe and node simulations hit
// the same flow summaries).
func newDryRunExecutor(cfg Config) *sim.Executor {
	e := sim.NewExecutor(cfg.Platform, cfg.NewCtl())
	e.Batch = cfg.Batch
	if cfg.Macro != nil || cfg.TraceOff {
		e.SensorPeriod = 0
		e.Summaries = cfg.Macro
	}
	return e
}

// queuedJob tracks a job through dispatch, preserving its original arrival
// for turnaround accounting across failovers.
type queuedJob struct {
	Job
	orig time.Duration // original arrival (Job.Arrival moves on requeue)
}

// nodeState tracks one node's accumulated dispatch decisions before its
// task flow is simulated.
type nodeState struct {
	free  time.Duration
	tasks []sim.Task
	gaps  []time.Duration
	jobs  int
}

// Run dispatches jobs (sorted by arrival) to the earliest-available node
// and simulates every node's task flow. Job service times are measured with
// a per-job dry run at the node's policy, so dispatch decisions see the
// same latency the simulation produces.
//
// Under a fault schedule, a node that crashes mid-job loses that job's
// partial work (accounted via the dry run's energy) and the job fails over
// to the earliest surviving node; a crashed node takes no further work. If
// every node is lost, remaining jobs are dropped and counted, never
// panicking the run.
//
// With Config.Shards > 1, dispatch runs on the sharded work-stealing path
// (dispatch.go) instead; results are deterministic for a fixed config at any
// shard count, and Shards <= 1 is bit-identical to the single-queue
// dispatcher.
func Run(cfg Config, jobs []Job) (Result, error) {
	if cfg.Nodes < 1 {
		return Result{}, fmt.Errorf("cloud: need at least one node, got %d", cfg.Nodes)
	}
	if cfg.Platform == nil || cfg.NewCtl == nil {
		return Result{}, fmt.Errorf("cloud: platform and controller factory required")
	}
	if shards := cfg.Shards; shards > 1 {
		if shards > cfg.Nodes {
			shards = cfg.Nodes
		}
		if shards > 1 {
			return runSharded(cfg, shards, jobs)
		}
	}
	return runSingle(cfg, jobs)
}

// runSingle is the single-queue FCFS dispatcher (the pre-sharding code path,
// kept verbatim so Shards <= 1 stays bit-identical).
func runSingle(cfg Config, jobs []Job) (Result, error) {
	queue := make([]queuedJob, len(jobs))
	for i, j := range jobs {
		queue[i] = queuedJob{Job: j, orig: j.Arrival}
	}
	sort.SliceStable(queue, func(i, j int) bool { return queue[i].Arrival < queue[j].Arrival })

	// Per-model service cache (dry run on a fresh, fault-free controller:
	// dispatch plans with nominal latencies; faults hit the real run).
	serviceCache := map[svcKey]sim.Result{}
	keys := newSvcKeys()
	service := func(j Job) sim.Result {
		key := keys.key(j)
		if r, ok := serviceCache[key]; ok {
			return r
		}
		e := newDryRunExecutor(cfg)
		r := e.RunTask(j.Graph, j.Images)
		serviceCache[key] = r
		return r
	}

	crashAt := cfg.Faults.CrashTimes(cfg.Nodes)

	var mJobs, mNodesLost, mLostEnergy obs.Counter
	if cfg.Obs != nil {
		m := cfg.Obs.Metrics
		mJobs = m.Counter("cloud_jobs_total",
			"Dispatched jobs by outcome (completed, failover, dropped).", "outcome")
		mNodesLost = m.Counter("cloud_nodes_lost_total",
			"Nodes whose scheduled crash fell inside the trace.")
		mLostEnergy = m.Counter("cloud_lost_energy_joules_total",
			"Energy burned on work destroyed by node crashes.")
	}

	nodes := make([]nodeState, cfg.Nodes)
	res := Result{}
	var turnaround time.Duration
	completed := 0

	for len(queue) > 0 {
		j := queue[0]
		queue = queue[1:]

		// Earliest-available surviving node (FCFS dispatch). A node whose
		// crash precedes the job's possible start can never take it.
		best, bestStart := -1, time.Duration(0)
		for n := 0; n < cfg.Nodes; n++ {
			s := maxDur(j.Arrival, nodes[n].free)
			if s >= crashAt[n] {
				continue
			}
			if best < 0 || s < bestStart {
				best, bestStart = n, s
			}
		}
		if best < 0 {
			// No node can ever take this job: the degraded cluster drops it.
			res.DroppedJobs++
			if cfg.Obs != nil {
				mJobs.Inc("dropped")
				cfg.Obs.Tracer.Instant("job", "dropped", 0, j.Arrival,
					map[string]any{"model": j.Graph.Name, "images": j.Images})
			}
			continue
		}
		ns := &nodes[best]
		dry := service(j.Job)
		end := bestStart + dry.Time
		if end > crashAt[best] {
			// The node dies mid-job: its partial work is destroyed. Energy
			// already burned on it is attributed to the run (pro-rated from
			// the dry run) and the job fails over to a surviving node,
			// re-entering the queue at the crash instant.
			ran := crashAt[best] - bestStart
			frac := ran.Seconds() / dry.Time.Seconds()
			res.LostEnergyJ += dry.EnergyJ * frac
			res.LostImages += int(float64(j.Images)*frac + 0.5)
			res.Failovers++
			if cfg.Obs != nil {
				mJobs.Inc("failover")
				mLostEnergy.Add(dry.EnergyJ * frac)
				cfg.Obs.Tracer.Complete("job", j.Graph.Name+" (lost)", jobTrackBase+best,
					bestStart, ran, map[string]any{"node": best, "aborted": true})
				cfg.Obs.Tracer.Instant("job", "failover", jobTrackBase+best, crashAt[best],
					map[string]any{"model": j.Graph.Name, "node": best})
			}
			ns.free = crashAt[best]
			j.Arrival = crashAt[best]
			requeue(&queue, j)
			continue
		}
		if len(ns.tasks) > 0 {
			ns.gaps = append(ns.gaps, bestStart-ns.free)
		}
		ns.tasks = append(ns.tasks, sim.Task{Graph: j.Graph, Images: j.Images})
		ns.free = end
		ns.jobs++
		completed++
		turnaround += end - j.orig
		if cfg.Obs != nil {
			mJobs.Inc("completed")
			cfg.Obs.Tracer.Complete("job", j.Graph.Name, jobTrackBase+best, bestStart, dry.Time,
				map[string]any{"node": best, "images": j.Images,
					"queued_ms": float64((bestStart - j.orig).Milliseconds())})
		}
	}

	return finishRun(cfg, nodes, crashAt, res, turnaround, completed, mNodesLost)
}

// finishRun simulates every loaded node and aggregates the cluster result;
// both dispatchers end here with identical float summation order.
func finishRun(cfg Config, nodes []nodeState, crashAt []time.Duration, res Result, turnaround time.Duration, completed int, mNodesLost obs.Counter) (Result, error) {
	// Simulate every loaded node concurrently — nodes are independent
	// boards, and per-node fault streams are seeded per node index, so the
	// outcome is deterministic regardless of goroutine scheduling. Each node
	// emits metrics into a private registry merged back in node order below:
	// folding into the shared registry directly would make float sums depend
	// on how the nodes' writes interleaved. (The shared tracer needs no such
	// treatment — Events() sorts by track/timestamp/sequence.)
	nodeResults := make([]*NodeResult, len(nodes))
	nodeObs := make([]*obs.Observer, cfg.Nodes)
	nodeLedgers := make([]*ledger.Ledger, cfg.Nodes)
	nodeAudits := make([]*audit.Recorder, cfg.Nodes)
	var wg sync.WaitGroup
	for n := range nodes {
		if nodes[n].jobs == 0 {
			continue
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			e := sim.NewExecutor(cfg.Platform, cfg.NewCtl())
			e.Batch = cfg.Batch
			if cfg.Macro != nil || cfg.TraceOff {
				// Macro nodes share the run's summary cache (single-flight
				// fill across node goroutines). Executors with demoting
				// attachments below — a live injector, obs, audit — fall back
				// to micro-stepping on their own; either way the node result
				// is bit-identical to the micro reference.
				e.SensorPeriod = 0
				e.Summaries = cfg.Macro
			}
			e.Faults = hw.NewInjector(cfg.Faults.ForNode(n))
			if no := cfg.Obs.ForTrack(nodeTrackBase + n); no != nil {
				no.Metrics = obs.NewRegistry()
				nodeObs[n] = no
				e.Obs = no
			}
			if cfg.Ledger != nil {
				nodeLedgers[n] = ledger.New()
				e.Ledger = nodeLedgers[n]
			}
			if cfg.Audit != nil {
				nodeAudits[n] = audit.New(cfg.Audit.ConfigView())
				e.Audit = nodeAudits[n]
				e.AuditTrack = nodeTrackBase + n
			}
			r := e.RunTaskFlowArrivals(nodes[n].tasks, nodes[n].gaps)
			nodeResults[n] = &NodeResult{Node: n, Jobs: nodes[n].jobs, Result: r, BusyEnd: nodes[n].free}
		}(n)
	}
	wg.Wait()
	if cfg.Obs != nil {
		for _, no := range nodeObs {
			if no != nil {
				cfg.Obs.Metrics.Merge(no.Metrics)
			}
		}
	}
	if cfg.Ledger != nil {
		for _, nl := range nodeLedgers {
			if nl != nil {
				cfg.Ledger.Merge(nl)
			}
		}
	}
	if cfg.Audit != nil {
		for _, na := range nodeAudits {
			if na != nil {
				cfg.Audit.Merge(na)
			}
		}
	}

	for n, nr := range nodeResults {
		if nr == nil {
			continue
		}
		if crashAt[n] != hw.NeverCrash && crashAt[n] <= nr.BusyEnd {
			nr.Crashed = true
			nr.CrashAt = crashAt[n]
		}
		res.Nodes = append(res.Nodes, *nr)
		res.TotalEnergyJ += nr.Result.EnergyJ
		res.TotalImages += nr.Result.Images
		res.Faults.Add(nr.Result.Faults)
		res.Passes += nr.Result.Passes
		res.QoSViolations += nr.Result.QoSViolations
		if nr.BusyEnd > res.Makespan {
			res.Makespan = nr.BusyEnd
		}
	}
	// A node is lost if its scheduled crash fell inside the trace (whether
	// or not it was holding a job at that instant).
	for n := range crashAt {
		if crashAt[n] != hw.NeverCrash && crashAt[n] <= res.Makespan {
			res.NodesLost++
			if cfg.Obs != nil {
				mNodesLost.Inc()
				cfg.Obs.Tracer.Instant("node", "crash", jobTrackBase+n, crashAt[n],
					map[string]any{"node": n})
			}
		}
	}
	res.TotalEnergyJ += res.LostEnergyJ
	if completed > 0 {
		res.MeanTurnaround = turnaround / time.Duration(completed)
	}
	return res, nil
}

// requeue inserts a failed-over job back into the arrival-ordered queue,
// after every job with an earlier-or-equal arrival (FCFS among ties keeps
// dispatch deterministic).
func requeue(queue *[]queuedJob, j queuedJob) {
	q := *queue
	i := sort.Search(len(q), func(k int) bool { return q[k].Arrival > j.Arrival })
	q = append(q, queuedJob{})
	copy(q[i+1:], q[i:])
	q[i] = j
	*queue = q
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
