// Package cloud implements the paper's §5 future-work deployment scenario:
// "we plan to apply PowerLens in cloud servers, where more complex and
// diverse tasks can yield greater benefits". A Cluster models a rack of
// identical accelerator nodes fed by a stream of inference jobs; a
// dispatcher assigns each job to the earliest-available node, and every node
// is simulated with the same executor/governor machinery as the
// single-board experiments. Cluster-level energy, makespan, and turnaround
// compare DVFS policies at fleet scale.
package cloud

import (
	"fmt"
	"sort"
	"time"

	"powerlens/internal/graph"
	"powerlens/internal/hw"
	"powerlens/internal/sim"
)

// Job is one inference request: a model, an image count, and an arrival
// time relative to the start of the trace.
type Job struct {
	Graph   *graph.Graph
	Images  int
	Arrival time.Duration
}

// ControllerFactory builds a fresh controller per node (controllers are
// stateful, so nodes cannot share one).
type ControllerFactory func() sim.Controller

// Config describes the cluster.
type Config struct {
	Nodes    int
	Platform *hw.Platform
	NewCtl   ControllerFactory
	// Batch applies the §5 batching extension on every node (0/1 = off).
	Batch int
}

// NodeResult is one node's simulated outcome.
type NodeResult struct {
	Node    int
	Jobs    int
	Result  sim.Result
	BusyEnd time.Duration // when the node finished its last job
}

// Result aggregates a cluster run.
type Result struct {
	Nodes []NodeResult

	TotalEnergyJ   float64
	TotalImages    int
	Makespan       time.Duration // latest node completion
	MeanTurnaround time.Duration // mean (completion - arrival) over jobs
}

// EE returns cluster-level images per joule.
func (r Result) EE() float64 {
	if r.TotalEnergyJ <= 0 {
		return 0
	}
	return float64(r.TotalImages) / r.TotalEnergyJ
}

// Run dispatches jobs (sorted by arrival) to the earliest-available node
// and simulates every node's task flow. Job service times are measured with
// a per-job dry run at the node's policy, so dispatch decisions see the
// same latency the simulation produces.
func Run(cfg Config, jobs []Job) (Result, error) {
	if cfg.Nodes < 1 {
		return Result{}, fmt.Errorf("cloud: need at least one node, got %d", cfg.Nodes)
	}
	if cfg.Platform == nil || cfg.NewCtl == nil {
		return Result{}, fmt.Errorf("cloud: platform and controller factory required")
	}
	sorted := make([]Job, len(jobs))
	copy(sorted, jobs)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Arrival < sorted[j].Arrival })

	// Per-model service-time cache (dry run on a fresh controller).
	serviceTime := map[string]time.Duration{}
	service := func(j Job) time.Duration {
		key := fmt.Sprintf("%s/%d", j.Graph.Name, j.Images)
		if t, ok := serviceTime[key]; ok {
			return t
		}
		e := sim.NewExecutor(cfg.Platform, cfg.NewCtl())
		e.Batch = cfg.Batch
		t := e.RunTask(j.Graph, j.Images).Time
		serviceTime[key] = t
		return t
	}

	type nodeState struct {
		free  time.Duration
		tasks []sim.Task
		gaps  []time.Duration
		jobs  int
	}
	nodes := make([]nodeState, cfg.Nodes)
	var turnaround time.Duration

	for _, j := range sorted {
		// Earliest-available node (FCFS dispatch).
		best := 0
		bestStart := maxDur(j.Arrival, nodes[0].free)
		for n := 1; n < cfg.Nodes; n++ {
			if s := maxDur(j.Arrival, nodes[n].free); s < bestStart {
				best, bestStart = n, s
			}
		}
		ns := &nodes[best]
		if len(ns.tasks) > 0 {
			ns.gaps = append(ns.gaps, bestStart-ns.free)
		}
		dur := service(j)
		ns.tasks = append(ns.tasks, sim.Task{Graph: j.Graph, Images: j.Images})
		ns.free = bestStart + dur
		ns.jobs++
		turnaround += ns.free - j.Arrival
	}

	res := Result{}
	for n := range nodes {
		if nodes[n].jobs == 0 {
			continue
		}
		e := sim.NewExecutor(cfg.Platform, cfg.NewCtl())
		e.Batch = cfg.Batch
		r := e.RunTaskFlowArrivals(nodes[n].tasks, nodes[n].gaps)
		nr := NodeResult{Node: n, Jobs: nodes[n].jobs, Result: r, BusyEnd: nodes[n].free}
		res.Nodes = append(res.Nodes, nr)
		res.TotalEnergyJ += r.EnergyJ
		res.TotalImages += r.Images
		if nodes[n].free > res.Makespan {
			res.Makespan = nodes[n].free
		}
	}
	if len(sorted) > 0 {
		res.MeanTurnaround = turnaround / time.Duration(len(sorted))
	}
	return res, nil
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
