package cloud

import (
	"bytes"
	"testing"
	"time"

	"powerlens/internal/hw"
	"powerlens/internal/obs/audit"
)

func auditBytes(t *testing.T, rec *audit.Recorder) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestShardedAuditByteIdentical pins the fleet audit contract: in
// aggregate-only mode (RingSize < 0 — per-track rings follow job placement,
// which the work-stealing dispatcher varies with the shard count), a
// fault-free plan-driven trace produces byte-identical audit exports for
// Shards = 1, 2, 4 and 8, because apply cells and guard aggregates are
// integral and keyed on (model, digest, block, layer, level) rather than on
// which node executed the job.
func TestShardedAuditByteIdentical(t *testing.T) {
	p := hw.TX2()
	jobs := RandomJobs(32, 200*time.Millisecond, 13)
	run := func(shards int) []byte {
		rec := audit.New(audit.Config{RingSize: -1})
		cfg := Config{
			Nodes: 8, Platform: p, NewCtl: planFactory(),
			Audit: rec, Shards: shards, AdmitBatch: 4, StealSeed: 3,
		}
		runCfg(t, cfg, jobs)
		return auditBytes(t, rec)
	}
	want := run(1)
	if len(want) == 0 {
		t.Fatal("baseline audit export empty")
	}
	// The plan-driven fleet must actually have recorded applications.
	{
		rec := audit.New(audit.Config{RingSize: -1})
		cfg := Config{Nodes: 8, Platform: p, NewCtl: planFactory(), Audit: rec}
		runCfg(t, cfg, jobs)
		snap := rec.Snapshot()
		if len(snap.Applies) == 0 {
			t.Fatal("plan-driven fleet recorded no apply cells")
		}
		if len(snap.Tracks) != 0 {
			t.Fatalf("aggregate-only mode kept %d ring tracks", len(snap.Tracks))
		}
	}
	for _, shards := range []int{2, 4, 8} {
		if got := run(shards); !bytes.Equal(got, want) {
			t.Fatalf("shards=%d: audit export differs from single-queue baseline", shards)
		}
	}
}

// TestShardedAuditDeterministicWithPlans reruns a plan-driven, crashy,
// sharded fleet twice per shard count with rings enabled: identical configs
// must produce byte-identical audit exports (per-node recorders merge in
// node order, re-stamping sequence numbers deterministically) despite nodes
// simulating concurrently.
func TestShardedAuditDeterministicWithPlans(t *testing.T) {
	p := hw.TX2()
	jobs := RandomJobs(24, 300*time.Millisecond, 17)
	for _, shards := range []int{1, 2, 4} {
		run := func() []byte {
			rec := audit.New(audit.Config{RingSize: 256})
			cfg := Config{
				Nodes: 6, Platform: p, NewCtl: planFactory(),
				Faults: crashyFaults(5), Audit: rec,
				Shards: shards, AdmitBatch: 4, StealSeed: 3,
			}
			runCfg(t, cfg, jobs)
			return auditBytes(t, rec)
		}
		a, b := run(), run()
		if len(a) == 0 {
			t.Fatalf("shards=%d: empty audit export", shards)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("shards=%d: audit exports differ across identical runs", shards)
		}
	}

	// With rings on, merged records land on per-node tracks and the plan's
	// instrumentation points appear as apply cells on both blocks.
	rec := audit.New(audit.Config{RingSize: 256})
	cfg := Config{Nodes: 6, Platform: p, NewCtl: planFactory(), Audit: rec, Shards: 2, AdmitBatch: 4, StealSeed: 3}
	runCfg(t, cfg, jobs)
	snap := rec.Snapshot()
	if len(snap.Tracks) == 0 {
		t.Fatal("no ring tracks after merge")
	}
	for _, tr := range snap.Tracks {
		if tr.Track < nodeTrackBase {
			t.Fatalf("merged track %d below nodeTrackBase %d", tr.Track, nodeTrackBase)
		}
	}
	blocks := map[int]bool{}
	for _, a := range snap.Applies {
		blocks[a.Block] = true
	}
	if !blocks[0] || !blocks[1] {
		t.Fatalf("plan blocks missing from apply cells: %v", blocks)
	}
}
