package cloud

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"powerlens/internal/hw"
	"powerlens/internal/obs"
)

// runCfg runs the cluster and fails the test on error.
func runCfg(t *testing.T, cfg Config, jobs []Job) Result {
	t.Helper()
	res, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestShardedOneShardMatchesLegacy pins the compatibility contract: Shards=1
// (and any shard count that clamps down to 1) must reproduce the single-queue
// dispatcher byte for byte, fault-free and degraded alike.
func TestShardedOneShardMatchesLegacy(t *testing.T) {
	p := hw.TX2()
	jobs := testJobs(20)
	cases := []struct {
		name   string
		faults hw.FaultConfig
	}{
		{"fault-free", hw.FaultConfig{}},
		{"crashy", crashyFaults(5)},
	}
	for _, tc := range cases {
		legacy := runCfg(t, Config{Nodes: 4, Platform: p, NewCtl: staticFactory(7), Faults: tc.faults}, jobs)
		one := runCfg(t, Config{Nodes: 4, Platform: p, NewCtl: staticFactory(7), Faults: tc.faults, Shards: 1}, jobs)
		if !reflect.DeepEqual(legacy, one) {
			t.Fatalf("%s: Shards=1 diverges from legacy dispatcher:\nlegacy  %+v\nsharded %+v", tc.name, legacy, one)
		}
		// Shards above Nodes clamps; on a single node that lands back on the
		// legacy path.
		soloLegacy := runCfg(t, Config{Nodes: 1, Platform: p, NewCtl: staticFactory(7), Faults: tc.faults}, jobs)
		soloClamped := runCfg(t, Config{Nodes: 1, Platform: p, NewCtl: staticFactory(7), Faults: tc.faults, Shards: 8}, jobs)
		if !reflect.DeepEqual(soloLegacy, soloClamped) {
			t.Fatalf("%s: clamped Shards=8/Nodes=1 diverges from legacy", tc.name)
		}
	}
}

// TestShardedDeterministicAcrossRuns pins reproducibility at every shard
// count: identical configs must yield identical results AND byte-identical
// observability exports (trace JSON, metrics JSON and Prometheus text),
// despite shards dispatching concurrently.
func TestShardedDeterministicAcrossRuns(t *testing.T) {
	p := hw.TX2()
	jobs := RandomJobs(32, 200*time.Millisecond, 13)
	for _, faults := range []hw.FaultConfig{{}, crashyFaults(5)} {
		for _, shards := range []int{2, 4, 8} {
			type capture struct {
				res     Result
				trace   []byte
				metrics []byte
				prom    []byte
			}
			run := func() capture {
				o := obs.New()
				cfg := Config{
					Nodes: 8, Platform: p, NewCtl: staticFactory(7),
					Faults: faults, Obs: o,
					Shards: shards, AdmitBatch: 4, StealSeed: 3,
				}
				res := runCfg(t, cfg, jobs)
				var trace, metrics, prom bytes.Buffer
				if err := o.Tracer.WriteTrace(&trace); err != nil {
					t.Fatal(err)
				}
				if err := o.Metrics.WriteJSON(&metrics); err != nil {
					t.Fatal(err)
				}
				if err := o.Metrics.WritePrometheus(&prom); err != nil {
					t.Fatal(err)
				}
				return capture{res, trace.Bytes(), metrics.Bytes(), prom.Bytes()}
			}
			a, b := run(), run()
			if !reflect.DeepEqual(a.res, b.res) {
				t.Fatalf("shards=%d crashes=%v: results differ across identical runs:\n1st %+v\n2nd %+v",
					shards, faults.NodeCrashProb > 0, a.res, b.res)
			}
			if !bytes.Equal(a.trace, b.trace) {
				t.Fatalf("shards=%d: trace exports differ across identical runs", shards)
			}
			if !bytes.Equal(a.metrics, b.metrics) {
				t.Fatalf("shards=%d: metrics JSON exports differ across identical runs", shards)
			}
			if !bytes.Equal(a.prom, b.prom) {
				t.Fatalf("shards=%d: Prometheus exports differ across identical runs", shards)
			}
		}
	}
}

// TestShardedConservesJobsAndImages checks the accounting invariants hold at
// every shard count: nothing is lost or double-dispatched, and the per-shard
// obs counters sum to the fleet totals.
func TestShardedConservesJobsAndImages(t *testing.T) {
	p := hw.TX2()
	jobs := RandomJobs(24, 300*time.Millisecond, 17)
	wantImages := 0
	for _, j := range jobs {
		wantImages += j.Images
	}
	for _, shards := range []int{1, 2, 4, 8} {
		o := obs.New()
		cfg := Config{
			Nodes: 8, Platform: p, NewCtl: staticFactory(7), Obs: o,
			Shards: shards, AdmitBatch: 4,
		}
		res := runCfg(t, cfg, jobs)
		if res.TotalImages != wantImages {
			t.Fatalf("shards=%d: images = %d, want %d", shards, res.TotalImages, wantImages)
		}
		totalJobs := 0
		for _, nr := range res.Nodes {
			totalJobs += nr.Jobs
		}
		if totalJobs+res.DroppedJobs != len(jobs) {
			t.Fatalf("shards=%d: completed %d + dropped %d != %d jobs",
				shards, totalJobs, res.DroppedJobs, len(jobs))
		}
		if res.EE() <= 0 || res.Makespan <= 0 {
			t.Fatalf("shards=%d: bad aggregates %+v", shards, res)
		}
		if shards > 1 {
			// Per-shard completion counters must cover every completed job.
			var shardJobs, completed float64
			for _, fam := range o.Metrics.Snapshot() {
				for _, s := range fam.Series {
					switch fam.Name {
					case "cloud_shard_jobs_total":
						shardJobs += s.Value
					case "cloud_jobs_total":
						if len(s.LabelValues) == 1 && s.LabelValues[0] == "completed" {
							completed += s.Value
						}
					}
				}
			}
			if shardJobs != float64(totalJobs) || completed != float64(totalJobs) {
				t.Fatalf("shards=%d: shard counters %v / completed %v, want %d",
					shards, shardJobs, completed, totalJobs)
			}
		}
	}
}

// TestShardedFaultyAccounting pins degraded-mode bookkeeping under sharding:
// crashes are detected, failovers and lost work are attributed, and the
// job-conservation invariant still holds.
func TestShardedFaultyAccounting(t *testing.T) {
	p := hw.TX2()
	jobs := RandomJobs(28, 200*time.Millisecond, 13)
	res := runCfg(t, Config{
		Nodes: 6, Platform: p, NewCtl: staticFactory(7),
		Faults: crashyFaults(5), Shards: 3, AdmitBatch: 4,
	}, jobs)
	if res.NodesLost == 0 {
		t.Fatalf("crash schedule lost no nodes: %+v", res)
	}
	if res.Failovers == 0 {
		t.Fatalf("no failovers despite %d lost nodes", res.NodesLost)
	}
	if res.LostEnergyJ <= 0 || res.LostImages <= 0 {
		t.Fatalf("lost work not attributed: %+v", res)
	}
	totalJobs := 0
	for _, nr := range res.Nodes {
		totalJobs += nr.Jobs
	}
	if totalJobs+res.DroppedJobs != len(jobs) {
		t.Fatalf("completed %d + dropped %d != %d jobs", totalJobs, res.DroppedJobs, len(jobs))
	}
	if res.EE() <= 0 {
		t.Fatalf("bad degraded EE: %+v", res)
	}
}

// TestShardedStealSeedIsDeterministicKnob pins that StealSeed is part of the
// reproducibility contract: the same seed reproduces the run exactly.
func TestShardedStealSeedIsDeterministicKnob(t *testing.T) {
	p := hw.TX2()
	jobs := RandomJobs(32, 150*time.Millisecond, 19)
	cfg := Config{
		Nodes: 8, Platform: p, NewCtl: staticFactory(7),
		Shards: 4, AdmitBatch: 4, StealSeed: 42,
	}
	a := runCfg(t, cfg, jobs)
	b := runCfg(t, cfg, jobs)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same StealSeed must reproduce the run exactly")
	}
}
