package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzDecodeShard guards the shard decoder the way internal/dataset's
// FuzzLoad guards the dataset parser: arbitrary bytes must produce a clean
// error or the original payload — never a panic, and never an allocation
// driven by an untrusted length field (the decoder only slices the input).
func FuzzDecodeShard(f *testing.F) {
	// Valid containers.
	f.Add(EncodeShard(nil))
	f.Add(EncodeShard([]byte("payload")))
	f.Add(EncodeShard(bytes.Repeat([]byte{0x5A}, 300)))
	// Truncations at interesting boundaries.
	full := EncodeShard([]byte(`{"shard":3,"nets":[{"i":1,"ok":true}]}`))
	f.Add(full[:4])
	f.Add(full[:8])
	f.Add(full[:len(full)-12])
	f.Add(full[:len(full)-1])
	// Bit flips in header, payload, CRC, and length fields.
	for _, i := range []int{0, 5, 10, len(full) - 10, len(full) - 4} {
		flipped := append([]byte(nil), full...)
		flipped[i] ^= 0x01
		f.Add(flipped)
	}
	// A footer claiming a huge payload must not drive any allocation.
	huge := append([]byte(nil), full...)
	for i := len(huge) - 8; i < len(huge); i++ {
		huge[i] = 0xFF
	}
	f.Add(huge)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := DecodeShard(data)
		if err != nil {
			return
		}
		// An accepted container must re-encode to exactly the input bytes:
		// the format has a single canonical encoding per payload.
		if !bytes.Equal(EncodeShard(payload), data) {
			t.Fatalf("accepted container is not canonical (%d bytes)", len(data))
		}
	})
}
