package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), []byte(`{"a":[1,2,3]}`), bytes.Repeat([]byte{0xAB}, 4096)} {
		enc := EncodeShard(payload)
		got, err := DecodeShard(enc)
		if err != nil {
			t.Fatalf("decode(%d bytes): %v", len(payload), err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip changed payload: %q -> %q", payload, got)
		}
	}
}

func TestDecodeDetectsTruncation(t *testing.T) {
	enc := EncodeShard([]byte("the payload that will be cut short"))
	for cut := 0; cut < len(enc); cut++ {
		_, err := DecodeShard(enc[:cut])
		if err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrSchema) {
			t.Fatalf("truncation to %d: unexpected error class %v", cut, err)
		}
	}
}

func TestDecodeDetectsBitFlips(t *testing.T) {
	enc := EncodeShard([]byte("bit flips anywhere must fail the checksum"))
	for i := range enc {
		for bit := 0; bit < 8; bit++ {
			flipped := append([]byte(nil), enc...)
			flipped[i] ^= 1 << bit
			if _, err := DecodeShard(flipped); err == nil {
				t.Fatalf("bit flip at byte %d bit %d accepted", i, bit)
			}
		}
	}
}

func TestDecodeRejectsFutureSchema(t *testing.T) {
	enc := EncodeShard([]byte("payload"))
	enc[4] = 0xFF // bump schema; CRC covers the header so recompute a valid container
	body := enc[:len(enc)-12]
	crc := CRC32C(body)
	enc[len(enc)-12] = byte(crc)
	enc[len(enc)-11] = byte(crc >> 8)
	enc[len(enc)-10] = byte(crc >> 16)
	enc[len(enc)-9] = byte(crc >> 24)
	if _, err := DecodeShard(enc); !errors.Is(err, ErrSchema) {
		t.Fatalf("future schema: got %v, want ErrSchema", err)
	}
}

func TestDirWriteReadQuarantine(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Write("shard-00001.ckpt", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := d.Read("shard-00001.ckpt")
	if err != nil || string(got) != "hello" {
		t.Fatalf("read = %q, %v", got, err)
	}

	// Bit-rot the shard on disk: Read must detect, quarantine, and error.
	path := filepath.Join(d.Root(), "shard-00001.ckpt")
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = d.Read("shard-00001.ckpt")
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit-rotted shard: got %v, want ErrCorrupt", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt shard still present in live dir")
	}
	if n := d.QuarantinedCount(); n != 1 {
		t.Fatalf("quarantined count = %d, want 1", n)
	}
	// A second read sees a missing shard, not the corrupt bytes.
	if _, err := d.Read("shard-00001.ckpt"); !os.IsNotExist(err) {
		t.Fatalf("after quarantine: got %v, want not-exist", err)
	}
}

func TestDirList(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"shard-00002.ckpt", "shard-00000.ckpt", "meta.ckpt"} {
		if err := d.Write(n, []byte(n)); err != nil {
			t.Fatal(err)
		}
	}
	// A leftover temp file (rename-elided crash) must not be listed.
	if err := os.WriteFile(filepath.Join(d.Root(), "shard-00003.ckpt.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := d.List("shard-*.ckpt")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"shard-00000.ckpt", "shard-00002.ckpt"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("List = %v, want %v", got, want)
	}
}

func TestOpenRejectsUnwritableDir(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("root ignores permission bits")
	}
	root := t.TempDir()
	if err := os.Chmod(root, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(root, 0o755)
	if _, err := Open(root); err == nil {
		t.Fatal("Open accepted an unwritable directory")
	}
}

func TestAtomicWriteKillPoints(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckpt")
	good := EncodeShard([]byte("generation one"))
	if _, _, err := AtomicWrite(path, good, nil); err != nil {
		t.Fatal(err)
	}

	next := EncodeShard([]byte("generation two, longer than the first payload"))

	t.Run("before-write leaves the old file intact", func(t *testing.T) {
		_, _, err := AtomicWrite(path, next, NewHooks(0, KillBeforeWrite))
		if !errors.Is(err, ErrKilled) {
			t.Fatalf("got %v, want ErrKilled", err)
		}
		data, _ := os.ReadFile(path)
		if p, err := DecodeShard(data); err != nil || string(p) != "generation one" {
			t.Fatalf("old file damaged: %q, %v", p, err)
		}
	})

	t.Run("elide-rename keeps old file, leaves temp", func(t *testing.T) {
		_, _, err := AtomicWrite(path, next, NewHooks(0, KillElideRename))
		if !errors.Is(err, ErrKilled) {
			t.Fatalf("got %v, want ErrKilled", err)
		}
		data, _ := os.ReadFile(path)
		if p, err := DecodeShard(data); err != nil || string(p) != "generation one" {
			t.Fatalf("old file damaged: %q, %v", p, err)
		}
		if _, err := os.Stat(path + ".tmp"); err != nil {
			t.Fatalf("expected leftover temp file: %v", err)
		}
		os.Remove(path + ".tmp")
	})

	t.Run("torn write is detected by the decoder", func(t *testing.T) {
		_, _, err := AtomicWrite(path, next, NewHooks(0, KillTornWrite))
		if !errors.Is(err, ErrKilled) {
			t.Fatalf("got %v, want ErrKilled", err)
		}
		data, _ := os.ReadFile(path)
		if _, err := DecodeShard(data); err == nil {
			t.Fatal("torn shard decoded cleanly — corruption consumed silently")
		}
	})

	t.Run("hooks budget counts successful writes", func(t *testing.T) {
		p2 := filepath.Join(dir, "counted.ckpt")
		h := NewHooks(2, KillBeforeWrite)
		for i := 0; i < 2; i++ {
			if _, _, err := AtomicWrite(p2, good, h); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
		}
		if h.Fired() {
			t.Fatal("kill fired early")
		}
		if _, _, err := AtomicWrite(p2, good, h); !errors.Is(err, ErrKilled) {
			t.Fatalf("third write: got %v, want ErrKilled", err)
		}
		if !h.Fired() {
			t.Fatal("Fired() false after kill")
		}
		// One-shot: after the kill the (dead) process's hooks are done.
		if _, _, err := AtomicWrite(p2, good, h); err != nil {
			t.Fatalf("post-kill write: %v", err)
		}
	})
}

func TestDigestJSONDeterministic(t *testing.T) {
	type cfg struct {
		A int
		B []float64
	}
	d1 := MustDigestJSON(cfg{A: 1, B: []float64{0.25, -0.5}})
	d2 := MustDigestJSON(cfg{A: 1, B: []float64{0.25, -0.5}})
	d3 := MustDigestJSON(cfg{A: 2, B: []float64{0.25, -0.5}})
	if d1 != d2 {
		t.Fatalf("same value digests differ: %s vs %s", d1, d2)
	}
	if d1 == d3 {
		t.Fatalf("different values share digest %s", d1)
	}
}
