// Package checkpoint is the crash-consistent artifact layer under the
// offline pipeline: every checkpoint shard is written atomically (temp file +
// rename), framed with a schema-versioned header and a CRC32C + length
// footer, and verified on read. A torn, truncated, or bit-rotted shard is
// *detected* and quarantined — never silently consumed — so a resumed run
// either restores exactly what an uninterrupted run would have computed or
// recomputes it from scratch.
//
// File layout (little-endian):
//
//	offset size  field
//	0      4     magic "PLCK"
//	4      2     schema version (currently 1)
//	6      2     flags (reserved, 0)
//	8      n     payload
//	8+n    4     CRC32C (Castagnoli) over bytes [0, 8+n)
//	12+n   8     n, the payload length
//
// The trailing length makes truncation detectable without trusting the
// header, and the checksum covers the header so a flipped schema or magic
// byte is also caught. Decoding never allocates based on untrusted lengths,
// so a hostile footer cannot OOM the reader (see FuzzDecodeShard).
//
// The same package provides the kill-point injector (Hooks) used by the
// crash-consistency harnesses in internal/dataset, internal/nn and
// internal/obs/runlog: a hook can abort before any bytes land, tear the
// write (truncated content reaches the final path), or elide the rename
// (complete temp file, no publish) — the three distinct failure shapes of a
// real crash.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// SchemaVersion is the current shard-container schema. Readers reject
// containers from a future schema instead of misinterpreting them.
const SchemaVersion = 1

const (
	magic      = "PLCK"
	headerSize = 8
	footerSize = 12
	// QuarantineDir is the subdirectory of a checkpoint Dir that receives
	// corrupt shards.
	QuarantineDir = "quarantine"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Sentinel errors for the distinct shard-verification failures; all are
// returned wrapped with context, match with errors.Is.
var (
	// ErrTruncated marks a shard whose byte count disagrees with its
	// recorded payload length (torn or cut-short write).
	ErrTruncated = errors.New("checkpoint: truncated shard")
	// ErrCorrupt marks a shard whose checksum or framing is wrong
	// (bit rot, foreign file, torn write that kept the length).
	ErrCorrupt = errors.New("checkpoint: corrupt shard")
	// ErrSchema marks a shard written by a future schema version.
	ErrSchema = errors.New("checkpoint: unsupported shard schema")
)

// EncodeShard frames a payload in the checksummed container format.
func EncodeShard(payload []byte) []byte {
	out := make([]byte, headerSize+len(payload)+footerSize)
	copy(out, magic)
	binary.LittleEndian.PutUint16(out[4:], SchemaVersion)
	binary.LittleEndian.PutUint16(out[6:], 0)
	copy(out[headerSize:], payload)
	body := out[:headerSize+len(payload)]
	binary.LittleEndian.PutUint32(out[headerSize+len(payload):], crc32.Checksum(body, castagnoli))
	binary.LittleEndian.PutUint64(out[headerSize+len(payload)+4:], uint64(len(payload)))
	return out
}

// DecodeShard verifies a container and returns its payload (aliasing data).
// It returns ErrTruncated, ErrCorrupt, or ErrSchema (wrapped) on any
// integrity failure and never panics or allocates from untrusted lengths.
func DecodeShard(data []byte) ([]byte, error) {
	if len(data) < headerSize+footerSize {
		return nil, fmt.Errorf("%w: %d bytes, need at least %d",
			ErrTruncated, len(data), headerSize+footerSize)
	}
	if string(data[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:4])
	}
	schema := binary.LittleEndian.Uint16(data[4:])
	if schema == 0 || schema > SchemaVersion {
		return nil, fmt.Errorf("%w: shard schema %d, this build reads <= %d",
			ErrSchema, schema, SchemaVersion)
	}
	if flags := binary.LittleEndian.Uint16(data[6:]); flags != 0 {
		return nil, fmt.Errorf("%w: reserved flags %#04x set", ErrCorrupt, flags)
	}
	payloadLen := binary.LittleEndian.Uint64(data[len(data)-8:])
	avail := uint64(len(data) - headerSize - footerSize)
	if payloadLen != avail {
		if payloadLen > avail {
			return nil, fmt.Errorf("%w: footer claims %d payload bytes, only %d present",
				ErrTruncated, payloadLen, avail)
		}
		return nil, fmt.Errorf("%w: footer claims %d payload bytes, %d present",
			ErrCorrupt, payloadLen, avail)
	}
	body := data[:len(data)-footerSize]
	wantCRC := binary.LittleEndian.Uint32(data[len(data)-footerSize:])
	if got := crc32.Checksum(body, castagnoli); got != wantCRC {
		return nil, fmt.Errorf("%w: CRC32C %08x, footer records %08x", ErrCorrupt, got, wantCRC)
	}
	return data[headerSize : len(data)-footerSize], nil
}

// Dir is a checkpoint directory: named, checksummed shards written
// atomically, with corrupt shards moved to a quarantine subdirectory on
// read. The zero value is not usable; construct with Open.
type Dir struct {
	root  string
	hooks *Hooks
}

// Open creates (if needed) and write-probes a checkpoint directory, so an
// unwritable location fails here with a clear error instead of deep inside a
// multi-hour run.
func Open(root string) (*Dir, error) {
	if root == "" {
		return nil, errors.New("checkpoint: empty directory path")
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: open %s: %w", root, err)
	}
	probe := filepath.Join(root, fmt.Sprintf(".probe-%d", os.Getpid()))
	if err := os.WriteFile(probe, []byte("probe"), 0o644); err != nil {
		return nil, fmt.Errorf("checkpoint: directory %s is not writable: %w", root, err)
	}
	os.Remove(probe)
	return &Dir{root: root}, nil
}

// Root returns the directory path.
func (d *Dir) Root() string { return d.root }

// SetHooks installs (or clears, with nil) the kill-point injector consulted
// by every subsequent Write. Production code never calls this.
func (d *Dir) SetHooks(h *Hooks) { d.hooks = h }

func (d *Dir) checkName(name string) error {
	if name == "" || name != filepath.Base(name) || strings.HasPrefix(name, ".") {
		return fmt.Errorf("checkpoint: invalid shard name %q", name)
	}
	return nil
}

// Write frames payload and writes it atomically as name inside the
// directory. An existing shard is replaced atomically.
func (d *Dir) Write(name string, payload []byte) error {
	if err := d.checkName(name); err != nil {
		return err
	}
	_, _, err := AtomicWrite(filepath.Join(d.root, name), EncodeShard(payload), d.hooks)
	return err
}

// Read loads and verifies shard name. A shard that fails verification is
// moved into the quarantine subdirectory and the verification error is
// returned (matching ErrCorrupt / ErrTruncated / ErrSchema); a missing shard
// returns an error matching os.ErrNotExist.
func (d *Dir) Read(name string) ([]byte, error) {
	if err := d.checkName(name); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(d.root, name))
	if err != nil {
		return nil, err
	}
	payload, err := DecodeShard(data)
	if err != nil {
		if qpath, qerr := d.Quarantine(name, reasonOf(err)); qerr == nil {
			return nil, fmt.Errorf("shard %s quarantined to %s: %w", name, qpath, err)
		}
		return nil, fmt.Errorf("shard %s: %w", name, err)
	}
	return payload, nil
}

func reasonOf(err error) string {
	switch {
	case errors.Is(err, ErrTruncated):
		return "truncated"
	case errors.Is(err, ErrSchema):
		return "schema"
	default:
		return "corrupt"
	}
}

// Quarantine moves shard name out of the live directory into
// quarantine/<name>.<reason>[.N], returning the destination path. Callers
// use it directly when a shard passes the container checks but fails
// semantic validation (bad JSON, wrong range).
func (d *Dir) Quarantine(name, reason string) (string, error) {
	if err := d.checkName(name); err != nil {
		return "", err
	}
	qdir := filepath.Join(d.root, QuarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return "", fmt.Errorf("checkpoint: quarantine dir: %w", err)
	}
	base := filepath.Join(qdir, name+"."+reason)
	dst := base
	for n := 1; ; n++ {
		if _, err := os.Stat(dst); os.IsNotExist(err) {
			break
		}
		dst = fmt.Sprintf("%s.%d", base, n)
	}
	if err := os.Rename(filepath.Join(d.root, name), dst); err != nil {
		return "", fmt.Errorf("checkpoint: quarantine %s: %w", name, err)
	}
	return dst, nil
}

// QuarantinedCount returns how many files sit in the quarantine
// subdirectory (0 when it does not exist).
func (d *Dir) QuarantinedCount() int {
	entries, err := os.ReadDir(filepath.Join(d.root, QuarantineDir))
	if err != nil {
		return 0
	}
	return len(entries)
}

// List returns the shard names matching a glob pattern (e.g. "shard-*.ckpt"),
// sorted; temp files and the quarantine directory never match a sensible
// shard pattern and are additionally filtered out.
func (d *Dir) List(pattern string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(d.root, pattern))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: list %q: %w", pattern, err)
	}
	var out []string
	for _, m := range matches {
		base := filepath.Base(m)
		if strings.HasSuffix(base, tmpSuffix) || base == QuarantineDir {
			continue
		}
		if fi, err := os.Stat(m); err != nil || fi.IsDir() {
			continue
		}
		out = append(out, base)
	}
	sort.Strings(out)
	return out, nil
}

// Remove deletes shard name (missing is not an error).
func (d *Dir) Remove(name string) error {
	if err := d.checkName(name); err != nil {
		return err
	}
	err := os.Remove(filepath.Join(d.root, name))
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}
