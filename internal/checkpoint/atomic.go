package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

const tmpSuffix = ".tmp"

// ErrKilled is returned when an injected kill point fires during a write.
// Production writes (nil Hooks) never return it; the crash-consistency
// harnesses treat it as the moment the process died.
var ErrKilled = errors.New("checkpoint: killed at injected kill point")

// KillMode selects which crash shape an injected kill point produces.
type KillMode int

const (
	// KillBeforeWrite dies before any bytes reach disk: no temp file, no
	// final file change. The benign crash.
	KillBeforeWrite KillMode = iota
	// KillTornWrite publishes a truncated file to the final path: the
	// payload was cut mid-write but still became visible (non-atomic
	// filesystem, reordered metadata on power loss). The dangerous crash —
	// readers must detect it via the CRC/length footer.
	KillTornWrite
	// KillElideRename leaves a complete temp file but never publishes it:
	// the crash landed between flush and rename. The final path keeps its
	// previous content (or stays absent).
	KillElideRename
)

func (m KillMode) String() string {
	switch m {
	case KillBeforeWrite:
		return "before-write"
	case KillTornWrite:
		return "torn-write"
	case KillElideRename:
		return "elide-rename"
	default:
		return fmt.Sprintf("KillMode(%d)", int(m))
	}
}

// Hooks is the test-only kill-point injector: it lets the first writes
// succeed, then fails exactly one write in the configured mode. After the
// kill fires, later writes succeed again — in a real crash the process is
// dead by then, and the harnesses abort the run on ErrKilled.
type Hooks struct {
	mu        sync.Mutex
	remaining int
	mode      KillMode
	fired     bool
}

// NewHooks returns an injector that lets successfulWrites atomic writes
// complete, then kills the next one in the given mode.
func NewHooks(successfulWrites int, mode KillMode) *Hooks {
	return &Hooks{remaining: successfulWrites, mode: mode}
}

// Fired reports whether the kill point has fired.
func (h *Hooks) Fired() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.fired
}

// arm consumes one write slot, returning (mode, true) when this write is the
// one to kill.
func (h *Hooks) arm() (KillMode, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.fired {
		return 0, false
	}
	if h.remaining > 0 {
		h.remaining--
		return 0, false
	}
	h.fired = true
	return h.mode, true
}

// AtomicWrite writes data to path crash-consistently: temp file in the same
// directory, fsync, rename, directory sync. It returns the CRC32C and byte
// count of what was written (for artifact digests). When hooks is non-nil
// and its kill point fires, the write fails with ErrKilled after producing
// the configured crash shape on disk.
func AtomicWrite(path string, data []byte, hooks *Hooks) (crc uint32, size int64, err error) {
	mode := KillMode(-1)
	if hooks != nil {
		if m, kill := hooks.arm(); kill {
			mode = m
		}
	}
	if mode == KillBeforeWrite {
		return 0, 0, fmt.Errorf("write %s: %w", path, ErrKilled)
	}
	if mode == KillTornWrite {
		// Publish a truncated copy straight to the final path.
		torn := data[:len(data)/2]
		if werr := os.WriteFile(path, torn, 0o644); werr != nil {
			return 0, 0, werr
		}
		return 0, 0, fmt.Errorf("torn write %s: %w", path, ErrKilled)
	}

	tmp := path + tmpSuffix
	f, err := os.Create(tmp)
	if err != nil {
		return 0, 0, fmt.Errorf("checkpoint: create %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, 0, fmt.Errorf("checkpoint: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, 0, fmt.Errorf("checkpoint: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, 0, fmt.Errorf("checkpoint: close %s: %w", tmp, err)
	}
	if mode == KillElideRename {
		return 0, 0, fmt.Errorf("rename elided for %s: %w", path, ErrKilled)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, 0, fmt.Errorf("checkpoint: publish %s: %w", path, err)
	}
	syncDir(filepath.Dir(path))
	return crc32.Checksum(data, castagnoli), int64(len(data)), nil
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss;
// best-effort (some filesystems reject directory fsync).
func syncDir(dir string) {
	if df, err := os.Open(dir); err == nil {
		df.Sync()
		df.Close()
	}
}

// CRC32C returns the Castagnoli CRC of data — the digest recorded for run
// artifacts and verified by `powerlens runs verify`.
func CRC32C(data []byte) uint32 { return crc32.Checksum(data, castagnoli) }

// DigestJSON fingerprints a JSON-encodable configuration value as the
// CRC32C of its canonical encoding, rendered as fixed-width hex. Checkpoint
// metadata records it so a resume against a different configuration is
// rejected instead of silently mixing runs.
func DigestJSON(v any) (string, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("checkpoint: digest: %w", err)
	}
	return fmt.Sprintf("%08x-%016x", crc32.Checksum(data, castagnoli), fnv64a(data)), nil
}

// MustDigestJSON is DigestJSON for values known to encode (option structs).
func MustDigestJSON(v any) string {
	d, err := DigestJSON(v)
	if err != nil {
		panic(err)
	}
	return d
}

// fnv64a is inlined (rather than importing hash/fnv) to keep the digest a
// pure function of the bytes with no hasher state allocation.
func fnv64a(data []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}
