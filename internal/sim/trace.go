package sim

import (
	"fmt"
	"io"
	"time"

	"powerlens/internal/hw"
)

// Trace utilities for the Fig. 1-style analyses: CSV export of tegrastats
// samples and summary statistics quantifying frequency ping-pong and
// residency.

// WriteTraceCSV writes samples as "time_ms,power_w,freq_mhz" rows with a
// header. It is the export path behind `cmd/experiments fig1`.
func WriteTraceCSV(w io.Writer, samples []hw.PowerSample) error {
	if _, err := fmt.Fprintln(w, "time_ms,power_w,freq_mhz"); err != nil {
		return err
	}
	for _, s := range samples {
		if _, err := fmt.Fprintf(w, "%.3f,%.4f,%.2f\n",
			float64(s.At.Nanoseconds())/1e6, s.PowerW, s.FreqHz/1e6); err != nil {
			return err
		}
	}
	return nil
}

// TraceStats summarizes a frequency trace.
type TraceStats struct {
	Samples    int
	Changes    int           // samples where the frequency differs from the previous one
	Reversals  int           // direction reversals (the ping-pong count)
	MeanFreqHz float64       // time-weighted by the uniform sample spacing
	TimeAtMax  time.Duration // residency at the maximum observed frequency
	Span       time.Duration
}

// AnalyzeTrace computes TraceStats over uniformly-sampled samples.
func AnalyzeTrace(samples []hw.PowerSample, period time.Duration) TraceStats {
	st := TraceStats{Samples: len(samples)}
	if len(samples) == 0 {
		return st
	}
	maxF := 0.0
	for _, s := range samples {
		if s.FreqHz > maxF {
			maxF = s.FreqHz
		}
		st.MeanFreqHz += s.FreqHz
	}
	st.MeanFreqHz /= float64(len(samples))
	dir := 0
	for i, s := range samples {
		if s.FreqHz == maxF {
			st.TimeAtMax += period
		}
		if i == 0 {
			continue
		}
		d := 0
		if s.FreqHz > samples[i-1].FreqHz {
			d = 1
		} else if s.FreqHz < samples[i-1].FreqHz {
			d = -1
		}
		if d != 0 {
			st.Changes++
			if dir != 0 && d != dir {
				st.Reversals++
			}
			dir = d
		}
	}
	st.Span = samples[len(samples)-1].At
	return st
}
