package sim

import (
	"fmt"
	"io"
	"math"
	"time"

	"powerlens/internal/hw"
)

// Trace utilities for the Fig. 1-style analyses: CSV export of tegrastats
// samples and summary statistics quantifying frequency ping-pong and
// residency.

// WriteTraceCSV writes samples as "time_ms,power_w,freq_mhz" rows with a
// header. It is the export path behind `cmd/experiments fig1`. Non-finite
// readings (a corrupted sensor window) are written as 0 so the CSV always
// loads in spreadsheet/plotting tools.
func WriteTraceCSV(w io.Writer, samples []hw.PowerSample) error {
	if _, err := fmt.Fprintln(w, "time_ms,power_w,freq_mhz"); err != nil {
		return err
	}
	for _, s := range samples {
		if _, err := fmt.Fprintf(w, "%.3f,%.4f,%.2f\n",
			float64(s.At.Nanoseconds())/1e6, finiteOrZero(s.PowerW),
			finiteOrZero(s.FreqHz)/1e6); err != nil {
			return err
		}
	}
	return nil
}

// finiteOrZero maps NaN/±Inf to 0 for export paths.
func finiteOrZero(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// TraceStats summarizes a frequency trace.
type TraceStats struct {
	Samples    int
	Changes    int           // samples where the frequency differs from the previous one
	Reversals  int           // direction reversals (the ping-pong count)
	MeanFreqHz float64       // time-weighted by the uniform sample spacing
	TimeAtMax  time.Duration // residency at the maximum observed frequency
	Span       time.Duration
}

// AnalyzeTrace computes TraceStats over uniformly-sampled samples. Empty
// traces yield zero-valued stats, and non-finite frequency readings are
// excluded from every aggregate (mean, max residency, change detection) so a
// corrupted window cannot poison the summary with NaN.
func AnalyzeTrace(samples []hw.PowerSample, period time.Duration) TraceStats {
	st := TraceStats{Samples: len(samples)}
	if len(samples) == 0 {
		return st
	}
	maxF, finite := 0.0, 0
	for _, s := range samples {
		if math.IsNaN(s.FreqHz) || math.IsInf(s.FreqHz, 0) {
			continue
		}
		finite++
		if s.FreqHz > maxF {
			maxF = s.FreqHz
		}
		st.MeanFreqHz += s.FreqHz
	}
	if finite > 0 {
		st.MeanFreqHz /= float64(finite)
	} else {
		st.MeanFreqHz = 0
	}
	dir := 0
	last := math.NaN()
	for _, s := range samples {
		if math.IsNaN(s.FreqHz) || math.IsInf(s.FreqHz, 0) {
			continue
		}
		if s.FreqHz == maxF {
			st.TimeAtMax += period
		}
		if !math.IsNaN(last) {
			d := 0
			if s.FreqHz > last {
				d = 1
			} else if s.FreqHz < last {
				d = -1
			}
			if d != 0 {
				st.Changes++
				if dir != 0 && d != dir {
					st.Reversals++
				}
				dir = d
			}
		}
		last = s.FreqHz
	}
	st.Span = samples[len(samples)-1].At
	return st
}
