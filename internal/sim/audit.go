package sim

import (
	"time"

	"powerlens/internal/obs/audit"
)

// AuditSink is implemented by controllers that emit decision-provenance
// records (see internal/obs/audit): the PowerLens plan governors record every
// plan application, the Guard records strikes, failovers and recoveries. The
// executor wires its recorder into the controller at every reset — including
// a nil recorder, so a controller instance reused across runs never keeps
// emitting into a stale recorder from a previous configuration.
type AuditSink interface {
	SetAudit(rec *audit.Recorder, track int)
}

// auditReset installs the run's audit state: the simulated-time clock on the
// recorder (audit records are timestamped on the same clock as spans and SLO
// events) and the recorder itself on the controller when it can emit. Like
// Obs and Ledger, the recorder never feeds back into the simulation — with
// Audit nil the controller's emission sites are single nil checks and the
// hot step loop is untouched.
func (e *Executor) auditReset() {
	if e.Audit != nil {
		e.Audit.SetClock(func() time.Duration { return e.sensor.Now() })
	}
	if s, ok := e.Ctl.(AuditSink); ok {
		s.SetAudit(e.Audit, e.AuditTrack)
	}
}
