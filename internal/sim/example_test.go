package sim_test

import (
	"fmt"

	"powerlens/internal/governor"
	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/sim"
)

// Run a model at a fixed frequency level and read the paper's EE metric.
func ExampleExecutor_RunTask() {
	p := hw.TX2()
	g := models.MustBuild("resnet34")
	e := sim.NewExecutor(p, governor.NewStatic(6))
	r := e.RunTask(g, 10)

	fmt.Println("images:", r.Images)
	fmt.Println("EE positive:", r.EE() > 0)
	fmt.Println("energy = power x time:", r.EnergyJ > 0 && r.AvgPowerW() > 0)
	// Output:
	// images: 10
	// EE positive: true
	// energy = power x time: true
}

// Sweep a whole network over the ladder to find its oracle level.
func ExampleOptimalSegmentLevel() {
	p := hw.TX2()
	g := models.MustBuild("resnet152")
	lvl, energies := sim.OptimalSegmentLevel(p, g, 0, len(g.Layers)-1)

	fmt.Println("interior optimum:", lvl > 0 && lvl < p.NumGPULevels()-1)
	fmt.Println("fmax wasteful:", energies[p.NumGPULevels()-1] > energies[lvl])
	// Output:
	// interior optimum: true
	// fmax wasteful: true
}

// Co-optimize batch size and frequency (the §5 batching extension).
func ExampleOptimalBatch() {
	p := hw.TX2()
	g := models.MustBuild("vgg19")
	best, _ := sim.OptimalBatch(p, g, 8, 0)

	fmt.Println("batch:", best.Batch)
	fmt.Println("beats batch-1:", best.EE > 0)
	// Output:
	// batch: 8
	// beats batch-1: true
}
