// Package sim executes DNN operator graphs on a simulated hw.Platform under
// a pluggable DVFS controller, integrating time and energy exactly. It is
// the substrate all experiments run on: the reactive baselines observe
// windowed utilization samples (the "historical information" the paper
// criticizes), while PowerLens applies preset per-block frequencies at its
// instrumentation points.
package sim

import (
	"fmt"
	"time"

	"powerlens/internal/graph"
	"powerlens/internal/hw"
	"powerlens/internal/obs"
	"powerlens/internal/obs/audit"
	"powerlens/internal/obs/ledger"
	"powerlens/internal/obs/slo"
)

// WindowStats summarizes one governor sampling window — the hardware state /
// historical information a reactive DVFS method sees.
type WindowStats struct {
	Period       time.Duration
	GPUBusy      float64 // fraction of the window the GPU executed kernels
	CPUBusy      float64 // fraction of the window the host CPU was busy
	AvgComputeUt float64 // mean ALU-bound fraction while the GPU was busy
	AvgPowerW    float64 // mean rail power over the window
	GPULevel     int
	CPULevel     int
}

// Controller is a DVFS policy. The executor consults GPULevel/CPULevel after
// every hook and pays a switch cost whenever the GPU level changes.
//
// Reactive governors act in OnWindow; PowerLens acts in BeforeLayer (its
// preset instrumentation points); Reset is called at the start of each run.
type Controller interface {
	Name() string
	Reset(p *hw.Platform)
	GPULevel() int
	CPULevel() int
	BeforeLayer(g *graph.Graph, layerID int)
	OnWindow(s WindowStats)
}

// Result aggregates a simulated run.
type Result struct {
	Controller string
	Platform   string
	Images     int
	Time       time.Duration
	EnergyJ    float64
	Switches   int
	Samples    []hw.PowerSample

	// Thermal results (zero unless Executor.Thermal was set).
	PeakTempC     float64
	ThrottledTime time.Duration

	// Faults counts injected faults and recovery actions (all zero unless
	// Executor.Faults was set).
	Faults hw.FaultStats

	// Passes counts completed inference passes (batched: one pass covers
	// Batch images); QoSViolations counts passes whose GPU busy time exceeded
	// the max-frequency reference by more than the QoS budget. Both are
	// tracked on every run — they never feed back into the simulation.
	Passes        int
	QoSViolations int

	// LevelEnergyJ / LevelTime decompose the run's energy and wall time by
	// the GPU DVFS level active while they accrued, indexed by ladder level.
	// Populated only when attribution is on (Executor.TrackLevels, Ledger or
	// SLO set); nil otherwise.
	LevelEnergyJ []float64
	LevelTime    []time.Duration
}

// AvgPowerW returns the run's mean power P̄.
func (r Result) AvgPowerW() float64 {
	if r.Time <= 0 {
		return 0
	}
	return r.EnergyJ / r.Time.Seconds()
}

// EE returns the paper's energy-efficiency metric (eq. 1): images per joule.
func (r Result) EE() float64 {
	if r.EnergyJ <= 0 {
		return 0
	}
	return float64(r.Images) / r.EnergyJ
}

// FPS returns inference throughput in images per second.
func (r Result) FPS() float64 {
	if r.Time <= 0 {
		return 0
	}
	return float64(r.Images) / r.Time.Seconds()
}

// QoSViolationRate returns the fraction of passes that violated the QoS
// budget.
func (r Result) QoSViolationRate() float64 {
	if r.Passes <= 0 {
		return 0
	}
	return float64(r.QoSViolations) / float64(r.Passes)
}

// Headline returns the run's headline metrics as a flat name→value map, the
// snapshot a run manifest (obs/runlog) records so a stored result can be
// compared across runs without replaying the simulation.
func (r Result) Headline() map[string]float64 {
	h := map[string]float64{
		"images":             float64(r.Images),
		"time_s":             r.Time.Seconds(),
		"energy_j":           r.EnergyJ,
		"ee_img_per_j":       r.EE(),
		"avg_power_w":        r.AvgPowerW(),
		"dvfs_switches":      float64(r.Switches),
		"faults_total":       float64(r.Faults.Total()),
		"throttled_ms":       float64(r.ThrottledTime.Milliseconds()),
		"passes":             float64(r.Passes),
		"qos_violations":     float64(r.QoSViolations),
		"qos_violation_rate": r.QoSViolationRate(),
	}
	// Per-level energy shares, only for levels that actually burned energy,
	// so plain runs don't bloat manifests with zeros.
	if r.EnergyJ > 0 {
		for lvl, ej := range r.LevelEnergyJ {
			if ej > 0 {
				h[fmt.Sprintf("energy_share_l%02d", lvl)] = ej / r.EnergyJ
			}
		}
	}
	return h
}

// Task is one inference job: a model processing a number of images.
type Task struct {
	Graph  *graph.Graph
	Images int
}

// Executor drives tasks through a platform under a controller.
type Executor struct {
	Platform *hw.Platform
	Ctl      Controller

	// WindowPeriod is the reactive-governor sampling period (default 50 ms,
	// a typical devfreq polling interval).
	WindowPeriod time.Duration
	// SensorPeriod is the tegrastats-style trace sampling period (default
	// 10 ms). A non-positive period turns the trace off — Result.Samples is
	// empty, energy integration stays exact, and the serving fast path
	// applies: the executor reuses its sensor and per-run scratch so
	// steady-state stepping performs no heap allocation.
	SensorPeriod time.Duration
	// Batch is the inference batch size (default 1). Batching multiplies
	// arithmetic and activation traffic per pass while weight traffic
	// amortizes — the §5 batching extension.
	Batch int
	// Thermal, when non-nil, enables the opt-in thermal model: junction
	// temperature is integrated alongside energy and a throttle latch caps
	// the applied GPU level while hot (MAXN-style throttling).
	Thermal *hw.ThermalModel
	// Faults, when non-nil, injects sensor and DVFS actuation faults drawn
	// from its seeded stream. The executor then runs its resilience
	// machinery: bounded-backoff retry of stuck transitions and a watchdog
	// that re-asserts a frequency the hardware never reached. Nil (the
	// default) keeps the exact fault-free code path.
	Faults *hw.Injector
	// MaxActuationRetries bounds the immediate retries of a stuck
	// transition before the executor gives up and leaves re-assertion to
	// the watchdog (default 2).
	MaxActuationRetries int
	// RetryBackoff is the initial idle backoff between actuation retries;
	// it doubles per retry, capped at 8× (default 1 ms).
	RetryBackoff time.Duration
	// Obs, when non-nil, streams metrics and decision/actuation/block spans
	// into the observability layer (see observe.go). Nil — the default —
	// keeps the exact uninstrumented code path; observation never feeds back
	// into the simulation, so results are identical either way.
	Obs *obs.Observer
	// Ledger, when non-nil, receives energy/latency attribution events from
	// the step loop: one segment per executed layer keyed on (model digest,
	// power block, DVFS level) and one pass record per inference pass. Like
	// Obs, it never feeds back into the simulation (see attrib.go).
	Ledger *ledger.Ledger
	// SLO, when non-nil, receives per-pass SLO events (latency degradation
	// vs the max-frequency reference, energy, violations) on the simulated
	// clock.
	SLO *slo.Tracker
	// Audit, when non-nil, is wired into the controller at reset (when the
	// controller implements AuditSink) so plan applications and guard
	// interventions land in the decision-audit trail on the simulated clock.
	// Records flow under track AuditTrack. Nil keeps the exact unaudited
	// code path (see audit.go).
	Audit *audit.Recorder
	// AuditTrack keys this executor's records in the shared recorder; cloud
	// runs give each node its own track.
	AuditTrack int
	// QoSBudget is the allowed per-pass GPU-time degradation before a pass
	// counts as a QoS violation (default DefaultQoSBudget).
	QoSBudget float64
	// TrackLevels opts into the per-level energy/time decomposition
	// (Result.LevelEnergyJ / LevelTime) without attaching a ledger or SLO
	// sink.
	TrackLevels bool
	// Summaries, when non-nil, enables macro-stepping (macro.go): passes of
	// a MacroSteppable controller are fast-forwarded from cached
	// FlowSummaries, bit-identical to micro-stepping them. The cache may be
	// shared across executors (cluster nodes); fills are single-flight.
	// Incompatible sinks (faults, obs, audit, thermal, the sample trace)
	// demote the run to micro-stepping automatically.
	Summaries *SummaryCache

	thermal *hw.ThermalState

	sensor *hw.PowerSensor

	// Per-pass op cost scratch: layer FLOPs/bytes at the current batch size
	// are batch-invariant across passes, so they are computed once per
	// (graph, batch) instead of per image. The rebuild also derives the
	// attribution constants for the graph: its canonical digest and the
	// max-frequency GPU reference time one pass takes (the QoS baseline).
	costGraph  *graph.Graph
	costBatch  int
	costs      []opWork
	costRef    time.Duration
	costDigest uint64

	// Attribution state (see attrib.go). passes/qosViolations are tracked on
	// every run; the level slices only when attrib is set.
	attrib        bool
	blocks        BlockResolver
	levelEnergy   []float64
	levelTime     []time.Duration
	passes        int
	qosViolations int

	// Window accumulation state.
	winElapsed time.Duration
	winGPUBusy time.Duration
	winCPUBusy time.Duration
	winCompute float64 // compute-utilization × busy-seconds
	winEnergy  float64

	gpuLevel int
	switches int
	images   int

	// Resilience state (only used when Faults != nil).
	wantLevel  int           // last level the controller asked for (post clamps)
	switching  bool          // re-entrancy guard for the faulted switch path
	faultStats hw.FaultStats // counters surfaced in Result.Faults
	lastStats  WindowStats   // last delivered window (stale data on dropout)
	haveStats  bool

	// Observability state (only used when Obs != nil).
	mx       execMetrics
	ctlName  string
	segStart time.Duration // start of the current frequency-residency block
	segLevel int           // level of the current residency block

	// Macro-stepping state (see macro.go).
	macroCtl    MacroSteppable // e.Ctl when it implements MacroSteppable
	windowInert bool           // window segmentation skipped this run
	macroOK     bool           // fast-forward eligible this run
	rec         *macroRecorder // non-nil while recording a representative pass
}

// NewExecutor returns an executor with default periods.
func NewExecutor(p *hw.Platform, ctl Controller) *Executor {
	return &Executor{
		Platform:     p,
		Ctl:          ctl,
		WindowPeriod: 50 * time.Millisecond,
		SensorPeriod: 10 * time.Millisecond,
	}
}

// reset prepares run state. With tracing on, each run gets a fresh sensor so
// previously returned Result.Samples slices stay valid; with tracing off no
// samples escape, so the sensor is reset in place (zero-alloc path).
func (e *Executor) reset() {
	if e.sensor != nil && e.SensorPeriod <= 0 {
		e.sensor.Reset(e.SensorPeriod)
	} else {
		e.sensor = hw.NewPowerSensor(e.SensorPeriod)
	}
	e.Ctl.Reset(e.Platform)
	// Wire the audit sink before the first GPULevel consultation below: a
	// guard may already strike on it, and that intervention must be recorded.
	e.auditReset()
	e.gpuLevel = e.Platform.ClampGPULevel(e.Ctl.GPULevel())
	e.switches = 0
	e.images = 0
	e.winElapsed, e.winGPUBusy, e.winCPUBusy = 0, 0, 0
	e.winCompute, e.winEnergy = 0, 0
	e.thermal = nil
	if e.Thermal != nil {
		e.thermal = hw.NewThermalState(e.Thermal)
	}
	e.wantLevel = e.gpuLevel
	e.switching = false
	e.faultStats = hw.FaultStats{}
	e.lastStats = WindowStats{}
	e.haveStats = false
	e.attribReset()
	e.obsReset()
	e.macroReset()
}

// advance accounts an interval with given power, busy flags, and compute
// utilization, ticking governor windows as they fill. In window-inert mode
// (macro.go) the window bookkeeping is skipped entirely: nothing consumes it
// — OnWindow no-ops, ticks never change the applied level — and skipping it
// makes the advance sequence of a pass independent of its window offset.
func (e *Executor) advance(d time.Duration, powerW float64, gpuBusy, cpuBusy bool, computeUt float64) {
	if e.rec != nil {
		e.rec.note(d, powerW, computeUt, e.gpuLevel, gpuBusy, cpuBusy)
	}
	if e.windowInert {
		e.sensor.Advance(d, powerW, e.Platform.GPUFreqsHz[e.gpuLevel])
		if e.attrib {
			e.levelEnergy[e.gpuLevel] += powerW * d.Seconds()
			e.levelTime[e.gpuLevel] += d
		}
		return
	}
	for d > 0 {
		room := e.WindowPeriod - e.winElapsed
		step := d
		if step > room {
			step = room
		}
		f := e.Platform.GPUFreqsHz[e.gpuLevel]
		e.sensor.Advance(step, powerW, f)
		if e.thermal != nil {
			e.thermal.Advance(step, powerW)
		}
		e.winElapsed += step
		if gpuBusy {
			e.winGPUBusy += step
			e.winCompute += computeUt * step.Seconds()
		}
		if cpuBusy {
			e.winCPUBusy += step
		}
		e.winEnergy += powerW * step.Seconds()
		if e.attrib {
			e.levelEnergy[e.gpuLevel] += powerW * step.Seconds()
			e.levelTime[e.gpuLevel] += step
		}
		d -= step
		if e.winElapsed >= e.WindowPeriod {
			e.tickWindow()
		}
	}
}

// tickWindow delivers a completed window to the controller and applies any
// requested frequency change.
func (e *Executor) tickWindow() {
	if e.rec != nil {
		// A window boundary split the pass being recorded: its advance
		// sequence depends on the window offset, so it cannot be a summary.
		e.abortRecording()
	}
	period := e.winElapsed
	stats := WindowStats{
		Period:   period,
		GPULevel: e.gpuLevel,
		CPULevel: e.Ctl.CPULevel(),
	}
	if s := period.Seconds(); s > 0 {
		stats.GPUBusy = e.winGPUBusy.Seconds() / s
		stats.CPUBusy = e.winCPUBusy.Seconds() / s
		stats.AvgPowerW = e.winEnergy / s
	}
	if b := e.winGPUBusy.Seconds(); b > 0 {
		stats.AvgComputeUt = e.winCompute / b
	}
	e.winElapsed, e.winGPUBusy, e.winCPUBusy = 0, 0, 0
	e.winCompute, e.winEnergy = 0, 0

	if e.Faults != nil {
		stats = e.observeWindow(stats)
	}
	e.Ctl.OnWindow(stats)
	e.applyLevel()
	if e.Obs != nil {
		e.noteWindow(stats)
	}
}

// observeWindow passes ground-truth window stats through the fault
// injector's sensor model: a dropped window delivers the previous reading
// (tegrastats-style stale data), a noisy one perturbs the observed power and
// busy fractions. Energy accounting stays exact — only what the governor
// *sees* is corrupted.
func (e *Executor) observeWindow(stats WindowStats) WindowStats {
	r := e.Faults.SensorWindow()
	switch {
	case r.Dropped:
		e.faultStats.SensorDropouts++
		if e.Obs != nil {
			e.noteFault("sensor-dropout", nil)
		}
		if e.haveStats {
			return e.lastStats
		}
		// Nothing delivered yet: the governor sees an empty first window.
		stats = WindowStats{Period: stats.Period, GPULevel: stats.GPULevel, CPULevel: stats.CPULevel}
	case r.Noisy:
		e.faultStats.SensorNoisy++
		stats.AvgPowerW *= r.PowerScale
		stats.GPUBusy = clamp01(stats.GPUBusy * r.BusyScale)
		stats.CPUBusy = clamp01(stats.CPUBusy * r.BusyScale)
		stats.AvgComputeUt = clamp01(stats.AvgComputeUt * r.BusyScale)
		if e.Obs != nil {
			e.noteFault("sensor-noise", map[string]any{
				"power_scale": r.PowerScale, "busy_scale": r.BusyScale})
		}
	}
	e.lastStats = stats
	e.haveStats = true
	return stats
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// applyLevel pays the switch cost if the controller's desired level differs
// from the currently applied one. With the thermal model enabled, the
// throttle latch caps the applied level regardless of the controller.
func (e *Executor) applyLevel() {
	want := e.Platform.ClampGPULevel(e.Ctl.GPULevel())
	if e.thermal != nil {
		want = e.thermal.CapLevel(want)
	}
	if e.Faults != nil {
		e.applyLevelFaulty(want)
		return
	}
	if want == e.gpuLevel {
		return
	}
	// During the transition the pipeline stalls at roughly idle power of the
	// departing frequency.
	from := e.gpuLevel
	start := e.sensor.Now()
	d, energy := e.Platform.SwitchCost(e.Platform.GPUFreqsHz[e.gpuLevel])
	power := energy / d.Seconds()
	e.gpuLevel = want
	e.switches++
	e.advance(d, power, false, false, 0)
	if e.Obs != nil {
		e.noteSwitch(from, want, start, 1, 0, 0)
	}
}

// applyLevelFaulty actuates a level change through the fault injector. A
// stuck transition is retried immediately with bounded exponential backoff;
// if the hardware still refuses, the mismatch persists and the watchdog —
// the want==wantLevel check below — detects and re-asserts it the next time
// the controller state is applied (every window tick and instrumentation
// point). Clamped transitions are accepted as-is for this attempt: a
// thermal/nvpmodel clamp will not yield to an immediate retry.
func (e *Executor) applyLevelFaulty(want int) {
	if e.switching {
		// A window tick fired during a transition's own stall interval;
		// the outer call finishes the actuation.
		return
	}
	if want == e.gpuLevel {
		e.wantLevel = want
		return
	}
	if want == e.wantLevel {
		// The controller already asked for this level and the hardware
		// never got there: a stuck frequency caught by the watchdog.
		e.faultStats.WatchdogReasserts++
		if e.Obs != nil {
			e.mx.reasserts.Inc(e.ctlName)
			e.noteFault("watchdog-reassert", map[string]any{"want": want, "at": e.gpuLevel})
		}
	}
	e.wantLevel = want
	e.switching = true
	from := e.gpuLevel
	start := e.sensor.Now()
	attempts, stuckN, clampedN := 0, 0, 0
	defer func() {
		e.switching = false
		if e.Obs != nil {
			e.noteSwitch(from, want, start, attempts, stuckN, clampedN)
		}
	}()

	maxRetries := e.MaxActuationRetries
	if maxRetries <= 0 {
		maxRetries = 2
	}
	backoff := e.RetryBackoff
	if backoff <= 0 {
		backoff = time.Millisecond
	}
	maxBackoff := 8 * backoff
	for attempt := 0; ; attempt++ {
		tr := e.Faults.Transition(e.gpuLevel, want)
		d, energy := e.Platform.SwitchCost(e.Platform.GPUFreqsHz[e.gpuLevel])
		if tr.ExtraLatency > 0 {
			d += tr.ExtraLatency
			e.faultStats.DelayedTransitions++
		}
		power := energy / d.Seconds()
		e.gpuLevel = e.Platform.ClampGPULevel(tr.Applied)
		e.switches++
		attempts++
		if tr.Stuck {
			e.faultStats.StuckTransitions++
			stuckN++
		}
		if tr.Clamped {
			e.faultStats.ClampedTransitions++
			clampedN++
		}
		if e.Obs != nil && (tr.Stuck || tr.Clamped || tr.ExtraLatency > 0) {
			name := "dvfs-delayed"
			if tr.Stuck {
				name = "dvfs-stuck"
			} else if tr.Clamped {
				name = "dvfs-clamped"
			}
			e.noteFault(name, map[string]any{"want": want, "applied": e.gpuLevel})
		}
		e.advance(d, power, false, false, 0)
		if e.gpuLevel == want || tr.Clamped || attempt >= maxRetries {
			return
		}
		// Stuck: back off briefly (GPU idles at the unchanged frequency),
		// then retry.
		e.faultStats.ActuationRetries++
		if e.Obs != nil {
			e.mx.retries.Inc(e.ctlName)
		}
		idleW := e.Platform.GPUIdlePower(e.Platform.GPUFreqsHz[e.gpuLevel])
		e.advance(backoff, idleW, false, false, 0)
		if backoff < maxBackoff {
			backoff *= 2
		}
	}
}

// runImage simulates one inference pass (Batch images). Host pre-processing
// of the next pass is pipelined with the GPU pass (the standard
// double-buffered inference loop), so the CPU rail burns energy concurrently
// and only extends wall time when the host becomes the bottleneck. This is
// what lets FPG-C+G save energy by down-scaling an underutilized CPU.
func (e *Executor) runImage(g *graph.Graph) {
	p := e.Platform
	batch := e.Batch
	if batch < 1 {
		batch = 1
	}

	cpuLevel := clampCPU(p, e.Ctl.CPULevel())
	fcpu := p.CPUFreqsHz[cpuLevel]
	cpuT, cpuE := p.CPUImageCost(fcpu)
	cpuT *= time.Duration(batch)
	cpuE *= float64(batch)
	cpuPower := 0.0
	if cpuT > 0 {
		cpuPower = cpuE / cpuT.Seconds()
	}
	cpuRemaining := cpuT

	// GPU pass, layer by layer, with the host rail active for the first
	// cpuRemaining of it.
	costs := e.opCosts(g, batch)
	passStart := e.sensor.Now()
	passEnergy := e.sensor.EnergyJ()
	var gpuBusy time.Duration
	for i := range costs {
		w := &costs[i]
		e.Ctl.BeforeLayer(g, w.id)
		e.applyLevel()
		if w.skip {
			continue
		}
		f := p.GPUFreqsHz[e.gpuLevel]
		c := p.GPUOpCost(w.flops, w.bytes, f)
		gpuBusy += c.Time
		if e.Ledger != nil {
			e.recordSegment(g, w.id, c.Time, c.PowerW*c.Time.Seconds())
		}
		if e.rec != nil {
			// Cell deltas are recorded whether or not this executor carries a
			// ledger — the summary may later replay on one that does.
			e.rec.noteSeg(g, w.id, c.Time, c.PowerW*c.Time.Seconds(), e.gpuLevel)
		}
		overlap := c.Time
		if overlap > cpuRemaining {
			overlap = cpuRemaining
		}
		if overlap > 0 {
			e.advance(overlap, c.PowerW+cpuPower, true, true, c.ComputeUt)
			cpuRemaining -= overlap
		}
		if rest := c.Time - overlap; rest > 0 {
			e.advance(rest, c.PowerW, true, false, c.ComputeUt)
		}
	}
	// Host-bound tail: the GPU waits for pre-processing to finish.
	if cpuRemaining > 0 {
		gpuIdleW := p.GPUIdlePower(p.GPUFreqsHz[e.gpuLevel])
		e.advance(cpuRemaining, gpuIdleW+cpuPower, false, true, 0)
	}
	e.images += batch
	e.finishPass(g, passStart, passEnergy, gpuBusy)
	if e.rec != nil {
		e.finishRecording(batch, gpuBusy)
	}
}

// opWork is one layer's precomputed pass cost: batched FLOPs and memory
// traffic, plus the ID handed to the controller hook.
type opWork struct {
	id           int
	flops, bytes int64
	skip         bool // OpInput — hook fires, no GPU work
}

// opCosts returns the per-layer cost buffer for (g, batch), rebuilding it
// only when either changes. BatchCost is pure, so the precomputed values are
// exactly what the per-layer loop used to recompute every pass. The rebuild
// also derives the graph's canonical digest (the attribution key) and the
// max-frequency GPU reference pass time (the QoS violation baseline) — both
// pure functions of (graph, batch, platform), so caching them alongside the
// costs keeps the warm path allocation-free.
func (e *Executor) opCosts(g *graph.Graph, batch int) []opWork {
	if e.costGraph == g && e.costBatch == batch {
		return e.costs
	}
	fmax := e.Platform.MaxGPUFreq()
	ref := time.Duration(0)
	costs := e.costs[:0]
	for _, l := range g.Layers {
		w := opWork{id: l.ID, skip: l.Kind == graph.OpInput}
		if !w.skip {
			w.flops, w.bytes = l.BatchCost(batch)
			ref += e.Platform.GPUOpCost(w.flops, w.bytes, fmax).Time
		}
		costs = append(costs, w)
	}
	e.costs, e.costGraph, e.costBatch = costs, g, batch
	e.costRef, e.costDigest = ref, graph.Digest(g)
	return costs
}

func clampCPU(p *hw.Platform, level int) int {
	if level < 0 {
		return 0
	}
	if level >= len(p.CPUFreqsHz) {
		return len(p.CPUFreqsHz) - 1
	}
	return level
}

// RunTask simulates one task (images × one model) from a cold start. With
// Batch > 1, images are processed in batched passes (rounding the total up
// to a batch multiple; Result.Images reports the actual count).
func (e *Executor) RunTask(g *graph.Graph, images int) Result {
	e.reset()
	e.runImages(g, images)
	return e.result()
}

// runImages processes at least the given number of images in batched passes.
// With macro-stepping eligible (macro.go), each pass first tries the
// analytic fast-forward; misses micro-step (recording a representative pass)
// and boundary/demotion cases micro-step for exactness.
func (e *Executor) runImages(g *graph.Graph, images int) {
	batch := e.Batch
	if batch < 1 {
		batch = 1
	}
	for done := 0; done < images; done += batch {
		if e.macroOK && e.fastForward(g, batch) {
			continue
		}
		e.runImage(g)
	}
}

// RunTaskFlow simulates a task flow (§3.2.2): tasks back to back with an
// idle gap between them, during which reactive governors scale down — and
// then pay their response lag when the next task arrives.
func (e *Executor) RunTaskFlow(tasks []Task, gap time.Duration) Result {
	e.reset()
	for i, t := range tasks {
		if i > 0 && gap > 0 {
			e.idle(gap)
		}
		e.runImages(t.Graph, t.Images)
	}
	return e.result()
}

// idle advances time with no work queued. In window-inert mode the whole gap
// is one advance — no window ticks can change anything.
func (e *Executor) idle(d time.Duration) {
	if e.windowInert {
		w := e.Platform.GPUIdlePower(e.Platform.GPUFreqsHz[e.gpuLevel])
		e.advance(d, w, false, false, 0)
		return
	}
	for d > 0 {
		step := e.WindowPeriod - e.winElapsed
		if step > d {
			step = d
		}
		w := e.Platform.GPUIdlePower(e.Platform.GPUFreqsHz[e.gpuLevel])
		e.advance(step, w, false, false, 0)
		d -= step
	}
}

func (e *Executor) result() Result {
	r := Result{
		Controller: e.Ctl.Name(),
		Platform:   e.Platform.Name,
		Images:     e.images,
		Time:       e.sensor.Now(),
		EnergyJ:    e.sensor.EnergyJ(),
		Switches:   e.switches,
		Samples:    e.sensor.Samples(),
	}
	if e.thermal != nil {
		r.PeakTempC = e.thermal.PeakC
		r.ThrottledTime = e.thermal.ThrottledTime
	}
	r.Faults = e.faultStats
	r.Passes = e.passes
	r.QoSViolations = e.qosViolations
	if e.attrib {
		r.LevelEnergyJ = append([]float64(nil), e.levelEnergy...)
		r.LevelTime = append([]time.Duration(nil), e.levelTime...)
	}
	e.obsResult(r)
	return r
}
