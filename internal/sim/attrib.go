package sim

import (
	"time"

	"powerlens/internal/graph"
	"powerlens/internal/obs/ledger"
)

// DefaultQoSBudget is the allowed per-pass GPU-time degradation versus the
// max-frequency reference before a pass counts as a QoS violation (§4.2's
// latency-constraint framing): a pass violates when its GPU busy time exceeds
// ref × (1 + budget). The reference excludes host time so a host-bound tail
// never charges the DVFS policy with a violation it did not cause.
const DefaultQoSBudget = 0.05

// BlockResolver is implemented by controllers that carry a power-block
// structure (PowerLens frequency plans): it maps a layer to the 0-based block
// it belongs to, so attribution cells can be keyed on the plan's blocks. The
// executor treats controllers without it as a single block 0.
type BlockResolver interface {
	BlockIndex(g *graph.Graph, layerID int) int
}

// attribReset prepares the per-run attribution scratch.
func (e *Executor) attribReset() {
	e.passes, e.qosViolations = 0, 0
	e.attrib = e.TrackLevels || e.Ledger != nil || e.SLO != nil
	e.blocks = nil
	if e.Ledger != nil {
		e.blocks, _ = e.Ctl.(BlockResolver)
	}
	if !e.attrib {
		return
	}
	n := e.Platform.NumGPULevels()
	if cap(e.levelEnergy) >= n {
		e.levelEnergy = e.levelEnergy[:n]
		e.levelTime = e.levelTime[:n]
		clear(e.levelEnergy)
		clear(e.levelTime)
	} else {
		e.levelEnergy = make([]float64, n)
		e.levelTime = make([]time.Duration, n)
	}
}

// recordSegment attributes one executed layer to its (model, block, level)
// ledger cell. Only called when a ledger is attached.
func (e *Executor) recordSegment(g *graph.Graph, layerID int, busy time.Duration, energyJ float64) {
	block := 0
	if e.blocks != nil {
		block = e.blocks.BlockIndex(g, layerID)
	}
	k := ledger.Key{Model: e.costDigest, Block: int32(block), Level: int32(e.gpuLevel)}
	e.Ledger.RecordSegment(k, g.Name, busy, energyJ)
}

// finishPass judges and records one completed inference pass. The violation
// verdict compares the pass's GPU busy time against the max-frequency
// reference (costRef, computed alongside the op-cost cache); wall latency —
// including host tails — is what the ledger's latency sketch and the SLO
// tracker record.
func (e *Executor) finishPass(g *graph.Graph, passStart time.Duration, passEnergyJ float64, gpuBusy time.Duration) {
	e.passes++
	violated := false
	if ref := e.costRef; ref > 0 {
		budget := e.QoSBudget
		if budget <= 0 {
			budget = DefaultQoSBudget
		}
		violated = gpuBusy > ref+time.Duration(float64(ref)*budget)
	}
	if violated {
		e.qosViolations++
	}
	if e.Ledger == nil && e.SLO == nil {
		return
	}
	now := e.sensor.Now()
	wall := now - passStart
	energy := e.sensor.EnergyJ() - passEnergyJ
	e.Ledger.RecordPass(e.costDigest, g.Name, wall, energy, violated)
	if e.SLO != nil {
		deg := 0.0
		if e.costRef > 0 {
			deg = float64(gpuBusy)/float64(e.costRef) - 1
		}
		e.SLO.RecordPass(g.Name, now, wall, deg, energy, violated)
	}
}
