package sim

import (
	"testing"

	"powerlens/internal/graph"
	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/obs/audit"
)

// auditingCtl is a fixed-level controller that implements AuditSink and
// records one plan application per layer — the minimal stand-in for a plan
// governor, usable here without importing internal/governor (which would be
// an import cycle).
type auditingCtl struct {
	fixedCtl
	rec    *audit.Recorder
	track  int
	digest uint64
}

func (a *auditingCtl) SetAudit(rec *audit.Recorder, track int) { a.rec, a.track = rec, track }
func (a *auditingCtl) BeforeLayer(g *graph.Graph, layerID int) {
	if a.rec != nil {
		if a.digest == 0 {
			a.digest = graph.Digest(g)
		}
		a.rec.RecordApply(a.track, "test", g.Name, a.digest, 0, layerID, a.level)
	}
}

// TestAuditDoesNotPerturbRun pins that attaching a recorder changes nothing
// about the simulation: results are DeepEqual with auditing on and off, while
// the recorder observes every plan application.
func TestAuditDoesNotPerturbRun(t *testing.T) {
	p := hw.TX2()
	g := models.AlexNet()

	plain := NewExecutor(p, &auditingCtl{fixedCtl: fixedCtl{level: 3}})
	rPlain := plain.RunTask(g, 6)

	rec := audit.New(audit.Config{})
	audited := NewExecutor(p, &auditingCtl{fixedCtl: fixedCtl{level: 3}})
	audited.Audit = rec
	audited.AuditTrack = 7
	rAudited := audited.RunTask(g, 6)

	if !sameResult(rPlain, rAudited) {
		t.Fatalf("auditing perturbed the run:\noff %+v\non  %+v", rPlain, rAudited)
	}
	snap := rec.Snapshot()
	wantApplies := uint64(6 * len(g.Layers))
	if snap.Records != wantApplies {
		t.Fatalf("recorded %d applies, want %d (6 passes × %d layers)",
			snap.Records, wantApplies, len(g.Layers))
	}
	if len(snap.Tracks) != 1 || snap.Tracks[0].Track != 7 {
		t.Fatalf("records not keyed under AuditTrack 7: %+v", snap.Tracks)
	}
}

// TestAuditZeroAllocWhenDisabled extends the serving fast-path pin to a
// controller that implements AuditSink: with no recorder attached, the sink
// wiring and the per-layer nil checks must stay off the heap entirely.
func TestAuditZeroAllocWhenDisabled(t *testing.T) {
	p := hw.TX2()
	e := NewExecutor(p, &auditingCtl{fixedCtl: fixedCtl{level: 3}})
	e.SensorPeriod = 0
	g := models.AlexNet()
	e.RunTask(g, 2) // warm: sensor, op cost buffer

	allocs := testing.AllocsPerRun(10, func() {
		e.RunTask(g, 2)
	})
	if allocs != 0 {
		t.Fatalf("warm audited-sink RunTask allocated %.0f times per run, want 0", allocs)
	}
}

// TestAuditRecordsOnSimulatedClock pins that ring records are timestamped by
// the executor-installed simulated clock: non-decreasing and bounded by the
// run's simulated duration.
func TestAuditRecordsOnSimulatedClock(t *testing.T) {
	p := hw.TX2()
	g := models.AlexNet()
	rec := audit.New(audit.Config{RingSize: 4096})
	e := NewExecutor(p, &auditingCtl{fixedCtl: fixedCtl{level: 3}})
	e.Audit = rec
	r := e.RunTask(g, 4)

	snap := rec.Snapshot()
	if len(snap.Tracks) != 1 {
		t.Fatalf("want 1 track, got %d", len(snap.Tracks))
	}
	last := -1.0
	for _, rs := range snap.Tracks[0].Records {
		if rs.AtS < last {
			t.Fatalf("record timestamps went backwards: %.6f after %.6f", rs.AtS, last)
		}
		if rs.AtS < 0 || rs.AtS > r.Time.Seconds() {
			t.Fatalf("record at %.6fs outside run duration %.6fs", rs.AtS, r.Time.Seconds())
		}
		last = rs.AtS
	}
	if last <= 0 {
		t.Fatal("no record carried a nonzero simulated timestamp")
	}
}

// TestAuditSinkRewiredEachRun pins the stale-recorder guarantee: clearing
// Executor.Audit detaches the controller from the previous run's recorder.
func TestAuditSinkRewiredEachRun(t *testing.T) {
	p := hw.TX2()
	g := models.AlexNet()
	rec := audit.New(audit.Config{})
	ctl := &auditingCtl{fixedCtl: fixedCtl{level: 3}}
	e := NewExecutor(p, ctl)
	e.Audit = rec
	e.RunTask(g, 2)
	before := rec.Snapshot().Records
	if before == 0 {
		t.Fatal("audited run recorded nothing")
	}

	e.Audit = nil
	e.RunTask(g, 2)
	if after := rec.Snapshot().Records; after != before {
		t.Fatalf("detached recorder still grew: %d → %d records", before, after)
	}
}
