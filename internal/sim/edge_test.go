package sim

import (
	"testing"
	"time"

	"powerlens/internal/hw"
	"powerlens/internal/models"
)

func TestRunTaskFlowEmpty(t *testing.T) {
	p := hw.TX2()
	r := NewExecutor(p, &fixedCtl{level: 5}).RunTaskFlow(nil, time.Second)
	if r.Images != 0 || r.Time != 0 || r.EnergyJ != 0 {
		t.Fatalf("empty flow result = %+v", r)
	}
}

func TestRunTaskZeroImages(t *testing.T) {
	p := hw.TX2()
	r := NewExecutor(p, &fixedCtl{level: 5}).RunTask(models.AlexNet(), 0)
	if r.Images != 0 {
		t.Fatalf("images = %d", r.Images)
	}
}

func TestWindowStatsCPULevelReported(t *testing.T) {
	p := hw.TX2()
	ctl := &windowCountCtl{fixedCtl: fixedCtl{level: 5}}
	e := NewExecutor(p, ctl)
	e.WindowPeriod = 5 * time.Millisecond
	e.RunTask(models.AlexNet(), 3)
	if len(ctl.stats) == 0 {
		t.Fatal("no windows")
	}
	for _, s := range ctl.stats {
		if s.GPULevel != 5 {
			t.Fatalf("window GPU level = %d", s.GPULevel)
		}
		if s.CPULevel != len(p.CPUFreqsHz)-1 {
			t.Fatalf("window CPU level = %d", s.CPULevel)
		}
		if s.GPUBusy < 0 || s.GPUBusy > 1+1e-9 || s.CPUBusy < 0 || s.CPUBusy > 1+1e-9 {
			t.Fatalf("busy fractions out of range: %+v", s)
		}
	}
}

func TestExecutorReuse(t *testing.T) {
	// The same executor must reset cleanly between runs.
	p := hw.TX2()
	e := NewExecutor(p, &fixedCtl{level: 7})
	a := e.RunTask(models.AlexNet(), 2)
	b := e.RunTask(models.AlexNet(), 2)
	if a.EnergyJ != b.EnergyJ || a.Time != b.Time || a.Images != b.Images {
		t.Fatalf("reuse changed results: %+v vs %+v", a, b)
	}
}
