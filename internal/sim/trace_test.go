package sim

import (
	"math"
	"strings"
	"testing"
	"time"

	"powerlens/internal/hw"
	"powerlens/internal/models"
)

func TestWriteTraceCSV(t *testing.T) {
	samples := []hw.PowerSample{
		{At: 10 * time.Millisecond, PowerW: 5.5, FreqHz: 1300.5e6},
		{At: 20 * time.Millisecond, PowerW: 4.2, FreqHz: 114.75e6},
	}
	var sb strings.Builder
	if err := WriteTraceCSV(&sb, samples); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want header + 2", len(lines))
	}
	if lines[0] != "time_ms,power_w,freq_mhz" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "10.000,5.5000,1300.50") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestAnalyzeTraceEmpty(t *testing.T) {
	for _, samples := range [][]hw.PowerSample{nil, {}} {
		st := AnalyzeTrace(samples, time.Millisecond)
		if st != (TraceStats{}) {
			t.Fatalf("empty trace stats = %+v, want all zero", st)
		}
		if math.IsNaN(st.MeanFreqHz) {
			t.Fatal("empty trace must not produce NaN mean")
		}
	}
}

func TestAnalyzeTraceNonFinite(t *testing.T) {
	mk := func(freqs ...float64) []hw.PowerSample {
		out := make([]hw.PowerSample, len(freqs))
		for i, f := range freqs {
			out[i] = hw.PowerSample{At: time.Duration(i+1) * time.Millisecond, FreqHz: f}
		}
		return out
	}
	// A NaN reading in the middle must not poison the mean or the
	// change/reversal detection across the gap.
	st := AnalyzeTrace(mk(100, math.NaN(), 200), time.Millisecond)
	if st.MeanFreqHz != 150 {
		t.Fatalf("mean = %g, want 150 (NaN excluded)", st.MeanFreqHz)
	}
	if st.Changes != 1 || st.Reversals != 0 {
		t.Fatalf("changes/reversals = %d/%d, want 1/0", st.Changes, st.Reversals)
	}
	if st.TimeAtMax != time.Millisecond {
		t.Fatalf("TimeAtMax = %v, want 1ms", st.TimeAtMax)
	}
	// +Inf must not become the max frequency.
	st = AnalyzeTrace(mk(100, math.Inf(1), 100), time.Millisecond)
	if st.TimeAtMax != 2*time.Millisecond {
		t.Fatalf("TimeAtMax = %v, want 2ms at the finite max", st.TimeAtMax)
	}
	if st.MeanFreqHz != 100 {
		t.Fatalf("mean = %g, want 100", st.MeanFreqHz)
	}
	// An all-garbage trace yields zero-valued aggregates, never NaN.
	st = AnalyzeTrace(mk(math.NaN(), math.Inf(-1)), time.Millisecond)
	if st.MeanFreqHz != 0 || st.Changes != 0 || st.TimeAtMax != 0 {
		t.Fatalf("all-NaN stats = %+v, want zeros", st)
	}
	if st.Samples != 2 {
		t.Fatalf("Samples = %d, want raw length 2", st.Samples)
	}
}

func TestWriteTraceCSVNonFinite(t *testing.T) {
	samples := []hw.PowerSample{
		{At: 10 * time.Millisecond, PowerW: math.NaN(), FreqHz: math.Inf(1)},
	}
	var sb strings.Builder
	if err := WriteTraceCSV(&sb, samples); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "NaN") || strings.Contains(sb.String(), "Inf") {
		t.Fatalf("CSV leaked non-finite values:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "10.000,0.0000,0.00") {
		t.Fatalf("non-finite row not zeroed:\n%s", sb.String())
	}
}

func TestAnalyzeTracePingPong(t *testing.T) {
	mk := func(freqs ...float64) []hw.PowerSample {
		out := make([]hw.PowerSample, len(freqs))
		for i, f := range freqs {
			out[i] = hw.PowerSample{At: time.Duration(i+1) * time.Millisecond, FreqHz: f}
		}
		return out
	}
	// up, down, up, down: 4 changes, 3 reversals.
	st := AnalyzeTrace(mk(1, 2, 1, 2, 1), time.Millisecond)
	if st.Changes != 4 {
		t.Fatalf("changes = %d, want 4", st.Changes)
	}
	if st.Reversals != 3 {
		t.Fatalf("reversals = %d, want 3", st.Reversals)
	}
	// Monotone ramp: changes but no reversals.
	st = AnalyzeTrace(mk(1, 2, 3, 4), time.Millisecond)
	if st.Reversals != 0 || st.Changes != 3 {
		t.Fatalf("ramp stats = %+v", st)
	}
	// Time at max: two samples at freq 2 in the ping-pong trace.
	st = AnalyzeTrace(mk(1, 2, 1, 2, 1), time.Millisecond)
	if st.TimeAtMax != 2*time.Millisecond {
		t.Fatalf("TimeAtMax = %v", st.TimeAtMax)
	}
}

func TestAnalyzeTraceOnRealRun(t *testing.T) {
	p := hw.TX2()
	e := NewExecutor(p, &fixedCtl{level: 7})
	e.SensorPeriod = time.Millisecond
	r := e.RunTask(models.GoogLeNet(), 5)
	st := AnalyzeTrace(r.Samples, e.SensorPeriod)
	if st.Samples == 0 {
		t.Fatal("no samples")
	}
	if st.Changes != 0 || st.Reversals != 0 {
		t.Fatalf("fixed-level run must have a flat trace: %+v", st)
	}
	if st.MeanFreqHz != p.GPUFreqsHz[7] {
		t.Fatalf("mean freq = %g", st.MeanFreqHz)
	}
	if st.Span <= 0 {
		t.Fatal("span must be positive")
	}
}
