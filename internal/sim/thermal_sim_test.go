package sim

import (
	"testing"
	"time"

	"powerlens/internal/hw"
	"powerlens/internal/models"
)

// maxCtl pins fmax (a BiM-under-load proxy) for thermal tests.
type maxCtl struct{ fixedCtl }

func (m *maxCtl) Reset(p *hw.Platform) {
	m.p = p
	m.level = p.NumGPULevels() - 1
}

func TestThermalThrottlingAtFmax(t *testing.T) {
	p := hw.TX2()
	g := models.MustBuild("resnet152")
	e := NewExecutor(p, &maxCtl{})
	e.Thermal = hw.DefaultThermal(p)
	// Long sustained run: enough seconds of double-digit watts to trip.
	r := e.RunTask(g, 600)
	if r.PeakTempC <= e.Thermal.ThrottleC {
		t.Fatalf("peak temp %.1f never crossed the trip point %.1f", r.PeakTempC, e.Thermal.ThrottleC)
	}
	if r.ThrottledTime == 0 {
		t.Fatal("sustained fmax must throttle")
	}
	// While throttled the applied frequency must be capped.
	capped := false
	for _, s := range r.Samples {
		if s.FreqHz <= p.GPUFreqsHz[e.Thermal.MaxLevelHot] {
			capped = true
			break
		}
	}
	if !capped {
		t.Fatal("no capped-frequency samples despite throttling")
	}
}

func TestThermalPowerLensStaysCool(t *testing.T) {
	p := hw.TX2()
	g := models.MustBuild("resnet152")
	// PowerLens-style mid-ladder operation draws far less power.
	e := NewExecutor(p, &fixedCtl{level: 6})
	e.Thermal = hw.DefaultThermal(p)
	r := e.RunTask(g, 600)
	if r.ThrottledTime != 0 {
		t.Fatalf("mid-ladder run throttled for %v", r.ThrottledTime)
	}
	if r.PeakTempC >= e.Thermal.ThrottleC {
		t.Fatalf("peak temp %.1f too hot", r.PeakTempC)
	}
	if r.PeakTempC <= e.Thermal.AmbientC {
		t.Fatal("temperature never rose above ambient")
	}
}

func TestThermalDisabledByDefault(t *testing.T) {
	p := hw.TX2()
	r := NewExecutor(p, &maxCtl{}).RunTask(models.AlexNet(), 5)
	if r.PeakTempC != 0 || r.ThrottledTime != 0 {
		t.Fatal("thermal results must be zero when the model is disabled")
	}
}

func TestThermalThrottledRunSlowerButCooler(t *testing.T) {
	p := hw.TX2()
	g := models.MustBuild("resnet152")

	plain := NewExecutor(p, &maxCtl{})
	rPlain := plain.RunTask(g, 600)

	hot := NewExecutor(p, &maxCtl{})
	hot.Thermal = hw.DefaultThermal(p)
	rHot := hot.RunTask(g, 600)

	// Throttling extends the run but reduces average power.
	if rHot.Time <= rPlain.Time {
		t.Fatalf("throttled run %v not slower than unthrottled %v", rHot.Time, rPlain.Time)
	}
	if rHot.AvgPowerW() >= rPlain.AvgPowerW() {
		t.Fatalf("throttled avg power %.2f not below unthrottled %.2f",
			rHot.AvgPowerW(), rPlain.AvgPowerW())
	}
	_ = time.Second
}
