package sim

import (
	"math"
	"reflect"
	"testing"
	"time"

	"powerlens/internal/hw"
	"powerlens/internal/models"
)

// sameResult compares two results ignoring the Samples trace.
func sameResult(a, b Result) bool {
	a.Samples, b.Samples = nil, nil
	return reflect.DeepEqual(a, b)
}

// TestRunTaskZeroAllocSteadyState pins the serving fast path: with tracing
// off (SensorPeriod <= 0) and no optional subsystems, a warm executor must
// not touch the heap at all across whole repeat runs — 0 allocs/op for every
// layer step.
func TestRunTaskZeroAllocSteadyState(t *testing.T) {
	p := hw.TX2()
	e := NewExecutor(p, &fixedCtl{level: 3})
	e.SensorPeriod = 0
	g := models.AlexNet()
	e.RunTask(g, 2) // warm: sensor, op cost buffer

	allocs := testing.AllocsPerRun(10, func() {
		e.RunTask(g, 2)
	})
	if allocs != 0 {
		t.Fatalf("warm RunTask allocated %.0f times per run, want 0", allocs)
	}
}

// TestTracingOffMatchesTracingOn pins that disabling the trace only removes
// Result.Samples — energy, time, and every other field stay bit-identical.
func TestTracingOffMatchesTracingOn(t *testing.T) {
	p := hw.TX2()
	g := models.AlexNet()

	on := NewExecutor(p, &fixedCtl{level: 3})
	rOn := on.RunTask(g, 4)

	off := NewExecutor(p, &fixedCtl{level: 3})
	off.SensorPeriod = 0
	rOff := off.RunTask(g, 4)

	if len(rOn.Samples) == 0 {
		t.Fatal("tracing on produced no samples")
	}
	if len(rOff.Samples) != 0 {
		t.Fatalf("tracing off produced %d samples", len(rOff.Samples))
	}
	if !sameResult(rOn, rOff) {
		t.Fatalf("results differ beyond Samples:\non  %+v\noff %+v", rOn, rOff)
	}
}

// TestSensorReuseDoesNotLeakAcrossRuns pins that the reused sensor starts
// every run from scratch: two identical tasks on one executor must agree
// exactly with a fresh executor's run.
func TestSensorReuseDoesNotLeakAcrossRuns(t *testing.T) {
	p := hw.TX2()
	g := models.AlexNet()

	e := NewExecutor(p, &fixedCtl{level: 3})
	e.SensorPeriod = 0
	first := e.RunTask(g, 3)
	second := e.RunTask(g, 3)
	if !sameResult(first, second) {
		t.Fatalf("repeat run on reused sensor differs:\n1st %+v\n2nd %+v", first, second)
	}

	fresh := NewExecutor(p, &fixedCtl{level: 3})
	fresh.SensorPeriod = 0
	if r := fresh.RunTask(g, 3); !sameResult(r, second) {
		t.Fatalf("reused executor differs from fresh executor:\nreused %+v\nfresh  %+v", second, r)
	}
}

// TestSensorPeriodZeroTerminates guards the Period <= 0 semantics at the
// sensor layer: Advance must integrate energy exactly and never sample.
func TestSensorPeriodZeroTerminates(t *testing.T) {
	for _, period := range []time.Duration{0, -time.Millisecond} {
		s := hw.NewPowerSensor(period)
		s.Advance(time.Second, 5, 1e9)
		if got := s.EnergyJ(); math.Abs(got-5) > 1e-12 {
			t.Fatalf("period %v: energy = %v, want 5", period, got)
		}
		if n := len(s.Samples()); n != 0 {
			t.Fatalf("period %v: %d samples, want 0", period, n)
		}
	}
}

// TestSensorReset pins in-place reset: full state back to t=0, buffer
// reused, new period applied.
func TestSensorReset(t *testing.T) {
	s := hw.NewPowerSensor(10 * time.Millisecond)
	s.Advance(100*time.Millisecond, 2, 1e9)
	if len(s.Samples()) == 0 || s.EnergyJ() == 0 {
		t.Fatal("setup run recorded nothing")
	}
	s.Reset(20 * time.Millisecond)
	if s.Now() != 0 || s.EnergyJ() != 0 || len(s.Samples()) != 0 {
		t.Fatalf("reset left state behind: now=%v energy=%v samples=%d",
			s.Now(), s.EnergyJ(), len(s.Samples()))
	}
	s.Advance(40*time.Millisecond, 1, 1e9)
	if n := len(s.Samples()); n != 2 {
		t.Fatalf("post-reset sampling at new period: %d samples, want 2", n)
	}
}

// TestOpCostBufferTracksGraphAndBatch pins the per-run op cost scratch:
// switching graphs or batch sizes must rebuild it, and results must equal a
// fresh executor's.
func TestOpCostBufferTracksGraphAndBatch(t *testing.T) {
	p := hw.TX2()
	g1 := models.AlexNet()
	g2 := models.MustBuild("mobilenet_v3")

	e := NewExecutor(p, &fixedCtl{level: 3})
	e.SensorPeriod = 0
	e.RunTask(g1, 2)
	got := e.RunTask(g2, 2)

	fresh := NewExecutor(p, &fixedCtl{level: 3})
	fresh.SensorPeriod = 0
	if want := fresh.RunTask(g2, 2); !sameResult(got, want) {
		t.Fatalf("graph switch reused stale costs:\ngot  %+v\nwant %+v", got, want)
	}

	e.Batch = 4
	gotBatched := e.RunTask(g2, 8)
	freshB := NewExecutor(p, &fixedCtl{level: 3})
	freshB.SensorPeriod = 0
	freshB.Batch = 4
	if want := freshB.RunTask(g2, 8); !sameResult(gotBatched, want) {
		t.Fatalf("batch switch reused stale costs:\ngot  %+v\nwant %+v", gotBatched, want)
	}
}
