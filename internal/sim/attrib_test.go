package sim

import (
	"bytes"
	"testing"

	"powerlens/internal/graph"
	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/obs/ledger"
	"powerlens/internal/obs/slo"
)

// planCtl is a fixed-level controller that also carries a block structure
// (every blockLen layers start a new power block), standing in for a
// PowerLens plan without importing the governor package.
type planCtl struct {
	fixedCtl
	blockLen int
}

func (c *planCtl) BlockIndex(_ *graph.Graph, layerID int) int {
	if c.blockLen <= 0 || layerID < 0 {
		return 0
	}
	return layerID / c.blockLen
}

var _ BlockResolver = (*planCtl)(nil)

// TestAttributionInertResults pins the nil-sink contract from the other
// observability hooks: attaching a ledger, an SLO tracker and level tracking
// must leave the simulated outcome bit-identical.
func TestAttributionInertResults(t *testing.T) {
	p := hw.TX2()
	g := models.AlexNet()
	run := func(instrument bool) Result {
		e := NewExecutor(p, &planCtl{fixedCtl: fixedCtl{level: 4}, blockLen: 3})
		if instrument {
			e.Ledger = ledger.New()
			e.SLO = slo.New(slo.Config{})
			e.TrackLevels = true
		}
		return e.RunTask(g, 6)
	}
	plain, inst := run(false), run(true)
	if plain.Time != inst.Time || plain.EnergyJ != inst.EnergyJ ||
		plain.Images != inst.Images || plain.Switches != inst.Switches {
		t.Fatalf("attribution perturbed the run:\nplain %+v\ninst  %+v", plain, inst)
	}
	if plain.Passes != inst.Passes || plain.QoSViolations != inst.QoSViolations {
		t.Fatalf("pass accounting differs: %d/%d vs %d/%d",
			plain.Passes, plain.QoSViolations, inst.Passes, inst.QoSViolations)
	}
	if plain.LevelEnergyJ != nil || inst.LevelEnergyJ == nil {
		t.Fatal("level decomposition gating wrong")
	}
}

// TestExecutorLedgerFeed checks the step loop's attribution events land in
// the ledger with the documented key structure, and that identical runs
// export identical bytes.
func TestExecutorLedgerFeed(t *testing.T) {
	p := hw.TX2()
	g := models.AlexNet()
	run := func() (*ledger.Ledger, Result) {
		e := NewExecutor(p, &planCtl{fixedCtl: fixedCtl{level: 4}, blockLen: 3})
		e.Ledger = ledger.New()
		r := e.RunTask(g, 4)
		return e.Ledger, r
	}
	l, r := run()
	snap := l.Snapshot()
	if len(snap.Models) != 1 {
		t.Fatalf("want 1 model, got %d", len(snap.Models))
	}
	m := snap.Models[0]
	if m.Digest != graph.DigestString(graph.Digest(g)) || m.Model != g.Name {
		t.Fatalf("model identity wrong: %+v", m)
	}
	if int(m.Passes) != r.Passes || r.Passes != 4 {
		t.Fatalf("ledger passes %d, result %d", m.Passes, r.Passes)
	}
	if m.LatencyP50S <= 0 {
		t.Fatalf("latency sketch empty: %+v", m)
	}
	nonInput := 0
	for _, ly := range g.Layers {
		if ly.Kind != graph.OpInput {
			nonInput++
		}
	}
	var ops uint64
	blocks := map[int]bool{}
	for _, c := range snap.Cells {
		ops += c.Ops
		blocks[c.Block] = true
		if c.Level != 4 {
			t.Fatalf("fixed run attributed to level %d: %+v", c.Level, c)
		}
	}
	if int(ops) != nonInput*r.Passes {
		t.Fatalf("attributed ops %d, want %d layers × %d passes", ops, nonInput, r.Passes)
	}
	if len(blocks) < 2 {
		t.Fatalf("block structure missing: %v", blocks)
	}
	var cellEnergy float64
	for _, c := range snap.Cells {
		cellEnergy += c.EnergyJ
	}
	if cellEnergy <= 0 || cellEnergy > r.EnergyJ {
		t.Fatalf("cell energy %v outside (0, run energy %v]", cellEnergy, r.EnergyJ)
	}

	l2, _ := run()
	var a, b bytes.Buffer
	if err := l.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := l2.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical runs exported different ledger bytes")
	}
}

// TestQoSJudgement pins the violation semantics: a run pinned at the lowest
// frequency degrades every pass past the budget; a run at the top frequency
// matches the reference and never violates.
func TestQoSJudgement(t *testing.T) {
	p := hw.TX2()
	g := models.VGG19() // compute-bound: frequency dominates pass time
	slow := NewExecutor(p, &fixedCtl{level: 0}).RunTask(g, 3)
	if slow.QoSViolations != slow.Passes || slow.Passes != 3 {
		t.Fatalf("fmin run should violate every pass: %d/%d", slow.QoSViolations, slow.Passes)
	}
	fast := NewExecutor(p, &fixedCtl{level: p.NumGPULevels() - 1}).RunTask(g, 3)
	if fast.QoSViolations != 0 {
		t.Fatalf("fmax run violated %d passes", fast.QoSViolations)
	}
	if slow.QoSViolationRate() != 1 || fast.QoSViolationRate() != 0 {
		t.Fatalf("rates: %v / %v", slow.QoSViolationRate(), fast.QoSViolationRate())
	}
}

// TestSLOFeedFromExecutor checks pass events reach the SLO tracker on the
// simulated clock.
func TestSLOFeedFromExecutor(t *testing.T) {
	p := hw.TX2()
	g := models.AlexNet()
	e := NewExecutor(p, &fixedCtl{level: 0})
	e.SLO = slo.New(slo.Config{ViolationTarget: 0.1})
	r := e.RunTask(g, 5)
	st := e.SLO.Snapshot()
	if len(st.Models) != 1 || st.Models[0].Model != g.Name {
		t.Fatalf("SLO models: %+v", st.Models)
	}
	if int(st.Models[0].Passes) != r.Passes {
		t.Fatalf("SLO passes %d, result %d", st.Models[0].Passes, r.Passes)
	}
	if st.Models[0].LatencyP50S <= 0 {
		t.Fatalf("SLO latency missing: %+v", st.Models[0])
	}
}
