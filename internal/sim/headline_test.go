package sim

import (
	"testing"
	"time"

	"powerlens/internal/hw"
	"powerlens/internal/models"
)

// TestResultHeadline checks the manifest snapshot agrees with the result's
// own accessors for a real run.
func TestResultHeadline(t *testing.T) {
	p := hw.TX2()
	g := models.MustBuild("resnet34")
	r := NewExecutor(p, &fixedCtl{level: p.NumGPULevels() - 1}).RunTask(g, 5)

	h := r.Headline()
	if h["images"] != 5 {
		t.Fatalf("images = %v", h["images"])
	}
	if h["energy_j"] != r.EnergyJ || h["ee_img_per_j"] != r.EE() || h["avg_power_w"] != r.AvgPowerW() {
		t.Fatalf("headline disagrees with accessors: %v vs %+v", h, r)
	}
	if h["time_s"] <= 0 || h["dvfs_switches"] != float64(r.Switches) {
		t.Fatalf("headline = %v", h)
	}
	if h["passes"] != float64(r.Passes) || h["passes"] != 5 {
		t.Fatalf("passes = %v, result %d", h["passes"], r.Passes)
	}
	if h["qos_violation_rate"] != r.QoSViolationRate() {
		t.Fatalf("qos_violation_rate = %v", h["qos_violation_rate"])
	}
}

// TestHeadlineEnergyShares covers the per-level energy-share keys: present
// only for levels that burned energy, summing to ~1 over the run.
func TestHeadlineEnergyShares(t *testing.T) {
	p := hw.TX2()
	g := models.MustBuild("resnet34")
	e := NewExecutor(p, &fixedCtl{level: 2})
	e.TrackLevels = true
	r := e.RunTask(g, 5)

	if len(r.LevelEnergyJ) != p.NumGPULevels() || len(r.LevelTime) != p.NumGPULevels() {
		t.Fatalf("level slices not sized to the ladder: %d/%d", len(r.LevelEnergyJ), len(r.LevelTime))
	}
	var levels, total float64
	for _, ej := range r.LevelEnergyJ {
		total += ej
	}
	if diff := total - r.EnergyJ; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("level energies sum to %v, run burned %v", total, r.EnergyJ)
	}
	h := r.Headline()
	for name, v := range h {
		if len(name) == len("energy_share_l00") && name[:len("energy_share_l")] == "energy_share_l" {
			levels += v
			if v <= 0 {
				t.Fatalf("zero-valued share key %s should be absent", name)
			}
		}
	}
	if levels < 0.999 || levels > 1.001 {
		t.Fatalf("energy shares sum to %v, want ~1", levels)
	}

	// Without TrackLevels (or sinks) the decomposition stays nil and no
	// share keys appear.
	r2 := NewExecutor(p, &fixedCtl{level: 2}).RunTask(g, 5)
	if r2.LevelEnergyJ != nil || r2.LevelTime != nil {
		t.Fatal("level slices must stay nil when attribution is off")
	}
	for name := range r2.Headline() {
		if len(name) >= len("energy_share_l") && name[:len("energy_share_l")] == "energy_share_l" {
			t.Fatalf("unexpected share key %s without attribution", name)
		}
	}
}

// TestResultHeadlineZero covers the empty-result edges (no division blowups).
func TestResultHeadlineZero(t *testing.T) {
	h := Result{}.Headline()
	for name, v := range h {
		if v != 0 {
			t.Fatalf("zero result headline %s = %v", name, v)
		}
	}
	if _, ok := h["throttled_ms"]; !ok {
		t.Fatal("headline dropped the thermal field")
	}
	r := Result{Images: 3, Time: 2 * time.Second, EnergyJ: 6}
	if h := r.Headline(); h["ee_img_per_j"] != 0.5 || h["avg_power_w"] != 3 {
		t.Fatalf("headline = %v", h)
	}
}
