package sim

import (
	"testing"
	"time"

	"powerlens/internal/hw"
	"powerlens/internal/models"
)

// TestResultHeadline checks the manifest snapshot agrees with the result's
// own accessors for a real run.
func TestResultHeadline(t *testing.T) {
	p := hw.TX2()
	g := models.MustBuild("resnet34")
	r := NewExecutor(p, &fixedCtl{level: p.NumGPULevels() - 1}).RunTask(g, 5)

	h := r.Headline()
	if h["images"] != 5 {
		t.Fatalf("images = %v", h["images"])
	}
	if h["energy_j"] != r.EnergyJ || h["ee_img_per_j"] != r.EE() || h["avg_power_w"] != r.AvgPowerW() {
		t.Fatalf("headline disagrees with accessors: %v vs %+v", h, r)
	}
	if h["time_s"] <= 0 || h["dvfs_switches"] != float64(r.Switches) {
		t.Fatalf("headline = %v", h)
	}
}

// TestResultHeadlineZero covers the empty-result edges (no division blowups).
func TestResultHeadlineZero(t *testing.T) {
	h := Result{}.Headline()
	for name, v := range h {
		if v != 0 {
			t.Fatalf("zero result headline %s = %v", name, v)
		}
	}
	if _, ok := h["throttled_ms"]; !ok {
		t.Fatal("headline dropped the thermal field")
	}
	r := Result{Images: 3, Time: 2 * time.Second, EnergyJ: 6}
	if h := r.Headline(); h["ee_img_per_j"] != 0.5 || h["avg_power_w"] != 3 {
		t.Fatalf("headline = %v", h)
	}
}
