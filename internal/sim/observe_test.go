package sim

import (
	"testing"
	"time"

	"powerlens/internal/graph"
	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/obs"
)

// faultCfg is a nonzero schedule exercising every executor fault path.
func faultCfg() hw.FaultConfig {
	return hw.FaultConfig{
		Seed:              7,
		SensorDropoutProb: 0.10, SensorNoiseFrac: 0.15,
		StuckProb: 0.20, ClampProb: 0.05,
		DelayProb: 0.25, DelayLatency: 2 * time.Millisecond,
	}
}

// TestObservedRunIsIdentical is the determinism acceptance check at the
// executor level: attaching an observer must not change a single field of
// the result, faulted or not.
func TestObservedRunIsIdentical(t *testing.T) {
	p := hw.TX2()
	g := models.AlexNet()
	run := func(obsOn, faults bool) Result {
		e := NewExecutor(p, &rampCtl{})
		if faults {
			e.Faults = hw.NewInjector(faultCfg())
		}
		if obsOn {
			e.Obs = obs.New()
		}
		return e.RunTask(g, 40)
	}
	for _, faults := range []bool{false, true} {
		bare, observed := run(false, faults), run(true, faults)
		// Samples are a slice; compare scalars and lengths field by field.
		if bare.EnergyJ != observed.EnergyJ || bare.Time != observed.Time ||
			bare.Images != observed.Images || bare.Switches != observed.Switches ||
			bare.Faults != observed.Faults || len(bare.Samples) != len(observed.Samples) {
			t.Fatalf("faults=%v: observation changed the run:\nbare     %+v\nobserved %+v",
				faults, bare, observed)
		}
	}
}

// TestExecutorEmitsMetricsAndSpans checks the executor's instrumentation
// surface: the sim_* families exist with plausible values and the trace
// carries block/actuation spans plus decision and fault instants.
func TestExecutorEmitsMetricsAndSpans(t *testing.T) {
	p := hw.TX2()
	g := models.AlexNet()
	o := obs.New()
	e := NewExecutor(p, &rampCtl{})
	e.Faults = hw.NewInjector(faultCfg())
	e.Obs = o
	r := e.RunTask(g, 40)

	vals := map[string]float64{}
	for _, f := range o.Metrics.Snapshot() {
		vals[f.Name] = f.Total()
	}
	if vals["sim_windows_total"] == 0 {
		t.Fatalf("no windows counted: %v", vals)
	}
	if vals["sim_images_total"] != float64(r.Images) {
		t.Fatalf("sim_images_total = %g, want %d", vals["sim_images_total"], r.Images)
	}
	if vals["sim_energy_joules_total"] != r.EnergyJ {
		t.Fatalf("sim_energy_joules_total = %g, want %g", vals["sim_energy_joules_total"], r.EnergyJ)
	}
	if vals["sim_dvfs_switches_total"] == 0 {
		t.Fatal("ramp controller produced no switch metrics")
	}
	if vals["hw_sensor_windows_total"] != vals["sim_windows_total"] {
		t.Fatalf("sensor windows %g != delivered windows %g",
			vals["hw_sensor_windows_total"], vals["sim_windows_total"])
	}
	if r.Faults.ActuationRetries > 0 &&
		vals["sim_actuation_retries_total"] != float64(r.Faults.ActuationRetries) {
		t.Fatalf("retries metric %g != result %d",
			vals["sim_actuation_retries_total"], r.Faults.ActuationRetries)
	}

	byCat := map[string]int{}
	var lastBlockEnd float64
	for _, ev := range o.Tracer.Events() {
		byCat[ev.Cat]++
		if ev.Cat == "block" {
			if ev.TsUS < lastBlockEnd {
				t.Fatalf("block spans overlap: start %v < previous end %v", ev.TsUS, lastBlockEnd)
			}
			lastBlockEnd = ev.TsUS + ev.DurUS
		}
	}
	for _, cat := range []string{"block", "actuation", "decision", "fault"} {
		if byCat[cat] == 0 {
			t.Fatalf("no %q events in trace: %v", cat, byCat)
		}
	}
	if byCat["decision"] != int(vals["sim_windows_total"]) {
		t.Fatalf("decision instants %d != windows %g", byCat["decision"], vals["sim_windows_total"])
	}
}

// rampCtl sweeps the ladder so runs produce switches and residency blocks.
type rampCtl struct {
	platform *hw.Platform
	windows  int
}

func (r *rampCtl) Name() string                  { return "ramp" }
func (r *rampCtl) Reset(p *hw.Platform)          { r.platform, r.windows = p, 0 }
func (r *rampCtl) GPULevel() int                 { return (r.windows / 4) % r.platform.NumGPULevels() }
func (r *rampCtl) CPULevel() int                 { return len(r.platform.CPUFreqsHz) - 1 }
func (r *rampCtl) OnWindow(WindowStats)          { r.windows++ }
func (r *rampCtl) BeforeLayer(*graph.Graph, int) {}
