package sim

import (
	"testing"
	"time"

	"powerlens/internal/hw"
	"powerlens/internal/models"
)

func TestSegmentCostBatchAmortizesWeights(t *testing.T) {
	p := hw.TX2()
	g := models.VGG19() // weight-heavy FC tail
	n := len(g.Layers) - 1
	f := p.GPUFreqsHz[8]

	t1, e1 := SegmentCostBatch(p, g, 0, n, f, 1)
	t8, e8 := SegmentCostBatch(p, g, 0, n, f, 8)

	// Batch-8 must cost less than 8x batch-1 in both time and energy
	// (weight traffic amortizes), but more than 1x.
	if e8 >= 8*e1 {
		t.Fatalf("batch energy %.3f >= 8x single %.3f: no amortization", e8, 8*e1)
	}
	if e8 <= e1 {
		t.Fatal("batch-8 must cost more total energy than batch-1")
	}
	if t8 >= 8*t1 || t8 <= t1 {
		t.Fatalf("batch time %v outside (1x, 8x) of %v", t8, t1)
	}
	// Per-image EE must improve with batch.
	if 8/e8 <= 1/e1 {
		t.Fatalf("per-image EE did not improve: %.4f vs %.4f", 8/e8, 1/e1)
	}
}

func TestSegmentCostBatchOneMatchesSegmentCost(t *testing.T) {
	p := hw.AGX()
	g := models.ResNet34()
	n := len(g.Layers) - 1
	f := p.GPUFreqsHz[5]
	t1, e1 := SegmentCost(p, g, 0, n, f)
	tb, eb := SegmentCostBatch(p, g, 0, n, f, 1)
	if t1 != tb || e1 != eb {
		t.Fatalf("batch=1 must equal unbatched: %v/%v vs %v/%v", t1, e1, tb, eb)
	}
}

func TestOptimalBatchPrefersLargerBatches(t *testing.T) {
	p := hw.TX2()
	g := models.VGG19()
	best, sweep := OptimalBatch(p, g, 16, 0)
	if len(sweep) == 0 {
		t.Fatal("empty sweep")
	}
	if best.Batch < 2 {
		t.Fatalf("weight-heavy net should prefer batch > 1, got %d", best.Batch)
	}
	// EE must be monotone non-decreasing along the unconstrained sweep for a
	// weight-heavy network.
	for i := 1; i < len(sweep); i++ {
		if sweep[i].EE < sweep[i-1].EE*0.999 {
			t.Fatalf("EE dropped along batch sweep: %+v", sweep)
		}
	}
}

func TestOptimalBatchLatencyBudget(t *testing.T) {
	p := hw.TX2()
	g := models.VGG19()
	unbounded, _ := OptimalBatch(p, g, 16, 0)
	budget := unbounded.Latency / 2
	bounded, sweep := OptimalBatch(p, g, 16, budget)
	if bounded.Latency > budget {
		t.Fatalf("budgeted point latency %v exceeds budget %v", bounded.Latency, budget)
	}
	for _, bp := range sweep {
		if bp.Latency > budget {
			t.Fatalf("sweep point %+v violates budget", bp)
		}
	}
	if bounded.EE > unbounded.EE {
		t.Fatal("constrained optimum cannot beat unconstrained")
	}
}

func TestOptimalBatchImpossibleBudget(t *testing.T) {
	p := hw.TX2()
	g := models.VGG19()
	best, sweep := OptimalBatch(p, g, 8, time.Nanosecond)
	if len(sweep) != 0 {
		t.Fatalf("nanosecond budget admits points: %+v", sweep)
	}
	if best.Batch != 0 {
		t.Fatalf("best should be zero-valued, got %+v", best)
	}
}

func TestExecutorBatch(t *testing.T) {
	p := hw.TX2()
	g := models.VGG19()
	single := NewExecutor(p, &fixedCtl{level: 8})
	r1 := single.RunTask(g, 16)

	batched := NewExecutor(p, &fixedCtl{level: 8})
	batched.Batch = 8
	r8 := batched.RunTask(g, 16)

	if r8.Images != 16 || r1.Images != 16 {
		t.Fatalf("image counts: %d / %d", r1.Images, r8.Images)
	}
	// Batched execution of a weight-heavy net must be more energy
	// efficient and faster overall.
	if r8.EE() <= r1.EE() {
		t.Fatalf("batched EE %.4f <= single EE %.4f", r8.EE(), r1.EE())
	}
	if r8.Time >= r1.Time {
		t.Fatalf("batched time %v >= single %v", r8.Time, r1.Time)
	}
}

func TestExecutorBatchRoundsUp(t *testing.T) {
	p := hw.TX2()
	e := NewExecutor(p, &fixedCtl{level: 6})
	e.Batch = 8
	r := e.RunTask(models.AlexNet(), 10) // 10 images, batch 8 → 2 passes = 16
	if r.Images != 16 {
		t.Fatalf("images = %d, want 16 (rounded to batch multiple)", r.Images)
	}
}

func TestBatchCostLayer(t *testing.T) {
	g := models.VGG19()
	var fc *struct {
		flops1, bytes1, flops4, bytes4 int64
	}
	for _, l := range g.Layers {
		if l.Kind.String() == "linear" && l.Attrs.InFeatures > 10000 {
			f1, b1 := l.BatchCost(1)
			f4, b4 := l.BatchCost(4)
			fc = &struct{ flops1, bytes1, flops4, bytes4 int64 }{f1, b1, f4, b4}
			break
		}
	}
	if fc == nil {
		t.Fatal("no big FC layer found")
	}
	if fc.flops4 != 4*fc.flops1 {
		t.Fatal("FLOPs must scale with batch")
	}
	if fc.bytes4 >= 4*fc.bytes1 {
		t.Fatal("weight traffic must amortize across the batch")
	}
}
