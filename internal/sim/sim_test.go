package sim

import (
	"math"
	"testing"
	"time"

	"powerlens/internal/graph"
	"powerlens/internal/hw"
	"powerlens/internal/models"
)

// fixedCtl is a minimal controller pinned at one level.
type fixedCtl struct {
	level int
	p     *hw.Platform
}

func (f *fixedCtl) Name() string                  { return "fixed" }
func (f *fixedCtl) Reset(p *hw.Platform)          { f.p = p }
func (f *fixedCtl) GPULevel() int                 { return f.level }
func (f *fixedCtl) CPULevel() int                 { return len(f.p.CPUFreqsHz) - 1 }
func (f *fixedCtl) BeforeLayer(*graph.Graph, int) {}
func (f *fixedCtl) OnWindow(WindowStats)          {}

func TestRunTaskBasics(t *testing.T) {
	p := hw.TX2()
	e := NewExecutor(p, &fixedCtl{level: p.NumGPULevels() - 1})
	g := models.AlexNet()
	r := e.RunTask(g, 10)
	if r.Images != 10 {
		t.Fatalf("images = %d", r.Images)
	}
	if r.Time <= 0 || r.EnergyJ <= 0 {
		t.Fatalf("time=%v energy=%v", r.Time, r.EnergyJ)
	}
	if r.Switches != 0 {
		t.Fatalf("fixed controller switched %d times", r.Switches)
	}
	if r.EE() <= 0 || r.FPS() <= 0 || r.AvgPowerW() <= 0 {
		t.Fatal("derived metrics must be positive")
	}
	if math.Abs(r.AvgPowerW()*r.Time.Seconds()-r.EnergyJ) > 1e-9 {
		t.Fatal("P̄·t must equal E")
	}
}

func TestComputeBoundFasterAtHigherLevel(t *testing.T) {
	p := hw.TX2()
	g := models.VGG19() // heavily compute-bound
	lo := NewExecutor(p, &fixedCtl{level: 0}).RunTask(g, 2)
	hi := NewExecutor(p, &fixedCtl{level: p.NumGPULevels() - 1}).RunTask(g, 2)
	if hi.Time >= lo.Time {
		t.Fatalf("fmax run (%v) must be faster than fmin run (%v)", hi.Time, lo.Time)
	}
	if hi.AvgPowerW() <= lo.AvgPowerW() {
		t.Fatal("fmax run must draw more power")
	}
}

func TestEnergyMatchesSegmentCostAtFixedLevel(t *testing.T) {
	// With zero CPU work and a fixed level, task energy must equal the
	// closed-form segment cost.
	p := hw.TX2()
	p.CPUWorkPerImage = 0
	g := models.ResNet34()
	level := 8
	e := NewExecutor(p, &fixedCtl{level: level})
	r := e.RunTask(g, 1)
	_, segE := SegmentCost(p, g, 0, len(g.Layers)-1, p.GPUFreqsHz[level])
	// Allow for nanosecond quantization of per-op durations.
	if math.Abs(r.EnergyJ-segE)/segE > 1e-4 {
		t.Fatalf("executor energy %.6f J != segment cost %.6f J", r.EnergyJ, segE)
	}
}

func TestSegmentCostAdditive(t *testing.T) {
	p := hw.AGX()
	g := models.ResNet34()
	f := p.GPUFreqsHz[5]
	mid := len(g.Layers) / 2
	t1, e1 := SegmentCost(p, g, 0, mid, f)
	t2, e2 := SegmentCost(p, g, mid+1, len(g.Layers)-1, f)
	tAll, eAll := SegmentCost(p, g, 0, len(g.Layers)-1, f)
	if math.Abs((e1+e2-eAll)/eAll) > 1e-12 {
		t.Fatal("segment energy must be additive")
	}
	if d := (t1 + t2 - tAll); d < -time.Nanosecond || d > time.Nanosecond {
		t.Fatal("segment time must be additive")
	}
}

func TestOptimalSegmentLevelInterior(t *testing.T) {
	for _, p := range hw.Platforms() {
		g := models.ResNet152()
		best, energies := OptimalSegmentLevel(p, g, 0, len(g.Layers)-1)
		if len(energies) != p.NumGPULevels() {
			t.Fatalf("energies len = %d", len(energies))
		}
		if best == 0 || best == p.NumGPULevels()-1 {
			t.Fatalf("%s: best level %d at ladder edge", p.Name, best)
		}
		// Best minimizes the E·t^θ score over the ladder.
		score := func(lvl int) float64 {
			d, e := SegmentCost(p, g, 0, len(g.Layers)-1, p.GPUFreqsHz[lvl])
			return e * math.Pow(d.Seconds(), PerfWeight)
		}
		for i := range energies {
			if score(i) < score(best)-1e-12 {
				t.Fatalf("level %d score beats reported best %d", i, best)
			}
		}
		// The performance weight must place the target at or above the pure
		// energy optimum for a compute-heavy network.
		eBest := 0
		for i, e := range energies {
			if e < energies[eBest] {
				eBest = i
			}
		}
		if best < eBest {
			t.Fatalf("%s: θ-optimal level %d below energy-optimal %d", p.Name, best, eBest)
		}
	}
}

// windowCountCtl counts OnWindow calls to verify window ticking.
type windowCountCtl struct {
	fixedCtl
	windows int
	stats   []WindowStats
}

func (w *windowCountCtl) OnWindow(s WindowStats) {
	w.windows++
	w.stats = append(w.stats, s)
}

func TestWindowTicks(t *testing.T) {
	p := hw.TX2()
	ctl := &windowCountCtl{fixedCtl: fixedCtl{level: 6}}
	e := NewExecutor(p, ctl)
	e.WindowPeriod = 10 * time.Millisecond
	r := e.RunTask(models.ResNet34(), 5)
	expected := int(r.Time / e.WindowPeriod)
	if ctl.windows < expected-1 || ctl.windows > expected+1 {
		t.Fatalf("windows = %d, expected ~%d", ctl.windows, expected)
	}
	// During steady inference GPU busy fraction must be high.
	busy := 0.0
	for _, s := range ctl.stats {
		busy += s.GPUBusy
	}
	busy /= float64(len(ctl.stats))
	if busy < 0.7 {
		t.Fatalf("mean GPU busy = %.2f, want high during inference", busy)
	}
}

func TestIdleGapsAccrueEnergyNotImages(t *testing.T) {
	p := hw.TX2()
	g := models.AlexNet()
	tasks := []Task{{g, 2}, {g, 2}}
	noGap := NewExecutor(p, &fixedCtl{level: 6}).RunTaskFlow(tasks, 0)
	withGap := NewExecutor(p, &fixedCtl{level: 6}).RunTaskFlow(tasks, 200*time.Millisecond)
	if withGap.Images != noGap.Images {
		t.Fatal("gap must not change image count")
	}
	if withGap.Time <= noGap.Time {
		t.Fatal("gap must extend wall time")
	}
	if withGap.EnergyJ <= noGap.EnergyJ {
		t.Fatal("idling must cost energy")
	}
}

// switchingCtl toggles level every layer to exercise switch accounting.
type switchingCtl struct {
	fixedCtl
	flip bool
}

func (s *switchingCtl) BeforeLayer(*graph.Graph, int) {
	s.flip = !s.flip
	if s.flip {
		s.level = 3
	} else {
		s.level = 9
	}
}

func TestSwitchCostsAccrue(t *testing.T) {
	p := hw.TX2()
	g := models.AlexNet()
	stable := NewExecutor(p, &fixedCtl{level: 9}).RunTask(g, 3)
	thrash := NewExecutor(p, &switchingCtl{}).RunTask(g, 3)
	if thrash.Switches == 0 {
		t.Fatal("switching controller must record switches")
	}
	if thrash.Time <= stable.Time {
		t.Fatal("per-layer thrashing must cost time (switch latency)")
	}
}

func TestSamplesRecorded(t *testing.T) {
	p := hw.AGX()
	e := NewExecutor(p, &fixedCtl{level: 5})
	e.SensorPeriod = time.Millisecond
	r := e.RunTask(models.GoogLeNet(), 3)
	if len(r.Samples) == 0 {
		t.Fatal("no trace samples recorded")
	}
	want := p.GPUFreqsHz[5]
	for _, s := range r.Samples {
		if s.FreqHz != want {
			t.Fatalf("sample freq %g, want %g", s.FreqHz, want)
		}
		if s.PowerW <= 0 {
			t.Fatal("sample power must be positive")
		}
	}
}

func TestResultZeroSafety(t *testing.T) {
	var r Result
	if r.EE() != 0 || r.FPS() != 0 || r.AvgPowerW() != 0 {
		t.Fatal("zero-value Result metrics must be 0")
	}
}
