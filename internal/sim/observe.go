package sim

import (
	"fmt"
	"time"

	"powerlens/internal/obs"
)

// Executor instrumentation. When Executor.Obs is set, the run streams into
// the observability layer:
//
//   - metrics: windows, DVFS switches, images, energy, actuation retries and
//     watchdog re-asserts as counters; per-window busy ratio and power as
//     histograms — all labelled by controller name;
//   - spans: one "block" span per GPU-frequency residency segment, one
//     "actuation" span per level transition (covering retries), "decision"
//     instants at every governor window, and "fault" instants for injected
//     sensor/actuation faults.
//
// All emission sites are guarded by a single `e.Obs == nil` check, and
// nothing here feeds back into the simulation, so disabled-observability
// runs take the exact pre-instrumentation code path bit for bit.

// ratioBuckets covers [0,1] fractions (busy ratios).
var ratioBuckets = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// powerBuckets covers Jetson-class rail power in watts.
var powerBuckets = []float64{0.5, 1, 2, 4, 6, 8, 12, 16, 24, 32}

// execMetrics holds the executor's metric handles for one run.
type execMetrics struct {
	windows   obs.Counter
	switches  obs.Counter
	images    obs.Counter
	energy    obs.Counter
	retries   obs.Counter
	reasserts obs.Counter
	busy      obs.Histogram
	power     obs.Histogram
}

// obsReset installs the run's observability state: the simulated-time clock,
// the metric handles, the injector's counters, and the first residency
// segment.
func (e *Executor) obsReset() {
	if e.Obs == nil {
		return
	}
	e.Obs.SetClock(func() time.Duration { return e.sensor.Now() })
	m := e.Obs.Metrics
	e.mx = execMetrics{
		windows: m.Counter("sim_windows_total",
			"Governor sampling windows delivered by the executor.", "controller"),
		switches: m.Counter("sim_dvfs_switches_total",
			"GPU DVFS level transitions actuated (including faulty attempts).", "controller"),
		images: m.Counter("sim_images_total",
			"Inference images completed.", "controller"),
		energy: m.Counter("sim_energy_joules_total",
			"Exactly-integrated rail energy.", "controller"),
		retries: m.Counter("sim_actuation_retries_total",
			"Bounded-backoff retries of stuck DVFS transitions.", "controller"),
		reasserts: m.Counter("sim_watchdog_reasserts_total",
			"Stuck frequencies detected and re-asserted by the watchdog.", "controller"),
		busy: m.Histogram("sim_window_busy_ratio",
			"GPU busy fraction per governor window.", ratioBuckets, "controller"),
		power: m.Histogram("sim_window_power_watts",
			"Mean rail power per governor window.", powerBuckets, "controller"),
	}
	e.ctlName = e.Ctl.Name()
	e.segStart, e.segLevel = 0, e.gpuLevel
	if e.Faults != nil {
		e.Faults.SetObserver(e.Obs)
	}
}

// noteWindow records a delivered governor window and the post-decision state.
func (e *Executor) noteWindow(stats WindowStats) {
	e.mx.windows.Inc(e.ctlName)
	e.mx.busy.Observe(stats.GPUBusy, e.ctlName)
	e.mx.power.Observe(stats.AvgPowerW, e.ctlName)
	e.Obs.Mark("decision", e.ctlName, e.sensor.Now(), map[string]any{
		"gpu_level": e.gpuLevel,
		"busy":      stats.GPUBusy,
		"power_w":   stats.AvgPowerW,
	})
}

// noteSwitch closes the departing frequency-residency block span and records
// the actuation span [start, now], covering every retry attempt of a faulted
// transition.
func (e *Executor) noteSwitch(from, want int, start time.Duration, attempts, stuck, clamped int) {
	now := e.sensor.Now()
	e.flushBlockSpan(start)
	args := map[string]any{"from": from, "want": want, "applied": e.gpuLevel}
	if attempts > 1 {
		args["attempts"] = attempts
	}
	if stuck > 0 {
		args["stuck"] = stuck
	}
	if clamped > 0 {
		args["clamped"] = clamped
	}
	e.Obs.Span("actuation", "dvfs-switch", start, now-start, args)
	e.mx.switches.Add(float64(attempts), e.ctlName)
	e.segStart, e.segLevel = now, e.gpuLevel
}

// flushBlockSpan emits the residency span that ends at the given instant.
func (e *Executor) flushBlockSpan(end time.Duration) {
	if end <= e.segStart {
		return
	}
	f := e.Platform.GPUFreqsHz[e.segLevel]
	e.Obs.Span("block", fmt.Sprintf("%.0f MHz", f/1e6), e.segStart, end-e.segStart,
		map[string]any{"gpu_level": e.segLevel, "freq_mhz": f / 1e6})
}

// noteFault records an injected-fault instant on the trace.
func (e *Executor) noteFault(name string, args map[string]any) {
	e.Obs.Mark("fault", name, e.sensor.Now(), args)
}

// obsResult flushes the final residency block and the run totals.
func (e *Executor) obsResult(r Result) {
	if e.Obs == nil {
		return
	}
	e.flushBlockSpan(e.sensor.Now())
	e.mx.images.Add(float64(r.Images), e.ctlName)
	e.mx.energy.Add(r.EnergyJ, e.ctlName)
}
