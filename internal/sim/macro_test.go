package sim

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
	"time"

	"powerlens/internal/graph"
	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/obs/ledger"
)

// macroCtlT is a minimal MacroSteppable plan controller for macro tests: layers
// with ID >= splitAt run at hi, earlier layers at lo (two power blocks). Its
// per-layer level sequence is a pure function of the graph and (lo, hi,
// splitAt), which is exactly the MacroSteppable contract.
type macroCtlT struct {
	p       *hw.Platform
	lo, hi  int
	splitAt int
	inert   bool // MacroWindowInert: true for the plain plan, false for "guarded"
	level   int
}

func (c *macroCtlT) Name() string         { return "plan-test" }
func (c *macroCtlT) Reset(p *hw.Platform) { c.p = p; c.level = c.lo }
func (c *macroCtlT) GPULevel() int        { return c.level }
func (c *macroCtlT) CPULevel() int        { return 0 }
func (c *macroCtlT) OnWindow(WindowStats) {}
func (c *macroCtlT) BeforeLayer(_ *graph.Graph, layerID int) {
	if layerID >= c.splitAt {
		c.level = c.hi
	} else {
		c.level = c.lo
	}
}

func (c *macroCtlT) MacroPlanDigest(*graph.Graph) (uint64, bool) {
	h := uint64(14695981039346656037)
	for _, v := range []int{c.lo, c.hi, c.splitAt} {
		h = (h ^ uint64(v)) * 1099511628211
	}
	return h, true
}
func (c *macroCtlT) MacroWindowInert() bool { return c.inert }
func (c *macroCtlT) MacroAdvancePass(_ *graph.Graph, exitGPULevel int) {
	c.level = exitGPULevel
}

func (c *macroCtlT) BlockIndex(_ *graph.Graph, layerID int) int {
	if layerID >= c.splitAt {
		return 1
	}
	return 0
}

var _ MacroSteppable = (*macroCtlT)(nil)
var _ BlockResolver = (*macroCtlT)(nil)

// newMacroPair returns micro and macro executors in the same configuration
// (trace off; the macro one carries a fresh summary cache).
func newMacroPair(p *hw.Platform, inert bool) (micro, macro *Executor, cache *SummaryCache) {
	micro = NewExecutor(p, &macroCtlT{lo: 2, hi: 6, splitAt: 5, inert: inert})
	micro.SensorPeriod = 0
	macro = NewExecutor(p, &macroCtlT{lo: 2, hi: 6, splitAt: 5, inert: inert})
	macro.SensorPeriod = 0
	cache = NewSummaryCache()
	macro.Summaries = cache
	return micro, macro, cache
}

// TestMacroRunTaskMatchesMicro pins the core contract: a macro-stepped task is
// DeepEqual to the micro-stepped oracle — including the cold run that records
// the summaries — and repeat runs actually hit the cache.
func TestMacroRunTaskMatchesMicro(t *testing.T) {
	p := hw.TX2()
	g := models.AlexNet()
	micro, macro, cache := newMacroPair(p, true)

	want := micro.RunTask(g, 8)
	cold := macro.RunTask(g, 8)
	if !reflect.DeepEqual(want, cold) {
		t.Fatalf("cold macro run differs from micro:\nmicro %+v\nmacro %+v", want, cold)
	}
	st := cache.Stats()
	if st.Fills == 0 {
		t.Fatalf("cold run recorded no summaries: %+v", st)
	}
	if st.Hits == 0 {
		t.Fatalf("cold run never fast-forwarded (8 passes, %d fills): %+v", st.Fills, st)
	}

	warm := macro.RunTask(g, 8)
	if !sameResult(want, warm) {
		t.Fatalf("warm macro run differs from micro:\nmicro %+v\nmacro %+v", want, warm)
	}
	if st2 := cache.Stats(); st2.Fills != st.Fills {
		t.Fatalf("warm run re-recorded summaries: %+v -> %+v", st, st2)
	}
}

// TestMacroBatchedPassesMatchMicro covers the batched pass shape (batch > 1,
// images rounded up to a batch multiple).
func TestMacroBatchedPassesMatchMicro(t *testing.T) {
	p := hw.TX2()
	g := models.MustBuild("mobilenet_v3")
	micro, macro, _ := newMacroPair(p, true)
	micro.Batch, macro.Batch = 4, 4

	want := micro.RunTask(g, 10)
	got := macro.RunTask(g, 10)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("batched macro differs:\nmicro %+v\nmacro %+v", want, got)
	}
	if want.Images != 12 {
		t.Fatalf("batch rounding changed: %d images, want 12", want.Images)
	}
}

// TestMacroFlowArrivalsMatchesMicro pins equality across a multi-model task
// flow with idle gaps, in both window modes. The windowed variant uses a
// period long enough that most passes fit inside a window, so the fast path
// is genuinely exercised (asserted via cache hits).
func TestMacroFlowArrivalsMatchesMicro(t *testing.T) {
	p := hw.TX2()
	tasks := []Task{
		{Graph: models.AlexNet(), Images: 5},
		{Graph: models.MustBuild("mobilenet_v3"), Images: 4},
		{Graph: models.AlexNet(), Images: 3},
	}
	gaps := []time.Duration{20 * time.Millisecond, 70 * time.Millisecond}

	for _, tc := range []struct {
		name  string
		inert bool
	}{{"inert", true}, {"windowed", false}} {
		t.Run(tc.name, func(t *testing.T) {
			micro, macro, cache := newMacroPair(p, tc.inert)
			if !tc.inert {
				micro.WindowPeriod = 400 * time.Millisecond
				macro.WindowPeriod = 400 * time.Millisecond
			}
			want := micro.RunTaskFlowArrivals(tasks, gaps)
			got := macro.RunTaskFlowArrivals(tasks, gaps)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("flow differs:\nmicro %+v\nmacro %+v", want, got)
			}
			if st := cache.Stats(); st.Hits == 0 {
				t.Fatalf("flow never fast-forwarded: %+v", st)
			}
		})
	}
}

// TestMacroAttributionByteIdentical runs micro and macro with a ledger and
// per-level tracking attached and requires byte-identical ledger exports and
// DeepEqual results (LevelEnergyJ/LevelTime float chains included).
func TestMacroAttributionByteIdentical(t *testing.T) {
	p := hw.TX2()
	tasks := []Task{
		{Graph: models.AlexNet(), Images: 6},
		{Graph: models.MustBuild("mobilenet_v3"), Images: 4},
	}
	gaps := []time.Duration{30 * time.Millisecond}

	micro, macro, cache := newMacroPair(p, true)
	micro.TrackLevels, macro.TrackLevels = true, true
	lMicro, lMacro := ledger.New(), ledger.New()
	micro.Ledger, macro.Ledger = lMicro, lMacro

	want := micro.RunTaskFlowArrivals(tasks, gaps)
	got := macro.RunTaskFlowArrivals(tasks, gaps)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("attributed flow differs:\nmicro %+v\nmacro %+v", want, got)
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Fatalf("attributed flow never fast-forwarded: %+v", st)
	}

	var a, b bytes.Buffer
	if err := lMicro.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := lMacro.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("ledger exports differ:\nmicro %s\nmacro %s", a.String(), b.String())
	}
}

// TestMacroWarmReplayZeroAlloc pins the serving property the cache exists
// for: with summaries warm, whole-task fast-forward performs no heap
// allocation.
func TestMacroWarmReplayZeroAlloc(t *testing.T) {
	p := hw.TX2()
	g := models.AlexNet()
	e := NewExecutor(p, &macroCtlT{lo: 2, hi: 6, splitAt: 5, inert: true})
	e.SensorPeriod = 0
	e.Summaries = NewSummaryCache()
	e.RunTask(g, 4) // warm: summaries, sensor, cost buffer

	allocs := testing.AllocsPerRun(10, func() { e.RunTask(g, 4) })
	if allocs != 0 {
		t.Fatalf("warm macro RunTask allocated %.0f times per run, want 0", allocs)
	}
}

// TestMacroDemotions pins the demotion set: attachments that observe or
// perturb individual steps must keep the cache untouched while results stay
// equal to the micro oracle.
func TestMacroDemotions(t *testing.T) {
	p := hw.TX2()
	g := models.AlexNet()
	faults := hw.FaultConfig{Seed: 7, SensorNoiseFrac: 0.2, StuckProb: 0.3}

	for _, tc := range []struct {
		name string
		set  func(e *Executor)
	}{
		{"sensor-trace", func(e *Executor) { e.SensorPeriod = 10 * time.Millisecond }},
		{"faults", func(e *Executor) { e.Faults = hw.NewInjector(faults) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			micro := NewExecutor(p, &macroCtlT{lo: 2, hi: 6, splitAt: 5, inert: true})
			micro.SensorPeriod = 0
			tc.set(micro)
			macro := NewExecutor(p, &macroCtlT{lo: 2, hi: 6, splitAt: 5, inert: true})
			macro.SensorPeriod = 0
			tc.set(macro)
			cache := NewSummaryCache()
			macro.Summaries = cache

			want := micro.RunTask(g, 4)
			got := macro.RunTask(g, 4)
			if !sameResult(want, got) {
				t.Fatalf("demoted run differs:\nmicro %+v\nmacro %+v", want, got)
			}
			if n := cache.Len(); n != 0 {
				t.Fatalf("demoted run cached %d summaries, want 0", n)
			}
			if st := cache.Stats(); st.Hits != 0 || st.Misses != 0 {
				t.Fatalf("demoted run consulted the cache: %+v", st)
			}
		})
	}
}

// TestMacroSingleFlightFill hammers one cache from many executors under the
// race detector: fills must be single-flight (one per key) and every result
// must equal the micro oracle.
func TestMacroSingleFlightFill(t *testing.T) {
	p := hw.TX2()
	g := models.AlexNet()
	ref := NewExecutor(p, &macroCtlT{lo: 2, hi: 6, splitAt: 5, inert: true})
	ref.SensorPeriod = 0
	want := ref.RunTask(g, 6)

	cache := NewSummaryCache()
	const workers = 8
	results := make([]Result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e := NewExecutor(p, &macroCtlT{lo: 2, hi: 6, splitAt: 5, inert: true})
			e.SensorPeriod = 0
			e.Summaries = cache
			results[w] = e.RunTask(g, 6)
		}(w)
	}
	wg.Wait()
	for w := range results {
		if !reflect.DeepEqual(want, results[w]) {
			t.Fatalf("worker %d differs from micro:\nmicro %+v\nmacro %+v", w, want, results[w])
		}
	}
	st := cache.Stats()
	if int(st.Fills) != cache.Len() {
		t.Fatalf("fills (%d) != committed summaries (%d): double fill slipped through", st.Fills, cache.Len())
	}
}

// TestMacroTaskEndsOnWindowBoundary pins the windowed boundary comparison: a
// cached pass whose wall time lands exactly on the window boundary must
// demote (the tick has to fire at that exact instant). The schedule is
// constant-level so every pass has identical wall time; the window period is
// set to exactly two passes.
func TestMacroTaskEndsOnWindowBoundary(t *testing.T) {
	p := hw.TX2()
	g := models.AlexNet()
	newCtl := func() *macroCtlT { return &macroCtlT{lo: 4, hi: 4, splitAt: 0, inert: false} }

	probe := NewExecutor(p, newCtl())
	probe.SensorPeriod = 0
	wall := probe.RunTask(g, 1).Time
	if wall <= 0 {
		t.Fatal("probe pass has zero wall time")
	}

	micro := NewExecutor(p, newCtl())
	micro.SensorPeriod = 0
	micro.WindowPeriod = 2 * wall
	macro := NewExecutor(p, newCtl())
	macro.SensorPeriod = 0
	macro.WindowPeriod = 2 * wall
	cache := NewSummaryCache()
	macro.Summaries = cache

	want := micro.RunTask(g, 6)
	got := macro.RunTask(g, 6)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("boundary-aligned task differs:\nmicro %+v\nmacro %+v", want, got)
	}
	// Pass 1 records ([0, wall) fits); every even pass ends exactly on the
	// boundary and must have demoted rather than fast-forwarded over the tick.
	if st := cache.Stats(); st.Demoted == 0 {
		t.Fatalf("no boundary demotion on exactly-aligned passes: %+v", st)
	}
}

// TestMacroIdleSpansMultipleWindows pins idle-gap handling: a gap crossing
// several window boundaries must tick identically under macro-stepping (idle
// itself never fast-forwards; the surrounding passes do).
func TestMacroIdleSpansMultipleWindows(t *testing.T) {
	p := hw.TX2()
	tasks := []Task{
		{Graph: models.AlexNet(), Images: 3},
		{Graph: models.AlexNet(), Images: 3},
	}
	for _, tc := range []struct {
		name  string
		inert bool
	}{{"inert", true}, {"windowed", false}} {
		t.Run(tc.name, func(t *testing.T) {
			micro, macro, _ := newMacroPair(p, tc.inert)
			micro.WindowPeriod = 40 * time.Millisecond
			macro.WindowPeriod = 40 * time.Millisecond
			gaps := []time.Duration{100 * time.Millisecond} // 2.5 windows
			want := micro.RunTaskFlowArrivals(tasks, gaps)
			got := macro.RunTaskFlowArrivals(tasks, gaps)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("idle-spanning flow differs:\nmicro %+v\nmacro %+v", want, got)
			}
		})
	}
}
