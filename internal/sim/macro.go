// Macro-stepping: analytic task fast-forward for cluster-scale dispatch.
//
// A PowerLens-style plan controller makes one inference pass a pure function
// of (graph, compiled plan, batch, entry DVFS levels): the per-layer level
// sequence is preset, so the energy/time/ops/level-occupancy deltas of the
// pass are fully deterministic. Micro-stepping one representative pass once
// and caching its advance events as a FlowSummary lets every later identical
// pass be applied analytically — clock, power-sensor accumulators, ledger
// cells and pass counters move in one shot instead of per op.
//
// The fast path is held to a bit-identity contract: a macro-stepped run must
// be DeepEqual to the micro-stepped oracle, including every float. Floating
// point addition is not associative, so whole-pass deltas cannot be folded
// into single adds; instead the summary stores the exact per-advance
// increments (powerW×dt products, quantized ledger nanojoules) and replays
// them in order against the same accumulators. Integer state (durations, op
// counts) is associative and is bulk-added. See DESIGN.md §16 for the
// determinism proof sketch and the demotion rules.
package sim

import (
	"sync"
	"time"

	"powerlens/internal/graph"
	"powerlens/internal/hw"
	"powerlens/internal/obs/ledger"
)

// MacroSteppable is implemented by controllers whose passes the executor may
// fast-forward. The contract: BeforeLayer is the only hook that changes the
// requested levels, and the level sequence over a pass is a pure function of
// (graph, plan digest, entry levels) — true of the plan governors, never of
// the reactive baselines.
type MacroSteppable interface {
	Controller

	// MacroPlanDigest returns a stable digest of the schedule the controller
	// would apply to g — equal digests must mean identical per-layer level
	// sequences from any given entry level. ok=false demotes the executor to
	// micro-stepping (e.g. a guard serving fallback decisions).
	MacroPlanDigest(g *graph.Graph) (digest uint64, ok bool)

	// MacroWindowInert reports that OnWindow is a pure no-op and the level
	// requested between instrumentation points never changes at a window
	// tick. The executor then skips window segmentation entirely, making
	// pass event sequences independent of their window offset — whole tasks
	// fast-forward no matter how their passes straddle window boundaries.
	MacroWindowInert() bool

	// MacroAdvancePass folds one replayed pass into controller state,
	// leaving it exactly where micro-stepping the pass would have: plan
	// position warm, current level at the pass's exit level.
	MacroAdvancePass(g *graph.Graph, exitGPULevel int)
}

// summaryKey addresses one cached pass. Platform is compared by pointer
// (cost tables are part of the key's meaning); graph and plan are digests so
// rebuilt-but-identical graphs and plans share entries; the entry levels pin
// the switch sequence and the CPU-side costs.
type summaryKey struct {
	platform *hw.Platform
	graph    uint64
	plan     uint64
	batch    int
	entryGPU int
	cpu      int
}

// macroEvent is one recorded advance: the exact increments micro-stepping
// adds to the float accumulators (precomputed products of the same operands,
// hence the same bits) plus the integer state replay needs.
type macroEvent struct {
	dur     time.Duration
	eInc    float64 // powerW × dt — energy/winEnergy/levelEnergy increment
	cInc    float64 // computeUt × dt — winCompute increment (0 when GPU idle)
	level   int32   // GPU level during the event
	gpuBusy bool
	cpuBusy bool
}

// cellDelta is one ledger cell's aggregated pass delta. Cell state is
// integral (ops, duration, per-event-quantized nanojoules), so aggregation
// is exact: applying the delta equals replaying the per-layer events.
type cellDelta struct {
	block    int32
	level    int32
	ops      uint64
	busy     time.Duration
	energyNJ uint64
}

// FlowSummary is one micro-stepped representative pass, replayable against
// any executor state that matches its key (and, in windowed mode, leaves the
// pass strictly inside the current window).
type FlowSummary struct {
	wall       time.Duration // whole-pass wall time
	gpuBusy    time.Duration // GPU busy total (QoS verdict + window busy delta)
	cpuBusy    time.Duration // host busy total (window busy delta)
	exitGPU    int           // applied GPU level after the pass
	switches   int           // DVFS switches paid during the pass
	images     int           // images per pass (the batch size)
	lastPowerW float64       // rail power over the final event (sensor carry)
	events     []macroEvent
	cells      []cellDelta
}

// Wall returns the pass's wall time (exported for diagnostics).
func (s *FlowSummary) Wall() time.Duration { return s.wall }

// SummaryCacheStats reports cache effectiveness counters.
type SummaryCacheStats struct {
	Hits    uint64 // passes fast-forwarded from a cached summary
	Misses  uint64 // lookups that found no summary (micro-stepped)
	Fills   uint64 // summaries recorded and committed
	Aborts  uint64 // recordings abandoned (a window tick split the pass)
	Demoted uint64 // boundary demotions of an otherwise cached pass
}

// SummaryCache is the shared per-(platform, graph, plan, batch, entry-level)
// FlowSummary store. Safe for concurrent use: cluster runs hand one cache to
// every node executor and every dry-run prober. Fills are single-flight —
// the first executor to miss a key records it, concurrent missers just
// micro-step — so a thundering herd never records the same pass twice.
type SummaryCache struct {
	mu      sync.Mutex
	entries map[summaryKey]*FlowSummary
	filling map[summaryKey]bool
	stats   SummaryCacheStats
}

// NewSummaryCache returns an empty cache.
func NewSummaryCache() *SummaryCache {
	return &SummaryCache{
		entries: map[summaryKey]*FlowSummary{},
		filling: map[summaryKey]bool{},
	}
}

// lookup returns the committed summary for k, or nil. Counts a hit or miss.
func (c *SummaryCache) lookup(k summaryKey) *FlowSummary {
	c.mu.Lock()
	s := c.entries[k]
	if s != nil {
		c.stats.Hits++
	} else {
		c.stats.Misses++
	}
	c.mu.Unlock()
	return s
}

// beginFill claims k for recording. False when a summary already exists or
// another executor is mid-recording (single-flight).
func (c *SummaryCache) beginFill(k summaryKey) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries[k] != nil || c.filling[k] {
		return false
	}
	c.filling[k] = true
	return true
}

// commit publishes a recorded summary and releases the fill claim.
func (c *SummaryCache) commit(k summaryKey, s *FlowSummary) {
	c.mu.Lock()
	delete(c.filling, k)
	c.entries[k] = s
	c.stats.Fills++
	c.mu.Unlock()
}

// abortFill releases the claim without publishing (the recording pass was
// split by a window tick); a later pass may try again.
func (c *SummaryCache) abortFill(k summaryKey) {
	c.mu.Lock()
	delete(c.filling, k)
	c.stats.Aborts++
	c.mu.Unlock()
}

func (c *SummaryCache) noteDemoted() {
	c.mu.Lock()
	c.stats.Demoted++
	c.mu.Unlock()
}

// Stats returns a snapshot of the cache's effectiveness counters.
func (c *SummaryCache) Stats() SummaryCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of committed summaries.
func (c *SummaryCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// macroRecorder captures one representative pass while it micro-steps.
type macroRecorder struct {
	key        summaryKey
	events     []macroEvent
	cells      []cellDelta
	blocks     BlockResolver // pass-level block mapping (plan-dependent, nil ok)
	startNow   time.Duration
	switches0  int
	cpuBusy    time.Duration
	lastPowerW float64
}

// note records one advance call (the executor guarantees no window split can
// occur on a recorded pass — a tick aborts the recording instead).
func (r *macroRecorder) note(d time.Duration, powerW, computeUt float64, level int, gpuBusy, cpuBusy bool) {
	sec := d.Seconds()
	r.events = append(r.events, macroEvent{
		dur:     d,
		eInc:    powerW * sec,
		cInc:    computeUt * sec,
		level:   int32(level),
		gpuBusy: gpuBusy,
		cpuBusy: cpuBusy,
	})
	if cpuBusy {
		r.cpuBusy += d
	}
	r.lastPowerW = powerW
}

// noteSeg aggregates one executed layer into the pass's cell deltas,
// quantizing energy per event exactly as ledger.RecordSegment would.
func (r *macroRecorder) noteSeg(g *graph.Graph, layerID int, busy time.Duration, energyJ float64, level int) {
	block := 0
	if r.blocks != nil {
		block = r.blocks.BlockIndex(g, layerID)
	}
	b, l := int32(block), int32(level)
	for i := range r.cells {
		c := &r.cells[i]
		if c.block == b && c.level == l {
			c.ops++
			c.busy += busy
			c.energyNJ += ledger.Quantize(energyJ)
			return
		}
	}
	r.cells = append(r.cells, cellDelta{
		block: b, level: l, ops: 1, busy: busy, energyNJ: ledger.Quantize(energyJ),
	})
}

// macroReset derives the run's macro/window modes from the attached sinks.
// Called from reset after thermal state is up.
func (e *Executor) macroReset() {
	e.rec = nil
	e.macroCtl, _ = e.Ctl.(MacroSteppable)
	// Window-inert mode: with a plan controller and nothing observing the
	// window structure, window segmentation is pure bookkeeping — OnWindow
	// no-ops and applyLevel at a tick is a no-op by the MacroSteppable
	// contract — so the executor skips it. This makes pass event sequences
	// independent of their offset inside a window, which is what lets whole
	// tasks (with passes longer than a window) fast-forward.
	e.windowInert = e.macroCtl != nil && e.macroCtl.MacroWindowInert() &&
		e.Obs == nil && e.Faults == nil && e.thermal == nil
	// Fast-forward eligibility (the demotion set): anything that observes or
	// perturbs individual steps forces micro-stepping — fault injection
	// (every Transition/SensorWindow call draws from the seeded stream),
	// per-switch/per-window observability spans, per-apply audit records,
	// thermal integration, and the power-sample trace.
	e.macroOK = e.Summaries != nil && e.macroCtl != nil &&
		e.Obs == nil && e.Faults == nil && e.thermal == nil &&
		e.Audit == nil && e.SensorPeriod <= 0
}

// fastForward applies one whole pass analytically if an exact summary is
// cached for the executor's current state. On a miss it claims the key and
// records the micro-stepped pass that follows. Returns false to micro-step.
func (e *Executor) fastForward(g *graph.Graph, batch int) bool {
	digest, ok := e.macroCtl.MacroPlanDigest(g)
	if !ok {
		return false // non-nominal controller state (e.g. guard on fallback)
	}
	e.opCosts(g, batch) // ensure costDigest (key) and costRef (QoS baseline)
	k := summaryKey{
		platform: e.Platform,
		graph:    e.costDigest,
		plan:     digest,
		batch:    batch,
		entryGPU: e.gpuLevel,
		cpu:      clampCPU(e.Platform, e.Ctl.CPULevel()),
	}
	s := e.Summaries.lookup(k)
	if s == nil {
		if e.Summaries.beginFill(k) {
			br, _ := e.Ctl.(BlockResolver)
			e.rec = &macroRecorder{
				key:       k,
				blocks:    br,
				startNow:  e.sensor.Now(),
				switches0: e.switches,
			}
		}
		return false
	}
	// Windowed mode (e.g. a guard wrapping the plan): a pass that would
	// reach or cross the window boundary must micro-step so the tick fires
	// at the exact simulated instant.
	if !e.windowInert && e.winElapsed+s.wall >= e.WindowPeriod {
		e.Summaries.noteDemoted()
		return false
	}
	e.applySummary(g, s)
	return true
}

// abortRecording abandons an in-flight recording (a window tick fired inside
// the pass, so its events would not be offset-independent).
func (e *Executor) abortRecording() {
	e.Summaries.abortFill(e.rec.key)
	e.rec = nil
}

// finishRecording publishes the just-micro-stepped pass as a summary.
func (e *Executor) finishRecording(batch int, gpuBusy time.Duration) {
	r := e.rec
	e.rec = nil
	e.Summaries.commit(r.key, &FlowSummary{
		wall:       e.sensor.Now() - r.startNow,
		gpuBusy:    gpuBusy,
		cpuBusy:    r.cpuBusy,
		exitGPU:    e.gpuLevel,
		switches:   e.switches - r.switches0,
		images:     batch,
		lastPowerW: r.lastPowerW,
		events:     r.events,
		cells:      r.cells,
	})
}

// applySummary replays one cached pass against the executor's accumulators.
// Float chains (sensor energy, window energy/compute, per-level energy) are
// replayed per event with the exact increments micro-stepping would add —
// bit-identical by construction; integer state is bulk-added.
func (e *Executor) applySummary(g *graph.Graph, s *FlowSummary) {
	passStart := e.sensor.Now()
	passEnergy := e.sensor.EnergyJ()

	en := passEnergy
	if e.windowInert && !e.attrib {
		// Hot serving shape (plan controller, no attribution): the replay is
		// a single float-accumulation sweep.
		for i := range s.events {
			en += s.events[i].eInc
		}
	} else {
		for i := range s.events {
			ev := &s.events[i]
			en += ev.eInc
			if !e.windowInert {
				e.winEnergy += ev.eInc
				e.winCompute += ev.cInc
			}
			if e.attrib {
				e.levelEnergy[ev.level] += ev.eInc
				e.levelTime[ev.level] += ev.dur
			}
		}
	}
	if !e.windowInert {
		e.winElapsed += s.wall
		e.winGPUBusy += s.gpuBusy
		e.winCPUBusy += s.cpuBusy
	}
	e.sensor.FastForward(s.wall, en, s.lastPowerW, e.Platform.GPUFreqsHz[s.exitGPU])

	if e.Ledger != nil {
		for i := range s.cells {
			c := &s.cells[i]
			e.Ledger.AddSegments(
				ledger.Key{Model: e.costDigest, Block: c.block, Level: c.level},
				g.Name, c.ops, c.busy, c.energyNJ)
		}
	}

	e.gpuLevel = s.exitGPU
	e.wantLevel = s.exitGPU
	e.switches += s.switches
	e.images += s.images
	e.macroCtl.MacroAdvancePass(g, s.exitGPU)
	e.finishPass(g, passStart, passEnergy, s.gpuBusy)
}
