package sim

import (
	"math"
	"math/rand"
	"time"
)

// Task-arrival processes for task-flow experiments. The paper's §3.2.2 flow
// uses back-to-back tasks; real edge deployments see bursty arrivals, which
// is where reactive governors pay their idle-then-lag penalty most.

// PoissonArrivals draws n inter-arrival gaps from an exponential
// distribution with the given mean (a Poisson arrival process), seeded for
// reproducibility. The first gap applies before the second task (the flow
// starts immediately).
func PoissonArrivals(n int, mean time.Duration, seed int64) []time.Duration {
	rng := rand.New(rand.NewSource(seed))
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = time.Duration(rng.ExpFloat64() * float64(mean))
	}
	return out
}

// RunTaskFlowArrivals simulates tasks with per-task idle gaps (gaps[i]
// precedes tasks[i+1]; len(gaps) >= len(tasks)-1). Each task still waits for
// the previous one to finish — gaps model think-time between submissions,
// not a concurrent queue.
func (e *Executor) RunTaskFlowArrivals(tasks []Task, gaps []time.Duration) Result {
	e.reset()
	for i, t := range tasks {
		if i > 0 && i-1 < len(gaps) && gaps[i-1] > 0 {
			e.idle(gaps[i-1])
		}
		e.runImages(t.Graph, t.Images)
	}
	return e.result()
}

// MeanGap returns the mean of a gap slice (0 for empty).
func MeanGap(gaps []time.Duration) time.Duration {
	if len(gaps) == 0 {
		return 0
	}
	var sum float64
	for _, g := range gaps {
		sum += g.Seconds()
	}
	return time.Duration(math.Round(sum / float64(len(gaps)) * 1e9))
}
