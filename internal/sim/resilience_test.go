package sim

import (
	"reflect"
	"testing"
	"time"

	"powerlens/internal/graph"
	"powerlens/internal/hw"
	"powerlens/internal/models"
)

func testGraph() *graph.Graph { return models.AlexNet() }

// testFaults is a moderately hostile schedule used across resilience tests.
func testFaults(seed int64) hw.FaultConfig {
	return hw.FaultConfig{
		Seed:              seed,
		SensorDropoutProb: 0.10,
		SensorNoiseFrac:   0.15,
		StuckProb:         0.15,
		ClampProb:         0.05,
		DelayProb:         0.25,
		DelayLatency:      2 * time.Millisecond,
	}
}

// switcher forces a level change on every window so actuation faults get
// plenty of chances to fire.
type switcher struct {
	platform *hw.Platform
	level    int
}

func (s *switcher) Name() string { return "switcher" }
func (s *switcher) Reset(p *hw.Platform) {
	s.platform = p
	s.level = 0
}
func (s *switcher) GPULevel() int                 { return s.level }
func (s *switcher) CPULevel() int                 { return len(s.platform.CPUFreqsHz) - 1 }
func (s *switcher) BeforeLayer(*graph.Graph, int) {}
func (s *switcher) OnWindow(WindowStats) {
	if s.level == 0 {
		s.level = s.platform.NumGPULevels() - 1
	} else {
		s.level = 0
	}
}

func TestFaultedRunCompletesAndCounts(t *testing.T) {
	p := hw.TX2()
	g := testGraph()
	e := NewExecutor(p, &switcher{})
	e.Faults = hw.NewInjector(testFaults(11))
	r := e.RunTask(g, 60)
	if r.Images != 60 {
		t.Fatalf("images = %d, want 60", r.Images)
	}
	if r.EnergyJ <= 0 || r.Time <= 0 {
		t.Fatalf("bad aggregates: %+v", r)
	}
	if r.Faults.Total() == 0 {
		t.Fatalf("expected injected faults, got %+v", r.Faults)
	}
	if r.Faults.StuckTransitions == 0 {
		t.Fatalf("expected stuck transitions under StuckProb=0.15: %+v", r.Faults)
	}
	if r.Faults.ActuationRetries == 0 {
		t.Fatalf("expected bounded-backoff retries: %+v", r.Faults)
	}
}

func TestWatchdogReassertsStuckFrequency(t *testing.T) {
	p := hw.TX2()
	g := testGraph()
	e := NewExecutor(p, &switcher{})
	// Every transition sticks and retries are bounded, so the watchdog must
	// repeatedly detect the mismatch and re-assert.
	e.Faults = hw.NewInjector(hw.FaultConfig{Seed: 5, StuckProb: 1})
	e.MaxActuationRetries = 1
	r := e.RunTask(g, 40)
	if r.Faults.WatchdogReasserts == 0 {
		t.Fatalf("watchdog never fired: %+v", r.Faults)
	}
	if r.Faults.StuckTransitions == 0 {
		t.Fatalf("no stuck transitions recorded: %+v", r.Faults)
	}
}

func TestRetryRecoversTransientSticks(t *testing.T) {
	p := hw.TX2()
	g := testGraph()
	e := NewExecutor(p, &switcher{})
	e.Faults = hw.NewInjector(hw.FaultConfig{Seed: 6, StuckProb: 0.5})
	r := e.RunTask(g, 40)
	// With p=0.5 and 2 retries, the vast majority of requested switches must
	// eventually land; retries must be doing work.
	if r.Faults.ActuationRetries == 0 {
		t.Fatalf("no retries at StuckProb=0.5: %+v", r.Faults)
	}
	if r.Switches <= r.Faults.StuckTransitions {
		t.Fatalf("switch attempts %d should exceed stuck count %d", r.Switches, r.Faults.StuckTransitions)
	}
}

func TestFaultedRunDeterministic(t *testing.T) {
	p := hw.AGX()
	g := testGraph()
	run := func() Result {
		e := NewExecutor(p, &switcher{})
		e.Faults = hw.NewInjector(testFaults(21))
		return e.RunTask(g, 50)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same fault seed must reproduce byte-identical results:\n%+v\n%+v", a, b)
	}
}

func TestNilFaultsMatchesZeroSchedule(t *testing.T) {
	// hw.NewInjector on a zero config returns nil, so a zero fault schedule
	// provably runs the legacy executor path.
	if hw.NewInjector(hw.FaultConfig{}) != nil {
		t.Fatal("zero schedule must map to a nil injector")
	}
	p := hw.TX2()
	g := testGraph()
	e1 := NewExecutor(p, &switcher{})
	r1 := e1.RunTask(g, 30)
	e2 := NewExecutor(p, &switcher{})
	e2.Faults = hw.NewInjector(hw.FaultConfig{})
	r2 := e2.RunTask(g, 30)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("zero fault schedule must be bit-identical to fault-free run")
	}
	if r1.Faults != (hw.FaultStats{}) {
		t.Fatalf("fault-free run reported faults: %+v", r1.Faults)
	}
}

func TestFaultedEnergyStaysClose(t *testing.T) {
	// Faults corrupt observations and actuation, not physics: a static
	// governor's energy efficiency under the standard schedule must stay
	// within 10% of its fault-free run (the acceptance bound the guarded
	// PowerLens run is also held to, checked end-to-end in experiments).
	p := hw.TX2()
	g := testGraph()
	clean := NewExecutor(p, &switcher{}).RunTask(g, 60)
	e := NewExecutor(p, &switcher{})
	e.Faults = hw.NewInjector(testFaults(31))
	faulty := e.RunTask(g, 60)
	ratio := faulty.EE() / clean.EE()
	if ratio < 0.90 || ratio > 1.10 {
		t.Fatalf("faulted EE ratio %.3f outside ±10%% (clean %.4f, faulty %.4f)",
			ratio, clean.EE(), faulty.EE())
	}
}
