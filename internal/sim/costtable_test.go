package sim

import (
	"math/rand"
	"testing"

	"powerlens/internal/hw"
	"powerlens/internal/models"
)

// The cost table must be indistinguishable from the uncached path: same
// times, same energies, same optimal levels, bit for bit. The dataset
// goldens depend on it.
func TestCostTableMatchesSegmentCost(t *testing.T) {
	for _, p := range hw.Platforms() {
		for _, name := range []string{"resnet18", "vgg16", "densenet201"} {
			g := models.MustBuild(name)
			ct := NewCostTable(p, g)
			n := len(g.Layers) - 1
			rng := rand.New(rand.NewSource(7))
			segs := [][2]int{{0, n}, {0, 0}, {n, n}}
			for i := 0; i < 25; i++ {
				a, b := rng.Intn(n+1), rng.Intn(n+1)
				if a > b {
					a, b = b, a
				}
				segs = append(segs, [2]int{a, b})
			}
			for _, s := range segs {
				for lvl, f := range p.GPUFreqsHz {
					wantT, wantE := SegmentCost(p, g, s[0], s[1], f)
					gotT, gotE := ct.SegmentCost(s[0], s[1], lvl)
					if gotT != wantT || gotE != wantE {
						t.Fatalf("%s/%s seg %v lvl %d: cached (%v, %v) != direct (%v, %v)",
							p.Name, name, s, lvl, gotT, gotE, wantT, wantE)
					}
					// Second query must come from the memo and stay identical.
					hits := ct.Hits
					gotT2, gotE2 := ct.SegmentCost(s[0], s[1], lvl)
					if gotT2 != wantT || gotE2 != wantE {
						t.Fatalf("%s/%s seg %v lvl %d: memo hit changed result", p.Name, name, s, lvl)
					}
					if ct.Hits != hits+1 {
						t.Fatalf("%s/%s seg %v lvl %d: repeat query missed the memo", p.Name, name, s, lvl)
					}
				}
				wantBest, wantEs := OptimalSegmentLevel(p, g, s[0], s[1])
				gotBest, gotEs := ct.OptimalSegmentLevel(s[0], s[1])
				if gotBest != wantBest {
					t.Fatalf("%s/%s seg %v: cached best %d != direct %d", p.Name, name, s, gotBest, wantBest)
				}
				for i := range wantEs {
					if gotEs[i] != wantEs[i] {
						t.Fatalf("%s/%s seg %v lvl %d: cached energy %v != direct %v",
							p.Name, name, s, i, gotEs[i], wantEs[i])
					}
				}
			}
			if ct.Misses == 0 || ct.Hits == 0 {
				t.Fatalf("%s/%s: expected both hits and misses, got %d/%d", p.Name, name, ct.Hits, ct.Misses)
			}
		}
	}
}

func TestCostTablePlatform(t *testing.T) {
	p := hw.TX2()
	ct := NewCostTable(p, models.MustBuild("resnet18"))
	if ct.Platform() != p {
		t.Fatal("Platform() did not return the construction platform")
	}
}
