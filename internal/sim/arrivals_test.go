package sim

import (
	"math"
	"testing"
	"time"

	"powerlens/internal/hw"
	"powerlens/internal/models"
)

func TestPoissonArrivalsStatistics(t *testing.T) {
	mean := 200 * time.Millisecond
	gaps := PoissonArrivals(5000, mean, 42)
	if len(gaps) != 5000 {
		t.Fatalf("n = %d", len(gaps))
	}
	got := MeanGap(gaps)
	if math.Abs(got.Seconds()-mean.Seconds()) > 0.05*mean.Seconds() {
		t.Fatalf("sample mean %v too far from %v", got, mean)
	}
	for _, g := range gaps {
		if g < 0 {
			t.Fatal("negative gap")
		}
	}
}

func TestPoissonArrivalsDeterministic(t *testing.T) {
	a := PoissonArrivals(10, time.Second, 7)
	b := PoissonArrivals(10, time.Second, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the same gaps")
		}
	}
	c := PoissonArrivals(10, time.Second, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestRunTaskFlowArrivals(t *testing.T) {
	p := hw.TX2()
	g := models.AlexNet()
	tasks := []Task{{g, 2}, {g, 2}, {g, 2}}
	gaps := []time.Duration{100 * time.Millisecond, 50 * time.Millisecond}

	r := NewExecutor(p, &fixedCtl{level: 6}).RunTaskFlowArrivals(tasks, gaps)
	noGaps := NewExecutor(p, &fixedCtl{level: 6}).RunTaskFlowArrivals(tasks, nil)

	if r.Images != 6 || noGaps.Images != 6 {
		t.Fatalf("images: %d / %d", r.Images, noGaps.Images)
	}
	wantDelta := 150 * time.Millisecond
	gotDelta := r.Time - noGaps.Time
	if gotDelta < wantDelta-time.Millisecond || gotDelta > wantDelta+time.Millisecond {
		t.Fatalf("gap time delta = %v, want ~%v", gotDelta, wantDelta)
	}
}

func TestMeanGapEmpty(t *testing.T) {
	if MeanGap(nil) != 0 {
		t.Fatal("empty mean must be 0")
	}
}

func TestBurstyArrivalsPenalizeReactiveLess(t *testing.T) {
	// Sanity: with long idle gaps, a fixed mid-level controller's total
	// energy grows with gap time (idle power), holding images constant.
	p := hw.TX2()
	g := models.AlexNet()
	tasks := []Task{{g, 3}, {g, 3}}
	short := NewExecutor(p, &fixedCtl{level: 6}).RunTaskFlowArrivals(tasks, []time.Duration{10 * time.Millisecond})
	long := NewExecutor(p, &fixedCtl{level: 6}).RunTaskFlowArrivals(tasks, []time.Duration{time.Second})
	if long.EnergyJ <= short.EnergyJ {
		t.Fatal("longer idle must cost more energy")
	}
	if long.EE() >= short.EE() {
		t.Fatal("longer idle must hurt EE")
	}
}
