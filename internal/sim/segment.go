package sim

import (
	"math"
	"time"

	"powerlens/internal/graph"
	"powerlens/internal/hw"
)

// SegmentCost returns the time and energy of executing the contiguous layer
// range [startID, endID] of g at a fixed GPU frequency. Because operator
// costs are independent, this closed form is what the dataset generator
// sweeps to find each block's oracle frequency, and what the decision stage
// uses to reason about candidate plans without running the full executor.
func SegmentCost(p *hw.Platform, g *graph.Graph, startID, endID int, f float64) (time.Duration, float64) {
	var t time.Duration
	var e float64
	for id := startID; id <= endID; id++ {
		l := g.Layers[id]
		if l.Kind == graph.OpInput {
			continue
		}
		c := p.GPUOpCost(l.FLOPs(), l.MemBytes(), f)
		t += c.Time
		e += c.EnergyJ
	}
	return t, e
}

// PerfWeight is the θ exponent of the per-block target objective E·t^θ.
// θ=0 minimizes pure energy (equivalently maximizes the paper's EE metric,
// matching §2.2's oracle: "select test data that achieves the optimal energy
// efficiency"); θ=1 is the energy-delay product. The default is 0 so block
// objectives compose consistently — the sum of per-block energy minima is
// the plan-level energy minimum. BenchmarkAblationPerfWeight explores θ>0,
// which trades energy for latency on compute-bound blocks (the §2.1.4
// narrative of raising frequency for computation-intensive blocks).
const PerfWeight = 0.0

// OptimalSegmentLevel sweeps the whole GPU ladder and returns the level that
// minimizes the segment's E·t^θ score, along with the per-level energies.
// This is the oracle of §2.2's dataset generation: "each block in the power
// view is deployed at all frequencies to select test data that achieves the
// optimal energy efficiency".
func OptimalSegmentLevel(p *hw.Platform, g *graph.Graph, startID, endID int) (best int, energies []float64) {
	energies = make([]float64, p.NumGPULevels())
	scores := make([]float64, p.NumGPULevels())
	best = 0
	for i, f := range p.GPUFreqsHz {
		t, e := SegmentCost(p, g, startID, endID, f)
		energies[i] = e
		scores[i] = e * math.Pow(t.Seconds(), PerfWeight)
		if scores[i] < scores[best] {
			best = i
		}
	}
	return best, energies
}
