package sim

import (
	"time"

	"powerlens/internal/graph"
	"powerlens/internal/hw"
)

// This file implements the paper's §5 future-work extension: coordinating
// batch size with DVFS ("Recent approaches have explored synergizing DVFS
// technology with factors like batchsize" [15]). Batching amortizes weight
// traffic across images, raising arithmetic intensity and shifting both the
// roofline regime and the energy-optimal frequency of each block.

// SegmentCostBatch is SegmentCost at a given batch size: per-layer FLOPs and
// activation traffic scale with the batch, weight traffic does not. The
// returned time and energy cover the whole batch (divide by batch for
// per-image values).
func SegmentCostBatch(p *hw.Platform, g *graph.Graph, startID, endID int, f float64, batch int) (time.Duration, float64) {
	var t time.Duration
	var e float64
	for id := startID; id <= endID; id++ {
		l := g.Layers[id]
		if l.Kind == graph.OpInput {
			continue
		}
		flops, bytes := l.BatchCost(batch)
		c := p.GPUOpCost(flops, bytes, f)
		t += c.Time
		e += c.EnergyJ
	}
	return t, e
}

// BatchPoint is one (batch, frequency level) operating point of a network.
type BatchPoint struct {
	Batch   int
	Level   int
	EE      float64       // images per joule at this point
	Latency time.Duration // batch completion latency
}

// OptimalBatch sweeps batch sizes (powers of two up to maxBatch) and the
// full frequency ladder, returning the point with the best energy
// efficiency whose batch latency stays within latencyBudget (0 = no
// constraint). The latency constraint reflects the batching/DVFS trade-off
// of [15]: larger batches amortize weight traffic but delay completion of
// every image in the batch.
func OptimalBatch(p *hw.Platform, g *graph.Graph, maxBatch int, latencyBudget time.Duration) (best BatchPoint, sweep []BatchPoint) {
	if maxBatch < 1 {
		maxBatch = 1
	}
	n := len(g.Layers) - 1
	for batch := 1; batch <= maxBatch; batch *= 2 {
		bp := BatchPoint{Batch: batch, Level: -1}
		for lvl, f := range p.GPUFreqsHz {
			t, e := SegmentCostBatch(p, g, 0, n, f, batch)
			if latencyBudget > 0 && t > latencyBudget {
				continue
			}
			ee := float64(batch) / e
			if bp.Level == -1 || ee > bp.EE {
				bp.Level = lvl
				bp.EE = ee
				bp.Latency = t
			}
		}
		if bp.Level == -1 {
			continue // no level meets the budget at this batch
		}
		sweep = append(sweep, bp)
		if best.Level == 0 && best.Batch == 0 || bp.EE > best.EE {
			best = bp
		}
	}
	return best, sweep
}
