package sim

import (
	"math"
	"time"

	"powerlens/internal/graph"
	"powerlens/internal/hw"
)

// CostTable memoizes the operator costs of one (platform, graph) pair across
// the whole GPU ladder. The dataset generator's oracle sweep evaluates every
// candidate block of every grid cell at every ladder level; without a table
// that re-derives the same per-layer roofline costs (voltage-curve pow/exp
// included) grid×blocks×levels times per network. The table computes each
// (layer, level) cost exactly once, then answers segment queries from a
// (startID, endID, level) memo, so repeated blocks across grid cells cost a
// map hit and fresh blocks cost one addition per layer.
//
// Summation semantics are deliberately identical to SegmentCost: a segment's
// time and energy are accumulated per layer in ascending layer-ID order
// (input layers contribute exact zeros), never rearranged into prefix-sum
// differences, so every result is bit-identical to the uncached path and the
// dataset goldens cannot move.
//
// A CostTable is not safe for concurrent use; the generator builds one per
// network inside each worker.
type CostTable struct {
	p *hw.Platform
	g *graph.Graph

	// layerT/layerE are indexed [level][layerID]; OpInput layers hold zeros,
	// matching SegmentCost's skip.
	layerT [][]time.Duration
	layerE [][]float64

	seg map[segKey]segCost

	// Hits and Misses count segment-memo outcomes (bench/test visibility).
	Hits, Misses int

	scores []float64 // OptimalSegmentLevel scratch
}

type segKey struct{ start, end, level int }

type segCost struct {
	t time.Duration
	e float64
}

// NewCostTable precomputes the per-(layer, level) cost grid for g on p.
func NewCostTable(p *hw.Platform, g *graph.Graph) *CostTable {
	levels := p.NumGPULevels()
	ct := &CostTable{
		p:      p,
		g:      g,
		layerT: make([][]time.Duration, levels),
		layerE: make([][]float64, levels),
		seg:    make(map[segKey]segCost),
		scores: make([]float64, levels),
	}
	for lvl, f := range p.GPUFreqsHz {
		ts := make([]time.Duration, len(g.Layers))
		es := make([]float64, len(g.Layers))
		for id, l := range g.Layers {
			if l.Kind == graph.OpInput {
				continue
			}
			c := p.GPUOpCost(l.FLOPs(), l.MemBytes(), f)
			ts[id], es[id] = c.Time, c.EnergyJ
		}
		ct.layerT[lvl], ct.layerE[lvl] = ts, es
	}
	return ct
}

// Platform returns the platform the table was built for.
func (ct *CostTable) Platform() *hw.Platform { return ct.p }

// SegmentCost returns the time and energy of executing layers [startID,
// endID] at ladder level lvl — the memoized equivalent of the package-level
// SegmentCost at p.GPUFreqsHz[lvl].
func (ct *CostTable) SegmentCost(startID, endID, lvl int) (time.Duration, float64) {
	key := segKey{startID, endID, lvl}
	if c, ok := ct.seg[key]; ok {
		ct.Hits++
		return c.t, c.e
	}
	ct.Misses++
	var t time.Duration
	var e float64
	ts, es := ct.layerT[lvl], ct.layerE[lvl]
	for id := startID; id <= endID; id++ {
		t += ts[id]
		e += es[id]
	}
	ct.seg[key] = segCost{t, e}
	return t, e
}

// OptimalSegmentLevel sweeps the whole ladder over the memoized segment
// costs; it returns exactly what the package-level OptimalSegmentLevel
// returns for the same segment.
func (ct *CostTable) OptimalSegmentLevel(startID, endID int) (best int, energies []float64) {
	energies = make([]float64, ct.p.NumGPULevels())
	scores := ct.scores
	best = 0
	for i := range ct.p.GPUFreqsHz {
		t, e := ct.SegmentCost(startID, endID, i)
		energies[i] = e
		scores[i] = e * math.Pow(t.Seconds(), PerfWeight)
		if scores[i] < scores[best] {
			best = i
		}
	}
	return best, energies
}
