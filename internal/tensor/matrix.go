// Package tensor provides the small dense linear-algebra kernel used by the
// PowerLens clustering stage (covariance matrices, Mahalanobis distances,
// Moore–Penrose pseudo-inverses) and by the from-scratch neural networks in
// package nn. It is deliberately minimal: row-major float64 matrices and the
// handful of operations the framework needs, with no external dependencies.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero-initialized rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
// It copies the input.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("tensor: ragged rows: row %d has %d cols, want %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns the matrix product a·b.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: Mul dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("tensor: MulVec dimension mismatch %dx%d · %d", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, rv := range row {
			s += rv * v[j]
		}
		out[i] = s
	}
	return out
}

// MulVecInto is MulVec writing into dst (which must have length m.Rows)
// instead of allocating; the accumulation order is identical to MulVec, so
// results are bit-equal.
func (m *Matrix) MulVecInto(v, dst []float64) {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("tensor: MulVecInto dimension mismatch %dx%d · %d", m.Rows, m.Cols, len(v)))
	}
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("tensor: MulVecInto dst length %d, want %d", len(dst), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, rv := range row {
			s += rv * v[j]
		}
		dst[i] = s
	}
}

// Scale multiplies every element of m by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// Add adds b to m element-wise in place and returns m.
func (m *Matrix) Add(b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("tensor: Add dimension mismatch")
	}
	for i := range m.Data {
		m.Data[i] += b.Data[i]
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Equalish reports whether a and b have identical shape and all elements
// within tol of each other.
func Equalish(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Matrix %dx%d\n", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			fmt.Fprintf(&sb, "% .4g ", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Sub returns a-b as a new vector.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Sub length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}
