package tensor

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean of v, or 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Variance returns the population variance of v, or 0 for fewer than two
// samples.
func Variance(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	mu := Mean(v)
	s := 0.0
	for _, x := range v {
		d := x - mu
		s += d * d
	}
	return s / float64(len(v))
}

// StdDev returns the population standard deviation of v.
func StdDev(v []float64) float64 { return math.Sqrt(Variance(v)) }

// ColumnMeans returns the per-column mean of the rows of m.
func ColumnMeans(m *Matrix) []float64 {
	means := make([]float64, m.Cols)
	if m.Rows == 0 {
		return means
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			means[j] += v
		}
	}
	inv := 1 / float64(m.Rows)
	for j := range means {
		means[j] *= inv
	}
	return means
}

// Covariance returns the (population) covariance matrix of the rows of m,
// treating each row as one observation of a m.Cols-dimensional variable.
func Covariance(m *Matrix) *Matrix {
	c := NewMatrix(m.Cols, m.Cols)
	if m.Rows < 2 {
		return c
	}
	means := ColumnMeans(m)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for a := 0; a < m.Cols; a++ {
			da := row[a] - means[a]
			if da == 0 {
				continue
			}
			crow := c.Row(a)
			for b := 0; b < m.Cols; b++ {
				crow[b] += da * (row[b] - means[b])
			}
		}
	}
	return c.Scale(1 / float64(m.Rows))
}

// ShrunkCovariance returns the covariance of the rows of m shrunk toward a
// scaled identity: C' = C + λ·mean(diag(C))·I. Shrinkage bounds the
// amplification a (pseudo-)inverse applies along near-zero-variance
// directions, which matters whenever rows contain near-duplicates (repeated
// DNN operators make the raw layer-feature covariance nearly singular).
func ShrunkCovariance(m *Matrix, lambda float64) *Matrix {
	cov := Covariance(m)
	meanVar := 0.0
	for i := 0; i < cov.Rows; i++ {
		meanVar += cov.At(i, i)
	}
	if cov.Rows > 0 {
		meanVar /= float64(cov.Rows)
	}
	if meanVar <= 0 {
		meanVar = 1
	}
	for i := 0; i < cov.Rows; i++ {
		cov.Set(i, i, cov.At(i, i)+lambda*meanVar)
	}
	return cov
}

// ZScoreScaler standardizes feature columns to zero mean and unit variance.
// Columns with (near-)zero variance are left centered but unscaled so that
// constant features cannot produce NaNs.
type ZScoreScaler struct {
	Means []float64
	Stds  []float64
}

// FitZScore learns per-column means and standard deviations from m.
func FitZScore(m *Matrix) *ZScoreScaler {
	s := &ZScoreScaler{Means: ColumnMeans(m), Stds: make([]float64, m.Cols)}
	for j := 0; j < m.Cols; j++ {
		col := make([]float64, m.Rows)
		for i := 0; i < m.Rows; i++ {
			col[i] = m.At(i, j)
		}
		s.Stds[j] = StdDev(col)
	}
	return s
}

// Transform returns a standardized copy of m using the fitted parameters.
func (s *ZScoreScaler) Transform(m *Matrix) *Matrix {
	out := m.Clone()
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		s.TransformRow(row)
	}
	return out
}

// TransformRow standardizes a single feature vector in place.
func (s *ZScoreScaler) TransformRow(row []float64) {
	for j := range row {
		row[j] -= s.Means[j]
		if s.Stds[j] > 1e-12 {
			row[j] /= s.Stds[j]
		}
	}
}

// MahalanobisAll computes the pairwise Mahalanobis distance matrix between
// the rows of x using precision matrix p (the pseudo-inverse of the
// covariance of x): D[i][j] = sqrt((x_i-x_j)^T P (x_i-x_j)).
// Tiny negative quadratic forms from floating-point noise are clamped to 0.
func MahalanobisAll(x, p *Matrix) *Matrix {
	n := x.Rows
	d := NewMatrix(n, n)
	sp := newSparseQuad(p)
	diff := make([]float64, x.Cols)
	for i := 0; i < n; i++ {
		ri := x.Row(i)
		for j := i + 1; j < n; j++ {
			rj := x.Row(j)
			for k := range diff {
				diff[k] = ri[k] - rj[k]
			}
			q := sp.quadForm(diff)
			if q < 0 {
				q = 0
			}
			v := math.Sqrt(q)
			d.Set(i, j, v)
			d.Set(j, i, v)
		}
	}
	return d
}

// sparseQuad is a CSR view of a quadratic-form matrix, built once and applied
// to many vectors. The §2.2 feature precision matrices are ~2/3 exact zeros
// (structural: constant feature columns zero out covariance rows), and row
// diffs are ~3/4 zeros, so skipping zero terms removes most of the pairwise
// Mahalanobis work — the generator's dominant cost.
type sparseQuad struct {
	n        int
	rowStart []int32
	colIdx   []int32
	vals     []float64
}

func newSparseQuad(p *Matrix) *sparseQuad {
	if p.Rows != p.Cols {
		panic(fmt.Sprintf("tensor: sparseQuad needs a square matrix, got %dx%d", p.Rows, p.Cols))
	}
	sp := &sparseQuad{n: p.Rows, rowStart: make([]int32, p.Rows+1)}
	for i := 0; i < p.Rows; i++ {
		for j, v := range p.Row(i) {
			if v != 0 {
				sp.colIdx = append(sp.colIdx, int32(j))
				sp.vals = append(sp.vals, v)
			}
		}
		sp.rowStart[i+1] = int32(len(sp.vals))
	}
	return sp
}

// quadForm returns diff^T p diff, bit-equal to Dot(diff, p.MulVec(diff)) for
// finite inputs. Skipped terms are exactly those with a zero factor: such a
// term is ±0.0, and both accumulators start at +0.0 and can never become
// -0.0 (only (-0)+(-0) yields -0), so IEEE-754 addition of the skipped terms
// would leave the sums bit-unchanged. Kept terms run in the same ascending
// row/column order as the dense form. (Non-finite features would already
// poison the distances, so they are out of contract.)
func (sp *sparseQuad) quadForm(diff []float64) float64 {
	if sp.n != len(diff) {
		panic(fmt.Sprintf("tensor: sparseQuad dimension mismatch %d · %d", sp.n, len(diff)))
	}
	q := 0.0
	for i, dv := range diff {
		if dv == 0 {
			continue
		}
		s := 0.0
		for t := sp.rowStart[i]; t < sp.rowStart[i+1]; t++ {
			s += sp.vals[t] * diff[sp.colIdx[t]]
		}
		q += dv * s
	}
	return q
}

// quadForm returns diff^T p diff with the exact operation order of
// Dot(diff, p.MulVec(diff)) — each row's inner product accumulates in column
// order, the outer product in row order — so it is bit-equal to the unfused
// form while allocating nothing. This is the innermost loop of the pairwise
// distance matrix (n²/2 quadratic forms per network in the §2.2 generator).
func quadForm(p *Matrix, diff []float64) float64 {
	if p.Cols != len(diff) || p.Rows != len(diff) {
		panic(fmt.Sprintf("tensor: quadForm dimension mismatch %dx%d · %d", p.Rows, p.Cols, len(diff)))
	}
	q := 0.0
	for i, dv := range diff {
		row := p.Data[i*p.Cols : i*p.Cols+len(diff)]
		s := 0.0
		for k, rv := range row {
			s += rv * diff[k]
		}
		q += dv * s
	}
	return q
}

// Argmax returns the index of the largest element of v (first on ties),
// or -1 for an empty slice.
func Argmax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// Argmin returns the index of the smallest element of v (first on ties),
// or -1 for an empty slice.
func Argmin(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] < v[best] {
			best = i
		}
	}
	return best
}
