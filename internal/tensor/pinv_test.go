package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestJacobiEigenDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0}, {0, 7}})
	vals, vecs := JacobiEigen(a)
	got := map[float64]bool{}
	for _, v := range vals {
		got[math.Round(v)] = true
	}
	if !got[3] || !got[7] {
		t.Fatalf("eigenvalues = %v, want {3,7}", vals)
	}
	// Eigenvector matrix must be orthogonal: V^T V = I.
	if !Equalish(Mul(vecs.T(), vecs), Identity(2), 1e-10) {
		t.Fatal("eigenvectors not orthonormal")
	}
}

func TestJacobiEigenReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		// Symmetric matrix: B + B^T.
		b := randomMatrix(r, n, n)
		a := Mul(b, Identity(n)).Add(b.T())
		vals, vecs := JacobiEigen(a)
		// Reconstruct V diag(vals) V^T.
		d := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			d.Set(i, i, vals[i])
		}
		recon := Mul(Mul(vecs, d), vecs.T())
		return Equalish(recon, a, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPseudoInverseOfInvertible(t *testing.T) {
	a := FromRows([][]float64{{4, 1}, {1, 3}})
	p := PseudoInverse(a)
	if !Equalish(Mul(a, p), Identity(2), 1e-9) {
		t.Fatalf("A·A+ != I: %v", Mul(a, p).Data)
	}
}

func TestPseudoInverseSingular(t *testing.T) {
	// Rank-1 matrix: pinv must satisfy the Penrose conditions, not blow up.
	a := FromRows([][]float64{{1, 1}, {1, 1}})
	p := PseudoInverse(a)
	// A A+ A = A
	if !Equalish(Mul(Mul(a, p), a), a, 1e-9) {
		t.Fatal("Penrose condition A·A+·A = A violated")
	}
	// A+ A A+ = A+
	if !Equalish(Mul(Mul(p, a), p), p, 1e-9) {
		t.Fatal("Penrose condition A+·A·A+ = A+ violated")
	}
	for _, v := range p.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("pinv of singular matrix produced %v", v)
		}
	}
}

func TestPseudoInversePenroseProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		// Random PSD (possibly rank-deficient) matrix: X^T X with few rows.
		rows := 1 + r.Intn(n+2)
		x := randomMatrix(r, rows, n)
		a := Mul(x.T(), x)
		p := PseudoInverse(a)
		if !Equalish(Mul(Mul(a, p), a), a, 1e-6) {
			return false
		}
		if !Equalish(Mul(Mul(p, a), p), p, 1e-6) {
			return false
		}
		// Symmetry of A·A+ (third Penrose condition for symmetric A).
		ap := Mul(a, p)
		return Equalish(ap, ap.T(), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPseudoInverseZeroMatrix(t *testing.T) {
	p := PseudoInverse(NewMatrix(3, 3))
	for _, v := range p.Data {
		if v != 0 {
			t.Fatal("pinv(0) must be 0")
		}
	}
}

func TestJacobiEigenNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	JacobiEigen(NewMatrix(2, 3))
}
