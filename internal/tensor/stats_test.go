package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStdDev(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(v); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := Variance(v); got != 4 {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(v); got != 2 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty stats must be 0")
	}
	if Variance([]float64{3}) != 0 {
		t.Fatal("single-sample variance must be 0")
	}
}

func TestColumnMeans(t *testing.T) {
	m := FromRows([][]float64{{1, 10}, {3, 20}})
	mu := ColumnMeans(m)
	if mu[0] != 2 || mu[1] != 15 {
		t.Fatalf("ColumnMeans = %v", mu)
	}
}

func TestCovarianceKnown(t *testing.T) {
	// Two perfectly correlated columns.
	m := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	c := Covariance(m)
	// var(col0) = 2/3, var(col1) = 8/3, cov = 4/3.
	if math.Abs(c.At(0, 0)-2.0/3) > 1e-12 {
		t.Fatalf("var0 = %v", c.At(0, 0))
	}
	if math.Abs(c.At(1, 1)-8.0/3) > 1e-12 {
		t.Fatalf("var1 = %v", c.At(1, 1))
	}
	if math.Abs(c.At(0, 1)-4.0/3) > 1e-12 || c.At(0, 1) != c.At(1, 0) {
		t.Fatalf("cov = %v / %v", c.At(0, 1), c.At(1, 0))
	}
}

func TestCovarianceSymmetricPSDProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomMatrix(r, 3+r.Intn(10), 2+r.Intn(5))
		c := Covariance(m)
		// Symmetry.
		for i := 0; i < c.Rows; i++ {
			for j := 0; j < c.Cols; j++ {
				if math.Abs(c.At(i, j)-c.At(j, i)) > 1e-10 {
					return false
				}
			}
		}
		// PSD: x^T C x >= 0 for random x.
		for trial := 0; trial < 5; trial++ {
			x := make([]float64, c.Cols)
			for i := range x {
				x[i] = r.NormFloat64()
			}
			if Dot(x, c.MulVec(x)) < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestZScoreScaler(t *testing.T) {
	m := FromRows([][]float64{{1, 100}, {2, 200}, {3, 300}})
	s := FitZScore(m)
	out := s.Transform(m)
	for j := 0; j < 2; j++ {
		col := []float64{out.At(0, j), out.At(1, j), out.At(2, j)}
		if math.Abs(Mean(col)) > 1e-12 {
			t.Fatalf("col %d mean = %v", j, Mean(col))
		}
		if math.Abs(StdDev(col)-1) > 1e-12 {
			t.Fatalf("col %d std = %v", j, StdDev(col))
		}
	}
}

func TestZScoreConstantColumnNoNaN(t *testing.T) {
	m := FromRows([][]float64{{5, 1}, {5, 2}, {5, 3}})
	s := FitZScore(m)
	out := s.Transform(m)
	for _, v := range out.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("constant column produced %v", v)
		}
	}
	if out.At(0, 0) != 0 {
		t.Fatal("constant column should be centered to 0")
	}
}

func TestMahalanobisIdentityIsEuclidean(t *testing.T) {
	x := FromRows([][]float64{{0, 0}, {3, 4}})
	d := MahalanobisAll(x, Identity(2))
	if math.Abs(d.At(0, 1)-5) > 1e-12 {
		t.Fatalf("distance = %v, want 5", d.At(0, 1))
	}
	if d.At(0, 0) != 0 || d.At(1, 1) != 0 {
		t.Fatal("diagonal must be 0")
	}
}

func TestMahalanobisScaleInvariance(t *testing.T) {
	// Mahalanobis distance with the true precision matrix is invariant to
	// linear rescaling of a feature column.
	r := rand.New(rand.NewSource(3))
	x := randomMatrix(r, 30, 3)
	p1 := PseudoInverse(Covariance(x))
	d1 := MahalanobisAll(x, p1)

	scaled := x.Clone()
	for i := 0; i < scaled.Rows; i++ {
		scaled.Set(i, 0, scaled.At(i, 0)*1000)
	}
	p2 := PseudoInverse(Covariance(scaled))
	d2 := MahalanobisAll(scaled, p2)
	if !Equalish(d1, d2, 1e-6) {
		t.Fatal("Mahalanobis distance must be invariant to column rescaling")
	}
}

func TestMahalanobisSymmetricNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := randomMatrix(r, 4+r.Intn(10), 2+r.Intn(4))
		p := PseudoInverse(Covariance(x))
		d := MahalanobisAll(x, p)
		for i := 0; i < d.Rows; i++ {
			if d.At(i, i) != 0 {
				return false
			}
			for j := 0; j < d.Cols; j++ {
				if d.At(i, j) < 0 || math.IsNaN(d.At(i, j)) {
					return false
				}
				if math.Abs(d.At(i, j)-d.At(j, i)) > 1e-10 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestArgmaxArgmin(t *testing.T) {
	v := []float64{3, 9, 2, 9, 1}
	if Argmax(v) != 1 {
		t.Fatalf("Argmax = %d", Argmax(v))
	}
	if Argmin(v) != 4 {
		t.Fatalf("Argmin = %d", Argmin(v))
	}
	if Argmax(nil) != -1 || Argmin(nil) != -1 {
		t.Fatal("empty slices must return -1")
	}
}

func TestShrunkCovariance(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	m := randomMatrix(r, 20, 4)
	plain := Covariance(m)
	shrunk := ShrunkCovariance(m, 0.1)
	// Off-diagonals unchanged; diagonals raised by 0.1 * mean diag.
	meanVar := 0.0
	for i := 0; i < 4; i++ {
		meanVar += plain.At(i, i)
	}
	meanVar /= 4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := plain.At(i, j)
			if i == j {
				want += 0.1 * meanVar
			}
			if math.Abs(shrunk.At(i, j)-want) > 1e-12 {
				t.Fatalf("[%d][%d] = %v, want %v", i, j, shrunk.At(i, j), want)
			}
		}
	}
}

func TestShrunkCovarianceDegenerate(t *testing.T) {
	// All-identical rows: raw covariance is zero; shrinkage must produce a
	// usable (invertible) matrix anyway.
	m := FromRows([][]float64{{1, 2}, {1, 2}, {1, 2}})
	s := ShrunkCovariance(m, 0.05)
	for i := 0; i < 2; i++ {
		if s.At(i, i) <= 0 {
			t.Fatal("degenerate shrunk covariance must have positive diagonal")
		}
	}
	p := PseudoInverse(s)
	for _, v := range p.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("pinv of shrunk degenerate covariance must be finite")
		}
	}
}

// TestQuadFormMatchesUnfused pins the fused quadratic form bit-for-bit
// against Dot(diff, p.MulVec(diff)) — the contract that lets MahalanobisAll
// (and therefore the clustering goldens) stay byte-identical after fusing.
func TestQuadFormMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		d := 1 + rng.Intn(12)
		p := NewMatrix(d, d)
		for i := range p.Data {
			p.Data[i] = rng.NormFloat64()
		}
		diff := make([]float64, d)
		for i := range diff {
			switch rng.Intn(4) {
			case 0:
				diff[i] = 0
			default:
				diff[i] = rng.NormFloat64() * 1e3
			}
		}
		want := Dot(diff, p.MulVec(diff))
		got := quadForm(p, diff)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d (d=%d): quadForm %v != unfused %v", trial, d, got, want)
		}
	}
}

func TestQuadFormDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched dimensions")
		}
	}()
	quadForm(NewMatrix(2, 3), []float64{1, 2, 3})
}

// TestSparseQuadFormMatchesDense plants exact zeros in both the matrix and
// the vectors (the structural sparsity the generator's precision matrices
// have) and requires the CSR path to match the dense unfused form bit for
// bit — the contract that keeps MahalanobisAll, and with it the clustering
// goldens and Dataset A/B bytes, unchanged.
func TestSparseQuadFormMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 80; trial++ {
		d := 1 + rng.Intn(14)
		p := NewMatrix(d, d)
		for i := range p.Data {
			if rng.Intn(3) > 0 { // ~2/3 exact zeros, like the real precision matrices
				continue
			}
			p.Data[i] = rng.NormFloat64()
			if rng.Intn(8) == 0 {
				p.Data[i] = -p.Data[i]
			}
		}
		sp := newSparseQuad(p)
		for v := 0; v < 6; v++ {
			diff := make([]float64, d)
			for i := range diff {
				if rng.Intn(4) > 0 {
					continue // ~3/4 zeros, like real row diffs
				}
				diff[i] = rng.NormFloat64() * 1e2
			}
			want := Dot(diff, p.MulVec(diff))
			got := sp.quadForm(diff)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("trial %d (d=%d): sparse %v != dense %v", trial, d, got, want)
			}
		}
	}
}

// TestMahalanobisAllMatchesNaive pins the whole pairwise matrix against the
// original Sub/MulVec/Dot formulation on realistic inputs: feature matrices
// with repeated rows and constant columns, whose pseudo-inverse precision
// matrices carry the structural zeros the sparse path skips.
func TestMahalanobisAllMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		n, d := 8+rng.Intn(20), 3+rng.Intn(9)
		x := NewMatrix(n, d)
		for i := 0; i < n; i++ {
			if i > 0 && rng.Intn(4) == 0 {
				copy(x.Row(i), x.Row(rng.Intn(i))) // duplicate row -> zero diffs
				continue
			}
			for j := 0; j < d; j++ {
				if j%3 == 0 {
					x.Set(i, j, 1.5) // constant column -> zero covariance row
					continue
				}
				x.Set(i, j, rng.NormFloat64())
			}
		}
		p := PseudoInverse(Covariance(x))
		got := MahalanobisAll(x, p)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				diff := Sub(x.Row(i), x.Row(j))
				q := Dot(diff, p.MulVec(diff))
				if q < 0 {
					q = 0
				}
				want := math.Sqrt(q)
				if math.Float64bits(got.At(i, j)) != math.Float64bits(want) ||
					math.Float64bits(got.At(j, i)) != math.Float64bits(want) {
					t.Fatalf("trial %d: d(%d,%d) = %v, want %v", trial, i, j, got.At(i, j), want)
				}
			}
		}
	}
}
