package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows, m.Cols)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("shape = %dx%d", m.Rows, m.Cols)
	}
	if m.At(1, 0) != 3 || m.At(2, 1) != 6 {
		t.Fatalf("unexpected elements: %v", m.Data)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestFromRowsCopies(t *testing.T) {
	src := [][]float64{{1, 2}}
	m := FromRows(src)
	src[0][0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("FromRows must copy its input")
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose shape = %dx%d", tr.Rows, tr.Cols)
	}
	if tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("transpose wrong: %v", tr.Data)
	}
}

func TestMulIdentity(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	got := Mul(m, Identity(2))
	if !Equalish(got, m, 0) {
		t.Fatalf("m·I = %v, want %v", got.Data, m.Data)
	}
	got = Mul(Identity(2), m)
	if !Equalish(got, m, 0) {
		t.Fatalf("I·m = %v, want %v", got.Data, m.Data)
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	got := Mul(a, b)
	want := FromRows([][]float64{{58, 64}, {139, 154}})
	if !Equalish(got, want, 1e-12) {
		t.Fatalf("a·b = %v, want %v", got.Data, want.Data)
	}
}

func TestMulDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	got := m.MulVec([]float64{5, 6})
	if got[0] != 17 || got[1] != 39 {
		t.Fatalf("MulVec = %v, want [17 39]", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not alias the original")
	}
}

func TestScaleAdd(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	m.Scale(3).Add(FromRows([][]float64{{1, 1}}))
	if m.At(0, 0) != 4 || m.At(0, 1) != 7 {
		t.Fatalf("got %v", m.Data)
	}
}

func TestDotSub(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	d := Sub([]float64{5, 5}, []float64{2, 3})
	if d[0] != 3 || d[1] != 2 {
		t.Fatalf("Sub = %v", d)
	}
}

// Property: (A·B)^T == B^T · A^T for random matrices.
func TestMulTransposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, k, m := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := randomMatrix(r, n, k)
		b := randomMatrix(r, k, m)
		left := Mul(a, b).T()
		right := Mul(b.T(), a.T())
		return Equalish(left, right, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: matrix multiplication is associative: (AB)C == A(BC).
func TestMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, k, m, p := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a := randomMatrix(r, n, k)
		b := randomMatrix(r, k, m)
		c := randomMatrix(r, m, p)
		return Equalish(Mul(Mul(a, b), c), Mul(a, Mul(b, c)), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func randomMatrix(r *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	return m
}

func TestStringContainsShape(t *testing.T) {
	s := NewMatrix(2, 2).String()
	if len(s) == 0 || s[:6] != "Matrix" {
		t.Fatalf("String() = %q", s)
	}
}

func TestEqualishShapeMismatch(t *testing.T) {
	if Equalish(NewMatrix(1, 2), NewMatrix(2, 1), 1) {
		t.Fatal("different shapes must not be Equalish")
	}
}

func TestIdentityValues(t *testing.T) {
	m := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("I[%d][%d] = %v", i, j, m.At(i, j))
			}
		}
	}
}

func TestMulVecMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(2, 3).MulVec([]float64{1})
}

func TestNaNFreeOps(t *testing.T) {
	a := randomMatrix(rand.New(rand.NewSource(7)), 4, 4)
	b := Mul(a, a.T())
	for _, v := range b.Data {
		if math.IsNaN(v) {
			t.Fatal("NaN in product of finite matrices")
		}
	}
}
