package tensor

import "math"

// JacobiEigen computes the eigendecomposition of a symmetric matrix a using
// the cyclic Jacobi rotation method. It returns the eigenvalues and a matrix
// whose COLUMNS are the corresponding orthonormal eigenvectors, so that
// a = V · diag(vals) · V^T. The input is not modified.
//
// Jacobi is quadratic-per-sweep but our feature spaces are small (tens of
// dimensions), where it is both robust and fast.
func JacobiEigen(a *Matrix) (vals []float64, vecs *Matrix) {
	if a.Rows != a.Cols {
		panic("tensor: JacobiEigen requires a square matrix")
	}
	n := a.Rows
	m := a.Clone()
	v := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-30 {
					continue
				}
				app := m.At(p, p)
				aqq := m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply rotation to m: m = J^T m J.
				for k := 0; k < n; k++ {
					mkp := m.At(k, p)
					mkq := m.At(k, q)
					m.Set(k, p, c*mkp-s*mkq)
					m.Set(k, q, s*mkp+c*mkq)
				}
				for k := 0; k < n; k++ {
					mpk := m.At(p, k)
					mqk := m.At(q, k)
					m.Set(p, k, c*mpk-s*mqk)
					m.Set(q, k, s*mpk+c*mqk)
				}
				// Accumulate eigenvectors.
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = m.At(i, i)
	}
	return vals, v
}

// PseudoInverse returns the Moore–Penrose pseudo-inverse of a symmetric
// positive-semidefinite matrix (such as a covariance matrix), computed via
// the Jacobi eigendecomposition. Eigenvalues below rcond·max|λ| are treated
// as zero, which is exactly the behaviour Algorithm 1 of the paper relies on
// when the layer-feature covariance is rank-deficient (e.g., one-hot operator
// type columns that never vary).
func PseudoInverse(a *Matrix) *Matrix {
	return PseudoInverseTol(a, 1e-10)
}

// PseudoInverseTol is PseudoInverse with an explicit relative tolerance.
func PseudoInverseTol(a *Matrix, rcond float64) *Matrix {
	vals, vecs := JacobiEigen(a)
	n := a.Rows
	maxAbs := 0.0
	for _, v := range vals {
		if av := math.Abs(v); av > maxAbs {
			maxAbs = av
		}
	}
	cut := rcond * maxAbs
	// pinv = V · diag(1/λ where |λ|>cut else 0) · V^T
	out := NewMatrix(n, n)
	for k := 0; k < n; k++ {
		if math.Abs(vals[k]) <= cut || vals[k] == 0 {
			continue
		}
		inv := 1 / vals[k]
		for i := 0; i < n; i++ {
			vik := vecs.At(i, k)
			if vik == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				out.Data[i*n+j] += inv * vik * vecs.At(j, k)
			}
		}
	}
	return out
}
