package dataset

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"powerlens/internal/hw"
)

// encodeDatasets runs Generate under cfg and returns the exact bytes the
// dataset file format would persist — the same path cmd/datasetgen writes
// and cmd/trainer reads.
func encodeDatasets(t *testing.T, p *hw.Platform, cfg Config) []byte {
	t.Helper()
	a, b := Generate(p, cfg)
	path := filepath.Join(t.TempDir(), "ds.json")
	if err := Save(path, p.Name, a, b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// The segment-cost cache and the worker count are pure performance knobs:
// the encoded Dataset A/B bytes must be identical with the cache on or off
// and with one worker or many.
func TestGenerateByteIdenticalAcrossCacheAndWorkers(t *testing.T) {
	p := hw.TX2()
	base := DefaultConfig(14, 3)
	want := encodeDatasets(t, p, base)

	noCache := base
	noCache.disableCostCache = true
	if got := encodeDatasets(t, p, noCache); !bytes.Equal(got, want) {
		t.Fatal("dataset bytes changed when the cost cache was disabled")
	}

	serial := base
	serial.Workers = 1
	if got := encodeDatasets(t, p, serial); !bytes.Equal(got, want) {
		t.Fatal("dataset bytes changed with Workers=1")
	}

	wide := base
	wide.Workers = 8
	if got := encodeDatasets(t, p, wide); !bytes.Equal(got, want) {
		t.Fatal("dataset bytes changed with Workers=8")
	}

	serialNoCache := base
	serialNoCache.Workers = 1
	serialNoCache.disableCostCache = true
	if got := encodeDatasets(t, p, serialNoCache); !bytes.Equal(got, want) {
		t.Fatal("dataset bytes changed with Workers=1 and the cost cache disabled")
	}
}
