package dataset

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"powerlens/internal/checkpoint"
	"powerlens/internal/hw"
)

// savedBytes runs the datasets through Save — the real output path — and
// returns the file bytes, the unit of the byte-identity guarantee.
func savedBytes(t *testing.T, platform string, a *DatasetA, b *DatasetB) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ds.json")
	if err := Save(path, platform, a, b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// refCache memoizes uninterrupted reference outputs across the crash tests
// (several share a configuration; regenerating under -race is expensive).
var refCache = map[string][]byte{}

func referenceBytes(t *testing.T, p *hw.Platform, cfg Config) []byte {
	t.Helper()
	key := fmt.Sprintf("%s-%d-%d", p.Name, cfg.NumNetworks, cfg.Seed)
	if data, ok := refCache[key]; ok {
		return data
	}
	a, b := Generate(p, cfg)
	data := savedBytes(t, p.Name, a, b)
	refCache[key] = data
	return data
}

// resumeUntilComplete re-invokes GenerateCheckpointed against dir until a
// call completes, cycling worker counts so resume correctness cannot depend
// on scheduling. kill installs the next run's hooks (nil = run clean).
func resumeUntilComplete(t *testing.T, p *hw.Platform, cfg Config, dir *checkpoint.Dir,
	kill func(attempt int) *checkpoint.Hooks) (*DatasetA, *DatasetB, GenStatus, int) {
	t.Helper()
	total := GenStatus{}
	for attempt := 0; attempt < 50; attempt++ {
		cfg.Workers = 1 + attempt%3
		dir.SetHooks(kill(attempt))
		a, b, st, err := GenerateCheckpointed(p, cfg, CheckpointOptions{Dir: dir, ShardSize: 4})
		total.ResumedNetworks += st.ResumedNetworks
		total.QuarantinedShards += st.QuarantinedShards
		total.ShardsWritten += st.ShardsWritten
		if err != nil {
			if !errors.Is(err, checkpoint.ErrKilled) {
				t.Fatalf("attempt %d: unexpected error: %v", attempt, err)
			}
			continue // "crashed"; next attempt resumes
		}
		if st.Drained {
			t.Fatalf("attempt %d: drained without a Stop channel", attempt)
		}
		return a, b, total, attempt + 1
	}
	t.Fatal("never completed within 50 attempts")
	return nil, nil, total, 0
}

// TestGenerateCheckpointedMatchesGenerate pins the zero-interruption
// contract: with checkpointing on, any worker count and shard size produces
// a dataset file byte-identical to plain Generate.
func TestGenerateCheckpointedMatchesGenerate(t *testing.T) {
	p := hw.TX2()
	cfg := DefaultConfig(12, 5)
	want := referenceBytes(t, p, cfg)
	for _, workers := range []int{1, 3} {
		for _, shard := range []int{1, 5} {
			dir, err := checkpoint.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			cfg.Workers = workers
			a, b, st, err := GenerateCheckpointed(p, cfg, CheckpointOptions{Dir: dir, ShardSize: shard})
			if err != nil {
				t.Fatal(err)
			}
			if st.ResumedNetworks != 0 || st.Drained {
				t.Fatalf("fresh run status = %+v", st)
			}
			if got := savedBytes(t, p.Name, a, b); !bytes.Equal(got, want) {
				t.Fatalf("workers=%d shard=%d: output differs from Generate", workers, shard)
			}
			// A second call over the complete directory restores everything.
			a, b, st, err = GenerateCheckpointed(p, cfg, CheckpointOptions{Dir: dir, ShardSize: shard})
			if err != nil {
				t.Fatal(err)
			}
			if st.ResumedNetworks != cfg.NumNetworks {
				t.Fatalf("full resume restored %d/%d networks", st.ResumedNetworks, cfg.NumNetworks)
			}
			if got := savedBytes(t, p.Name, a, b); !bytes.Equal(got, want) {
				t.Fatal("fully resumed output differs")
			}
		}
	}
}

// TestGenerateKillResumeByteIdentical sweeps every kill mode over a range of
// kill points: each killed run is resumed until completion and the final
// file must match the uninterrupted reference byte for byte. Torn shards
// must be counted as quarantined — detected, never consumed.
func TestGenerateKillResumeByteIdentical(t *testing.T) {
	p := hw.TX2()
	cfg := DefaultConfig(12, 5)
	want := referenceBytes(t, p, cfg)
	for _, mode := range []checkpoint.KillMode{
		checkpoint.KillBeforeWrite, checkpoint.KillTornWrite, checkpoint.KillElideRename,
	} {
		for failAfter := 0; failAfter <= 2; failAfter++ {
			dir, err := checkpoint.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			killed := false
			a, b, st, attempts := resumeUntilComplete(t, p, cfg, dir, func(attempt int) *checkpoint.Hooks {
				if attempt == 0 {
					killed = true
					return checkpoint.NewHooks(failAfter, mode)
				}
				return nil
			})
			if got := savedBytes(t, p.Name, a, b); !bytes.Equal(got, want) {
				t.Fatalf("mode=%v failAfter=%d: resumed output differs", mode, failAfter)
			}
			if killed && mode == checkpoint.KillTornWrite && st.QuarantinedShards == 0 {
				t.Fatalf("mode=%v failAfter=%d: torn shard was not quarantined (attempts=%d)",
					mode, failAfter, attempts)
			}
			if st.QuarantinedShards != dir.QuarantinedCount() {
				t.Fatalf("quarantine accounting: status says %d, directory holds %d",
					st.QuarantinedShards, dir.QuarantinedCount())
			}
		}
	}
}

// TestGenerateCrashResumeRandomized is the randomized kill/resume loop of
// the acceptance criteria: seeded-random kill points and modes, resumes
// under rotating worker counts, always converging to the reference bytes.
func TestGenerateCrashResumeRandomized(t *testing.T) {
	p := hw.TX2()
	cfg := DefaultConfig(12, 11)
	want := referenceBytes(t, p, cfg)
	modes := []checkpoint.KillMode{
		checkpoint.KillBeforeWrite, checkpoint.KillTornWrite, checkpoint.KillElideRename,
	}
	rounds := 3
	if testing.Short() {
		rounds = 1
	}
	for round := 0; round < rounds; round++ {
		rng := rand.New(rand.NewSource(int64(1000 + round)))
		dir, err := checkpoint.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		a, b, _, _ := resumeUntilComplete(t, p, cfg, dir, func(attempt int) *checkpoint.Hooks {
			if rng.Intn(3) == 0 {
				return nil // let this attempt run clean
			}
			return checkpoint.NewHooks(rng.Intn(4), modes[rng.Intn(len(modes))])
		})
		if got := savedBytes(t, p.Name, a, b); !bytes.Equal(got, want) {
			t.Fatalf("round %d: resumed output differs from reference", round)
		}
	}
}

// TestGenerateBitRotDetected flips one byte of a completed shard on disk:
// the resume must quarantine it, recompute its networks, and still emit the
// reference bytes.
func TestGenerateBitRotDetected(t *testing.T) {
	p := hw.TX2()
	cfg := DefaultConfig(12, 9)
	want := referenceBytes(t, p, cfg)
	dir, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := GenerateCheckpointed(p, cfg, CheckpointOptions{Dir: dir, ShardSize: 4}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir.Root(), shardName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	a, b, st, err := GenerateCheckpointed(p, cfg, CheckpointOptions{Dir: dir, ShardSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.QuarantinedShards != 1 {
		t.Fatalf("quarantined %d shards, want 1", st.QuarantinedShards)
	}
	if st.ResumedNetworks != cfg.NumNetworks-4 {
		t.Fatalf("resumed %d networks, want %d", st.ResumedNetworks, cfg.NumNetworks-4)
	}
	if got := savedBytes(t, p.Name, a, b); !bytes.Equal(got, want) {
		t.Fatal("output after bit-rot recovery differs")
	}
}

// TestGenerateDrainAndResume exercises the graceful-shutdown path: a closed
// Stop channel drains the run (in-flight networks finish, shards flush),
// and a later call completes to the reference bytes.
func TestGenerateDrainAndResume(t *testing.T) {
	p := hw.TX2()
	cfg := DefaultConfig(12, 7)
	cfg.Workers = 2
	want := referenceBytes(t, p, cfg)
	dir, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	close(stop)
	a, b, st, err := GenerateCheckpointed(p, cfg, CheckpointOptions{Dir: dir, ShardSize: 4, Stop: stop})
	if err != nil {
		t.Fatal(err)
	}
	if st.Drained {
		if a != nil || b != nil {
			t.Fatal("drained run returned datasets")
		}
	} else {
		// The dispatcher raced past the closed channel every time (possible
		// but vanishingly rare) — the run simply completed.
		t.Logf("drain race: run completed despite closed Stop")
	}
	a, b, st, err = GenerateCheckpointed(p, cfg, CheckpointOptions{Dir: dir, ShardSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.Drained {
		t.Fatal("resume without Stop drained")
	}
	if got := savedBytes(t, p.Name, a, b); !bytes.Equal(got, want) {
		t.Fatal("post-drain resume output differs")
	}
}

// TestGenerateCheckpointMetaMismatch pins the provenance guard: resuming
// with a different seed against the same directory must fail loudly.
func TestGenerateCheckpointMetaMismatch(t *testing.T) {
	p := hw.TX2()
	dir, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := GenerateCheckpointed(p, DefaultConfig(8, 1), CheckpointOptions{Dir: dir, ShardSize: 4}); err != nil {
		t.Fatal(err)
	}
	_, _, _, err = GenerateCheckpointed(p, DefaultConfig(8, 2), CheckpointOptions{Dir: dir, ShardSize: 4})
	if err == nil || !strings.Contains(err.Error(), "different run") {
		t.Fatalf("seed mismatch not rejected: %v", err)
	}
	// Same seed, different shard size is a different layout — also rejected.
	_, _, _, err = GenerateCheckpointed(p, DefaultConfig(8, 1), CheckpointOptions{Dir: dir, ShardSize: 2})
	if err == nil || !strings.Contains(err.Error(), "different run") {
		t.Fatalf("shard-size mismatch not rejected: %v", err)
	}
}

// TestGenerateShardsWithoutMetaQuarantined: shards whose meta vanished have
// unknown provenance; resume must quarantine them all and recompute.
func TestGenerateShardsWithoutMetaQuarantined(t *testing.T) {
	p := hw.TX2()
	cfg := DefaultConfig(8, 3)
	want := referenceBytes(t, p, cfg)
	dir, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := GenerateCheckpointed(p, cfg, CheckpointOptions{Dir: dir, ShardSize: 4}); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir.Root(), metaShardName)); err != nil {
		t.Fatal(err)
	}
	a, b, st, err := GenerateCheckpointed(p, cfg, CheckpointOptions{Dir: dir, ShardSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.ResumedNetworks != 0 || st.QuarantinedShards != 2 {
		t.Fatalf("status = %+v, want 0 resumed / 2 quarantined", st)
	}
	if got := savedBytes(t, p.Name, a, b); !bytes.Equal(got, want) {
		t.Fatal("output after meta loss differs")
	}
}
