package dataset

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"powerlens/internal/hw"
	"powerlens/internal/models"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden.json from current behaviour")

// goldenEntry pins the per-model quantities every experiment depends on:
// cost accounting, the canonical clustering choice, and the oracle levels.
// A diff here means the cost model or Algorithm 1 changed behaviour — which
// must be a deliberate, reviewed decision (run with -update to accept).
type goldenEntry struct {
	FLOPs      int64 `json:"flops"`
	Params     int64 `json:"params"`
	MemBytes   int64 `json:"mem_bytes"`
	LayerCount int   `json:"layers"`
	TX2Cell    int   `json:"tx2_cell"`
	TX2Blocks  int   `json:"tx2_blocks"`
	TX2Levels  []int `json:"tx2_levels"`
	AGXBlocks  int   `json:"agx_blocks"`
	AGXLevels  []int `json:"agx_levels"`
}

func computeGolden() map[string]goldenEntry {
	tx2, agx := hw.TX2(), hw.AGX()
	grid := DefaultGrid()
	out := map[string]goldenEntry{}
	for _, name := range models.Names() {
		g := models.MustBuild(name)
		e := goldenEntry{
			FLOPs:      g.TotalFLOPs(),
			Params:     g.TotalParams(),
			MemBytes:   g.TotalMemBytes(),
			LayerCount: len(g.Layers),
		}
		cell, view, levels := BestClustering(tx2, g, grid)
		e.TX2Cell, e.TX2Blocks, e.TX2Levels = cell, view.NumBlocks(), levels
		_, viewA, levelsA := BestClustering(agx, g, grid)
		e.AGXBlocks, e.AGXLevels = viewA.NumBlocks(), levelsA
		out[name] = e
	}
	return out
}

func goldenPath(t *testing.T) string {
	t.Helper()
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	return filepath.Join("testdata", "golden.json")
}

func TestGoldenModelBehaviour(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep")
	}
	path := goldenPath(t)
	got := computeGolden()

	if *updateGolden {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(got); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update to create): %v", err)
	}
	var want map[string]goldenEntry
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("%s: missing from current models", name)
			continue
		}
		if g.FLOPs != w.FLOPs || g.Params != w.Params || g.MemBytes != w.MemBytes {
			t.Errorf("%s: cost accounting changed: flops %d->%d params %d->%d mem %d->%d",
				name, w.FLOPs, g.FLOPs, w.Params, g.Params, w.MemBytes, g.MemBytes)
		}
		if g.LayerCount != w.LayerCount {
			t.Errorf("%s: layer count %d->%d", name, w.LayerCount, g.LayerCount)
		}
		if g.TX2Cell != w.TX2Cell || g.TX2Blocks != w.TX2Blocks {
			t.Errorf("%s: TX2 clustering changed: cell %d->%d blocks %d->%d",
				name, w.TX2Cell, g.TX2Cell, w.TX2Blocks, g.TX2Blocks)
		}
		if !equalInts(g.TX2Levels, w.TX2Levels) {
			t.Errorf("%s: TX2 oracle levels %v -> %v", name, w.TX2Levels, g.TX2Levels)
		}
		if g.AGXBlocks != w.AGXBlocks || !equalInts(g.AGXLevels, w.AGXLevels) {
			t.Errorf("%s: AGX clustering changed: blocks %d->%d levels %v->%v",
				name, w.AGXBlocks, g.AGXBlocks, w.AGXLevels, g.AGXLevels)
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("%s: new model missing from golden file (run -update)", name)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
