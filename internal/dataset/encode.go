package dataset

import (
	"encoding/json"
	"fmt"
	"os"
)

// fileFormat wraps both datasets for on-disk storage (cmd/datasetgen writes
// it, cmd/trainer reads it).
type fileFormat struct {
	Platform string    `json:"platform"`
	A        *DatasetA `json:"dataset_a"`
	B        *DatasetB `json:"dataset_b"`
}

// Save writes both datasets to a JSON file.
func Save(path, platform string, a *DatasetA, b *DatasetB) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: save: %w", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	if err := enc.Encode(fileFormat{Platform: platform, A: a, B: b}); err != nil {
		return fmt.Errorf("dataset: encode: %w", err)
	}
	return nil
}

// Load reads datasets written by Save.
func Load(path string) (platform string, a *DatasetA, b *DatasetB, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", nil, nil, fmt.Errorf("dataset: load: %w", err)
	}
	defer f.Close()
	var ff fileFormat
	if err := json.NewDecoder(f).Decode(&ff); err != nil {
		return "", nil, nil, fmt.Errorf("dataset: decode: %w", err)
	}
	if ff.A == nil || ff.B == nil {
		return "", nil, nil, fmt.Errorf("dataset: file %s missing datasets", path)
	}
	return ff.Platform, ff.A, ff.B, nil
}
