// Package dataset implements the §2.2 dataset generator. A random-DNN
// generator produces networks; each is clustered under a grid of candidate
// hyperparameters; every resulting power block is "deployed" at all GPU
// frequencies of the target platform (the oracle sweep) to find its
// energy-optimal level. The sweep labels two datasets:
//
//   - Dataset A: whole-network global features → the grid cell (ε, minPts)
//     whose power view achieves the best total energy, including DVFS switch
//     costs. Trains the clustering hyperparameter prediction model (Fig. 3).
//   - Dataset B: per-block global features → the block's optimal frequency
//     level. Trains the target frequency decision model (Fig. 4).
//
// The paper generates 8 000 networks yielding 31 242 block samples; tests
// use scaled-down counts, cmd/datasetgen regenerates the full scale.
package dataset

import (
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"powerlens/internal/cluster"
	"powerlens/internal/features"
	"powerlens/internal/graph"
	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/nn"
	"powerlens/internal/sim"
)

// Config controls dataset generation.
type Config struct {
	NumNetworks int
	Seed        int64
	Grid        []cluster.Hyperparams
	GenCfg      models.GeneratorConfig

	// Workers caps the generation worker pool (0 = GOMAXPROCS). Results are
	// identical for any worker count.
	Workers int

	// disableCostCache forces the uncached oracle-sweep path; the
	// byte-identity regression tests flip it to prove the segment-cost cache
	// cannot move Dataset A/B outputs.
	disableCostCache bool
}

// DefaultGrid returns the candidate (ε, minPts) grid: 4 radii × 2 densities
// = 8 classes for the hyperparameter model. Keeping the cells few and
// well-separated keeps Dataset A's classes distinct and learnable.
func DefaultGrid() []cluster.Hyperparams {
	alpha, lambda := cluster.DefaultDistanceParams()
	var grid []cluster.Hyperparams
	for _, eps := range []float64{0.15, 0.22, 0.30, 0.40} {
		for _, minPts := range []int{2, 8} {
			grid = append(grid, cluster.Hyperparams{
				Eps: eps, MinPts: minPts, Alpha: alpha, Lambda: lambda,
			})
		}
	}
	return grid
}

// DefaultConfig returns a test-scale configuration.
func DefaultConfig(numNetworks int, seed int64) Config {
	return Config{
		NumNetworks: numNetworks,
		Seed:        seed,
		Grid:        DefaultGrid(),
		GenCfg:      models.DefaultGeneratorConfig(),
	}
}

// DatasetA holds hyperparameter-model training samples.
type DatasetA struct {
	Samples []nn.Sample
	Grid    []cluster.Hyperparams
}

// DatasetB holds decision-model training samples.
type DatasetB struct {
	Samples   []nn.Sample
	NumLevels int
}

// netResult is one network's contribution to the datasets. Checkpoint
// shards serialize it (see checkpoint.go), so restored results must equal
// freshly computed ones bit-for-bit — which they do, because computeNet is a
// pure function of (cfg, i).
type netResult struct {
	aSample  nn.Sample
	bSamples []nn.Sample
	ok       bool
}

// computeNet generates and sweeps network i: the per-network seed derives
// from cfg.Seed alone, so the result is deterministic and independent of
// scheduling, worker count, and resume history.
func computeNet(p *hw.Platform, cfg Config, order []int, sc *cluster.Scratch, i int) netResult {
	rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(i)))
	g := models.RandomDNN(rng, cfg.GenCfg, i)
	bestCell, view, levels := bestClustering(p, g, cfg.Grid, order, !cfg.disableCostCache, sc)
	if bestCell < 0 {
		return netResult{}
	}
	gl := features.ExtractGlobal(g)
	r := netResult{ok: true, aSample: nn.Sample{
		Structural: gl.Structural, Stats: gl.Stats, Label: bestCell,
	}}
	for bi, b := range view.Blocks {
		bg := features.ExtractBlockGlobal(g, b.StartLayer, b.EndLayer)
		r.bSamples = append(r.bSamples, nn.Sample{
			Structural: bg.Structural, Stats: bg.Stats, Label: levels[bi],
		})
	}
	return r
}

// clampWorkers resolves a worker-count knob against the job size.
func clampWorkers(workers, jobs int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > jobs {
		workers = jobs
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// assemble folds per-network results (index order) into the two datasets.
func assemble(p *hw.Platform, cfg Config, results []netResult) (*DatasetA, *DatasetB) {
	dsA := &DatasetA{Grid: cfg.Grid}
	dsB := &DatasetB{NumLevels: p.NumGPULevels()}
	for _, r := range results {
		if !r.ok {
			continue
		}
		dsA.Samples = append(dsA.Samples, r.aSample)
		dsB.Samples = append(dsB.Samples, r.bSamples...)
	}
	return dsA, dsB
}

// Generate produces both datasets for one platform. Networks are processed
// by a worker pool (the grid sweep per network is independent), with
// per-network seeds derived from cfg.Seed so results are deterministic and
// independent of scheduling.
func Generate(p *hw.Platform, cfg Config) (*DatasetA, *DatasetB) {
	results := make([]netResult, cfg.NumNetworks)
	workers := clampWorkers(cfg.Workers, cfg.NumNetworks)
	// The canonical tie-break order depends only on the shared grid: compute
	// it once here instead of once per network inside the sweep.
	order := canonicalOrder(cfg.Grid)
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sc cluster.Scratch
			for i := range idx {
				results[i] = computeNet(p, cfg, order, &sc, i)
			}
		}()
	}
	for i := 0; i < cfg.NumNetworks; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()

	return assemble(p, cfg, results)
}

// BestClustering sweeps the hyperparameter grid over g, evaluating each
// candidate power view by its oracle energy (per-block optimal frequencies
// plus switch costs), and returns the winning grid index, its power view,
// and the per-block optimal levels. Returns bestCell == -1 when the graph
// has no operators to cluster.
func BestClustering(p *hw.Platform, g *graph.Graph, grid []cluster.Hyperparams) (bestCell int, view *cluster.PowerView, levels []int) {
	var sc cluster.Scratch
	return bestClustering(p, g, grid, canonicalOrder(grid), true, &sc)
}

// bestClustering is BestClustering's worker-pool form: the canonical
// tie-break order is hoisted to the caller (it depends only on the grid),
// clustering scratch is reused across cells and networks, and the oracle
// sweep runs over a per-network segment-cost cache unless useCostCache is
// off (the uncached path exists for the byte-identity regression tests).
func bestClustering(p *hw.Platform, g *graph.Graph, grid []cluster.Hyperparams, order []int, useCostCache bool, sc *cluster.Scratch) (bestCell int, view *cluster.PowerView, levels []int) {
	x, ids := features.ScaledDepthwise(g)
	if x.Rows == 0 {
		return -1, nil, nil
	}
	alpha, lambda := grid[0].Alpha, grid[0].Lambda
	d := cluster.BlendedDistance(x, alpha, lambda)

	var ct *sim.CostTable
	if useCostCache {
		ct = sim.NewCostTable(p, g)
	}
	type candidate struct {
		view   *cluster.PowerView
		levels []int
		energy float64
	}
	cands := make([]candidate, len(grid))
	minE := -1.0
	for cell, hp := range grid {
		blocks := cluster.ClusterPrecomputedScratch(d, hp, sc)
		pv := viewFromRowBlocks(g.Name, blocks, ids)
		lv, energy := oracleLevels(p, g, pv, ct)
		cands[cell] = candidate{pv, lv, energy}
		if minE < 0 || energy < minE {
			minE = energy
		}
	}
	// Canonical tie-break: energy differences between cells are often within
	// measurement noise, and naive argmin would scatter near-tied labels
	// across cells, making Dataset A unlearnable. Instead, walk the grid in
	// a fixed coarse-to-fine preference order (largest minPts first, then
	// smallest ε) and pick the first cell within 1% of the optimum. Most
	// networks thus share one canonical label; finer cells win only when
	// splitting genuinely pays — exactly the distinction the hyperparameter
	// model is supposed to learn.
	bestCell = -1
	for _, cell := range order {
		if cands[cell].energy <= minE*1.01 {
			bestCell = cell
			break
		}
	}
	if bestCell >= 0 {
		view, levels = cands[bestCell].view, cands[bestCell].levels
	}
	return bestCell, view, levels
}

// canonicalOrder returns grid indices sorted coarse-to-fine: descending
// minPts, then ascending ε, then index (stable for duplicate cells).
func canonicalOrder(grid []cluster.Hyperparams) []int {
	order := make([]int, len(grid))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ga, gb := grid[order[a]], grid[order[b]]
		if ga.MinPts != gb.MinPts {
			return ga.MinPts > gb.MinPts
		}
		return ga.Eps < gb.Eps
	})
	return order
}

// OracleLevels sweeps every block of the view over the full GPU ladder,
// returning each block's energy-optimal level and the view's total energy
// per image including the energy cost of level changes at block boundaries.
func OracleLevels(p *hw.Platform, g *graph.Graph, pv *cluster.PowerView) (levels []int, totalEnergy float64) {
	return oracleLevels(p, g, pv, nil)
}

// oracleLevels runs the sweep through ct when non-nil; the cached and
// uncached paths are bit-identical (see sim.CostTable).
func oracleLevels(p *hw.Platform, g *graph.Graph, pv *cluster.PowerView, ct *sim.CostTable) (levels []int, totalEnergy float64) {
	levels = make([]int, len(pv.Blocks))
	for i, b := range pv.Blocks {
		var lvl int
		var energies []float64
		if ct != nil {
			lvl, energies = ct.OptimalSegmentLevel(b.StartLayer, b.EndLayer)
		} else {
			lvl, energies = sim.OptimalSegmentLevel(p, g, b.StartLayer, b.EndLayer)
		}
		levels[i] = lvl
		totalEnergy += energies[lvl]
	}
	// Level changes at block boundaries (and re-entry for the next image)
	// each stall the pipeline for the switch latency.
	prev := levels[len(levels)-1] // steady-state: next image follows the last block
	for _, lvl := range levels {
		if lvl != prev {
			_, e := p.SwitchCost(p.GPUFreqsHz[prev])
			totalEnergy += e
		}
		prev = lvl
	}
	return levels, totalEnergy
}

// viewFromRowBlocks maps feature-row blocks back onto graph layer IDs,
// mirroring cluster.BuildPowerView's mapping.
func viewFromRowBlocks(name string, blocks []cluster.Block, ids []int) *cluster.PowerView {
	pv := &cluster.PowerView{Model: name}
	for _, b := range blocks {
		pv.Blocks = append(pv.Blocks, cluster.PowerBlock{
			StartLayer: ids[b.Start], EndLayer: ids[b.End], NumOps: b.Len(),
		})
	}
	if len(pv.Blocks) > 0 && pv.Blocks[0].StartLayer > 0 {
		pv.Blocks[0].StartLayer = 0
	}
	return pv
}
