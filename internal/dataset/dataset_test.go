package dataset

import (
	"path/filepath"
	"testing"

	"powerlens/internal/cluster"
	"powerlens/internal/features"
	"powerlens/internal/hw"
	"powerlens/internal/models"
	"powerlens/internal/sim"
)

func TestDefaultGrid(t *testing.T) {
	grid := DefaultGrid()
	if len(grid) != 8 {
		t.Fatalf("grid size = %d, want 8", len(grid))
	}
	for i, hp := range grid {
		if err := hp.Validate(); err != nil {
			t.Fatalf("grid[%d]: %v", i, err)
		}
	}
}

func TestGenerateSmall(t *testing.T) {
	p := hw.TX2()
	a, b := Generate(p, DefaultConfig(12, 7))
	if len(a.Samples) != 12 {
		t.Fatalf("dataset A samples = %d, want 12", len(a.Samples))
	}
	if len(b.Samples) < 12 {
		t.Fatalf("dataset B samples = %d, want >= one per network", len(b.Samples))
	}
	for _, s := range a.Samples {
		if s.Label < 0 || s.Label >= len(a.Grid) {
			t.Fatalf("A label %d out of grid range", s.Label)
		}
		if len(s.Structural) != features.StructuralDim || len(s.Stats) != features.StatsDim {
			t.Fatal("A feature dims wrong")
		}
	}
	for _, s := range b.Samples {
		if s.Label < 0 || s.Label >= b.NumLevels {
			t.Fatalf("B label %d out of ladder range", s.Label)
		}
	}
	if b.NumLevels != p.NumGPULevels() {
		t.Fatal("B NumLevels mismatch")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := hw.TX2()
	a1, b1 := Generate(p, DefaultConfig(5, 3))
	a2, b2 := Generate(p, DefaultConfig(5, 3))
	if len(a1.Samples) != len(a2.Samples) || len(b1.Samples) != len(b2.Samples) {
		t.Fatal("same seed must generate identical datasets")
	}
	for i := range a1.Samples {
		if a1.Samples[i].Label != a2.Samples[i].Label {
			t.Fatal("A labels diverged")
		}
	}
	for i := range b1.Samples {
		if b1.Samples[i].Label != b2.Samples[i].Label {
			t.Fatal("B labels diverged")
		}
	}
}

func TestBestClusteringBeatsWorstCell(t *testing.T) {
	// The chosen grid cell's oracle energy must be <= every other cell's.
	p := hw.TX2()
	g := models.MustBuild("resnet152")
	grid := DefaultGrid()
	bestCell, view, levels := BestClustering(p, g, grid)
	if bestCell < 0 || view == nil || len(levels) != view.NumBlocks() {
		t.Fatalf("BestClustering returned cell=%d view=%v", bestCell, view)
	}
	_, bestE := OracleLevels(p, g, view)
	for cell := range grid {
		pv, err := cluster.BuildPowerView(g, grid[cell])
		if err != nil {
			t.Fatal(err)
		}
		_, e := OracleLevels(p, g, pv)
		if e < bestE-1e-9 {
			t.Fatalf("cell %d energy %.6f beats chosen %.6f", cell, e, bestE)
		}
	}
}

func TestOracleLevelsMatchSegmentSweep(t *testing.T) {
	p := hw.AGX()
	g := models.MustBuild("resnet34")
	pv := cluster.WholeNetworkView(g)
	levels, energy := OracleLevels(p, g, pv)
	if len(levels) != 1 {
		t.Fatalf("levels = %v", levels)
	}
	want, energies := sim.OptimalSegmentLevel(p, g, 0, len(g.Layers)-1)
	if levels[0] != want {
		t.Fatalf("oracle level %d, sweep says %d", levels[0], want)
	}
	if energy != energies[want] {
		t.Fatalf("single-block view must have no switch penalty: %g vs %g", energy, energies[want])
	}
}

func TestOracleSwitchPenalty(t *testing.T) {
	// A two-block view with different levels must cost more than the sum of
	// block energies (boundary switches).
	p := hw.TX2()
	g := models.MustBuild("vgg19") // conv body + memory-bound FC head
	// Build a view split at the flatten layer.
	split := 0
	for _, l := range g.Layers {
		if l.Kind.String() == "flatten" {
			split = l.ID
			break
		}
	}
	pv := &cluster.PowerView{Model: g.Name, Blocks: []cluster.PowerBlock{
		{StartLayer: 0, EndLayer: split - 1},
		{StartLayer: split, EndLayer: len(g.Layers) - 1},
	}}
	levels, energy := OracleLevels(p, g, pv)
	if levels[0] == levels[1] {
		t.Skip("calibration gives equal levels; switch penalty untestable here")
	}
	var sum float64
	for i, b := range pv.Blocks {
		_, es := sim.OptimalSegmentLevel(p, g, b.StartLayer, b.EndLayer)
		sum += es[levels[i]]
	}
	if energy <= sum {
		t.Fatalf("switch penalty missing: total %.6f <= sum %.6f", energy, sum)
	}
}

func TestVGGHeadPrefersLowFrequency(t *testing.T) {
	// The FC head of VGG-19 is memory-bound: its oracle level must be far
	// below the conv body's — the dispersion PowerLens exploits.
	p := hw.TX2()
	g := models.MustBuild("vgg19")
	split := 0
	for _, l := range g.Layers {
		if l.Kind.String() == "flatten" {
			split = l.ID
			break
		}
	}
	bodyLvl, _ := sim.OptimalSegmentLevel(p, g, 0, split-1)
	headLvl, _ := sim.OptimalSegmentLevel(p, g, split, len(g.Layers)-1)
	if headLvl >= bodyLvl {
		t.Fatalf("head level %d must be below body level %d", headLvl, bodyLvl)
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	p := hw.TX2()
	a, b := Generate(p, DefaultConfig(3, 9))
	path := filepath.Join(t.TempDir(), "ds.json")
	if err := Save(path, p.Name, a, b); err != nil {
		t.Fatal(err)
	}
	plat, a2, b2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if plat != p.Name {
		t.Fatalf("platform = %q", plat)
	}
	if len(a2.Samples) != len(a.Samples) || len(b2.Samples) != len(b.Samples) {
		t.Fatal("roundtrip changed sample counts")
	}
	if a2.Samples[0].Label != a.Samples[0].Label {
		t.Fatal("roundtrip changed labels")
	}
	if len(a2.Grid) != len(a.Grid) {
		t.Fatal("roundtrip lost grid")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, _, _, err := Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestDatasetBLabelDiversity(t *testing.T) {
	// Across a few dozen random networks the oracle must produce more than
	// one distinct frequency label — otherwise the decision model task is
	// degenerate.
	p := hw.TX2()
	_, b := Generate(p, DefaultConfig(25, 13))
	seen := map[int]bool{}
	for _, s := range b.Samples {
		seen[s.Label] = true
	}
	if len(seen) < 2 {
		t.Fatalf("only %d distinct frequency labels in dataset B", len(seen))
	}
}
