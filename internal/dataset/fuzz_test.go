package dataset

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzLoad guards the dataset file parser: arbitrary bytes must produce an
// error or valid datasets, never a panic.
func FuzzLoad(f *testing.F) {
	f.Add([]byte(`{"platform":"TX2","dataset_a":{"Samples":[],"Grid":[]},"dataset_b":{"Samples":[],"NumLevels":13}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`{"platform":"TX2"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "ds.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		platform, a, b, err := Load(path)
		if err != nil {
			return
		}
		if a == nil || b == nil {
			t.Fatal("nil datasets accepted")
		}
		_ = platform
		// Accepted samples must be shape-consistent enough not to crash the
		// training path guards.
		for _, s := range a.Samples {
			_ = len(s.Structural) + len(s.Stats)
		}
	})
}
