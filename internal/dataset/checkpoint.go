package dataset

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"powerlens/internal/checkpoint"
	"powerlens/internal/cluster"
	"powerlens/internal/hw"
	"powerlens/internal/nn"
)

// Checkpoint file names inside the directory: one meta shard pinning the
// run's configuration, plus one shard per ShardSize networks.
const (
	metaShardName   = "meta.ckpt"
	shardNameFormat = "shard-%05d.ckpt"
	shardGlob       = "shard-*.ckpt"

	// DefaultShardSize is the networks-per-shard granularity: small enough
	// that a crash loses at most a few minutes of the full-scale run, large
	// enough that shard I/O is noise against the oracle sweeps.
	DefaultShardSize = 64
)

// genMetaSchema versions the checkpoint metadata payload (inside the
// container, which has its own schema for the framing).
const genMetaSchema = 1

// genMeta pins the configuration a checkpoint directory belongs to. Resume
// refuses to mix checkpoints across configurations: a shard's CRC proves
// integrity, the meta digest proves provenance.
type genMeta struct {
	Schema      int    `json:"schema"`
	Platform    string `json:"platform"`
	Seed        int64  `json:"seed"`
	NumNetworks int    `json:"numNetworks"`
	ShardSize   int    `json:"shardSize"`
	// ConfigDigest fingerprints the grid and generator config, the two
	// remaining inputs that shape every sample.
	ConfigDigest string `json:"configDigest"`
}

// shardNet is one network's serialized result. Index is absolute, so a
// shard can hold any subset of its range (a drain flushes partially
// complete shards; resume fills in the rest).
type shardNet struct {
	Index int         `json:"i"`
	OK    bool        `json:"ok"`
	A     nn.Sample   `json:"a,omitempty"`
	B     []nn.Sample `json:"b,omitempty"`
}

// shardPayload is the JSON payload inside one checkpoint shard container.
type shardPayload struct {
	Shard int        `json:"shard"`
	Nets  []shardNet `json:"nets"`
}

// CheckpointOptions controls crash-safe generation.
type CheckpointOptions struct {
	// Dir receives the checkpoint shards; nil disables checkpointing (the
	// call degrades to Generate).
	Dir *checkpoint.Dir
	// ShardSize is the networks-per-shard granularity (default
	// DefaultShardSize). Resume requires the same value the directory was
	// created with.
	ShardSize int
	// Stop, when closed, drains the run: in-flight networks finish, every
	// shard with new results is flushed, and GenerateCheckpointed returns
	// with Drained set instead of datasets.
	Stop <-chan struct{}
	// Logf receives progress and quarantine notices (nil = silent).
	Logf func(format string, args ...any)
}

// GenStatus reports how a checkpointed generation run ended.
type GenStatus struct {
	// Drained is true when Stop fired before all networks were generated;
	// the datasets are nil and a later call resumes from the flushed shards.
	Drained bool
	// ResumedNetworks counts results restored from verified shards.
	ResumedNetworks int
	// QuarantinedShards counts shards that failed verification (container
	// or semantic) and were moved to quarantine; their networks recompute.
	QuarantinedShards int
	// ShardsWritten counts shard flushes performed by this call.
	ShardsWritten int
}

func (o CheckpointOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

func shardName(s int) string { return fmt.Sprintf(shardNameFormat, s) }

func genConfigDigest(cfg Config) string {
	return checkpoint.MustDigestJSON(struct {
		Grid   []cluster.Hyperparams
		GenCfg any
	}{cfg.Grid, cfg.GenCfg})
}

// GenerateCheckpointed is Generate with crash safety: completed networks are
// checkpointed in shards as they finish, a restart skips every shard that
// verifies, and the final datasets are byte-identical to an uninterrupted
// Generate for any worker count and any kill/resume history. Corrupt or
// truncated shards are detected via their CRC32C/length footer and
// quarantined, never consumed.
func GenerateCheckpointed(p *hw.Platform, cfg Config, opt CheckpointOptions) (*DatasetA, *DatasetB, *GenStatus, error) {
	st := &GenStatus{}
	if opt.Dir == nil {
		a, b := Generate(p, cfg)
		return a, b, st, nil
	}
	shardSize := opt.ShardSize
	if shardSize <= 0 {
		shardSize = DefaultShardSize
	}
	if cfg.NumNetworks < 0 {
		return nil, nil, st, fmt.Errorf("dataset: negative network count %d", cfg.NumNetworks)
	}
	numShards := (cfg.NumNetworks + shardSize - 1) / shardSize

	meta := genMeta{
		Schema:       genMetaSchema,
		Platform:     p.Name,
		Seed:         cfg.Seed,
		NumNetworks:  cfg.NumNetworks,
		ShardSize:    shardSize,
		ConfigDigest: genConfigDigest(cfg),
	}
	if err := reconcileMeta(opt.Dir, meta, st, opt.logf); err != nil {
		return nil, nil, st, err
	}

	results := make([]netResult, cfg.NumNetworks)
	done := make([]bool, cfg.NumNetworks)
	savedCount := make([]int, numShards)
	doneCount := make([]int, numShards)
	restoreShards(opt.Dir, meta, results, done, savedCount, st, opt.logf)
	for i, d := range done {
		if d {
			doneCount[i/shardSize]++
		}
	}

	var pending []int
	for i := range done {
		if !done[i] {
			pending = append(pending, i)
		}
	}

	writeShard := func(s int) error {
		lo, hi := s*shardSize, (s+1)*shardSize
		if hi > cfg.NumNetworks {
			hi = cfg.NumNetworks
		}
		sp := shardPayload{Shard: s}
		for i := lo; i < hi; i++ {
			if !done[i] {
				continue
			}
			r := results[i]
			net := shardNet{Index: i, OK: r.ok}
			if r.ok {
				net.A, net.B = r.aSample, r.bSamples
			}
			sp.Nets = append(sp.Nets, net)
		}
		payload, err := json.Marshal(sp)
		if err != nil {
			return fmt.Errorf("dataset: encode shard %d: %w", s, err)
		}
		if err := opt.Dir.Write(shardName(s), payload); err != nil {
			return fmt.Errorf("dataset: checkpoint shard %d: %w", s, err)
		}
		savedCount[s] = len(sp.Nets)
		st.ShardsWritten++
		return nil
	}

	drained := false
	var writeErr error
	if len(pending) > 0 {
		workers := clampWorkers(cfg.Workers, len(pending))
		order := canonicalOrder(cfg.Grid)

		type indexed struct {
			i   int
			res netResult
		}
		idx := make(chan int)
		out := make(chan indexed, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var sc cluster.Scratch
				for i := range idx {
					out <- indexed{i, computeNet(p, cfg, order, &sc, i)}
				}
			}()
		}
		// The dispatcher stops feeding when Stop fires; workers then drain
		// their in-flight network and exit. drained is read only after the
		// out channel closes, which the close(idx)->wg.Wait chain orders.
		go func() {
			defer close(idx)
			for _, i := range pending {
				select {
				case <-opt.Stop:
					drained = true
					return
				case idx <- i:
				}
			}
		}()
		go func() {
			wg.Wait()
			close(out)
		}()
		for ir := range out {
			results[ir.i] = ir.res
			done[ir.i] = true
			s := ir.i / shardSize
			doneCount[s]++
			if writeErr == nil && doneCount[s] == shardLen(s, shardSize, cfg.NumNetworks) {
				writeErr = writeShard(s)
			}
		}
	}
	if writeErr != nil {
		return nil, nil, st, writeErr
	}
	if drained {
		// Flush every shard holding results the directory does not have yet,
		// so the drain loses nothing that finished.
		for s := 0; s < numShards; s++ {
			if doneCount[s] > savedCount[s] {
				if err := writeShard(s); err != nil {
					return nil, nil, st, err
				}
			}
		}
		st.Drained = true
		opt.logf("dataset: drained with %d/%d networks checkpointed", completed(done), cfg.NumNetworks)
		return nil, nil, st, nil
	}
	a, b := assemble(p, cfg, results)
	return a, b, st, nil
}

func shardLen(s, shardSize, total int) int {
	lo, hi := s*shardSize, (s+1)*shardSize
	if hi > total {
		hi = total
	}
	return hi - lo
}

func completed(done []bool) int {
	n := 0
	for _, d := range done {
		if d {
			n++
		}
	}
	return n
}

// reconcileMeta verifies the directory belongs to this configuration. A
// missing or corrupt meta with shards present means the shards' provenance
// is unknowable: they are quarantined wholesale and the run starts fresh. A
// readable meta that disagrees with the configuration is a hard error — the
// caller pointed resume at the wrong directory.
func reconcileMeta(dir *checkpoint.Dir, want genMeta, st *GenStatus, logf func(string, ...any)) error {
	payload, err := dir.Read(metaShardName)
	switch {
	case err == nil:
		var have genMeta
		if jerr := json.Unmarshal(payload, &have); jerr == nil && have.Schema == genMetaSchema {
			if have != want {
				return fmt.Errorf("dataset: checkpoint dir %s belongs to a different run "+
					"(have platform=%s seed=%d networks=%d shard=%d digest=%s, "+
					"want platform=%s seed=%d networks=%d shard=%d digest=%s); use a fresh directory",
					dir.Root(),
					have.Platform, have.Seed, have.NumNetworks, have.ShardSize, have.ConfigDigest,
					want.Platform, want.Seed, want.NumNetworks, want.ShardSize, want.ConfigDigest)
			}
			return nil
		}
		// Container verified but payload is not ours: quarantine it and fall
		// through to the fresh-directory path.
		if _, qerr := dir.Quarantine(metaShardName, "semantic"); qerr == nil {
			st.QuarantinedShards++
			logf("dataset: quarantined unreadable checkpoint meta")
		}
	case os.IsNotExist(err):
		// Fresh directory (or meta lost): handled below.
	default:
		// Corrupt meta was quarantined by Read.
		st.QuarantinedShards++
		logf("dataset: quarantined corrupt checkpoint meta: %v", err)
	}

	// No trustworthy meta. Any existing shards have unknown provenance —
	// quarantine them rather than risk mixing configurations.
	shards, lerr := dir.List(shardGlob)
	if lerr != nil {
		return lerr
	}
	for _, name := range shards {
		if _, qerr := dir.Quarantine(name, "no-meta"); qerr == nil {
			st.QuarantinedShards++
			logf("dataset: quarantined %s (no checkpoint meta to vouch for it)", name)
		}
	}
	payloadOut, merr := json.Marshal(want)
	if merr != nil {
		return fmt.Errorf("dataset: encode checkpoint meta: %w", merr)
	}
	if werr := dir.Write(metaShardName, payloadOut); werr != nil {
		return fmt.Errorf("dataset: write checkpoint meta: %w", werr)
	}
	return nil
}

// restoreShards loads every verifiable shard, marking its networks done.
// Shards that fail container verification are quarantined by Dir.Read;
// shards that verify but carry out-of-range or duplicate indices are
// quarantined here. Either way their networks recompute — detection over
// silent consumption.
func restoreShards(dir *checkpoint.Dir, meta genMeta, results []netResult, done []bool,
	savedCount []int, st *GenStatus, logf func(string, ...any)) {
	numShards := len(savedCount)
	for s := 0; s < numShards; s++ {
		name := shardName(s)
		payload, err := dir.Read(name)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			st.QuarantinedShards++
			logf("dataset: %v", err)
			continue
		}
		var sp shardPayload
		if jerr := json.Unmarshal(payload, &sp); jerr != nil || !shardValid(sp, s, meta) {
			if _, qerr := dir.Quarantine(name, "semantic"); qerr == nil {
				st.QuarantinedShards++
				logf("dataset: quarantined %s (invalid shard payload)", name)
			}
			continue
		}
		for _, net := range sp.Nets {
			r := netResult{ok: net.OK}
			if net.OK {
				r.aSample, r.bSamples = net.A, net.B
			}
			results[net.Index] = r
			done[net.Index] = true
			st.ResumedNetworks++
		}
		savedCount[s] = len(sp.Nets)
	}
}

// shardValid checks a decoded shard's semantic invariants against the meta.
func shardValid(sp shardPayload, s int, meta genMeta) bool {
	if sp.Shard != s {
		return false
	}
	lo, hi := s*meta.ShardSize, (s+1)*meta.ShardSize
	if hi > meta.NumNetworks {
		hi = meta.NumNetworks
	}
	seen := make(map[int]bool, len(sp.Nets))
	for _, net := range sp.Nets {
		if net.Index < lo || net.Index >= hi || seen[net.Index] {
			return false
		}
		if net.OK && len(net.A.Structural) == 0 {
			return false
		}
		seen[net.Index] = true
	}
	return true
}
