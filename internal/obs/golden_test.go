package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a fixed registry covering every exporter feature:
// zero-label counter, labelled counter, gauge, and a labelled histogram.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("sim_energy_joules_total", "Exactly-integrated rail energy.").Add(123.456)
	jobs := r.Counter("cloud_jobs_total", "Jobs by outcome.", "outcome")
	jobs.Add(40, "completed")
	jobs.Add(2, "failover")
	r.Gauge("hw_gpu_level", "Current GPU ladder level.").Set(7)
	h := r.Histogram("sim_window_power_watts", "Window power.", []float64{1, 4, 16}, "controller")
	for _, v := range []float64{0.5, 2, 8, 32} {
		h.Observe(v, "PowerLens")
	}
	return r
}

// TestPrometheusGolden pins the exact text-exposition bytes the exporter
// produces and checks they satisfy the format checker. A diff here means the
// export format drifted — update deliberately with `go test -update`.
func TestPrometheusGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	path := filepath.Join("testdata", "metrics.golden.prom")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run `go test -update ./internal/obs` to create it)", err)
	}
	if got != string(want) {
		t.Fatalf("prometheus output drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	fams, err := CheckPrometheusText(strings.NewReader(got))
	if err != nil {
		t.Fatalf("golden output fails the format checker: %v", err)
	}
	if fams != 4 {
		t.Fatalf("families = %d, want 4", fams)
	}
}
