package obs

import (
	"testing"
	"time"
)

func TestNilObserver(t *testing.T) {
	var o *Observer
	// The entire API must be callable on nil — this is the disabled path the
	// executor takes when Obs is unset.
	o.SetClock(func() time.Duration { return time.Second })
	if o.Now() != 0 {
		t.Fatal("nil observer clock must read 0")
	}
	o.Span("c", "n", 0, time.Second, nil)
	o.Mark("c", "n", 0, nil)
	o.MarkNow("c", "n", nil)
	if o.ForTrack(7) != nil {
		t.Fatal("ForTrack on nil must stay nil")
	}
}

func TestObserverClockAndTracks(t *testing.T) {
	o := New()
	now := 250 * time.Millisecond
	o.SetClock(func() time.Duration { return now })
	o.MarkNow("guard", "decision", nil)

	// A per-node copy shares the sinks but has its own track and clock.
	n := o.ForTrack(105)
	if n.Metrics != o.Metrics || n.Tracer != o.Tracer || n.Profiler != o.Profiler {
		t.Fatal("ForTrack must share the sinks")
	}
	if n.Now() != 0 {
		t.Fatal("ForTrack must not inherit the clock")
	}
	n.SetClock(func() time.Duration { return time.Second })
	n.MarkNow("guard", "decision", nil)
	if o.Now() != now {
		t.Fatal("copy clock must not leak back")
	}

	evs := o.Tracer.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if evs[0].TID != 1 || evs[0].Start() != now {
		t.Fatalf("track-1 event = %+v", evs[0])
	}
	if evs[1].TID != 105 || evs[1].Start() != time.Second {
		t.Fatalf("track-105 event = %+v", evs[1])
	}
}
