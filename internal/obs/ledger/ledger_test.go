package ledger

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"powerlens/internal/obs"
)

// feed replays a deterministic event stream into l, as if from one executor.
func feed(l *Ledger, n int) {
	for i := 0; i < n; i++ {
		feedOne(l, i)
	}
}

func encode(t *testing.T, l *Ledger) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	l := New()
	feed(l, 1000)
	snap := l.Snapshot()
	if snap.Schema != SnapshotSchema {
		t.Fatalf("schema = %d", snap.Schema)
	}
	if len(snap.Cells) == 0 || len(snap.Models) != 3 {
		t.Fatalf("snapshot empty: %d cells, %d models", len(snap.Cells), len(snap.Models))
	}
	for i := 1; i < len(snap.Cells); i++ {
		a, b := snap.Cells[i-1], snap.Cells[i]
		if a.Digest > b.Digest ||
			(a.Digest == b.Digest && (a.Block > b.Block ||
				(a.Block == b.Block && a.Level >= b.Level))) {
			t.Fatalf("cells not strictly sorted at %d: %+v then %+v", i, a, b)
		}
	}
	var ops uint64
	for _, c := range snap.Cells {
		ops += c.Ops
		if c.BusyS <= 0 || c.EnergyJ <= 0 {
			t.Fatalf("cell missing data: %+v", c)
		}
	}
	if ops != 1000 {
		t.Fatalf("total ops = %d, want 1000", ops)
	}
	for _, m := range snap.Models {
		if m.Passes == 0 || m.LatencyP50S <= 0 || len(m.LatencySketch) == 0 {
			t.Fatalf("model missing data: %+v", m)
		}
	}
}

// TestMergePartitionByteIdentical pins the shard-determinism contract: the
// same event stream split across any number of per-node ledgers and merged in
// node order must export byte-identical JSON.
func TestMergePartitionByteIdentical(t *testing.T) {
	want := func() []byte {
		l := New()
		feed(l, 2000)
		return encode(t, l)
	}()
	for _, nodes := range []int{2, 3, 4, 8} {
		parts := make([]*Ledger, nodes)
		for i := range parts {
			parts[i] = New()
		}
		for i := 0; i < 2000; i++ {
			feedOne(parts[i%nodes], i)
		}
		// Merge forward and in reverse: both must match the single-stream
		// ledger byte for byte.
		fwd, rev := New(), New()
		for i := range parts {
			fwd.Merge(parts[i])
			rev.Merge(parts[len(parts)-1-i])
		}
		if !bytes.Equal(encode(t, fwd), want) {
			t.Fatalf("%d-way partition merge is not byte-identical", nodes)
		}
		if !bytes.Equal(encode(t, rev), want) {
			t.Fatalf("%d-way reverse-order merge is not byte-identical", nodes)
		}
	}
}

// feedOne replays just event i of the canonical stream.
func feedOne(l *Ledger, i int) {
	digest := uint64(1 + i%3)
	k := Key{Model: digest, Block: int32(i % 2), Level: int32(3 + i%4)}
	l.RecordSegment(k, "m", time.Duration(i%7+1)*time.Millisecond, 0.01*float64(i%5+1))
	if i%10 == 9 {
		l.RecordPass(digest, "m", time.Duration(i%50+10)*time.Millisecond, 0.3, i%30 == 9)
	}
}

func TestRecordSegmentZeroAllocSteadyState(t *testing.T) {
	l := New()
	k := Key{Model: 42, Block: 1, Level: 3}
	l.RecordSegment(k, "alexnet", time.Millisecond, 0.5) // create the cell
	allocs := testing.AllocsPerRun(100, func() {
		l.RecordSegment(k, "alexnet", time.Millisecond, 0.5)
	})
	if allocs != 0 {
		t.Fatalf("steady-state RecordSegment allocated %.0f times, want 0", allocs)
	}
}

func TestNilLedger(t *testing.T) {
	var l *Ledger
	l.RecordSegment(Key{}, "x", time.Second, 1)
	l.RecordPass(1, "x", time.Second, 1, true)
	l.Merge(New())
	New().Merge(l)
	l.ExportTo(obs.NewRegistry())
	snap := l.Snapshot()
	if len(snap.Cells) != 0 || len(snap.Models) != 0 {
		t.Fatal("nil ledger snapshot not empty")
	}
	if err := l.WriteJSON(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestExportTo(t *testing.T) {
	l := New()
	feed(l, 500)
	r := obs.NewRegistry()
	l.ExportTo(r)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if fams, err := obs.CheckPrometheusText(strings.NewReader(out)); err != nil || fams != 6 {
		t.Fatalf("export invalid (families=%d): %v\n%s", fams, err, out)
	}
	for _, want := range []string{
		`ledger_block_energy_joules_total{model="m",block="0",level="3"} `,
		`ledger_pass_latency_seconds{model="m",quantile="0.9"} `,
		"# TYPE ledger_passes_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("export missing %q:\n%s", want, out)
		}
	}

	// Export totals must match the snapshot exactly.
	snap := l.Snapshot()
	var wantEnergy float64
	for _, c := range snap.Cells {
		wantEnergy += c.EnergyJ
	}
	for _, f := range r.Snapshot() {
		if f.Name == "ledger_block_energy_joules_total" {
			if got := f.Total(); got != wantEnergy {
				t.Fatalf("exported energy %v != snapshot %v", got, wantEnergy)
			}
		}
	}
}
