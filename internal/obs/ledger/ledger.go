// Package ledger implements the energy/latency attribution ledger: it answers
// "where did the joules go" at (model digest, power block, DVFS level)
// granularity, and "what did latency look like" per model, from events the
// sim executor's step loop emits.
//
// Design constraints, inherited from the obs layer:
//
//   - Nil-safe: a nil *Ledger accepts every call and does nothing, so the
//     executor pays one pointer check per layer when attribution is off.
//   - Zero steady-state allocations: RecordSegment on an existing
//     (digest, block, level) cell touches no heap.
//   - Deterministic merge: all mergeable state is integral — event counts,
//     time.Duration busy time, energy quantized to nanojoules at record time,
//     and sketch bucket counts — so Merge is associative and commutative.
//     Splitting an event stream across any number of nodes, workers or
//     dispatch shards and merging the pieces in any order yields the same
//     ledger, and snapshots/exports walk cells in sorted key order, so equal
//     ledgers always export equal bytes.
package ledger

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"powerlens/internal/obs"
	"powerlens/internal/obs/sketch"
)

// Key addresses one attribution cell. Model is the canonical graph digest
// (graph.Digest); Block is the 0-based power block from the controller's
// frequency plan (0 when the controller has no block structure); Level is the
// GPU DVFS level the work ran at.
type Key struct {
	Model uint64
	Block int32
	Level int32
}

// cell is the mutable state behind one key. Energy is kept in integer
// nanojoules so accumulation and merging are exact and order-independent.
type cell struct {
	name     string // model name, for human-readable exports
	ops      uint64 // layer executions attributed here
	busy     time.Duration
	energyNJ uint64
}

// model aggregates per-model pass statistics.
type model struct {
	name       string
	passes     uint64
	violations uint64
	energyNJ   uint64
	lat        *sketch.Sketch // per-pass wall latency, seconds
}

// toNJ quantizes joules to nanojoules, the ledger's native unit. The
// quantization happens once per event, so it is a pure function of the event
// and never depends on accumulation order.
func toNJ(energyJ float64) uint64 {
	if energyJ <= 0 {
		return 0
	}
	return uint64(energyJ*1e9 + 0.5)
}

// Ledger accumulates attribution cells. Safe for concurrent use; the intended
// high-throughput path is one private ledger per node/worker merged at the
// end, with the mutex only there to make stray concurrent use safe rather
// than fast.
type Ledger struct {
	mu     sync.Mutex
	cells  map[Key]*cell
	models map[uint64]*model
}

// New returns an empty ledger.
func New() *Ledger {
	return &Ledger{cells: map[Key]*cell{}, models: map[uint64]*model{}}
}

// RecordSegment attributes one executed layer (or layer batch) to a cell.
// Steady-state calls on an existing cell allocate nothing.
func (l *Ledger) RecordSegment(k Key, name string, busy time.Duration, energyJ float64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	c, ok := l.cells[k]
	if !ok {
		c = &cell{name: name}
		l.cells[k] = c
	}
	c.ops++
	c.busy += busy
	c.energyNJ += toNJ(energyJ)
	l.mu.Unlock()
}

// Quantize converts joules to the ledger's native nanojoule unit, exactly as
// RecordSegment does per event. Exported for callers that aggregate segment
// events outside the ledger (the executor's flow summaries) and later apply
// them through AddSegments: quantizing per event before summing keeps the
// aggregate equal to what the per-event calls would have accumulated.
func Quantize(energyJ float64) uint64 { return toNJ(energyJ) }

// AddSegments attributes an aggregated batch of layer executions to a cell
// in one call: ops executions totalling busy GPU time and energyNJ
// nanojoules (per-event quantized; see Quantize). Because cell state is
// integral, this is exactly equivalent to ops individual RecordSegment
// calls — the macro-stepping executor applies whole-pass deltas through it.
func (l *Ledger) AddSegments(k Key, name string, ops uint64, busy time.Duration, energyNJ uint64) {
	if l == nil || ops == 0 {
		return
	}
	l.mu.Lock()
	c, ok := l.cells[k]
	if !ok {
		c = &cell{name: name}
		l.cells[k] = c
	}
	c.ops += ops
	c.busy += busy
	c.energyNJ += energyNJ
	l.mu.Unlock()
}

// RecordPass records one completed inference pass for a model: its wall
// latency, energy, and whether it violated the QoS budget.
func (l *Ledger) RecordPass(digest uint64, name string, wall time.Duration, energyJ float64, violated bool) {
	if l == nil {
		return
	}
	l.mu.Lock()
	m, ok := l.models[digest]
	if !ok {
		m = &model{name: name, lat: sketch.New()}
		l.models[digest] = m
	}
	m.passes++
	if violated {
		m.violations++
	}
	m.energyNJ += toNJ(energyJ)
	m.lat.Observe(wall.Seconds())
	l.mu.Unlock()
}

// Merge folds src into l. Cells merge by key, models by digest; the walk is
// in sorted key order so float accumulation order is reproducible. src is
// left untouched. Copies are taken under src's lock and folded under l's, so
// the two locks are never held at once.
func (l *Ledger) Merge(src *Ledger) {
	if l == nil || src == nil {
		return
	}
	type kcell struct {
		k Key
		c cell
	}
	type dmodel struct {
		d uint64
		m model
		s *sketch.Sketch
	}
	src.mu.Lock()
	cells := make([]kcell, 0, len(src.cells))
	for _, k := range sortedKeys(src.cells) {
		cells = append(cells, kcell{k, *src.cells[k]})
	}
	models := make([]dmodel, 0, len(src.models))
	for _, d := range sortedDigests(src.models) {
		m := src.models[d]
		clone := sketch.New()
		clone.Merge(m.lat)
		models = append(models, dmodel{d, *m, clone})
	}
	src.mu.Unlock()

	l.mu.Lock()
	for _, kc := range cells {
		c, ok := l.cells[kc.k]
		if !ok {
			c = &cell{name: kc.c.name}
			l.cells[kc.k] = c
		}
		c.ops += kc.c.ops
		c.busy += kc.c.busy
		c.energyNJ += kc.c.energyNJ
	}
	for _, dm := range models {
		m, ok := l.models[dm.d]
		if !ok {
			m = &model{name: dm.m.name, lat: sketch.New()}
			l.models[dm.d] = m
		}
		m.passes += dm.m.passes
		m.violations += dm.m.violations
		m.energyNJ += dm.m.energyNJ
		m.lat.Merge(dm.s)
	}
	l.mu.Unlock()
}

func sortedKeys(cells map[Key]*cell) []Key {
	ks := make([]Key, 0, len(cells))
	for k := range cells {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].less(ks[j]) })
	return ks
}

func sortedDigests(models map[uint64]*model) []uint64 {
	ds := make([]uint64, 0, len(models))
	for d := range models {
		ds = append(ds, d)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds
}

func (k Key) less(o Key) bool {
	if k.Model != o.Model {
		return k.Model < o.Model
	}
	if k.Block != o.Block {
		return k.Block < o.Block
	}
	return k.Level < o.Level
}

// CellSnapshot is one attribution cell in a snapshot, sorted by
// (model digest, block, level).
type CellSnapshot struct {
	Model   string  `json:"model"`
	Digest  string  `json:"digest"` // %016x of the graph digest
	Block   int     `json:"block"`
	Level   int     `json:"level"`
	Ops     uint64  `json:"ops"`
	BusyS   float64 `json:"busyS"`
	EnergyJ float64 `json:"energyJ"`
}

// ModelSnapshot is one model's pass statistics in a snapshot.
type ModelSnapshot struct {
	Model         string  `json:"model"`
	Digest        string  `json:"digest"`
	Passes        uint64  `json:"passes"`
	Violations    uint64  `json:"violations"`
	ViolationRate float64 `json:"violationRate"`
	EnergyJ       float64 `json:"energyJ"`
	LatencyP50S   float64 `json:"latencyP50S"`
	LatencyP90S   float64 `json:"latencyP90S"`
	LatencyP99S   float64 `json:"latencyP99S"`
	LatencyMaxS   float64 `json:"latencyMaxS"`
	// LatencySketch is the byte-stable sketch encoding (base64 in JSON).
	LatencySketch []byte `json:"latencySketch,omitempty"`
}

// Snapshot is a deterministic point-in-time copy of a ledger.
type Snapshot struct {
	Schema int             `json:"schema"`
	Cells  []CellSnapshot  `json:"cells"`
	Models []ModelSnapshot `json:"models"`
}

// SnapshotSchema identifies the ledger snapshot layout.
const SnapshotSchema = 1

// Snapshot returns the ledger's state with cells and models in sorted key
// order. Equal ledgers produce equal snapshots (and, through WriteJSON,
// equal bytes).
func (l *Ledger) Snapshot() Snapshot {
	snap := Snapshot{Schema: SnapshotSchema, Cells: []CellSnapshot{}, Models: []ModelSnapshot{}}
	if l == nil {
		return snap
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, k := range sortedKeys(l.cells) {
		c := l.cells[k]
		snap.Cells = append(snap.Cells, CellSnapshot{
			Model:   c.name,
			Digest:  fmt.Sprintf("%016x", k.Model),
			Block:   int(k.Block),
			Level:   int(k.Level),
			Ops:     c.ops,
			BusyS:   c.busy.Seconds(),
			EnergyJ: float64(c.energyNJ) / 1e9,
		})
	}
	for _, d := range sortedDigests(l.models) {
		m := l.models[d]
		ms := ModelSnapshot{
			Model:         m.name,
			Digest:        fmt.Sprintf("%016x", d),
			Passes:        m.passes,
			Violations:    m.violations,
			EnergyJ:       float64(m.energyNJ) / 1e9,
			LatencyP50S:   m.lat.Quantile(0.5),
			LatencyP90S:   m.lat.Quantile(0.9),
			LatencyP99S:   m.lat.Quantile(0.99),
			LatencyMaxS:   m.lat.Max(),
			LatencySketch: m.lat.EncodeBinary(),
		}
		if m.passes > 0 {
			ms.ViolationRate = float64(m.violations) / float64(m.passes)
		}
		snap.Models = append(snap.Models, ms)
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON. Deterministic: equal
// ledgers write equal bytes.
func (l *Ledger) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(l.Snapshot())
}

// ExportTo publishes the ledger into an obs Registry as Prometheus-style
// families: per-cell energy/busy/ops counters and a per-model latency
// summary. Intended to be called once after a run completes (it accumulates,
// so calling it twice double-counts).
func (l *Ledger) ExportTo(r *obs.Registry) {
	if l == nil || r == nil {
		return
	}
	snap := l.Snapshot()
	energy := r.Counter("ledger_block_energy_joules_total",
		"Energy attributed to a (model, power block, DVFS level) cell.",
		"model", "block", "level")
	busy := r.Counter("ledger_block_busy_seconds_total",
		"GPU busy time attributed to a (model, power block, DVFS level) cell.",
		"model", "block", "level")
	ops := r.Counter("ledger_block_ops_total",
		"Layer executions attributed to a (model, power block, DVFS level) cell.",
		"model", "block", "level")
	passes := r.Counter("ledger_passes_total", "Completed inference passes per model.", "model")
	viol := r.Counter("ledger_pass_violations_total",
		"Passes that exceeded the QoS latency-degradation budget, per model.", "model")
	lat := r.Sketch("ledger_pass_latency_seconds", "Per-pass wall latency per model.", "model")

	for _, c := range snap.Cells {
		b, lv := fmt.Sprintf("%d", c.Block), fmt.Sprintf("%d", c.Level)
		energy.Add(c.EnergyJ, c.Model, b, lv)
		busy.Add(c.BusyS, c.Model, b, lv)
		ops.Add(float64(c.Ops), c.Model, b, lv)
	}
	for _, m := range snap.Models {
		passes.Add(float64(m.Passes), m.Model)
		viol.Add(float64(m.Violations), m.Model)
		if sk, err := sketch.Decode(m.LatencySketch); err == nil {
			lat.MergeFrom(sk, m.Model)
		}
	}
}
