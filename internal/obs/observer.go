package obs

import "time"

// Observer bundles the three observability primitives behind one handle that
// instrumented code can carry. A nil *Observer disables everything: every
// method no-ops, so the instrumented hot paths pay a single nil check when
// observability is off (the tier-1 scenarios run with it off and stay
// byte-identical to the uninstrumented runtime).
type Observer struct {
	Metrics  *Registry
	Tracer   *Tracer
	Profiler *Profiler

	// TrackID is the trace track (trace_event tid) this observer emits on.
	// Derive per-node observers with ForTrack so concurrent simulations land
	// on separate tracks.
	TrackID int

	// clock maps emissions without an explicit timestamp (governor-level
	// events) onto simulated time. The owning executor installs it on reset.
	clock func() time.Duration
}

// New returns an observer with all three primitives enabled, emitting on
// track 1.
func New() *Observer {
	return &Observer{Metrics: NewRegistry(), Tracer: NewTracer(), Profiler: NewProfiler(), TrackID: 1}
}

// ForTrack returns a copy of the observer that shares the metrics registry,
// tracer and profiler but emits on its own trace track with its own clock.
// Use one per concurrently-simulated node; the underlying sinks are
// concurrency-safe.
func (o *Observer) ForTrack(tid int) *Observer {
	if o == nil {
		return nil
	}
	c := *o
	c.TrackID = tid
	c.clock = nil
	return &c
}

// SetClock installs the simulated-time source for clock-relative emissions.
func (o *Observer) SetClock(fn func() time.Duration) {
	if o != nil {
		o.clock = fn
	}
}

// Now returns the current simulated time (zero without a clock).
func (o *Observer) Now() time.Duration {
	if o == nil || o.clock == nil {
		return 0
	}
	return o.clock()
}

// Span records a complete span on this observer's track.
func (o *Observer) Span(cat, name string, start, dur time.Duration, args map[string]any) {
	if o == nil {
		return
	}
	o.Tracer.Complete(cat, name, o.TrackID, start, dur, args)
}

// Mark records an instant event at an explicit simulated time.
func (o *Observer) Mark(cat, name string, at time.Duration, args map[string]any) {
	if o == nil {
		return
	}
	o.Tracer.Instant(cat, name, o.TrackID, at, args)
}

// MarkNow records an instant event at the installed clock's current time.
func (o *Observer) MarkNow(cat, name string, args map[string]any) {
	if o == nil {
		return
	}
	o.Tracer.Instant(cat, name, o.TrackID, o.Now(), args)
}
