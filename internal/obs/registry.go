// Package obs is the runtime observability layer: a concurrency-safe metrics
// registry (counters, gauges, fixed-bucket histograms and mergeable quantile
// sketches, all with labels) exportable in Prometheus text format and JSON,
// span-based decision tracing exportable as Chrome trace_event JSON (loadable
// in Perfetto / chrome://tracing), and lightweight wall-time/allocation
// profiling hooks.
//
// The package is stdlib-only (plus its own obs/sketch subpackage) and imports
// nothing from the rest of the module, so every layer (hw, sim, governor,
// cloud, experiments) can emit into it without cycles. Everything is nil-safe: a nil *Registry, *Tracer, *Profiler
// or *Observer accepts the full API and does nothing, so instrumented code
// pays only a nil check when observability is disabled.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"powerlens/internal/obs/sketch"
)

// Kind distinguishes the metric families a Registry holds.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
	// KindSketch is a mergeable log-bucketed quantile sketch
	// (internal/obs/sketch), exported as a Prometheus summary.
	KindSketch
)

// String returns the Prometheus TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	case KindSketch:
		return "summary"
	}
	return "untyped"
}

// SketchQuantiles are the probe points exported for every sketch family,
// mirroring sketch.Quantiles.
var SketchQuantiles = sketch.Quantiles[:]

// DefBuckets are the default histogram bucket upper bounds (seconds-flavored,
// matching the Prometheus client default).
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Registry is a concurrency-safe collection of metric families. The zero
// value is not usable; construct with NewRegistry. A nil *Registry is valid
// and hands out no-op metric handles.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	// sorted holds the families ordered by name, maintained at registration
	// time so snapshots never re-sort on the scrape path.
	sorted []*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// family is one named metric with a fixed label schema.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histogram upper bounds, sorted, no +Inf

	mu     sync.Mutex
	series map[string]*series
	// ordered holds the series sorted by label key, maintained at creation
	// time (series are never removed) so snapshots never re-sort.
	ordered []*series
	def     *series // fast path for the zero-label series
}

// series is one label combination of a family.
type series struct {
	key    string // label values joined with \x1f, the sort key
	values []string

	bits uint64 // atomic float64 for counters and gauges

	hmu    sync.Mutex // histogram / sketch state
	counts []uint64
	sum    float64
	n      uint64
	sk     *sketch.Sketch
}

func (s *series) add(v float64) {
	for {
		old := atomic.LoadUint64(&s.bits)
		newBits := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(&s.bits, old, newBits) {
			return
		}
	}
}

func (s *series) set(v float64) { atomic.StoreUint64(&s.bits, math.Float64bits(v)) }

func (s *series) load() float64 { return math.Float64frombits(atomic.LoadUint64(&s.bits)) }

// register returns the named family, creating it on first use. Re-registering
// with a different kind or label arity panics: that is a programming error
// that would silently corrupt the export otherwise.
func (r *Registry) register(name, help string, kind Kind, buckets []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with different schema", name))
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		kind:    kind,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  map[string]*series{},
	}
	if len(labels) == 0 {
		f.def = f.newSeries("", nil)
		f.series[""] = f.def
		f.ordered = append(f.ordered, f.def)
	}
	r.families[name] = f
	i := sort.Search(len(r.sorted), func(i int) bool { return r.sorted[i].name >= name })
	r.sorted = append(r.sorted, nil)
	copy(r.sorted[i+1:], r.sorted[i:])
	r.sorted[i] = f
	return f
}

func (f *family) newSeries(key string, values []string) *series {
	s := &series{key: key, values: append([]string(nil), values...)}
	switch f.kind {
	case KindHistogram:
		s.counts = make([]uint64, len(f.buckets)+1) // +1 for the +Inf bucket
	case KindSketch:
		s.sk = sketch.New()
	}
	return s
}

// get resolves the series for the given label values, creating it on demand.
func (f *family) get(values []string) *series {
	if len(values) == 0 && f.def != nil {
		return f.def
	}
	key := strings.Join(values, "\x1f")
	f.mu.Lock()
	s, ok := f.series[key]
	if !ok {
		if len(values) != len(f.labels) {
			f.mu.Unlock()
			panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
				f.name, len(f.labels), len(values)))
		}
		s = f.newSeries(key, values)
		f.series[key] = s
		i := sort.Search(len(f.ordered), func(i int) bool { return f.ordered[i].key >= key })
		f.ordered = append(f.ordered, nil)
		copy(f.ordered[i+1:], f.ordered[i:])
		f.ordered[i] = s
	}
	f.mu.Unlock()
	return s
}

// Counter is a handle to a monotonically-increasing metric family. The zero
// Counter (from a nil registry) is valid and no-ops.
type Counter struct{ f *family }

// Counter registers (or looks up) a counter family.
func (r *Registry) Counter(name, help string, labels ...string) Counter {
	if r == nil {
		return Counter{}
	}
	return Counter{r.register(name, help, KindCounter, nil, labels)}
}

// Add increments the series selected by the label values.
func (c Counter) Add(v float64, labelValues ...string) {
	if c.f == nil {
		return
	}
	c.f.get(labelValues).add(v)
}

// Inc adds one.
func (c Counter) Inc(labelValues ...string) { c.Add(1, labelValues...) }

// Gauge is a handle to a set-to-current-value metric family.
type Gauge struct{ f *family }

// Gauge registers (or looks up) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) Gauge {
	if r == nil {
		return Gauge{}
	}
	return Gauge{r.register(name, help, KindGauge, nil, labels)}
}

// Set records the current value for the series selected by the label values.
func (g Gauge) Set(v float64, labelValues ...string) {
	if g.f == nil {
		return
	}
	g.f.get(labelValues).set(v)
}

// Add shifts the gauge (negative deltas allowed).
func (g Gauge) Add(v float64, labelValues ...string) {
	if g.f == nil {
		return
	}
	g.f.get(labelValues).add(v)
}

// Histogram is a handle to a fixed-bucket distribution family.
type Histogram struct{ f *family }

// Histogram registers (or looks up) a histogram family with the given bucket
// upper bounds (DefBuckets when nil). Bounds are sorted; +Inf is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) Histogram {
	if r == nil {
		return Histogram{}
	}
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	b := append([]float64(nil), buckets...)
	sort.Float64s(b)
	return Histogram{r.register(name, help, KindHistogram, b, labels)}
}

// Observe records one value.
func (h Histogram) Observe(v float64, labelValues ...string) {
	if h.f == nil {
		return
	}
	s := h.f.get(labelValues)
	s.hmu.Lock()
	placed := false
	for i, ub := range h.f.buckets {
		if v <= ub {
			s.counts[i]++
			placed = true
			break
		}
	}
	if !placed {
		s.counts[len(s.counts)-1]++ // +Inf bucket
	}
	s.sum += v
	s.n++
	s.hmu.Unlock()
}

// Sketch is a handle to a mergeable quantile-sketch family (exported as a
// Prometheus summary with the fixed SketchQuantiles probe points).
type Sketch struct{ f *family }

// Sketch registers (or looks up) a sketch family.
func (r *Registry) Sketch(name, help string, labels ...string) Sketch {
	if r == nil {
		return Sketch{}
	}
	return Sketch{r.register(name, help, KindSketch, nil, labels)}
}

// Observe records one non-negative value.
func (s Sketch) Observe(v float64, labelValues ...string) {
	if s.f == nil {
		return
	}
	ser := s.f.get(labelValues)
	ser.hmu.Lock()
	ser.sk.Observe(v)
	ser.hmu.Unlock()
}

// MergeFrom folds an externally-built sketch (e.g. a ledger's latency sketch)
// into the series selected by the label values.
func (s Sketch) MergeFrom(src *sketch.Sketch, labelValues ...string) {
	if s.f == nil || src == nil {
		return
	}
	ser := s.f.get(labelValues)
	ser.hmu.Lock()
	ser.sk.Merge(src)
	ser.hmu.Unlock()
}

// SeriesSnapshot is one label combination's state at snapshot time.
type SeriesSnapshot struct {
	LabelValues []string `json:"labels,omitempty"`
	Value       float64  `json:"value"`           // counter / gauge
	Sum         float64  `json:"sum,omitempty"`   // histogram
	Count       uint64   `json:"count,omitempty"` // histogram
	// BucketCounts are per-bucket (non-cumulative) counts parallel to the
	// family's Buckets, with one extra trailing +Inf bucket.
	BucketCounts []uint64 `json:"bucketCounts,omitempty"`
	// Quantiles are sketch quantile values parallel to the family's
	// Quantiles probe points.
	Quantiles []float64 `json:"quantiles,omitempty"`
	// Encoded is the sketch's byte-stable binary encoding (base64 in JSON).
	// Filled by Snapshot only; SnapshotInto leaves it empty to keep the
	// scrape path allocation-free.
	Encoded []byte `json:"encoded,omitempty"`
}

// FamilySnapshot is one metric family's state at snapshot time.
type FamilySnapshot struct {
	Name       string    `json:"name"`
	Help       string    `json:"help,omitempty"`
	Kind       string    `json:"kind"`
	LabelNames []string  `json:"labelNames,omitempty"`
	Buckets    []float64 `json:"buckets,omitempty"`
	// Quantiles are the probe points of a sketch family (SketchQuantiles).
	Quantiles []float64        `json:"quantilePoints,omitempty"`
	Series    []SeriesSnapshot `json:"series"`
}

// Total sums the snapshot's series values (histograms and sketches sum their
// observation counts).
func (f FamilySnapshot) Total() float64 {
	t := 0.0
	for _, s := range f.Series {
		if f.Kind == KindHistogram.String() || f.Kind == KindSketch.String() {
			t += float64(s.Count)
		} else {
			t += s.Value
		}
	}
	return t
}

// Snapshot returns a deterministic copy of the registry: families sorted by
// name, series sorted by label values (both orders are maintained at
// registration time, so no sorting happens here). Safe to call concurrently
// with writes. The snapshot owns all of its memory; for an allocation-free
// scrape path use SnapshotInto.
func (r *Registry) Snapshot() []FamilySnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := append([]*family(nil), r.sorted...)
	r.mu.Unlock()

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{
			Name:       f.name,
			Help:       f.help,
			Kind:       f.kind.String(),
			LabelNames: append([]string(nil), f.labels...),
			Buckets:    append([]float64(nil), f.buckets...),
		}
		if f.kind == KindSketch {
			fs.Quantiles = append([]float64(nil), SketchQuantiles...)
		}
		f.mu.Lock()
		sers := append([]*series(nil), f.ordered...)
		f.mu.Unlock()
		for _, s := range sers {
			ss := SeriesSnapshot{LabelValues: append([]string(nil), s.values...)}
			switch f.kind {
			case KindHistogram:
				s.hmu.Lock()
				ss.Sum = s.sum
				ss.Count = s.n
				ss.BucketCounts = append([]uint64(nil), s.counts...)
				s.hmu.Unlock()
			case KindSketch:
				s.hmu.Lock()
				ss.Sum = s.sk.Sum()
				ss.Count = s.sk.Count()
				for _, p := range SketchQuantiles {
					ss.Quantiles = append(ss.Quantiles, s.sk.Quantile(p))
				}
				ss.Encoded = s.sk.EncodeBinary()
				s.hmu.Unlock()
			default:
				ss.Value = s.load()
			}
			fs.Series = append(fs.Series, ss)
		}
		out = append(out, fs)
	}
	return out
}

// SnapshotInto fills buf with the registry's current state and returns it,
// reusing buf's backing arrays (the family slice, each family's series slice
// and each histogram series' bucket-count buffer) so a steady-state scrape
// loop allocates nothing. Unlike Snapshot, the returned snapshots *share*
// the registry's immutable schema slices (label names, bucket bounds, series
// label values) — treat the result as read-only, valid until the next
// SnapshotInto call with the same buffer. Family and series order is the
// same registration-time sorted order Snapshot uses; no sorting happens per
// scrape.
func (r *Registry) SnapshotInto(buf []FamilySnapshot) []FamilySnapshot {
	out := buf[:0]
	if r == nil {
		return out
	}
	// Holding r.mu for the whole walk keeps the family list stable without
	// copying it; registration is cold, and value updates never take r.mu.
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.sorted {
		if len(out) < cap(out) {
			out = out[:len(out)+1]
		} else {
			out = append(out, FamilySnapshot{})
		}
		fs := &out[len(out)-1]
		fs.Name, fs.Help, fs.Kind = f.name, f.help, f.kind.String()
		fs.LabelNames, fs.Buckets = f.labels, f.buckets
		fs.Quantiles = nil
		if f.kind == KindSketch {
			fs.Quantiles = SketchQuantiles
		}
		series := fs.Series[:0]
		f.mu.Lock()
		for _, s := range f.ordered {
			if len(series) < cap(series) {
				series = series[:len(series)+1]
			} else {
				series = append(series, SeriesSnapshot{})
			}
			ss := &series[len(series)-1]
			ss.LabelValues = s.values
			ss.Encoded = nil // Snapshot-only; see SeriesSnapshot.Encoded
			switch f.kind {
			case KindHistogram:
				ss.Value = 0
				ss.Quantiles = ss.Quantiles[:0]
				s.hmu.Lock()
				ss.Sum, ss.Count = s.sum, s.n
				ss.BucketCounts = append(ss.BucketCounts[:0], s.counts...)
				s.hmu.Unlock()
			case KindSketch:
				ss.Value = 0
				ss.BucketCounts = ss.BucketCounts[:0]
				ss.Quantiles = ss.Quantiles[:0]
				s.hmu.Lock()
				ss.Sum, ss.Count = s.sk.Sum(), s.sk.Count()
				for _, p := range SketchQuantiles {
					ss.Quantiles = append(ss.Quantiles, s.sk.Quantile(p))
				}
				s.hmu.Unlock()
			default:
				ss.Value = s.load()
				ss.Sum, ss.Count = 0, 0
				ss.BucketCounts, ss.Quantiles = ss.BucketCounts[:0], ss.Quantiles[:0]
			}
		}
		f.mu.Unlock()
		fs.Series = series
	}
	return out
}

// Merge folds src's state into r: counters and histograms accumulate, gauges
// take src's value. Families are matched by name; a schema conflict (kind,
// label arity or histogram buckets) panics, like re-registration. Merge walks
// src in sorted order, so folding per-worker registries in a fixed order
// yields a deterministic result — float accumulation order no longer depends
// on how the workers' writes interleaved. This is how the cluster keeps its
// exported metrics bit-identical across runs despite concurrent node
// simulation.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil {
		return
	}
	src.mu.Lock()
	fams := append([]*family(nil), src.sorted...)
	src.mu.Unlock()

	for _, sf := range fams {
		df := r.register(sf.name, sf.help, sf.kind, sf.buckets, sf.labels)
		if len(df.buckets) != len(sf.buckets) {
			panic(fmt.Sprintf("obs: metric %q merged with different buckets", sf.name))
		}
		sf.mu.Lock()
		sers := append([]*series(nil), sf.ordered...)
		sf.mu.Unlock()
		for _, ss := range sers {
			ds := df.get(ss.values)
			switch sf.kind {
			case KindCounter:
				ds.add(ss.load())
			case KindGauge:
				ds.set(ss.load())
			case KindHistogram:
				ss.hmu.Lock()
				counts := append([]uint64(nil), ss.counts...)
				sum, n := ss.sum, ss.n
				ss.hmu.Unlock()
				ds.hmu.Lock()
				for i := range counts {
					ds.counts[i] += counts[i]
				}
				ds.sum += sum
				ds.n += n
				ds.hmu.Unlock()
			case KindSketch:
				// Clone under the source lock, fold under the destination
				// lock: never hold both at once (same discipline as the
				// histogram case above).
				tmp := sketch.New()
				ss.hmu.Lock()
				tmp.Merge(ss.sk)
				ss.hmu.Unlock()
				ds.hmu.Lock()
				ds.sk.Merge(tmp)
				ds.hmu.Unlock()
			}
		}
	}
}

// WriteJSON exports the registry as a JSON array of family snapshots.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus exports the registry in the Prometheus text exposition
// format (version 0.0.4). Output is deterministic for a deterministic run.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WriteSnapshotPrometheus(w, r.Snapshot())
}

// WriteSnapshotPrometheus renders an already-taken snapshot (Snapshot or
// SnapshotInto) in the Prometheus text exposition format. The telemetry
// server's scrape handler uses this with a pooled SnapshotInto buffer.
func WriteSnapshotPrometheus(w io.Writer, fams []FamilySnapshot) error {
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.Name, escapeHelp(f.Help), f.Name, f.Kind); err != nil {
			return err
		}
		for _, s := range f.Series {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f FamilySnapshot, s SeriesSnapshot) error {
	if f.Kind == KindSketch.String() {
		for i, p := range f.Quantiles {
			v := 0.0
			if i < len(s.Quantiles) {
				v = s.Quantiles[i]
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n",
				f.Name, labelString(f.LabelNames, s.LabelValues, "quantile", formatValue(p)),
				formatValue(v)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
			f.Name, labelString(f.LabelNames, s.LabelValues, "", ""), formatValue(s.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n",
			f.Name, labelString(f.LabelNames, s.LabelValues, "", ""), s.Count)
		return err
	}
	if f.Kind != KindHistogram.String() {
		_, err := fmt.Fprintf(w, "%s%s %s\n",
			f.Name, labelString(f.LabelNames, s.LabelValues, "", ""), formatValue(s.Value))
		return err
	}
	cum := uint64(0)
	for i, c := range s.BucketCounts {
		cum += c
		le := "+Inf"
		if i < len(f.Buckets) {
			le = formatValue(f.Buckets[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.Name, labelString(f.LabelNames, s.LabelValues, "le", le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
		f.Name, labelString(f.LabelNames, s.LabelValues, "", ""), formatValue(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n",
		f.Name, labelString(f.LabelNames, s.LabelValues, "", ""), s.Count)
	return err
}

// labelString renders {k="v",...} with an optional extra pair, or "" when
// there are no labels at all.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		// %q escapes \, " and newlines exactly as the exposition format wants.
		fmt.Fprintf(&sb, "%s=%q", n, v)
	}
	if extraName != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", extraName, extraValue)
	}
	sb.WriteByte('}')
	return sb.String()
}

func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
