package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"powerlens/internal/obs/sketch"
)

func sketchRegistry() *Registry {
	r := NewRegistry()
	lat := r.Sketch("pass_latency_seconds", "Per-pass latency.", "model")
	for i := 0; i < 1000; i++ {
		lat.Observe(0.001+float64(i)*1e-5, "alexnet")
		lat.Observe(0.004+float64(i)*2e-5, "resnet152")
	}
	r.Counter("passes_total", "Passes.").Add(2000)
	return r
}

func TestSketchFamilyPrometheus(t *testing.T) {
	r := sketchRegistry()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if fams, err := CheckPrometheusText(strings.NewReader(out)); err != nil || fams != 2 {
		t.Fatalf("export does not parse (families=%d): %v\n%s", fams, err, out)
	}
	for _, want := range []string{
		"# TYPE pass_latency_seconds summary\n",
		`pass_latency_seconds{model="alexnet",quantile="0.5"} `,
		`pass_latency_seconds{model="resnet152",quantile="0.99"} `,
		`pass_latency_seconds_sum{model="alexnet"} `,
		`pass_latency_seconds_count{model="alexnet"} 1000`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("export missing %q:\n%s", want, out)
		}
	}

	// The pooled scrape path must render byte-identical text.
	var buf2 bytes.Buffer
	if err := WriteSnapshotPrometheus(&buf2, r.SnapshotInto(nil)); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("Snapshot and SnapshotInto render different Prometheus text")
	}
}

func TestSketchSnapshotFields(t *testing.T) {
	r := sketchRegistry()
	snap := r.Snapshot()
	var fam *FamilySnapshot
	for i := range snap {
		if snap[i].Name == "pass_latency_seconds" {
			fam = &snap[i]
		}
	}
	if fam == nil {
		t.Fatal("sketch family missing from snapshot")
	}
	if fam.Kind != "summary" || !reflect.DeepEqual(fam.Quantiles, []float64{0.5, 0.9, 0.99}) {
		t.Fatalf("family schema wrong: kind=%q quantiles=%v", fam.Kind, fam.Quantiles)
	}
	if fam.Total() != 2000 {
		t.Fatalf("Total() = %v, want 2000", fam.Total())
	}
	for _, s := range fam.Series {
		if s.Count != 1000 || len(s.Quantiles) != 3 || s.Sum <= 0 {
			t.Fatalf("series %v incomplete: %+v", s.LabelValues, s)
		}
		if s.Quantiles[0] > s.Quantiles[1] || s.Quantiles[1] > s.Quantiles[2] {
			t.Fatalf("series %v quantiles not monotone: %v", s.LabelValues, s.Quantiles)
		}
		dec, err := sketch.Decode(s.Encoded)
		if err != nil {
			t.Fatalf("series %v Encoded does not decode: %v", s.LabelValues, err)
		}
		if dec.Count() != s.Count {
			t.Fatalf("series %v decoded count %d != %d", s.LabelValues, dec.Count(), s.Count)
		}
	}
}

// TestSketchRegistryMerge pins that merging per-worker registries in a fixed
// order yields the same bytes regardless of how observations were split.
func TestSketchRegistryMerge(t *testing.T) {
	observe := func(workers int) []byte {
		parts := make([]*Registry, workers)
		for w := range parts {
			parts[w] = NewRegistry()
		}
		for i := 0; i < 5000; i++ {
			parts[i%workers].Sketch("lat", "h", "model").Observe(1e-3+float64(i)*1e-6, "m0")
		}
		merged := NewRegistry()
		for _, p := range parts {
			merged.Merge(p)
		}
		var buf bytes.Buffer
		if err := merged.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		// Include the byte-stable sketch encoding too, not just the text.
		snap := merged.Snapshot()
		for _, f := range snap {
			for _, s := range f.Series {
				buf.Write(s.Encoded)
			}
		}
		return buf.Bytes()
	}
	want := observe(1)
	for _, w := range []int{2, 3, 8} {
		if !bytes.Equal(observe(w), want) {
			t.Fatalf("merge of %d worker registries is not byte-identical", w)
		}
	}
}

func TestSketchMergeFrom(t *testing.T) {
	ext := sketch.New()
	for i := 0; i < 100; i++ {
		ext.Observe(float64(i + 1))
	}
	r := NewRegistry()
	h := r.Sketch("lat", "h", "model")
	h.MergeFrom(ext, "m0")
	h.Observe(1000, "m0")
	snap := r.Snapshot()
	if got := snap[0].Series[0].Count; got != 101 {
		t.Fatalf("count after MergeFrom = %d, want 101", got)
	}

	// Nil handles and nil sources are no-ops.
	var none Sketch
	none.Observe(1, "x")
	none.MergeFrom(ext, "x")
	h.MergeFrom(nil, "m0")
	var nilReg *Registry
	nilReg.Sketch("lat", "h").Observe(1)
}
